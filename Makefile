GO ?= go

.PHONY: all build test race bench report check lint

all: build test

build:
	$(GO) build ./...

# Tier-1 verification: everything must build and every test must pass.
test: build
	$(GO) test ./...

# rootlint: the in-tree analyzer suite (internal/lint) that mechanically
# enforces the repo's determinism, hot-path, and fault-injection invariants.
# Exits non-zero on any finding; see DESIGN.md section 10 for the rules and
# the //rootlint: annotation grammar.
lint:
	$(GO) run ./cmd/rootlint ./...

# Race coverage for the parallel campaign engine and the analyses it feeds.
# TestCampaignManyWorkersRace drives a many-worker campaign across a fault
# window so the single-flight caches are contended under the detector.
race:
	$(GO) test -race ./internal/measure/... ./internal/analysis/...

# Robustness gate: go vet, a short fuzz smoke over the dnswire codec, and
# the chaos matrix (failpoint kill/resume byte-identity, worker supervision,
# torn-tail recovery). See scripts/check.sh.
check:
	sh scripts/check.sh

# Regenerate the reproduction report via the benchmark harness, then record
# the telemetry layer's on/off overhead on the campaign engine (budget <=3%)
# into BENCH_PR5.json and the serve path's loopback throughput (rootblast
# B-Root mix, cache on/off) into BENCH_SERVE.json.
# BENCH_SCALE overrides schedule thinning (smaller = higher fidelity, slower).
# -benchmem keeps allocs/op visible so fast-path regressions are caught.
bench:
	$(GO) test -bench . -benchmem -benchtime 1x .
	sh scripts/bench_telemetry.sh
	sh scripts/bench_serve.sh
	sh scripts/bench_replay.sh

report:
	$(GO) run ./cmd/rootstudy -quick
