package repro

// The benchmark harness regenerates every table and figure of the paper
// (see DESIGN.md §4 for the experiment index). The expensive part — the
// simulated world and the active campaign — runs once and is shared; each
// benchmark then measures regenerating its artifact from the accumulated
// state, and prints the artifact once so `go test -bench` output doubles as
// the reproduction report. Micro-benchmarks for the substrates and the
// ablation benches live at the bottom.

import (
	"fmt"
	"io"
	mrand "math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/anycast"
	"repro/internal/axfr"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dnssec"
	"repro/internal/dnswire"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/propagation"
	"repro/internal/rss"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/vantage"
	"repro/internal/zone"
	"repro/internal/zonemd"
)

var (
	studyOnce sync.Once
	study     *core.Study
	studyErr  error
)

// benchStudy runs the shared campaign once. BENCH_SCALE overrides the
// schedule thinning (smaller = closer to the paper's fidelity, slower).
func benchStudy(b *testing.B) *core.Study {
	b.Helper()
	studyOnce.Do(func() {
		cfg := core.DefaultConfig()
		if s := os.Getenv("BENCH_SCALE"); s != "" {
			fmt.Sscanf(s, "%d", &cfg.Scale)
		}
		study, studyErr = core.NewStudy(cfg)
		if studyErr != nil {
			return
		}
		start := time.Now()
		studyErr = study.Run()
		fmt.Fprintf(os.Stderr, "[bench setup] campaign (scale=%d, vps=%d) took %s\n",
			cfg.Scale, len(study.World.Population.VPs), time.Since(start).Round(time.Second))
	})
	if studyErr != nil {
		b.Fatal(studyErr)
	}
	return study
}

// printOnce emits the artifact once per benchmark so the bench log is the
// report.
var printedArtifacts sync.Map

func artifact(b *testing.B, name string, render func(io.Writer)) {
	if _, loaded := printedArtifacts.LoadOrStore(name, true); !loaded {
		render(os.Stderr)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		render(io.Discard)
	}
}

func BenchmarkTable1SiteCoverage(b *testing.B) {
	s := benchStudy(b)
	artifact(b, "table1", s.Coverage.WriteTable1)
}

func BenchmarkTable2ZonemdErrors(b *testing.B) {
	s := benchStudy(b)
	artifact(b, "table2", s.Integrity.WriteTable2)
}

func BenchmarkTable3VantagePoints(b *testing.B) {
	s := benchStudy(b)
	artifact(b, "table3", s.WriteTable3)
}

func BenchmarkTable4RegionalCoverage(b *testing.B) {
	s := benchStudy(b)
	artifact(b, "table4", s.Coverage.WriteTable4)
}

func BenchmarkFigure1Coverage(b *testing.B) {
	s := benchStudy(b)
	artifact(b, "figure1", func(w io.Writer) {
		// Fig. 1 is the VP map plus f.root coverage; render the textual
		// equivalents.
		fmt.Fprintf(w, "Figure 1a: %d VPs in %d networks, %d countries\n",
			len(s.World.Population.VPs), s.World.Population.Networks(),
			s.World.Population.Countries())
		for _, r := range s.Coverage.Table1() {
			if r.Letter == "f" {
				fmt.Fprintf(w, "Figure 1b: f.root %d/%d global, %d/%d local sites observed\n",
					r.GlobalCov, r.GlobalSites, r.LocalCov, r.LocalSites)
			}
		}
	})
}

func BenchmarkFigure2Timeline(b *testing.B) {
	artifact(b, "figure2", func(w io.Writer) {
		ticks := measure.Ticks(measure.StudyStart, measure.StudyEnd, 1)
		fast := 0
		for _, t := range ticks {
			if measure.BaseInterval(t.Time) == 15*time.Minute {
				fast++
			}
		}
		fmt.Fprintf(w, "Figure 2: %d measurement rounds (%d at 15-min cadence); ", len(ticks), fast)
		fmt.Fprintf(w, "ZONEMD placeholder %s, verifiable %s, b.root change %s\n",
			zonemd.PlaceholderDate.Format("2006-01-02"),
			zonemd.VerifiableDate.Format("2006-01-02"),
			measure.BRootChange.Format("2006-01-02"))
	})
}

func BenchmarkFigure3ChangeCCDF(b *testing.B) {
	s := benchStudy(b)
	artifact(b, "figure3", s.Stability.WriteFigure3)
}

func BenchmarkFigure4ReducedRedundancy(b *testing.B) {
	s := benchStudy(b)
	artifact(b, "figure4", s.Colocation.WriteFigure4)
}

func BenchmarkSection5Colocation(b *testing.B) {
	s := benchStudy(b)
	artifact(b, "section5", func(w io.Writer) {
		fmt.Fprintf(w, "Section 5: %.1f%% of VPs observe >=2 co-located roots (max %d)\n",
			s.Colocation.ShareWithColocation()*100, s.Colocation.MaxReducedRedundancy())
	})
}

func BenchmarkFigure5Distance(b *testing.B) {
	s := benchStudy(b)
	artifact(b, "figure5", s.Distance.WriteFigure5)
}

func BenchmarkFigure6RTT(b *testing.B) {
	s := benchStudy(b)
	artifact(b, "figure6", s.RTT.WriteFigure6)
}

func BenchmarkFigure14RTTAllRegions(b *testing.B) {
	s := benchStudy(b)
	artifact(b, "figure14", s.RTT.WriteFigure14)
}

func BenchmarkSection6CarrierEffects(b *testing.B) {
	s := benchStudy(b)
	artifact(b, "section6carrier", s.RTT.WriteCarrierEffects)
}

func BenchmarkFigure7ISPTraffic(b *testing.B) {
	s := benchStudy(b)
	artifact(b, "figure7", s.Traffic.WriteFigure7)
}

func BenchmarkFigure8ClientsPerDay(b *testing.B) {
	s := benchStudy(b)
	artifact(b, "figure8", s.Traffic.WriteFigure8)
}

func BenchmarkFigure9IXPTraffic(b *testing.B) {
	s := benchStudy(b)
	artifact(b, "figure9", s.Traffic.WriteFigure9)
}

func BenchmarkFigure10Bitflip(b *testing.B) {
	s := benchStudy(b)
	artifact(b, "figure10", s.Integrity.WriteFigure10)
}

func BenchmarkFigure11CoverageMaps(b *testing.B) {
	s := benchStudy(b)
	artifact(b, "figure11", s.Coverage.Figure11)
}

func BenchmarkFigure12ISPAllRoots(b *testing.B) {
	s := benchStudy(b)
	artifact(b, "figure12", s.Traffic.WriteFigure12)
}

func BenchmarkFigure13IXPAllRoots(b *testing.B) {
	s := benchStudy(b)
	artifact(b, "figure13", s.Traffic.WriteFigure13)
}

func BenchmarkSection6ShiftRatios(b *testing.B) {
	s := benchStudy(b)
	artifact(b, "section6shift", func(w io.Writer) {
		w2 := [2]time.Time{
			time.Date(2024, 2, 5, 0, 0, 0, 0, time.UTC),
			time.Date(2024, 3, 4, 0, 0, 0, 0, time.UTC),
		}
		fmt.Fprintf(w, "Section 6: ISP in-family shift v4=%.1f%% v6=%.1f%% (paper: 87.1%% / 96.3%%)\n",
			s.Traffic.ISP.ShiftRatio(topology.IPv4, w2[0], w2[1])*100,
			s.Traffic.ISP.ShiftRatio(topology.IPv6, w2[0], w2[1])*100)
	})
}

// --- Campaign engine scaling ----------------------------------------------

var (
	campaignWorldOnce sync.Once
	campaignWorld     *measure.World
	campaignWorldErr  error
)

// campaignBenchConfig is a QuickConfig-scale campaign: full target set, the
// fault-richest stretch of the timeline, thinned schedule.
func campaignBenchConfig(workers int) measure.Config {
	cfg := measure.DefaultConfig()
	cfg.Start = time.Date(2023, 11, 20, 0, 0, 0, 0, time.UTC)
	cfg.End = time.Date(2023, 12, 10, 0, 0, 0, 0, time.UTC)
	cfg.Scale = 16
	cfg.TLDCount = 20
	cfg.Workers = workers
	return cfg
}

// countingHandler keeps the campaign honest without analysis cost.
type countingHandler struct{ probes, transfers int }

func (h *countingHandler) HandleProbe(measure.ProbeEvent)       { h.probes++ }
func (h *countingHandler) HandleTransfer(measure.TransferEvent) { h.transfers++ }

// benchmarkCampaignWorkers measures a full Campaign.Run at the given worker
// count over a shared world, making the engine's core-scaling visible in the
// bench trajectory.
func benchmarkCampaignWorkers(b *testing.B, workers int) {
	campaignWorldOnce.Do(func() {
		cfg := campaignBenchConfig(1)
		topoCfg := topology.DefaultConfig()
		topoCfg.Seed = cfg.Seed
		vpCfg := vantage.DefaultConfig()
		vpCfg.Seed = cfg.Seed
		vpCfg.Scale = 20
		campaignWorld, campaignWorldErr = measure.NewWorld(cfg, topoCfg, vpCfg)
	})
	if campaignWorldErr != nil {
		b.Fatal(campaignWorldErr)
	}
	cfg := campaignBenchConfig(workers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := &countingHandler{}
		if err := measure.NewCampaign(cfg, campaignWorld).Run(h); err != nil {
			b.Fatal(err)
		}
		if h.probes == 0 {
			b.Fatal("campaign emitted no probes")
		}
	}
}

func BenchmarkCampaignWorkers1(b *testing.B) { benchmarkCampaignWorkers(b, 1) }
func BenchmarkCampaignWorkers4(b *testing.B) { benchmarkCampaignWorkers(b, 4) }
func BenchmarkCampaignWorkers8(b *testing.B) { benchmarkCampaignWorkers(b, 8) }

// benchmarkCampaignWorkersTelemetry is the same campaign with the telemetry
// layer fully live — counters, gauges, and the wall-clock histogram timers
// that SetEnabled gates (the exact state a `-metrics`/`-telemetry-addr` run
// is in). scripts/bench_telemetry.sh pairs these against the plain variants
// and records the overhead into BENCH_PR5.json; the budget is ≤3%.
func benchmarkCampaignWorkersTelemetry(b *testing.B, workers int) {
	telemetry.Reset()
	telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(false)
	benchmarkCampaignWorkers(b, workers)
}

func BenchmarkCampaignWorkersTelemetry1(b *testing.B) { benchmarkCampaignWorkersTelemetry(b, 1) }
func BenchmarkCampaignWorkersTelemetry4(b *testing.B) { benchmarkCampaignWorkersTelemetry(b, 4) }
func BenchmarkCampaignWorkersTelemetry8(b *testing.B) { benchmarkCampaignWorkersTelemetry(b, 8) }

// --- Substrate micro-benchmarks ------------------------------------------

func benchMessage() *dnswire.Message {
	m := dnswire.NewQuery(1, dnswire.Root, dnswire.TypeNS)
	m.Header.Response = true
	for i := 0; i < 13; i++ {
		host := dnswire.MustName(fmt.Sprintf("%c.root-servers.net.", 'a'+i))
		m.Answers = append(m.Answers, dnswire.RR{
			Name: dnswire.Root, Class: dnswire.ClassINET, TTL: 518400,
			Data: dnswire.NSRecord{Host: host},
		})
	}
	return m
}

func BenchmarkWirePack(b *testing.B) {
	m := benchMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireAppendPack is the steady-state encode: the caller reuses its
// output buffer, so with the pooled compression map the pack is expected to
// show 0 allocs/op (pinned by TestAppendPackSteadyStateZeroAllocs).
func BenchmarkWireAppendPack(b *testing.B) {
	m := benchMessage()
	buf, err := m.AppendPack(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := m.AppendPack(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		buf = out
	}
}

func BenchmarkWireUnpack(b *testing.B) {
	wire, err := benchMessage().Pack()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dnswire.Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSignedZone(b testing.TB, tlds int) (*zone.Zone, *dnssec.Signer) {
	b.Helper()
	signer, err := dnssec.NewSigner(mrand.New(mrand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	cfg := zone.DefaultRootConfig()
	cfg.TLDCount = tlds
	signed, err := signer.Sign(zone.SynthesizeRoot(cfg),
		time.Date(2023, 12, 10, 0, 0, 0, 0, time.UTC))
	if err != nil {
		b.Fatal(err)
	}
	return signed, signer
}

func BenchmarkZoneSign(b *testing.B) {
	signer, err := dnssec.NewSigner(mrand.New(mrand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	cfg := zone.DefaultRootConfig()
	cfg.TLDCount = 80
	unsigned := zone.SynthesizeRoot(cfg)
	when := time.Date(2023, 12, 10, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := signer.Sign(unsigned, when); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkZoneValidate(b *testing.B) {
	z, signer := benchSignedZone(b, 80)
	anchor := signer.TrustAnchor().Data.(dnswire.DSRecord)
	when := time.Date(2023, 12, 10, 1, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dnssec.ValidateZone(z, anchor, when); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkZonemdDigest(b *testing.B) {
	z, _ := benchSignedZone(b, 80)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := zonemd.Digest(z); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAXFRServeReceive(b *testing.B) {
	z, _ := benchSignedZone(b, 80)
	q := &dnswire.Message{
		Header: dnswire.Header{ID: 1},
		Questions: []dnswire.Question{{
			Name: dnswire.Root, Type: dnswire.TypeAXFR, Class: dnswire.ClassINET,
		}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf sliceBuffer
		if err := axfr.Serve(&buf, z, q); err != nil {
			b.Fatal(err)
		}
		if _, err := axfr.Receive(&buf, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAXFRServeReceiveLazy is BenchmarkAXFRServeReceive with the
// receive side on the lazy wire view: ReceiveCompare byte-verifies every
// record against the zone's canonical sidecar without materializing one
// decoded RR. The allocs/op delta against the full-decode bench above is
// the lazy path's whole point (pinned by TestAXFRLazyReceiveAllocs).
func BenchmarkAXFRServeReceiveLazy(b *testing.B) {
	z, _ := benchSignedZone(b, 80)
	q := &dnswire.Message{
		Header: dnswire.Header{ID: 1},
		Questions: []dnswire.Question{{
			Name: dnswire.Root, Type: dnswire.TypeAXFR, Class: dnswire.ClassINET,
		}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf sliceBuffer
		if err := axfr.Serve(&buf, z, q); err != nil {
			b.Fatal(err)
		}
		if _, err := axfr.ReceiveCompare(&buf, 1, z); err != nil {
			b.Fatal(err)
		}
	}
}

// sliceBuffer is a minimal in-memory byte pipe for the AXFR bench.
type sliceBuffer struct {
	data []byte
	off  int
}

func (s *sliceBuffer) Write(p []byte) (int, error) {
	s.data = append(s.data, p...)
	return len(p), nil
}

func (s *sliceBuffer) Read(p []byte) (int, error) {
	if s.off >= len(s.data) {
		return 0, io.EOF
	}
	n := copy(p, s.data[s.off:])
	s.off += n
	return n, nil
}

func BenchmarkRouteComputation(b *testing.B) {
	topo := topology.Build(topology.DefaultConfig())
	origins := []topology.Origin{
		{SiteID: "s1", ASN: 100}, {SiteID: "s2", ASN: 105},
		{SiteID: "s3", ASN: 110}, {SiteID: "s4", ASN: topology.ASNOpenV6},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topo.ComputeRoutes(origins, topology.IPv6)
	}
}

// --- Ablation benchmarks ---------------------------------------------------

// BenchmarkAblationCompression compares packing the priming response with
// and without name compression (DESIGN.md §5).
func BenchmarkAblationCompression(b *testing.B) {
	m := benchMessage()
	b.Run("compressed", func(b *testing.B) {
		b.ReportAllocs()
		var size int
		for i := 0; i < b.N; i++ {
			wire, err := m.Pack()
			if err != nil {
				b.Fatal(err)
			}
			size = len(wire)
		}
		b.ReportMetric(float64(size), "bytes/msg")
	})
	b.Run("uncompressed", func(b *testing.B) {
		b.ReportAllocs()
		var size int
		for i := 0; i < b.N; i++ {
			wire, err := m.PackUncompressed()
			if err != nil {
				b.Fatal(err)
			}
			size = len(wire)
		}
		b.ReportMetric(float64(size), "bytes/msg")
	})
}

// BenchmarkAblationCanonicalSort compares digesting a pre-sorted zone with
// digesting a shuffled one (the sort dominates for unsorted input).
func BenchmarkAblationCanonicalSort(b *testing.B) {
	z, _ := benchSignedZone(b, 80)
	sorted := z.Clone().Canonicalize()
	shuffled := z.Clone()
	rng := mrand.New(mrand.NewSource(3))
	rng.Shuffle(len(shuffled.Records), func(i, j int) {
		shuffled.Records[i], shuffled.Records[j] = shuffled.Records[j], shuffled.Records[i]
	})
	for _, sel := range []struct {
		name string
		z    *zone.Zone
	}{{"presorted", sorted}, {"shuffled", shuffled}} {
		b.Run(sel.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := zonemd.Digest(sel.z); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCatchmentCache compares resolving a site through the
// precomputed catchment against recomputing routes per query.
func BenchmarkAblationCatchmentCache(b *testing.B) {
	topo := topology.Build(topology.DefaultConfig())
	builder := anycast.NewBuilder(topo, 1)
	d := &anycast.Deployment{Name: "x"}
	d.Sites = builder.PlaceSites("x", anycast.Global, geo.Europe, 12)
	stubs := topo.StubASNs(nil)
	b.Run("cached", func(b *testing.B) {
		c := anycast.ComputeCatchment(topo, d, topology.IPv4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Site(stubs[i%len(stubs)])
		}
	})
	b.Run("recompute", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := anycast.ComputeCatchment(topo, d, topology.IPv4)
			c.Site(stubs[i%len(stubs)])
		}
	})
}

// BenchmarkAblationPolicyWeights compares policy (Gao-Rexford) routing with
// classless shortest-path routing and reports the route-inflation gap: the
// share of stubs whose policy route is geographically longer than their
// shortest-path route.
func BenchmarkAblationPolicyWeights(b *testing.B) {
	topo := topology.Build(topology.DefaultConfig())
	origins := []topology.Origin{
		{SiteID: "s1", ASN: 100}, {SiteID: "s2", ASN: 104},
		{SiteID: "s3", ASN: 108}, {SiteID: "s4", ASN: 111},
	}
	b.Run("policy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			topo.ComputeRoutes(origins, topology.IPv4)
		}
	})
	b.Run("shortest", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			topo.ComputeRoutesShortest(origins, topology.IPv4)
		}
	})
	// Report inflation once.
	policy := topo.ComputeRoutes(origins, topology.IPv4)
	shortest := topo.ComputeRoutesShortest(origins, topology.IPv4)
	inflated, total := 0, 0
	for _, asn := range topo.StubASNs(nil) {
		p, okP := policy.Best(asn)
		s, okS := shortest.Best(asn)
		if !okP || !okS {
			continue
		}
		total++
		if p.PathKm > s.PathKm+250 {
			inflated++
		}
	}
	if _, loaded := printedArtifacts.LoadOrStore("ablation-policy", true); !loaded {
		fmt.Fprintf(os.Stderr, "[ablation] policy routing inflates %d/%d stub paths vs shortest-path\n",
			inflated, total)
	}
}

// BenchmarkExtensionControlGroup runs the Appendix-E control-group
// comparison (a 13-site deployment under experimenter control vs h.root).
func BenchmarkExtensionControlGroup(b *testing.B) {
	topo := topology.Build(topology.DefaultConfig())
	sys := rss.Build(topo, 1)
	vpCfg := vantage.DefaultConfig()
	vpCfg.Scale = 5
	pop := vantage.Generate(topo, vpCfg)
	cfg := control.DefaultConfig()
	cfg.Ticks = 50
	exp := control.New(cfg, topo, sys, pop)
	var res *control.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = exp.Run("h", topology.IPv4)
	}
	b.StopTimer()
	if _, loaded := printedArtifacts.LoadOrStore("ext-control", true); !loaded {
		res.Write(os.Stderr)
	}
}

// BenchmarkExtensionSOAPropagation runs the per-second SOA convergence
// experiment (Appendix E, "Limited Temporal Resolution").
func BenchmarkExtensionSOAPropagation(b *testing.B) {
	topo := topology.Build(topology.DefaultConfig())
	sys := rss.Build(topo, 1)
	vpCfg := vantage.DefaultConfig()
	vpCfg.Scale = 10
	exp := &propagation.Experiment{
		Topo:       topo,
		System:     sys,
		Population: vantage.Generate(topo, vpCfg),
		Models:     propagation.DefaultSyncModels(),
		Window:     2 * time.Minute,
		Seed:       3,
	}
	var results []propagation.LetterResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results = exp.Run(topology.IPv4)
	}
	b.StopTimer()
	if _, loaded := printedArtifacts.LoadOrStore("ext-soa", true); !loaded {
		propagation.Write(os.Stderr, results)
	}
}

// BenchmarkDatasetWrite measures recording throughput of the compressed
// event log (the paper's data-publication path).
func BenchmarkDatasetWrite(b *testing.B) {
	s := benchStudy(b)
	// Synthesize a representative probe event once.
	e := measure.ProbeEvent{
		Tick:         measure.Tick{Index: 10, Time: measure.StudyStart},
		VP:           &s.World.Population.VPs[0],
		Target:       rss.AllServiceAddrs()[0],
		SiteID:       "a-fra1",
		Identifier:   "fra",
		Facility:     "IX-FRA",
		SiteCity:     s.World.Population.VPs[0].City,
		RTTms:        17.3,
		ASPath:       []int{4242, 1001, 100, 5555},
		SecondToLast: "fac-IX-FRA-edge-IPv4",
		STLOK:        true,
	}
	w, err := dataset.NewWriter(io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Tick.Index = i
		w.HandleProbe(e)
	}
	b.StopTimer()
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
}
