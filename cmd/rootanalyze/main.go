// Command rootanalyze replays a dataset recorded by rootmeasure through the
// full analysis suite and prints every active-measurement table and figure.
// The world is reconstructed from the same seed flags used when recording.
//
// Usage:
//
//	rootanalyze -in study.rgds [-seed 1] [-vpscale 1]
//	            [-metrics out.json] [-trace out.json] [-telemetry-addr host:port]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/measure"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/vantage"
)

func main() {
	in := flag.String("in", "study.rgds", "dataset input file")
	seed := flag.Int64("seed", 1, "world seed used when recording")
	vpScale := flag.Int("vpscale", 1, "VP population divisor used when recording")
	tlds := flag.Int("tlds", 80, "TLD count used when recording")
	telemetry.RegisterFlags()
	flag.Parse()

	stopTel, err := telemetry.Start()
	if err != nil {
		fatal(err)
	}
	defer stopTel()

	mCfg := measure.DefaultConfig()
	mCfg.Seed, mCfg.TLDCount = *seed, *tlds
	topoCfg := topology.DefaultConfig()
	topoCfg.Seed = *seed
	vpCfg := vantage.DefaultConfig()
	vpCfg.Seed = *seed
	vpCfg.Scale = *vpScale
	world, err := measure.NewWorld(mCfg, topoCfg, vpCfg)
	if err != nil {
		fatal(err)
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	reader, err := dataset.NewReader(f, world.Population)
	if err != nil {
		fatal(err)
	}
	defer reader.Close()

	coverage := analysis.NewCoverage(world.System)
	stability := analysis.NewStability()
	colocation := analysis.NewColocation(world.Population)
	distance := analysis.NewDistance(world.System, world.Population)
	rtt := analysis.NewRTT()
	integrity := analysis.NewIntegrity()

	probes, transfers, err := reader.Replay(coverage, stability, colocation, distance, rtt, integrity)
	if err != nil {
		fatal(err)
	}
	if reader.Torn() {
		fmt.Fprintf(os.Stderr, "rootanalyze: warning: dataset has a torn trailing block (%v); "+
			"replayed the sealed prefix only — the recording was likely interrupted "+
			"and can be completed with rootmeasure -resume\n", reader.TornReason())
	}
	fmt.Printf("replayed %d probes, %d transfers from %s\n\n", probes, transfers, *in)

	coverage.WriteTable1(os.Stdout)
	fmt.Println()
	coverage.WriteTable4(os.Stdout)
	fmt.Println()
	stability.WriteFigure3(os.Stdout)
	fmt.Println()
	colocation.WriteFigure4(os.Stdout)
	fmt.Println()
	distance.WriteFigure5(os.Stdout)
	fmt.Println()
	rtt.WriteFigure6(os.Stdout)
	fmt.Println()
	rtt.WriteFigure14(os.Stdout)
	fmt.Println()
	integrity.WriteTable2(os.Stdout)
	fmt.Println()
	integrity.WriteFigure10(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rootanalyze: %v\n", err)
	os.Exit(1)
}
