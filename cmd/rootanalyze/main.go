// Command rootanalyze replays a dataset recorded by rootmeasure through the
// full analysis suite and prints every active-measurement table and figure.
// The world is reconstructed from the same seed flags used when recording.
//
// Usage:
//
//	rootanalyze -in study.rgds [-seed 1] [-vpscale 1] [-workers 4]
//	            [-checkpoint replay.ckpt [-resume]]
//	            [-metrics out.json] [-trace out.json] [-telemetry-addr host:port]
//	rootanalyze -diff a.json b.json
//	rootanalyze -qlog show [-filter kind=...,class=...,rcode=...] flight.qlog
//	rootanalyze -qlog compose flight.qlog
//	rootanalyze -qlog diff a.qlog b.qlog
//	rootanalyze -qlog join server.qlog client.qlog
//
// With -workers > 1 the sealed blocks of the dataset are decoded by a
// bounded worker pool while an ordered drain keeps every analysis output
// byte-identical to a serial replay. With -checkpoint the replay is
// crash-safe: accumulator state is sealed to the sidecar as blocks are
// delivered, and -resume fast-forwards a restarted replay past the
// checkpointed blocks after verifying the dataset fingerprint.
//
// -diff compares two -metrics snapshots on their logical (deterministic)
// namespace and prints a one-line verdict: "behavior unchanged" when every
// stream- and process-class metric matches, "behavior changed" otherwise.
// Exit status 0 means unchanged, 1 changed, 2 usage or I/O error.
//
// -qlog switches to flight-log mode (see runQlog): decode and filter a
// per-query flight recording, print composition tables, diff two logs in
// canonical order, or join a server-side log against a client-side one and
// check the loss accounting balances.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/measure"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/vantage"
)

func main() {
	in := flag.String("in", "study.rgds", "dataset input file")
	seed := flag.Int64("seed", 1, "world seed used when recording")
	vpScale := flag.Int("vpscale", 1, "VP population divisor used when recording")
	tlds := flag.Int("tlds", 80, "TLD count used when recording")
	workers := flag.Int("workers", 1, "block-decode workers (output is identical at any count)")
	checkpoint := flag.String("checkpoint", "", "checkpoint sidecar path (enables crash-safe replay)")
	resume := flag.Bool("resume", false, "resume from -checkpoint if it exists")
	diff := flag.Bool("diff", false, "compare two -metrics snapshots: rootanalyze -diff a.json b.json")
	qlogMode := flag.Bool("qlog", false, "flight-log mode: rootanalyze -qlog <show|compose|diff|join> file...")
	qlogFilterFlag := flag.String("filter", "", "event filter for -qlog show/compose (kind=...,class=...,rcode=...)")
	telemetry.RegisterFlags()
	flag.Parse()

	if *diff {
		os.Exit(runDiff(flag.Args()))
	}
	if *qlogMode {
		os.Exit(runQlog(flag.Args(), *qlogFilterFlag))
	}
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "rootanalyze: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "rootanalyze: -resume requires -checkpoint")
		os.Exit(2)
	}

	stopTel, err := telemetry.Start()
	if err != nil {
		fatal(err)
	}
	defer stopTel()

	mCfg := measure.DefaultConfig()
	mCfg.Seed, mCfg.TLDCount = *seed, *tlds
	topoCfg := topology.DefaultConfig()
	topoCfg.Seed = *seed
	vpCfg := vantage.DefaultConfig()
	vpCfg.Seed = *seed
	vpCfg.Scale = *vpScale
	world, err := measure.NewWorld(mCfg, topoCfg, vpCfg)
	if err != nil {
		fatal(err)
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	reader, err := dataset.NewReader(f, world.Population)
	if err != nil {
		fatal(err)
	}
	defer reader.Close()

	coverage := analysis.NewCoverage(world.System)
	stability := analysis.NewStability()
	colocation := analysis.NewColocation(world.Population)
	distance := analysis.NewDistance(world.System, world.Population)
	rtt := analysis.NewRTT()
	integrity := analysis.NewIntegrity()

	opts := dataset.ReplayOptions{
		Workers:        *workers,
		CheckpointPath: *checkpoint,
		Resume:         *resume,
	}
	probes, transfers, err := reader.ReplayWith(opts,
		coverage, stability, colocation, distance, rtt, integrity)
	if err != nil {
		fatal(err)
	}
	if reader.Torn() {
		fmt.Fprintf(os.Stderr, "rootanalyze: warning: dataset has a torn trailing block (%v); "+
			"replayed the sealed prefix only — the recording was likely interrupted "+
			"and can be completed with rootmeasure -resume\n", reader.TornReason())
	}
	fmt.Printf("replayed %d probes, %d transfers from %s\n\n", probes, transfers, *in)

	coverage.WriteTable1(os.Stdout)
	fmt.Println()
	coverage.WriteTable4(os.Stdout)
	fmt.Println()
	stability.WriteFigure3(os.Stdout)
	fmt.Println()
	colocation.WriteFigure4(os.Stdout)
	fmt.Println()
	distance.WriteFigure5(os.Stdout)
	fmt.Println()
	rtt.WriteFigure6(os.Stdout)
	fmt.Println()
	rtt.WriteFigure14(os.Stdout)
	fmt.Println()
	integrity.WriteTable2(os.Stdout)
	fmt.Println()
	integrity.WriteFigure10(os.Stdout)
}

// runDiff implements -diff: load two snapshots, compare the logical
// namespace, print the verdict. Returns the process exit code.
func runDiff(args []string) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "rootanalyze: -diff wants exactly two snapshot files")
		return 2
	}
	a, err := os.ReadFile(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "rootanalyze: %v\n", err)
		return 2
	}
	b, err := os.ReadFile(args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "rootanalyze: %v\n", err)
		return 2
	}
	res, err := telemetry.DiffSnapshots(a, b)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rootanalyze: %v\n", err)
		return 2
	}
	res.WriteDiff(os.Stdout)
	if res.Identical() {
		return 0
	}
	return 1
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rootanalyze: %v\n", err)
	os.Exit(1)
}
