package main

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/qlog"
)

// runQlog implements the -qlog flight-log mode:
//
//	rootanalyze -qlog show [-filter kind=...,class=...,rcode=...] flight.qlog
//	rootanalyze -qlog compose [-filter ...] flight.qlog
//	rootanalyze -qlog diff a.qlog b.qlog
//	rootanalyze -qlog join server.qlog client.qlog
//
// show prints events one per line; compose prints B-Root-style composition
// tables; diff compares two logs in canonical order and reports the first
// diverging event (exit 0 identical, 1 different); join pairs client-side
// events against server-side events by key and checks the loss accounting
// balances (exit 0 balanced, 1 not). Exit 2 is usage or I/O error.
func runQlog(args []string, filter string) int {
	if len(args) < 1 {
		fmt.Fprintln(os.Stderr, "rootanalyze: -qlog wants a verb: show, compose, diff, join")
		return 2
	}
	verb, rest := args[0], args[1:]
	switch verb {
	case "show", "compose":
		if len(rest) != 1 {
			fmt.Fprintf(os.Stderr, "rootanalyze: -qlog %s wants one flight-log file\n", verb)
			return 2
		}
		flt, err := parseQlogFilter(filter)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rootanalyze: %v\n", err)
			return 2
		}
		evs, code := loadQlog(rest[0])
		if code != 0 {
			return code
		}
		evs = flt.apply(evs)
		if verb == "show" {
			return qlogShow(evs)
		}
		return qlogCompose(evs)
	case "diff":
		if len(rest) != 2 {
			fmt.Fprintln(os.Stderr, "rootanalyze: -qlog diff wants two flight-log files")
			return 2
		}
		return qlogDiff(rest[0], rest[1])
	case "join":
		if len(rest) != 2 {
			fmt.Fprintln(os.Stderr, "rootanalyze: -qlog join wants server.qlog client.qlog")
			return 2
		}
		return qlogJoin(rest[0], rest[1])
	default:
		fmt.Fprintf(os.Stderr, "rootanalyze: unknown -qlog verb %q (want show, compose, diff, join)\n", verb)
		return 2
	}
}

// loadQlog decodes one flight log, warning (not failing) on a torn tail —
// same stance as the dataset replayer.
func loadQlog(path string) ([]qlog.Event, int) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rootanalyze: %v\n", err)
		return nil, 2
	}
	defer f.Close()
	r, err := qlog.NewReader(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rootanalyze: %s: %v\n", path, err)
		return nil, 2
	}
	evs, err := r.Events()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rootanalyze: %s: %v\n", path, err)
		return nil, 2
	}
	if r.Torn() {
		fmt.Fprintf(os.Stderr, "rootanalyze: warning: %s has a torn trailing block (%v); "+
			"decoded the sealed prefix only\n", path, r.TornReason())
	}
	return evs, 0
}

// qlogFilter selects events by kind name, class enum name, and rcode value.
// Zero fields match everything.
type qlogFilter struct {
	kind  string
	class string
	rcode int64 // -1 = any
}

func parseQlogFilter(s string) (qlogFilter, error) {
	f := qlogFilter{rcode: -1}
	if s == "" {
		return f, nil
	}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return f, fmt.Errorf("bad -filter term %q (want key=value)", part)
		}
		switch k {
		case "kind":
			f.kind = v
		case "class":
			f.class = v
		case "rcode":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return f, fmt.Errorf("bad -filter rcode %q", v)
			}
			f.rcode = n
		default:
			return f, fmt.Errorf("unknown -filter key %q (want kind, class, rcode)", k)
		}
	}
	return f, nil
}

func (f qlogFilter) apply(evs []qlog.Event) []qlog.Event {
	out := evs[:0]
	for _, e := range evs {
		d := e.Def()
		if f.kind != "" && d.Kind != f.kind {
			continue
		}
		if f.class != "" && !fieldHasEnumValue(e, "class", f.class) {
			continue
		}
		if f.rcode >= 0 && !fieldHasNumValue(e, "rcode", uint64(f.rcode)) {
			continue
		}
		out = append(out, e)
	}
	return out
}

// fieldHasEnumValue reports whether the event's schema has the named field
// and its value renders as the given enum name.
func fieldHasEnumValue(e qlog.Event, field, want string) bool {
	for i, fd := range e.Def().Fields {
		if fd.Name != field {
			continue
		}
		v := e.Vals[i]
		return int(v) < len(fd.Enum) && fd.Enum[v] == want
	}
	return false
}

func fieldHasNumValue(e qlog.Event, field string, want uint64) bool {
	for i, fd := range e.Def().Fields {
		if fd.Name == field {
			return e.Vals[i] == want
		}
	}
	return false
}

// qlogShow prints events in canonical order, one per line.
func qlogShow(evs []qlog.Event) int {
	qlog.SortCanonical(evs)
	for _, e := range evs {
		fmt.Println(e.String())
	}
	fmt.Printf("%d events\n", len(evs))
	return 0
}

// composeMaxDistinct bounds which numeric fields get a composition table: a
// field with more observed values than this is a measurement (latency, flow
// key), not a composition dimension, and is skipped.
const composeMaxDistinct = 8

// qlogCompose prints per-kind composition tables in the style of the B-Root
// query-composition study: for every field that behaves like a category
// (declared enum, or few distinct observed values), the share of events per
// value.
func qlogCompose(evs []qlog.Event) int {
	total := len(evs)
	fmt.Printf("%d events\n", total)
	for kind := range qlog.Registry {
		d := &qlog.Registry[kind]
		var kindEvs []qlog.Event
		for _, e := range evs {
			if e.Kind == kind {
				kindEvs = append(kindEvs, e)
			}
		}
		if len(kindEvs) == 0 {
			continue
		}
		fmt.Printf("\n%s: %d events\n", d.Kind, len(kindEvs))
		for fi, fd := range d.Fields {
			counts := make(map[uint64]int)
			for _, e := range kindEvs {
				counts[e.Vals[fi]]++
			}
			if len(fd.Enum) == 0 && len(counts) > composeMaxDistinct {
				continue // a measurement, not a composition dimension
			}
			vals := make([]uint64, 0, len(counts))
			for v := range counts {
				vals = append(vals, v)
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			for _, v := range vals {
				label := strconv.FormatUint(v, 10)
				if int(v) < len(fd.Enum) {
					label = fd.Enum[v]
				}
				n := counts[v]
				fmt.Printf("  %-10s %-10s %6d  %5.1f%%\n",
					fd.Name, label, n, 100*float64(n)/float64(len(kindEvs)))
			}
		}
	}
	return 0
}

// qlogDiff compares two flight logs in canonical order: the logical event
// streams must carry identical content, whatever append order shard
// scheduling produced. Prints the first diverging event when they differ.
func qlogDiff(pathA, pathB string) int {
	a, code := loadQlog(pathA)
	if code != 0 {
		return code
	}
	b, code := loadQlog(pathB)
	if code != 0 {
		return code
	}
	qlog.SortCanonical(a)
	qlog.SortCanonical(b)
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if qlog.Compare(a[i], b[i]) != 0 {
			fmt.Printf("flight logs differ: first divergence at event %d\n  a: %s\n  b: %s\n",
				i, a[i], b[i])
			return 1
		}
	}
	if len(a) != len(b) {
		longer, path := a, pathA
		if len(b) > len(a) {
			longer, path = b, pathB
		}
		fmt.Printf("flight logs differ: %s has %d extra events, first extra:\n  %s\n",
			path, len(longer)-n, longer[n])
		return 1
	}
	fmt.Printf("flight logs identical: %d events\n", n)
	return 0
}

// clientLost reports whether a client-side event's terminal outcome is a
// loss (blast/query outcome=lost, client/query outcome=error).
func clientLost(e qlog.Event) bool {
	switch e.Def().Kind {
	case "blast/query":
		return e.Val("outcome") == 1
	case "client/query":
		return e.Val("outcome") == 2
	}
	return false
}

// serverServed reports whether a server-side event shows a response leaving
// the egress funnel (fate ok, not shed, verdict none/send/slip).
func serverServed(e qlog.Event) bool {
	return e.Val("fate") == 0 && e.Val("shed") == 0 && e.Val("verdict") != 2
}

// qlogJoin pairs every client-side event with the server-side events for the
// same key (both sides hash the identical query prefix, and equal samplers
// select the same queries) and checks the accounting balances: every sampled
// query the client sent is either matched to a served response or accounted
// lost with a server-side explanation.
func qlogJoin(serverPath, clientPath string) int {
	sevs, code := loadQlog(serverPath)
	if code != 0 {
		return code
	}
	cevs, code := loadQlog(clientPath)
	if code != 0 {
		return code
	}
	server := make(map[uint64][]qlog.Event)
	for _, e := range sevs {
		if e.Def().Kind == "serve/query" {
			server[e.Key] = append(server[e.Key], e)
		}
	}
	var sent, matched, lost, unmatched int
	lostWhy := map[string]int{}
	attempts := map[uint64]int{}
	var waitUs uint64
	qlog.SortCanonical(cevs)
	for _, e := range cevs {
		k := e.Def().Kind
		if k != "blast/query" && k != "client/query" {
			continue
		}
		sent++
		attempts[e.Val("attempts")]++
		waitUs += e.Val("wait_us")
		if clientLost(e) {
			lost++
			lostWhy[explainLoss(server[e.Key])]++
			continue
		}
		served := false
		for _, se := range server[e.Key] {
			if serverServed(se) {
				served = true
				break
			}
		}
		if served {
			matched++
		} else {
			unmatched++
		}
	}
	fmt.Printf("join: client=%d server=%d sent=%d matched=%d lost=%d unmatched=%d\n",
		len(cevs), len(sevs), sent, matched, lost, unmatched)
	for _, why := range []string{"egress-lost", "rrl-drop", "shed", "ingress-drop", "no-server-event"} {
		if n := lostWhy[why]; n > 0 {
			fmt.Printf("  lost by server outcome: %-15s %d\n", why, n)
		}
	}
	keys := make([]uint64, 0, len(attempts))
	for a := range attempts {
		keys = append(keys, a)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, a := range keys {
		fmt.Printf("  attempts=%d: %d\n", a, attempts[a])
	}
	fmt.Printf("  backoff waited: %dus total\n", waitUs)
	if sent == matched+lost {
		fmt.Println("balance: sent == matched + lost")
		return 0
	}
	fmt.Printf("balance BROKEN: sent=%d != matched=%d + lost=%d (%d ok-but-unmatched)\n",
		sent, matched, lost, unmatched)
	return 1
}

// explainLoss characterizes the server's view of a query the client declared
// lost: the server answered and the reply vanished (egress-lost), RRL
// suppressed it, the slow queue shed it, the link dropped it on ingress, or
// the server never saw it.
func explainLoss(sevs []qlog.Event) string {
	if len(sevs) == 0 {
		return "no-server-event"
	}
	var sawDrop, sawShed bool
	for _, e := range sevs {
		switch {
		case serverServed(e):
			return "egress-lost"
		case e.Val("verdict") == 2:
			sawDrop = true
		case e.Val("shed") == 1:
			sawShed = true
		}
	}
	if sawDrop {
		return "rrl-drop"
	}
	if sawShed {
		return "shed"
	}
	return "ingress-drop"
}
