// Command rootblast is a DNS load generator modeled on ZDNS's client
// architecture: sharded connected UDP sockets, pipelined queries matched by
// message ID, and a seeded query-composition generator reproducing the
// B-Root traffic mix (A/AAAA ratios, junk queries for nonexistent TLDs,
// heavy-hitter TLD skew, DNSSEC DO-bit ratio). It reports throughput and a
// latency distribution read from the telemetry layer's per-bucket
// histograms.
//
// Usage:
//
//	rootblast [-server 127.0.0.1:5353] [-duration 5s | -count N]
//	          [-blast-workers 4] [-window 64] [-tlds 120] [-seed 1]
//	          [-junk 0.45] [-aaaa 0.18] [-do 0.72] [-skew 1.0]
//	          [-retry 0] [-backoff 0s] [-backoff-cap 0s]
//	          [-netem loss=0.1,seed=7]
//	          [-qlog flight.qlog] [-qlog-sample every=64,seed=7]
//	          [-report out.json] [-metrics out.json]
//
// -qlog records one blast/query flight-recorder event per sampled query at
// its terminal outcome (decode with `rootanalyze -qlog`); a panic dumps the
// black-box ring to <path>.blackbox. Give the server the same -qlog-sample
// spec so `rootanalyze -qlog join` can pair both sides' records.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/blast"
	"repro/internal/dnsclient"
	"repro/internal/netem"
	"repro/internal/prof"
	"repro/internal/qlog"
	"repro/internal/telemetry"
)

func main() {
	server := flag.String("server", "127.0.0.1:5353", "target server address (UDP)")
	duration := flag.Duration("duration", 5*time.Second, "how long to blast (ignored when -count is set)")
	count := flag.Int64("count", 0, "total queries to send instead of a duration")
	workers := flag.Int("blast-workers", 4, "independent client sockets, each with its own pipeline")
	window := flag.Int("window", 64, "outstanding (pipelined) queries per socket")
	timeout := flag.Duration("timeout", 250*time.Millisecond, "reap outstanding queries older than this")
	tlds := flag.Int("tlds", 120, "TLD delegation count of the target zone (must match rootserve -tlds)")
	seed := flag.Uint64("seed", 1, "query-composition seed")
	corpusSize := flag.Int("corpus", 8192, "distinct queries to pregenerate")
	junk := flag.Float64("junk", blast.DefaultMix().Junk, "fraction of A/AAAA qnames naming a nonexistent TLD")
	aaaa := flag.Float64("aaaa", blast.DefaultMix().AAAA, "AAAA fraction of all queries")
	dobit := flag.Float64("do", blast.DefaultMix().DO, "fraction of queries with EDNS0 and the DO bit")
	skew := flag.Float64("skew", blast.DefaultMix().Skew, "heavy-hitter Zipf exponent over existing TLDs")
	retries := flag.Int("retry", 0, "re-sends per query after its attempt deadline expires (same ID, same wire)")
	backoff := flag.Duration("backoff", 0, "base delay folded into each retry's deadline; 0 = immediate, like dig")
	backoffCap := flag.Duration("backoff-cap", 0, "cap on the exponential backoff; 0 = 8x base")
	netemSpec := flag.String("netem", "", "client-side adverse-network profile, e.g. loss=0.1,seed=7 (see internal/netem)")
	qlogPath := flag.String("qlog", "", "record a per-query flight log to this file (empty = off)")
	qlogSample := flag.String("qlog-sample", "", "flight-log sampler, e.g. every=64,seed=7 (empty = every query)")
	report := flag.String("report", "", "write the run report as JSON to `file`")
	telemetry.RegisterFlags()
	flag.Parse()

	netemProf, err := netem.ParseProfile(*netemSpec)
	if err != nil {
		fatal(err)
	}

	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()
	stopTel, err := telemetry.Start()
	if err != nil {
		fatal(err)
	}
	defer stopTel()
	// The RTT histogram is the tool's primary output; record it whether or
	// not a telemetry flag was given.
	telemetry.SetEnabled(true)

	mix := blast.DefaultMix()
	mix.Junk = *junk
	mix.AAAA = *aaaa
	mix.DO = *dobit
	mix.Skew = *skew
	corpus, err := blast.BuildCorpus(mix, *tlds, *corpusSize, *seed)
	if err != nil {
		fatal(err)
	}

	var rec *qlog.Recorder
	if *qlogPath != "" {
		sampler, err := qlog.ParseSampler(*qlogSample)
		if err != nil {
			fatal(err)
		}
		qf, err := os.Create(*qlogPath)
		if err != nil {
			fatal(err)
		}
		defer qf.Close()
		if rec, err = qlog.New(qf, sampler, *qlogPath+".blackbox"); err != nil {
			fatal(err)
		}
		defer rec.Close()
		defer qlog.DumpOnPanic(*qlogPath + ".blackbox")
	}

	cfg := blast.Config{
		Addr:     *server,
		Workers:  *workers,
		Window:   *window,
		Duration: *duration,
		Count:    *count,
		Timeout:  *timeout,
		Retries:  *retries,
		Backoff:  dnsclient.Backoff{Base: *backoff, Cap: *backoffCap, Seed: *seed},
		Netem:    netemProf,
		QLog:     rec,
		Corpus:   corpus,
	}
	if *count > 0 {
		cfg.Duration = 0
	}
	res, err := blast.Run(cfg)
	if err != nil {
		fatal(err)
	}
	if err := rec.Close(); err != nil {
		fatal(err)
	}
	fmt.Println(res)
	if *report != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*report, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rootblast: %v\n", err)
	os.Exit(1)
}
