// Command rootdig is a minimal dig: it queries a DNS server (by default the
// local rootserve instance) and prints the response in dig-like format.
//
// Usage:
//
//	rootdig [-server 127.0.0.1:5353] [-dnssec] [name] [type]
//	rootdig -chaos hostname.bind
//	rootdig -axfr
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dnsclient"
	"repro/internal/dnswire"
)

func main() {
	server := flag.String("server", "127.0.0.1:5353", "server address")
	dnssec := flag.Bool("dnssec", false, "set the DO bit (EDNS0, 4096 bytes)")
	chaos := flag.String("chaos", "", "CH TXT identity query (hostname.bind, id.server, ...)")
	axfr := flag.Bool("axfr", false, "request a full zone transfer")
	flag.Parse()

	c := dnsclient.New(*server)
	if *dnssec {
		c.SetEDNSSize(4096)
	}

	switch {
	case *chaos != "":
		txt, err := c.QueryChaosTXT(dnswire.MustName(*chaos))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s. CH TXT %q\n", *chaos, txt)
	case *axfr:
		z, err := c.TransferZone()
		if err != nil {
			fatal(err)
		}
		if err := z.Canonicalize().Print(os.Stdout); err != nil {
			fatal(err)
		}
	default:
		name, typ := ".", "NS"
		if flag.NArg() > 0 {
			name = flag.Arg(0)
		}
		if flag.NArg() > 1 {
			typ = flag.Arg(1)
		}
		qname, err := dnswire.NewName(name)
		if err != nil {
			fatal(err)
		}
		qtype, err := dnswire.TypeFromString(typ)
		if err != nil {
			fatal(err)
		}
		resp, err := c.Query(qname, qtype)
		if err != nil {
			fatal(err)
		}
		printResponse(resp)
	}
}

func printResponse(m *dnswire.Message) {
	fmt.Printf(";; status: %s, id: %d, aa: %v\n",
		m.Header.Rcode, m.Header.ID, m.Header.Authoritative)
	fmt.Println(";; QUESTION")
	for _, q := range m.Questions {
		fmt.Printf(";%s\n", q)
	}
	sections := []struct {
		label string
		rrs   []dnswire.RR
	}{{"ANSWER", m.Answers}, {"AUTHORITY", m.Authority}, {"ADDITIONAL", m.Additional}}
	for _, sec := range sections {
		if len(sec.rrs) == 0 {
			continue
		}
		fmt.Printf(";; %s\n", sec.label)
		for _, rr := range sec.rrs {
			if rr.Type() == dnswire.TypeOPT {
				continue
			}
			fmt.Println(rr)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rootdig: %v\n", err)
	os.Exit(1)
}
