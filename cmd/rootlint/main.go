// Command rootlint runs the repository's static-analysis suite
// (internal/lint) over the module: detrand (no wall clock / global
// randomness in simulation packages), hotpath (zero-alloc contract on
// //rootlint:hotpath functions), failpointsite (chaos-site registry and
// coverage cross-check), orderedmap (no map-iteration writes into ordered
// sinks), and directive (annotation grammar). Any finding is a build
// failure: the invariants these analyzers enforce are the ones the
// campaign's byte-identical-output guarantees rest on.
//
// Usage:
//
//	rootlint [-list] [packages]
//
// The package arguments are accepted for familiarity ("./...") but the
// whole enclosing module is always analyzed: every invariant here is a
// whole-program property.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rootlint [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Suite() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range lint.Suite() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	prog, err := lint.LoadModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rootlint:", err)
		os.Exit(2)
	}
	diags, err := lint.RunAnalyzers(prog, lint.Suite())
	if err != nil {
		fmt.Fprintln(os.Stderr, "rootlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		p := prog.Fset.Position(d.Pos)
		fmt.Printf("%s:%d:%d: [%s] %s\n", p.Filename, p.Line, p.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rootlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
