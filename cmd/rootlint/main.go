// Command rootlint runs the repository's static-analysis suite
// (internal/lint) over the module: detrand (no wall clock / global
// randomness in simulation packages), hotpath (zero-alloc contract on
// //rootlint:hotpath functions), failpointsite (chaos-site registry and
// coverage cross-check), orderedmap (no map-iteration writes into ordered
// sinks), and directive (annotation grammar). Any finding is a build
// failure: the invariants these analyzers enforce are the ones the
// campaign's byte-identical-output guarantees rest on.
//
// Usage:
//
//	rootlint [-list] [-time] [packages]
//
// The package arguments are accepted for familiarity ("./...") but the
// whole enclosing module is always analyzed: every invariant here is a
// whole-program property. -time prints per-analyzer wall time to stderr
// (plus the load/type-check time), which is what scripts/check.sh uses to
// keep whole-program passes from rotting the edit loop.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	timing := flag.Bool("time", false, "print per-analyzer wall time to stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rootlint [-list] [-time] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Suite() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range lint.Suite() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	t0 := time.Now()
	prog, err := lint.LoadModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rootlint:", err)
		os.Exit(2)
	}
	if *timing {
		fmt.Fprintf(os.Stderr, "rootlint: %-14s %8.0fms\n", "load+typecheck", time.Since(t0).Seconds()*1000)
	}

	var diags []lint.Diagnostic
	if *timing {
		// Run analyzers one at a time so each gets its own wall-time line;
		// RunAnalyzers sorts within each call and the final report re-sorts
		// nothing, so ordering per analyzer stays deterministic.
		for _, a := range lint.Suite() {
			ta := time.Now()
			ds, err := lint.RunAnalyzers(prog, []*lint.Analyzer{a})
			if err != nil {
				fmt.Fprintln(os.Stderr, "rootlint:", err)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "rootlint: %-14s %8.0fms\n", a.Name, time.Since(ta).Seconds()*1000)
			diags = append(diags, ds...)
		}
	} else {
		diags, err = lint.RunAnalyzers(prog, lint.Suite())
		if err != nil {
			fmt.Fprintln(os.Stderr, "rootlint:", err)
			os.Exit(2)
		}
	}
	for _, d := range diags {
		p := prog.Fset.Position(d.Pos)
		fmt.Printf("%s:%d:%d: [%s] %s\n", p.Filename, p.Line, p.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rootlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
