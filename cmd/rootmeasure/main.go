// Command rootmeasure runs the active measurement campaign and records the
// event stream to a compressed dataset file, the equivalent of the paper's
// published NLNOG-DNS-1 data. Analyze the recording with rootanalyze using
// the same seed and scale flags (the world is reconstructed
// deterministically from them).
//
// Usage:
//
//	rootmeasure -out study.rgds [-seed 1] [-workers N] [-scale 96] [-vpscale 1] [-start YYYY-MM-DD] [-end YYYY-MM-DD]
//	            [-checkpoint study.ckpt] [-checkpoint-every N] [-resume] [-errbudget N] [-chaos spec]
//	            [-qlog flight.qlog] [-qlog-sample every=64,seed=7]
//	            [-cpuprofile prof.out] [-memprofile mem.out]
//	            [-metrics out.json] [-trace out.json] [-telemetry-addr host:port]
//
// With -checkpoint, the recording is crash-safe: progress is checkpointed
// every -checkpoint-every ticks, and a killed run restarted with -resume
// continues from the checkpoint and produces a byte-identical dataset.
//
// -qlog additionally records one flight-recorder event per campaign probe
// and transfer (decode with `rootanalyze -qlog`). The flight log rides the
// same checkpoint protocol as the dataset, so a killed-and-resumed recording
// reproduces it byte-identically; a panic, chaos kill, or error-budget abort
// dumps the in-memory black-box ring to <path>.blackbox.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/internal/failpoint"
	"repro/internal/measure"
	"repro/internal/prof"
	"repro/internal/qlog"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/vantage"
)

func main() {
	out := flag.String("out", "study.rgds", "dataset output file")
	seed := flag.Int64("seed", 1, "world seed (must match rootanalyze)")
	workers := flag.Int("workers", 0, "campaign worker goroutines (0 = one per CPU; recorded datasets are identical at any count)")
	scale := flag.Int("scale", 96, "schedule thinning factor")
	vpScale := flag.Int("vpscale", 1, "VP population divisor (must match rootanalyze)")
	tlds := flag.Int("tlds", 80, "synthesized root zone TLD count")
	start := flag.String("start", "", "campaign start (YYYY-MM-DD)")
	end := flag.String("end", "", "campaign end (YYYY-MM-DD)")
	checkpoint := flag.String("checkpoint", "", "checkpoint sidecar file (enables crash-safe, resumable recording)")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint cadence in ticks (0 = 32; must match between a run and its resume)")
	resume := flag.Bool("resume", false, "resume an interrupted recording from -checkpoint")
	errBudget := flag.Int("errbudget", 0, "degraded outcomes (recovered panics, probe errors, retried write errors) tolerated before aborting; negative = unlimited")
	chaos := flag.String("chaos", "", "failpoint spec site=action[@N][,...] with action panic|error|kill, e.g. campaign/tick=kill@5")
	qlogPath := flag.String("qlog", "", "record a per-event flight log to this file (empty = off)")
	qlogSample := flag.String("qlog-sample", "", "flight-log sampler, e.g. every=64,seed=7 (empty = every event)")
	telemetry.RegisterFlags()
	flag.Parse()

	if *chaos != "" {
		if err := failpoint.Enable(*chaos); err != nil {
			fatal(err)
		}
	}
	if *resume && *checkpoint == "" {
		fatal(errors.New("-resume requires -checkpoint"))
	}

	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	stopTel, err := telemetry.Start()
	if err != nil {
		fatal(err)
	}
	defer stopTel()

	mCfg := measure.DefaultConfig()
	mCfg.Seed, mCfg.Scale, mCfg.TLDCount = *seed, *scale, *tlds
	mCfg.Workers = *workers
	mCfg.CheckpointPath = *checkpoint
	mCfg.CheckpointEvery = *ckptEvery
	mCfg.Resume = *resume
	mCfg.ErrorBudget = *errBudget
	if *start != "" {
		t, err := time.Parse("2006-01-02", *start)
		if err != nil {
			fatal(err)
		}
		mCfg.Start = t
	}
	if *end != "" {
		t, err := time.Parse("2006-01-02", *end)
		if err != nil {
			fatal(err)
		}
		mCfg.End = t
	}
	topoCfg := topology.DefaultConfig()
	topoCfg.Seed = *seed
	vpCfg := vantage.DefaultConfig()
	vpCfg.Seed = *seed
	vpCfg.Scale = *vpScale

	world, err := measure.NewWorld(mCfg, topoCfg, vpCfg)
	if err != nil {
		fatal(err)
	}
	var f *os.File
	var writer *dataset.Writer
	var cp *measure.Checkpoint
	if *resume {
		// Continue the interrupted recording: reopen the dataset and rewind
		// it to the sealed offset the checkpoint recorded.
		if cp, err = measure.LoadCheckpoint(*checkpoint); err != nil {
			fatal(err)
		}
		state, err := cp.HandlerState(0)
		if err != nil {
			fatal(err)
		}
		if f, err = os.OpenFile(*out, os.O_RDWR, 0); err != nil {
			fatal(err)
		}
		if writer, err = dataset.ResumeWriter(f, state); err != nil {
			fatal(err)
		}
		fmt.Printf("resuming at tick %d/%d (%d probes, %d transfers recorded)\n",
			cp.TickPos, cp.TickCount, writer.Probes, writer.Transfers)
	} else {
		if f, err = os.Create(*out); err != nil {
			fatal(err)
		}
		if writer, err = dataset.NewWriter(f); err != nil {
			fatal(err)
		}
	}
	defer f.Close()

	// The flight recorder, when enabled, is handler #1 behind the dataset
	// writer: its resume blob rides the same checkpoint sidecar.
	handlers := []measure.Handler{writer}
	var qrec *qlog.Recorder
	blackbox := ""
	if *qlogPath != "" {
		sampler, err := qlog.ParseSampler(*qlogSample)
		if err != nil {
			fatal(err)
		}
		blackbox = *qlogPath + ".blackbox"
		var qf *os.File
		if *resume {
			state, err := cp.HandlerState(1)
			if err != nil {
				fatal(err)
			}
			if qf, err = os.OpenFile(*qlogPath, os.O_RDWR, 0); err != nil {
				fatal(err)
			}
			if qrec, err = qlog.Resume(qf, sampler, blackbox, state); err != nil {
				fatal(err)
			}
		} else {
			if qf, err = os.Create(*qlogPath); err != nil {
				fatal(err)
			}
			if qrec, err = qlog.New(qf, sampler, blackbox); err != nil {
				fatal(err)
			}
		}
		defer qf.Close()
		defer qlog.DumpOnPanic(blackbox)
		handlers = append(handlers, measure.NewFlightLog(qrec))
	}

	began := time.Now()
	if err := measure.NewCampaign(mCfg, world).Run(handlers...); err != nil {
		if errors.Is(err, failpoint.ErrKilled) {
			// Simulated SIGKILL: exit without sealing or closing, leaving
			// the on-disk state exactly as a real kill would — except the
			// black-box ring, which is the crash artifact itself: every
			// chaos kill leaves an inspectable flight-history dump.
			if blackbox != "" {
				_ = qlog.DumpBlackbox(blackbox)
			}
			fmt.Fprintf(os.Stderr, "rootmeasure: %v (restart with -resume)\n", err)
			os.Exit(3)
		}
		// Fatal campaign errors (error-budget aborts above all) leave the
		// same trace.
		if blackbox != "" {
			_ = qlog.DumpBlackbox(blackbox)
		}
		fatal(err)
	}
	if err := writer.Close(); err != nil {
		fatal(err)
	}
	if err := qrec.Close(); err != nil {
		fatal(err)
	}
	info, _ := f.Stat()
	fmt.Printf("recorded %d probes and %d transfers from %d VPs in %s",
		writer.Probes, writer.Transfers, len(world.Population.VPs),
		time.Since(began).Round(time.Second))
	if info != nil {
		fmt.Printf(" (%d bytes, %.1f B/event)", info.Size(),
			float64(info.Size())/float64(writer.Probes+writer.Transfers))
	}
	fmt.Println()
	if qrec != nil {
		fmt.Printf("flight log: %d events in %s\n", qrec.Events(), *qlogPath)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rootmeasure: %v\n", err)
	os.Exit(1)
}
