// Command rootmeasure runs the active measurement campaign and records the
// event stream to a compressed dataset file, the equivalent of the paper's
// published NLNOG-DNS-1 data. Analyze the recording with rootanalyze using
// the same seed and scale flags (the world is reconstructed
// deterministically from them).
//
// Usage:
//
//	rootmeasure -out study.rgds [-seed 1] [-workers N] [-scale 96] [-vpscale 1] [-start YYYY-MM-DD] [-end YYYY-MM-DD]
//	            [-cpuprofile prof.out] [-memprofile mem.out]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/internal/measure"
	"repro/internal/prof"
	"repro/internal/topology"
	"repro/internal/vantage"
)

func main() {
	out := flag.String("out", "study.rgds", "dataset output file")
	seed := flag.Int64("seed", 1, "world seed (must match rootanalyze)")
	workers := flag.Int("workers", 0, "campaign worker goroutines (0 = one per CPU; recorded datasets are identical at any count)")
	scale := flag.Int("scale", 96, "schedule thinning factor")
	vpScale := flag.Int("vpscale", 1, "VP population divisor (must match rootanalyze)")
	tlds := flag.Int("tlds", 80, "synthesized root zone TLD count")
	start := flag.String("start", "", "campaign start (YYYY-MM-DD)")
	end := flag.String("end", "", "campaign end (YYYY-MM-DD)")
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	mCfg := measure.DefaultConfig()
	mCfg.Seed, mCfg.Scale, mCfg.TLDCount = *seed, *scale, *tlds
	mCfg.Workers = *workers
	if *start != "" {
		t, err := time.Parse("2006-01-02", *start)
		if err != nil {
			fatal(err)
		}
		mCfg.Start = t
	}
	if *end != "" {
		t, err := time.Parse("2006-01-02", *end)
		if err != nil {
			fatal(err)
		}
		mCfg.End = t
	}
	topoCfg := topology.DefaultConfig()
	topoCfg.Seed = *seed
	vpCfg := vantage.DefaultConfig()
	vpCfg.Seed = *seed
	vpCfg.Scale = *vpScale

	world, err := measure.NewWorld(mCfg, topoCfg, vpCfg)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	writer, err := dataset.NewWriter(f)
	if err != nil {
		fatal(err)
	}

	began := time.Now()
	if err := measure.NewCampaign(mCfg, world).Run(writer); err != nil {
		fatal(err)
	}
	if err := writer.Close(); err != nil {
		fatal(err)
	}
	info, _ := f.Stat()
	fmt.Printf("recorded %d probes and %d transfers from %d VPs in %s",
		writer.Probes, writer.Transfers, len(world.Population.VPs),
		time.Since(began).Round(time.Second))
	if info != nil {
		fmt.Printf(" (%d bytes, %.1f B/event)", info.Size(),
			float64(info.Size())/float64(writer.Probes+writer.Transfers))
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rootmeasure: %v\n", err)
	os.Exit(1)
}
