// Command rootserve serves a synthesized, signed root zone on real UDP and
// TCP sockets: referrals, priming, DNSSEC answers, CHAOS identity, and AXFR.
// It prints the trust anchor DS record so clients (rootdig, zonemdcheck) can
// validate what they receive.
//
// Usage:
//
//	rootserve [-addr 127.0.0.1:5353] [-tlds 120] [-hostname id] [-no-axfr]
//	          [-serve-workers N] [-no-cache] [-cache-bytes N]
//	          [-netem loss=0.1,seed=7] [-rrl rate=0.5,slip=2]
//	          [-qlog flight.qlog] [-qlog-sample every=64,seed=7]
//	          [-tcp-timeout 2m] [-max-tcp-conns 64]
//	          [-metrics out.json] [-telemetry-addr host:port]
//
// -qlog records one flight-recorder event per sampled query (decode with
// `rootanalyze -qlog`); a panic dumps the in-memory black-box ring to
// <path>.blackbox. Give the client the same -qlog-sample spec so
// `rootanalyze -qlog join` can pair both sides' records.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/dnssec"
	"repro/internal/dnsserver"
	"repro/internal/netem"
	"repro/internal/qlog"
	"repro/internal/telemetry"
	"repro/internal/zone"
	"repro/internal/zonemd"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5353", "listen address (UDP and TCP)")
	tlds := flag.Int("tlds", 120, "number of TLD delegations to synthesize")
	hostname := flag.String("hostname", "local1.root.example", "CHAOS hostname.bind/id.server answer")
	version := flag.String("version", "repro-rootserve-1.0", "CHAOS version.bind answer")
	noAXFR := flag.Bool("no-axfr", false, "refuse zone transfers")
	useRSA := flag.Bool("rsa", false, "sign with RSA/SHA-256 (algorithm 8, like the real root) instead of ECDSA-P256")
	serveWorkers := flag.Int("serve-workers", 0, "UDP read loops (SO_REUSEPORT sockets on linux); 0 = GOMAXPROCS")
	noCache := flag.Bool("no-cache", false, "disable the response cache (every query takes the full lookup path)")
	cacheBytes := flag.Int64("cache-bytes", 0, "response cache budget in bytes; 0 = 8 MiB default")
	netemSpec := flag.String("netem", "", "adverse-network profile, e.g. loss=0.1,corrupt=0.05,seed=7 (see internal/netem)")
	rrlSpec := flag.String("rrl", "", "response-rate-limiting, e.g. rate=0.5,burst=8,slip=2,seed=7 (empty = off)")
	qlogPath := flag.String("qlog", "", "record a per-query flight log to this file (empty = off)")
	qlogSample := flag.String("qlog-sample", "", "flight-log sampler, e.g. every=64,seed=7 (empty = every query)")
	tcpTimeout := flag.Duration("tcp-timeout", 0, "per-connection TCP idle deadline; 0 = 2m default, negative = no deadline")
	maxTCP := flag.Int("max-tcp-conns", 0, "concurrent TCP connection cap; 0 = 64 default, negative = unlimited")
	telemetry.RegisterFlags()
	flag.Parse()

	netemProf, err := netem.ParseProfile(*netemSpec)
	if err != nil {
		fatal(err)
	}
	rrlCfg, err := dnsserver.ParseRRL(*rrlSpec)
	if err != nil {
		fatal(err)
	}

	stopTel, err := telemetry.Start()
	if err != nil {
		fatal(err)
	}
	defer stopTel()

	var rec *qlog.Recorder
	if *qlogPath != "" {
		sampler, err := qlog.ParseSampler(*qlogSample)
		if err != nil {
			fatal(err)
		}
		qf, err := os.Create(*qlogPath)
		if err != nil {
			fatal(err)
		}
		defer qf.Close()
		if rec, err = qlog.New(qf, sampler, *qlogPath+".blackbox"); err != nil {
			fatal(err)
		}
		defer rec.Close()
		defer qlog.DumpOnPanic(*qlogPath + ".blackbox")
	}

	var signer *dnssec.Signer
	if *useRSA {
		signer, err = dnssec.NewRSASigner(nil)
	} else {
		signer, err = dnssec.NewSigner(nil)
	}
	if err != nil {
		fatal(err)
	}
	cfg := zone.DefaultRootConfig()
	cfg.TLDCount = *tlds
	now := time.Now().UTC()
	cfg.Serial = zone.SerialForDate(now.Year(), int(now.Month()), now.Day(), 0)
	signed, err := signer.Sign(zone.SynthesizeRoot(cfg), now)
	if err != nil {
		fatal(err)
	}
	z, err := zonemd.AttachAndSign(signed, signer, zonemd.StateVerifiable, now)
	if err != nil {
		fatal(err)
	}

	srv, err := dnsserver.New(dnsserver.Config{
		Zone:         z,
		ExtraZones:   []*zone.Zone{zone.SynthesizeRootServersNet(cfg.Serial, false)},
		Identity:     dnsserver.Identity{Hostname: *hostname, Version: *version},
		AllowAXFR:    !*noAXFR,
		ServeWorkers: *serveWorkers,
		DisableCache: *noCache,
		CacheBytes:   *cacheBytes,
		Netem:        netemProf,
		RRL:          rrlCfg,
		QLog:         rec,
		TCPTimeout:   *tcpTimeout,
		MaxTCPConns:  *maxTCP,
	})
	if err != nil {
		fatal(err)
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("serving root zone serial %d (%d records) on %s (udp+tcp)\n",
		z.Serial(), len(z.Records), bound)
	fmt.Printf("trust anchor: %s\n", signer.TrustAnchor())
	if *netemSpec != "" {
		fmt.Printf("netem: %s\n", netemProf)
	}
	if rrlCfg.Rate > 0 {
		fmt.Printf("rrl: %s\n", *rrlSpec)
	}
	if rec != nil {
		fmt.Printf("qlog: recording to %s\n", *qlogPath)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	_ = srv.Close()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rootserve: %v\n", err)
	os.Exit(1)
}
