// Command rootstudy runs the full reproduction study and prints every table
// and figure of the paper.
//
// Usage:
//
//	rootstudy [-quick] [-seed N] [-workers N] [-scale N] [-vpscale N] [-start YYYY-MM-DD] [-end YYYY-MM-DD]
//	          [-errbudget N] [-chaos spec] [-cpuprofile prof.out] [-memprofile mem.out]
//	          [-metrics out.json] [-trace out.json] [-telemetry-addr host:port]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/control"
	"repro/internal/failpoint"
	"repro/internal/prof"
	"repro/internal/propagation"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

func main() {
	quick := flag.Bool("quick", false, "use the fast smoke-test configuration")
	extensions := flag.Bool("extensions", false, "also run the Appendix-E extensions (control group, per-second SOA propagation)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	workers := flag.Int("workers", 0, "campaign worker goroutines (0 = one per CPU, 1 = serial; output is identical either way)")
	scale := flag.Int("scale", 0, "measurement-schedule thinning factor (0 = config default)")
	vpScale := flag.Int("vpscale", 0, "vantage-point population divisor (0 = config default)")
	start := flag.String("start", "", "campaign start date (YYYY-MM-DD, default paper start)")
	end := flag.String("end", "", "campaign end date (YYYY-MM-DD, default paper end)")
	errBudget := flag.Int("errbudget", 0, "degraded outcomes tolerated before aborting the campaign (negative = unlimited)")
	chaos := flag.String("chaos", "", "failpoint spec site=action[@N][,...] for chaos testing")
	telemetry.RegisterFlags()
	flag.Parse()

	if *chaos != "" {
		if err := failpoint.Enable(*chaos); err != nil {
			fmt.Fprintf(os.Stderr, "rootstudy: bad -chaos: %v\n", err)
			os.Exit(2)
		}
	}

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rootstudy: %v\n", err)
		os.Exit(2)
	}
	defer stopProf()

	stopTel, err := telemetry.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rootstudy: %v\n", err)
		os.Exit(2)
	}
	defer stopTel()

	cfg := repro.DefaultConfig()
	if *quick {
		cfg = repro.QuickConfig()
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.ErrorBudget = *errBudget
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *vpScale > 0 {
		cfg.VPScale = *vpScale
	}
	if *start != "" {
		t, err := time.Parse("2006-01-02", *start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rootstudy: bad -start: %v\n", err)
			os.Exit(2)
		}
		cfg.Start = t
	}
	if *end != "" {
		t, err := time.Parse("2006-01-02", *end)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rootstudy: bad -end: %v\n", err)
			os.Exit(2)
		}
		cfg.End = t
	}

	study, err := repro.NewStudy(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rootstudy: %v\n", err)
		os.Exit(1)
	}
	began := time.Now()
	if err := study.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "rootstudy: campaign: %v\n", err)
		os.Exit(1)
	}
	study.WriteReport(os.Stdout)

	if *extensions {
		fmt.Println("\n== Extensions (Appendix E future work) ==")
		ctrlCfg := control.DefaultConfig()
		ctrlCfg.Ticks = 100
		exp := control.New(ctrlCfg, study.World.Topo, study.World.System, study.World.Population)
		exp.Run("h", topology.IPv4).Write(os.Stdout)
		fmt.Println()
		prop := &propagation.Experiment{
			Topo:       study.World.Topo,
			System:     study.World.System,
			Population: study.World.Population,
			Models:     propagation.DefaultSyncModels(),
			Window:     2 * time.Minute,
			Seed:       cfg.Seed,
		}
		propagation.Write(os.Stdout, prop.Run(topology.IPv4))
	}

	fmt.Printf("\ncampaign wall time: %s\n", time.Since(began).Round(time.Millisecond))
}
