// Command zonemdcheck validates a root-zone copy the way the paper's
// ldns-based pipeline does: it checks the ZONEMD digest and, when a trust
// anchor DS record is supplied, fully validates all RRSIGs. The zone can
// come from a master-format file or from a live AXFR.
//
// Usage:
//
//	zonemdcheck -file root.zone [-anchor ". 172800 IN DS ..."] [-at 2023-12-10T00:00:00Z]
//	zonemdcheck -axfr 127.0.0.1:5353 [-anchor ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/dnsclient"
	"repro/internal/dnssec"
	"repro/internal/dnswire"
	"repro/internal/zone"
	"repro/internal/zonemd"
)

func main() {
	file := flag.String("file", "", "master-format zone file to validate")
	axfrAddr := flag.String("axfr", "", "fetch the zone via AXFR from this address instead")
	anchor := flag.String("anchor", "", "trust anchor DS record (master-file format) for DNSSEC validation")
	at := flag.String("at", "", "validation time (RFC 3339; default now)")
	flag.Parse()

	var z *zone.Zone
	switch {
	case *file != "":
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		z, err = zone.Parse(f, dnswire.Root)
		if err != nil {
			fatal(err)
		}
	case *axfrAddr != "":
		var err error
		z, err = dnsclient.New(*axfrAddr).TransferZone()
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "zonemdcheck: need -file or -axfr")
		os.Exit(2)
	}

	now := time.Now().UTC()
	if *at != "" {
		t, err := time.Parse(time.RFC3339, *at)
		if err != nil {
			fatal(err)
		}
		now = t
	}

	fmt.Printf("zone: serial %d, %d records\n", z.Serial(), len(z.Records))

	if err := zonemd.Verify(z); err != nil {
		fmt.Printf("ZONEMD: FAIL: %v\n", err)
	} else {
		fmt.Println("ZONEMD: ok")
	}

	if *anchor != "" {
		rr, err := zone.ParseRR(*anchor)
		if err != nil {
			fatal(fmt.Errorf("bad -anchor: %w", err))
		}
		ds, ok := rr.Data.(dnswire.DSRecord)
		if !ok {
			fatal(fmt.Errorf("-anchor is a %s record, want DS", rr.Type()))
		}
		if err := dnssec.ValidateZone(z, ds, now); err != nil {
			fmt.Printf("DNSSEC: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("DNSSEC: ok")
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "zonemdcheck: %v\n", err)
	os.Exit(1)
}
