// Colocation runs the RQ1 analysis standalone: place the 13 root
// deployments on the topology, traceroute from every vantage point to every
// letter in both families, and count how much last-hop infrastructure is
// shared (reduced redundancy).
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/rss"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/vantage"
)

func main() {
	mCfg := measure.DefaultConfig()
	mCfg.TLDCount = 20
	vpCfg := vantage.DefaultConfig()
	vpCfg.Scale = 4 // ~170 VPs

	world, err := measure.NewWorld(mCfg, topology.DefaultConfig(), vpCfg)
	if err != nil {
		log.Fatal(err)
	}

	// A single day of measurement suffices: co-location is a property of
	// routing, not time.
	mCfg.Start = time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC)
	mCfg.End = mCfg.Start.Add(24 * time.Hour)
	mCfg.Scale = 8

	col := analysis.NewColocation(world.Population)
	if err := measure.NewCampaign(mCfg, world).Run(col); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Server co-location via shared second-to-last hops ==")
	fmt.Printf("VPs observing co-location of >=2 root servers: %.1f%%\n",
		col.ShareWithColocation()*100)
	fmt.Printf("maximum reduced redundancy observed: %d (of 12 possible)\n\n",
		col.MaxReducedRedundancy())

	fmt.Println("reduced redundancy per continent (per-VP mean):")
	for _, region := range geo.Regions() {
		region := region
		v4 := col.ReducedRedundancy(topology.IPv4, &region)
		v6 := col.ReducedRedundancy(topology.IPv6, &region)
		fmt.Printf("  %-14s avg(v4)=%.2f avg(v6)=%.2f  (n=%d)\n",
			region, stats.Mean(v4), stats.Mean(v6), len(v4))
	}

	// Which facilities actually host many letters?
	fmt.Println("\nmost co-located facilities:")
	lettersAt := make(map[string]map[rss.Letter]bool)
	for _, l := range rss.Letters() {
		for _, s := range world.System.Deployments[l].Sites {
			if lettersAt[s.Facility] == nil {
				lettersAt[s.Facility] = make(map[rss.Letter]bool)
			}
			lettersAt[s.Facility][l] = true
		}
	}
	type facLoad struct {
		fac string
		n   int
	}
	var loads []facLoad
	for fac, ls := range lettersAt {
		loads = append(loads, facLoad{fac, len(ls)})
	}
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].n != loads[j].n {
			return loads[i].n > loads[j].n
		}
		return loads[i].fac < loads[j].fac
	})
	for _, fl := range loads[:min(8, len(loads))] {
		fmt.Printf("  %-12s hosts %2d of 13 letters\n", fl.fac, fl.n)
	}
}
