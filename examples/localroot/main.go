// Localroot demonstrates the RFC 7706 scenario the paper's RQ3 motivates:
// run an authoritative root server on loopback, pull the zone via AXFR,
// fully validate it (DNSSEC + ZONEMD), then corrupt one bit in the local
// copy and watch both validators catch it.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/dnsclient"
	"repro/internal/dnssec"
	"repro/internal/dnsserver"
	"repro/internal/dnswire"
	"repro/internal/faults"
	"repro/internal/zone"
	"repro/internal/zonemd"
)

func main() {
	now := time.Now().UTC()

	// Build and sign a root zone.
	signer, err := dnssec.NewSigner(nil)
	if err != nil {
		log.Fatal(err)
	}
	zcfg := zone.DefaultRootConfig()
	zcfg.TLDCount = 60
	zcfg.Serial = zone.SerialForDate(now.Year(), int(now.Month()), now.Day(), 0)
	signed, err := signer.Sign(zone.SynthesizeRoot(zcfg), now)
	if err != nil {
		log.Fatal(err)
	}
	served, err := zonemd.AttachAndSign(signed, signer, zonemd.StateVerifiable, now)
	if err != nil {
		log.Fatal(err)
	}
	anchor := signer.TrustAnchor().Data.(dnswire.DSRecord)

	// Serve it on loopback (real UDP+TCP sockets).
	srv, err := dnsserver.New(dnsserver.Config{
		Zone:      served,
		Identity:  dnsserver.Identity{Hostname: "loopback.local-root", Version: "repro-localroot"},
		AllowAXFR: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("local root serving on %s (serial %d, %d records)\n",
		addr, served.Serial(), len(served.Records))

	// Priming query, like a resolver booting against the local root.
	client := dnsclient.New(addr.String())
	client.SetEDNSSize(4096)
	resp, err := client.Query(dnswire.Root, dnswire.TypeNS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("priming: %d NS records, %d glue records\n",
		len(resp.Answers), len(resp.Additional))

	id, err := client.QueryChaosTXT(dnswire.MustName("id.server."))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("id.server: %s\n", id)

	// Pull the zone and fully validate, as a local-root resolver must.
	transferred, err := client.TransferZone()
	if err != nil {
		log.Fatal(err)
	}
	zErr, dErr := zonemd.FullValidation(transferred, anchor, now)
	fmt.Printf("transferred %d records; ZONEMD err=%v, DNSSEC err=%v\n",
		len(transferred.Records), zErr, dErr)
	if zErr != nil || dErr != nil {
		log.Fatal("clean transfer failed validation")
	}

	// Now corrupt one bit in the local copy (faulty RAM, the paper's
	// Fig. 10 scenario) and validate again.
	flip, ok := faults.FlipSignatureBit(transferred, rand.New(rand.NewSource(1)))
	if !ok {
		log.Fatal("no signature to flip")
	}
	fmt.Printf("flipped one bit in record %d\n", flip.RecordIndex)
	zErr, dErr = zonemd.FullValidation(transferred, anchor, now)
	fmt.Printf("after bitflip: ZONEMD err=%v, DNSSEC err=%v\n", zErr, dErr)
	if zErr == nil && dErr == nil {
		log.Fatal("bitflip went undetected")
	}
	fmt.Println("bitflip detected — a local root must revalidate before use")
}
