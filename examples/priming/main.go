// Priming demonstrates the mechanism behind the paper's adoption findings:
// after b.root's renumbering, a resolver that primes (RFC 8109) on startup
// learns the new address immediately, while a legacy resolver keeps querying
// the stale address from its hints file for years. Both resolvers run
// against a real authoritative server on loopback.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"repro/internal/dnssec"
	"repro/internal/dnsserver"
	"repro/internal/dnswire"
	"repro/internal/hints"
	"repro/internal/resolver"
	"repro/internal/rss"
	"repro/internal/zone"
)

func main() {
	now := time.Now().UTC()

	// The post-renumbering root zone: b.root's glue carries the new address.
	signer, err := dnssec.NewSigner(nil)
	if err != nil {
		log.Fatal(err)
	}
	zcfg := zone.DefaultRootConfig()
	zcfg.TLDCount = 30
	zcfg.Serial = zone.SerialForDate(now.Year(), int(now.Month()), now.Day(), 0)
	signed, err := signer.Sign(zone.SynthesizeRoot(zcfg), now)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := dnsserver.New(dnsserver.Config{Zone: signed})
	if err != nil {
		log.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// Every root service address (old and new) reaches the same anycast
	// service — exactly the transition period, when both b.root prefixes
	// were answering.
	ex := &resolver.NetExchanger{AddrMap: map[netip.Addr]string{}, Timeout: 2 * time.Second}
	for _, h := range hints.Default().Hints {
		ex.AddrMap[h.V4] = addr.String()
		ex.AddrMap[h.V6] = addr.String()
	}
	oldV4 := netip.MustParseAddr(rss.OldBv4)
	oldV6 := netip.MustParseAddr(rss.OldBv6)
	ex.AddrMap[oldV4] = addr.String()
	ex.AddrMap[oldV6] = addr.String()

	staleHints := hints.Default().WithOldB(oldV4, oldV6)
	bHost := dnswire.MustName("b.root-servers.net.")

	fmt.Println("== b.root renumbering: priming vs legacy resolver ==")
	fmt.Printf("old b.root: %s   new b.root: %s\n\n", rss.OldBv4, "170.247.170.2")

	// Legacy resolver: never primes; keeps the stale hints forever.
	legacy := resolver.New(staleHints, ex)
	if _, err := legacy.Resolve(dnswire.Root, dnswire.TypeNS); err != nil {
		log.Fatal(err)
	}
	b, _ := legacy.Hints.Lookup(bHost)
	fmt.Printf("legacy resolver after serving queries:  b.root = %s (still the OLD address)\n", b.V4)

	// Priming resolver: refreshes hints on startup and learns the new
	// address from the root zone's glue.
	priming := resolver.New(staleHints, ex)
	priming.PrimeOnStart = true
	if _, err := priming.Resolve(dnswire.Root, dnswire.TypeNS); err != nil {
		log.Fatal(err)
	}
	b, _ = priming.Hints.Lookup(bHost)
	fmt.Printf("priming resolver after one startup:     b.root = %s (the NEW address)\n", b.V4)

	fmt.Println("\nthis asymmetry is the paper's finding: 13 years after j.root's change")
	fmt.Println("the old address still drew traffic, and ten years after d.root's change")
	fmt.Println("b.root's old prefix keeps receiving queries from non-priming resolvers —")
	fmt.Println("while IPv6-enabled (newer, priming) resolvers switch almost completely.")
}
