// Quickstart: build a small world, run a short campaign, and print the
// headline numbers of the study — co-location share, site-stability medians,
// and the b.root adoption ratios.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/passive"
	"repro/internal/topology"
)

func main() {
	cfg := repro.QuickConfig()
	// A three-week window around the b.root change keeps the run fast while
	// touching the most interesting part of the timeline.
	cfg.Start = time.Date(2023, 11, 20, 0, 0, 0, 0, time.UTC)
	cfg.End = time.Date(2023, 12, 10, 0, 0, 0, 0, time.UTC)

	study, err := repro.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := study.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("vantage points: %d in %d networks\n",
		len(study.World.Population.VPs), study.World.Population.Networks())

	fmt.Printf("VPs observing co-location of >=2 root servers: %.0f%% (max %d)\n",
		study.Colocation.ShareWithColocation()*100,
		study.Colocation.MaxReducedRedundancy())

	fmt.Printf("site changes per VP (median): b.root v4=%.0f v6=%.0f, g.root v4=%.0f v6=%.0f\n",
		study.Stability.MedianChanges("b", topology.IPv4, false),
		study.Stability.MedianChanges("b", topology.IPv6, false),
		study.Stability.MedianChanges("g", topology.IPv4, false),
		study.Stability.MedianChanges("g", topology.IPv6, false))

	w2 := passive.ISPWindow2
	fmt.Printf("ISP in-family shift to new b.root: v4=%.1f%% v6=%.1f%%\n",
		study.Traffic.ISP.ShiftRatio(topology.IPv4, w2[0], w2[1])*100,
		study.Traffic.ISP.ShiftRatio(topology.IPv6, w2[0], w2[1])*100)

	fmt.Printf("transfers validated: %d (%d failures)\n",
		study.Integrity.Transfers, study.Integrity.Failures)
}
