// Renumbering replays the b.root address change through the passive
// ISP and IXP models: the traffic mix the day before the change, the
// post-change adoption per address family, the regional difference between
// European and North American exchanges, and the once-a-day priming
// contacts that keep trickling to the old prefix.
package main

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/passive"
	"repro/internal/stats"
	"repro/internal/topology"
)

func main() {
	traffic := analysis.NewTraffic(3000, 42)

	fmt.Println("== b.root renumbering (2023-11-27), passive perspective ==")

	// The day before the change: old prefixes dominate; the new prefix is
	// already operational and draws a sliver of traffic.
	pre := passive.ISPPreDay
	series := traffic.ISP.TrafficSeries(pre, pre.Add(24*time.Hour), passive.BTargets())
	var total float64
	for _, s := range series {
		total += s.Total()
	}
	fmt.Println("\nISP, 2023-10-08 (pre-change) b.root traffic mix:")
	for _, s := range series {
		label := fam(s.Target.Family)
		if s.Target.Old {
			label += " old"
		} else {
			label += " new"
		}
		fmt.Printf("  %-8s %5.1f%%\n", label, s.Total()/total*100)
	}

	// Post-change adoption at the ISP.
	w := passive.ISPWindow2
	fmt.Println("\nISP, 2024-02 window, in-family shift to the new prefix:")
	for _, f := range topology.Families() {
		fmt.Printf("  %s: %.1f%%\n", f, traffic.ISP.ShiftRatio(f, w[0], w[1])*100)
	}

	// Regional IXP difference on IPv6.
	start := passive.BRootChange.Add(72 * time.Hour)
	end := passive.IXPWindow1[1]
	fmt.Println("\nIXPs, IPv6 traffic shifted to the new prefix (Dec 2023):")
	fmt.Printf("  Europe:        %.1f%%\n", traffic.IXPEU.ShiftRatio(topology.IPv6, start, end)*100)
	fmt.Printf("  North America: %.1f%%\n", traffic.IXPNA.ShiftRatio(topology.IPv6, start, end)*100)

	// The priming signature: old-v6 clients touch the prefix ~once a day.
	day := w[0]
	oldAct := traffic.ISP.ClientDayActivity(passive.Target{Letter: "b", Family: topology.IPv6, Old: true}, day)
	newAct := traffic.ISP.ClientDayActivity(passive.Target{Letter: "b", Family: topology.IPv6}, day)
	fmt.Println("\nPer-client flows/day to b.root IPv6 prefixes (post-change):")
	fmt.Printf("  old prefix: %s\n", stats.Summarize(oldAct))
	fmt.Printf("  new prefix: %s\n", stats.Summarize(newAct))
	fmt.Println("the old prefix's median near 1/day is the RFC 8109 priming pattern")
}

func fam(f topology.Family) string {
	if f == topology.IPv4 {
		return "V4"
	}
	return "V6"
}
