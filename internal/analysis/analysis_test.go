package analysis

import (
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/rss"
	"repro/internal/topology"
	"repro/internal/vantage"
)

// testWorld builds a small world shared by the analysis tests.
func testWorld(t *testing.T) *measure.World {
	t.Helper()
	cfg := measure.DefaultConfig()
	cfg.TLDCount = 15
	topoCfg := topology.Config{
		Seed: 21,
		StubsPerRegion: map[geo.Region]int{
			geo.Africa: 4, geo.Asia: 8, geo.Europe: 30,
			geo.NorthAmerica: 14, geo.SouthAmerica: 5, geo.Oceania: 5,
		},
		Tier2PerRegion: map[geo.Region]int{
			geo.Africa: 2, geo.Asia: 3, geo.Europe: 5,
			geo.NorthAmerica: 4, geo.SouthAmerica: 2, geo.Oceania: 2,
		},
	}
	vpCfg := vantage.DefaultConfig()
	vpCfg.Scale = 10 // ~67 VPs
	w, err := measure.NewWorld(cfg, topoCfg, vpCfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// runCampaign runs a short campaign with the given handlers.
func runCampaign(t *testing.T, w *measure.World, start time.Time, d time.Duration, scale int, handlers ...measure.Handler) {
	t.Helper()
	cfg := measure.DefaultConfig()
	cfg.Start, cfg.End, cfg.Scale = start, start.Add(d), scale
	cfg.TLDCount = 15
	c := measure.NewCampaign(cfg, w)
	if err := c.Run(handlers...); err != nil {
		t.Fatal(err)
	}
}

func TestCoverageAccumulates(t *testing.T) {
	w := testWorld(t)
	cov := NewCoverage(w.System)
	start := time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC)
	runCampaign(t, w, start, 4*time.Hour, 2, cov)

	rows := cov.Table1()
	if len(rows) != 13 {
		t.Fatalf("Table1 rows = %d", len(rows))
	}
	for _, r := range rows {
		wantG, wantL := rss.TotalSites(r.Letter)
		if r.GlobalSites != wantG || r.LocalSites != wantL {
			t.Errorf("%s: published %d/%d, want %d/%d",
				r.Letter, r.GlobalSites, r.LocalSites, wantG, wantL)
		}
		if r.GlobalCov > r.GlobalSites || r.LocalCov > r.LocalSites {
			t.Errorf("%s: coverage exceeds published sites", r.Letter)
		}
	}
	// Small letters with global-only sites must be fully or mostly covered.
	for _, r := range rows {
		if r.Letter == "b" || r.Letter == "g" {
			if r.GlobalCov < r.GlobalSites/2 {
				t.Errorf("%s.root global coverage %d/%d too low",
					r.Letter, r.GlobalCov, r.GlobalSites)
			}
		}
	}
	// Local-heavy deployments are only partially covered (paper: f.root
	// locals 27.8%).
	for _, r := range rows {
		if r.Letter == "f" && r.LocalSites > 0 && r.LocalCov == r.LocalSites {
			t.Error("f.root local coverage complete; expected partial")
		}
	}
	t4 := cov.Table4()
	if len(t4) != 6 {
		t.Errorf("Table4 regions = %d", len(t4))
	}
	// Regional rows must sum to the worldwide rows.
	for i, l := range rss.Letters() {
		var g, gc int
		for _, region := range geo.Regions() {
			g += t4[region][i].GlobalSites
			gc += t4[region][i].GlobalCov
		}
		if g != rows[i].GlobalSites || gc != rows[i].GlobalCov {
			t.Errorf("%s: regional sums %d/%d vs worldwide %d/%d",
				l, g, gc, rows[i].GlobalSites, rows[i].GlobalCov)
		}
	}
	var sb strings.Builder
	cov.WriteTable1(&sb)
	cov.WriteTable4(&sb)
	cov.Figure11(&sb)
	if !strings.Contains(sb.String(), "Table 1") || !strings.Contains(sb.String(), "Figure 11") {
		t.Error("rendered tables incomplete")
	}
	if cov.ObservedIdentifiers() == 0 {
		t.Error("no identifiers observed")
	}
}

func TestUnmappedIdentifiersFromJ(t *testing.T) {
	w := testWorld(t)
	cov := NewCoverage(w.System)
	start := time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC)
	runCampaign(t, w, start, 6*time.Hour, 2, cov)
	unmapped := cov.UnmappedIdentifiers()
	total := 0
	for _, n := range unmapped {
		total += n
	}
	// j.root local sites report opaque identifiers; whether one shows up
	// depends on VP catchments, so only assert no spurious unmapped ids for
	// letters with mappable naming.
	for _, l := range []rss.Letter{"b", "g", "h"} {
		if unmapped[l] != 0 {
			t.Errorf("%s.root has %d unmapped identifiers", l, unmapped[l])
		}
	}
	_ = total
}

func TestStabilityCountsChanges(t *testing.T) {
	w := testWorld(t)
	st := NewStability()
	start := time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC)
	runCampaign(t, w, start, 30*24*time.Hour, 24, st)

	// g.root must be flappier than b.root, and g.root flappier on v6.
	bMed := st.MedianChanges("b", topology.IPv4, false)
	gMed4 := st.MedianChanges("g", topology.IPv4, false)
	gMed6 := st.MedianChanges("g", topology.IPv6, false)
	if len(st.Changes("b", topology.IPv4, false)) == 0 {
		t.Fatal("no b.root change samples")
	}
	if gMed4 < bMed {
		t.Errorf("g.root v4 median %.0f < b.root %.0f; g must flap more", gMed4, bMed)
	}
	if gMed6 < gMed4 {
		t.Errorf("g.root v6 median %.0f < v4 median %.0f; v6 must flap more", gMed6, gMed4)
	}
	ccdf := st.CCDF("g", topology.IPv6, false)
	if len(ccdf) == 0 {
		t.Error("empty CCDF")
	}
	var sb strings.Builder
	st.WriteFigure3(&sb)
	if !strings.Contains(sb.String(), "g.root IPv6") {
		t.Error("Figure 3 rendering incomplete")
	}
}

func TestColocationHeadline(t *testing.T) {
	w := testWorld(t)
	col := NewColocation(w.Population)
	start := time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC)
	runCampaign(t, w, start, 4*time.Hour, 2, col)

	share := col.ShareWithColocation()
	if share < 0.3 {
		t.Errorf("co-location share = %.2f; expected a majority of VPs (paper: ~0.7)", share)
	}
	maxRR := col.MaxReducedRedundancy()
	if maxRR < 2 || maxRR > 12 {
		t.Errorf("max reduced redundancy = %d, want within [2,12]", maxRR)
	}
	for _, f := range topology.Families() {
		if len(col.ReducedRedundancy(f, nil)) == 0 {
			t.Errorf("no %s reduced-redundancy samples", f)
		}
	}
	var sb strings.Builder
	col.WriteFigure4(&sb)
	if !strings.Contains(sb.String(), "Figure 4") {
		t.Error("Figure 4 rendering incomplete")
	}
}

func TestDistanceInflation(t *testing.T) {
	w := testWorld(t)
	d := NewDistance(w.System, w.Population)
	start := time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC)
	runCampaign(t, w, start, 4*time.Hour, 2, d)

	for _, f := range topology.Families() {
		share := d.OptimalShare("b", f, 100)
		if share < 0.2 || share > 1.0 {
			t.Errorf("b.root %s optimal share = %.2f", f, share)
		}
		extras := d.ExtraDistancePerVP("b", f)
		if len(extras) == 0 {
			t.Errorf("no %s extra-distance samples", f)
		}
		for _, e := range extras {
			if e < 0 {
				t.Fatalf("negative extra distance %f", e)
			}
		}
	}
	// m.root local sites can put requests below the diagonal.
	if ls := d.LocalSiteShare("m", topology.IPv4); ls < 0 || ls > 1 {
		t.Errorf("local-site share = %f", ls)
	}
	var sb strings.Builder
	d.WriteFigure5(&sb)
	if !strings.Contains(sb.String(), "m.root") {
		t.Error("Figure 5 rendering incomplete")
	}
}

func TestRTTByRegion(t *testing.T) {
	w := testWorld(t)
	r := NewRTT()
	start := time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC)
	runCampaign(t, w, start, 4*time.Hour, 2, r)

	total := 0
	for _, region := range geo.Regions() {
		for _, l := range rss.Letters() {
			for _, f := range topology.Families() {
				total += r.Summary(region, l, f, false).N
			}
		}
	}
	if total == 0 {
		t.Fatal("no RTT samples")
	}
	// European VPs must see low median RTT to at least one large European
	// deployment (k or l), and African VPs generally higher RTTs.
	euK := r.Summary(geo.Europe, "k", topology.IPv4, false)
	if euK.N > 0 && euK.P50 > 150 {
		t.Errorf("Europe->k.root median RTT %.1f ms; expected regional proximity", euK.P50)
	}
	var sb strings.Builder
	r.WriteFigure6(&sb)
	r.WriteFigure14(&sb)
	r.WriteCarrierEffects(&sb)
	if !strings.Contains(sb.String(), "Figure 6") {
		t.Error("Figure 6 rendering incomplete")
	}
}

func TestIntegrityTaxonomy(t *testing.T) {
	w := testWorld(t)
	in := NewIntegrity()
	// Cover the 2023-10-02 skew window and a bitflip window.
	runCampaign(t, w, time.Date(2023, 10, 2, 21, 30, 0, 0, time.UTC), 2*time.Hour, 1, in)
	runCampaign(t, w, time.Date(2023, 9, 26, 21, 0, 0, 0, time.UTC), time.Hour, 1, in)

	if in.Transfers == 0 {
		t.Fatal("no transfers")
	}
	rows := in.Rows()
	var sawSkew, sawBogus bool
	for _, row := range rows {
		switch row.Reason {
		case "Sig. not incepted":
			sawSkew = true
			if len(row.Servers) < 10 {
				t.Errorf("skew row covers %d servers; skew affects all", len(row.Servers))
			}
		case "Bogus Signature":
			sawBogus = true
		}
		if row.Obs == 0 || len(row.SOAs) == 0 {
			t.Errorf("degenerate row %+v", row)
		}
		if row.LastObs.Before(row.FirstObs) {
			t.Errorf("row time range inverted: %+v", row)
		}
	}
	if !sawSkew {
		t.Error("no clock-skew rows")
	}
	if !sawBogus {
		t.Error("no bogus-signature rows")
	}
	var sb strings.Builder
	in.WriteTable2(&sb)
	in.WriteFigure10(&sb)
	out := sb.String()
	if !strings.Contains(out, "Table 2") {
		t.Error("Table 2 rendering incomplete")
	}
	if flip, ok := in.Bitflip(); ok {
		if flip.Before == flip.After {
			t.Error("bitflip example identical before/after")
		}
		if !strings.Contains(out, "received:") {
			t.Error("Figure 10 rendering incomplete")
		}
	}
}

func TestTrafficFigures(t *testing.T) {
	tr := NewTraffic(800, 5)
	var sb strings.Builder
	tr.WriteFigure7(&sb)
	tr.WriteFigure8(&sb)
	tr.WriteFigure9(&sb)
	tr.WriteFigure12(&sb)
	tr.WriteFigure13(&sb)
	out := sb.String()
	for _, want := range []string{"Figure 7", "Figure 8", "Figure 9", "Figure 12", "Figure 13",
		"V4new", "Europe", "once-a-day"} {
		if !strings.Contains(out, want) {
			t.Errorf("traffic rendering missing %q", want)
		}
	}
	// Fig 8 signal: old b v6 once-a-day fraction above new b v6's.
	day := time.Date(2024, 2, 5, 0, 0, 0, 0, time.UTC)
	f8 := tr.Figure8(topology.IPv6, day)
	var oldFrac, newFrac float64
	for _, st := range f8 {
		switch st.Label {
		case "b.root (old)":
			oldFrac = st.OnceADayFrac
		case "b.root (new)":
			newFrac = st.OnceADayFrac
		}
	}
	if oldFrac <= newFrac {
		t.Errorf("old b v6 once-a-day %.2f <= new %.2f; priming signal missing",
			oldFrac, newFrac)
	}
}

func TestCoverageValidationWriter(t *testing.T) {
	w := testWorld(t)
	cov := NewCoverage(w.System)
	start := time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC)
	runCampaign(t, w, start, 2*time.Hour, 2, cov)
	var sb strings.Builder
	cov.WriteValidation(&sb)
	out := sb.String()
	if !strings.Contains(out, "observed identifiers") {
		t.Errorf("validation summary incomplete: %q", out)
	}
}

func TestSection6Callouts(t *testing.T) {
	w := testWorld(t)
	r := NewRTT()
	start := time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC)
	runCampaign(t, w, start, 3*time.Hour, 2, r)
	var sb strings.Builder
	r.WriteSection6Callouts(&sb)
	out := sb.String()
	if !strings.Contains(out, "a.root") || !strings.Contains(out, "South America") {
		t.Errorf("callouts incomplete: %q", out)
	}
}

func TestIXPDetailWriter(t *testing.T) {
	tr := NewTraffic(400, 11)
	var sb strings.Builder
	tr.WriteIXPDetail(&sb)
	out := sb.String()
	if !strings.Contains(out, "IX-FRA") || !strings.Contains(out, "aggregate") {
		t.Errorf("IXP detail incomplete: %q", out)
	}
}

func TestPctFormatting(t *testing.T) {
	if Pct(0, 0) != "-" {
		t.Error("zero-total Pct")
	}
	if Pct(1, 2) != "50.0" {
		t.Errorf("Pct(1,2) = %s", Pct(1, 2))
	}
	if Pct(13, 13) != "100.0" {
		t.Errorf("Pct(13,13) = %s", Pct(13, 13))
	}
}

func TestStabilityIgnoresLostProbes(t *testing.T) {
	st := NewStability()
	tick := func(i int, site string, lost bool) measure.ProbeEvent {
		return measure.ProbeEvent{
			Tick:   measure.Tick{Index: i},
			VPIdx:  1,
			Target: rss.ServiceAddr{Letter: "b", Family: topology.IPv4},
			SiteID: site,
			Lost:   lost,
		}
	}
	st.HandleProbe(tick(0, "s1", false))
	st.HandleProbe(tick(1, "", true)) // lost: must not count as a change
	st.HandleProbe(tick(2, "s1", false))
	st.HandleProbe(tick(3, "s2", false)) // one change
	st.HandleProbe(tick(4, "s1", false)) // second change
	changes := st.Changes("b", topology.IPv4, false)
	if len(changes) != 1 || changes[0] != 2 {
		t.Errorf("changes = %v, want [2]", changes)
	}
}

func TestDistanceIgnoresOldBTarget(t *testing.T) {
	w := testWorld(t)
	d := NewDistance(w.System, w.Population)
	e := measure.ProbeEvent{
		Tick:     measure.Tick{Index: 0},
		VP:       &w.Population.VPs[0],
		Target:   rss.ServiceAddr{Letter: "b", Family: topology.IPv4, Old: true},
		SiteID:   "b-x",
		SiteCity: w.Population.VPs[0].City,
	}
	d.HandleProbe(e)
	if got := d.ExtraDistancePerVP("b", topology.IPv4); len(got) != 0 {
		t.Errorf("old-b probe counted: %v", got)
	}
}

func TestIntegrityCountsCleanTransfers(t *testing.T) {
	in := NewIntegrity()
	in.HandleTransfer(measure.TransferEvent{
		Tick: measure.Tick{Index: 0, Time: time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC)},
		VP:   &vantage.VP{ID: "v"}, Serial: 2023080100,
	})
	if in.Transfers != 1 || in.Failures != 0 {
		t.Errorf("counts = %d/%d", in.Transfers, in.Failures)
	}
	if len(in.Rows()) != 0 {
		t.Error("clean transfer produced a row")
	}
	// Lost transfers are not counted at all.
	in.HandleTransfer(measure.TransferEvent{Lost: true, VP: &vantage.VP{ID: "v"}})
	if in.Transfers != 1 {
		t.Error("lost transfer counted")
	}
}
