// Checkpoint support: every accumulator in this package can seal its state
// into a deterministic JSON blob and restore from one, which is what lets
// rootanalyze ride the replay checkpoint/resume machinery (dataset.ReplayWith)
// the same way the live campaign rides measure checkpoints. Determinism
// matters more than compactness here — map state is flattened into entry
// slices sorted by key so that the same logical state always seals to the
// same bytes, making resumed-vs-uninterrupted comparisons byte-exact.
package analysis

import (
	"encoding/json"
	"sort"
	"time"

	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/rss"
	"repro/internal/topology"
)

// --- Coverage ---

type coverageEntry struct {
	Letter rss.Letter `json:"letter"`
	IDs    []string   `json:"ids"`
}

// CheckpointSeal implements measure.Checkpointable.
func (c *Coverage) CheckpointSeal() ([]byte, error) {
	entries := make([]coverageEntry, 0, len(c.observedIdentifiers))
	for l, set := range c.observedIdentifiers {
		ids := make([]string, 0, len(set))
		for id := range set {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		entries = append(entries, coverageEntry{Letter: l, IDs: ids})
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].Letter < entries[b].Letter })
	return json.Marshal(entries)
}

// RestoreCheckpoint implements dataset.ReplayCheckpointable.
func (c *Coverage) RestoreCheckpoint(state []byte) error {
	var entries []coverageEntry
	if err := json.Unmarshal(state, &entries); err != nil {
		return err
	}
	c.observedIdentifiers = make(map[rss.Letter]map[string]bool, len(entries))
	for _, e := range entries {
		set := make(map[string]bool, len(e.IDs))
		for _, id := range e.IDs {
			set[id] = true
		}
		c.observedIdentifiers[e.Letter] = set
	}
	return nil
}

// --- Stability ---

type stabilityEntry struct {
	VPIdx   int             `json:"vp"`
	Letter  rss.Letter      `json:"letter"`
	Family  topology.Family `json:"family"`
	Old     bool            `json:"old,omitempty"`
	Last    string          `json:"last,omitempty"`
	HasLast bool            `json:"has_last,omitempty"`
	Changes int             `json:"changes,omitempty"`
}

func stabKeyLess(a, b stabKey) bool {
	if a.vpIdx != b.vpIdx {
		return a.vpIdx < b.vpIdx
	}
	if a.letter != b.letter {
		return a.letter < b.letter
	}
	if a.family != b.family {
		return a.family < b.family
	}
	return !a.old && b.old
}

// CheckpointSeal implements measure.Checkpointable.
func (s *Stability) CheckpointSeal() ([]byte, error) {
	keys := make([]stabKey, 0, len(s.seen))
	for k := range s.seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return stabKeyLess(keys[a], keys[b]) })
	entries := make([]stabilityEntry, 0, len(keys))
	for _, k := range keys {
		last, hasLast := s.last[k]
		entries = append(entries, stabilityEntry{
			VPIdx: k.vpIdx, Letter: k.letter, Family: k.family, Old: k.old,
			Last: last, HasLast: hasLast, Changes: s.changes[k],
		})
	}
	return json.Marshal(entries)
}

// RestoreCheckpoint implements dataset.ReplayCheckpointable.
func (s *Stability) RestoreCheckpoint(state []byte) error {
	var entries []stabilityEntry
	if err := json.Unmarshal(state, &entries); err != nil {
		return err
	}
	s.last = make(map[stabKey]string, len(entries))
	s.changes = make(map[stabKey]int, len(entries))
	s.seen = make(map[stabKey]bool, len(entries))
	for _, e := range entries {
		k := stabKey{e.VPIdx, e.Letter, e.Family, e.Old}
		s.seen[k] = true
		if e.HasLast {
			s.last[k] = e.Last
		}
		if e.Changes != 0 {
			s.changes[k] = e.Changes
		}
	}
	return nil
}

// --- Colocation ---

type colocCurrentEntry struct {
	VPIdx   int             `json:"vp"`
	Family  topology.Family `json:"family"`
	Tick    int             `json:"tick"`
	Total   int             `json:"total"`
	Uniques int             `json:"uniques,omitempty"`
	Hops    []string        `json:"hops"`
}

type colocSeriesEntry struct {
	VPIdx  int             `json:"vp"`
	Family topology.Family `json:"family"`
	Values []float64       `json:"values"`
}

type colocState struct {
	Current []colocCurrentEntry `json:"current,omitempty"`
	Series  []colocSeriesEntry  `json:"series,omitempty"`
}

func colocKeyLess(a, b colocKey) bool {
	if a.vpIdx != b.vpIdx {
		return a.vpIdx < b.vpIdx
	}
	return a.family < b.family
}

// CheckpointSeal implements measure.Checkpointable. The in-progress tick
// state is part of the snapshot: a checkpoint can land mid-tick, and the
// resumed run must fold that tick exactly as the uninterrupted one would.
func (c *Colocation) CheckpointSeal() ([]byte, error) {
	var st colocState
	curKeys := make([]colocKey, 0, len(c.current))
	for k := range c.current {
		curKeys = append(curKeys, k)
	}
	sort.Slice(curKeys, func(a, b int) bool { return colocKeyLess(curKeys[a], curKeys[b]) })
	for _, k := range curKeys {
		th := c.current[k]
		hops := make([]string, 0, len(th.hops))
		for h := range th.hops {
			hops = append(hops, h)
		}
		sort.Strings(hops)
		st.Current = append(st.Current, colocCurrentEntry{
			VPIdx: k.vpIdx, Family: k.family,
			Tick: th.tick, Total: th.total, Uniques: th.uniques, Hops: hops,
		})
	}
	serKeys := make([]colocKey, 0, len(c.series))
	for k := range c.series {
		serKeys = append(serKeys, k)
	}
	sort.Slice(serKeys, func(a, b int) bool { return colocKeyLess(serKeys[a], serKeys[b]) })
	for _, k := range serKeys {
		st.Series = append(st.Series, colocSeriesEntry{
			VPIdx: k.vpIdx, Family: k.family, Values: c.series[k],
		})
	}
	return json.Marshal(st)
}

// RestoreCheckpoint implements dataset.ReplayCheckpointable.
func (c *Colocation) RestoreCheckpoint(state []byte) error {
	var st colocState
	if err := json.Unmarshal(state, &st); err != nil {
		return err
	}
	c.current = make(map[colocKey]*tickHops, len(st.Current))
	for _, e := range st.Current {
		hops := make(map[string]bool, len(e.Hops))
		for _, h := range e.Hops {
			hops[h] = true
		}
		c.current[colocKey{e.VPIdx, e.Family}] = &tickHops{
			tick: e.Tick, total: e.Total, uniques: e.Uniques, hops: hops,
		}
	}
	c.series = make(map[colocKey][]float64, len(st.Series))
	for _, e := range st.Series {
		c.series[colocKey{e.VPIdx, e.Family}] = e.Values
	}
	return nil
}

// --- Distance ---

type distSampleEntry struct {
	Letter  rss.Letter      `json:"letter"`
	Family  topology.Family `json:"family"`
	Closest []float64       `json:"closest"`
	Actual  []float64       `json:"actual"`
}

type distExtraEntry struct {
	VPIdx  int             `json:"vp"`
	Letter rss.Letter      `json:"letter"`
	Family topology.Family `json:"family"`
	Sum    float64         `json:"sum"`
	Count  int             `json:"count"`
}

type distState struct {
	Samples []distSampleEntry `json:"samples,omitempty"`
	Extra   []distExtraEntry  `json:"extra,omitempty"`
}

// CheckpointSeal implements measure.Checkpointable. The closest-global-site
// cache is deliberately excluded: it is a pure function of the system and
// population the accumulator was constructed with, and rebuilds on demand.
func (d *Distance) CheckpointSeal() ([]byte, error) {
	var st distState
	sKeys := make([]sampleKey, 0, len(d.samples))
	for k := range d.samples {
		sKeys = append(sKeys, k)
	}
	sort.Slice(sKeys, func(a, b int) bool {
		if sKeys[a].letter != sKeys[b].letter {
			return sKeys[a].letter < sKeys[b].letter
		}
		return sKeys[a].family < sKeys[b].family
	})
	for _, k := range sKeys {
		s := d.samples[k]
		st.Samples = append(st.Samples, distSampleEntry{
			Letter: k.letter, Family: k.family, Closest: s.closest, Actual: s.actual,
		})
	}
	eKeys := make([]vpTarget, 0, len(d.extraSum))
	for k := range d.extraSum {
		eKeys = append(eKeys, k)
	}
	sort.Slice(eKeys, func(a, b int) bool {
		if eKeys[a].vpIdx != eKeys[b].vpIdx {
			return eKeys[a].vpIdx < eKeys[b].vpIdx
		}
		if eKeys[a].letter != eKeys[b].letter {
			return eKeys[a].letter < eKeys[b].letter
		}
		return eKeys[a].family < eKeys[b].family
	})
	for _, k := range eKeys {
		st.Extra = append(st.Extra, distExtraEntry{
			VPIdx: k.vpIdx, Letter: k.letter, Family: k.family,
			Sum: d.extraSum[k], Count: d.extraCount[k],
		})
	}
	return json.Marshal(st)
}

// RestoreCheckpoint implements dataset.ReplayCheckpointable.
func (d *Distance) RestoreCheckpoint(state []byte) error {
	var st distState
	if err := json.Unmarshal(state, &st); err != nil {
		return err
	}
	d.closestGlobal = make(map[distKey]float64)
	d.samples = make(map[sampleKey]*distSamples, len(st.Samples))
	for _, e := range st.Samples {
		d.samples[sampleKey{e.Letter, e.Family}] = &distSamples{
			closest: e.Closest, actual: e.Actual,
		}
	}
	d.extraSum = make(map[vpTarget]float64, len(st.Extra))
	d.extraCount = make(map[vpTarget]int, len(st.Extra))
	for _, e := range st.Extra {
		k := vpTarget{e.VPIdx, e.Letter, e.Family}
		d.extraSum[k] = e.Sum
		d.extraCount[k] = e.Count
	}
	return nil
}

// --- RTT ---

type rttSampleEntry struct {
	Region geo.Region      `json:"region"`
	Letter rss.Letter      `json:"letter"`
	Family topology.Family `json:"family"`
	Old    bool            `json:"old,omitempty"`
	Values []float64       `json:"values"`
}

type rttCarrierEntry struct {
	Region  geo.Region      `json:"region"`
	Letter  rss.Letter      `json:"letter"`
	Family  topology.Family `json:"family"`
	Carrier int             `json:"carrier"`
	Values  []float64       `json:"values"`
}

type rttCountEntry struct {
	Region  geo.Region      `json:"region"`
	Family  topology.Family `json:"family"`
	Carrier int             `json:"carrier"`
	Via     int             `json:"via,omitempty"`
	Total   int             `json:"total,omitempty"`
}

type rttState struct {
	Samples []rttSampleEntry  `json:"samples,omitempty"`
	Carrier []rttCarrierEntry `json:"carrier,omitempty"`
	Counts  []rttCountEntry   `json:"counts,omitempty"`
}

// CheckpointSeal implements measure.Checkpointable.
func (r *RTT) CheckpointSeal() ([]byte, error) {
	var st rttState
	sKeys := make([]rttKey, 0, len(r.samples))
	for k := range r.samples {
		sKeys = append(sKeys, k)
	}
	sort.Slice(sKeys, func(a, b int) bool {
		ka, kb := sKeys[a], sKeys[b]
		if ka.region != kb.region {
			return ka.region < kb.region
		}
		if ka.letter != kb.letter {
			return ka.letter < kb.letter
		}
		if ka.family != kb.family {
			return ka.family < kb.family
		}
		return !ka.old && kb.old
	})
	for _, k := range sKeys {
		st.Samples = append(st.Samples, rttSampleEntry{
			Region: k.region, Letter: k.letter, Family: k.family, Old: k.old,
			Values: r.samples[k],
		})
	}
	cKeys := make([]rttCarrierKey, 0, len(r.viaCarrier))
	for k := range r.viaCarrier {
		cKeys = append(cKeys, k)
	}
	sort.Slice(cKeys, func(a, b int) bool {
		ka, kb := cKeys[a], cKeys[b]
		if ka.region != kb.region {
			return ka.region < kb.region
		}
		if ka.letter != kb.letter {
			return ka.letter < kb.letter
		}
		if ka.family != kb.family {
			return ka.family < kb.family
		}
		return ka.carrier < kb.carrier
	})
	for _, k := range cKeys {
		st.Carrier = append(st.Carrier, rttCarrierEntry{
			Region: k.region, Letter: k.letter, Family: k.family, Carrier: k.carrier,
			Values: r.viaCarrier[k],
		})
	}
	nKeys := make([]carrierCountKey, 0, len(r.totalCount))
	for k := range r.totalCount {
		nKeys = append(nKeys, k)
	}
	for k := range r.carrierCount {
		if _, ok := r.totalCount[k]; !ok {
			nKeys = append(nKeys, k)
		}
	}
	sort.Slice(nKeys, func(a, b int) bool {
		ka, kb := nKeys[a], nKeys[b]
		if ka.region != kb.region {
			return ka.region < kb.region
		}
		if ka.family != kb.family {
			return ka.family < kb.family
		}
		return ka.carrier < kb.carrier
	})
	for _, k := range nKeys {
		st.Counts = append(st.Counts, rttCountEntry{
			Region: k.region, Family: k.family, Carrier: k.carrier,
			Via: r.carrierCount[k], Total: r.totalCount[k],
		})
	}
	return json.Marshal(st)
}

// RestoreCheckpoint implements dataset.ReplayCheckpointable.
func (r *RTT) RestoreCheckpoint(state []byte) error {
	var st rttState
	if err := json.Unmarshal(state, &st); err != nil {
		return err
	}
	r.samples = make(map[rttKey][]float64, len(st.Samples))
	for _, e := range st.Samples {
		r.samples[rttKey{e.Region, e.Letter, e.Family, e.Old}] = e.Values
	}
	r.viaCarrier = make(map[rttCarrierKey][]float64, len(st.Carrier))
	for _, e := range st.Carrier {
		r.viaCarrier[rttCarrierKey{e.Region, e.Letter, e.Family, e.Carrier}] = e.Values
	}
	r.carrierCount = make(map[carrierCountKey]int, len(st.Counts))
	r.totalCount = make(map[carrierCountKey]int, len(st.Counts))
	for _, e := range st.Counts {
		k := carrierCountKey{e.Region, e.Family, e.Carrier}
		if e.Via != 0 {
			r.carrierCount[k] = e.Via
		}
		if e.Total != 0 {
			r.totalCount[k] = e.Total
		}
	}
	return nil
}

// --- Integrity ---

type integrityRowEntry struct {
	Reason   string    `json:"reason"`
	VPID     string    `json:"vp_id"`
	VPIdx    int       `json:"vp"`
	SOAs     []uint32  `json:"soas"`
	Servers  []string  `json:"servers"`
	FirstObs time.Time `json:"first_obs"`
	LastObs  time.Time `json:"last_obs"`
	Obs      int       `json:"obs"`
}

type integrityState struct {
	Rows      []integrityRowEntry `json:"rows,omitempty"`
	Flip      *faults.Bitflip     `json:"flip,omitempty"`
	Transfers int                 `json:"transfers"`
	Failures  int                 `json:"failures,omitempty"`
}

// CheckpointSeal implements measure.Checkpointable. The retained bitflip is
// order-sensitive (first observed wins), so it rides the snapshot verbatim.
func (i *Integrity) CheckpointSeal() ([]byte, error) {
	st := integrityState{Flip: i.flip, Transfers: i.Transfers, Failures: i.Failures}
	for _, row := range i.Rows() {
		soas := make([]uint32, 0, len(row.SOAs))
		for s := range row.SOAs {
			soas = append(soas, s)
		}
		sort.Slice(soas, func(a, b int) bool { return soas[a] < soas[b] })
		servers := make([]string, 0, len(row.Servers))
		for s := range row.Servers {
			servers = append(servers, s)
		}
		sort.Strings(servers)
		st.Rows = append(st.Rows, integrityRowEntry{
			Reason: row.Reason, VPID: row.VPID, VPIdx: row.VPIdx,
			SOAs: soas, Servers: servers,
			FirstObs: row.FirstObs, LastObs: row.LastObs, Obs: row.Obs,
		})
	}
	return json.Marshal(st)
}

// RestoreCheckpoint implements dataset.ReplayCheckpointable.
func (i *Integrity) RestoreCheckpoint(state []byte) error {
	var st integrityState
	if err := json.Unmarshal(state, &st); err != nil {
		return err
	}
	i.rows = make(map[integrityKey]*IntegrityRow, len(st.Rows))
	for _, e := range st.Rows {
		soas := make(map[uint32]bool, len(e.SOAs))
		for _, s := range e.SOAs {
			soas[s] = true
		}
		servers := make(map[string]bool, len(e.Servers))
		for _, s := range e.Servers {
			servers[s] = true
		}
		i.rows[integrityKey{e.Reason, e.VPIdx}] = &IntegrityRow{
			Reason: e.Reason, VPID: e.VPID, VPIdx: e.VPIdx,
			SOAs: soas, Servers: servers,
			FirstObs: e.FirstObs, LastObs: e.LastObs, Obs: e.Obs,
		}
	}
	i.flip = st.Flip
	i.Transfers = st.Transfers
	i.Failures = st.Failures
	return nil
}
