package analysis

import (
	"fmt"
	"io"

	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/rss"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/vantage"
)

// Colocation quantifies reduced redundancy per VP (Fig. 4, §5): within one
// tick, the VP's 13 probes (one per letter, per family) whose traceroutes
// share a second-to-last hop indicate co-located servers. Reduced redundancy
// = total letters observed − distinct second-to-last hops. Missed hops count
// as unique, making the measure a lower bound like the paper's.
type Colocation struct {
	pop *vantage.Population
	// current accumulates the in-progress tick's second-to-last hops per
	// (vp, family); when a new tick starts for that vp, the previous one is
	// folded into the per-VP series.
	current map[colocKey]*tickHops
	// series holds the per-tick reduced-redundancy observations per
	// (vp, family). Co-location is a property of the typical routing, so
	// per-VP reporting uses the median over ticks; the campaign-wide
	// maximum backs the "up to N co-located servers" observation.
	series map[colocKey][]float64
}

type colocKey struct {
	vpIdx  int
	family topology.Family
}

type tickHops struct {
	tick    int
	total   int
	hops    map[string]bool
	uniques int // unresponsive hops, each counted unique
}

// NewColocation creates the accumulator.
func NewColocation(pop *vantage.Population) *Colocation {
	return &Colocation{
		pop:     pop,
		current: make(map[colocKey]*tickHops),
		series:  make(map[colocKey][]float64),
	}
}

// HandleProbe implements measure.Handler.
func (c *Colocation) HandleProbe(e measure.ProbeEvent) {
	if e.Lost || e.Target.Old {
		return // 13 letters, one probe each; skip b.root's old duplicate
	}
	if e.SecondToLast == "" && !e.STLOK {
		// Either the traceroute was skipped this tick (TraceEvery) or the
		// hop was missed; a skipped traceroute has no hop data at all and
		// is indistinguishable here, so both count as unique/absent.
		if e.SiteID == "" {
			return
		}
	}
	k := colocKey{e.VPIdx, e.Target.Family}
	th := c.current[k]
	if th == nil || th.tick != e.Tick.Index {
		if th != nil {
			c.fold(k, th)
		}
		th = &tickHops{tick: e.Tick.Index, hops: make(map[string]bool)}
		c.current[k] = th
	}
	th.total++
	if e.STLOK {
		th.hops[e.SecondToLast] = true
	} else {
		th.uniques++
	}
}

// HandleTransfer implements measure.Handler.
func (c *Colocation) HandleTransfer(measure.TransferEvent) {}

func (c *Colocation) fold(k colocKey, th *tickHops) {
	distinct := len(th.hops) + th.uniques
	rr := th.total - distinct
	if rr < 0 {
		rr = 0
	}
	c.series[k] = append(c.series[k], float64(rr))
}

// finish folds any in-progress ticks.
func (c *Colocation) finish() {
	for k, th := range c.current {
		c.fold(k, th)
		delete(c.current, k)
	}
}

// ReducedRedundancy returns the per-VP typical (median-over-ticks) reduced
// redundancy for one family in one region (nil region = all VPs).
func (c *Colocation) ReducedRedundancy(f topology.Family, region *geo.Region) []float64 {
	c.finish()
	var out []float64
	for vpIdx := range c.pop.VPs {
		vp := &c.pop.VPs[vpIdx]
		if region != nil && vp.Region != *region {
			continue
		}
		if s := c.series[colocKey{vpIdx, f}]; len(s) > 0 {
			out = append(out, stats.Median(s))
		}
	}
	return out
}

// ShareWithColocation returns the fraction of VPs whose typical measurement
// observes co-location of at least two servers (reduced redundancy >= 1) in
// either family — the paper's "~70% of clients" headline.
func (c *Colocation) ShareWithColocation() float64 {
	c.finish()
	seen, hit := 0, 0
	for vpIdx := range c.pop.VPs {
		any := false
		found := false
		for _, f := range topology.Families() {
			if s := c.series[colocKey{vpIdx, f}]; len(s) > 0 {
				found = true
				if stats.Median(s) >= 1 {
					any = true
				}
			}
		}
		if found {
			seen++
			if any {
				hit++
			}
		}
	}
	if seen == 0 {
		return 0
	}
	return float64(hit) / float64(seen)
}

// MaxReducedRedundancy returns the largest single-tick value observed
// anywhere (paper: up to 12 co-located servers).
func (c *Colocation) MaxReducedRedundancy() int {
	c.finish()
	maxV := 0.0
	for _, s := range c.series {
		for _, v := range s {
			if v > maxV {
				maxV = v
			}
		}
	}
	return int(maxV)
}

// WriteFigure4 renders the per-continent reduced-redundancy histograms with
// the per-family averages the paper annotates.
func (c *Colocation) WriteFigure4(w io.Writer) {
	fmt.Fprintln(w, "Figure 4: reduced redundancy due to shared last hop, per continent")
	for _, region := range geo.Regions() {
		region := region
		v4 := c.ReducedRedundancy(topology.IPv4, &region)
		v6 := c.ReducedRedundancy(topology.IPv6, &region)
		fmt.Fprintf(w, "-- %s -- avg(v4)=%.2f avg(v6)=%.2f (VPs=%d)\n",
			region, stats.Mean(v4), stats.Mean(v6), len(v4))
		h4 := stats.Histogram(v4, 1, 13)
		h6 := stats.Histogram(v6, 1, 13)
		for rr := 0; rr < 13; rr++ {
			if h4[rr] == 0 && h6[rr] == 0 {
				continue
			}
			fmt.Fprintf(w, "   rr=%2d  v4:%4d  v6:%4d\n", rr, h4[rr], h6[rr])
		}
	}
	fmt.Fprintf(w, "VPs observing co-location of >=2 servers: %.1f%% (max %d of %d)\n",
		c.ShareWithColocation()*100, c.MaxReducedRedundancy(), len(rss.Letters())-1)
}
