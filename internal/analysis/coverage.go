// Package analysis implements the paper's analyses over campaign events and
// passive models: site coverage (Tables 1 and 4), site stability (Fig. 3),
// server co-location (Fig. 4, §5), route inflation (Fig. 5), RTT by region
// (Figs. 6, 14, 15), traffic around the b.root change (Figs. 7-9, 12, 13),
// and the zone-transfer integrity taxonomy (Table 2, Fig. 10).
package analysis

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/anycast"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/rss"
)

// Coverage accumulates which sites the campaign observed per letter, and
// compares against the published ground truth (Tables 1 and 4).
type Coverage struct {
	System *rss.System
	// observedIdentifiers[letter] is the set of identifiers seen in
	// hostname.bind/id.server answers.
	observedIdentifiers map[rss.Letter]map[string]bool
}

// NewCoverage creates a coverage accumulator for the system under study.
func NewCoverage(sys *rss.System) *Coverage {
	return &Coverage{
		System:              sys,
		observedIdentifiers: make(map[rss.Letter]map[string]bool),
	}
}

// HandleProbe implements measure.Handler.
func (c *Coverage) HandleProbe(e measure.ProbeEvent) {
	if e.Lost || e.Identifier == "" {
		return
	}
	set := c.observedIdentifiers[e.Target.Letter]
	if set == nil {
		set = make(map[string]bool)
		c.observedIdentifiers[e.Target.Letter] = set
	}
	set[e.Identifier] = true
}

// HandleTransfer implements measure.Handler.
func (c *Coverage) HandleTransfer(measure.TransferEvent) {}

// Row is one coverage table row: published vs covered site counts.
type Row struct {
	Letter                 rss.Letter
	Region                 *geo.Region // nil = worldwide
	GlobalSites, GlobalCov int
	LocalSites, LocalCov   int
}

// TotalSites returns the row's total published sites.
func (r Row) TotalSites() int { return r.GlobalSites + r.LocalSites }

// TotalCov returns the row's total covered sites.
func (r Row) TotalCov() int { return r.GlobalCov + r.LocalCov }

// Pct formats covered/published as a percentage ("-" when none published).
func Pct(cov, total int) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", float64(cov)*100/float64(total))
}

// siteObserved decides whether a site counts as covered: directly when its
// identifier was observed; for IATA-only letters a site is covered when its
// metro code was observed (sites in one metro are indistinguishable,
// paper §4.2 footnote 2).
func (c *Coverage) siteObserved(l rss.Letter, s anycast.Site) bool {
	set := c.observedIdentifiers[l]
	if set == nil {
		return false
	}
	if rss.IATAOnly(l) {
		return set[lowerIATA(s.City.IATA)]
	}
	return set[s.Identifier]
}

// Table1 returns the worldwide coverage rows, one per letter.
func (c *Coverage) Table1() []Row {
	rows := make([]Row, 0, 13)
	for _, l := range rss.Letters() {
		rows = append(rows, c.row(l, nil))
	}
	return rows
}

// Table4 returns the per-region coverage rows grouped by region, in report
// order.
func (c *Coverage) Table4() map[geo.Region][]Row {
	out := make(map[geo.Region][]Row)
	for _, region := range geo.Regions() {
		region := region
		for _, l := range rss.Letters() {
			out[region] = append(out[region], c.row(l, &region))
		}
	}
	return out
}

func (c *Coverage) row(l rss.Letter, region *geo.Region) Row {
	row := Row{Letter: l, Region: region}
	for _, s := range c.System.Deployments[l].Sites {
		if region != nil && s.City.Region != *region {
			continue
		}
		observed := c.siteObserved(l, s)
		if s.Kind == anycast.Global {
			row.GlobalSites++
			if observed {
				row.GlobalCov++
			}
		} else {
			row.LocalSites++
			if observed {
				row.LocalCov++
			}
		}
	}
	return row
}

// UnmappedIdentifiers counts observed identifiers that map to no published
// site (the paper: 135 of 1,604, 75 from j.root).
func (c *Coverage) UnmappedIdentifiers() map[rss.Letter]int {
	out := make(map[rss.Letter]int)
	for _, l := range rss.Letters() {
		known := make(map[string]bool)
		for _, s := range c.System.Deployments[l].Sites {
			if rss.IATAOnly(l) {
				known[lowerIATA(s.City.IATA)] = true
			} else {
				known[s.Identifier] = true
			}
		}
		for id := range c.observedIdentifiers[l] {
			if !known[id] || !rss.IdentifierMappable(l, id) {
				out[l]++
			}
		}
	}
	return out
}

// ObservedIdentifiers returns the total distinct identifiers seen.
func (c *Coverage) ObservedIdentifiers() int {
	n := 0
	for _, set := range c.observedIdentifiers {
		n += len(set)
	}
	return n
}

// WriteTable1 renders the worldwide coverage table like the paper's Table 1.
func (c *Coverage) WriteTable1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: Coverage of root sites (worldwide)")
	fmt.Fprintln(w, "Root  #GSites #GCov GCov%   #LSites #LCov LCov%   #Total #TCov TCov%")
	for _, r := range c.Table1() {
		fmt.Fprintf(w, "%-5s %7d %5d %5s   %7d %5d %5s   %6d %5d %5s\n",
			r.Letter, r.GlobalSites, r.GlobalCov, Pct(r.GlobalCov, r.GlobalSites),
			r.LocalSites, r.LocalCov, Pct(r.LocalCov, r.LocalSites),
			r.TotalSites(), r.TotalCov(), Pct(r.TotalCov(), r.TotalSites()))
	}
}

// WriteTable4 renders per-region coverage like the paper's Table 4.
func (c *Coverage) WriteTable4(w io.Writer) {
	fmt.Fprintln(w, "Table 4: Coverage of root sites per region")
	t4 := c.Table4()
	for _, region := range geo.Regions() {
		fmt.Fprintf(w, "-- %s --\n", region)
		fmt.Fprintln(w, "Root  #GSites GCov%  #LSites LCov%  #Total TCov%")
		for _, r := range t4[region] {
			fmt.Fprintf(w, "%-5s %7d %5s  %7d %5s  %6d %5s\n",
				r.Letter, r.GlobalSites, Pct(r.GlobalCov, r.GlobalSites),
				r.LocalSites, Pct(r.LocalCov, r.LocalSites),
				r.TotalSites(), Pct(r.TotalCov(), r.TotalSites()))
		}
	}
}

// WriteValidation renders the §4.2 dataset-validation summary: how many
// distinct identifiers were observed, how many map to published instances,
// and where the unmappable ones concentrate (the paper: 1,469 of 1,604
// mapped; 75 of the 135 unmapped from j.root).
func (c *Coverage) WriteValidation(w io.Writer) {
	unmapped := c.UnmappedIdentifiers()
	totalUnmapped := 0
	worst := rss.Letter("")
	worstN := -1
	for _, l := range rss.Letters() {
		totalUnmapped += unmapped[l]
		if unmapped[l] > worstN {
			worst, worstN = l, unmapped[l]
		}
	}
	observed := c.ObservedIdentifiers()
	fmt.Fprintln(w, "Section 4.2: identifier-to-instance mapping")
	fmt.Fprintf(w, "  observed identifiers: %d, mapped: %d, unmapped: %d\n",
		observed, observed-totalUnmapped, totalUnmapped)
	if worstN > 0 {
		fmt.Fprintf(w, "  unmapped concentrate in %s.root (%d of %d)\n",
			worst, worstN, totalUnmapped)
	}
}

// Figure11 lists, per letter, the observed and unobserved site locations
// (the textual form of the paper's coverage maps).
func (c *Coverage) Figure11(w io.Writer) {
	fmt.Fprintln(w, "Figure 11: per-letter site coverage (o = observed, x = not observed)")
	for _, l := range rss.Letters() {
		var obs, unobs []string
		for _, s := range c.System.Deployments[l].Sites {
			tag := fmt.Sprintf("%s/%s", s.City.IATA, s.Kind)
			if c.siteObserved(l, s) {
				obs = append(obs, "o "+tag)
			} else {
				unobs = append(unobs, "x "+tag)
			}
		}
		sort.Strings(obs)
		sort.Strings(unobs)
		fmt.Fprintf(w, "%s.root: %d observed, %d not observed\n", l, len(obs), len(unobs))
	}
}

func lowerIATA(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}
