package analysis

import (
	"fmt"
	"io"
	"math"

	"repro/internal/anycast"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/rss"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/vantage"
)

// Distance measures geographic route inflation (Fig. 5): for each request,
// the great-circle distance from the VP to the geographically closest
// *global* site of the deployment versus the distance to the site the
// request actually reached. Requests landing on a closer local site fall
// below the diagonal; requests routed past their closest global site fall
// above it.
type Distance struct {
	sys *rss.System
	pop *vantage.Population
	// closestGlobal caches the per-(vp, letter) closest global site
	// distance.
	closestGlobal map[distKey]float64

	// Samples per (letter, family): pairs of (closest, actual) distances.
	samples map[sampleKey]*distSamples
	// perVP accumulates mean extra distance per VP per letter+family.
	extraSum   map[vpTarget]float64
	extraCount map[vpTarget]int
}

type distKey struct {
	vpIdx  int
	letter rss.Letter
}

type sampleKey struct {
	letter rss.Letter
	family topology.Family
}

type vpTarget struct {
	vpIdx  int
	letter rss.Letter
	family topology.Family
}

type distSamples struct {
	closest, actual []float64
}

// NewDistance creates the accumulator.
func NewDistance(sys *rss.System, pop *vantage.Population) *Distance {
	return &Distance{
		sys:           sys,
		pop:           pop,
		closestGlobal: make(map[distKey]float64),
		samples:       make(map[sampleKey]*distSamples),
		extraSum:      make(map[vpTarget]float64),
		extraCount:    make(map[vpTarget]int),
	}
}

// HandleProbe implements measure.Handler.
func (d *Distance) HandleProbe(e measure.ProbeEvent) {
	if e.Lost || e.SiteID == "" || e.Target.Old {
		return
	}
	ck := distKey{e.VPIdx, e.Target.Letter}
	closest, ok := d.closestGlobal[ck]
	if !ok {
		closest = d.computeClosest(e.VP, e.Target.Letter)
		d.closestGlobal[ck] = closest
	}
	actual := geo.DistanceKm(e.VP.City.Point, e.SiteCity.Point)

	sk := sampleKey{e.Target.Letter, e.Target.Family}
	s := d.samples[sk]
	if s == nil {
		s = &distSamples{}
		d.samples[sk] = s
	}
	s.closest = append(s.closest, closest)
	s.actual = append(s.actual, actual)

	vk := vpTarget{e.VPIdx, e.Target.Letter, e.Target.Family}
	extra := actual - closest
	if extra < 0 {
		extra = 0 // landed on a closer local site
	}
	d.extraSum[vk] += extra
	d.extraCount[vk]++
}

// HandleTransfer implements measure.Handler.
func (d *Distance) HandleTransfer(measure.TransferEvent) {}

func (d *Distance) computeClosest(vp *vantage.VP, l rss.Letter) float64 {
	minKm := math.Inf(1)
	for _, s := range d.sys.Deployments[l].GlobalSites() {
		if km := geo.DistanceKm(vp.City.Point, s.City.Point); km < minKm {
			minKm = km
		}
	}
	return minKm
}

// OptimalShare returns the fraction of requests routed to their closest
// global site or closer (the paper: 78.2%/82.2% for b.root v4/v6, ~80% for
// m.root), using a tolerance of tolKm for "same distance".
func (d *Distance) OptimalShare(l rss.Letter, f topology.Family, tolKm float64) float64 {
	s := d.samples[sampleKey{l, f}]
	if s == nil || len(s.actual) == 0 {
		return math.NaN()
	}
	n := 0
	for i := range s.actual {
		if s.actual[i] <= s.closest[i]+tolKm {
			n++
		}
	}
	return float64(n) / float64(len(s.actual))
}

// ExtraDistancePerVP returns each VP's mean additional distance for the
// target (paper §6: 79.5% of b.root clients under 1,000 km extra; 21.5% up
// to 15,000 km).
func (d *Distance) ExtraDistancePerVP(l rss.Letter, f topology.Family) []float64 {
	var out []float64
	for vk, sum := range d.extraSum {
		if vk.letter == l && vk.family == f && d.extraCount[vk] > 0 {
			out = append(out, sum/float64(d.extraCount[vk]))
		}
	}
	return out
}

// WriteFigure5 renders the Fig. 5 scatter summaries for b.root and m.root.
func (d *Distance) WriteFigure5(w io.Writer) {
	fmt.Fprintln(w, "Figure 5: distance to closest global site vs actual site")
	for _, sel := range []struct {
		letter rss.Letter
		family topology.Family
		label  string
	}{
		{"b", topology.IPv4, "b.root (new IPv4)"},
		{"b", topology.IPv6, "b.root (new IPv6)"},
		{"m", topology.IPv4, "m.root (IPv4)"},
		{"m", topology.IPv6, "m.root (IPv6)"},
	} {
		share := d.OptimalShare(sel.letter, sel.family, 100)
		extras := d.ExtraDistancePerVP(sel.letter, sel.family)
		under1k := 0
		for _, e := range extras {
			if e < 1000 {
				under1k++
			}
		}
		frac := math.NaN()
		if len(extras) > 0 {
			frac = float64(under1k) / float64(len(extras))
		}
		fmt.Fprintf(w, "%-18s optimal-or-closer=%.1f%%  VPs<1000km extra=%.1f%%  extra-dist %s\n",
			sel.label, share*100, frac*100, stats.Summarize(extras))
	}
}

// closerLocalShare returns the fraction of requests that landed on a local
// site closer than the closest global site (below-diagonal mass in Fig. 5).
func (d *Distance) closerLocalShare(l rss.Letter, f topology.Family) float64 {
	s := d.samples[sampleKey{l, f}]
	if s == nil || len(s.actual) == 0 {
		return math.NaN()
	}
	n := 0
	for i := range s.actual {
		if s.actual[i] < s.closest[i]-100 {
			n++
		}
	}
	return float64(n) / float64(len(s.actual))
}

// LocalSiteShare exposes closerLocalShare for reports and tests.
func (d *Distance) LocalSiteShare(l rss.Letter, f topology.Family) float64 {
	return d.closerLocalShare(l, f)
}

// ObservedDeployment ties the accumulator to its system for callers that
// need per-letter deployment context.
func (d *Distance) ObservedDeployment(l rss.Letter) *anycast.Deployment {
	return d.sys.Deployments[l]
}
