package analysis

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/dnssec"
	"repro/internal/faults"
	"repro/internal/measure"
	"repro/internal/rss"
	"repro/internal/topology"
)

// Integrity builds the Table 2 taxonomy from transfer events: validation
// failures grouped by reason and VP, with the affected servers, distinct
// SOAs, first/last observation, and observation counts. It also retains one
// rendered bitflip example for Fig. 10.
type Integrity struct {
	rows map[integrityKey]*IntegrityRow
	// flip is the first observed bitflip rendering (Fig. 10).
	flip *faults.Bitflip
	// totals
	Transfers int
	Failures  int
}

type integrityKey struct {
	reason string
	vpIdx  int
}

// IntegrityRow is one Table 2 row.
type IntegrityRow struct {
	Reason   string
	VPID     string
	VPIdx    int
	SOAs     map[uint32]bool
	Servers  map[string]bool
	FirstObs time.Time
	LastObs  time.Time
	Obs      int
}

// NewIntegrity creates the accumulator.
func NewIntegrity() *Integrity {
	return &Integrity{rows: make(map[integrityKey]*IntegrityRow)}
}

// HandleProbe implements measure.Handler.
func (i *Integrity) HandleProbe(measure.ProbeEvent) {}

// HandleTransfer implements measure.Handler.
func (i *Integrity) HandleTransfer(e measure.TransferEvent) {
	if e.Lost {
		return
	}
	i.Transfers++
	reason := classify(e)
	if reason == "" {
		return
	}
	i.Failures++
	if e.Bitflip != nil && i.flip == nil {
		i.flip = e.Bitflip
	}
	k := integrityKey{reason, e.VPIdx}
	row := i.rows[k]
	if row == nil {
		row = &IntegrityRow{
			Reason: reason, VPID: e.VP.ID, VPIdx: e.VPIdx,
			SOAs: make(map[uint32]bool), Servers: make(map[string]bool),
			FirstObs: e.Tick.Time,
		}
		i.rows[k] = row
	}
	row.SOAs[e.Serial] = true
	row.Servers[serverLabel(e.Target)] = true
	if e.Tick.Time.Before(row.FirstObs) {
		row.FirstObs = e.Tick.Time
	}
	if e.Tick.Time.After(row.LastObs) {
		row.LastObs = e.Tick.Time
	}
	row.Obs++
}

// classify maps a transfer outcome to the Table 2 reason string.
func classify(e measure.TransferEvent) string {
	switch {
	case errors.Is(e.DNSSECErr, dnssec.ErrSignatureNotIncepted):
		return "Sig. not incepted"
	case errors.Is(e.DNSSECErr, dnssec.ErrSignatureExpired):
		return "Signature expired"
	case e.DNSSECErr != nil || e.ZonemdErr != nil:
		return "Bogus Signature"
	case e.ComparisonMismatch:
		return "Reference mismatch"
	}
	return ""
}

func serverLabel(t rss.ServiceAddr) string {
	fam := "v4"
	if t.Family == topology.IPv6 {
		fam = "v6"
	}
	if t.Old {
		return fmt.Sprintf("%s(old %s)", t.Letter, fam)
	}
	return fmt.Sprintf("%s(%s)", t.Letter, fam)
}

// Rows returns the taxonomy rows sorted by reason then VP.
func (i *Integrity) Rows() []*IntegrityRow {
	out := make([]*IntegrityRow, 0, len(i.rows))
	for _, r := range i.rows {
		out = append(out, r)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Reason != out[b].Reason {
			return out[a].Reason < out[b].Reason
		}
		return out[a].VPIdx < out[b].VPIdx
	})
	return out
}

// Bitflip returns the retained Fig. 10 example, if any.
func (i *Integrity) Bitflip() (faults.Bitflip, bool) {
	if i.flip == nil {
		return faults.Bitflip{}, false
	}
	return *i.flip, true
}

// WriteTable2 renders the validation-error taxonomy like the paper's
// Table 2.
func (i *Integrity) WriteTable2(w io.Writer) {
	fmt.Fprintln(w, "Table 2: zone validation errors from AXFRs")
	fmt.Fprintf(w, "(%d transfers checked, %d failures)\n", i.Transfers, i.Failures)
	fmt.Fprintln(w, "Reason              #SOA  First Obs         Last Obs          #Obs  Servers            VP")
	for _, r := range i.Rows() {
		servers := make([]string, 0, len(r.Servers))
		for s := range r.Servers {
			servers = append(servers, s)
		}
		sort.Strings(servers)
		label := servers[0]
		if len(servers) > 10 {
			label = "all"
		} else if len(servers) > 1 {
			label = fmt.Sprintf("%s(+%d)", servers[0], len(servers)-1)
		}
		fmt.Fprintf(w, "%-19s %4d  %-16s  %-16s  %4d  %-18s %s\n",
			r.Reason, len(r.SOAs),
			r.FirstObs.Format("06-01-02 15:04"), r.LastObs.Format("06-01-02 15:04"),
			r.Obs, label, r.VPID)
	}
}

// WriteFigure10 renders the retained bitflip example like the paper's
// Fig. 10 (the record before and after the flip).
func (i *Integrity) WriteFigure10(w io.Writer) {
	fmt.Fprintln(w, "Figure 10: bitflip in a zone received via AXFR")
	flip, ok := i.Bitflip()
	if !ok {
		fmt.Fprintln(w, "(no bitflip captured in this run)")
		return
	}
	fmt.Fprintf(w, "received: %s\n", flip.After)
	fmt.Fprintf(w, "expected: %s\n", flip.Before)
}
