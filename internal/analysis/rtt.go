package analysis

import (
	"fmt"
	"io"

	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/rss"
	"repro/internal/stats"
	"repro/internal/topology"
)

// RTT accumulates query round-trip times per (region, letter, family,
// old-b) for the violin/box figures (Figs. 6, 14, 15), plus per-transit-AS
// RTT attribution for the paper's §6 path observations (e.g. AS6939
// carrying IPv6 out of continent).
type RTT struct {
	samples map[rttKey][]float64
	// viaCarrier tracks RTTs of probes whose AS path traverses the given
	// special carrier, per (region, letter, family).
	viaCarrier map[rttCarrierKey][]float64
	// carrierCount counts probes through each carrier per (region, family).
	carrierCount map[carrierCountKey]int
	totalCount   map[carrierCountKey]int
}

type rttKey struct {
	region geo.Region
	letter rss.Letter
	family topology.Family
	old    bool
}

type rttCarrierKey struct {
	region  geo.Region
	letter  rss.Letter
	family  topology.Family
	carrier int
}

type carrierCountKey struct {
	region  geo.Region
	family  topology.Family
	carrier int
}

// NewRTT creates the accumulator.
func NewRTT() *RTT {
	return &RTT{
		samples:      make(map[rttKey][]float64),
		viaCarrier:   make(map[rttCarrierKey][]float64),
		carrierCount: make(map[carrierCountKey]int),
		totalCount:   make(map[carrierCountKey]int),
	}
}

// HandleProbe implements measure.Handler.
func (r *RTT) HandleProbe(e measure.ProbeEvent) {
	if e.Lost || e.RTTms <= 0 {
		return
	}
	k := rttKey{e.VP.Region, e.Target.Letter, e.Target.Family, e.Target.Old}
	r.samples[k] = append(r.samples[k], e.RTTms)

	for _, carrier := range []int{topology.ASNOpenV6, topology.ASNCarrierV4} {
		ck := carrierCountKey{e.VP.Region, e.Target.Family, carrier}
		r.totalCount[ck]++
		for _, asn := range e.ASPath {
			if asn == carrier {
				r.carrierCount[ck]++
				rk := rttCarrierKey{e.VP.Region, e.Target.Letter, e.Target.Family, carrier}
				r.viaCarrier[rk] = append(r.viaCarrier[rk], e.RTTms)
				break
			}
		}
	}
}

// HandleTransfer implements measure.Handler.
func (r *RTT) HandleTransfer(measure.TransferEvent) {}

// Samples returns the RTT samples for one cell.
func (r *RTT) Samples(region geo.Region, l rss.Letter, f topology.Family, old bool) []float64 {
	return r.samples[rttKey{region, l, f, old}]
}

// Summary summarizes one cell.
func (r *RTT) Summary(region geo.Region, l rss.Letter, f topology.Family, old bool) stats.Summary {
	return stats.Summarize(r.Samples(region, l, f, old))
}

// CarrierShare returns the fraction of probes in (region, family) whose
// path traverses the carrier AS.
func (r *RTT) CarrierShare(region geo.Region, f topology.Family, carrier int) float64 {
	ck := carrierCountKey{region, f, carrier}
	if r.totalCount[ck] == 0 {
		return 0
	}
	return float64(r.carrierCount[ck]) / float64(r.totalCount[ck])
}

// CarrierRTT summarizes RTTs of probes through the carrier for one letter.
func (r *RTT) CarrierRTT(region geo.Region, l rss.Letter, f topology.Family, carrier int) stats.Summary {
	return stats.Summarize(r.viaCarrier[rttCarrierKey{region, l, f, carrier}])
}

// WriteFigure6 renders the RTT violins for the four regions of Fig. 6;
// WriteFigure14 renders all six (Figs. 14/15 include Asia and Oceania).
func (r *RTT) WriteFigure6(w io.Writer) {
	r.writeRegions(w, "Figure 6: RTTs of requests by continent",
		[]geo.Region{geo.Africa, geo.SouthAmerica, geo.NorthAmerica, geo.Europe})
}

// WriteFigure14 renders all six regions (Figs. 14 and 15).
func (r *RTT) WriteFigure14(w io.Writer) {
	r.writeRegions(w, "Figures 14/15: RTTs of requests by continent (all regions)",
		geo.Regions())
}

func (r *RTT) writeRegions(w io.Writer, title string, regions []geo.Region) {
	fmt.Fprintln(w, title)
	for _, region := range regions {
		fmt.Fprintf(w, "-- %s --\n", region)
		fmt.Fprintln(w, "target             fam   n     mean    sd     p25    p50    p75")
		for _, l := range rss.Letters() {
			for _, f := range topology.Families() {
				variants := []bool{false}
				if l == "b" {
					variants = []bool{false, true}
				}
				for _, old := range variants {
					s := r.Summary(region, l, f, old)
					if s.N == 0 {
						continue
					}
					label := string(l) + ".root"
					if l == "b" {
						if old {
							label += " (old)"
						} else {
							label += " (new)"
						}
					}
					fmt.Fprintf(w, "%-18s %-4s %5d %7.1f %6.1f %6.1f %6.1f %6.1f\n",
						label, f, s.N, s.Mean, s.StdDev, s.P25, s.P50, s.P75)
				}
			}
		}
	}
}

// WriteSection6Callouts renders the per-letter regional IPv4-vs-IPv6 mean
// RTT comparisons of the paper's §6 prose (a.root in South America, h.root
// and i.root there, i.root in North America, l.root in Africa), flagging
// which family wins and by how much.
func (r *RTT) WriteSection6Callouts(w io.Writer) {
	fmt.Fprintln(w, "Section 6: per-letter regional IPv4-vs-IPv6 mean RTT")
	callouts := []struct {
		region geo.Region
		letter rss.Letter
	}{
		{geo.SouthAmerica, "a"},
		{geo.SouthAmerica, "h"},
		{geo.SouthAmerica, "i"},
		{geo.NorthAmerica, "i"},
		{geo.Africa, "l"},
	}
	for _, c := range callouts {
		s4 := r.Summary(c.region, c.letter, topology.IPv4, false)
		s6 := r.Summary(c.region, c.letter, topology.IPv6, false)
		if s4.N == 0 || s6.N == 0 {
			fmt.Fprintf(w, "  %-14s %s.root: insufficient samples\n", c.region, c.letter)
			continue
		}
		faster := "IPv4"
		ratio := s6.Mean / s4.Mean
		if s6.Mean < s4.Mean {
			faster = "IPv6"
			ratio = s4.Mean / s6.Mean
		}
		fmt.Fprintf(w, "  %-14s %s.root: v4 %.1f±%.1f ms, v6 %.1f±%.1f ms — %s %.2fx faster\n",
			c.region, c.letter, s4.Mean, s4.StdDev, s6.Mean, s6.StdDev, faster, ratio)
	}
}

// WriteCarrierEffects renders the §6 per-AS observations: carrier share and
// RTT through the special ASes per region and family.
func (r *RTT) WriteCarrierEffects(w io.Writer) {
	fmt.Fprintln(w, "Section 6: transit-carrier effects (AS6939-like open-v6, AS12956-like v4)")
	for _, region := range geo.Regions() {
		for _, f := range topology.Families() {
			for _, carrier := range []int{topology.ASNOpenV6, topology.ASNCarrierV4} {
				share := r.CarrierShare(region, f, carrier)
				if share == 0 {
					continue
				}
				fmt.Fprintf(w, "%-14s %s AS%-5d share=%.1f%%\n", region, f, carrier, share*100)
			}
		}
	}
}
