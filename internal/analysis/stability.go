package analysis

import (
	"fmt"
	"io"

	"repro/internal/measure"
	"repro/internal/rss"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Stability counts site-change events per (VP, letter, family): two
// subsequent measurements on the same VP reaching different sites (Fig. 3,
// §4.2). b.root's old/new targets are tracked separately, like the paper's
// IPv4old/IPv4new/IPv6old/IPv6new curves.
type Stability struct {
	// last[key] is the previously observed site.
	last map[stabKey]string
	// changes[key] counts transitions.
	changes map[stabKey]int
	// seen[key] marks a VP/target pair that produced at least one sample.
	seen map[stabKey]bool
}

type stabKey struct {
	vpIdx  int
	letter rss.Letter
	family topology.Family
	old    bool
}

// NewStability creates the accumulator.
func NewStability() *Stability {
	return &Stability{
		last:    make(map[stabKey]string),
		changes: make(map[stabKey]int),
		seen:    make(map[stabKey]bool),
	}
}

// HandleProbe implements measure.Handler.
func (s *Stability) HandleProbe(e measure.ProbeEvent) {
	if e.Lost || e.SiteID == "" {
		return
	}
	k := stabKey{e.VPIdx, e.Target.Letter, e.Target.Family, e.Target.Old}
	s.seen[k] = true
	if prev, ok := s.last[k]; ok && prev != e.SiteID {
		s.changes[k]++
	}
	s.last[k] = e.SiteID
}

// HandleTransfer implements measure.Handler.
func (s *Stability) HandleTransfer(measure.TransferEvent) {}

// Changes returns the per-VP change counts for one target.
func (s *Stability) Changes(letter rss.Letter, family topology.Family, old bool) []float64 {
	var out []float64
	for k := range s.seen {
		if k.letter == letter && k.family == family && k.old == old {
			out = append(out, float64(s.changes[k]))
		}
	}
	return out
}

// MedianChanges returns the median per-VP change count for one target.
func (s *Stability) MedianChanges(letter rss.Letter, family topology.Family, old bool) float64 {
	return stats.Median(s.Changes(letter, family, old))
}

// CCDF returns the complementary CDF of per-VP change counts for the target
// (Fig. 3's "1 - Prop. VPs" curves).
func (s *Stability) CCDF(letter rss.Letter, family topology.Family, old bool) []stats.ECDFPoint {
	return stats.CCDF(s.Changes(letter, family, old))
}

// WriteFigure3 renders the paper's Fig. 3: CCDFs for b.root (all four
// address curves) and g.root (both families), plus the §4.2 medians for all
// letters.
func (s *Stability) WriteFigure3(w io.Writer) {
	fmt.Fprintln(w, "Figure 3: CCDF of site-change events per VP")
	curves := []struct {
		label  string
		letter rss.Letter
		family topology.Family
		old    bool
	}{
		{"b.root IPv4new", "b", topology.IPv4, false},
		{"b.root IPv4old", "b", topology.IPv4, true},
		{"b.root IPv6new", "b", topology.IPv6, false},
		{"b.root IPv6old", "b", topology.IPv6, true},
		{"g.root IPv4", "g", topology.IPv4, false},
		{"g.root IPv6", "g", topology.IPv6, false},
	}
	for _, c := range curves {
		changes := s.Changes(c.letter, c.family, c.old)
		fmt.Fprintf(w, "%-16s median=%.0f p90=%.0f max=%.0f  (VPs=%d)\n",
			c.label, stats.Median(changes), stats.Quantile(changes, 0.9),
			stats.Quantile(changes, 1), len(changes))
		for _, x := range []float64{0, 1, 10, 100} {
			fmt.Fprintf(w, "    P(changes > %4.0f) = %.3f\n", x, stats.CCDFAt(changes, x))
		}
	}
	fmt.Fprintln(w, "Median changes per VP, all letters:")
	fmt.Fprintln(w, "root   IPv4  IPv6")
	for _, l := range rss.Letters() {
		fmt.Fprintf(w, "%-5s %5.0f %5.0f\n", l,
			s.MedianChanges(l, topology.IPv4, false),
			s.MedianChanges(l, topology.IPv6, false))
	}
}
