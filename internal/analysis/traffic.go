package analysis

import (
	"fmt"
	"io"
	"time"

	"repro/internal/passive"
	"repro/internal/rss"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Traffic wraps the passive models into the paper's figures: normalized
// b.root traffic around the change (Fig. 7 ISP, Fig. 9 IXP), the
// clients-per-day priming signal (Fig. 8), the all-letters shares (Figs. 12
// and 13), and the §6 in-family shift ratios.
type Traffic struct {
	ISP   *passive.Model
	IXPEU *passive.Model
	IXPNA *passive.Model
	// IXPs is the disaggregated 14-exchange platform behind the regional
	// aggregates.
	IXPs *passive.MultiIXP
}

// NewTraffic builds the passive vantages at the given population size.
func NewTraffic(clients int, seed int64) *Traffic {
	return &Traffic{
		ISP:   passive.NewModel(passive.ISPConfig(clients, seed)),
		IXPEU: passive.NewModel(passive.IXPConfigEU(clients, seed+1)),
		IXPNA: passive.NewModel(passive.IXPConfigNA(clients, seed+2)),
		IXPs:  passive.NewMultiIXP(clients/8, seed+3),
	}
}

// WriteIXPDetail renders the per-exchange adoption table behind Fig. 9.
func (t *Traffic) WriteIXPDetail(w io.Writer) {
	start := passive.BRootChange.Add(72 * time.Hour)
	t.IXPs.WriteDetail(w, topology.IPv6, start, passive.IXPWindow1[1])
}

// normSeries computes each target's share of the window's total b.root
// traffic.
func normSeries(m *passive.Model, start, end time.Time) map[string]float64 {
	series := m.TrafficSeries(start, end, passive.BTargets())
	var total float64
	for _, s := range series {
		total += s.Total()
	}
	out := make(map[string]float64, len(series))
	for _, s := range series {
		label := "V4"
		if s.Target.Family == topology.IPv6 {
			label = "V6"
		}
		if s.Target.Old {
			label += "old"
		} else {
			label += "new"
		}
		if total > 0 {
			out[label] = s.Total() / total
		}
	}
	return out
}

// WriteFigure7 renders the ISP's normalized b.root traffic for the paper's
// three windows (the day before the change, four weeks after, and the April
// check-in).
func (t *Traffic) WriteFigure7(w io.Writer) {
	fmt.Fprintln(w, "Figure 7: ISP traffic to b.root before/after the change (share of b.root traffic)")
	windows := []struct {
		label      string
		start, end time.Time
	}{
		{"2023-10-08 (pre)", passive.ISPPreDay, passive.ISPPreDay.Add(24 * time.Hour)},
		{"2024-02-05..03-04", passive.ISPWindow2[0], passive.ISPWindow2[1]},
		{"2024-04-22..04-29", passive.ISPWindow3[0], passive.ISPWindow3[1]},
	}
	for _, win := range windows {
		shares := normSeries(t.ISP, win.start, win.end)
		fmt.Fprintf(w, "%-20s V4new=%.3f V4old=%.3f V6new=%.3f V6old=%.3f\n",
			win.label, shares["V4new"], shares["V4old"], shares["V6new"], shares["V6old"])
	}
	fmt.Fprintf(w, "in-family shift (2024-02): v4=%.1f%% v6=%.1f%%\n",
		t.ISP.ShiftRatio(topology.IPv4, passive.ISPWindow2[0], passive.ISPWindow2[1])*100,
		t.ISP.ShiftRatio(topology.IPv6, passive.ISPWindow2[0], passive.ISPWindow2[1])*100)
}

// Figure8Stats summarizes per-client daily activity for one target.
type Figure8Stats struct {
	Label        string
	Clients      int
	MedianFlows  float64
	OnceADayFrac float64
}

// Figure8 computes the clients-per-day activity distributions for the six
// targets of Fig. 8 in one family.
func (t *Traffic) Figure8(f topology.Family, day time.Time) []Figure8Stats {
	targets := []struct {
		label string
		tgt   passive.Target
	}{
		{"a.root", passive.Target{Letter: "a", Family: f}},
		{"b.root (new)", passive.Target{Letter: "b", Family: f}},
		{"b.root (old)", passive.Target{Letter: "b", Family: f, Old: true}},
		{"c.root", passive.Target{Letter: "c", Family: f}},
		{"d.root", passive.Target{Letter: "d", Family: f}},
		{"e.root", passive.Target{Letter: "e", Family: f}},
	}
	out := make([]Figure8Stats, 0, len(targets))
	for _, sel := range targets {
		act := t.ISP.ClientDayActivity(sel.tgt, day)
		once := 0
		for _, a := range act {
			if a <= 1.5 {
				once++
			}
		}
		st := Figure8Stats{Label: sel.label, Clients: len(act)}
		if len(act) > 0 {
			st.MedianFlows = stats.Median(act)
			st.OnceADayFrac = float64(once) / float64(len(act))
		}
		out = append(out, st)
	}
	return out
}

// WriteFigure8 renders the Fig. 8 signal: the old b.root IPv6 prefix is
// contacted about once a day by most of its remaining clients (priming).
func (t *Traffic) WriteFigure8(w io.Writer) {
	fmt.Fprintln(w, "Figure 8: ISP mean unique client subnets per day vs flows per client")
	day := passive.ISPWindow2[0]
	for _, f := range topology.Families() {
		fmt.Fprintf(w, "-- %s --\n", f)
		fmt.Fprintln(w, "target         clients  median-flows/day  once-a-day-frac")
		for _, st := range t.Figure8(f, day) {
			fmt.Fprintf(w, "%-14s %7d  %16.1f  %15.2f\n",
				st.Label, st.Clients, st.MedianFlows, st.OnceADayFrac)
		}
	}
}

// WriteFigure9 renders the IXP IPv6 b.root adoption per region.
func (t *Traffic) WriteFigure9(w io.Writer) {
	fmt.Fprintln(w, "Figure 9: IXP IPv6 traffic to b.root (share on new prefix after change)")
	start := passive.BRootChange.Add(72 * time.Hour)
	end := passive.IXPWindow1[1]
	for _, sel := range []struct {
		label string
		m     *passive.Model
	}{
		{"North America", t.IXPNA},
		{"Europe", t.IXPEU},
	} {
		shift := sel.m.ShiftRatio(topology.IPv6, start, end)
		fmt.Fprintf(w, "%-14s v6 shifted to new prefix: %.1f%%\n", sel.label, shift*100)
	}
}

// WriteFigure12 renders the ISP all-letters traffic shares (Fig. 12),
// including b.root's share before and after the change and the a.root dip.
func (t *Traffic) WriteFigure12(w io.Writer) {
	fmt.Fprintln(w, "Figure 12: ISP traffic to all roots (letter shares)")
	windows := []struct {
		label      string
		start, end time.Time
	}{
		{"2023-10-07/08 (pre)", passive.ISPPreDay, passive.ISPPreDay.Add(24 * time.Hour)},
		{"2024-02 window", passive.ISPWindow2[0], passive.ISPWindow2[0].Add(7 * 24 * time.Hour)},
	}
	for _, win := range windows {
		shares := t.letterShares(t.ISP, win.start, win.end)
		fmt.Fprintf(w, "%-20s", win.label)
		for _, l := range rss.Letters() {
			fmt.Fprintf(w, " %s=%.3f", l, shares[l])
		}
		fmt.Fprintln(w)
	}
	// The a.root dip day.
	dipShares := t.letterShares(t.ISP, passive.ARootDipDay, passive.ARootDipDay.Add(24*time.Hour))
	fmt.Fprintf(w, "a.root share on 2024-02-26 (dip day): %.3f\n", dipShares["a"])
}

// WriteFigure13 renders the IXP letter shares (k and d dominate).
func (t *Traffic) WriteFigure13(w io.Writer) {
	fmt.Fprintln(w, "Figure 13: IXP traffic to all roots (letter shares)")
	start := passive.IXPWindow1[0]
	shares := t.letterShares(t.IXPEU, start, start.Add(7*24*time.Hour))
	fmt.Fprint(w, "EU IXPs:")
	for _, l := range rss.Letters() {
		fmt.Fprintf(w, " %s=%.3f", l, shares[l])
	}
	fmt.Fprintln(w)
}

// letterShares sums traffic per letter (old+new, both families) and
// normalizes to shares.
func (t *Traffic) letterShares(m *passive.Model, start, end time.Time) map[rss.Letter]float64 {
	targets := passive.AllLetterTargets()
	targets = append(targets, passive.Target{Letter: "b", Family: topology.IPv4, Old: true},
		passive.Target{Letter: "b", Family: topology.IPv6, Old: true})
	series := m.TrafficSeries(start, end, targets)
	sums := make(map[rss.Letter]float64)
	var total float64
	for _, s := range series {
		sums[s.Target.Letter] += s.Total()
		total += s.Total()
	}
	if total > 0 {
		for l := range sums {
			sums[l] /= total
		}
	}
	return sums
}
