// Package anycast models anycast deployments of the root servers: sites
// (global or local), their hosting ASes and facilities, catchment
// computation over the policy-routed topology, and per-deployment route
// stability. Facilities are shared across deployments — several letters
// hosting instances at the same exchange reuse the same last-hop
// infrastructure, which is exactly the reduced redundancy the paper's RQ1
// quantifies.
package anycast

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/geo"
	"repro/internal/topology"
)

// SiteKind is the announcement scope of a site.
type SiteKind int

// Site kinds.
const (
	Global SiteKind = iota
	Local
)

// String returns "global" or "local".
func (k SiteKind) String() string {
	if k == Global {
		return "global"
	}
	return "local"
}

// Site is one anycast instance location.
type Site struct {
	// ID is the site identifier, e.g. "b-lax1". Unique within a deployment.
	ID string
	// Kind is the announcement scope.
	Kind SiteKind
	// City locates the site.
	City geo.City
	// HostASN is the AS announcing the prefix from this site.
	HostASN int
	// Facility identifies the physical interconnection point (IXP fabric or
	// data center). Sites of different deployments sharing a facility share
	// last-hop infrastructure.
	Facility string
	// Identifier is what the site reports via hostname.bind/id.server.
	// Empty when the deployment does not expose mappable identifiers.
	Identifier string
}

// Deployment is one anycast service: a letter's set of sites.
type Deployment struct {
	// Name labels the deployment (e.g. "b" for b.root).
	Name  string
	Sites []Site
	// InstabilityV4/V6 are per-interval probabilities that a client's
	// best-path tie-break re-rolls (route flap), producing site changes.
	// Calibrated per letter from the paper's Fig. 3 medians.
	InstabilityV4, InstabilityV6 float64
}

// SiteByID returns the site with the given ID.
func (d *Deployment) SiteByID(id string) (Site, bool) {
	for _, s := range d.Sites {
		if s.ID == id {
			return s, true
		}
	}
	return Site{}, false
}

// GlobalSites returns the deployment's global sites.
func (d *Deployment) GlobalSites() []Site {
	var out []Site
	for _, s := range d.Sites {
		if s.Kind == Global {
			out = append(out, s)
		}
	}
	return out
}

// Origins converts the deployment's sites into routing origins.
func (d *Deployment) Origins() []topology.Origin {
	out := make([]topology.Origin, len(d.Sites))
	for i, s := range d.Sites {
		out[i] = topology.Origin{SiteID: s.ID, ASN: s.HostASN, Local: s.Kind == Local}
	}
	return out
}

// Catchment maps client ASes to the deployment site their traffic reaches
// in one family, with alternates for churn modeling.
type Catchment struct {
	Deployment *Deployment
	Family     topology.Family
	table      *topology.RoutingTable
}

// ComputeCatchment resolves the deployment's catchment over topo for f.
func ComputeCatchment(topo *topology.Topology, d *Deployment, f topology.Family) *Catchment {
	return &Catchment{
		Deployment: d,
		Family:     f,
		table:      topo.ComputeRoutes(d.Origins(), f),
	}
}

// Route returns the best route from asn, if it has one.
func (c *Catchment) Route(asn int) (topology.Route, bool) { return c.table.Best(asn) }

// Site returns the site serving asn, if reachable.
func (c *Catchment) Site(asn int) (Site, bool) {
	r, ok := c.table.Best(asn)
	if !ok {
		return Site{}, false
	}
	return c.Deployment.SiteByID(r.Origin.SiteID)
}

// Alternates returns the candidate routes from asn, best first.
func (c *Catchment) Alternates(asn int) []topology.Route { return c.table.Alternates(asn) }

// SelectAt returns the route asn uses at measurement interval tick, modeling
// route flaps: with the deployment's per-family instability probability the
// client re-rolls its tie-break among near-equal alternates. The selection
// is deterministic in (asn, tick, seed). scale is the measurement schedule's
// thinning factor: the per-interval flap probability compounds over the
// skipped intervals (1-(1-p)^scale), so observed change counts stay
// comparable to the paper's full-fidelity schedule.
func (c *Catchment) SelectAt(asn, tick int, seed int64, scale int) (topology.Route, bool) {
	alts := c.table.Alternates(asn)
	if len(alts) == 0 {
		return topology.Route{}, false
	}
	instability := c.Deployment.InstabilityV4
	if c.Family == topology.IPv6 {
		instability = c.Deployment.InstabilityV6
	}
	if scale > 1 && instability > 0 {
		instability = 1 - pow1p(1-instability, scale)
	}
	if len(alts) == 1 || instability == 0 {
		return alts[0], true
	}
	// Near-equal alternates: same relationship class and path length within
	// one hop of the best.
	usable := alts[:1]
	for _, a := range alts[1:] {
		if a.Hops() <= alts[0].Hops()+1 {
			usable = append(usable, a)
		} else {
			break
		}
	}
	rng := rand.New(rand.NewSource(seed ^ int64(asn)<<20 ^ int64(tick)))
	if rng.Float64() >= instability {
		// Stable interval: the best route carries the traffic.
		return usable[0], true
	}
	// Transient flap: the tie-break re-rolls among near-equal alternates
	// for this interval; the following stable interval returns to the best
	// route, so one flap surfaces as up to two observed site changes.
	return usable[rng.Intn(len(usable))], true
}

// pow1p computes base^n for small integer n without importing math.
func pow1p(base float64, n int) float64 {
	out := 1.0
	for ; n > 0; n >>= 1 {
		if n&1 == 1 {
			out *= base
		}
		base *= base
	}
	return out
}

// Builder assigns sites to facilities and ASes.
type Builder struct {
	Topo *topology.Topology
	Rng  *rand.Rand
	// facilityLoad tracks preferential attachment: busy facilities attract
	// more deployments, creating the co-location the paper observes.
	facilityLoad map[string]int
	// facilityCity remembers each facility's metro.
	facilityCity map[string]geo.City
	// hostFor remembers which AS hosts each facility.
	hostFor map[string]int
	// siteSeq numbers sites per (letter, metro) so IDs stay unique across
	// PlaceSites calls.
	siteSeq map[string]int
}

// NewBuilder creates a site builder over topo with a deterministic rng.
func NewBuilder(topo *topology.Topology, seed int64) *Builder {
	return &Builder{
		Topo:         topo,
		Rng:          rand.New(rand.NewSource(seed)),
		facilityLoad: make(map[string]int),
		facilityCity: make(map[string]geo.City),
		hostFor:      make(map[string]int),
		siteSeq:      make(map[string]int),
	}
}

// PlaceSites creates n sites of the given kind for deployment letter in
// region, preferring established facilities (co-location pressure).
func (b *Builder) PlaceSites(letter string, kind SiteKind, region geo.Region, n int) []Site {
	cities := geo.CitiesIn(region)
	sites := make([]Site, 0, n)
	for i := 0; i < n; i++ {
		city := b.pickCity(cities)
		fac, host := b.pickFacility(letter, city, kind)
		seqKey := letter + city.IATA
		b.siteSeq[seqKey]++
		id := fmt.Sprintf("%s-%s%d", letter, lower(city.IATA), b.siteSeq[seqKey])
		sites = append(sites, Site{
			ID:         id,
			Kind:       kind,
			City:       city,
			HostASN:    host,
			Facility:   fac,
			Identifier: id,
		})
		b.facilityLoad[fac]++
	}
	return sites
}

// interconnectionHubs are the metros where deployments concentrate; sites
// land there several times more often than in other metros, producing the
// very-high co-location a minority of clients observes (paper: up to 12).
var interconnectionHubs = map[string]bool{
	"FRA": true, "AMS": true, "LHR": true,
	"IAD": true, "SJC": true, "MIA": true,
	"NRT": true, "SIN": true, "HKG": true,
	"GRU": true, "JNB": true, "SYD": true,
}

// pickCity draws a metro with hub weighting.
func (b *Builder) pickCity(cities []geo.City) geo.City {
	const hubWeight = 6
	total := 0
	for _, c := range cities {
		if interconnectionHubs[c.IATA] {
			total += hubWeight
		} else {
			total++
		}
	}
	pick := b.Rng.Intn(total)
	for _, c := range cities {
		w := 1
		if interconnectionHubs[c.IATA] {
			w = hubWeight
		}
		if pick < w {
			return c
		}
		pick -= w
	}
	return cities[len(cities)-1]
}

// pickFacility chooses (or creates) a facility in city. Global sites land
// on the metro IXP fabric (shared across operators — the co-location the
// paper measures) about half the time, in an operator-specific facility
// otherwise; local sites are mostly AS-local inside an operator facility.
// The mix is calibrated so roughly 70% of VPs observe co-location (§5).
func (b *Builder) pickFacility(letter string, city geo.City, kind SiteKind) (string, int) {
	ixProb := 0.5
	if kind == Local {
		ixProb = 0.25
	}
	if ix, ok := b.Topo.IXPAt(city.IATA); ok && len(ix.Members) > 0 && b.Rng.Float64() < ixProb {
		fac := ix.Name
		host := b.hostFor[fac]
		if host == 0 {
			host = ix.Members[b.Rng.Intn(len(ix.Members))]
			b.hostFor[fac] = host
		}
		b.facilityCity[fac] = city
		return fac, host
	}
	// Otherwise an operator facility in the metro, hosted by a regional AS.
	// Operator facilities are letter-specific most of the time; a minority
	// are shared carrier-neutral data centers.
	region := city.Region
	stubs := b.Topo.StubASNs(&region)
	var host int
	if len(stubs) > 0 {
		host = stubs[b.Rng.Intn(len(stubs))]
	} else {
		host = topology.ASNOpenV6
	}
	var fac string
	if b.Rng.Float64() < 0.8 {
		fac = fmt.Sprintf("OP-%s-%s-%d", letter, city.IATA, 1+b.Rng.Intn(3))
	} else {
		fac = fmt.Sprintf("DC-%s-%d", city.IATA, 1+b.Rng.Intn(4))
	}
	if prev, ok := b.hostFor[fac]; ok {
		host = prev
	} else {
		b.hostFor[fac] = host
	}
	b.facilityCity[fac] = city
	return fac, host
}

// FacilityCity returns the metro of a facility created by this builder.
func (b *Builder) FacilityCity(fac string) (geo.City, bool) {
	c, ok := b.facilityCity[fac]
	return c, ok
}

// FacilityLoads returns facility→deployment-site counts, sorted by name.
func (b *Builder) FacilityLoads() []struct {
	Facility string
	Sites    int
} {
	names := make([]string, 0, len(b.facilityLoad))
	for f := range b.facilityLoad {
		names = append(names, f)
	}
	sort.Strings(names)
	out := make([]struct {
		Facility string
		Sites    int
	}, len(names))
	for i, f := range names {
		out[i].Facility = f
		out[i].Sites = b.facilityLoad[f]
	}
	return out
}

func lower(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}
