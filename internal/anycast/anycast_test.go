package anycast

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/topology"
)

func testTopo() *topology.Topology {
	cfg := topology.Config{
		Seed: 5,
		StubsPerRegion: map[geo.Region]int{
			geo.Africa: 4, geo.Asia: 8, geo.Europe: 25,
			geo.NorthAmerica: 12, geo.SouthAmerica: 5, geo.Oceania: 5,
		},
		Tier2PerRegion: map[geo.Region]int{
			geo.Africa: 2, geo.Asia: 3, geo.Europe: 5,
			geo.NorthAmerica: 3, geo.SouthAmerica: 2, geo.Oceania: 2,
		},
	}
	return topology.Build(cfg)
}

func testDeployment(topo *topology.Topology) *Deployment {
	b := NewBuilder(topo, 1)
	d := &Deployment{Name: "x", InstabilityV4: 0.05, InstabilityV6: 0.10}
	d.Sites = append(d.Sites, b.PlaceSites("x", Global, geo.Europe, 4)...)
	d.Sites = append(d.Sites, b.PlaceSites("x", Global, geo.NorthAmerica, 3)...)
	d.Sites = append(d.Sites, b.PlaceSites("x", Local, geo.Europe, 2)...)
	return d
}

func TestPlaceSites(t *testing.T) {
	topo := testTopo()
	d := testDeployment(topo)
	if len(d.Sites) != 9 {
		t.Fatalf("placed %d sites", len(d.Sites))
	}
	if len(d.GlobalSites()) != 7 {
		t.Errorf("global sites = %d", len(d.GlobalSites()))
	}
	ids := map[string]bool{}
	for _, s := range d.Sites {
		if ids[s.ID] {
			t.Errorf("duplicate site ID %s", s.ID)
		}
		ids[s.ID] = true
		if s.HostASN == 0 || s.Facility == "" {
			t.Errorf("incomplete site %+v", s)
		}
	}
	if _, ok := d.SiteByID(d.Sites[0].ID); !ok {
		t.Error("SiteByID failed")
	}
	if _, ok := d.SiteByID("nope"); ok {
		t.Error("SiteByID found a ghost")
	}
}

func TestCatchmentResolves(t *testing.T) {
	topo := testTopo()
	d := testDeployment(topo)
	c := ComputeCatchment(topo, d, topology.IPv4)
	stubs := topo.StubASNs(nil)
	resolved := 0
	for _, asn := range stubs {
		if site, ok := c.Site(asn); ok {
			resolved++
			if _, found := d.SiteByID(site.ID); !found {
				t.Errorf("catchment returned unknown site %s", site.ID)
			}
		}
	}
	if resolved*100 < len(stubs)*90 {
		t.Errorf("catchment resolves %d/%d stubs", resolved, len(stubs))
	}
}

func TestSelectAtDeterministic(t *testing.T) {
	topo := testTopo()
	d := testDeployment(topo)
	c := ComputeCatchment(topo, d, topology.IPv4)
	asn := topo.StubASNs(nil)[0]
	r1, ok1 := c.SelectAt(asn, 7, 42, 1)
	r2, ok2 := c.SelectAt(asn, 7, 42, 1)
	if ok1 != ok2 || r1.Origin.SiteID != r2.Origin.SiteID {
		t.Error("SelectAt not deterministic")
	}
}

func TestSelectAtProducesChanges(t *testing.T) {
	topo := testTopo()
	d := testDeployment(topo)
	d.InstabilityV4 = 0.5 // aggressively flappy for the test
	c := ComputeCatchment(topo, d, topology.IPv4)
	// Find a stub with at least two near-equal alternates.
	var asn int
	for _, s := range topo.StubASNs(nil) {
		alts := c.Alternates(s)
		if len(alts) >= 2 && alts[1].Hops() <= alts[0].Hops()+1 {
			asn = s
			break
		}
	}
	if asn == 0 {
		t.Skip("no stub with near-equal alternates in this topology")
	}
	seen := map[string]bool{}
	for tick := 0; tick < 200; tick++ {
		r, ok := c.SelectAt(asn, tick, 1, 1)
		if !ok {
			t.Fatal("unroutable")
		}
		seen[r.Origin.SiteID] = true
	}
	if len(seen) < 2 {
		t.Error("high instability produced no site changes")
	}
}

func TestStableDeploymentRarelyChanges(t *testing.T) {
	topo := testTopo()
	d := testDeployment(topo)
	d.InstabilityV4 = 0 // fully stable
	c := ComputeCatchment(topo, d, topology.IPv4)
	for _, asn := range topo.StubASNs(nil)[:10] {
		var first string
		for tick := 0; tick < 50; tick++ {
			r, ok := c.SelectAt(asn, tick, 9, 1)
			if !ok {
				break
			}
			if tick == 0 {
				first = r.Origin.SiteID
			} else if r.Origin.SiteID != first {
				t.Fatalf("zero-instability deployment changed site for %d", asn)
			}
		}
	}
}

func TestFacilitySharing(t *testing.T) {
	// Use the full-size topology so the European exchanges have members:
	// with letter-specific operator facilities, sharing happens at IXPs.
	topo := topology.Build(topology.DefaultConfig())
	b := NewBuilder(topo, 1)
	// Two deployments in the same region share facilities often.
	d1 := b.PlaceSites("p", Global, geo.Europe, 25)
	d2 := b.PlaceSites("q", Global, geo.Europe, 25)
	fac1 := map[string]bool{}
	for _, s := range d1 {
		fac1[s.Facility] = true
	}
	shared := 0
	for _, s := range d2 {
		if fac1[s.Facility] {
			shared++
		}
	}
	if shared == 0 {
		t.Error("no facility sharing between co-regional deployments")
	}
	if len(b.FacilityLoads()) == 0 {
		t.Error("no facility loads recorded")
	}
	for _, fl := range b.FacilityLoads() {
		if _, ok := b.FacilityCity(fl.Facility); !ok {
			t.Errorf("facility %s has no city", fl.Facility)
		}
	}
}

func TestSiteKindString(t *testing.T) {
	if Global.String() != "global" || Local.String() != "local" {
		t.Error("SiteKind strings")
	}
}
