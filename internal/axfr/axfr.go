// Package axfr implements DNS zone transfers (RFC 5936) over TCP with the
// standard 2-octet length framing (RFC 1035 §4.2.2). It provides both the
// serving side (splitting a zone into response messages) and the client side
// (requesting, reassembling, and SOA-bracket-checking a transfer), as used
// by the measurement battery's `dig AXFR .` step.
package axfr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/dnswire"
	"repro/internal/zone"
)

// Transfer errors.
var (
	ErrNotBracketed = errors.New("axfr: transfer not bracketed by SOA records")
	ErrRefused      = errors.New("axfr: transfer refused")
	ErrEmpty        = errors.New("axfr: empty transfer")
)

// MaxMessageBytes is the soft per-message payload budget when serving a
// transfer. Real servers pack close to 64 KiB; a smaller default exercises
// multi-message reassembly even for small test zones.
const MaxMessageBytes = 16 * 1024

// WriteMessage writes one DNS message with the TCP length prefix.
func WriteMessage(w io.Writer, m *dnswire.Message) error {
	wire, err := m.Pack()
	if err != nil {
		return err
	}
	if len(wire) > 0xFFFF {
		return fmt.Errorf("axfr: message of %d bytes exceeds TCP frame limit", len(wire))
	}
	var prefix [2]byte
	binary.BigEndian.PutUint16(prefix[:], uint16(len(wire)))
	if _, err := w.Write(prefix[:]); err != nil {
		return err
	}
	_, err = w.Write(wire)
	return err
}

// ReadMessage reads one length-prefixed DNS message.
func ReadMessage(r io.Reader) (*dnswire.Message, error) {
	var prefix [2]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return nil, err
	}
	wire := make([]byte, binary.BigEndian.Uint16(prefix[:]))
	if _, err := io.ReadFull(r, wire); err != nil {
		return nil, err
	}
	return dnswire.Unpack(wire)
}

// ResponseMessages splits z into AXFR response messages answering query id:
// the zone's records with the SOA first and repeated last, chunked so each
// message stays under MaxMessageBytes.
func ResponseMessages(z *zone.Zone, id uint16, question dnswire.Question) ([]*dnswire.Message, error) {
	soa, ok := z.SOA()
	if !ok {
		return nil, errors.New("axfr: zone has no SOA")
	}
	// Stream order: SOA, all non-SOA records, SOA again.
	records := make([]dnswire.RR, 0, len(z.Records)+1)
	records = append(records, soa)
	for _, rr := range z.Records {
		if rr.Type() == dnswire.TypeSOA && rr.Name.Canonical() == z.Apex.Canonical() {
			continue
		}
		records = append(records, rr)
	}
	records = append(records, soa)

	newMsg := func(withQuestion bool) *dnswire.Message {
		m := &dnswire.Message{Header: dnswire.Header{
			ID: id, Response: true, Authoritative: true,
		}}
		if withQuestion {
			m.Questions = []dnswire.Question{question}
		}
		return m
	}

	var msgs []*dnswire.Message
	cur := newMsg(true)
	curBytes := 0
	for _, rr := range records {
		rrBytes := estimateRRSize(rr)
		if curBytes > 0 && curBytes+rrBytes > MaxMessageBytes {
			msgs = append(msgs, cur)
			cur = newMsg(false)
			curBytes = 0
		}
		cur.Answers = append(cur.Answers, rr)
		curBytes += rrBytes
	}
	if len(cur.Answers) > 0 {
		msgs = append(msgs, cur)
	}
	return msgs, nil
}

// estimateRRSize upper-bounds the packed size of rr without compression.
func estimateRRSize(rr dnswire.RR) int {
	return len(dnswire.AppendCanonicalRR(nil, rr, rr.TTL)) + 16
}

// Serve writes a full AXFR response for z to w, answering the given query
// message. It is the serving half used by the dnsserver package's TCP path.
func Serve(w io.Writer, z *zone.Zone, query *dnswire.Message) error {
	if len(query.Questions) != 1 {
		return errors.New("axfr: query must have exactly one question")
	}
	msgs, err := ResponseMessages(z, query.Header.ID, query.Questions[0])
	if err != nil {
		return err
	}
	for _, m := range msgs {
		if err := WriteMessage(w, m); err != nil {
			return err
		}
	}
	return nil
}

// Refuse writes a REFUSED response to an AXFR query, as root servers that do
// not offer transfers on an address would.
func Refuse(w io.Writer, query *dnswire.Message) error {
	resp := &dnswire.Message{
		Header: dnswire.Header{
			ID: query.Header.ID, Response: true, Rcode: dnswire.RcodeRefused,
		},
		Questions: query.Questions,
	}
	return WriteMessage(w, resp)
}

// Receive reads AXFR response messages from r until the transfer is complete
// (the SOA record appears a second time) and reassembles the zone. It
// enforces the SOA bracket and matching message IDs.
func Receive(r io.Reader, id uint16) (*zone.Zone, error) {
	var records []dnswire.RR
	soaSeen := 0
	for soaSeen < 2 {
		m, err := ReadMessage(r)
		if err != nil {
			return nil, fmt.Errorf("axfr: read: %w", err)
		}
		if m.Header.ID != id {
			return nil, fmt.Errorf("axfr: response ID %d does not match query ID %d", m.Header.ID, id)
		}
		if m.Header.Rcode == dnswire.RcodeRefused {
			return nil, ErrRefused
		}
		if m.Header.Rcode != dnswire.RcodeNoError {
			return nil, fmt.Errorf("axfr: server returned %s", m.Header.Rcode)
		}
		if len(m.Answers) == 0 {
			return nil, ErrEmpty
		}
		for _, rr := range m.Answers {
			if rr.Type() == dnswire.TypeSOA {
				soaSeen++
				if soaSeen == 2 {
					break
				}
			}
			records = append(records, rr)
		}
	}
	if soaSeen != 2 || len(records) == 0 || records[0].Type() != dnswire.TypeSOA {
		return nil, ErrNotBracketed
	}
	apex := records[0].Name
	z := zone.New(apex)
	z.Add(records...)
	return z, nil
}
