// Package axfr implements DNS zone transfers (RFC 5936) over TCP with the
// standard 2-octet length framing (RFC 1035 §4.2.2). It provides both the
// serving side (splitting a zone into response messages) and the client side
// (requesting, reassembling, and SOA-bracket-checking a transfer), as used
// by the measurement battery's `dig AXFR .` step.
package axfr

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/dnswire"
	"repro/internal/telemetry"
	"repro/internal/zone"
)

// Transfer errors.
var (
	ErrNotBracketed = errors.New("axfr: transfer not bracketed by SOA records")
	ErrRefused      = errors.New("axfr: transfer refused")
	ErrEmpty        = errors.New("axfr: empty transfer")
	// ErrTruncatedFrame classifies a TCP frame that ends before delivering
	// the bytes its length prefix declared (including a partial prefix) —
	// the wire signature of a connection cut mid-message.
	ErrTruncatedFrame = errors.New("axfr: truncated TCP frame")
	// ErrTruncatedTransfer classifies a transfer stream that ends after
	// some records but before the closing SOA bracket.
	ErrTruncatedTransfer = errors.New("axfr: transfer ended before closing SOA")
)

// MaxMessageBytes is the soft per-message payload budget when serving a
// transfer. Real servers pack close to 64 KiB; a smaller default exercises
// multi-message reassembly even for small test zones.
const MaxMessageBytes = 16 * 1024

// framePool recycles frame buffers across transfers: a message is packed
// directly behind its 2-octet length prefix and written in one call, so the
// steady-state serving path allocates nothing per message.
var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, MaxMessageBytes+1024)
	return &b
}}

// WriteMessage writes one DNS message with the TCP length prefix.
//
//rootlint:hotpath
func WriteMessage(w io.Writer, m *dnswire.Message) error {
	bp := framePool.Get().(*[]byte)
	defer framePool.Put(bp)
	buf, err := m.AppendPack(append((*bp)[:0], 0, 0))
	if err != nil {
		return err
	}
	*bp = buf[:0]
	wireLen := len(buf) - 2
	if wireLen > 0xFFFF {
		//rootlint:allow hotpath: cold error path — ResponseMessages chunks zones well under the frame limit
		return fmt.Errorf("axfr: message of %d bytes exceeds TCP frame limit", wireLen)
	}
	binary.BigEndian.PutUint16(buf, uint16(wireLen))
	_, err = w.Write(buf)
	return err
}

// ReadMessage reads one length-prefixed DNS message. The read buffer is
// pooled: Unpack copies every byte it retains, so the frame can be reused
// for the next message.
func ReadMessage(r io.Reader) (*dnswire.Message, error) {
	bp := framePool.Get().(*[]byte)
	defer framePool.Put(bp)
	wire, err := readFrame(r, bp)
	if err != nil {
		return nil, err
	}
	return dnswire.Unpack(wire)
}

// readFrame reads one length-prefixed frame into *bp, growing the buffer as
// needed. The returned slice aliases *bp and is valid until the next read.
func readFrame(r io.Reader, bp *[]byte) ([]byte, error) {
	var prefix [2]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: partial length prefix", ErrTruncatedFrame)
		}
		return nil, err // a clean EOF at a frame boundary stays io.EOF
	}
	n := int(binary.BigEndian.Uint16(prefix[:]))
	wire := *bp
	if cap(wire) < n {
		wire = make([]byte, 0, n)
		*bp = wire
	}
	wire = wire[:n]
	if _, err := io.ReadFull(r, wire); err != nil {
		return nil, fmt.Errorf("%w: frame declared %d bytes: %v", ErrTruncatedFrame, n, err)
	}
	return wire, nil
}

// ResponseMessages splits z into AXFR response messages answering query id:
// the zone's records with the SOA first and repeated last, chunked so each
// message stays under MaxMessageBytes.
func ResponseMessages(z *zone.Zone, id uint16, question dnswire.Question) ([]*dnswire.Message, error) {
	apex := z.Apex.Canonical()
	soaIdx := -1
	for i, rr := range z.Records {
		if rr.Type() == dnswire.TypeSOA && rr.Name.Canonical() == apex {
			soaIdx = i
			break
		}
	}
	if soaIdx < 0 {
		return nil, errors.New("axfr: zone has no SOA")
	}
	// Stream order: SOA, all non-SOA records, SOA again.
	stream := make([]int, 0, len(z.Records)+1)
	stream = append(stream, soaIdx)
	for i, rr := range z.Records {
		if rr.Type() == dnswire.TypeSOA && rr.Name.Canonical() == apex {
			continue
		}
		stream = append(stream, i)
	}
	stream = append(stream, soaIdx)

	newMsg := func(withQuestion bool) *dnswire.Message {
		m := &dnswire.Message{Header: dnswire.Header{
			ID: id, Response: true, Authoritative: true,
		}}
		if withQuestion {
			m.Questions = []dnswire.Question{question}
		}
		return m
	}

	var msgs []*dnswire.Message
	cur := newMsg(true)
	curBytes := 0
	for _, i := range stream {
		rrBytes := estimateRRSize(z, i)
		if curBytes > 0 && curBytes+rrBytes > MaxMessageBytes {
			msgs = append(msgs, cur)
			cur = newMsg(false)
			curBytes = 0
		}
		cur.Answers = append(cur.Answers, z.Records[i])
		curBytes += rrBytes
	}
	if len(cur.Answers) > 0 {
		msgs = append(msgs, cur)
	}
	return msgs, nil
}

// estimateRRSize upper-bounds the packed size of z.Records[i] without
// compression. It reads the sidecar's cached canonical wire form, whose
// length equals what a fresh canonical encode would produce — chunk
// boundaries (and so the transfer's framing bytes) are unchanged.
func estimateRRSize(z *zone.Zone, i int) int {
	return len(z.CanonicalWire(i)) + 16
}

// Serve writes a full AXFR response for z to w, answering the given query
// message. It is the serving half used by the dnsserver package's TCP path.
func Serve(w io.Writer, z *zone.Zone, query *dnswire.Message) error {
	if len(query.Questions) != 1 {
		return errors.New("axfr: query must have exactly one question")
	}
	mServes.Inc()
	timer := telemetry.StartTimer()
	defer timer.ObserveInto(mServeDur)
	span := telemetry.StartSpan("serve", "axfr", -1, 0)
	defer span.End()
	msgs, err := ResponseMessages(z, query.Header.ID, query.Questions[0])
	if err != nil {
		return err
	}
	for _, m := range msgs {
		if err := WriteMessage(w, m); err != nil {
			return err
		}
	}
	return nil
}

// Refuse writes a REFUSED response to an AXFR query, as root servers that do
// not offer transfers on an address would.
func Refuse(w io.Writer, query *dnswire.Message) error {
	resp := &dnswire.Message{
		Header: dnswire.Header{
			ID: query.Header.ID, Response: true, Rcode: dnswire.RcodeRefused,
		},
		Questions: query.Questions,
	}
	return WriteMessage(w, resp)
}

// Receive reads AXFR response messages from r until the transfer is complete
// (the SOA record appears a second time) and reassembles the zone. It
// enforces the SOA bracket and matching message IDs.
func Receive(r io.Reader, id uint16) (*zone.Zone, error) {
	var records []dnswire.RR
	soaSeen := 0
	for soaSeen < 2 {
		m, err := ReadMessage(r)
		if err != nil {
			if soaSeen > 0 || len(records) > 0 {
				// The stream delivered part of the zone and then stopped:
				// a mid-transfer disconnect, distinct from a dead server.
				return nil, fmt.Errorf("%w after %d records (%v)", ErrTruncatedTransfer, len(records), err)
			}
			return nil, fmt.Errorf("axfr: read: %w", err)
		}
		if m.Header.ID != id {
			return nil, fmt.Errorf("axfr: response ID %d does not match query ID %d", m.Header.ID, id)
		}
		if m.Header.Rcode == dnswire.RcodeRefused {
			return nil, ErrRefused
		}
		if m.Header.Rcode != dnswire.RcodeNoError {
			return nil, fmt.Errorf("axfr: server returned %s", m.Header.Rcode)
		}
		if len(m.Answers) == 0 {
			return nil, ErrEmpty
		}
		for _, rr := range m.Answers {
			if rr.Type() == dnswire.TypeSOA {
				soaSeen++
				if soaSeen == 2 {
					break
				}
			}
			records = append(records, rr)
		}
	}
	if soaSeen != 2 || len(records) == 0 || records[0].Type() != dnswire.TypeSOA {
		return nil, ErrNotBracketed
	}
	apex := records[0].Name
	z := zone.New(apex)
	z.Add(records...)
	return z, nil
}

// ReceiveLazy reads an AXFR response stream like Receive — same ID, Rcode,
// and SOA-bracket enforcement, same error classification — but walks the
// records through the lazy wire view (dnswire.View) instead of decoding
// them, so no Name strings or RData values are materialized. visit is
// called once per zone record in stream order (the opening SOA included,
// the closing SOA excluded); a nil visit just counts. It returns the number
// of zone records seen.
func ReceiveLazy(r io.Reader, id uint16, visit func(v *dnswire.View, rr *dnswire.RawRR) error) (int, error) {
	bp := framePool.Get().(*[]byte)
	defer framePool.Put(bp)
	records := 0
	soaSeen := 0
	firstType := dnswire.Type(0)
	var v dnswire.View
	var raw dnswire.RawRR
	for soaSeen < 2 {
		frame, err := readFrame(r, bp)
		if err == nil {
			v, err = dnswire.NewView(frame)
		}
		if err != nil {
			if soaSeen > 0 || records > 0 {
				// The stream delivered part of the zone and then stopped:
				// a mid-transfer disconnect, distinct from a dead server.
				return records, fmt.Errorf("%w after %d records (%v)", ErrTruncatedTransfer, records, err)
			}
			return 0, fmt.Errorf("axfr: read: %w", err)
		}
		if v.ID() != id {
			return records, fmt.Errorf("axfr: response ID %d does not match query ID %d", v.ID(), id)
		}
		if v.Rcode() == dnswire.RcodeRefused {
			return records, ErrRefused
		}
		if v.Rcode() != dnswire.RcodeNoError {
			return records, fmt.Errorf("axfr: server returned %s", v.Rcode())
		}
		if _, an, _, _ := v.Counts(); an == 0 {
			return records, ErrEmpty
		}
		cur := v.Records()
		done := false
		for cur.Next(&raw) {
			if raw.Section != dnswire.SectionAnswer {
				break
			}
			if raw.Type == dnswire.TypeSOA {
				soaSeen++
				if soaSeen == 2 {
					done = true
					break
				}
			}
			if records == 0 {
				firstType = raw.Type
			}
			if visit != nil {
				if err := visit(&v, &raw); err != nil {
					return records, err
				}
			}
			records++
		}
		if err := cur.Err(); err != nil && !done {
			// A malformed record mid-stream classifies like a cut
			// connection: Receive hits the same condition as an Unpack
			// failure inside ReadMessage.
			if soaSeen > 0 || records > 0 {
				return records, fmt.Errorf("%w after %d records (%v)", ErrTruncatedTransfer, records, err)
			}
			return 0, fmt.Errorf("axfr: read: %w", err)
		}
	}
	if soaSeen != 2 || records == 0 || firstType != dnswire.TypeSOA {
		return records, ErrNotBracketed
	}
	return records, nil
}

// ReceiveCount reassembles and bracket-checks an AXFR stream without
// decoding a single record, returning the zone record count — the counting
// consumer (the battery's transfer-completeness check) on the lazy path.
func ReceiveCount(r io.Reader, id uint16) (int, error) {
	return ReceiveLazy(r, id, nil)
}

// ReceiveCompare reads an AXFR stream and compares every record's
// canonical wire form byte-for-byte against the reference zone's cached
// canonical sidecar, in serving stream order (opening SOA first, then
// non-SOA records in zone order). This is the compare-only consumer for
// zone diffing: the received transfer is verified against the reference
// without materializing one decoded record. It returns the number of
// records compared.
func ReceiveCompare(r io.Reader, id uint16, ref *zone.Zone) (int, error) {
	// Mirror ResponseMessages' stream order: the first apex SOA opens the
	// transfer; every record that is not an apex SOA follows in zone order.
	apex := ref.Apex.Canonical()
	soaIdx := -1
	for i, rr := range ref.Records {
		if rr.Type() == dnswire.TypeSOA && rr.Name.Canonical() == apex {
			soaIdx = i
			break
		}
	}
	if soaIdx < 0 {
		return 0, errors.New("axfr: reference zone has no SOA")
	}
	stream := make([]int, 0, len(ref.Records))
	stream = append(stream, soaIdx)
	for i, rr := range ref.Records {
		if rr.Type() == dnswire.TypeSOA && rr.Name.Canonical() == apex {
			continue
		}
		stream = append(stream, i)
	}
	buf := make([]byte, 0, 512)
	k := 0
	got, err := ReceiveLazy(r, id, func(v *dnswire.View, raw *dnswire.RawRR) error {
		if k >= len(stream) {
			return fmt.Errorf("axfr: transfer delivered more than the %d reference records", len(stream))
		}
		var cmpErr error
		buf, cmpErr = v.AppendCanonical(buf[:0], raw)
		if cmpErr != nil {
			return cmpErr
		}
		if !bytes.Equal(buf, ref.CanonicalWire(stream[k])) {
			return fmt.Errorf("axfr: transfer record %d differs from reference record %d", k, stream[k])
		}
		k++
		return nil
	})
	if err != nil {
		return got, err
	}
	if got != len(stream) {
		return got, fmt.Errorf("axfr: transfer delivered %d records, reference zone serves %d", got, len(stream))
	}
	return got, nil
}
