// Package axfr implements DNS zone transfers (RFC 5936) over TCP with the
// standard 2-octet length framing (RFC 1035 §4.2.2). It provides both the
// serving side (splitting a zone into response messages) and the client side
// (requesting, reassembling, and SOA-bracket-checking a transfer), as used
// by the measurement battery's `dig AXFR .` step.
package axfr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/dnswire"
	"repro/internal/telemetry"
	"repro/internal/zone"
)

// Transfer errors.
var (
	ErrNotBracketed = errors.New("axfr: transfer not bracketed by SOA records")
	ErrRefused      = errors.New("axfr: transfer refused")
	ErrEmpty        = errors.New("axfr: empty transfer")
	// ErrTruncatedFrame classifies a TCP frame that ends before delivering
	// the bytes its length prefix declared (including a partial prefix) —
	// the wire signature of a connection cut mid-message.
	ErrTruncatedFrame = errors.New("axfr: truncated TCP frame")
	// ErrTruncatedTransfer classifies a transfer stream that ends after
	// some records but before the closing SOA bracket.
	ErrTruncatedTransfer = errors.New("axfr: transfer ended before closing SOA")
)

// MaxMessageBytes is the soft per-message payload budget when serving a
// transfer. Real servers pack close to 64 KiB; a smaller default exercises
// multi-message reassembly even for small test zones.
const MaxMessageBytes = 16 * 1024

// framePool recycles frame buffers across transfers: a message is packed
// directly behind its 2-octet length prefix and written in one call, so the
// steady-state serving path allocates nothing per message.
var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, MaxMessageBytes+1024)
	return &b
}}

// WriteMessage writes one DNS message with the TCP length prefix.
//
//rootlint:hotpath
func WriteMessage(w io.Writer, m *dnswire.Message) error {
	bp := framePool.Get().(*[]byte)
	defer framePool.Put(bp)
	buf, err := m.AppendPack(append((*bp)[:0], 0, 0))
	if err != nil {
		return err
	}
	*bp = buf[:0]
	wireLen := len(buf) - 2
	if wireLen > 0xFFFF {
		//rootlint:allow hotpath: cold error path — ResponseMessages chunks zones well under the frame limit
		return fmt.Errorf("axfr: message of %d bytes exceeds TCP frame limit", wireLen)
	}
	binary.BigEndian.PutUint16(buf, uint16(wireLen))
	_, err = w.Write(buf)
	return err
}

// ReadMessage reads one length-prefixed DNS message. The read buffer is
// pooled: Unpack copies every byte it retains, so the frame can be reused
// for the next message.
func ReadMessage(r io.Reader) (*dnswire.Message, error) {
	var prefix [2]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: partial length prefix", ErrTruncatedFrame)
		}
		return nil, err // a clean EOF at a frame boundary stays io.EOF
	}
	n := int(binary.BigEndian.Uint16(prefix[:]))
	bp := framePool.Get().(*[]byte)
	defer framePool.Put(bp)
	wire := *bp
	if cap(wire) < n {
		wire = make([]byte, 0, n)
		*bp = wire
	}
	wire = wire[:n]
	if _, err := io.ReadFull(r, wire); err != nil {
		return nil, fmt.Errorf("%w: frame declared %d bytes: %v", ErrTruncatedFrame, n, err)
	}
	return dnswire.Unpack(wire)
}

// ResponseMessages splits z into AXFR response messages answering query id:
// the zone's records with the SOA first and repeated last, chunked so each
// message stays under MaxMessageBytes.
func ResponseMessages(z *zone.Zone, id uint16, question dnswire.Question) ([]*dnswire.Message, error) {
	apex := z.Apex.Canonical()
	soaIdx := -1
	for i, rr := range z.Records {
		if rr.Type() == dnswire.TypeSOA && rr.Name.Canonical() == apex {
			soaIdx = i
			break
		}
	}
	if soaIdx < 0 {
		return nil, errors.New("axfr: zone has no SOA")
	}
	// Stream order: SOA, all non-SOA records, SOA again.
	stream := make([]int, 0, len(z.Records)+1)
	stream = append(stream, soaIdx)
	for i, rr := range z.Records {
		if rr.Type() == dnswire.TypeSOA && rr.Name.Canonical() == apex {
			continue
		}
		stream = append(stream, i)
	}
	stream = append(stream, soaIdx)

	newMsg := func(withQuestion bool) *dnswire.Message {
		m := &dnswire.Message{Header: dnswire.Header{
			ID: id, Response: true, Authoritative: true,
		}}
		if withQuestion {
			m.Questions = []dnswire.Question{question}
		}
		return m
	}

	var msgs []*dnswire.Message
	cur := newMsg(true)
	curBytes := 0
	for _, i := range stream {
		rrBytes := estimateRRSize(z, i)
		if curBytes > 0 && curBytes+rrBytes > MaxMessageBytes {
			msgs = append(msgs, cur)
			cur = newMsg(false)
			curBytes = 0
		}
		cur.Answers = append(cur.Answers, z.Records[i])
		curBytes += rrBytes
	}
	if len(cur.Answers) > 0 {
		msgs = append(msgs, cur)
	}
	return msgs, nil
}

// estimateRRSize upper-bounds the packed size of z.Records[i] without
// compression. It reads the sidecar's cached canonical wire form, whose
// length equals what a fresh canonical encode would produce — chunk
// boundaries (and so the transfer's framing bytes) are unchanged.
func estimateRRSize(z *zone.Zone, i int) int {
	return len(z.CanonicalWire(i)) + 16
}

// Serve writes a full AXFR response for z to w, answering the given query
// message. It is the serving half used by the dnsserver package's TCP path.
func Serve(w io.Writer, z *zone.Zone, query *dnswire.Message) error {
	if len(query.Questions) != 1 {
		return errors.New("axfr: query must have exactly one question")
	}
	mServes.Inc()
	timer := telemetry.StartTimer()
	defer timer.ObserveInto(mServeDur)
	span := telemetry.StartSpan("serve", "axfr", -1, 0)
	defer span.End()
	msgs, err := ResponseMessages(z, query.Header.ID, query.Questions[0])
	if err != nil {
		return err
	}
	for _, m := range msgs {
		if err := WriteMessage(w, m); err != nil {
			return err
		}
	}
	return nil
}

// Refuse writes a REFUSED response to an AXFR query, as root servers that do
// not offer transfers on an address would.
func Refuse(w io.Writer, query *dnswire.Message) error {
	resp := &dnswire.Message{
		Header: dnswire.Header{
			ID: query.Header.ID, Response: true, Rcode: dnswire.RcodeRefused,
		},
		Questions: query.Questions,
	}
	return WriteMessage(w, resp)
}

// Receive reads AXFR response messages from r until the transfer is complete
// (the SOA record appears a second time) and reassembles the zone. It
// enforces the SOA bracket and matching message IDs.
func Receive(r io.Reader, id uint16) (*zone.Zone, error) {
	var records []dnswire.RR
	soaSeen := 0
	for soaSeen < 2 {
		m, err := ReadMessage(r)
		if err != nil {
			if soaSeen > 0 || len(records) > 0 {
				// The stream delivered part of the zone and then stopped:
				// a mid-transfer disconnect, distinct from a dead server.
				return nil, fmt.Errorf("%w after %d records (%v)", ErrTruncatedTransfer, len(records), err)
			}
			return nil, fmt.Errorf("axfr: read: %w", err)
		}
		if m.Header.ID != id {
			return nil, fmt.Errorf("axfr: response ID %d does not match query ID %d", m.Header.ID, id)
		}
		if m.Header.Rcode == dnswire.RcodeRefused {
			return nil, ErrRefused
		}
		if m.Header.Rcode != dnswire.RcodeNoError {
			return nil, fmt.Errorf("axfr: server returned %s", m.Header.Rcode)
		}
		if len(m.Answers) == 0 {
			return nil, ErrEmpty
		}
		for _, rr := range m.Answers {
			if rr.Type() == dnswire.TypeSOA {
				soaSeen++
				if soaSeen == 2 {
					break
				}
			}
			records = append(records, rr)
		}
	}
	if soaSeen != 2 || len(records) == 0 || records[0].Type() != dnswire.TypeSOA {
		return nil, ErrNotBracketed
	}
	apex := records[0].Name
	z := zone.New(apex)
	z.Add(records...)
	return z, nil
}
