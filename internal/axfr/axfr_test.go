package axfr

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"

	"repro/internal/dnswire"
	"repro/internal/zone"
)

func testZone(t *testing.T, tlds int) *zone.Zone {
	t.Helper()
	cfg := zone.DefaultRootConfig()
	cfg.TLDCount = tlds
	return zone.SynthesizeRoot(cfg)
}

func axfrQuery(id uint16) *dnswire.Message {
	return &dnswire.Message{
		Header: dnswire.Header{ID: id},
		Questions: []dnswire.Question{{
			Name: dnswire.Root, Type: dnswire.TypeAXFR, Class: dnswire.ClassINET,
		}},
	}
}

func TestServeReceiveRoundTrip(t *testing.T) {
	z := testZone(t, 40).Canonicalize()
	var buf bytes.Buffer
	if err := Serve(&buf, z, axfrQuery(99)); err != nil {
		t.Fatal(err)
	}
	got, err := Receive(&buf, 99)
	if err != nil {
		t.Fatal(err)
	}
	got.Canonicalize()
	if len(got.Records) != len(z.Records) {
		t.Fatalf("received %d records, want %d", len(got.Records), len(z.Records))
	}
	for i := range z.Records {
		if got.Records[i].String() != z.Records[i].String() {
			t.Errorf("record %d mismatch:\n got %s\nwant %s",
				i, got.Records[i], z.Records[i])
		}
	}
	if got.Serial() != z.Serial() {
		t.Errorf("serial %d, want %d", got.Serial(), z.Serial())
	}
}

func TestMultiMessageTransfer(t *testing.T) {
	z := testZone(t, 200) // large enough to exceed one MaxMessageBytes chunk
	msgs, err := ResponseMessages(z, 1, axfrQuery(1).Questions[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) < 2 {
		t.Fatalf("expected multi-message transfer, got %d message(s)", len(msgs))
	}
	// Only the first message carries the question.
	if len(msgs[0].Questions) != 1 {
		t.Error("first message missing question")
	}
	for i, m := range msgs[1:] {
		if len(m.Questions) != 0 {
			t.Errorf("message %d carries a question", i+1)
		}
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Receive(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(z.Records) {
		t.Errorf("received %d records, want %d", len(got.Records), len(z.Records))
	}
}

func TestReceiveChecksID(t *testing.T) {
	z := testZone(t, 5)
	var buf bytes.Buffer
	if err := Serve(&buf, z, axfrQuery(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := Receive(&buf, 2); err == nil {
		t.Error("mismatched ID accepted")
	}
}

func TestReceiveRefused(t *testing.T) {
	var buf bytes.Buffer
	if err := Refuse(&buf, axfrQuery(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := Receive(&buf, 5); !errors.Is(err, ErrRefused) {
		t.Errorf("got %v, want ErrRefused", err)
	}
}

func TestReceiveTruncatedStream(t *testing.T) {
	z := testZone(t, 40)
	var buf bytes.Buffer
	if err := Serve(&buf, z, axfrQuery(1)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, 2, 10, len(full) / 2, len(full) - 3} {
		if _, err := Receive(bytes.NewReader(full[:cut]), 1); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestReceiveMissingBracket(t *testing.T) {
	// A message stream whose first record is not a SOA must be rejected.
	m := &dnswire.Message{
		Header: dnswire.Header{ID: 3, Response: true},
		Answers: []dnswire.RR{
			{Name: dnswire.Root, Class: dnswire.ClassINET, TTL: 1,
				Data: dnswire.NSRecord{Host: dnswire.MustName("a.root-servers.net.")}},
		},
	}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	_, err := Receive(&buf, 3)
	if err == nil {
		t.Fatal("unbracketed transfer accepted")
	}
}

func TestWriteReadMessage(t *testing.T) {
	m := dnswire.NewQuery(77, dnswire.Root, dnswire.TypeSOA)
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.ID != 77 || got.Questions[0].Type != dnswire.TypeSOA {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := ReadMessage(&buf); err != io.EOF {
		t.Errorf("expected EOF after single message, got %v", err)
	}
}

func TestTransferOverRealTCP(t *testing.T) {
	z := testZone(t, 60).Canonicalize()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		q, err := ReadMessage(conn)
		if err != nil {
			return
		}
		_ = Serve(conn, z, q)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteMessage(conn, axfrQuery(321)); err != nil {
		t.Fatal(err)
	}
	got, err := Receive(conn, 321)
	if err != nil {
		t.Fatal(err)
	}
	if got.Canonicalize().String() != z.String() {
		t.Error("zone transferred over TCP differs from source")
	}
}
