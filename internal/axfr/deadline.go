package axfr

import (
	"net"
	"time"
)

// DeadlineConn wraps a TCP connection so every Read and Write first pushes
// the connection deadline Timeout into the future. The effect is an idle-
// progress watchdog rather than a whole-transfer cap: a slow but live AXFR
// keeps refreshing its lease frame by frame, while a stalled or half-open
// peer times out within one Timeout and releases the serving goroutine.
// dnsserver wraps every accepted connection in one of these; a zero or
// negative Timeout passes through untouched.
type DeadlineConn struct {
	net.Conn
	Timeout time.Duration
}

func (c *DeadlineConn) Read(p []byte) (int, error) {
	if c.Timeout > 0 {
		//rootlint:allow wallclock: real-socket I/O deadline; never reached by the in-process campaign engine
		if err := c.Conn.SetDeadline(time.Now().Add(c.Timeout)); err != nil {
			return 0, err
		}
	}
	return c.Conn.Read(p)
}

func (c *DeadlineConn) Write(p []byte) (int, error) {
	if c.Timeout > 0 {
		//rootlint:allow wallclock: real-socket I/O deadline; never reached by the in-process campaign engine
		if err := c.Conn.SetDeadline(time.Now().Add(c.Timeout)); err != nil {
			return 0, err
		}
	}
	return c.Conn.Write(p)
}
