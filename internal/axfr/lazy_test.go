package axfr

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/dnswire"
)

// serveToBuffer runs a full transfer of z into an in-memory stream.
func serveToBuffer(t *testing.T, tlds int, id uint16) (*bytes.Buffer, int) {
	t.Helper()
	z := testZone(t, tlds)
	var buf bytes.Buffer
	if err := Serve(&buf, z, axfrQuery(id)); err != nil {
		t.Fatal(err)
	}
	return &buf, len(z.Records)
}

// TestReceiveLazyMatchesReceive pins the lazy path against the decoding
// path on the same stream: same record count, and the canonical bytes of
// every lazily walked record equal the canonical form of the decoded one.
func TestReceiveLazyMatchesReceive(t *testing.T) {
	z := testZone(t, 40)
	var a, b bytes.Buffer
	if err := Serve(&a, z, axfrQuery(7)); err != nil {
		t.Fatal(err)
	}
	b.Write(a.Bytes())
	full, err := Receive(&a, 7)
	if err != nil {
		t.Fatal(err)
	}
	var canon [][]byte
	n, err := ReceiveLazy(&b, 7, func(v *dnswire.View, rr *dnswire.RawRR) error {
		w, err := v.AppendCanonical(nil, rr)
		if err != nil {
			return err
		}
		canon = append(canon, w)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(full.Records) {
		t.Fatalf("lazy count %d, decoded count %d", n, len(full.Records))
	}
	for i, rr := range full.Records {
		want := dnswire.AppendCanonicalRR(nil, rr, rr.TTL)
		if !bytes.Equal(canon[i], want) {
			t.Fatalf("record %d: lazy canonical bytes differ from decoded", i)
		}
	}
}

// TestReceiveCompareRoundTrip: a served transfer compares clean against its
// own zone, and a corrupted one is caught.
func TestReceiveCompareRoundTrip(t *testing.T) {
	z := testZone(t, 200) // multi-message
	var buf bytes.Buffer
	if err := Serve(&buf, z, axfrQuery(3)); err != nil {
		t.Fatal(err)
	}
	n, err := ReceiveCompare(&buf, 3, z)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(z.Records) {
		t.Fatalf("compared %d records, zone has %d", n, len(z.Records))
	}
}

func TestReceiveCompareDetectsMismatch(t *testing.T) {
	z := testZone(t, 40)
	var buf bytes.Buffer
	if err := Serve(&buf, z, axfrQuery(3)); err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside some mid-stream frame payload (past the first
	// frame's header region so the stream still parses).
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0x01
	if _, err := ReceiveCompare(bytes.NewBuffer(raw), 3, z); err == nil {
		t.Fatal("corrupted transfer compared clean")
	}
}

// TestReceiveCountSemantics mirrors the Receive robustness table on the
// lazy path: ID mismatch, REFUSED, truncation classification, SOA bracket.
func TestReceiveCountSemantics(t *testing.T) {
	t.Run("count", func(t *testing.T) {
		buf, want := serveToBuffer(t, 40, 5)
		n, err := ReceiveCount(buf, 5)
		if err != nil {
			t.Fatal(err)
		}
		if n != want {
			t.Fatalf("counted %d records, zone has %d", n, want)
		}
	})
	t.Run("id-mismatch", func(t *testing.T) {
		buf, _ := serveToBuffer(t, 40, 5)
		if _, err := ReceiveCount(buf, 6); err == nil {
			t.Fatal("accepted mismatched ID")
		}
	})
	t.Run("refused", func(t *testing.T) {
		var buf bytes.Buffer
		if err := Refuse(&buf, axfrQuery(5)); err != nil {
			t.Fatal(err)
		}
		if _, err := ReceiveCount(&buf, 5); !errors.Is(err, ErrRefused) {
			t.Fatalf("got %v, want ErrRefused", err)
		}
	})
	t.Run("mid-transfer-disconnect", func(t *testing.T) {
		buf, _ := serveToBuffer(t, 200, 5)
		cut := buf.Bytes()[:buf.Len()*2/3]
		_, err := ReceiveCount(bytes.NewBuffer(cut), 5)
		if !errors.Is(err, ErrTruncatedTransfer) {
			t.Fatalf("got %v, want ErrTruncatedTransfer", err)
		}
	})
	t.Run("dead-server", func(t *testing.T) {
		_, err := ReceiveCount(&bytes.Buffer{}, 5)
		if err == nil || errors.Is(err, ErrTruncatedTransfer) {
			t.Fatalf("got %v, want a plain read error", err)
		}
	})
}
