package axfr

import "repro/internal/telemetry"

// axfr/serves counts completed-or-attempted transfer servings on the Serve
// entry point (not WriteMessage, which is a rootlint hotpath and must stay
// allocation- and instrumentation-free). Serve duration is wall-clock and
// only records behind the telemetry enable gate.
var (
	mServes   = telemetry.NewCounter("axfr/serves")
	mServeDur = telemetry.NewHistogram("wallclock/axfr_serve_us")
)
