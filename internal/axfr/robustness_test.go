package axfr

// Stream-robustness tests: a transfer peer that disconnects mid-stream,
// truncates a TCP frame, or advertises a length it never delivers must
// produce a classified error — never a hang, a panic, or a silently short
// zone.

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// frameBoundaries returns the byte offsets at which each complete frame of
// the serialized stream ends.
func frameBoundaries(t *testing.T, stream []byte) []int {
	t.Helper()
	var ends []int
	off := 0
	for off < len(stream) {
		if off+2 > len(stream) {
			t.Fatal("stream ends inside a length prefix")
		}
		n := int(stream[off])<<8 | int(stream[off+1])
		off += 2 + n
		if off > len(stream) {
			t.Fatal("stream ends inside a frame body")
		}
		ends = append(ends, off)
	}
	return ends
}

func TestReceiveMidTransferDisconnect(t *testing.T) {
	z := testZone(t, 200) // multi-message transfer
	var buf bytes.Buffer
	if err := Serve(&buf, z, axfrQuery(7)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	ends := frameBoundaries(t, full)
	if len(ends) < 2 {
		t.Fatalf("want a multi-message transfer, got %d frame(s)", len(ends))
	}
	// Disconnect cleanly after each complete frame except the last: records
	// flowed, the closing SOA never arrived.
	for _, end := range ends[:len(ends)-1] {
		_, err := Receive(bytes.NewReader(full[:end]), 7)
		if !errors.Is(err, ErrTruncatedTransfer) {
			t.Errorf("disconnect after frame ending at %d: err = %v, want ErrTruncatedTransfer", end, err)
		}
	}
}

func TestReceiveTruncatedFrameClassified(t *testing.T) {
	z := testZone(t, 200)
	var buf bytes.Buffer
	if err := Serve(&buf, z, axfrQuery(7)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	ends := frameBoundaries(t, full)
	first := ends[0]
	// Cut inside the second frame: both the frame- and transfer-level
	// classifications must be visible through errors.Is.
	for _, cut := range []int{first + 1, first + 2, first + 10, ends[1] - 1} {
		_, err := Receive(bytes.NewReader(full[:cut]), 7)
		if !errors.Is(err, ErrTruncatedTransfer) {
			t.Errorf("cut at %d: err = %v, want ErrTruncatedTransfer", cut, err)
		}
	}
	// The same cuts at the raw message layer (starting at the second
	// frame) classify as a truncated frame.
	if _, err := ReadMessage(bytes.NewReader(full[first : first+1])); !errors.Is(err, ErrTruncatedFrame) {
		t.Errorf("partial prefix: err = %v, want ErrTruncatedFrame", err)
	}
	if _, err := ReadMessage(bytes.NewReader(full[first : ends[1]-3])); !errors.Is(err, ErrTruncatedFrame) {
		t.Errorf("short body: err = %v, want ErrTruncatedFrame", err)
	}
}

func TestReadMessageOversizedPrefix(t *testing.T) {
	// A peer advertises the maximum frame length and then hangs up after a
	// few bytes. The reader must return a classified error promptly — not
	// block, not panic, not hand garbage to the parser.
	stream := append([]byte{0xff, 0xff}, bytes.Repeat([]byte{0x00}, 40)...)
	_, err := ReadMessage(bytes.NewReader(stream))
	if !errors.Is(err, ErrTruncatedFrame) {
		t.Fatalf("err = %v, want ErrTruncatedFrame", err)
	}
	// Mid-transfer, the same condition classifies as a truncated transfer:
	// deliver the first frame of a multi-frame transfer, then the bogus
	// oversized prefix.
	z := testZone(t, 200)
	var buf bytes.Buffer
	if err := Serve(&buf, z, axfrQuery(9)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	ends := frameBoundaries(t, full)
	if len(ends) < 2 {
		t.Fatal("want a multi-frame transfer")
	}
	evil := append(append([]byte(nil), full[:ends[0]]...), 0xff, 0xff, 1, 2, 3)
	if _, err := Receive(bytes.NewReader(evil), 9); !errors.Is(err, ErrTruncatedTransfer) {
		t.Fatalf("err = %v, want ErrTruncatedTransfer", err)
	}
}

func TestReadMessageCleanEOFStaysEOF(t *testing.T) {
	// Zero bytes at a frame boundary is the normal end of a pipelined
	// stream; it must stay io.EOF so loops can terminate on it.
	if _, err := ReadMessage(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}
