// Package blast is the rootblast load engine: a seeded query-composition
// generator reproducing the B-Root traffic mix ("Understanding DNS Query
// Composition at B-Root": A/AAAA ratios, junk queries for nonexistent TLDs,
// heavy-hitter skew, DNSSEC DO-bit ratio), driven through pipelined
// connected UDP sockets in the style of ZDNS: N independent socket workers,
// each keeping a window of outstanding queries in flight and matching
// responses by message ID, with latency observations riding the telemetry
// layer's power-of-two histograms.
//
// The generator is deterministic: the same (Mix, seed, tlds, size) always
// yields the same query corpus, so two benchmark runs offer the server an
// identical workload. Only the timing side (RTT observations, counts at a
// wall-clock deadline) is nondeterministic, and every metric it touches is
// volatile-class.
package blast

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"time"

	"repro/internal/dnsclient"
	"repro/internal/dnswire"
	"repro/internal/netem"
	"repro/internal/qlog"
	"repro/internal/zone"
)

// Mix describes the query composition offered to the server. Type fractions
// (AAAA, NS, DS, DNSKEY, SOA) are of all queries; the remainder are type A.
// Junk is the fraction of A/AAAA qnames that name a nonexistent TLD. DO is
// the fraction of queries sent with EDNS0 and the DO bit; of those,
// EDNS4096 advertise 4096 bytes and the rest 1232. Skew is the Zipf-like
// exponent of the heavy-hitter distribution over existing TLDs (0 =
// uniform; 1 ~ the B-Root study's skew, where a handful of TLDs dominate).
type Mix struct {
	AAAA     float64
	NS       float64
	DS       float64
	DNSKEY   float64
	SOA      float64
	Junk     float64
	DO       float64
	EDNS4096 float64
	Skew     float64
}

// DefaultMix approximates the composition measured at B-Root: mostly A with
// a substantial AAAA share, a long tail of junk queries for TLDs that do
// not exist (NXDOMAIN is a root server's single most common answer), a
// heavy-hitter skew where a few TLDs absorb most existing-name traffic, and
// a large majority of queries arriving with EDNS0 and the DO bit set.
func DefaultMix() Mix {
	return Mix{
		AAAA:     0.18,
		NS:       0.03,
		DS:       0.04,
		DNSKEY:   0.01,
		SOA:      0.01,
		Junk:     0.45,
		DO:       0.72,
		EDNS4096: 0.35,
		Skew:     1.0,
	}
}

// Corpus is a pregenerated set of packed query wires (message ID zero; the
// runner patches a fresh ID into each send). Pregeneration keeps the send
// loop allocation-free and makes the offered workload a pure function of
// the generator inputs. qEnds caches each wire's question-section end so the
// flight recorder can build join subjects without re-walking names.
type Corpus struct {
	wires [][]byte
	qEnds []int32
}

// Len returns the number of distinct queries in the corpus.
func (c *Corpus) Len() int { return len(c.wires) }

// Wire returns the i-th packed query. The slice is shared; callers must
// copy before patching the ID.
func (c *Corpus) Wire(i int) []byte { return c.wires[i] }

// splitmix64 is the repo's standard allocation-free seeded generator.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rng is a tiny seeded stream over splitmix64.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state = splitmix64(r.state)
	return r.state
}

// frac returns a uniform float64 in [0, 1).
func (r *rng) frac() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// BuildCorpus generates size packed queries sampled from mix over a
// synthesized root zone with tlds delegations (zone.TLDNames gives the
// exact delegation set rootserve serves). The corpus is deterministic in
// (mix, tlds, size, seed).
func BuildCorpus(mix Mix, tlds, size int, seed uint64) (*Corpus, error) {
	if size <= 0 {
		return nil, errors.New("blast: corpus size must be positive")
	}
	names := zone.TLDNames(tlds)
	if len(names) == 0 {
		return nil, errors.New("blast: no TLDs to query")
	}
	// Heavy-hitter skew: cumulative 1/(rank+1)^skew weights over the TLD
	// list, sampled by linear scan of the cumulative table (the table is
	// small and this is generation time, not send time).
	cum := make([]float64, len(names))
	total := 0.0
	for i := range names {
		w := 1.0
		if mix.Skew > 0 {
			w = 1.0 / math.Pow(float64(i+1), mix.Skew)
		}
		total += w
		cum[i] = total
	}
	pickTLD := func(r *rng) dnswire.Name {
		x := r.frac() * total
		for i, c := range cum {
			if x <= c {
				return names[i]
			}
		}
		return names[len(names)-1]
	}

	r := &rng{state: seed ^ 0xb1a57}
	wires := make([][]byte, 0, size)
	qEnds := make([]int32, 0, size)
	for i := 0; i < size; i++ {
		var qname dnswire.Name
		var qtype dnswire.Type
		switch t := r.frac(); {
		case t < mix.AAAA:
			qtype = dnswire.TypeAAAA
		case t < mix.AAAA+mix.NS:
			qtype = dnswire.TypeNS
		case t < mix.AAAA+mix.NS+mix.DS:
			qtype = dnswire.TypeDS
		case t < mix.AAAA+mix.NS+mix.DS+mix.DNSKEY:
			qtype = dnswire.TypeDNSKEY
		case t < mix.AAAA+mix.NS+mix.DS+mix.DNSKEY+mix.SOA:
			qtype = dnswire.TypeSOA
		default:
			qtype = dnswire.TypeA
		}
		switch qtype {
		case dnswire.TypeA, dnswire.TypeAAAA:
			if r.frac() < mix.Junk {
				// Nonexistent TLD: a junk label that cannot collide with
				// the synthesized delegations.
				qname = dnswire.Name(fmt.Sprintf("junk-%012x.", r.next()&0xffffffffffff))
			} else {
				// Resolution traffic: a name under a delegated TLD, drawing
				// the TLD from the heavy-hitter distribution.
				qname = dnswire.Name(fmt.Sprintf("www%d.%s", r.next()&0x3f, pickTLD(r)))
			}
		case dnswire.TypeNS, dnswire.TypeDS:
			qname = pickTLD(r)
		default: // DNSKEY, SOA: apex maintenance traffic
			qname = dnswire.Root
		}
		q := dnswire.NewQuery(0, qname, qtype)
		if r.frac() < mix.DO {
			udpSize := uint16(1232)
			if r.frac() < mix.EDNS4096 {
				udpSize = 4096
			}
			q.WithEDNS(udpSize, true)
		}
		wire, err := q.Pack()
		if err != nil {
			return nil, fmt.Errorf("blast: packing corpus query %d: %w", i, err)
		}
		wires = append(wires, wire)
		qEnds = append(qEnds, int32(qlog.QuestionEnd(wire)))
	}
	return &Corpus{wires: wires, qEnds: qEnds}, nil
}

// Config configures one load run.
type Config struct {
	// Addr is the target server's host:port (UDP).
	Addr string
	// Workers is the number of independent sockets, each with its own send
	// loop and outstanding window. 0 means 1.
	Workers int
	// Window is the number of outstanding (pipelined) queries per socket.
	// 0 means 64.
	Window int
	// Duration bounds the run in wall time. 0 means Count must be set.
	Duration time.Duration
	// Count, when non-zero, caps the total queries sent across workers.
	Count int64
	// Timeout is how long an outstanding query may go unanswered before it
	// is reaped (and how long a drain read blocks). 0 means 250ms.
	Timeout time.Duration
	// Retries is how many times an expired query is re-sent (same wire,
	// same message ID, so a seeded netem link rolls a fresh fate for the
	// re-send rather than re-branching the corpus) before it is declared
	// lost. 0 keeps the historical reap-once semantics.
	Retries int
	// Backoff stretches the per-attempt deadline: re-send attempt k waits
	// Timeout + Backoff.Delay(k-1) before expiring, i.e. the capped
	// exponential pause is folded into the wait for an answer. The zero
	// value re-sends on a flat Timeout cadence.
	Backoff dnsclient.Backoff
	// Netem applies a deterministic adverse-network profile to each
	// worker's socket (flow = worker index): queries pass the link on
	// egress, responses on ingress. The zero profile is off.
	Netem netem.Profile
	// QLog attaches a per-query flight recorder: every sampled query emits
	// one blast/query event at its terminal outcome (matched or declared
	// lost). Give it the same sampler seed and rate as the server's so
	// `rootanalyze -qlog join` can pair both sides' records. Nil is off.
	QLog *qlog.Recorder
	// Corpus is the offered workload; required.
	Corpus *Corpus
}

// Result is one run's report. Quantiles are read from the telemetry RTT
// histogram's bucket distribution. Every query is accounted for at exit:
// Sent counts distinct queries (first sends), and Sent == Received + Lost
// always holds after the drain — nothing is left implicit in the pending
// ring. Timeouts counts per-attempt expiries (so Timeouts >= Lost when
// retries are on) and Retried counts re-sends, which are not in Sent.
type Result struct {
	Sent       int64         `json:"sent"`
	Received   int64         `json:"received"`
	Lost       int64         `json:"lost"`
	Retried    int64         `json:"retried"`
	Timeouts   int64         `json:"timeouts"`
	Mismatches int64         `json:"mismatches"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	QPS        float64       `json:"qps"`
	P50us      int64         `json:"p50_us"`
	P90us      int64         `json:"p90_us"`
	P99us      int64         `json:"p99_us"`
}

// String renders the one-line human report.
func (r *Result) String() string {
	return fmt.Sprintf("sent=%d received=%d lost=%d retried=%d timeouts=%d mismatches=%d elapsed=%s qps=%.0f p50=%dus p90=%dus p99=%dus",
		r.Sent, r.Received, r.Lost, r.Retried, r.Timeouts, r.Mismatches,
		r.Elapsed.Round(time.Millisecond), r.QPS, r.P50us, r.P90us, r.P99us)
}

// Run drives the configured load against cfg.Addr and aggregates the
// per-worker tallies. The RTT distribution lands in the telemetry histogram
// wallclock/blast_rtt_us (cumulative across runs in one process; tests
// reset telemetry between runs).
func Run(cfg Config) (*Result, error) {
	if cfg.Corpus == nil || cfg.Corpus.Len() == 0 {
		return nil, errors.New("blast: empty corpus")
	}
	if cfg.Duration <= 0 && cfg.Count <= 0 {
		return nil, errors.New("blast: need a duration or a query count")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	window := cfg.Window
	if window <= 0 {
		window = 64
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 250 * time.Millisecond
	}
	raddr, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("blast: resolve %q: %w", cfg.Addr, err)
	}

	perWorkerCount := int64(0)
	if cfg.Count > 0 {
		perWorkerCount = (cfg.Count + int64(workers) - 1) / int64(workers)
	}
	link := netem.NewLink(cfg.Netem)
	// Per-attempt deadline extensions, precomputed off the hot loop:
	// attempt 0 waits Timeout, re-send attempt k waits Timeout+Delay(k-1).
	delays := make([]int64, cfg.Retries+1)
	for k := 1; k <= cfg.Retries; k++ {
		delays[k] = cfg.Backoff.Delay(k - 1).Nanoseconds()
	}
	//rootlint:allow wallclock: load generation is wall-clock by nature; RTTs and deadlines never feed measurement results
	start := time.Now()
	ws := make([]worker, workers)
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		w := &ws[i]
		w.corpus = cfg.Corpus
		w.window = window
		w.duration = cfg.Duration
		w.count = perWorkerCount
		w.timeoutNs = timeout.Nanoseconds()
		w.timeout = timeout
		w.retries = cfg.Retries
		w.delays = delays
		w.link = link
		w.qlog = cfg.QLog
		// The flow key is the worker index: stable run to run, unlike the
		// socket's ephemeral port.
		w.flow = netem.FlowID(uint64(i))
		// Stagger corpus offsets so N workers collectively offer the mix.
		w.ci = (i * cfg.Corpus.Len()) / workers
		w.idCtr = uint32(splitmix64(uint64(i)*0x9e37 + 1))
		go func() { errs <- w.run(raddr) }()
	}
	var firstErr error
	for i := 0; i < workers; i++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	//rootlint:allow wallclock: load generation is wall-clock by nature
	elapsed := time.Since(start)

	res := &Result{Elapsed: elapsed}
	for i := range ws {
		res.Sent += ws[i].sent
		res.Received += ws[i].received
		res.Lost += ws[i].lost
		res.Retried += ws[i].retried
		res.Timeouts += ws[i].timeouts
		res.Mismatches += ws[i].mismatches
	}
	if secs := elapsed.Seconds(); secs > 0 {
		res.QPS = float64(res.Received) / secs
	}
	res.P50us = mRTT.Quantile(0.50)
	res.P90us = mRTT.Quantile(0.90)
	res.P99us = mRTT.Quantile(0.99)
	mSent.Add(res.Sent)
	mReceived.Add(res.Received)
	mLost.Add(res.Lost)
	mRetries.Add(res.Retried)
	mTimeouts.Add(res.Timeouts)
	mMismatches.Add(res.Mismatches)
	return res, nil
}

// worker is one pipelined socket loop's state. Tallies are written only by
// the owning goroutine and read by Run after the errs barrier.
type worker struct {
	corpus    *Corpus
	window    int
	duration  time.Duration
	count     int64 // per-worker send budget; 0 = unbounded
	timeout   time.Duration
	timeoutNs int64
	retries   int
	delays    []int64 // per-attempt deadline extension, ns (delays[0] = 0)
	link      *netem.Link
	flow      uint64
	qlog      *qlog.Recorder // nil when flight recording is off

	conn    *net.UDPConn
	sendBuf []byte
	recvBuf []byte
	subjBuf []byte // flight-recorder join-subject scratch
	// pending[id] is the send time (UnixNano) of the outstanding query with
	// that message ID, 0 when none; attempts[id] counts its re-sends and
	// wireIdx[id] remembers its corpus entry so an expiry re-sends the same
	// wire under the same ID. The ring holds outstanding IDs in first-send
	// order; it is larger than the window so out-of-order completions never
	// wedge the head against a still-pending tail. A retried entry keeps
	// its ring slot with a refreshed timestamp — never re-appended, so the
	// ring can't overflow and an ID is never in the ring twice.
	//rootlint:shardconfined Run,worker.run
	pending []int64
	//rootlint:shardconfined Run,worker.run
	attempts []uint8
	//rootlint:shardconfined Run,worker.run
	wireIdx []int32
	//rootlint:shardconfined Run,worker.run
	ring []uint16
	//rootlint:shardconfined Run,worker.run
	head, tail int
	//rootlint:shardconfined Run,worker.run
	outstanding int
	//rootlint:shardconfined Run,worker.run
	ci int // corpus cursor
	//rootlint:shardconfined Run,worker.run
	idCtr uint32

	//rootlint:shardconfined Run,worker.run
	sent, received, lost, retried, timeouts, mismatches int64
}

// evBlastQuery is the client-side flight-recorder event: one record per
// sampled query at its terminal outcome. Claimed once; the qlogfield
// analyzer cross-checks the field list against the qlog registry.
var evBlastQuery = qlog.NewEvent("blast/query",
	"attempts", "outcome", "rcode", "tc", "wait_us")

// blast/query outcome enum values, in registry order.
const (
	qOutcomeOK   = 0
	qOutcomeLost = 1
)

// emitQuery records the terminal blast/query event for the outstanding query
// with this message ID. The join subject is the query prefix as sent — the
// corpus wire with the ID patched in — so the key matches the server's record
// of the same query. rcode and tc are zero for lost queries (no response).
//
//rootlint:hotpath
func (w *worker) emitQuery(id uint16, outcome, rcode, tc uint64) {
	wi := w.wireIdx[id]
	qe := w.corpus.qEnds[wi]
	if qe < 0 {
		return
	}
	w.subjBuf = append(w.subjBuf[:0], w.corpus.wires[wi][:qe]...)
	w.subjBuf[0], w.subjBuf[1] = byte(id>>8), byte(id)
	key := qlog.Key(w.subjBuf)
	if !w.qlog.Sampled(key) {
		return
	}
	var waitUs uint64
	for k := 1; k <= int(w.attempts[id]); k++ {
		waitUs += uint64(w.delays[k] / 1000)
	}
	w.qlog.Emit(evBlastQuery, key, w.subjBuf,
		uint64(w.attempts[id])+1, outcome, rcode, tc, waitUs)
}

// expireNs is the wait before the entry's current attempt is declared
// expired: the base timeout, stretched by the backoff table for re-sends.
//
//rootlint:hotpath
func (w *worker) expireNs(id uint16) int64 {
	return w.timeoutNs + w.delays[w.attempts[id]]
}

// send patches id into the corpus wire and writes it through the emulated
// link (a dropped or corrupted send is still a send: the entry stays
// pending and the expiry path accounts for it).
//
//rootlint:hotpath
func (w *worker) send(id uint16, wireIdx int32) error {
	w.sendBuf = append(w.sendBuf[:0], w.corpus.wires[wireIdx]...)
	w.sendBuf[0], w.sendBuf[1] = byte(id>>8), byte(id)
	first, second := w.link.Admit(netem.Egress, w.flow, w.sendBuf)
	if first != nil {
		if _, err := w.conn.Write(first); err != nil {
			return err
		}
	}
	if second != nil {
		if _, err := w.conn.Write(second); err != nil {
			return err
		}
	}
	return nil
}

// reap advances the ring tail past completed entries and expires entries
// older than their attempt deadline, re-sending those with retry budget
// left (same ID, same wire, refreshed timestamp — the entry keeps its ring
// slot) and declaring the rest lost. It stops at the first young,
// still-pending entry.
//
//rootlint:hotpath
func (w *worker) reap(nowNs int64) error {
	for w.tail != w.head {
		id := w.ring[w.tail]
		t0 := w.pending[id]
		if t0 != 0 {
			if nowNs-t0 < w.expireNs(id) {
				return nil
			}
			w.timeouts++
			if int(w.attempts[id]) < w.retries {
				w.attempts[id]++
				w.retried++
				w.pending[id] = nowNs
				if err := w.send(id, w.wireIdx[id]); err != nil {
					return err
				}
				// The refreshed entry is young again; later ring entries
				// wait behind it exactly like behind any pending tail.
				return nil
			}
			if w.qlog != nil {
				w.emitQuery(id, qOutcomeLost, 0, 0)
			}
			w.pending[id] = 0
			w.outstanding--
			w.lost++
		}
		w.tail = (w.tail + 1) % len(w.ring)
	}
	return nil
}

// fill tops the outstanding window up with fresh sends until the window,
// the deadline, or the send budget stops it.
//
//rootlint:hotpath
func (w *worker) fill(nowNs, deadlineNs int64) error {
	for w.outstanding < w.window && nowNs < deadlineNs &&
		(w.count <= 0 || w.sent < w.count) {
		if (w.head+1)%len(w.ring) == w.tail {
			if err := w.reap(nowNs); err != nil {
				return err
			}
			if (w.head+1)%len(w.ring) == w.tail {
				return nil // ring blocked on a young pending tail; drain first
			}
		}
		wi := int32(w.ci)
		w.ci++
		if w.ci == len(w.corpus.wires) {
			w.ci = 0
		}
		id := uint16(w.idCtr)
		w.idCtr++
		if w.pending[id] != 0 {
			return nil // ID still in flight after a full wrap; drain first
		}
		w.attempts[id] = 0
		w.wireIdx[id] = wi
		if err := w.send(id, wi); err != nil {
			return err
		}
		w.pending[id] = nowNs
		w.ring[w.head] = id
		w.head = (w.head + 1) % len(w.ring)
		w.outstanding++
		w.sent++
	}
	return nil
}

// handleResp matches one admitted response datagram against the pending
// table.
//
//rootlint:hotpath
func (w *worker) handleResp(buf []byte, rxNs int64) {
	if len(buf) < 2 {
		w.mismatches++
		return
	}
	id := binary.BigEndian.Uint16(buf)
	t0 := w.pending[id]
	if t0 == 0 {
		w.mismatches++
		return
	}
	if w.qlog != nil {
		var rcode, tc uint64
		if len(buf) > 3 {
			rcode = uint64(buf[3] & 0x0F)
		}
		if len(buf) > 2 && buf[2]&0x02 != 0 {
			tc = 1
		}
		w.emitQuery(id, qOutcomeOK, rcode, tc)
	}
	w.pending[id] = 0
	w.outstanding--
	w.received++
	mRTT.Observe((rxNs - t0) / 1000)
	// Compact completed entries off the ring tail.
	for w.tail != w.head && w.pending[w.ring[w.tail]] == 0 {
		w.tail = (w.tail + 1) % len(w.ring)
	}
}

// run is the worker loop: fill the window, drain one response, repeat; on a
// read timeout, reap expired outstanding entries. The loop ends only when
// the pending table is fully drained — every query has been answered or
// declared lost after its retry budget — so sent == received + lost holds
// at exit and nothing hangs under loss: the reap path always makes
// progress. The steady state allocates nothing — buffers, the per-ID
// tables, and the ring are reused across packets.
//
//rootlint:hotpath
func (w *worker) run(raddr *net.UDPAddr) error {
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	w.conn = conn
	w.sendBuf = make([]byte, 0, 512)
	w.recvBuf = make([]byte, 64*1024)
	w.subjBuf = make([]byte, 0, 512)
	w.pending = make([]int64, 1<<16)
	w.attempts = make([]uint8, 1<<16)
	w.wireIdx = make([]int32, 1<<16)
	w.ring = make([]uint16, 4*w.window)

	//rootlint:allow wallclock: load generation deadline
	deadlineNs := time.Now().Add(w.duration).UnixNano()
	if w.duration <= 0 {
		deadlineNs = 1<<63 - 1
	}
	for {
		//rootlint:allow wallclock: pipelined send/receive pacing
		nowNs := time.Now().UnixNano()
		if w.outstanding == 0 && (nowNs >= deadlineNs || (w.count > 0 && w.sent >= w.count)) {
			return nil
		}
		if err := w.fill(nowNs, deadlineNs); err != nil {
			return err
		}
		if w.outstanding == 0 {
			continue
		}
		//rootlint:allow wallclock: socket read deadline
		if err := w.conn.SetReadDeadline(time.Now().Add(w.timeout)); err != nil {
			return err
		}
		n, err := w.conn.Read(w.recvBuf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				//rootlint:allow wallclock: reaping stale outstanding queries
				if err := w.reap(time.Now().UnixNano()); err != nil {
					return err
				}
				continue
			}
			return err
		}
		//rootlint:allow wallclock: RTT observation is the tool's output
		rxNs := time.Now().UnixNano()
		first, second := w.link.Admit(netem.Ingress, w.flow, w.recvBuf[:n])
		if first != nil {
			w.handleResp(first, rxNs)
		}
		if second != nil {
			w.handleResp(second, rxNs)
		}
	}
}
