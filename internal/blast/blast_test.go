package blast_test

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/blast"
	"repro/internal/dnsclient"
	"repro/internal/dnssec"
	"repro/internal/dnsserver"
	"repro/internal/dnswire"
	"repro/internal/netem"
	"repro/internal/telemetry"
	"repro/internal/zone"
	"repro/internal/zonemd"
)

// TestBuildCorpusDeterministic pins that corpus generation is a pure
// function of (mix, tlds, size, seed): two builds are byte-identical, and a
// different seed diverges.
func TestBuildCorpusDeterministic(t *testing.T) {
	mix := blast.DefaultMix()
	a, err := blast.BuildCorpus(mix, 50, 256, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := blast.BuildCorpus(mix, 50, 256, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 256 || b.Len() != 256 {
		t.Fatalf("corpus sizes: %d, %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if !bytes.Equal(a.Wire(i), b.Wire(i)) {
			t.Fatalf("wire %d differs between same-seed builds", i)
		}
	}
	c, err := blast.BuildCorpus(mix, 50, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 0; i < a.Len(); i++ {
		if bytes.Equal(a.Wire(i), c.Wire(i)) {
			same++
		}
	}
	if same == a.Len() {
		t.Error("different seeds produced identical corpora")
	}
}

// TestCorpusWiresAreQueries decodes every generated wire and sanity-checks
// the composition knobs: all parseable queries, some junk TLDs, some AAAA,
// some DO bits.
func TestCorpusWiresAreQueries(t *testing.T) {
	corpus, err := blast.BuildCorpus(blast.DefaultMix(), 50, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	var aaaa, do int
	for i := 0; i < corpus.Len(); i++ {
		msg, err := dnswire.Unpack(corpus.Wire(i))
		if err != nil {
			t.Fatalf("wire %d unparseable: %v", i, err)
		}
		if msg.Header.Response || len(msg.Questions) != 1 {
			t.Fatalf("wire %d is not a single-question query", i)
		}
		if msg.Questions[0].Type == dnswire.TypeAAAA {
			aaaa++
		}
		if opt, ok := msg.EDNS(); ok && opt.Do {
			do++
		}
	}
	if aaaa == 0 {
		t.Error("no AAAA queries in a default-mix corpus")
	}
	if do == 0 {
		t.Error("no DO-bit queries in a default-mix corpus")
	}
}

// startBlastTarget builds a signed root zone and serves it on loopback.
func startBlastTarget(t *testing.T) string {
	t.Helper()
	signer, err := dnssec.NewSigner(rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := zone.DefaultRootConfig()
	cfg.TLDCount = 20
	when := time.Date(2023, 12, 10, 12, 0, 0, 0, time.UTC)
	signed, err := signer.Sign(zone.SynthesizeRoot(cfg), when)
	if err != nil {
		t.Fatal(err)
	}
	z, err := zonemd.AttachAndSign(signed, signer, zonemd.StateVerifiable, when)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dnsserver.New(dnsserver.Config{Zone: z})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr.String()
}

// TestRunAgainstServer is the end-to-end smoke test: a small blast against
// a loopback dnsserver must deliver every query and report sane latency
// quantiles from the telemetry histogram.
func TestRunAgainstServer(t *testing.T) {
	telemetry.Reset()
	addrStr := startBlastTarget(t)

	telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(false)
	corpus, err := blast.BuildCorpus(blast.DefaultMix(), 20, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := blast.Run(blast.Config{
		Addr:    addrStr,
		Workers: 2,
		Window:  16,
		Count:   500,
		Timeout: 2 * time.Second,
		Corpus:  corpus,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 500 {
		t.Errorf("sent %d queries, want 500", res.Sent)
	}
	if res.Received+res.Timeouts != res.Sent {
		t.Errorf("received %d + timeouts %d != sent %d", res.Received, res.Timeouts, res.Sent)
	}
	if res.Received == 0 {
		t.Fatal("no responses received from loopback server")
	}
	if res.Mismatches != 0 {
		t.Errorf("%d ID mismatches", res.Mismatches)
	}
	if res.P50us == 0 || res.P99us < res.P50us {
		t.Errorf("implausible quantiles: p50=%dus p99=%dus", res.P50us, res.P99us)
	}
	if res.QPS <= 0 {
		t.Errorf("qps = %f", res.QPS)
	}
}

// TestRunUnderLossCompletes is the PR's client-side acceptance test: under
// a seeded 10% bidirectional loss profile, a retrying blast must terminate
// with every query accounted for — sent == received + lost — report its
// resends, and leave no goroutines behind.
func TestRunUnderLossCompletes(t *testing.T) {
	telemetry.Reset()
	addr := startBlastTarget(t)
	corpus, err := blast.BuildCorpus(blast.DefaultMix(), 20, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	res, err := blast.Run(blast.Config{
		Addr:    addr,
		Workers: 2,
		Window:  16,
		Count:   300,
		Timeout: 75 * time.Millisecond,
		Retries: 3,
		Backoff: dnsclient.Backoff{Base: 2 * time.Millisecond, Cap: 8 * time.Millisecond, Seed: 2},
		Netem:   netem.Profile{Loss: 0.1, Seed: 6},
		Corpus:  corpus,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 300 {
		t.Errorf("sent %d, want 300", res.Sent)
	}
	if res.Received+res.Lost != res.Sent {
		t.Errorf("accounting broken: received %d + lost %d != sent %d",
			res.Received, res.Lost, res.Sent)
	}
	if res.Retried == 0 {
		t.Error("10%% loss produced zero retries")
	}
	if res.Received == 0 {
		t.Fatal("nothing survived a 10%% loss link")
	}
	if res.Timeouts < res.Lost {
		t.Errorf("timeouts %d < lost %d: every loss needs an expired final attempt",
			res.Timeouts, res.Lost)
	}
	// Every worker (and its reader) must be gone; allow the runtime a
	// moment to reap, then a small slack for unrelated background work.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines grew from %d to %d after Run returned", before, n)
	}
}

// TestRunBlackholeTerminates: a fully blackholed link (every flow dead)
// must not hang — every query exhausts its retry budget and is reported
// lost.
func TestRunBlackholeTerminates(t *testing.T) {
	telemetry.Reset()
	addr := startBlastTarget(t)
	corpus, err := blast.BuildCorpus(blast.DefaultMix(), 20, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := blast.Run(blast.Config{
		Addr:    addr,
		Workers: 2,
		Window:  8,
		Count:   40,
		Timeout: 30 * time.Millisecond,
		Retries: 1,
		Netem:   netem.Profile{Blackhole: 1, Seed: 1},
		Corpus:  corpus,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Received != 0 || res.Lost != 40 || res.Sent != 40 {
		t.Errorf("blackhole run: sent=%d received=%d lost=%d, want 40/0/40",
			res.Sent, res.Received, res.Lost)
	}
	if res.Retried != 40 {
		t.Errorf("retried %d, want one resend per query", res.Retried)
	}
}
