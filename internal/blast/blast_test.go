package blast_test

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/blast"
	"repro/internal/dnssec"
	"repro/internal/dnsserver"
	"repro/internal/dnswire"
	"repro/internal/telemetry"
	"repro/internal/zone"
	"repro/internal/zonemd"
)

// TestBuildCorpusDeterministic pins that corpus generation is a pure
// function of (mix, tlds, size, seed): two builds are byte-identical, and a
// different seed diverges.
func TestBuildCorpusDeterministic(t *testing.T) {
	mix := blast.DefaultMix()
	a, err := blast.BuildCorpus(mix, 50, 256, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := blast.BuildCorpus(mix, 50, 256, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 256 || b.Len() != 256 {
		t.Fatalf("corpus sizes: %d, %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if !bytes.Equal(a.Wire(i), b.Wire(i)) {
			t.Fatalf("wire %d differs between same-seed builds", i)
		}
	}
	c, err := blast.BuildCorpus(mix, 50, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 0; i < a.Len(); i++ {
		if bytes.Equal(a.Wire(i), c.Wire(i)) {
			same++
		}
	}
	if same == a.Len() {
		t.Error("different seeds produced identical corpora")
	}
}

// TestCorpusWiresAreQueries decodes every generated wire and sanity-checks
// the composition knobs: all parseable queries, some junk TLDs, some AAAA,
// some DO bits.
func TestCorpusWiresAreQueries(t *testing.T) {
	corpus, err := blast.BuildCorpus(blast.DefaultMix(), 50, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	var aaaa, do int
	for i := 0; i < corpus.Len(); i++ {
		msg, err := dnswire.Unpack(corpus.Wire(i))
		if err != nil {
			t.Fatalf("wire %d unparseable: %v", i, err)
		}
		if msg.Header.Response || len(msg.Questions) != 1 {
			t.Fatalf("wire %d is not a single-question query", i)
		}
		if msg.Questions[0].Type == dnswire.TypeAAAA {
			aaaa++
		}
		if opt, ok := msg.EDNS(); ok && opt.Do {
			do++
		}
	}
	if aaaa == 0 {
		t.Error("no AAAA queries in a default-mix corpus")
	}
	if do == 0 {
		t.Error("no DO-bit queries in a default-mix corpus")
	}
}

// TestRunAgainstServer is the end-to-end smoke test: a small blast against
// a loopback dnsserver must deliver every query and report sane latency
// quantiles from the telemetry histogram.
func TestRunAgainstServer(t *testing.T) {
	telemetry.Reset()
	signer, err := dnssec.NewSigner(rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := zone.DefaultRootConfig()
	cfg.TLDCount = 20
	when := time.Date(2023, 12, 10, 12, 0, 0, 0, time.UTC)
	signed, err := signer.Sign(zone.SynthesizeRoot(cfg), when)
	if err != nil {
		t.Fatal(err)
	}
	z, err := zonemd.AttachAndSign(signed, signer, zonemd.StateVerifiable, when)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dnsserver.New(dnsserver.Config{Zone: z})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(false)
	corpus, err := blast.BuildCorpus(blast.DefaultMix(), 20, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := blast.Run(blast.Config{
		Addr:    addr.String(),
		Workers: 2,
		Window:  16,
		Count:   500,
		Timeout: 2 * time.Second,
		Corpus:  corpus,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 500 {
		t.Errorf("sent %d queries, want 500", res.Sent)
	}
	if res.Received+res.Timeouts != res.Sent {
		t.Errorf("received %d + timeouts %d != sent %d", res.Received, res.Timeouts, res.Sent)
	}
	if res.Received == 0 {
		t.Fatal("no responses received from loopback server")
	}
	if res.Mismatches != 0 {
		t.Errorf("%d ID mismatches", res.Mismatches)
	}
	if res.P50us == 0 || res.P99us < res.P50us {
		t.Errorf("implausible quantiles: p50=%dus p99=%dus", res.P50us, res.P99us)
	}
	if res.QPS <= 0 {
		t.Errorf("qps = %f", res.QPS)
	}
}
