package blast

import "repro/internal/telemetry"

// All blast metrics are volatile-class: a load generator's counts are a
// function of wall-clock run length and packet timing, never of the
// deterministic event stream. The RTT histogram is the first consumer of the
// telemetry layer's per-bucket distributions (Quantile/BucketCounts).
var (
	mSent       = telemetry.NewCounter("blast/sent")
	mReceived   = telemetry.NewCounter("blast/received")
	mTimeouts   = telemetry.NewCounter("blast/timeouts")
	mRetries    = telemetry.NewCounter("blast/retries")
	mLost       = telemetry.NewCounter("blast/lost")
	mMismatches = telemetry.NewCounter("blast/mismatches")
	mRTT        = telemetry.NewHistogram("wallclock/blast_rtt_us")
)
