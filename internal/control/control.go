// Package control implements the control-group experiment the paper lists
// as an accepted limitation (Appendix E, "Absence of a Control Group"): an
// additional anycast deployment under the experimenter's control, measured
// with the same methodology as the root letters. Comparing the control
// deployment's stability and RTT against a similarly sized root deployment
// separates effects of the root server system from effects of anycast in
// general.
package control

import (
	"fmt"
	"io"

	"repro/internal/anycast"
	"repro/internal/geo"
	"repro/internal/rss"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/vantage"
)

// Config sizes the control deployment.
type Config struct {
	// GlobalSites per region; the default mirrors a mid-size letter
	// (c.root/h.root scale).
	SitesPerRegion map[geo.Region]int
	// Instability is the per-interval flap probability (both families).
	Instability float64
	// Ticks is the number of synthetic measurement rounds.
	Ticks int
	// Seed drives placement and flaps.
	Seed int64
}

// DefaultConfig mirrors h.root's footprint.
func DefaultConfig() Config {
	return Config{
		SitesPerRegion: map[geo.Region]int{
			geo.Africa: 1, geo.Asia: 3, geo.Europe: 2,
			geo.NorthAmerica: 4, geo.SouthAmerica: 1, geo.Oceania: 1,
		},
		Instability: 0.003,
		Ticks:       200,
		Seed:        7,
	}
}

// Result compares the control deployment against one root letter.
type Result struct {
	// ControlChanges and LetterChanges are per-VP site-change counts.
	ControlChanges, LetterChanges []float64
	// ControlRTT and LetterRTT are per-probe RTT samples (ms).
	ControlRTT, LetterRTT []float64
	// Letter is the compared root letter.
	Letter rss.Letter
	Family topology.Family
}

// Experiment is a runnable control-group comparison.
type Experiment struct {
	Cfg        Config
	Topo       *topology.Topology
	System     *rss.System
	Population *vantage.Population
	Control    *anycast.Deployment
}

// New builds the control deployment next to an existing system. The control
// sites deliberately avoid the hub-weighted builder so the deployment is
// not co-located with the letters (as an experimenter's fresh deployment
// would not be).
func New(cfg Config, topo *topology.Topology, sys *rss.System, pop *vantage.Population) *Experiment {
	b := anycast.NewBuilder(topo, cfg.Seed+1000)
	d := &anycast.Deployment{
		Name:          "ctrl",
		InstabilityV4: cfg.Instability,
		InstabilityV6: cfg.Instability,
	}
	for region, n := range cfg.SitesPerRegion {
		d.Sites = append(d.Sites, b.PlaceSites("ctrl", anycast.Global, region, n)...)
	}
	return &Experiment{Cfg: cfg, Topo: topo, System: sys, Population: pop, Control: d}
}

// Run measures both deployments from every VP for Cfg.Ticks rounds in one
// family and returns the comparison.
func (e *Experiment) Run(letter rss.Letter, f topology.Family) *Result {
	res := &Result{Letter: letter, Family: f}
	ctrlCatch := anycast.ComputeCatchment(e.Topo, e.Control, f)
	letterCatch := anycast.ComputeCatchment(e.Topo, e.System.Deployments[letter], f)

	for _, vp := range e.Population.VPs {
		ctrlChanges, letterChanges := 0, 0
		var prevCtrl, prevLetter string
		for tick := 0; tick < e.Cfg.Ticks; tick++ {
			if r, ok := ctrlCatch.SelectAt(vp.ASN, tick, e.Cfg.Seed, 1); ok {
				if prevCtrl != "" && prevCtrl != r.Origin.SiteID {
					ctrlChanges++
				}
				prevCtrl = r.Origin.SiteID
				if tick == 0 {
					res.ControlRTT = append(res.ControlRTT, geo.RTTms(r.PathKm, r.Hops()*2+2, 0.25))
				}
			}
			if r, ok := letterCatch.SelectAt(vp.ASN, tick, e.Cfg.Seed, 1); ok {
				if prevLetter != "" && prevLetter != r.Origin.SiteID {
					letterChanges++
				}
				prevLetter = r.Origin.SiteID
				if tick == 0 {
					res.LetterRTT = append(res.LetterRTT, geo.RTTms(r.PathKm, r.Hops()*2+2, 0.25))
				}
			}
		}
		if prevCtrl != "" {
			res.ControlChanges = append(res.ControlChanges, float64(ctrlChanges))
		}
		if prevLetter != "" {
			res.LetterChanges = append(res.LetterChanges, float64(letterChanges))
		}
	}
	return res
}

// Write renders the comparison.
func (r *Result) Write(w io.Writer) {
	fmt.Fprintf(w, "Control group vs %s.root (%s)\n", r.Letter, r.Family)
	fmt.Fprintf(w, "  control: changes %s\n", stats.Summarize(r.ControlChanges))
	fmt.Fprintf(w, "  %s.root: changes %s\n", r.Letter, stats.Summarize(r.LetterChanges))
	fmt.Fprintf(w, "  control: RTT %s\n", stats.Summarize(r.ControlRTT))
	fmt.Fprintf(w, "  %s.root: RTT %s\n", r.Letter, stats.Summarize(r.LetterRTT))
}
