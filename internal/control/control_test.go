package control

import (
	"strings"
	"testing"

	"repro/internal/anycast"
	"repro/internal/geo"
	"repro/internal/rss"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/vantage"
)

func setup(t *testing.T) *Experiment {
	t.Helper()
	topo := topology.Build(topology.DefaultConfig())
	sys := rss.Build(topo, 1)
	vpCfg := vantage.DefaultConfig()
	vpCfg.Scale = 5 // ~135 VPs
	pop := vantage.Generate(topo, vpCfg)
	cfg := DefaultConfig()
	cfg.Ticks = 100
	return New(cfg, topo, sys, pop)
}

func TestControlDeploymentShape(t *testing.T) {
	e := setup(t)
	want := 0
	for _, n := range e.Cfg.SitesPerRegion {
		want += n
	}
	if len(e.Control.Sites) != want {
		t.Fatalf("control sites = %d, want %d", len(e.Control.Sites), want)
	}
	for _, s := range e.Control.Sites {
		if s.Kind != anycast.Global {
			t.Errorf("control site %s is not global", s.ID)
		}
		if s.HostASN == 0 {
			t.Errorf("control site %s has no host", s.ID)
		}
	}
}

func TestRunComparison(t *testing.T) {
	e := setup(t)
	res := e.Run("h", topology.IPv4)
	if len(res.ControlChanges) == 0 || len(res.LetterChanges) == 0 {
		t.Fatal("no change samples")
	}
	if len(res.ControlRTT) == 0 || len(res.LetterRTT) == 0 {
		t.Fatal("no RTT samples")
	}
	// Both deployments are similar in size; RTT distributions should be
	// within the same order of magnitude.
	cm, lm := stats.Median(res.ControlRTT), stats.Median(res.LetterRTT)
	if cm <= 0 || lm <= 0 {
		t.Fatalf("degenerate medians %f %f", cm, lm)
	}
	if cm > lm*10 || lm > cm*10 {
		t.Errorf("control median %.1f vs %s.root %.1f: order-of-magnitude gap", cm, res.Letter, lm)
	}
	var sb strings.Builder
	res.Write(&sb)
	if !strings.Contains(sb.String(), "Control group vs h.root") {
		t.Error("rendering incomplete")
	}
}

func TestControlNotColocatedWithLetters(t *testing.T) {
	e := setup(t)
	letterFacs := map[string]bool{}
	for _, l := range rss.Letters() {
		for _, s := range e.System.Deployments[l].Sites {
			letterFacs[s.Facility] = true
		}
	}
	shared := 0
	for _, s := range e.Control.Sites {
		if letterFacs[s.Facility] {
			shared++
		}
	}
	// A fresh experimenter deployment can land at the same exchanges, but
	// most sites should be elsewhere.
	if shared > len(e.Control.Sites)/2 {
		t.Errorf("control shares %d/%d facilities with the RSS", shared, len(e.Control.Sites))
	}
}

func TestRegionsCovered(t *testing.T) {
	e := setup(t)
	regions := map[geo.Region]bool{}
	for _, s := range e.Control.Sites {
		regions[s.City.Region] = true
	}
	if len(regions) < 5 {
		t.Errorf("control covers %d regions", len(regions))
	}
}
