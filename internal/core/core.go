// Package core orchestrates the full study: it builds the simulated world
// (topology, root server system, vantage points, signed root zone), runs the
// NLNOG-DNS-1-style active campaign with every analysis attached, runs the
// passive ISP/IXP models, and bundles the results into a Report that can
// render every table and figure of the paper.
package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/analysis"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/rss"
	"repro/internal/topology"
	"repro/internal/vantage"
)

// Config parameterizes a study run.
type Config struct {
	// Seed drives every stochastic component.
	Seed int64
	// Scale thins the measurement schedule (1 = the paper's 30/15-minute
	// cadence; the default keeps runtime in benchmark range).
	Scale int
	// VPScale divides the 675-VP population.
	VPScale int
	// TLDCount sizes the synthesized root zone.
	TLDCount int
	// PassiveClients sizes each passive vantage's resolver population.
	PassiveClients int
	// Start and End override the paper's campaign window when non-zero.
	Start, End time.Time
	// Workers bounds the campaign worker pool (0 = one per CPU, 1 = serial).
	// Reports are byte-identical across worker counts for the same seed.
	Workers int
	// ErrorBudget bounds supervisor-salvaged degraded outcomes before the
	// campaign aborts: n >= 0 tolerates n, negative is unlimited.
	ErrorBudget int
}

// DefaultConfig runs the full VP population on a heavily thinned schedule —
// the shape-preserving configuration the benchmarks use.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		Scale:          96,
		VPScale:        1,
		TLDCount:       80,
		PassiveClients: 2000,
	}
}

// QuickConfig is a fast smoke-test configuration.
func QuickConfig() Config {
	return Config{
		Seed:           1,
		Scale:          512,
		VPScale:        10,
		TLDCount:       20,
		PassiveClients: 500,
	}
}

// Study is a configured, runnable reproduction.
type Study struct {
	Cfg   Config
	World *measure.World

	Coverage   *analysis.Coverage
	Stability  *analysis.Stability
	Colocation *analysis.Colocation
	Distance   *analysis.Distance
	RTT        *analysis.RTT
	Integrity  *analysis.Integrity
	Traffic    *analysis.Traffic

	// WireQueries and WireFailures report the campaign's built-in
	// end-to-end self-check (the Appendix-F battery run through a real
	// server once per measurement round).
	WireQueries  int
	WireFailures []string
}

// NewStudy builds the world and wires all analyses.
func NewStudy(cfg Config) (*Study, error) {
	if cfg.Scale < 1 {
		cfg.Scale = 1
	}
	if cfg.VPScale < 1 {
		cfg.VPScale = 1
	}
	mCfg := measure.DefaultConfig()
	mCfg.Seed = cfg.Seed
	mCfg.Scale = cfg.Scale
	mCfg.TLDCount = cfg.TLDCount
	topoCfg := topology.DefaultConfig()
	topoCfg.Seed = cfg.Seed
	vpCfg := vantage.DefaultConfig()
	vpCfg.Seed = cfg.Seed
	vpCfg.Scale = cfg.VPScale

	w, err := measure.NewWorld(mCfg, topoCfg, vpCfg)
	if err != nil {
		return nil, fmt.Errorf("core: building world: %w", err)
	}
	return &Study{
		Cfg:        cfg,
		World:      w,
		Coverage:   analysis.NewCoverage(w.System),
		Stability:  analysis.NewStability(),
		Colocation: analysis.NewColocation(w.Population),
		Distance:   analysis.NewDistance(w.System, w.Population),
		RTT:        analysis.NewRTT(),
		Integrity:  analysis.NewIntegrity(),
		Traffic:    analysis.NewTraffic(cfg.PassiveClients, cfg.Seed),
	}, nil
}

// Run executes the active campaign (streaming into all analyses); the
// passive models are computed lazily by their figure writers.
func (s *Study) Run() error {
	mCfg := measure.DefaultConfig()
	mCfg.Seed = s.Cfg.Seed
	mCfg.Scale = s.Cfg.Scale
	mCfg.TLDCount = s.Cfg.TLDCount
	mCfg.WireCheck = true
	mCfg.Workers = s.Cfg.Workers
	mCfg.ErrorBudget = s.Cfg.ErrorBudget
	if !s.Cfg.Start.IsZero() {
		mCfg.Start = s.Cfg.Start
	}
	if !s.Cfg.End.IsZero() {
		mCfg.End = s.Cfg.End
	}
	campaign := measure.NewCampaign(mCfg, s.World)
	err := campaign.Run(s.Coverage, s.Stability, s.Colocation, s.Distance, s.RTT, s.Integrity)
	s.WireQueries = campaign.WireQueries
	s.WireFailures = campaign.WireFailures
	if err == nil && len(s.WireFailures) > 0 {
		return fmt.Errorf("core: %d wire-check failures (first: %s)",
			len(s.WireFailures), s.WireFailures[0])
	}
	return err
}

// WriteReport renders every table and figure to w, in paper order.
func (s *Study) WriteReport(w io.Writer) {
	fmt.Fprintln(w, "== The Roots Go Deep: reproduction report ==")
	fmt.Fprintf(w, "seed=%d scale=%d vps=%d networks=%d countries=%d\n",
		s.Cfg.Seed, s.Cfg.Scale, len(s.World.Population.VPs),
		s.World.Population.Networks(), s.World.Population.Countries())
	fmt.Fprintf(w, "wire self-check: %d queries, %d failures\n\n",
		s.WireQueries, len(s.WireFailures))

	s.WriteTable3(w)
	fmt.Fprintln(w)
	s.Coverage.WriteTable1(w)
	fmt.Fprintln(w)
	s.Coverage.WriteTable4(w)
	fmt.Fprintln(w)
	s.Coverage.Figure11(w)
	fmt.Fprintln(w)
	s.Coverage.WriteValidation(w)
	fmt.Fprintln(w)
	s.Stability.WriteFigure3(w)
	fmt.Fprintln(w)
	s.Colocation.WriteFigure4(w)
	fmt.Fprintln(w)
	s.Distance.WriteFigure5(w)
	fmt.Fprintln(w)
	s.RTT.WriteFigure6(w)
	fmt.Fprintln(w)
	s.RTT.WriteFigure14(w)
	fmt.Fprintln(w)
	s.RTT.WriteCarrierEffects(w)
	fmt.Fprintln(w)
	s.RTT.WriteSection6Callouts(w)
	fmt.Fprintln(w)
	s.Traffic.WriteFigure7(w)
	fmt.Fprintln(w)
	s.Traffic.WriteFigure8(w)
	fmt.Fprintln(w)
	s.Traffic.WriteFigure9(w)
	fmt.Fprintln(w)
	s.Traffic.WriteIXPDetail(w)
	fmt.Fprintln(w)
	s.Traffic.WriteFigure12(w)
	fmt.Fprintln(w)
	s.Traffic.WriteFigure13(w)
	fmt.Fprintln(w)
	s.Integrity.WriteTable2(w)
	fmt.Fprintln(w)
	s.Integrity.WriteFigure10(w)
	fmt.Fprintln(w)
	measure.ComputeLoad(len(s.World.Population.VPs), measure.StudyStart).Write(w)
}

// WriteTable3 renders the VP distribution per region (paper's Table 3).
func (s *Study) WriteTable3(w io.Writer) {
	fmt.Fprintln(w, "Table 3: distribution of vantage points per region")
	fmt.Fprintln(w, "Region          #VPs  #Countries  #Networks")
	byRegion := s.World.Population.ByRegion()
	for _, region := range geo.Regions() {
		vps := byRegion[region]
		countries := map[string]bool{}
		networks := map[int]bool{}
		for _, vp := range vps {
			countries[vp.Country] = true
			networks[vp.ASN] = true
		}
		fmt.Fprintf(w, "%-15s %4d  %10d  %9d\n", region, len(vps), len(countries), len(networks))
	}
}

// Letters re-exports the 13 root letters for binaries built on core.
func Letters() []rss.Letter { return rss.Letters() }
