package core

import (
	"strings"
	"testing"
	"time"
)

func TestQuickStudyEndToEnd(t *testing.T) {
	cfg := QuickConfig()
	// Narrow the window further for test speed: cover a fault window and
	// the b.root change.
	cfg.Start = time.Date(2023, 11, 20, 0, 0, 0, 0, time.UTC)
	cfg.End = time.Date(2023, 12, 10, 0, 0, 0, 0, time.UTC)
	cfg.Scale = 96
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	s.WriteReport(&sb)
	out := sb.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4",
		"Figure 3", "Figure 4", "Figure 5", "Figure 6", "Figure 7",
		"Figure 8", "Figure 9", "Figure 10", "Figure 11", "Figure 12",
		"Figures 14/15",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if s.Integrity.Transfers == 0 {
		t.Error("no transfers executed")
	}
	if s.Coverage.ObservedIdentifiers() == 0 {
		t.Error("no identifiers observed")
	}
}

func TestTable3MatchesPopulation(t *testing.T) {
	s, err := NewStudy(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	s.WriteTable3(&sb)
	for _, region := range []string{"Africa", "Asia", "Europe", "North America", "South America", "Oceania"} {
		if !strings.Contains(sb.String(), region) {
			t.Errorf("Table 3 missing %s", region)
		}
	}
}

func TestLettersExported(t *testing.T) {
	if len(Letters()) != 13 {
		t.Errorf("Letters() = %d", len(Letters()))
	}
}

func TestStudyDeterministicReportSections(t *testing.T) {
	// Two studies with the same config must render identical deterministic
	// sections (Table 3, coverage); signature bytes differ but do not
	// appear in these sections.
	run := func() (string, *Study) {
		cfg := QuickConfig()
		cfg.Start = time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC)
		cfg.End = time.Date(2023, 8, 3, 0, 0, 0, 0, time.UTC)
		cfg.Scale = 96
		s, err := NewStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		s.WriteTable3(&sb)
		s.Coverage.WriteTable1(&sb)
		return sb.String(), s
	}
	a, sa := run()
	b, sb := run()
	if a != b {
		t.Error("deterministic sections differ between identically configured runs")
	}
	if sa.WireQueries == 0 || sb.WireQueries == 0 {
		t.Error("wire self-check did not run")
	}
}

func TestConfigClamping(t *testing.T) {
	cfg := QuickConfig()
	cfg.Scale = 0
	cfg.VPScale = 0
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cfg.Scale != 1 || s.Cfg.VPScale != 1 {
		t.Errorf("clamped config = %+v", s.Cfg)
	}
}
