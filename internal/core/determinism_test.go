package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestReportByteIdenticalAcrossWorkers is the parallel engine's determinism
// regression: a serial (Workers=1) and a heavily sharded (Workers=8) quick
// study must render byte-identical reports. This covers every accumulator
// (handler delivery order), floating-point summation order, and — because
// Fig. 10 prints raw RRSIG bytes — deterministic key derivation and signing.
func TestReportByteIdenticalAcrossWorkers(t *testing.T) {
	run := func(workers int) string {
		cfg := QuickConfig()
		cfg.Workers = workers
		s, err := NewStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		s.WriteReport(&sb)
		return sb.String()
	}
	serial := run(1)
	parallel := run(8)
	if serial != parallel {
		t.Fatal(firstDiff(serial, parallel))
	}

	// Telemetry must be a pure observer: with the wall-clock layer and span
	// recording fully on, the report bytes cannot move. Counters aggregate
	// only at snapshot reads and spans go to a side ring, so any difference
	// here means instrumentation leaked into the measurement path.
	telemetry.Reset()
	telemetry.SetEnabled(true)
	telemetry.EnableTracing(0)
	defer func() {
		telemetry.SetEnabled(false)
		telemetry.DisableTracing()
	}()
	instrumented := run(8)
	if instrumented != serial {
		t.Fatal("telemetry enabled changed report bytes: " + firstDiff(serial, instrumented))
	}
}

// firstDiff renders the first differing line of two reports.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("reports differ at line %d:\nworkers=1: %q\nworkers=8: %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("reports differ in length: %d vs %d lines", len(al), len(bl))
}
