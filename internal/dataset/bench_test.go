package dataset

import (
	"bytes"
	"testing"
)

// benchmarkReplay replays one pre-recorded mixed stream end to end. The
// recording is built once outside the timer; each iteration pays for frame
// scan, CRC, inflate, record decode, and handler dispatch — the whole
// rootanalyze ingest path. events/op is reported so qps falls out of ns/op
// without knowing the stream composition.
func benchmarkReplay(b *testing.B, workers int) {
	const n = 20000
	data := writeMixedFile(b, n, 8<<10)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	events := 0
	for i := 0; i < b.N; i++ {
		r, err := NewReader(bytes.NewReader(data), synthPop())
		if err != nil {
			b.Fatal(err)
		}
		var h countingHandler
		probes, transfers, err := r.ReplayWith(ReplayOptions{Workers: workers}, &h)
		if err != nil {
			b.Fatal(err)
		}
		if r.Torn() {
			b.Fatalf("benchmark stream torn: %v", r.TornReason())
		}
		events = probes + transfers
	}
	b.ReportMetric(float64(events), "events/op")
}

func BenchmarkReplayDecodeSerial(b *testing.B)    { benchmarkReplay(b, 1) }
func BenchmarkReplayDecodeParallel4(b *testing.B) { benchmarkReplay(b, 4) }
func BenchmarkReplayDecodeParallel8(b *testing.B) { benchmarkReplay(b, 8) }
