// Package dataset serializes campaign events to a compact, replayable log —
// the counterpart of the paper's published measurement data (Appendix A),
// which uses dictionary-based compression over the raw dig/mtr output.
//
// Format (version 2, segmented): the file opens with a raw "RGDS" magic and
// a varint version, followed by a sequence of sealed blocks. Each block is
// framed as
//
//	[u32be compressed length][u32be CRC-32C of payload][u32be record count]
//
// followed by a DEFLATE-compressed payload of records. Records intern
// repeated strings (site IDs, facilities, router names) in a dictionary that
// resets at every block boundary, so each block is self-contained: a crash
// can at worst tear the trailing block, which Reader detects (short frame,
// CRC mismatch, or bad DEFLATE stream) and cleanly truncates instead of
// erroring mid-stream. A Writer doubles as a measure.Handler so a campaign
// can be recorded while analyses run; a Reader replays the events into the
// same handlers later. Writers can also resume appending after the last
// sealed block of an interrupted recording (see ResumeWriter), which is how
// rootmeasure survives kill/restart cycles byte-identically.
package dataset

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"repro/internal/dnssec"
	"repro/internal/failpoint"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/rss"
	"repro/internal/vantage"
	"repro/internal/zonemd"
)

// magic identifies the format; version gates incompatible changes.
// Version 2 introduced the sealed-block framing (length + CRC + per-block
// dictionary) that makes recordings crash-recoverable.
const (
	magic   = "RGDS"
	version = 2
)

// record kinds.
const (
	recProbe    = 1
	recTransfer = 2
)

// error classes for transfer outcomes (reconstructed on replay so
// errors.Is keeps working).
const (
	errNone = iota
	errExpired
	errNotIncepted
	errBogus
	errZonemdDigest
	errOther
)

// DefaultBlockBytes is the uncompressed block size at which a Writer seals
// automatically. Checkpoint boundaries also seal, so the value only bounds
// memory (and crash loss) between checkpoints.
const DefaultBlockBytes = 512 * 1024

// frameHeaderLen is the fixed per-block frame: length, CRC, record count.
const frameHeaderLen = 12

// maxCompressedBlock bounds a frame length a Reader will believe; anything
// larger is treated as a torn/corrupt tail rather than allocated.
const maxCompressedBlock = 64 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Writer records campaign events into sealed blocks.
type Writer struct {
	out  io.Writer
	buf  bytes.Buffer // current (unsealed) block's records
	dict map[string]uint64
	next uint64
	err  error

	// BlockBytes is the auto-seal threshold (uncompressed); 0 means
	// DefaultBlockBytes. It must match between runs for byte-identical
	// kill/resume recordings.
	BlockBytes int

	blockRecords uint32
	sealed       int64 // bytes durably framed, header included

	// Probes and Transfers count written events.
	Probes, Transfers int
}

// NewWriter starts a dataset on out, writing the file header immediately.
func NewWriter(out io.Writer) (*Writer, error) {
	d := &Writer{out: out}
	d.resetDict()
	var hdr [len(magic) + binary.MaxVarintLen64]byte
	n := copy(hdr[:], magic)
	n += binary.PutUvarint(hdr[n:], version)
	if _, err := out.Write(hdr[:n]); err != nil {
		return nil, err
	}
	d.sealed = int64(n)
	return d, nil
}

// writerState is the opaque blob stored in campaign checkpoints.
type writerState struct {
	Offset    int64 `json:"offset"`
	Probes    int   `json:"probes"`
	Transfers int   `json:"transfers"`
}

// truncater is what ResumeWriter needs from its output to discard a torn
// tail; *os.File satisfies it.
type truncater interface {
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
}

// ResumeWriter continues an interrupted recording: it truncates out to the
// sealed offset recorded in state (a blob produced by CheckpointSeal),
// positions writes at the new end, and restores the event counters. The
// next block starts with a fresh dictionary, exactly as it would have in an
// uninterrupted run, so the resumed file is byte-identical.
func ResumeWriter(out io.Writer, state []byte) (*Writer, error) {
	var st writerState
	if err := json.Unmarshal(state, &st); err != nil {
		return nil, fmt.Errorf("dataset: bad resume state: %w", err)
	}
	if st.Offset < int64(len(magic))+1 {
		return nil, fmt.Errorf("dataset: resume offset %d precedes header", st.Offset)
	}
	tr, ok := out.(truncater)
	if !ok {
		return nil, errors.New("dataset: resume target does not support truncation")
	}
	if err := tr.Truncate(st.Offset); err != nil {
		return nil, fmt.Errorf("dataset: truncating torn tail: %w", err)
	}
	if _, err := tr.Seek(0, io.SeekEnd); err != nil {
		return nil, err
	}
	d := &Writer{out: out, sealed: st.Offset, Probes: st.Probes, Transfers: st.Transfers}
	d.resetDict()
	return d, nil
}

func (d *Writer) resetDict() {
	d.dict = make(map[string]uint64)
	d.next = 1
}

func (d *Writer) uvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	d.buf.Write(buf[:n])
}

// intern writes a string reference: known strings cost one varint; new ones
// are written once with their bytes. Scope is the current block.
func (d *Writer) intern(s string) {
	if id, ok := d.dict[s]; ok {
		d.uvarint(id << 1)
		return
	}
	d.dict[s] = d.next
	d.next++
	d.uvarint(uint64(len(s))<<1 | 1)
	d.buf.WriteString(s)
}

// Seal compresses and frames the current block, making every event handled
// so far durable on the underlying writer. Sealing an empty block is a
// no-op. After a seal the dictionary resets, so blocks stand alone.
func (d *Writer) Seal() error {
	if d.err != nil {
		return d.err
	}
	if d.blockRecords == 0 {
		return nil
	}
	var comp bytes.Buffer
	fw, err := flate.NewWriter(&comp, flate.DefaultCompression)
	if err != nil {
		d.err = err
		return err
	}
	if _, err := fw.Write(d.buf.Bytes()); err != nil {
		d.err = err
		return err
	}
	if err := fw.Close(); err != nil {
		d.err = err
		return err
	}
	frame := make([]byte, frameHeaderLen+comp.Len())
	binary.BigEndian.PutUint32(frame[0:], uint32(comp.Len()))
	binary.BigEndian.PutUint32(frame[4:], crc32.Checksum(comp.Bytes(), crcTable))
	binary.BigEndian.PutUint32(frame[8:], d.blockRecords)
	copy(frame[frameHeaderLen:], comp.Bytes())
	// Chaos site: simulate a crash that tears the frame mid-write. The
	// partial bytes land on the underlying writer; d.err stays ErrKilled so
	// no later write can extend the torn tail, and the recorded sealed
	// offset still ends at the previous block.
	if ferr := failpoint.Eval("dataset/seal/partial"); ferr != nil {
		d.out.Write(frame[:frameHeaderLen+comp.Len()/2])
		d.err = ferr
		return ferr
	}
	if _, err := d.out.Write(frame); err != nil {
		d.err = err
		return err
	}
	d.sealed += int64(len(frame))
	mBlocksSealed.Inc()
	mBytesSealed.Add(int64(len(frame)))
	d.buf.Reset()
	d.blockRecords = 0
	d.resetDict()
	return nil
}

// SealedBytes reports how many bytes of the output are covered by sealed
// blocks (the crash-recoverable prefix).
func (d *Writer) SealedBytes() int64 { return d.sealed }

// CheckpointSeal implements the campaign's checkpoint protocol
// (measure.Checkpointable): it seals the pending block, syncs the underlying
// file when possible, and returns the writer's resume state for the
// checkpoint sidecar. An injected dataset write error surfaces here before
// any bytes move, so the campaign can count it against the error budget and
// retry.
func (d *Writer) CheckpointSeal() ([]byte, error) {
	if err := failpoint.Eval("dataset/seal"); err != nil {
		return nil, err
	}
	if err := d.Seal(); err != nil {
		return nil, err
	}
	if s, ok := d.out.(interface{ Sync() error }); ok {
		if err := s.Sync(); err != nil {
			return nil, err
		}
	}
	return json.Marshal(writerState{Offset: d.sealed, Probes: d.Probes, Transfers: d.Transfers})
}

// HandleProbe implements measure.Handler.
func (d *Writer) HandleProbe(e measure.ProbeEvent) {
	if d.err != nil {
		return
	}
	d.uvarint(recProbe)
	d.uvarint(uint64(e.Tick.Index))
	d.uvarint(uint64(e.Tick.Time.Unix()))
	d.uvarint(uint64(e.VPIdx))
	d.intern(targetKey(e.Target))
	flags := uint64(0)
	if e.Lost {
		flags |= 1
	}
	if e.STLOK {
		flags |= 2
	}
	if e.SiteKind == 1 {
		flags |= 4
	}
	if e.Degraded {
		flags |= 8
	}
	d.uvarint(flags)
	d.Probes++
	d.blockRecords++
	mRecords.Inc()
	if e.Lost {
		d.maybeAutoSeal()
		return
	}
	d.intern(e.SiteID)
	d.intern(e.Identifier)
	d.intern(e.Facility)
	d.intern(e.SiteCity.IATA)
	d.uvarint(uint64(e.RTTms * 100)) // centi-milliseconds
	d.uvarint(uint64(len(e.ASPath)))
	for _, asn := range e.ASPath {
		d.uvarint(uint64(asn))
	}
	d.intern(e.SecondToLast)
	d.maybeAutoSeal()
}

// HandleTransfer implements measure.Handler.
func (d *Writer) HandleTransfer(e measure.TransferEvent) {
	if d.err != nil {
		return
	}
	d.uvarint(recTransfer)
	d.uvarint(uint64(e.Tick.Index))
	d.uvarint(uint64(e.Tick.Time.Unix()))
	d.uvarint(uint64(e.VPIdx))
	d.intern(targetKey(e.Target))
	flags := uint64(0)
	if e.Lost {
		flags |= 1
	}
	if e.ComparisonMismatch {
		flags |= 2
	}
	if e.Bitflip != nil {
		flags |= 4
	}
	if e.Degraded {
		flags |= 8
	}
	d.uvarint(flags)
	d.Transfers++
	d.blockRecords++
	mRecords.Inc()
	if e.Lost {
		d.maybeAutoSeal()
		return
	}
	d.uvarint(uint64(e.Serial))
	d.uvarint(uint64(e.Fault))
	d.uvarint(uint64(classifyErr(e.DNSSECErr)))
	d.uvarint(uint64(classifyErr(e.ZonemdErr)))
	if e.Bitflip != nil {
		d.intern(e.Bitflip.Before)
		d.intern(e.Bitflip.After)
	}
	d.maybeAutoSeal()
}

// maybeAutoSeal seals when the pending block exceeds the size threshold.
// Auto-seal points are a pure function of the record stream, so interrupted
// and uninterrupted runs frame their blocks identically.
func (d *Writer) maybeAutoSeal() {
	limit := d.BlockBytes
	if limit <= 0 {
		limit = DefaultBlockBytes
	}
	if d.buf.Len() >= limit {
		d.Seal() // a failed seal parks the error in d.err
	}
}

// Close seals any pending block and flushes the dataset.
func (d *Writer) Close() error {
	if err := d.Seal(); err != nil {
		return err
	}
	return d.err
}

func classifyErr(err error) int {
	switch {
	case err == nil:
		return errNone
	case errors.Is(err, dnssec.ErrSignatureExpired):
		return errExpired
	case errors.Is(err, dnssec.ErrSignatureNotIncepted):
		return errNotIncepted
	case errors.Is(err, dnssec.ErrBogusSignature):
		return errBogus
	case errors.Is(err, zonemd.ErrDigestMismatch):
		return errZonemdDigest
	default:
		return errOther
	}
}

func rebuildErr(class int) error {
	switch class {
	case errNone:
		return nil
	case errExpired:
		return dnssec.ErrSignatureExpired
	case errNotIncepted:
		return dnssec.ErrSignatureNotIncepted
	case errBogus:
		return dnssec.ErrBogusSignature
	case errZonemdDigest:
		return zonemd.ErrDigestMismatch
	default:
		return errors.New("dataset: unclassified validation error")
	}
}

// targetKey encodes a service target compactly ("b4o" = b.root IPv4 old).
func targetKey(t rss.ServiceAddr) string {
	fam := byte('4')
	if t.Family == 1 {
		fam = '6'
	}
	if t.Old {
		return string(t.Letter) + string(fam) + "o"
	}
	return string(t.Letter) + string(fam)
}

var targetsByKey = func() map[string]rss.ServiceAddr {
	m := make(map[string]rss.ServiceAddr)
	for _, t := range rss.AllServiceAddrs() {
		m[targetKey(t)] = t
	}
	return m
}()

// Reader replays a dataset into handlers, tolerating a torn trailing block.
// Decoding is block-at-a-time: the v2 framing makes every sealed block
// independently decompressible, which is what lets ReplayWith fan blocks
// out to a worker pool while an ordered drain keeps delivery byte-identical
// to a serial read.
type Reader struct {
	raw *bufio.Reader
	pop *vantage.Population
	// cities resolves metro codes back to geo.City.
	cities map[string]geo.City

	// Tear state belongs to the goroutine that owns the Reader: the serial
	// read path and the parallel drain (runParallel joins its scanner and
	// workers before returning, so ownership is whole again by the time
	// Torn/TornReason can run). The three named methods are the only touch
	// points; new code must go through them.
	//rootlint:shardconfined Reader.tear,Reader.Torn,Reader.TornReason
	torn bool
	//rootlint:shardconfined Reader.tear,Reader.Torn,Reader.TornReason
	tornErr error
}

// NewReader opens a dataset. The population must be the one the recording
// campaign used (the same world seed reproduces it).
func NewReader(in io.Reader, pop *vantage.Population) (*Reader, error) {
	raw := bufio.NewReader(in)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(raw, head); err != nil || string(head) != magic {
		if len(head) >= 2 && head[0] == 0x1f && head[1] == 0x8b {
			return nil, errors.New("dataset: legacy v1 (gzip) format; re-record with this version")
		}
		return nil, errors.New("dataset: bad magic")
	}
	v, err := binary.ReadUvarint(raw)
	if err != nil || v != version {
		return nil, fmt.Errorf("dataset: unsupported version %d", v)
	}
	cities := make(map[string]geo.City)
	for _, c := range geo.Cities() {
		cities[c.IATA] = c
	}
	return &Reader{raw: raw, pop: pop, cities: cities}, nil
}

// Torn reports whether the dataset ended in a torn (incomplete or corrupt)
// trailing block, which Replay silently truncated at the last sealed
// boundary — the expected state after a crash mid-recording.
func (d *Reader) Torn() bool { return d.torn }

// TornReason describes the detected tail corruption, nil when !Torn().
func (d *Reader) TornReason() error { return d.tornErr }

// frame is one sealed block as scanned off the wire, CRC unverified: the
// CPU-bound work (checksum, DEFLATE, record decode) happens in decodeBlock
// so it can run on a worker.
type frame struct {
	hdr   [frameHeaderLen]byte
	comp  []byte
	count uint32
}

// scanFrame reads the next sealed block's frame without decompressing it
// and without mutating any Reader state beyond the stream position: io.EOF
// means a clean end at a block boundary; any other error is tear-class and
// the caller decides when to apply it (the parallel drain applies it at the
// torn frame's delivery position so truncation semantics match serial). The
// frame's compressed payload is freshly allocated — frames outlive the
// sequential scan in parallel mode.
func (d *Reader) scanFrame() (frame, error) {
	var f frame
	if _, err := io.ReadFull(d.raw, f.hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return f, io.EOF // clean end: file stops at a block boundary
		}
		return f, fmt.Errorf("dataset: torn frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(f.hdr[0:])
	f.count = binary.BigEndian.Uint32(f.hdr[8:])
	if n == 0 || n > maxCompressedBlock {
		return f, fmt.Errorf("dataset: implausible block length %d", n)
	}
	f.comp = make([]byte, n)
	if _, err := io.ReadFull(d.raw, f.comp); err != nil {
		if err == io.EOF {
			// Zero payload bytes after a complete header is a torn tail, not
			// a block boundary; don't let the bare io.EOF read as clean end.
			err = io.ErrUnexpectedEOF
		}
		return f, fmt.Errorf("dataset: torn block payload: %w", err)
	}
	return f, nil
}

// nextFrame is scanFrame for serial consumers: a tear-class scan error is
// applied to the Reader immediately and converted to a clean io.EOF.
func (d *Reader) nextFrame() (frame, error) {
	f, err := d.scanFrame()
	if err != nil && !errors.Is(err, io.EOF) {
		return f, d.tear(err)
	}
	return f, err
}

// tear records the torn tail and converts it into a clean end-of-stream.
func (d *Reader) tear(reason error) error {
	d.torn = true
	d.tornErr = reason
	return io.EOF
}

// replayEvent is one decoded record, tagged with its kind.
type replayEvent struct {
	kind     uint64
	probe    measure.ProbeEvent
	transfer measure.TransferEvent
}

// blockResult is the outcome of decoding one block. events always holds the
// successfully decoded prefix; exactly one of the error fields may be set.
// tearErr means the block's bytes are corrupt (CRC or DEFLATE) — replay
// truncates there, delivering nothing from this block. decodeErr is a real
// format error inside verified bytes — replay delivers the prefix, then
// fails, exactly as the old record-interleaved loop did.
type blockResult struct {
	events    []replayEvent
	tearErr   error
	decodeErr error
}

// decodeBlock verifies and decodes one sealed block. It is a pure function
// of the frame plus the shared read-only population/city tables, so any
// worker can run it for any block.
func (d *Reader) decodeBlock(f frame) blockResult {
	sum := binary.BigEndian.Uint32(f.hdr[4:])
	if crc32.Checksum(f.comp, crcTable) != sum {
		return blockResult{tearErr: errors.New("dataset: block CRC mismatch")}
	}
	payload, err := io.ReadAll(flate.NewReader(bytes.NewReader(f.comp)))
	if err != nil {
		return blockResult{tearErr: fmt.Errorf("dataset: corrupt block stream: %w", err)}
	}
	dec := blockDecoder{
		blk: bytes.NewReader(payload), dict: []string{""},
		pop: d.pop, cities: d.cities,
	}
	return dec.decodeAll(f.count)
}

// blockDecoder decodes the records of a single decompressed block. The
// dictionary is block-scoped (reset at every seal), which is precisely what
// makes blocks independently decodable.
type blockDecoder struct {
	blk    *bytes.Reader
	dict   []string
	pop    *vantage.Population
	cities map[string]geo.City
}

// decodeAll decodes records until the payload is exhausted, enforcing the
// declared record count in both directions.
func (d *blockDecoder) decodeAll(count uint32) blockResult {
	res := blockResult{events: make([]replayEvent, 0, count)}
	left := count
	for d.blk.Len() > 0 {
		kind, err := d.uvarint()
		if err != nil {
			res.decodeErr = fmt.Errorf("dataset: record kind: %w", err)
			return res
		}
		if left == 0 {
			res.decodeErr = errors.New("dataset: more records than block header declared")
			return res
		}
		left--
		switch kind {
		case recProbe:
			e, err := d.readProbe()
			if err != nil {
				res.decodeErr = err
				return res
			}
			res.events = append(res.events, replayEvent{kind: recProbe, probe: e})
		case recTransfer:
			e, err := d.readTransfer()
			if err != nil {
				res.decodeErr = err
				return res
			}
			res.events = append(res.events, replayEvent{kind: recTransfer, transfer: e})
		default:
			res.decodeErr = fmt.Errorf("dataset: unknown record kind %d", kind)
			return res
		}
	}
	if left != 0 {
		res.decodeErr = fmt.Errorf("dataset: block ended with %d records unread", left)
	}
	return res
}

func (d *blockDecoder) uvarint() (uint64, error) { return binary.ReadUvarint(d.blk) }

func (d *blockDecoder) str() (string, error) {
	v, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if v&1 == 0 {
		id := v >> 1
		if id >= uint64(len(d.dict)) {
			return "", errors.New("dataset: bad dictionary reference")
		}
		return d.dict[id], nil
	}
	buf := make([]byte, v>>1)
	if _, err := io.ReadFull(d.blk, buf); err != nil {
		return "", err
	}
	s := string(buf)
	d.dict = append(d.dict, s)
	return s, nil
}

// Replay streams every event into the handlers, returning the counts. A
// torn trailing block (crash mid-write) is truncated, not an error; check
// Torn() to distinguish a clean end from a recovered one. Replay is the
// serial form of ReplayWith — see there for parallel decode, checkpoints,
// and resume.
func (d *Reader) Replay(handlers ...measure.Handler) (probes, transfers int, err error) {
	return d.ReplayWith(ReplayOptions{}, handlers...)
}

func (d *blockDecoder) readCommon() (measure.Tick, int, rss.ServiceAddr, uint64, error) {
	idx, err := d.uvarint()
	if err != nil {
		return measure.Tick{}, 0, rss.ServiceAddr{}, 0, err
	}
	unix, err := d.uvarint()
	if err != nil {
		return measure.Tick{}, 0, rss.ServiceAddr{}, 0, err
	}
	vpIdx, err := d.uvarint()
	if err != nil {
		return measure.Tick{}, 0, rss.ServiceAddr{}, 0, err
	}
	if int(vpIdx) >= len(d.pop.VPs) {
		return measure.Tick{}, 0, rss.ServiceAddr{}, 0, errors.New("dataset: VP index out of range")
	}
	tk, err := d.str()
	if err != nil {
		return measure.Tick{}, 0, rss.ServiceAddr{}, 0, err
	}
	target, ok := targetsByKey[tk]
	if !ok {
		return measure.Tick{}, 0, rss.ServiceAddr{}, 0, fmt.Errorf("dataset: unknown target %q", tk)
	}
	flags, err := d.uvarint()
	if err != nil {
		return measure.Tick{}, 0, rss.ServiceAddr{}, 0, err
	}
	tick := measure.Tick{Index: int(idx), Time: time.Unix(int64(unix), 0).UTC()}
	return tick, int(vpIdx), target, flags, nil
}

func (d *blockDecoder) readProbe() (measure.ProbeEvent, error) {
	tick, vpIdx, target, flags, err := d.readCommon()
	if err != nil {
		return measure.ProbeEvent{}, err
	}
	e := measure.ProbeEvent{
		Tick: tick, VP: &d.pop.VPs[vpIdx], VPIdx: vpIdx, Target: target,
		Lost:     flags&1 != 0,
		STLOK:    flags&2 != 0,
		Degraded: flags&8 != 0,
	}
	if flags&4 != 0 {
		e.SiteKind = 1
	}
	if e.Lost {
		return e, nil
	}
	if e.SiteID, err = d.str(); err != nil {
		return e, err
	}
	if e.Identifier, err = d.str(); err != nil {
		return e, err
	}
	if e.Facility, err = d.str(); err != nil {
		return e, err
	}
	iata, err := d.str()
	if err != nil {
		return e, err
	}
	e.SiteCity = d.cities[iata]
	rtt, err := d.uvarint()
	if err != nil {
		return e, err
	}
	e.RTTms = float64(rtt) / 100
	n, err := d.uvarint()
	if err != nil {
		return e, err
	}
	if n > 64 {
		return e, errors.New("dataset: implausible AS path length")
	}
	e.ASPath = make([]int, n)
	for i := range e.ASPath {
		asn, err := d.uvarint()
		if err != nil {
			return e, err
		}
		e.ASPath[i] = int(asn)
	}
	if e.SecondToLast, err = d.str(); err != nil {
		return e, err
	}
	return e, nil
}

func (d *blockDecoder) readTransfer() (measure.TransferEvent, error) {
	tick, vpIdx, target, flags, err := d.readCommon()
	if err != nil {
		return measure.TransferEvent{}, err
	}
	e := measure.TransferEvent{
		Tick: tick, VP: &d.pop.VPs[vpIdx], VPIdx: vpIdx, Target: target,
		Lost:               flags&1 != 0,
		ComparisonMismatch: flags&2 != 0,
		Degraded:           flags&8 != 0,
	}
	if e.Lost {
		return e, nil
	}
	serial, err := d.uvarint()
	if err != nil {
		return e, err
	}
	e.Serial = uint32(serial)
	fault, err := d.uvarint()
	if err != nil {
		return e, err
	}
	e.Fault = faults.Kind(fault)
	dclass, err := d.uvarint()
	if err != nil {
		return e, err
	}
	e.DNSSECErr = rebuildErr(int(dclass))
	zclass, err := d.uvarint()
	if err != nil {
		return e, err
	}
	e.ZonemdErr = rebuildErr(int(zclass))
	if flags&4 != 0 {
		var flip faults.Bitflip
		if flip.Before, err = d.str(); err != nil {
			return e, err
		}
		if flip.After, err = d.str(); err != nil {
			return e, err
		}
		e.Bitflip = &flip
	}
	return e, nil
}

// Close releases the reader (nothing to release in the block format; kept
// for API symmetry with Writer).
func (d *Reader) Close() error { return nil }
