// Package dataset serializes campaign events to a compact, replayable log —
// the counterpart of the paper's published measurement data (Appendix A),
// which uses dictionary-based compression over the raw dig/mtr output. The
// format interns repeated strings (site IDs, facilities, router names) in a
// dictionary, varint-encodes the rest, and wraps everything in gzip. A
// Writer doubles as a measure.Handler so a campaign can be recorded while
// analyses run; a Reader replays the events into the same handlers later.
package dataset

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/dnssec"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/rss"
	"repro/internal/vantage"
	"repro/internal/zonemd"
)

// magic identifies the format; version gates incompatible changes.
const (
	magic   = "RGDS"
	version = 1
)

// record kinds.
const (
	recProbe    = 1
	recTransfer = 2
)

// error classes for transfer outcomes (reconstructed on replay so
// errors.Is keeps working).
const (
	errNone = iota
	errExpired
	errNotIncepted
	errBogus
	errZonemdDigest
	errOther
)

// Writer records campaign events.
type Writer struct {
	gz   *gzip.Writer
	w    *bufio.Writer
	dict map[string]uint64
	next uint64
	err  error

	// Probes and Transfers count written events.
	Probes, Transfers int
}

// NewWriter starts a dataset on out.
func NewWriter(out io.Writer) (*Writer, error) {
	gz := gzip.NewWriter(out)
	w := bufio.NewWriter(gz)
	if _, err := w.WriteString(magic); err != nil {
		return nil, err
	}
	dw := &Writer{gz: gz, w: w, dict: make(map[string]uint64), next: 1}
	dw.uvarint(version)
	return dw, dw.err
}

func (d *Writer) uvarint(v uint64) {
	if d.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, d.err = d.w.Write(buf[:n])
}

// intern writes a string reference: known strings cost one varint; new ones
// are written once with their bytes.
func (d *Writer) intern(s string) {
	if id, ok := d.dict[s]; ok {
		d.uvarint(id << 1)
		return
	}
	d.dict[s] = d.next
	d.next++
	d.uvarint(uint64(len(s))<<1 | 1)
	if d.err == nil {
		_, d.err = d.w.WriteString(s)
	}
}

// HandleProbe implements measure.Handler.
func (d *Writer) HandleProbe(e measure.ProbeEvent) {
	d.uvarint(recProbe)
	d.uvarint(uint64(e.Tick.Index))
	d.uvarint(uint64(e.Tick.Time.Unix()))
	d.uvarint(uint64(e.VPIdx))
	d.intern(targetKey(e.Target))
	flags := uint64(0)
	if e.Lost {
		flags |= 1
	}
	if e.STLOK {
		flags |= 2
	}
	if e.SiteKind == 1 {
		flags |= 4
	}
	d.uvarint(flags)
	if e.Lost {
		d.Probes++
		return
	}
	d.intern(e.SiteID)
	d.intern(e.Identifier)
	d.intern(e.Facility)
	d.intern(e.SiteCity.IATA)
	d.uvarint(uint64(e.RTTms * 100)) // centi-milliseconds
	d.uvarint(uint64(len(e.ASPath)))
	for _, asn := range e.ASPath {
		d.uvarint(uint64(asn))
	}
	d.intern(e.SecondToLast)
	d.Probes++
}

// HandleTransfer implements measure.Handler.
func (d *Writer) HandleTransfer(e measure.TransferEvent) {
	d.uvarint(recTransfer)
	d.uvarint(uint64(e.Tick.Index))
	d.uvarint(uint64(e.Tick.Time.Unix()))
	d.uvarint(uint64(e.VPIdx))
	d.intern(targetKey(e.Target))
	flags := uint64(0)
	if e.Lost {
		flags |= 1
	}
	if e.ComparisonMismatch {
		flags |= 2
	}
	if e.Bitflip != nil {
		flags |= 4
	}
	d.uvarint(flags)
	if e.Lost {
		d.Transfers++
		return
	}
	d.uvarint(uint64(e.Serial))
	d.uvarint(uint64(e.Fault))
	d.uvarint(uint64(classifyErr(e.DNSSECErr)))
	d.uvarint(uint64(classifyErr(e.ZonemdErr)))
	if e.Bitflip != nil {
		d.intern(e.Bitflip.Before)
		d.intern(e.Bitflip.After)
	}
	d.Transfers++
}

// Close flushes the dataset.
func (d *Writer) Close() error {
	if d.err != nil {
		return d.err
	}
	if err := d.w.Flush(); err != nil {
		return err
	}
	return d.gz.Close()
}

func classifyErr(err error) int {
	switch {
	case err == nil:
		return errNone
	case errors.Is(err, dnssec.ErrSignatureExpired):
		return errExpired
	case errors.Is(err, dnssec.ErrSignatureNotIncepted):
		return errNotIncepted
	case errors.Is(err, dnssec.ErrBogusSignature):
		return errBogus
	case errors.Is(err, zonemd.ErrDigestMismatch):
		return errZonemdDigest
	default:
		return errOther
	}
}

func rebuildErr(class int) error {
	switch class {
	case errNone:
		return nil
	case errExpired:
		return dnssec.ErrSignatureExpired
	case errNotIncepted:
		return dnssec.ErrSignatureNotIncepted
	case errBogus:
		return dnssec.ErrBogusSignature
	case errZonemdDigest:
		return zonemd.ErrDigestMismatch
	default:
		return errors.New("dataset: unclassified validation error")
	}
}

// targetKey encodes a service target compactly ("b4o" = b.root IPv4 old).
func targetKey(t rss.ServiceAddr) string {
	fam := byte('4')
	if t.Family == 1 {
		fam = '6'
	}
	if t.Old {
		return string(t.Letter) + string(fam) + "o"
	}
	return string(t.Letter) + string(fam)
}

var targetsByKey = func() map[string]rss.ServiceAddr {
	m := make(map[string]rss.ServiceAddr)
	for _, t := range rss.AllServiceAddrs() {
		m[targetKey(t)] = t
	}
	return m
}()

// Reader replays a dataset into handlers.
type Reader struct {
	r    *bufio.Reader
	gz   *gzip.Reader
	dict []string
	pop  *vantage.Population
	// cities resolves metro codes back to geo.City.
	cities map[string]geo.City
}

// NewReader opens a dataset. The population must be the one the recording
// campaign used (the same world seed reproduces it).
func NewReader(in io.Reader, pop *vantage.Population) (*Reader, error) {
	gz, err := gzip.NewReader(in)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	r := bufio.NewReader(gz)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r, head); err != nil || string(head) != magic {
		return nil, errors.New("dataset: bad magic")
	}
	v, err := binary.ReadUvarint(r)
	if err != nil || v != version {
		return nil, fmt.Errorf("dataset: unsupported version %d", v)
	}
	cities := make(map[string]geo.City)
	for _, c := range geo.Cities() {
		cities[c.IATA] = c
	}
	return &Reader{r: r, gz: gz, dict: []string{""}, pop: pop, cities: cities}, nil
}

func (d *Reader) uvarint() (uint64, error) { return binary.ReadUvarint(d.r) }

func (d *Reader) str() (string, error) {
	v, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if v&1 == 0 {
		id := v >> 1
		if id >= uint64(len(d.dict)) {
			return "", errors.New("dataset: bad dictionary reference")
		}
		return d.dict[id], nil
	}
	buf := make([]byte, v>>1)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		return "", err
	}
	s := string(buf)
	d.dict = append(d.dict, s)
	return s, nil
}

// Replay streams every event into the handlers, returning the counts.
func (d *Reader) Replay(handlers ...measure.Handler) (probes, transfers int, err error) {
	for {
		kind, err := d.uvarint()
		if errors.Is(err, io.EOF) {
			return probes, transfers, nil
		}
		if err != nil {
			return probes, transfers, err
		}
		switch kind {
		case recProbe:
			e, err := d.readProbe()
			if err != nil {
				return probes, transfers, err
			}
			probes++
			for _, h := range handlers {
				h.HandleProbe(e)
			}
		case recTransfer:
			e, err := d.readTransfer()
			if err != nil {
				return probes, transfers, err
			}
			transfers++
			for _, h := range handlers {
				h.HandleTransfer(e)
			}
		default:
			return probes, transfers, fmt.Errorf("dataset: unknown record kind %d", kind)
		}
	}
}

func (d *Reader) readCommon() (measure.Tick, int, rss.ServiceAddr, uint64, error) {
	idx, err := d.uvarint()
	if err != nil {
		return measure.Tick{}, 0, rss.ServiceAddr{}, 0, err
	}
	unix, err := d.uvarint()
	if err != nil {
		return measure.Tick{}, 0, rss.ServiceAddr{}, 0, err
	}
	vpIdx, err := d.uvarint()
	if err != nil {
		return measure.Tick{}, 0, rss.ServiceAddr{}, 0, err
	}
	if int(vpIdx) >= len(d.pop.VPs) {
		return measure.Tick{}, 0, rss.ServiceAddr{}, 0, errors.New("dataset: VP index out of range")
	}
	tk, err := d.str()
	if err != nil {
		return measure.Tick{}, 0, rss.ServiceAddr{}, 0, err
	}
	target, ok := targetsByKey[tk]
	if !ok {
		return measure.Tick{}, 0, rss.ServiceAddr{}, 0, fmt.Errorf("dataset: unknown target %q", tk)
	}
	flags, err := d.uvarint()
	if err != nil {
		return measure.Tick{}, 0, rss.ServiceAddr{}, 0, err
	}
	tick := measure.Tick{Index: int(idx), Time: time.Unix(int64(unix), 0).UTC()}
	return tick, int(vpIdx), target, flags, nil
}

func (d *Reader) readProbe() (measure.ProbeEvent, error) {
	tick, vpIdx, target, flags, err := d.readCommon()
	if err != nil {
		return measure.ProbeEvent{}, err
	}
	e := measure.ProbeEvent{
		Tick: tick, VP: &d.pop.VPs[vpIdx], VPIdx: vpIdx, Target: target,
		Lost:  flags&1 != 0,
		STLOK: flags&2 != 0,
	}
	if flags&4 != 0 {
		e.SiteKind = 1
	}
	if e.Lost {
		return e, nil
	}
	if e.SiteID, err = d.str(); err != nil {
		return e, err
	}
	if e.Identifier, err = d.str(); err != nil {
		return e, err
	}
	if e.Facility, err = d.str(); err != nil {
		return e, err
	}
	iata, err := d.str()
	if err != nil {
		return e, err
	}
	e.SiteCity = d.cities[iata]
	rtt, err := d.uvarint()
	if err != nil {
		return e, err
	}
	e.RTTms = float64(rtt) / 100
	n, err := d.uvarint()
	if err != nil {
		return e, err
	}
	if n > 64 {
		return e, errors.New("dataset: implausible AS path length")
	}
	e.ASPath = make([]int, n)
	for i := range e.ASPath {
		asn, err := d.uvarint()
		if err != nil {
			return e, err
		}
		e.ASPath[i] = int(asn)
	}
	if e.SecondToLast, err = d.str(); err != nil {
		return e, err
	}
	return e, nil
}

func (d *Reader) readTransfer() (measure.TransferEvent, error) {
	tick, vpIdx, target, flags, err := d.readCommon()
	if err != nil {
		return measure.TransferEvent{}, err
	}
	e := measure.TransferEvent{
		Tick: tick, VP: &d.pop.VPs[vpIdx], VPIdx: vpIdx, Target: target,
		Lost:               flags&1 != 0,
		ComparisonMismatch: flags&2 != 0,
	}
	if e.Lost {
		return e, nil
	}
	serial, err := d.uvarint()
	if err != nil {
		return e, err
	}
	e.Serial = uint32(serial)
	fault, err := d.uvarint()
	if err != nil {
		return e, err
	}
	e.Fault = faults.Kind(fault)
	dclass, err := d.uvarint()
	if err != nil {
		return e, err
	}
	e.DNSSECErr = rebuildErr(int(dclass))
	zclass, err := d.uvarint()
	if err != nil {
		return e, err
	}
	e.ZonemdErr = rebuildErr(int(zclass))
	if flags&4 != 0 {
		var flip faults.Bitflip
		if flip.Before, err = d.str(); err != nil {
			return e, err
		}
		if flip.After, err = d.str(); err != nil {
			return e, err
		}
		e.Bitflip = &flip
	}
	return e, nil
}

// Close releases the decompressor.
func (d *Reader) Close() error { return d.gz.Close() }
