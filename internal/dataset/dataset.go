// Package dataset serializes campaign events to a compact, replayable log —
// the counterpart of the paper's published measurement data (Appendix A),
// which uses dictionary-based compression over the raw dig/mtr output.
//
// The container is the sealed-segment format (internal/segment): a raw
// "RGDS" magic and varint version, then length+CRC framed DEFLATE blocks
// with per-block string interning. Each block is self-contained, so a crash
// can at worst tear the trailing block, which Reader detects and cleanly
// truncates instead of erroring mid-stream. This package owns the record
// encodings (probe/transfer events), the failpoint sites, and the metrics;
// the framing mechanics live in segment and are shared with the qlog flight
// recorder. A Writer doubles as a measure.Handler so a campaign can be
// recorded while analyses run; a Reader replays the events into the same
// handlers later. Writers can also resume appending after the last sealed
// block of an interrupted recording (see ResumeWriter), which is how
// rootmeasure survives kill/restart cycles byte-identically.
package dataset

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/dnssec"
	"repro/internal/failpoint"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/rss"
	"repro/internal/segment"
	"repro/internal/vantage"
	"repro/internal/zonemd"
)

// magic identifies the format; version gates incompatible changes.
// Version 2 introduced the sealed-block framing (length + CRC + per-block
// dictionary) that makes recordings crash-recoverable.
const (
	magic   = "RGDS"
	version = 2
)

// record kinds.
const (
	recProbe    = 1
	recTransfer = 2
)

// error classes for transfer outcomes (reconstructed on replay so
// errors.Is keeps working).
const (
	errNone = iota
	errExpired
	errNotIncepted
	errBogus
	errZonemdDigest
	errOther
)

// DefaultBlockBytes is the uncompressed block size at which a Writer seals
// automatically (segment's default; re-exported for callers and docs).
const DefaultBlockBytes = segment.DefaultBlockBytes

// frameHeaderLen is the fixed per-block frame: length, CRC, record count.
const frameHeaderLen = segment.FrameHeaderLen

// Writer records campaign events into sealed blocks.
type Writer struct {
	*segment.Writer

	// Probes and Transfers count written events.
	Probes, Transfers int
}

// hook wires the dataset-owned failpoint site and seal metrics into a
// segment writer. The mid-frame crash site tears the frame on the output
// and parks the error so no later write can extend the torn tail, while
// the recorded sealed offset still ends at the previous block.
func hook(w *segment.Writer) {
	w.CrashHook = func() error { return failpoint.Eval("dataset/seal/partial") }
	w.OnSeal = func(frameBytes int) {
		mBlocksSealed.Inc()
		mBytesSealed.Add(int64(frameBytes))
	}
}

// NewWriter starts a dataset on out, writing the file header immediately.
func NewWriter(out io.Writer) (*Writer, error) {
	seg, err := segment.NewWriter(out, magic, version)
	if err != nil {
		return nil, err
	}
	hook(seg)
	return &Writer{Writer: seg}, nil
}

// writerState is the opaque blob stored in campaign checkpoints.
type writerState struct {
	Offset    int64 `json:"offset"`
	Probes    int   `json:"probes"`
	Transfers int   `json:"transfers"`
}

// ResumeWriter continues an interrupted recording: it truncates out to the
// sealed offset recorded in state (a blob produced by CheckpointSeal),
// positions writes at the new end, and restores the event counters. The
// next block starts with a fresh dictionary, exactly as it would have in an
// uninterrupted run, so the resumed file is byte-identical.
func ResumeWriter(out io.Writer, state []byte) (*Writer, error) {
	var st writerState
	if err := json.Unmarshal(state, &st); err != nil {
		return nil, fmt.Errorf("dataset: bad resume state: %w", err)
	}
	seg, err := segment.Resume(out, magic, st.Offset)
	if err != nil {
		return nil, err
	}
	hook(seg)
	return &Writer{Writer: seg, Probes: st.Probes, Transfers: st.Transfers}, nil
}

// CheckpointSeal implements the campaign's checkpoint protocol
// (measure.Checkpointable): it seals the pending block, syncs the underlying
// file when possible, and returns the writer's resume state for the
// checkpoint sidecar. An injected dataset write error surfaces here before
// any bytes move, so the campaign can count it against the error budget and
// retry.
func (d *Writer) CheckpointSeal() ([]byte, error) {
	if err := failpoint.Eval("dataset/seal"); err != nil {
		return nil, err
	}
	if err := d.Seal(); err != nil {
		return nil, err
	}
	if err := d.Sync(); err != nil {
		return nil, err
	}
	return json.Marshal(writerState{Offset: d.SealedBytes(), Probes: d.Probes, Transfers: d.Transfers})
}

// HandleProbe implements measure.Handler.
func (d *Writer) HandleProbe(e measure.ProbeEvent) {
	if d.Err() != nil {
		return
	}
	d.Uvarint(recProbe)
	d.Uvarint(uint64(e.Tick.Index))
	d.Uvarint(uint64(e.Tick.Time.Unix()))
	d.Uvarint(uint64(e.VPIdx))
	d.Intern(targetKey(e.Target))
	flags := uint64(0)
	if e.Lost {
		flags |= 1
	}
	if e.STLOK {
		flags |= 2
	}
	if e.SiteKind == 1 {
		flags |= 4
	}
	if e.Degraded {
		flags |= 8
	}
	d.Uvarint(flags)
	d.Probes++
	mRecords.Inc()
	if e.Lost {
		d.EndRecord()
		return
	}
	d.Intern(e.SiteID)
	d.Intern(e.Identifier)
	d.Intern(e.Facility)
	d.Intern(e.SiteCity.IATA)
	d.Uvarint(uint64(e.RTTms * 100)) // centi-milliseconds
	d.Uvarint(uint64(len(e.ASPath)))
	for _, asn := range e.ASPath {
		d.Uvarint(uint64(asn))
	}
	d.Intern(e.SecondToLast)
	d.EndRecord()
}

// HandleTransfer implements measure.Handler.
func (d *Writer) HandleTransfer(e measure.TransferEvent) {
	if d.Err() != nil {
		return
	}
	d.Uvarint(recTransfer)
	d.Uvarint(uint64(e.Tick.Index))
	d.Uvarint(uint64(e.Tick.Time.Unix()))
	d.Uvarint(uint64(e.VPIdx))
	d.Intern(targetKey(e.Target))
	flags := uint64(0)
	if e.Lost {
		flags |= 1
	}
	if e.ComparisonMismatch {
		flags |= 2
	}
	if e.Bitflip != nil {
		flags |= 4
	}
	if e.Degraded {
		flags |= 8
	}
	d.Uvarint(flags)
	d.Transfers++
	mRecords.Inc()
	if e.Lost {
		d.EndRecord()
		return
	}
	d.Uvarint(uint64(e.Serial))
	d.Uvarint(uint64(e.Fault))
	d.Uvarint(uint64(classifyErr(e.DNSSECErr)))
	d.Uvarint(uint64(classifyErr(e.ZonemdErr)))
	if e.Bitflip != nil {
		d.Intern(e.Bitflip.Before)
		d.Intern(e.Bitflip.After)
	}
	d.EndRecord()
}

func classifyErr(err error) int {
	switch {
	case err == nil:
		return errNone
	case errors.Is(err, dnssec.ErrSignatureExpired):
		return errExpired
	case errors.Is(err, dnssec.ErrSignatureNotIncepted):
		return errNotIncepted
	case errors.Is(err, dnssec.ErrBogusSignature):
		return errBogus
	case errors.Is(err, zonemd.ErrDigestMismatch):
		return errZonemdDigest
	default:
		return errOther
	}
}

func rebuildErr(class int) error {
	switch class {
	case errNone:
		return nil
	case errExpired:
		return dnssec.ErrSignatureExpired
	case errNotIncepted:
		return dnssec.ErrSignatureNotIncepted
	case errBogus:
		return dnssec.ErrBogusSignature
	case errZonemdDigest:
		return zonemd.ErrDigestMismatch
	default:
		return errors.New("dataset: unclassified validation error")
	}
}

// targetKey encodes a service target compactly ("b4o" = b.root IPv4 old).
func targetKey(t rss.ServiceAddr) string {
	fam := byte('4')
	if t.Family == 1 {
		fam = '6'
	}
	if t.Old {
		return string(t.Letter) + string(fam) + "o"
	}
	return string(t.Letter) + string(fam)
}

var targetsByKey = func() map[string]rss.ServiceAddr {
	m := make(map[string]rss.ServiceAddr)
	for _, t := range rss.AllServiceAddrs() {
		m[targetKey(t)] = t
	}
	return m
}()

// Reader replays a dataset into handlers, tolerating a torn trailing block.
// Decoding is block-at-a-time: the segment framing makes every sealed block
// independently decompressible, which is what lets ReplayWith fan blocks
// out to a worker pool while an ordered drain keeps delivery byte-identical
// to a serial read.
type Reader struct {
	*segment.Reader
	pop *vantage.Population
	// cities resolves metro codes back to geo.City.
	cities map[string]geo.City
}

// NewReader opens a dataset. The population must be the one the recording
// campaign used (the same world seed reproduces it). The header parse stays
// here (not in segment) for the legacy-format diagnostic.
func NewReader(in io.Reader, pop *vantage.Population) (*Reader, error) {
	raw := bufio.NewReader(in)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(raw, head); err != nil || string(head) != magic {
		if len(head) >= 2 && head[0] == 0x1f && head[1] == 0x8b {
			return nil, errors.New("dataset: legacy v1 (gzip) format; re-record with this version")
		}
		return nil, errors.New("dataset: bad magic")
	}
	v, err := binary.ReadUvarint(raw)
	if err != nil || v != version {
		return nil, fmt.Errorf("dataset: unsupported version %d", v)
	}
	cities := make(map[string]geo.City)
	for _, c := range geo.Cities() {
		cities[c.IATA] = c
	}
	return &Reader{Reader: segment.NewReaderAt(raw), pop: pop, cities: cities}, nil
}

// replayEvent is one decoded record, tagged with its kind.
type replayEvent struct {
	kind     uint64
	probe    measure.ProbeEvent
	transfer measure.TransferEvent
}

// blockResult is the outcome of decoding one block. events always holds the
// successfully decoded prefix; exactly one of the error fields may be set.
// tearErr means the block's bytes are corrupt (CRC or DEFLATE) — replay
// truncates there, delivering nothing from this block. decodeErr is a real
// format error inside verified bytes — replay delivers the prefix, then
// fails, exactly as the old record-interleaved loop did.
type blockResult struct {
	events    []replayEvent
	tearErr   error
	decodeErr error
}

// decodeBlock verifies and decodes one sealed block. It is a pure function
// of the frame plus the shared read-only population/city tables, so any
// worker can run it for any block.
func (d *Reader) decodeBlock(f segment.Frame) blockResult {
	payload, err := segment.Decompress(f)
	if err != nil {
		return blockResult{tearErr: err}
	}
	dec := blockDecoder{
		rr:  segment.NewRecordReader(payload),
		pop: d.pop, cities: d.cities,
	}
	return dec.decodeAll(f.Count)
}

// blockDecoder decodes the records of a single decompressed block.
type blockDecoder struct {
	rr     *segment.RecordReader
	pop    *vantage.Population
	cities map[string]geo.City
}

// decodeAll decodes records until the payload is exhausted, enforcing the
// declared record count in both directions.
func (d *blockDecoder) decodeAll(count uint32) blockResult {
	res := blockResult{events: make([]replayEvent, 0, count)}
	left := count
	for d.rr.Len() > 0 {
		kind, err := d.uvarint()
		if err != nil {
			res.decodeErr = fmt.Errorf("dataset: record kind: %w", err)
			return res
		}
		if left == 0 {
			res.decodeErr = errors.New("dataset: more records than block header declared")
			return res
		}
		left--
		switch kind {
		case recProbe:
			e, err := d.readProbe()
			if err != nil {
				res.decodeErr = err
				return res
			}
			res.events = append(res.events, replayEvent{kind: recProbe, probe: e})
		case recTransfer:
			e, err := d.readTransfer()
			if err != nil {
				res.decodeErr = err
				return res
			}
			res.events = append(res.events, replayEvent{kind: recTransfer, transfer: e})
		default:
			res.decodeErr = fmt.Errorf("dataset: unknown record kind %d", kind)
			return res
		}
	}
	if left != 0 {
		res.decodeErr = fmt.Errorf("dataset: block ended with %d records unread", left)
	}
	return res
}

func (d *blockDecoder) uvarint() (uint64, error) { return d.rr.Uvarint() }

func (d *blockDecoder) str() (string, error) { return d.rr.Str() }

// Replay streams every event into the handlers, returning the counts. A
// torn trailing block (crash mid-write) is truncated, not an error; check
// Torn() to distinguish a clean end from a recovered one. Replay is the
// serial form of ReplayWith — see there for parallel decode, checkpoints,
// and resume.
func (d *Reader) Replay(handlers ...measure.Handler) (probes, transfers int, err error) {
	return d.ReplayWith(ReplayOptions{}, handlers...)
}

func (d *blockDecoder) readCommon() (measure.Tick, int, rss.ServiceAddr, uint64, error) {
	idx, err := d.uvarint()
	if err != nil {
		return measure.Tick{}, 0, rss.ServiceAddr{}, 0, err
	}
	unix, err := d.uvarint()
	if err != nil {
		return measure.Tick{}, 0, rss.ServiceAddr{}, 0, err
	}
	vpIdx, err := d.uvarint()
	if err != nil {
		return measure.Tick{}, 0, rss.ServiceAddr{}, 0, err
	}
	if int(vpIdx) >= len(d.pop.VPs) {
		return measure.Tick{}, 0, rss.ServiceAddr{}, 0, errors.New("dataset: VP index out of range")
	}
	tk, err := d.str()
	if err != nil {
		return measure.Tick{}, 0, rss.ServiceAddr{}, 0, err
	}
	target, ok := targetsByKey[tk]
	if !ok {
		return measure.Tick{}, 0, rss.ServiceAddr{}, 0, fmt.Errorf("dataset: unknown target %q", tk)
	}
	flags, err := d.uvarint()
	if err != nil {
		return measure.Tick{}, 0, rss.ServiceAddr{}, 0, err
	}
	tick := measure.Tick{Index: int(idx), Time: time.Unix(int64(unix), 0).UTC()}
	return tick, int(vpIdx), target, flags, nil
}

func (d *blockDecoder) readProbe() (measure.ProbeEvent, error) {
	tick, vpIdx, target, flags, err := d.readCommon()
	if err != nil {
		return measure.ProbeEvent{}, err
	}
	e := measure.ProbeEvent{
		Tick: tick, VP: &d.pop.VPs[vpIdx], VPIdx: vpIdx, Target: target,
		Lost:     flags&1 != 0,
		STLOK:    flags&2 != 0,
		Degraded: flags&8 != 0,
	}
	if flags&4 != 0 {
		e.SiteKind = 1
	}
	if e.Lost {
		return e, nil
	}
	if e.SiteID, err = d.str(); err != nil {
		return e, err
	}
	if e.Identifier, err = d.str(); err != nil {
		return e, err
	}
	if e.Facility, err = d.str(); err != nil {
		return e, err
	}
	iata, err := d.str()
	if err != nil {
		return e, err
	}
	e.SiteCity = d.cities[iata]
	rtt, err := d.uvarint()
	if err != nil {
		return e, err
	}
	e.RTTms = float64(rtt) / 100
	n, err := d.uvarint()
	if err != nil {
		return e, err
	}
	if n > 64 {
		return e, errors.New("dataset: implausible AS path length")
	}
	e.ASPath = make([]int, n)
	for i := range e.ASPath {
		asn, err := d.uvarint()
		if err != nil {
			return e, err
		}
		e.ASPath[i] = int(asn)
	}
	if e.SecondToLast, err = d.str(); err != nil {
		return e, err
	}
	return e, nil
}

func (d *blockDecoder) readTransfer() (measure.TransferEvent, error) {
	tick, vpIdx, target, flags, err := d.readCommon()
	if err != nil {
		return measure.TransferEvent{}, err
	}
	e := measure.TransferEvent{
		Tick: tick, VP: &d.pop.VPs[vpIdx], VPIdx: vpIdx, Target: target,
		Lost:               flags&1 != 0,
		ComparisonMismatch: flags&2 != 0,
		Degraded:           flags&8 != 0,
	}
	if e.Lost {
		return e, nil
	}
	serial, err := d.uvarint()
	if err != nil {
		return e, err
	}
	e.Serial = uint32(serial)
	fault, err := d.uvarint()
	if err != nil {
		return e, err
	}
	e.Fault = faults.Kind(fault)
	dclass, err := d.uvarint()
	if err != nil {
		return e, err
	}
	e.DNSSECErr = rebuildErr(int(dclass))
	zclass, err := d.uvarint()
	if err != nil {
		return e, err
	}
	e.ZonemdErr = rebuildErr(int(zclass))
	if flags&4 != 0 {
		var flip faults.Bitflip
		if flip.Before, err = d.str(); err != nil {
			return e, err
		}
		if flip.After, err = d.str(); err != nil {
			return e, err
		}
		e.Bitflip = &flip
	}
	return e, nil
}

// Close releases the reader (nothing to release in the block format; kept
// for API symmetry with Writer).
func (d *Reader) Close() error { return nil }
