package dataset

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/dnssec"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/rss"
	"repro/internal/topology"
	"repro/internal/vantage"
)

func testWorld(t *testing.T) *measure.World {
	t.Helper()
	cfg := measure.DefaultConfig()
	cfg.TLDCount = 10
	topoCfg := topology.Config{
		Seed: 8,
		StubsPerRegion: map[geo.Region]int{
			geo.Africa: 3, geo.Asia: 5, geo.Europe: 15,
			geo.NorthAmerica: 8, geo.SouthAmerica: 4, geo.Oceania: 4,
		},
		Tier2PerRegion: map[geo.Region]int{
			geo.Africa: 2, geo.Asia: 2, geo.Europe: 4,
			geo.NorthAmerica: 3, geo.SouthAmerica: 2, geo.Oceania: 2,
		},
	}
	vpCfg := vantage.DefaultConfig()
	vpCfg.Scale = 30
	w, err := measure.NewWorld(cfg, topoCfg, vpCfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// collector keeps events for comparison.
type collector struct {
	probes    []measure.ProbeEvent
	transfers []measure.TransferEvent
}

func (c *collector) HandleProbe(e measure.ProbeEvent)       { c.probes = append(c.probes, e) }
func (c *collector) HandleTransfer(e measure.TransferEvent) { c.transfers = append(c.transfers, e) }

func TestRecordReplayRoundTrip(t *testing.T) {
	w := testWorld(t)
	cfg := measure.DefaultConfig()
	cfg.Start = time.Date(2023, 10, 2, 21, 0, 0, 0, time.UTC) // covers a skew window
	cfg.End = cfg.Start.Add(3 * time.Hour)
	cfg.Scale = 1
	cfg.TLDCount = 10
	campaign := measure.NewCampaign(cfg, w)

	var buf bytes.Buffer
	writer, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := &collector{}
	if err := campaign.Run(writer, orig); err != nil {
		t.Fatal(err)
	}
	if err := writer.Close(); err != nil {
		t.Fatal(err)
	}
	if writer.Probes != len(orig.probes) || writer.Transfers != len(orig.transfers) {
		t.Fatalf("writer counts %d/%d vs %d/%d",
			writer.Probes, writer.Transfers, len(orig.probes), len(orig.transfers))
	}

	reader, err := NewReader(&buf, w.Population)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	replayed := &collector{}
	probes, transfers, err := reader.Replay(replayed)
	if err != nil {
		t.Fatal(err)
	}
	if probes != len(orig.probes) || transfers != len(orig.transfers) {
		t.Fatalf("replayed %d/%d, want %d/%d", probes, transfers,
			len(orig.probes), len(orig.transfers))
	}

	// Every probe field the analyses use must survive the round trip.
	for i := range orig.probes {
		o, r := orig.probes[i], replayed.probes[i]
		if o.Tick.Index != r.Tick.Index || !o.Tick.Time.Equal(r.Tick.Time) {
			t.Fatalf("probe %d tick: %+v vs %+v", i, o.Tick, r.Tick)
		}
		if o.VPIdx != r.VPIdx || o.VP.ID != r.VP.ID {
			t.Fatalf("probe %d VP mismatch", i)
		}
		if o.Target != r.Target || o.Lost != r.Lost {
			t.Fatalf("probe %d target/lost mismatch", i)
		}
		if o.Lost {
			continue
		}
		if o.SiteID != r.SiteID || o.Identifier != r.Identifier ||
			o.Facility != r.Facility || o.SiteKind != r.SiteKind {
			t.Fatalf("probe %d site fields: %+v vs %+v", i, o, r)
		}
		if o.SiteCity.IATA != r.SiteCity.IATA {
			t.Fatalf("probe %d city %s vs %s", i, o.SiteCity.IATA, r.SiteCity.IATA)
		}
		if diff := o.RTTms - r.RTTms; diff > 0.011 || diff < -0.011 {
			t.Fatalf("probe %d RTT %.4f vs %.4f", i, o.RTTms, r.RTTms)
		}
		if !reflect.DeepEqual(o.ASPath, r.ASPath) {
			t.Fatalf("probe %d path %v vs %v", i, o.ASPath, r.ASPath)
		}
		if o.SecondToLast != r.SecondToLast || o.STLOK != r.STLOK {
			t.Fatalf("probe %d STL mismatch", i)
		}
	}
	// Transfer classifications must survive via errors.Is.
	skewSeen := false
	for i := range orig.transfers {
		o, r := orig.transfers[i], replayed.transfers[i]
		if o.Serial != r.Serial || o.Fault != r.Fault || o.Lost != r.Lost {
			t.Fatalf("transfer %d fields mismatch", i)
		}
		if o.Fault == faults.ClockSkew {
			skewSeen = true
			if !errors.Is(r.DNSSECErr, dnssec.ErrSignatureNotIncepted) {
				t.Fatalf("transfer %d lost classification: %v", i, r.DNSSECErr)
			}
		}
		if (o.Bitflip == nil) != (r.Bitflip == nil) {
			t.Fatalf("transfer %d bitflip presence mismatch", i)
		}
	}
	if !skewSeen {
		t.Error("test window produced no skew faults; widen it")
	}
}

func TestCompressionEffective(t *testing.T) {
	w := testWorld(t)
	cfg := measure.DefaultConfig()
	cfg.Start = time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC)
	cfg.End = cfg.Start.Add(4 * time.Hour)
	cfg.Scale = 1
	cfg.TLDCount = 10
	var buf bytes.Buffer
	writer, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := measure.NewCampaign(cfg, w).Run(writer); err != nil {
		t.Fatal(err)
	}
	if err := writer.Close(); err != nil {
		t.Fatal(err)
	}
	events := writer.Probes + writer.Transfers
	bytesPerEvent := float64(buf.Len()) / float64(events)
	// The paper compresses 7.7B queries + 169M traceroutes to ~0.5 TB; our
	// dictionary+gzip format should stay well under 64 bytes per event.
	if bytesPerEvent > 64 {
		t.Errorf("%.1f bytes/event; dictionary compression ineffective", bytesPerEvent)
	}
	t.Logf("%d events in %d bytes (%.1f B/event)", events, buf.Len(), bytesPerEvent)
}

// synthPop is a lightweight population for framing-level tests that never
// inspect VP fields.
func synthPop() *vantage.Population {
	return &vantage.Population{VPs: make([]vantage.VP, 8)}
}

func TestReaderRejectsGarbage(t *testing.T) {
	pop := synthPop()
	if _, err := NewReader(bytes.NewReader([]byte("not a dataset")), pop); err == nil {
		t.Error("garbage accepted")
	}
	// A legacy v1 recording (single gzip stream) must be rejected with a
	// recognizable message, not a generic magic failure.
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	gz.Write([]byte("XXXX"))
	gz.Close()
	_, err := NewReader(&buf, pop)
	if err == nil || !strings.Contains(err.Error(), "legacy v1") {
		t.Errorf("legacy gzip: err = %v, want legacy-v1 rejection", err)
	}
	// Right magic, future version.
	future := append([]byte(magic), 0x7f)
	if _, err := NewReader(bytes.NewReader(future), pop); err == nil {
		t.Error("future version accepted")
	}
}

// synthProbe builds a deterministic probe event stream for framing tests.
func synthProbe(i int) measure.ProbeEvent {
	targets := rss.AllServiceAddrs()
	return measure.ProbeEvent{
		Tick:         measure.Tick{Index: i, Time: time.Unix(int64(1696118400+60*i), 0).UTC()},
		VPIdx:        i % 8,
		Target:       targets[i%len(targets)],
		SiteID:       "site-" + string(rune('a'+i%7)),
		Identifier:   "ns1.example",
		Facility:     "fac-" + string(rune('a'+i%3)),
		RTTms:        float64(i%120) + 0.25,
		ASPath:       []int{64500, 64501 + i%4, 64510},
		SecondToLast: "router-" + string(rune('a'+i%5)),
		STLOK:        i%2 == 0,
	}
}

// writeSynthFile records n synthetic probes with a small block size and
// returns the raw bytes.
func writeSynthFile(t *testing.T, n, blockBytes int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.BlockBytes = blockBytes
	for i := 0; i < n; i++ {
		w.HandleProbe(synthProbe(i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// walkFrames parses the sealed-block framing, returning each frame's start
// offset and record count. It fails the test on any inconsistency, so it
// doubles as a structural check of the writer's output.
func walkFrames(t *testing.T, data []byte) (starts []int, counts []uint32) {
	t.Helper()
	if string(data[:len(magic)]) != magic {
		t.Fatal("bad magic in synthetic file")
	}
	v, n := binary.Uvarint(data[len(magic):])
	if n <= 0 || v != version {
		t.Fatalf("bad version varint (%d, %d)", v, n)
	}
	off := len(magic) + n
	for off < len(data) {
		if off+frameHeaderLen > len(data) {
			t.Fatalf("trailing %d bytes are not a frame", len(data)-off)
		}
		starts = append(starts, off)
		clen := binary.BigEndian.Uint32(data[off:])
		counts = append(counts, binary.BigEndian.Uint32(data[off+8:]))
		off += frameHeaderLen + int(clen)
	}
	if off != len(data) {
		t.Fatalf("frame walk overshot: %d != %d", off, len(data))
	}
	return starts, counts
}

// countingHandler tallies replayed events.
type countingHandler struct{ probes, transfers int }

func (c *countingHandler) HandleProbe(measure.ProbeEvent)       { c.probes++ }
func (c *countingHandler) HandleTransfer(measure.TransferEvent) { c.transfers++ }

// TestTornTailEveryOffset truncates a recording at every byte offset inside
// its final block and asserts the Reader recovers exactly the sealed prefix:
// no error, Torn() set, and precisely the records of the earlier blocks.
func TestTornTailEveryOffset(t *testing.T) {
	const events = 160
	data := writeSynthFile(t, events, 1024)
	starts, counts := walkFrames(t, data)
	if len(starts) < 3 {
		t.Fatalf("want >=3 blocks for a meaningful tail test, got %d", len(starts))
	}
	lastStart := starts[len(starts)-1]
	sealedRecords := 0
	for _, c := range counts[:len(counts)-1] {
		sealedRecords += int(c)
	}
	pop := synthPop()

	// The intact file replays everything, un-torn.
	full := &countingHandler{}
	r, err := NewReader(bytes.NewReader(data), pop)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Replay(full); err != nil || r.Torn() {
		t.Fatalf("intact replay: err=%v torn=%v", err, r.Torn())
	}
	if full.probes != events {
		t.Fatalf("intact replay saw %d/%d probes", full.probes, events)
	}

	// Truncation exactly at the last sealed boundary is a clean end.
	r, err = NewReader(bytes.NewReader(data[:lastStart]), pop)
	if err != nil {
		t.Fatal(err)
	}
	h := &countingHandler{}
	if _, _, err := r.Replay(h); err != nil {
		t.Fatal(err)
	}
	if r.Torn() || h.probes != sealedRecords {
		t.Fatalf("boundary truncation: torn=%v probes=%d want %d", r.Torn(), h.probes, sealedRecords)
	}

	// Every cut inside the final block must recover the sealed prefix.
	for cut := lastStart + 1; cut < len(data); cut++ {
		r, err := NewReader(bytes.NewReader(data[:cut]), pop)
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		h := &countingHandler{}
		probes, _, err := r.Replay(h)
		if err != nil {
			t.Fatalf("cut %d: replay error %v (torn tails must truncate cleanly)", cut, err)
		}
		if !r.Torn() {
			t.Fatalf("cut %d: torn tail not flagged", cut)
		}
		if r.TornReason() == nil {
			t.Fatalf("cut %d: no torn reason", cut)
		}
		if probes != sealedRecords || h.probes != sealedRecords {
			t.Fatalf("cut %d: recovered %d records, want sealed prefix %d", cut, probes, sealedRecords)
		}
	}
}

// TestCorruptBlockTruncates flips one payload byte of the final block: the
// CRC catches it and the Reader truncates to the sealed prefix.
func TestCorruptBlockTruncates(t *testing.T) {
	data := writeSynthFile(t, 160, 1024)
	starts, counts := walkFrames(t, data)
	lastStart := starts[len(starts)-1]
	sealedRecords := 0
	for _, c := range counts[:len(counts)-1] {
		sealedRecords += int(c)
	}
	corrupt := append([]byte(nil), data...)
	corrupt[lastStart+frameHeaderLen+3] ^= 0x40

	r, err := NewReader(bytes.NewReader(corrupt), synthPop())
	if err != nil {
		t.Fatal(err)
	}
	h := &countingHandler{}
	probes, _, err := r.Replay(h)
	if err != nil {
		t.Fatalf("corrupt tail must truncate, got error %v", err)
	}
	if !r.Torn() || !strings.Contains(r.TornReason().Error(), "CRC") {
		t.Fatalf("torn=%v reason=%v, want CRC mismatch", r.Torn(), r.TornReason())
	}
	if probes != sealedRecords {
		t.Fatalf("recovered %d records, want %d", probes, sealedRecords)
	}
}

// TestResumeWriterByteIdentical interrupts a recording after a checkpoint
// seal — leaving both a sealed-but-uncheckpointed block and torn garbage on
// disk — resumes from the checkpoint state, and demands the final file be
// byte-identical to an uninterrupted recording with the same seal cadence.
func TestResumeWriterByteIdentical(t *testing.T) {
	const blockBytes = 1024

	// Reference: uninterrupted, one checkpoint seal after 100 events.
	var ref bytes.Buffer
	w, err := NewWriter(&ref)
	if err != nil {
		t.Fatal(err)
	}
	w.BlockBytes = blockBytes
	for i := 0; i < 100; i++ {
		w.HandleProbe(synthProbe(i))
	}
	refState, err := w.CheckpointSeal()
	if err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 200; i++ {
		w.HandleProbe(synthProbe(i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: same 100 events, checkpoint, then 50 more events
	// sealed *after* the checkpoint, then a torn partial write, then crash.
	path := filepath.Join(t.TempDir(), "interrupted.dat")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	w2.BlockBytes = blockBytes
	for i := 0; i < 100; i++ {
		w2.HandleProbe(synthProbe(i))
	}
	state, err := w2.CheckpointSeal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(state, refState) {
		t.Fatalf("checkpoint states diverge: %s vs %s", state, refState)
	}
	for i := 100; i < 150; i++ {
		w2.HandleProbe(synthProbe(i))
	}
	if err := w2.Seal(); err != nil { // durable but not checkpointed
		t.Fatal(err)
	}
	f.Write([]byte("partial frame torn by the crash"))
	f.Close() // no Writer.Close: the process died

	// Restart: resume from the checkpoint blob and replay the tail events.
	f2, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	w3, err := ResumeWriter(f2, state)
	if err != nil {
		t.Fatal(err)
	}
	w3.BlockBytes = blockBytes
	if w3.Probes != 100 || w3.Transfers != 0 {
		t.Fatalf("resumed counters %d/%d", w3.Probes, w3.Transfers)
	}
	for i := 100; i < 200; i++ {
		w3.HandleProbe(synthProbe(i))
	}
	if err := w3.Close(); err != nil {
		t.Fatal(err)
	}
	f2.Close()

	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref.Bytes()) {
		t.Fatalf("resumed file differs from uninterrupted reference: %d vs %d bytes", len(got), ref.Len())
	}
}

func TestTargetKeyBijective(t *testing.T) {
	seen := map[string]bool{}
	for _, tgt := range rss.AllServiceAddrs() {
		k := targetKey(tgt)
		if seen[k] {
			t.Fatalf("duplicate key %q", k)
		}
		seen[k] = true
		back, ok := targetsByKey[k]
		if !ok || back != tgt {
			t.Fatalf("key %q does not round trip", k)
		}
	}
}
