package dataset

import (
	"bytes"
	"compress/gzip"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/dnssec"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/rss"
	"repro/internal/topology"
	"repro/internal/vantage"
)

func testWorld(t *testing.T) *measure.World {
	t.Helper()
	cfg := measure.DefaultConfig()
	cfg.TLDCount = 10
	topoCfg := topology.Config{
		Seed: 8,
		StubsPerRegion: map[geo.Region]int{
			geo.Africa: 3, geo.Asia: 5, geo.Europe: 15,
			geo.NorthAmerica: 8, geo.SouthAmerica: 4, geo.Oceania: 4,
		},
		Tier2PerRegion: map[geo.Region]int{
			geo.Africa: 2, geo.Asia: 2, geo.Europe: 4,
			geo.NorthAmerica: 3, geo.SouthAmerica: 2, geo.Oceania: 2,
		},
	}
	vpCfg := vantage.DefaultConfig()
	vpCfg.Scale = 30
	w, err := measure.NewWorld(cfg, topoCfg, vpCfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// collector keeps events for comparison.
type collector struct {
	probes    []measure.ProbeEvent
	transfers []measure.TransferEvent
}

func (c *collector) HandleProbe(e measure.ProbeEvent)       { c.probes = append(c.probes, e) }
func (c *collector) HandleTransfer(e measure.TransferEvent) { c.transfers = append(c.transfers, e) }

func TestRecordReplayRoundTrip(t *testing.T) {
	w := testWorld(t)
	cfg := measure.DefaultConfig()
	cfg.Start = time.Date(2023, 10, 2, 21, 0, 0, 0, time.UTC) // covers a skew window
	cfg.End = cfg.Start.Add(3 * time.Hour)
	cfg.Scale = 1
	cfg.TLDCount = 10
	campaign := measure.NewCampaign(cfg, w)

	var buf bytes.Buffer
	writer, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := &collector{}
	if err := campaign.Run(writer, orig); err != nil {
		t.Fatal(err)
	}
	if err := writer.Close(); err != nil {
		t.Fatal(err)
	}
	if writer.Probes != len(orig.probes) || writer.Transfers != len(orig.transfers) {
		t.Fatalf("writer counts %d/%d vs %d/%d",
			writer.Probes, writer.Transfers, len(orig.probes), len(orig.transfers))
	}

	reader, err := NewReader(&buf, w.Population)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	replayed := &collector{}
	probes, transfers, err := reader.Replay(replayed)
	if err != nil {
		t.Fatal(err)
	}
	if probes != len(orig.probes) || transfers != len(orig.transfers) {
		t.Fatalf("replayed %d/%d, want %d/%d", probes, transfers,
			len(orig.probes), len(orig.transfers))
	}

	// Every probe field the analyses use must survive the round trip.
	for i := range orig.probes {
		o, r := orig.probes[i], replayed.probes[i]
		if o.Tick.Index != r.Tick.Index || !o.Tick.Time.Equal(r.Tick.Time) {
			t.Fatalf("probe %d tick: %+v vs %+v", i, o.Tick, r.Tick)
		}
		if o.VPIdx != r.VPIdx || o.VP.ID != r.VP.ID {
			t.Fatalf("probe %d VP mismatch", i)
		}
		if o.Target != r.Target || o.Lost != r.Lost {
			t.Fatalf("probe %d target/lost mismatch", i)
		}
		if o.Lost {
			continue
		}
		if o.SiteID != r.SiteID || o.Identifier != r.Identifier ||
			o.Facility != r.Facility || o.SiteKind != r.SiteKind {
			t.Fatalf("probe %d site fields: %+v vs %+v", i, o, r)
		}
		if o.SiteCity.IATA != r.SiteCity.IATA {
			t.Fatalf("probe %d city %s vs %s", i, o.SiteCity.IATA, r.SiteCity.IATA)
		}
		if diff := o.RTTms - r.RTTms; diff > 0.011 || diff < -0.011 {
			t.Fatalf("probe %d RTT %.4f vs %.4f", i, o.RTTms, r.RTTms)
		}
		if !reflect.DeepEqual(o.ASPath, r.ASPath) {
			t.Fatalf("probe %d path %v vs %v", i, o.ASPath, r.ASPath)
		}
		if o.SecondToLast != r.SecondToLast || o.STLOK != r.STLOK {
			t.Fatalf("probe %d STL mismatch", i)
		}
	}
	// Transfer classifications must survive via errors.Is.
	skewSeen := false
	for i := range orig.transfers {
		o, r := orig.transfers[i], replayed.transfers[i]
		if o.Serial != r.Serial || o.Fault != r.Fault || o.Lost != r.Lost {
			t.Fatalf("transfer %d fields mismatch", i)
		}
		if o.Fault == faults.ClockSkew {
			skewSeen = true
			if !errors.Is(r.DNSSECErr, dnssec.ErrSignatureNotIncepted) {
				t.Fatalf("transfer %d lost classification: %v", i, r.DNSSECErr)
			}
		}
		if (o.Bitflip == nil) != (r.Bitflip == nil) {
			t.Fatalf("transfer %d bitflip presence mismatch", i)
		}
	}
	if !skewSeen {
		t.Error("test window produced no skew faults; widen it")
	}
}

func TestCompressionEffective(t *testing.T) {
	w := testWorld(t)
	cfg := measure.DefaultConfig()
	cfg.Start = time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC)
	cfg.End = cfg.Start.Add(4 * time.Hour)
	cfg.Scale = 1
	cfg.TLDCount = 10
	var buf bytes.Buffer
	writer, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := measure.NewCampaign(cfg, w).Run(writer); err != nil {
		t.Fatal(err)
	}
	if err := writer.Close(); err != nil {
		t.Fatal(err)
	}
	events := writer.Probes + writer.Transfers
	bytesPerEvent := float64(buf.Len()) / float64(events)
	// The paper compresses 7.7B queries + 169M traceroutes to ~0.5 TB; our
	// dictionary+gzip format should stay well under 64 bytes per event.
	if bytesPerEvent > 64 {
		t.Errorf("%.1f bytes/event; dictionary compression ineffective", bytesPerEvent)
	}
	t.Logf("%d events in %d bytes (%.1f B/event)", events, buf.Len(), bytesPerEvent)
}

func TestReaderRejectsGarbage(t *testing.T) {
	w := testWorld(t)
	if _, err := NewReader(bytes.NewReader([]byte("not a dataset")), w.Population); err == nil {
		t.Error("garbage accepted")
	}
	// Valid gzip, wrong magic.
	var buf bytes.Buffer
	gz := newGzip(&buf, t)
	gz.Write([]byte("XXXX"))
	gz.Close()
	if _, err := NewReader(&buf, w.Population); err == nil {
		t.Error("wrong magic accepted")
	}
}

func newGzip(buf *bytes.Buffer, t *testing.T) interface {
	Write([]byte) (int, error)
	Close() error
} {
	t.Helper()
	return gzip.NewWriter(buf)
}

func TestTargetKeyBijective(t *testing.T) {
	seen := map[string]bool{}
	for _, tgt := range rss.AllServiceAddrs() {
		k := targetKey(tgt)
		if seen[k] {
			t.Fatalf("duplicate key %q", k)
		}
		seen[k] = true
		back, ok := targetsByKey[k]
		if !ok || back != tgt {
			t.Fatalf("key %q does not round trip", k)
		}
	}
}
