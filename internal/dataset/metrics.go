package dataset

import "repro/internal/telemetry"

// Dataset counters are stream-class: records, sealed blocks, and sealed
// bytes are pure functions of the event stream (auto-seal points are
// deterministic), so they are checkpointed with the campaign and restored
// on resume to the totals an uninterrupted run would report.
var (
	mRecords      = telemetry.NewCounter("dataset/records")
	mBlocksSealed = telemetry.NewCounter("dataset/blocks_sealed")
	mBytesSealed  = telemetry.NewCounter("dataset/bytes_sealed")
	mReplayed     = telemetry.NewCounter("dataset/replayed")
	// Replay-side counters increment at delivery time (the ordered drain),
	// never in decode workers, so their stream-class determinism holds at
	// any worker count.
	mReplayBlocks      = telemetry.NewCounter("dataset/replay_blocks")
	mReplayCheckpoints = telemetry.NewCounter("dataset/replay_checkpoints")
)
