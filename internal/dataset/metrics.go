package dataset

import "repro/internal/telemetry"

// Dataset counters are stream-class: records, sealed blocks, and sealed
// bytes are pure functions of the event stream (auto-seal points are
// deterministic), so they are checkpointed with the campaign and restored
// on resume to the totals an uninterrupted run would report.
var (
	mRecords      = telemetry.NewCounter("dataset/records")
	mBlocksSealed = telemetry.NewCounter("dataset/blocks_sealed")
	mBytesSealed  = telemetry.NewCounter("dataset/bytes_sealed")
	mReplayed     = telemetry.NewCounter("dataset/replayed")
)
