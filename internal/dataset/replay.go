package dataset

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/failpoint"
	"repro/internal/measure"
	"repro/internal/segment"
	"repro/internal/telemetry"
)

// ReplayOptions configures ReplayWith. The zero value is a plain serial
// replay, identical to Replay.
type ReplayOptions struct {
	// Workers is the number of block-decode workers; <= 1 decodes inline.
	// Delivery order (and thus every handler's output and every
	// stream-class metric) is byte-identical at any worker count: frames
	// are scanned sequentially, decoded in parallel, and drained in frame
	// order by the calling goroutine.
	Workers int
	// CheckpointPath, when set, makes the replay crash-safe: after every
	// CheckpointEvery delivered blocks the accumulated handler state is
	// sealed and written atomically to this sidecar path. Every handler
	// must then implement ReplayCheckpointable.
	CheckpointPath string
	// CheckpointEvery is the number of delivered blocks between
	// checkpoints; 0 means DefaultReplayCheckpointEvery.
	CheckpointEvery int
	// Resume loads CheckpointPath (if it exists), restores handler and
	// telemetry state, and fast-forwards past the checkpointed blocks
	// after verifying the dataset's frame fingerprint still matches.
	Resume bool
}

// DefaultReplayCheckpointEvery is the checkpoint cadence when
// ReplayOptions.CheckpointEvery is zero.
const DefaultReplayCheckpointEvery = 8

// replayCheckpointVersion gates the sidecar schema.
const replayCheckpointVersion = 1

// ReplayCheckpointable is the contract a handler must satisfy to ride a
// replay checkpoint: seal state into a blob, and restore from one. The
// analysis accumulators implement it; so does anything reusing the campaign
// Checkpointable seal with a restore side.
type ReplayCheckpointable interface {
	measure.Checkpointable
	RestoreCheckpoint(state []byte) error
}

// replayCheckpoint is the JSON sidecar. Sig fingerprints the frame headers
// (length, CRC, count) of every delivered block, so a resume over a
// different or rewritten dataset is refused instead of producing silently
// wrong analyses.
type replayCheckpoint struct {
	Version   int      `json:"version"`
	Sig       string   `json:"sig"`
	Blocks    int      `json:"blocks"`
	Probes    int      `json:"probes"`
	Transfers int      `json:"transfers"`
	Handlers  [][]byte `json:"handlers"`
	Telemetry []byte   `json:"telemetry"`
}

// ReplayWith streams every event into the handlers like Replay, with
// block-parallel decode, optional crash-safe checkpoints, and resume. The
// returned counts include fast-forwarded events when resuming (they count
// from the start of the dataset, as an uninterrupted run would report).
func (d *Reader) ReplayWith(opts ReplayOptions, handlers ...measure.Handler) (probes, transfers int, err error) {
	st := &replayState{d: d, handlers: handlers, opts: opts, sig: sha256.New()}
	if opts.CheckpointPath != "" {
		for _, h := range handlers {
			if _, ok := h.(ReplayCheckpointable); !ok {
				return 0, 0, fmt.Errorf("dataset: handler %T cannot ride a replay checkpoint (wants CheckpointSeal + RestoreCheckpoint)", h)
			}
		}
		if opts.CheckpointEvery <= 0 {
			st.opts.CheckpointEvery = DefaultReplayCheckpointEvery
		}
		if opts.Resume {
			if err := st.resume(); err != nil {
				return 0, 0, err
			}
		}
	}
	if opts.Workers <= 1 {
		err = st.runSerial()
	} else {
		err = st.runParallel()
	}
	return st.probes, st.transfers, err
}

// replayState is the per-ReplayWith bookkeeping shared by the serial and
// parallel paths. Everything here is touched only by the calling goroutine
// (the ordered drain); workers see just the Reader's read-only tables.
type replayState struct {
	d        *Reader
	handlers []measure.Handler
	opts     ReplayOptions

	sig       hash.Hash // running fingerprint of delivered frame headers
	blocks    int
	probes    int
	transfers int
}

// drainBlock delivers one decoded block in order: events to handlers,
// counters, fingerprint, checkpoint cadence. A torn block converts to a
// clean end-of-stream (io.EOF) after marking the Reader torn — nothing from
// the torn block, or after it, is ever delivered.
func (st *replayState) drainBlock(f segment.Frame, res blockResult) error {
	if res.tearErr != nil {
		return st.d.Tear(res.tearErr)
	}
	for i := range res.events {
		ev := &res.events[i]
		switch ev.kind {
		case recProbe:
			st.probes++
			mReplayed.Inc()
			for _, h := range st.handlers {
				h.HandleProbe(ev.probe)
			}
		case recTransfer:
			st.transfers++
			mReplayed.Inc()
			for _, h := range st.handlers {
				h.HandleTransfer(ev.transfer)
			}
		}
	}
	if res.decodeErr != nil {
		// Real format error inside CRC-verified bytes: the prefix was
		// delivered (matching the old record-interleaved loop), now fail.
		return res.decodeErr
	}
	st.blocks++
	st.sig.Write(f.Hdr[:])
	mReplayBlocks.Inc()
	if st.opts.CheckpointPath != "" && st.blocks%st.opts.CheckpointEvery == 0 {
		if err := st.checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

func (st *replayState) runSerial() error {
	for {
		f, err := st.d.NextFrame()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if err := st.drainBlock(f, st.d.decodeBlock(f)); err != nil {
			if errors.Is(err, io.EOF) {
				return nil // torn block: truncated cleanly
			}
			return err
		}
	}
}

// replayJob carries one scanned frame to a decode worker and its result
// back to the drain. scanErr marks the scanner's terminal tear, delivered
// in order like any block so truncation lands at the right position.
type replayJob struct {
	f       segment.Frame
	res     chan blockResult
	scanErr error
}

// runParallel mirrors the campaign engine's pool: a sequential scanner
// (frame reads must happen in file order), a bounded worker pool doing the
// CPU work (CRC, DEFLATE, record decode), and a serial ordered drain in the
// calling goroutine so handler delivery is byte-identical to runSerial.
func (st *replayState) runParallel() error {
	window := st.opts.Workers * 2
	work := make(chan *replayJob, window)
	pending := make(chan *replayJob, window)
	quit := make(chan struct{})
	var quitOnce sync.Once
	stop := func() { quitOnce.Do(func() { close(quit) }) }
	// Join the pool on every exit path, including early error returns: the
	// caller owns the Reader (byte stream and tear state) the moment this
	// function returns, so no scanner or worker may outlive it. stop() is
	// registered after wg.Wait so it runs first and unblocks the scanner's
	// quit selects; workers then drain `work` (closed by the scanner) and
	// exit — their result sends never block because res is buffered.
	var wg sync.WaitGroup
	defer wg.Wait()
	defer stop()

	// Scanner: owns the Reader's byte stream, never mutates tear state —
	// truncation is applied by the drain at the torn block's position.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(work)
		defer close(pending)
		for {
			f, err := st.d.ScanFrame()
			if err != nil {
				if !errors.Is(err, io.EOF) {
					select {
					case pending <- &replayJob{scanErr: err}:
					case <-quit:
					}
				}
				return
			}
			j := &replayJob{f: f, res: make(chan blockResult, 1)}
			select {
			case pending <- j:
			case <-quit:
				return
			}
			select {
			case work <- j:
			case <-quit:
				return
			}
		}
	}()
	for i := 0; i < st.opts.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range work {
				j.res <- st.d.decodeBlock(j.f)
			}
		}()
	}
	for j := range pending {
		if j.scanErr != nil {
			st.d.Tear(j.scanErr)
			return nil
		}
		if err := st.drainBlock(j.f, <-j.res); err != nil {
			stop()
			if errors.Is(err, io.EOF) {
				return nil // torn block: truncated cleanly
			}
			return err
		}
	}
	return nil
}

// checkpoint seals handler + telemetry state and writes the sidecar
// atomically. The checkpoint counter increments before the telemetry
// snapshot so the saved state includes this checkpoint, mirroring the
// campaign's convention.
func (st *replayState) checkpoint() error {
	mReplayCheckpoints.Inc()
	cp := replayCheckpoint{
		Version:   replayCheckpointVersion,
		Sig:       hex.EncodeToString(st.sig.Sum(nil)),
		Blocks:    st.blocks,
		Probes:    st.probes,
		Transfers: st.transfers,
	}
	for _, h := range st.handlers {
		blob, err := h.(ReplayCheckpointable).CheckpointSeal()
		if err != nil {
			return fmt.Errorf("dataset: replay checkpoint: %w", err)
		}
		cp.Handlers = append(cp.Handlers, blob)
	}
	cp.Telemetry = telemetry.CheckpointState()
	// The kill site sits between seal and write, the window where a crash
	// proves the previous sidecar (not the in-memory state) is what resume
	// trusts.
	if err := failpoint.Eval("dataset/replay"); err != nil {
		return err
	}
	data, err := json.Marshal(cp)
	if err != nil {
		return err
	}
	return writeReplaySidecar(st.opts.CheckpointPath, data)
}

// writeReplaySidecar persists crash-safely: temp file in the same
// directory, fsync, rename, best-effort directory fsync — a crash leaves
// either the old or the new sidecar, never a torn one.
func writeReplaySidecar(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// resume loads the sidecar (a missing file is a cold start), restores
// handler and telemetry state, and fast-forwards the Reader past the
// checkpointed blocks, re-hashing frame headers to prove the dataset is the
// one the checkpoint describes.
func (st *replayState) resume() error {
	data, err := os.ReadFile(st.opts.CheckpointPath)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	var cp replayCheckpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return fmt.Errorf("dataset: replay checkpoint: %w", err)
	}
	if cp.Version != replayCheckpointVersion {
		return fmt.Errorf("dataset: replay checkpoint version %d, want %d", cp.Version, replayCheckpointVersion)
	}
	if len(cp.Handlers) != len(st.handlers) {
		return fmt.Errorf("dataset: replay checkpoint has %d handler states, replay has %d handlers", len(cp.Handlers), len(st.handlers))
	}
	for i := 0; i < cp.Blocks; i++ {
		f, err := st.d.NextFrame()
		if err != nil {
			return fmt.Errorf("dataset: resume: dataset ends before checkpointed block %d/%d", i+1, cp.Blocks)
		}
		st.sig.Write(f.Hdr[:])
	}
	if hex.EncodeToString(st.sig.Sum(nil)) != cp.Sig {
		return errors.New("dataset: resume: dataset does not match checkpoint fingerprint")
	}
	for i, h := range st.handlers {
		if err := h.(ReplayCheckpointable).RestoreCheckpoint(cp.Handlers[i]); err != nil {
			return fmt.Errorf("dataset: restoring handler %T: %w", h, err)
		}
	}
	if err := telemetry.RestoreState(cp.Telemetry); err != nil {
		return err
	}
	st.blocks = cp.Blocks
	st.probes, st.transfers = cp.Probes, cp.Transfers
	return nil
}
