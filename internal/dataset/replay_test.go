package dataset

// Replay determinism and crash-safety matrix. Everything here pivots on one
// invariant: ReplayWith's observable behavior — handler deliveries, returned
// counts, torn-tail handling, stream-class telemetry — is a pure function of
// the dataset bytes, independent of worker count and of kill/resume cycles.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/dnssec"
	"repro/internal/failpoint"
	"repro/internal/faults"
	"repro/internal/measure"
	"repro/internal/rss"
	"repro/internal/telemetry"
)

// synthTransfer builds a deterministic transfer stream with enough failure
// variety to exercise the integrity taxonomy (reasons, bitflips, serials).
func synthTransfer(i int) measure.TransferEvent {
	targets := rss.AllServiceAddrs()
	e := measure.TransferEvent{
		Tick:   measure.Tick{Index: i, Time: time.Unix(int64(1696118400+60*i), 0).UTC()},
		VPIdx:  i % 8,
		Target: targets[(i*3)%len(targets)],
		Serial: uint32(2023100200 + i/10),
	}
	switch i % 7 {
	case 1:
		e.DNSSECErr = dnssec.ErrSignatureExpired
	case 3:
		e.ZonemdErr = errors.New("synthetic digest mismatch")
		e.Fault = faults.Kind(1)
		e.Bitflip = &faults.Bitflip{RecordIndex: i, Before: "a.tld. A 1.2.3.4", After: "a.tld. A 1.2.3.5"}
	case 5:
		e.Lost = true
	}
	return e
}

// writeMixedFile interleaves probes and transfers with a small block size so
// replays span many sealed blocks.
func writeMixedFile(t testing.TB, n, blockBytes int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.BlockBytes = blockBytes
	for i := 0; i < n; i++ {
		w.HandleProbe(synthProbe(i))
		if i%3 == 0 {
			w.HandleTransfer(synthTransfer(i))
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// replaySys caches one modeled root system for handler construction; the
// accumulators only read it, so sharing across subtests is safe.
var (
	replaySysOnce sync.Once
	replaySysVal  *rss.System
)

func replaySys(t *testing.T) *rss.System {
	replaySysOnce.Do(func() { replaySysVal = testWorld(t).System })
	return replaySysVal
}

// replayHandlers builds the full rootanalyze accumulator set over the synth
// population — the same six handlers the CLI wires up, so the determinism
// matrix tests exactly what production replays.
func replayHandlers(t *testing.T) []measure.Handler {
	t.Helper()
	sys := replaySys(t)
	pop := synthPop()
	return []measure.Handler{
		analysis.NewCoverage(sys),
		analysis.NewStability(),
		analysis.NewColocation(pop),
		analysis.NewDistance(sys, pop),
		analysis.NewRTT(),
		analysis.NewIntegrity(),
	}
}

// sealAll snapshots every handler's state for byte comparison.
func sealAll(t *testing.T, handlers []measure.Handler) [][]byte {
	t.Helper()
	out := make([][]byte, len(handlers))
	for i, h := range handlers {
		blob, err := h.(ReplayCheckpointable).CheckpointSeal()
		if err != nil {
			t.Fatalf("handler %T seal: %v", h, err)
		}
		out[i] = blob
	}
	return out
}

// TestReplayWorkersByteIdentical is the tentpole acceptance test: the same
// dataset replayed at worker counts {1, 4, 8} (plus the zero-value serial
// path) must produce byte-identical accumulator state, identical counts,
// and identical stream-class telemetry.
func TestReplayWorkersByteIdentical(t *testing.T) {
	data := writeMixedFile(t, 600, 1024)
	pop := synthPop()

	type result struct {
		probes, transfers int
		states            [][]byte
		tel               []byte
	}
	run := func(workers int) result {
		telemetry.Reset()
		r, err := NewReader(bytes.NewReader(data), pop)
		if err != nil {
			t.Fatal(err)
		}
		handlers := replayHandlers(t)
		probes, transfers, err := r.ReplayWith(ReplayOptions{Workers: workers}, handlers...)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if r.Torn() {
			t.Fatalf("workers=%d: intact dataset reported torn: %v", workers, r.TornReason())
		}
		return result{probes, transfers, sealAll(t, handlers), telemetry.CheckpointState()}
	}

	ref := run(0)
	if ref.probes == 0 || ref.transfers == 0 {
		t.Fatalf("reference replay saw %d probes, %d transfers; want both > 0", ref.probes, ref.transfers)
	}
	for _, workers := range []int{1, 4, 8} {
		got := run(workers)
		if got.probes != ref.probes || got.transfers != ref.transfers {
			t.Errorf("workers=%d: counts %d/%d, want %d/%d",
				workers, got.probes, got.transfers, ref.probes, ref.transfers)
		}
		for i := range ref.states {
			if !bytes.Equal(got.states[i], ref.states[i]) {
				t.Errorf("workers=%d: handler %d state diverged from serial", workers, i)
			}
		}
		if !bytes.Equal(got.tel, ref.tel) {
			t.Errorf("workers=%d: stream-class telemetry diverged from serial", workers)
		}
	}
}

// TestReplayParallelTornAndCorrupt pins that tear handling is position-exact
// under parallel decode: a torn tail and a corrupt mid-file block must
// truncate at the same record count, with the same torn reason class, at
// every worker count.
func TestReplayParallelTornAndCorrupt(t *testing.T) {
	data := writeMixedFile(t, 600, 1024)
	starts, _ := walkFrames(t, data)
	if len(starts) < 6 {
		t.Fatalf("want >= 6 blocks, got %d", len(starts))
	}
	pop := synthPop()

	cases := []struct {
		name string
		data []byte
	}{
		// Cut mid-payload of the final block.
		{"torn-tail", data[:starts[len(starts)-1]+frameHeaderLen+3]},
		// Flip a payload byte in the third block: CRC catches it and replay
		// must truncate there even though later blocks are intact.
		{"corrupt-mid", func() []byte {
			d := append([]byte(nil), data...)
			d[starts[2]+frameHeaderLen] ^= 0x40
			return d
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			type result struct {
				probes, transfers int
				reason            string
			}
			run := func(workers int) result {
				r, err := NewReader(bytes.NewReader(tc.data), pop)
				if err != nil {
					t.Fatal(err)
				}
				h := &countingHandler{}
				probes, transfers, err := r.ReplayWith(ReplayOptions{Workers: workers}, h)
				if err != nil {
					t.Fatalf("workers=%d: replay error %v (tears must truncate cleanly)", workers, err)
				}
				if !r.Torn() || r.TornReason() == nil {
					t.Fatalf("workers=%d: damage not flagged as torn", workers)
				}
				if probes != h.probes || transfers != h.transfers {
					t.Fatalf("workers=%d: counts %d/%d disagree with handler %d/%d",
						workers, probes, transfers, h.probes, h.transfers)
				}
				return result{probes, transfers, r.TornReason().Error()}
			}
			ref := run(0)
			for _, workers := range []int{1, 4, 8} {
				got := run(workers)
				if got != ref {
					t.Errorf("workers=%d: %+v, serial %+v", workers, got, ref)
				}
			}
		})
	}
}

// TestResumeReplayKillMatrix is the crash-safety acceptance: kill the replay
// at the dataset/replay failpoint (between handler seal and sidecar write),
// restart with Resume, and demand byte-identical accumulator state and
// stream-class telemetry versus an uninterrupted checkpointing run — at
// serial and parallel worker counts.
func TestResumeReplayKillMatrix(t *testing.T) {
	data := writeMixedFile(t, 600, 1024)
	pop := synthPop()
	dir := t.TempDir()

	runRef := func(workers int, ckpt string) (int, int, [][]byte, []byte) {
		telemetry.Reset()
		r, err := NewReader(bytes.NewReader(data), pop)
		if err != nil {
			t.Fatal(err)
		}
		handlers := replayHandlers(t)
		probes, transfers, err := r.ReplayWith(ReplayOptions{
			Workers: workers, CheckpointPath: ckpt, CheckpointEvery: 2,
		}, handlers...)
		if err != nil {
			t.Fatal(err)
		}
		return probes, transfers, sealAll(t, handlers), telemetry.CheckpointState()
	}
	refProbes, refTransfers, refStates, refTel := runRef(1, filepath.Join(dir, "ref.ckpt"))

	for _, workers := range []int{1, 4} {
		for _, killAt := range []int{1, 3} {
			t.Run(fmt.Sprintf("workers=%d/kill=%d", workers, killAt), func(t *testing.T) {
				ckpt := filepath.Join(dir, fmt.Sprintf("w%dk%d.ckpt", workers, killAt))
				opts := ReplayOptions{Workers: workers, CheckpointPath: ckpt, CheckpointEvery: 2}

				telemetry.Reset()
				r, err := NewReader(bytes.NewReader(data), pop)
				if err != nil {
					t.Fatal(err)
				}
				if err := failpoint.Enable(fmt.Sprintf("dataset/replay=kill@%d", killAt)); err != nil {
					t.Fatal(err)
				}
				killed := replayHandlers(t)
				probes, _, runErr := r.ReplayWith(opts, killed...)
				failpoint.Disable()
				if !errors.Is(runErr, failpoint.ErrKilled) {
					t.Fatalf("killed run error = %v, want ErrKilled", runErr)
				}
				if probes >= refProbes {
					t.Fatalf("kill did not interrupt: %d probes >= reference %d", probes, refProbes)
				}
				if killAt > 1 {
					if _, err := os.Stat(ckpt); err != nil {
						t.Fatalf("no sidecar survived the kill: %v", err)
					}
				}

				// "Restart the process": fresh reader, fresh accumulators,
				// zeroed telemetry (SIGKILL loses in-memory counters), resume
				// from whatever sidecar the kill left behind — with kill@1,
				// that is none, and resume must cold-start cleanly.
				telemetry.Reset()
				r2, err := NewReader(bytes.NewReader(data), pop)
				if err != nil {
					t.Fatal(err)
				}
				opts.Resume = true
				resumed := replayHandlers(t)
				gotProbes, gotTransfers, err := r2.ReplayWith(opts, resumed...)
				if err != nil {
					t.Fatalf("resumed run: %v", err)
				}
				if gotProbes != refProbes || gotTransfers != refTransfers {
					t.Errorf("resumed counts %d/%d, want %d/%d",
						gotProbes, gotTransfers, refProbes, refTransfers)
				}
				states := sealAll(t, resumed)
				for i := range refStates {
					if !bytes.Equal(states[i], refStates[i]) {
						t.Errorf("handler %d state differs from uninterrupted run", i)
					}
				}
				if got := telemetry.CheckpointState(); !bytes.Equal(got, refTel) {
					t.Error("stream-class telemetry differs from uninterrupted run")
				}
			})
		}
	}
}

// TestReplayResumeGuards pins the resume failure modes: a fingerprint
// mismatch (different dataset), a handler-count mismatch, and a
// non-checkpointable handler are all refused loudly.
func TestReplayResumeGuards(t *testing.T) {
	data := writeMixedFile(t, 300, 1024)
	pop := synthPop()
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "replay.ckpt")

	// Produce a sidecar from a partial (killed) run.
	r, err := NewReader(bytes.NewReader(data), pop)
	if err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable("dataset/replay=kill@2"); err != nil {
		t.Fatal(err)
	}
	_, _, runErr := r.ReplayWith(ReplayOptions{CheckpointPath: ckpt, CheckpointEvery: 2}, replayHandlers(t)...)
	failpoint.Disable()
	if !errors.Is(runErr, failpoint.ErrKilled) {
		t.Fatalf("setup kill: %v", runErr)
	}

	t.Run("wrong-dataset", func(t *testing.T) {
		// A probes-only recording frames differently from the first block on
		// (a longer recording of the SAME stream would share its sealed
		// prefix, which resume rightly accepts).
		other := writeSynthFile(t, 300, 1024)
		r, err := NewReader(bytes.NewReader(other), pop)
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = r.ReplayWith(ReplayOptions{CheckpointPath: ckpt, Resume: true}, replayHandlers(t)...)
		if err == nil || !strings.Contains(err.Error(), "fingerprint") {
			t.Errorf("resume over wrong dataset: err = %v, want fingerprint refusal", err)
		}
	})
	t.Run("handler-count", func(t *testing.T) {
		r, err := NewReader(bytes.NewReader(data), pop)
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = r.ReplayWith(ReplayOptions{CheckpointPath: ckpt, Resume: true}, replayHandlers(t)[:3]...)
		if err == nil || !strings.Contains(err.Error(), "handler") {
			t.Errorf("resume with fewer handlers: err = %v, want handler-count refusal", err)
		}
	})
	t.Run("not-checkpointable", func(t *testing.T) {
		r, err := NewReader(bytes.NewReader(data), pop)
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = r.ReplayWith(ReplayOptions{CheckpointPath: ckpt}, &countingHandler{})
		if err == nil || !strings.Contains(err.Error(), "CheckpointSeal") {
			t.Errorf("checkpointing a plain handler: err = %v, want capability refusal", err)
		}
	})
	t.Run("cold-start", func(t *testing.T) {
		// Resume with no sidecar on disk is a cold start, not an error.
		r, err := NewReader(bytes.NewReader(data), pop)
		if err != nil {
			t.Fatal(err)
		}
		handlers := replayHandlers(t)
		probes, _, err := r.ReplayWith(ReplayOptions{
			CheckpointPath: filepath.Join(dir, "missing.ckpt"), Resume: true,
		}, handlers...)
		if err != nil || probes == 0 {
			t.Errorf("cold-start resume: probes=%d err=%v", probes, err)
		}
	})
}

// TestAnalysisCheckpointRoundTrip seals every accumulator mid-stream,
// restores the blobs into fresh accumulators, finishes the stream on both,
// and demands byte-identical final state — including in-progress
// per-tick colocation state, which must survive the round trip.
func TestAnalysisCheckpointRoundTrip(t *testing.T) {
	const n = 400
	orig := replayHandlers(t)
	restored := replayHandlers(t)

	feed := func(handlers []measure.Handler, from, to int) {
		pop := synthPop()
		for i := from; i < to; i++ {
			e := synthProbe(i)
			e.VP = &pop.VPs[e.VPIdx]
			for _, h := range handlers {
				h.HandleProbe(e)
			}
			if i%3 == 0 {
				te := synthTransfer(i)
				te.VP = &pop.VPs[te.VPIdx]
				for _, h := range handlers {
					h.HandleTransfer(te)
				}
			}
		}
	}

	// Cut deliberately mid-tick-group so Colocation has in-progress state.
	cut := n/2 + 1
	feed(orig, 0, cut)
	mid := sealAll(t, orig)
	for i, h := range restored {
		if err := h.(ReplayCheckpointable).RestoreCheckpoint(mid[i]); err != nil {
			t.Fatalf("handler %T restore: %v", h, err)
		}
	}
	// A sealed-and-restored accumulator must itself re-seal identically.
	for i, blob := range sealAll(t, restored) {
		if !bytes.Equal(blob, mid[i]) {
			t.Errorf("handler %d: restore+seal not idempotent", i)
		}
	}
	feed(orig, cut, n)
	feed(restored, cut, n)
	finalOrig := sealAll(t, orig)
	finalRestored := sealAll(t, restored)
	for i := range finalOrig {
		if !bytes.Equal(finalOrig[i], finalRestored[i]) {
			t.Errorf("handler %d: final state differs after mid-stream restore", i)
		}
	}
	// The blobs must be valid JSON (the sidecar embeds them verbatim).
	for i, blob := range finalOrig {
		if !json.Valid(blob) {
			t.Errorf("handler %d seal is not valid JSON", i)
		}
	}
}
