package dnsclient

import "time"

// Backoff is the client's retry pacing policy: capped exponential growth
// with deterministic jitter. The zero value waits nothing between attempts,
// which is exactly dig's behavior — the measurement battery's documented
// `+retry=0 +timeout=1` semantics stay byte-for-byte intact unless a caller
// opts in (see DESIGN.md §14 for why the battery default must not change:
// the paper's loss-rate observable *is* the unretried timeout).
//
// Jitter is drawn from splitmix64(Seed, attempt), not from wall clock or
// global rand, so a retrying client under a seeded netem profile re-sends
// at reproducible offsets and a blast run's retry schedule is a pure
// function of its configuration.
type Backoff struct {
	// Base is the delay before the first re-send. 0 disables waiting.
	Base time.Duration
	// Cap bounds the exponential growth; 0 means 8×Base.
	Cap time.Duration
	// Seed roots the jitter stream.
	Seed uint64
}

// splitmix64 is the repo's standard allocation-free seeded generator.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Delay returns the pause taken after send attempt `attempt` (0-based)
// fails, before the next re-send: Base<<attempt capped at Cap, then
// jittered into [d/2, d) so synchronized clients desynchronize. Zero Base
// always returns 0.
func (b Backoff) Delay(attempt int) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	limit := b.Cap
	if limit <= 0 {
		limit = 8 * b.Base
	}
	d := b.Base
	for i := 0; i < attempt && d < limit; i++ {
		d <<= 1
	}
	if d > limit {
		d = limit
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	h := splitmix64(b.Seed ^ uint64(attempt)*0x9e3779b97f4a7c15)
	frac := float64(h>>11) / (1 << 53)
	return half + time.Duration(frac*float64(half))
}
