package dnsclient

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/axfr"
)

// TestBackoffZeroValueIsImmediate pins the battery contract: a zero Backoff
// never waits, so a default client retries exactly like dig (+retry with no
// pause) and the paper's loss-rate observable is untouched.
func TestBackoffZeroValueIsImmediate(t *testing.T) {
	var b Backoff
	for attempt := 0; attempt < 6; attempt++ {
		if d := b.Delay(attempt); d != 0 {
			t.Fatalf("zero Backoff.Delay(%d) = %v, want 0", attempt, d)
		}
	}
}

// TestBackoffGrowthCapAndDeterminism checks the shape of the policy: each
// delay lands in the jitter window [d/2, d) of the capped exponential, the
// sequence is a pure function of the config, and the seed moves the jitter.
func TestBackoffGrowthCapAndDeterminism(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Seed: 1}
	same := Backoff{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Seed: 1}
	other := Backoff{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Seed: 2}
	var differs bool
	for attempt := 0; attempt < 8; attempt++ {
		full := b.Base << attempt
		if full > b.Cap {
			full = b.Cap
		}
		d := b.Delay(attempt)
		if d < full/2 || d >= full {
			t.Errorf("Delay(%d) = %v, want in [%v, %v)", attempt, d, full/2, full)
		}
		if d != same.Delay(attempt) {
			t.Errorf("Delay(%d) differs between identical configs", attempt)
		}
		if d != other.Delay(attempt) {
			differs = true
		}
	}
	if !differs {
		t.Error("different seeds produced identical jitter")
	}
}

// TestBackoffDefaultCap: Cap 0 means 8×Base.
func TestBackoffDefaultCap(t *testing.T) {
	b := Backoff{Base: 5 * time.Millisecond, Seed: 3}
	if d := b.Delay(10); d >= 8*b.Base {
		t.Errorf("Delay(10) = %v, want under the 8×Base default cap %v", d, 8*b.Base)
	}
}

// axfrListener runs a canned per-connection script and counts accepts.
func axfrListener(t *testing.T, accepts *atomic.Int32, handle func(net.Conn)) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepts.Add(1)
			handle(conn)
			conn.Close()
		}
	}()
	return ln
}

// TestTransferZoneRetriesTruncatedTransfer: a transfer cut mid-frame must be
// retried on a fresh connection, once per configured retry, before the
// classified error surfaces.
func TestTransferZoneRetriesTruncatedTransfer(t *testing.T) {
	var accepts atomic.Int32
	ln := axfrListener(t, &accepts, func(conn net.Conn) {
		if _, err := axfr.ReadMessage(conn); err != nil {
			return
		}
		// Promise a 65535-byte frame, deliver five bytes, hang up.
		conn.Write([]byte{0xFF, 0xFF, 1, 2, 3, 4, 5})
	})
	c := New(ln.Addr().String())
	c.Timeout = 200 * time.Millisecond
	c.Retries = 2
	c.Backoff = Backoff{Base: time.Millisecond, Seed: 1}
	if _, err := c.TransferZone(); err == nil {
		t.Fatal("truncated transfer reported success")
	}
	if got := accepts.Load(); got != 3 {
		t.Errorf("server saw %d connections, want 3 (1 try + 2 retries)", got)
	}
}

// TestTransferZoneRefusalNotRetried: REFUSED is an answer, not a transient —
// the client must stop after the first connection however many retries it
// was granted.
func TestTransferZoneRefusalNotRetried(t *testing.T) {
	var accepts atomic.Int32
	ln := axfrListener(t, &accepts, func(conn net.Conn) {
		q, err := axfr.ReadMessage(conn)
		if err != nil {
			return
		}
		_ = axfr.Refuse(conn, q)
	})
	c := New(ln.Addr().String())
	c.Timeout = 200 * time.Millisecond
	c.Retries = 5
	if _, err := c.TransferZone(); !errors.Is(err, axfr.ErrRefused) {
		t.Fatalf("err = %v, want axfr.ErrRefused", err)
	}
	if got := accepts.Load(); got != 1 {
		t.Errorf("server saw %d connections, want 1 (refusals are final)", got)
	}
}
