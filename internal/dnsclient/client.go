// Package dnsclient implements the querying side of the measurement battery:
// UDP queries with timeout and bounded retry (the paper's
// `dig +retry=0 +timeout=1`), TCP fallback on truncation, CHAOS identity
// queries, and AXFR over TCP. It speaks to real sockets; the measure package
// also drives servers in-process through the same message types.
package dnsclient

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/axfr"
	"repro/internal/dnswire"
	"repro/internal/qlog"
	"repro/internal/zone"
)

// Errors returned by the client.
var (
	ErrTimeout    = errors.New("dnsclient: query timed out")
	ErrIDMismatch = errors.New("dnsclient: response ID mismatch")
)

// Client issues DNS queries to one server address. The exported fields are
// configuration: callers set them before the first query and leave them
// alone, so concurrent queries on one client are safe.
type Client struct {
	// Addr is the server's host:port.
	//rootlint:immutable-after-start
	Addr string
	// Timeout bounds each network attempt (dig +timeout). Default 1s.
	//rootlint:immutable-after-start
	Timeout time.Duration
	// Retries is the number of re-sends after the first attempt
	// (dig +retry). The paper's battery uses 0.
	//rootlint:immutable-after-start
	Retries int
	// EDNSSize, when non-zero, attaches an OPT record advertising this
	// payload size with the DO bit set.
	//rootlint:immutable-after-start
	EDNSSize uint16
	// Backoff paces re-sends between retry attempts. The zero value —
	// retry immediately, like dig — is the battery default; see Backoff.
	//rootlint:immutable-after-start
	Backoff Backoff
	// qlog, when set via SetQLog, records one client/query flight-recorder
	// event per sampled Exchange.
	//rootlint:immutable-after-start
	qlog *qlog.Recorder

	mu sync.Mutex
	//rootlint:guardedby mu
	rng *rand.Rand
}

// New returns a client for addr with the paper's dig settings
// (+retry=0 +timeout=1). Query IDs are drawn from a seed derived from addr,
// so a default construction anywhere inside a campaign run is reproducible:
// the same target yields the same ID sequence on every run, and distinct
// targets get distinct sequences. Callers that need a specific sequence —
// or deliberate entropy — pass their own seed through NewSeeded.
func New(addr string) *Client {
	return NewSeeded(addr, addrSeed(addr))
}

// addrSeed derives a stable per-target seed (FNV-1a over addr).
func addrSeed(addr string) int64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= 1099511628211
	}
	return int64(h)
}

// NewSeeded is New with an explicit query-ID seed: two clients built with
// the same seed issue identical ID sequences, which keeps recorded exchanges
// and test transcripts byte-stable.
func NewSeeded(addr string, seed int64) *Client {
	return &Client{
		Addr:    addr,
		Timeout: time.Second,
		Retries: 0,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// SetTimeout replaces the per-attempt timeout. Like all Client
// configuration it must happen before the first query; lockcheck enforces
// that plain writes to config fields stay inside constructors and Set*
// swap points.
func (c *Client) SetTimeout(d time.Duration) { c.Timeout = d }

// SetEDNSSize configures the client to attach an OPT record advertising
// this payload size with the DO bit set (0 disables EDNS). Call before the
// first query.
func (c *Client) SetEDNSSize(n uint16) { c.EDNSSize = n }

// SetQLog attaches a flight recorder: every sampled Exchange emits one
// client/query event at its terminal outcome. Give it the same sampler seed
// and rate as the server's so `rootanalyze -qlog join` can pair both sides'
// records. Call before the first query; nil is off.
func (c *Client) SetQLog(r *qlog.Recorder) { c.qlog = r }

// evClientQuery is the Exchange-side flight-recorder event. Claimed once;
// the qlogfield analyzer cross-checks the field list against the registry.
var evClientQuery = qlog.NewEvent("client/query",
	"attempts", "outcome", "rcode", "wait_us")

// client/query outcome enum values, in registry order.
const (
	qcOutcomeUDP   = 0
	qcOutcomeTCP   = 1
	qcOutcomeError = 2
)

// emitExchange records the terminal client/query event for one Exchange. The
// join subject is the packed query prefix (ID + flags + question) — the same
// bytes the server's recorder keys on, so equal samplers select the same
// queries on both sides.
func (c *Client) emitExchange(q *dnswire.Message, attempts int, waitNs int64, outcome, rcode uint64) {
	if c.qlog == nil {
		return
	}
	wire, err := q.Pack()
	if err != nil {
		return
	}
	qe := qlog.QuestionEnd(wire)
	if qe < 0 {
		return
	}
	subject := wire[:qe]
	key := qlog.Key(subject)
	if !c.qlog.Sampled(key) {
		return
	}
	c.qlog.Emit(evClientQuery, key, subject,
		uint64(attempts), outcome, rcode, uint64(waitNs/1000))
}

func (c *Client) nextID() uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		// A zero-value Client gets the same derived seed New would use.
		c.rng = rand.New(rand.NewSource(addrSeed(c.Addr)))
	}
	return uint16(c.rng.Uint32())
}

// Query sends a class-IN query for (name, typ) over UDP, falling back to TCP
// when the response is truncated.
func (c *Client) Query(name dnswire.Name, typ dnswire.Type) (*dnswire.Message, error) {
	q := dnswire.NewQuery(c.nextID(), name, typ)
	if c.EDNSSize > 0 {
		q.WithEDNS(c.EDNSSize, true)
	}
	return c.Exchange(q)
}

// QueryChaosTXT sends a CH TXT identity query such as hostname.bind and
// returns the first TXT string, or an error.
func (c *Client) QueryChaosTXT(name dnswire.Name) (string, error) {
	resp, err := c.Exchange(dnswire.NewChaosQuery(c.nextID(), name))
	if err != nil {
		return "", err
	}
	if resp.Header.Rcode != dnswire.RcodeNoError {
		return "", fmt.Errorf("dnsclient: %s for %s", resp.Header.Rcode, name)
	}
	for _, rr := range resp.Answers {
		if txt, ok := rr.Data.(dnswire.TXTRecord); ok && len(txt.Strings) > 0 {
			return txt.Strings[0], nil
		}
	}
	return "", fmt.Errorf("dnsclient: no TXT answer for %s", name)
}

// Exchange sends q over UDP with retries (paced by Backoff, which the
// battery leaves at its immediate-retry zero value), then retries once over
// TCP when the response has TC set.
func (c *Client) Exchange(q *dnswire.Message) (*dnswire.Message, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = time.Second
	}
	var lastErr error
	var attempts int
	var waitNs int64 // logical backoff scheduled, for the flight recorder
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if attempt > 0 {
			if d := c.Backoff.Delay(attempt - 1); d > 0 {
				waitNs += d.Nanoseconds()
				time.Sleep(d)
			}
		}
		attempts = attempt + 1
		resp, err := c.exchangeUDP(q, timeout)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.Header.Truncated {
			full, err := c.ExchangeTCP(q)
			if err == nil {
				c.emitExchange(q, attempts, waitNs, qcOutcomeTCP, uint64(full.Header.Rcode))
				return full, nil
			}
			// A cut or stalled fallback connection burns this attempt and
			// retries from the top (fresh UDP exchange, fresh TCP dial).
			lastErr = err
			continue
		}
		c.emitExchange(q, attempts, waitNs, qcOutcomeUDP, uint64(resp.Header.Rcode))
		return resp, nil
	}
	if lastErr == nil {
		lastErr = ErrTimeout
	}
	c.emitExchange(q, attempts, waitNs, qcOutcomeError, 0)
	return nil, lastErr
}

func (c *Client) exchangeUDP(q *dnswire.Message, timeout time.Duration) (*dnswire.Message, error) {
	wire, err := q.Pack()
	if err != nil {
		return nil, err
	}
	conn, err := net.DialTimeout("udp", c.Addr, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	//rootlint:allow wallclock: real-socket I/O deadline; never reached by the in-process campaign engine
	deadline := time.Now().Add(timeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if _, err := conn.Write(wire); err != nil {
		return nil, err
	}
	buf := make([]byte, 64*1024)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return nil, fmt.Errorf("%w after %s", ErrTimeout, timeout)
			}
			return nil, err
		}
		resp, err := dnswire.Unpack(buf[:n])
		if err != nil {
			continue // garbage datagram; keep waiting until deadline
		}
		if resp.Header.ID != q.Header.ID {
			continue // late or spoofed answer to another query
		}
		return resp, nil
	}
}

// ExchangeTCP sends q over TCP and reads a single response.
func (c *Client) ExchangeTCP(q *dnswire.Message) (*dnswire.Message, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = time.Second
	}
	conn, err := net.DialTimeout("tcp", c.Addr, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	//rootlint:allow wallclock: real-socket I/O deadline; never reached by the in-process campaign engine
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	if err := axfr.WriteMessage(conn, q); err != nil {
		return nil, err
	}
	resp, err := axfr.ReadMessage(conn)
	if err != nil {
		return nil, err
	}
	if resp.Header.ID != q.Header.ID {
		return nil, ErrIDMismatch
	}
	return resp, nil
}

// TransferZone performs a full AXFR of the root zone over TCP, retrying a
// cut or stalled transfer up to Retries times (each attempt is a fresh
// connection with a fresh query ID; pacing follows Backoff). A transfer
// the server refused is not retried — the refusal is the answer.
func (c *Client) TransferZone() (*zone.Zone, error) {
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if attempt > 0 {
			if d := c.Backoff.Delay(attempt - 1); d > 0 {
				time.Sleep(d)
			}
		}
		z, err := c.transferOnce()
		if err == nil {
			return z, nil
		}
		lastErr = err
		if errors.Is(err, axfr.ErrRefused) {
			break
		}
	}
	return nil, lastErr
}

// transferOnce is one AXFR attempt on one connection.
func (c *Client) transferOnce() (*zone.Zone, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = time.Second
	}
	// AXFR of a large zone needs more headroom than a single query.
	conn, err := net.DialTimeout("tcp", c.Addr, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	//rootlint:allow wallclock: real-socket I/O deadline; never reached by the in-process campaign engine
	if err := conn.SetDeadline(time.Now().Add(10 * timeout)); err != nil {
		return nil, err
	}
	id := c.nextID()
	q := &dnswire.Message{
		Header: dnswire.Header{ID: id},
		Questions: []dnswire.Question{{
			Name: dnswire.Root, Type: dnswire.TypeAXFR, Class: dnswire.ClassINET,
		}},
	}
	if err := axfr.WriteMessage(conn, q); err != nil {
		return nil, err
	}
	return axfr.Receive(conn, id)
}
