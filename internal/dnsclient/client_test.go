package dnsclient

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dnswire"
)

// silentUDP returns a UDP listener that swallows everything.
func silentUDP(t *testing.T) *net.UDPConn {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestQueryTimeout(t *testing.T) {
	conn := silentUDP(t)
	c := New(conn.LocalAddr().String())
	c.Timeout = 100 * time.Millisecond
	start := time.Now()
	_, err := c.Query(dnswire.Root, dnswire.TypeSOA)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v", elapsed)
	}
}

func TestRetryCount(t *testing.T) {
	conn := silentUDP(t)
	var received atomic.Int32
	go func() {
		buf := make([]byte, 512)
		for {
			if _, _, err := conn.ReadFromUDP(buf); err != nil {
				return
			}
			received.Add(1)
		}
	}()
	c := New(conn.LocalAddr().String())
	c.Timeout = 50 * time.Millisecond
	c.Retries = 2
	_, _ = c.Query(dnswire.Root, dnswire.TypeSOA)
	// The reader goroutine observes each datagram strictly before the
	// client's per-attempt timeout elapses; after Query returns, all
	// attempts have been counted (poll briefly to be safe).
	deadline := time.Now().Add(time.Second)
	for received.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := received.Load(); n != 3 { // first attempt + 2 retries
		t.Errorf("server saw %d attempts, want 3", n)
	}
}

func TestIgnoresWrongIDAndGarbage(t *testing.T) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go func() {
		buf := make([]byte, 512)
		n, raddr, err := conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		q, err := dnswire.Unpack(buf[:n])
		if err != nil {
			return
		}
		// Send garbage, then a wrong-ID response, then the real one.
		_, _ = conn.WriteToUDP([]byte{0xde, 0xad}, raddr)
		bad := &dnswire.Message{Header: dnswire.Header{ID: q.Header.ID + 1, Response: true},
			Questions: q.Questions}
		wire, _ := bad.Pack()
		_, _ = conn.WriteToUDP(wire, raddr)
		good := &dnswire.Message{Header: dnswire.Header{ID: q.Header.ID, Response: true},
			Questions: q.Questions}
		wire, _ = good.Pack()
		_, _ = conn.WriteToUDP(wire, raddr)
	}()
	c := New(conn.LocalAddr().String())
	c.Timeout = 2 * time.Second
	resp, err := c.Query(dnswire.Root, dnswire.TypeSOA)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.Response {
		t.Error("not a response")
	}
}

func TestTransferZoneConnRefused(t *testing.T) {
	// A port with no listener: Dial fails fast.
	c := New("127.0.0.1:1")
	c.Timeout = 300 * time.Millisecond
	if _, err := c.TransferZone(); err == nil {
		t.Error("transfer from dead port succeeded")
	}
}

func TestChaosAgainstDeadServer(t *testing.T) {
	conn := silentUDP(t)
	c := New(conn.LocalAddr().String())
	c.Timeout = 100 * time.Millisecond
	if _, err := c.QueryChaosTXT(dnswire.MustName("hostname.bind.")); err == nil {
		t.Error("chaos query against silent server succeeded")
	}
}

func TestDefaultSettingsMatchPaperDig(t *testing.T) {
	c := New("192.0.2.1:53")
	if c.Timeout != time.Second {
		t.Errorf("timeout = %v, want 1s (dig +timeout=1)", c.Timeout)
	}
	if c.Retries != 0 {
		t.Errorf("retries = %d, want 0 (dig +retry=0)", c.Retries)
	}
}
