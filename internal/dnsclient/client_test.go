package dnsclient

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/axfr"
	"repro/internal/dnswire"
	"repro/internal/zone"
)

// silentUDP returns a UDP listener that swallows everything.
func silentUDP(t *testing.T) *net.UDPConn {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestQueryTimeout(t *testing.T) {
	conn := silentUDP(t)
	c := New(conn.LocalAddr().String())
	c.Timeout = 100 * time.Millisecond
	start := time.Now()
	_, err := c.Query(dnswire.Root, dnswire.TypeSOA)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v", elapsed)
	}
}

func TestRetryCount(t *testing.T) {
	conn := silentUDP(t)
	var received atomic.Int32
	go func() {
		buf := make([]byte, 512)
		for {
			if _, _, err := conn.ReadFromUDP(buf); err != nil {
				return
			}
			received.Add(1)
		}
	}()
	c := New(conn.LocalAddr().String())
	c.Timeout = 50 * time.Millisecond
	c.Retries = 2
	_, _ = c.Query(dnswire.Root, dnswire.TypeSOA)
	// The reader goroutine observes each datagram strictly before the
	// client's per-attempt timeout elapses; after Query returns, all
	// attempts have been counted (poll briefly to be safe).
	deadline := time.Now().Add(time.Second)
	for received.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := received.Load(); n != 3 { // first attempt + 2 retries
		t.Errorf("server saw %d attempts, want 3", n)
	}
}

func TestIgnoresWrongIDAndGarbage(t *testing.T) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go func() {
		buf := make([]byte, 512)
		n, raddr, err := conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		q, err := dnswire.Unpack(buf[:n])
		if err != nil {
			return
		}
		// Send garbage, then a wrong-ID response, then the real one.
		_, _ = conn.WriteToUDP([]byte{0xde, 0xad}, raddr)
		bad := &dnswire.Message{Header: dnswire.Header{ID: q.Header.ID + 1, Response: true},
			Questions: q.Questions}
		wire, _ := bad.Pack()
		_, _ = conn.WriteToUDP(wire, raddr)
		good := &dnswire.Message{Header: dnswire.Header{ID: q.Header.ID, Response: true},
			Questions: q.Questions}
		wire, _ = good.Pack()
		_, _ = conn.WriteToUDP(wire, raddr)
	}()
	c := New(conn.LocalAddr().String())
	c.Timeout = 2 * time.Second
	resp, err := c.Query(dnswire.Root, dnswire.TypeSOA)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.Response {
		t.Error("not a response")
	}
}

func TestTransferZoneConnRefused(t *testing.T) {
	// A port with no listener: Dial fails fast.
	c := New("127.0.0.1:1")
	c.Timeout = 300 * time.Millisecond
	if _, err := c.TransferZone(); err == nil {
		t.Error("transfer from dead port succeeded")
	}
}

func TestChaosAgainstDeadServer(t *testing.T) {
	conn := silentUDP(t)
	c := New(conn.LocalAddr().String())
	c.Timeout = 100 * time.Millisecond
	if _, err := c.QueryChaosTXT(dnswire.MustName("hostname.bind.")); err == nil {
		t.Error("chaos query against silent server succeeded")
	}
}

func TestSeededIDsReproducible(t *testing.T) {
	ids := func(seed int64) []uint16 {
		c := NewSeeded("192.0.2.1:53", seed)
		out := make([]uint16, 16)
		for i := range out {
			out[i] = c.nextID()
		}
		return out
	}
	a, b := ids(42), ids(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at ID %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := ids(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced an identical ID sequence")
	}
}

func TestTransferZoneMidStreamDisconnect(t *testing.T) {
	// A server that sends the opening frame of a transfer and then drops
	// the connection: the client must return the classified truncation
	// error promptly, not hang or deliver a partial zone.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		q, err := axfr.ReadMessage(conn)
		if err != nil {
			conn.Close()
			return
		}
		z := zone.SynthesizeRoot(zone.DefaultRootConfig())
		msgs, err := axfr.ResponseMessages(z, q.Header.ID, q.Questions[0])
		if err != nil || len(msgs) < 2 {
			conn.Close()
			return
		}
		_ = axfr.WriteMessage(conn, msgs[0]) // opening SOA + records, no close bracket
		conn.Close()
	}()
	c := NewSeeded(ln.Addr().String(), 7)
	c.Timeout = 2 * time.Second
	start := time.Now()
	_, err = c.TransferZone()
	if !errors.Is(err, axfr.ErrTruncatedTransfer) {
		t.Fatalf("err = %v, want axfr.ErrTruncatedTransfer", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Error("disconnect detection hung")
	}
}

func TestExchangeTCPOversizedPrefix(t *testing.T) {
	// A TCP responder that advertises a 65535-byte frame and hangs up: the
	// client must surface the truncated-frame classification.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if _, err := axfr.ReadMessage(conn); err == nil {
			conn.Write([]byte{0xff, 0xff, 1, 2, 3})
		}
		conn.Close()
	}()
	c := NewSeeded(ln.Addr().String(), 7)
	c.Timeout = 2 * time.Second
	_, err = c.ExchangeTCP(dnswire.NewQuery(c.nextID(), dnswire.Root, dnswire.TypeSOA))
	if !errors.Is(err, axfr.ErrTruncatedFrame) {
		t.Fatalf("err = %v, want axfr.ErrTruncatedFrame", err)
	}
}

func TestDefaultSettingsMatchPaperDig(t *testing.T) {
	c := New("192.0.2.1:53")
	if c.Timeout != time.Second {
		t.Errorf("timeout = %v, want 1s (dig +timeout=1)", c.Timeout)
	}
	if c.Retries != 0 {
		t.Errorf("retries = %d, want 0 (dig +retry=0)", c.Retries)
	}
}
