package dnssec

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/dnswire"
)

// Denial-proof errors.
var (
	ErrDenialNotProven = errors.New("dnssec: NSEC records do not prove the denial")
)

// DenialKind classifies a proven negative answer.
type DenialKind int

// Denial kinds.
const (
	// DenialNXDomain: the name does not exist (covered by an NSEC span and
	// no wildcard could have matched).
	DenialNXDomain DenialKind = iota
	// DenialNoData: the name exists but has no records of the queried type.
	DenialNoData
)

// CheckDenial verifies that the NSEC records taken from a negative
// response structurally prove the non-existence of (name, qtype):
// either an NSEC at the owner name whose type bitmap omits qtype (NODATA),
// or an NSEC span covering the name (NXDOMAIN). The caller separately
// verifies the NSEC RRSIGs with VerifyRRset; this function checks only the
// denial logic (RFC 4035 §5.4). It returns the kind of denial proven.
func CheckDenial(nsecs []dnswire.RR, name dnswire.Name, qtype dnswire.Type) (DenialKind, error) {
	nameC := name.Canonical()
	for _, rr := range nsecs {
		nsec, ok := rr.Data.(dnswire.NSECRecord)
		if !ok {
			continue
		}
		if rr.Name.Canonical() == nameC {
			// NSEC at the queried name: NODATA iff the bitmap omits qtype
			// (and omits CNAME, which would have answered instead).
			for _, t := range nsec.Types {
				if t == qtype || t == dnswire.TypeCNAME {
					return 0, fmt.Errorf("%w: NSEC at %s lists %s", ErrDenialNotProven, name, t)
				}
			}
			return DenialNoData, nil
		}
	}
	// NXDOMAIN: need a covering span.
	for _, rr := range nsecs {
		nsec, ok := rr.Data.(dnswire.NSECRecord)
		if !ok {
			continue
		}
		if spanCovers(rr.Name, nsec.NextName, name) {
			return DenialNXDomain, nil
		}
	}
	return 0, ErrDenialNotProven
}

// spanCovers reports whether the NSEC span (owner, next) covers name in
// canonical order, handling wrap-around at the zone apex.
func spanCovers(owner, next, name dnswire.Name) bool {
	cmpOwner := dnswire.CompareCanonical(owner, name)
	cmpNext := dnswire.CompareCanonical(name, next)
	if dnswire.CompareCanonical(owner, next) < 0 {
		return cmpOwner < 0 && cmpNext < 0
	}
	return cmpOwner < 0 || cmpNext < 0
}

// VerifyDenialResponse is the full negative-response check a validating
// client performs: every NSEC in the authority section must carry a valid
// RRSIG over the given keys at time now, and the NSEC set must prove the
// denial of (name, qtype).
func VerifyDenialResponse(authority []dnswire.RR, name dnswire.Name, qtype dnswire.Type,
	keys []dnswire.DNSKEYRecord, now time.Time) (DenialKind, error) {
	// Group NSECs with their covering signatures.
	var nsecs []dnswire.RR
	sigsFor := make(map[dnswire.Name][]dnswire.RRSIGRecord)
	for _, rr := range authority {
		switch d := rr.Data.(type) {
		case dnswire.NSECRecord:
			nsecs = append(nsecs, rr)
		case dnswire.RRSIGRecord:
			if d.TypeCovered == dnswire.TypeNSEC {
				sigsFor[rr.Name.Canonical()] = append(sigsFor[rr.Name.Canonical()], d)
			}
		}
	}
	if len(nsecs) == 0 {
		return 0, ErrDenialNotProven
	}
	for _, rr := range nsecs {
		sigs := sigsFor[rr.Name.Canonical()]
		if len(sigs) == 0 {
			return 0, fmt.Errorf("%w: NSEC at %s", ErrNoSignature, rr.Name)
		}
		verified := false
		var lastErr error
		for _, sig := range sigs {
			if err := VerifyRRset(sig, []dnswire.RR{rr}, keys, now); err != nil {
				lastErr = err
			} else {
				verified = true
				break
			}
		}
		if !verified {
			return 0, lastErr
		}
	}
	return CheckDenial(nsecs, name, qtype)
}
