package dnssec

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dnswire"
	"repro/internal/zone"
)

// nsecRR builds an NSEC record for denial tests.
func nsecRR(owner, next string, types ...dnswire.Type) dnswire.RR {
	return dnswire.RR{
		Name: dnswire.MustName(owner), Class: dnswire.ClassINET, TTL: 86400,
		Data: dnswire.NSECRecord{NextName: dnswire.MustName(next), Types: types},
	}
}

func TestCheckDenialNXDomain(t *testing.T) {
	nsecs := []dnswire.RR{
		nsecRR("com.", "de.", dnswire.TypeNS),
		nsecRR(".", "com.", dnswire.TypeSOA, dnswire.TypeNS),
	}
	kind, err := CheckDenial(nsecs, dnswire.MustName("cz."), dnswire.TypeA)
	if err != nil || kind != DenialNXDomain {
		t.Errorf("kind=%v err=%v", kind, err)
	}
	// Name outside every span: not proven.
	if _, err := CheckDenial(nsecs, dnswire.MustName("fr."), dnswire.TypeA); !errors.Is(err, ErrDenialNotProven) {
		t.Errorf("uncovered name: %v", err)
	}
}

func TestCheckDenialNoData(t *testing.T) {
	nsecs := []dnswire.RR{nsecRR("com.", "de.", dnswire.TypeNS, dnswire.TypeRRSIG)}
	kind, err := CheckDenial(nsecs, dnswire.MustName("com."), dnswire.TypeTXT)
	if err != nil || kind != DenialNoData {
		t.Errorf("kind=%v err=%v", kind, err)
	}
	// The type IS present: denial disproven.
	if _, err := CheckDenial(nsecs, dnswire.MustName("com."), dnswire.TypeNS); err == nil {
		t.Error("present type accepted as denied")
	}
	// A CNAME at the name would have answered: denial disproven.
	withCname := []dnswire.RR{nsecRR("com.", "de.", dnswire.TypeCNAME)}
	if _, err := CheckDenial(withCname, dnswire.MustName("com."), dnswire.TypeTXT); err == nil {
		t.Error("CNAME-bearing NSEC accepted as NODATA proof")
	}
}

func TestCheckDenialWrapAround(t *testing.T) {
	// Last NSEC in the chain points back to the apex.
	nsecs := []dnswire.RR{nsecRR("ws.", ".", dnswire.TypeNS)}
	if kind, err := CheckDenial(nsecs, dnswire.MustName("zz."), dnswire.TypeA); err != nil || kind != DenialNXDomain {
		t.Errorf("wrap-around: kind=%v err=%v", kind, err)
	}
	if _, err := CheckDenial(nsecs, dnswire.MustName("aa."), dnswire.TypeA); err == nil {
		t.Error("pre-span name accepted under wrap-around")
	}
}

func TestVerifyDenialResponseEndToEnd(t *testing.T) {
	// Sign a zone, extract the real NSEC + RRSIG records a server would put
	// in an NXDOMAIN response, and validate them as a client.
	signer, err := NewSigner(rand.New(rand.NewSource(19)))
	if err != nil {
		t.Fatal(err)
	}
	when := time.Date(2023, 12, 10, 0, 0, 0, 0, time.UTC)
	cfg := zone.DefaultRootConfig()
	cfg.TLDCount = 12
	signed, err := signer.Sign(zone.SynthesizeRoot(cfg), when)
	if err != nil {
		t.Fatal(err)
	}
	qname := dnswire.MustName("no-such-tld-xyz.")
	// Collect the covering NSEC and its RRSIG, as the server's authority
	// section would carry them.
	var authority []dnswire.RR
	for _, rr := range signed.Records {
		if nsec, ok := rr.Data.(dnswire.NSECRecord); ok && spanCovers(rr.Name, nsec.NextName, qname) {
			authority = append(authority, rr)
			for _, sigRR := range signed.Lookup(rr.Name, dnswire.TypeRRSIG) {
				if sigRR.Data.(dnswire.RRSIGRecord).TypeCovered == dnswire.TypeNSEC {
					authority = append(authority, sigRR)
				}
			}
		}
	}
	if len(authority) < 2 {
		t.Fatalf("authority = %d records", len(authority))
	}
	var keys []dnswire.DNSKEYRecord
	for _, rr := range signed.Lookup(dnswire.Root, dnswire.TypeDNSKEY) {
		keys = append(keys, rr.Data.(dnswire.DNSKEYRecord))
	}
	kind, err := VerifyDenialResponse(authority, qname, dnswire.TypeA, keys, when.Add(time.Hour))
	if err != nil || kind != DenialNXDomain {
		t.Fatalf("kind=%v err=%v", kind, err)
	}
	// Tampering with the NSEC (shrinking its span) must fail signature
	// verification.
	tampered := append([]dnswire.RR(nil), authority...)
	for i, rr := range tampered {
		if nsec, ok := rr.Data.(dnswire.NSECRecord); ok {
			nsec.NextName = dnswire.MustName("zzz-tampered.")
			tampered[i].Data = nsec
		}
	}
	if _, err := VerifyDenialResponse(tampered, qname, dnswire.TypeA, keys, when); err == nil {
		t.Error("tampered NSEC accepted")
	}
	// Unsigned NSEC must be rejected.
	var unsigned []dnswire.RR
	for _, rr := range authority {
		if _, ok := rr.Data.(dnswire.NSECRecord); ok {
			unsigned = append(unsigned, rr)
		}
	}
	if _, err := VerifyDenialResponse(unsigned, qname, dnswire.TypeA, keys, when); !errors.Is(err, ErrNoSignature) {
		t.Errorf("unsigned NSEC verdict: %v", err)
	}
}
