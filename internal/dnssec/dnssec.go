// Package dnssec implements the subset of DNSSEC (RFC 4033-4035, RFC 5702,
// RFC 6605) the root zone uses: RSA/SHA-256 (the algorithm the real root
// signs with) and ECDSA-P256 key pairs, RRset signing and verification,
// whole-zone signing with a KSK/ZSK split, and trust-anchor validation with
// real inception/expiration checking. Signatures are genuine cryptographic
// signatures; a bitflipped zone fails verification for real, which is
// exactly what the paper's Table 2 taxonomy depends on.
package dnssec

import (
	"crypto"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sort"
	"time"

	"repro/internal/dnswire"
)

// cryptoSHA256 names the hash for PKCS#1 v1.5 signatures.
const cryptoSHA256 = crypto.SHA256

// Validation errors, matching the reason taxonomy of the paper's Table 2.
var (
	ErrSignatureExpired     = errors.New("dnssec: signature expired")
	ErrSignatureNotIncepted = errors.New("dnssec: signature not yet incepted")
	ErrBogusSignature       = errors.New("dnssec: bogus signature")
	ErrNoSignature          = errors.New("dnssec: RRset has no covering RRSIG")
	ErrUnknownKey           = errors.New("dnssec: no DNSKEY matches key tag")
)

// Key is a DNSSEC signing key pair: exactly one of Private (ECDSA-P256,
// algorithm 13) or RSA (RSA/SHA-256, algorithm 8) is set.
type Key struct {
	Flags   uint16 // 256 = ZSK, 257 = KSK
	Private *ecdsa.PrivateKey
	RSA     *rsa.PrivateKey
}

// Algorithm returns the key's DNSSEC algorithm number.
func (k *Key) Algorithm() uint8 {
	if k.RSA != nil {
		return dnswire.AlgRSASHA256
	}
	return dnswire.AlgECDSAP256SHA256
}

// GenerateKey creates a P-256 key pair with the given flags, reading
// randomness from rnd (pass crypto/rand.Reader in production; tests may use
// a deterministic stream).
func GenerateKey(flags uint16, rnd io.Reader) (*Key, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rnd)
	if err != nil {
		return nil, fmt.Errorf("dnssec: generate key: %w", err)
	}
	return &Key{Flags: flags, Private: priv}, nil
}

// DeterministicKey derives a P-256 key pair from seed material. Unlike
// GenerateKey with a seeded reader — which the standard library deliberately
// de-randomizes via MaybeReadByte — the derivation is a pure function of
// seed, so identically seeded simulations hold identical keys across runs.
func DeterministicKey(flags uint16, seed []byte) *Key {
	curve := elliptic.P256()
	nMinus1 := new(big.Int).Sub(curve.Params().N, big.NewInt(1))
	h := sha256.Sum256(seed)
	d := new(big.Int).SetBytes(h[:])
	d.Mod(d, nMinus1)
	d.Add(d, big.NewInt(1)) // d in [1, n-1]
	x, y := curve.ScalarBaseMult(d.FillBytes(make([]byte, 32)))
	return &Key{Flags: flags, Private: &ecdsa.PrivateKey{
		PublicKey: ecdsa.PublicKey{Curve: curve, X: x, Y: y},
		D:         d,
	}}
}

// DNSKEY returns the public DNSKEY record for k with the given owner and TTL.
func (k *Key) DNSKEY(owner dnswire.Name, ttl uint32) dnswire.RR {
	var pub []byte
	if k.RSA != nil {
		pub = rsaPublicKeyBytes(&k.RSA.PublicKey)
	} else {
		pub = publicKeyBytes(&k.Private.PublicKey)
	}
	return dnswire.RR{
		Name: owner, Class: dnswire.ClassINET, TTL: ttl,
		Data: dnswire.DNSKEYRecord{
			Flags:     k.Flags,
			Protocol:  3,
			Algorithm: k.Algorithm(),
			PublicKey: pub,
		},
	}
}

// publicKeyBytes encodes the public key per RFC 6605 §4: Q = x | y,
// uncompressed, without the 0x04 prefix.
func publicKeyBytes(pub *ecdsa.PublicKey) []byte {
	out := make([]byte, 64)
	pub.X.FillBytes(out[:32])
	pub.Y.FillBytes(out[32:])
	return out
}

// KeyTag computes the RFC 4034 Appendix B key tag of a DNSKEY.
func KeyTag(dk dnswire.DNSKEYRecord) uint16 {
	rdata := dnskeyRdata(dk)
	var acc uint32
	for i, b := range rdata {
		if i&1 == 0 {
			acc += uint32(b) << 8
		} else {
			acc += uint32(b)
		}
	}
	acc += acc >> 16 & 0xFFFF
	return uint16(acc & 0xFFFF)
}

// Tag returns the key tag of k's public DNSKEY.
func (k *Key) Tag() uint16 {
	return KeyTag(k.DNSKEY(dnswire.Root, 0).Data.(dnswire.DNSKEYRecord))
}

// DS returns the SHA-256 delegation-signer digest record for k
// (RFC 4509), for publication in the parent or as a trust anchor.
func (k *Key) DS(owner dnswire.Name, ttl uint32) dnswire.RR {
	dk := k.DNSKEY(owner, ttl).Data.(dnswire.DNSKEYRecord)
	// DS digest input is canonical owner name | DNSKEY RDATA (RFC 4034 §5.1.4).
	h := sha256.New()
	h.Write(canonicalOwner(owner))
	h.Write(dnskeyRdata(dk))
	return dnswire.RR{
		Name: owner, Class: dnswire.ClassINET, TTL: ttl,
		Data: dnswire.DSRecord{
			KeyTag:     KeyTag(dk),
			Algorithm:  dk.Algorithm,
			DigestType: 2, // SHA-256
			Digest:     h.Sum(nil),
		},
	}
}

func canonicalOwner(n dnswire.Name) []byte {
	var out []byte
	for _, label := range n.Canonical().Labels() {
		out = append(out, byte(len(label)))
		out = append(out, label...)
	}
	return append(out, 0)
}

func dnskeyRdata(dk dnswire.DNSKEYRecord) []byte {
	out := []byte{byte(dk.Flags >> 8), byte(dk.Flags), dk.Protocol, dk.Algorithm}
	return append(out, dk.PublicKey...)
}

// SignRRset signs an RRset (records sharing owner, class, and type) with k,
// valid from inception to expiration. The signature covers the RFC 4034
// §3.1.8.1 byte stream: RRSIG preamble (with canonical signer) followed by
// the canonically ordered, canonical-form RRs.
func SignRRset(k *Key, rrset []dnswire.RR, signer dnswire.Name, inception, expiration time.Time) (dnswire.RR, error) {
	if len(rrset) == 0 {
		return dnswire.RR{}, errors.New("dnssec: empty RRset")
	}
	owner := rrset[0].Name
	ttl := rrset[0].TTL
	sig := dnswire.RRSIGRecord{
		TypeCovered: rrset[0].Type(),
		Algorithm:   k.Algorithm(),
		Labels:      uint8(len(owner.Labels())),
		OriginalTTL: ttl,
		Expiration:  uint32(expiration.Unix()),
		Inception:   uint32(inception.Unix()),
		KeyTag:      k.Tag(),
		SignerName:  signer.Canonical(),
	}
	digest := signedData(sig, rrset)
	if k.RSA != nil {
		raw, err := signRSA(k.RSA, digest)
		if err != nil {
			return dnswire.RR{}, fmt.Errorf("dnssec: sign: %w", err)
		}
		sig.Signature = raw
		return dnswire.RR{Name: owner, Class: rrset[0].Class, TTL: ttl, Data: sig}, nil
	}
	r, s := signECDSADeterministic(k.Private, digest)
	raw := make([]byte, 64)
	r.FillBytes(raw[:32])
	s.FillBytes(raw[32:])
	sig.Signature = raw
	return dnswire.RR{Name: owner, Class: rrset[0].Class, TTL: ttl, Data: sig}, nil
}

// signECDSADeterministic produces an RFC 6979-style deterministic ECDSA
// signature: the nonce is derived from the private scalar and the message
// digest rather than fresh randomness, so signing the same RRset with the
// same key yields identical signature bytes. Byte-identical signatures are
// what lets identically seeded campaign runs render byte-identical reports
// (Fig. 10 prints raw RRSIG bytes) regardless of worker count or process.
func signECDSADeterministic(priv *ecdsa.PrivateKey, digest []byte) (r, s *big.Int) {
	curve := priv.Curve
	n := curve.Params().N
	z := new(big.Int).SetBytes(digest)
	dBytes := priv.D.FillBytes(make([]byte, 32))
	for ctr := 0; ; ctr++ {
		h := sha256.New()
		h.Write(dBytes)
		h.Write(digest)
		h.Write([]byte{byte(ctr)})
		k := new(big.Int).SetBytes(h.Sum(nil))
		k.Mod(k, n)
		if k.Sign() == 0 {
			continue
		}
		rx, _ := curve.ScalarBaseMult(k.FillBytes(make([]byte, 32)))
		r = new(big.Int).Mod(rx, n)
		if r.Sign() == 0 {
			continue
		}
		s = new(big.Int).Mul(r, priv.D)
		s.Add(s, z)
		s.Mul(s, new(big.Int).ModInverse(k, n))
		s.Mod(s, n)
		if s.Sign() == 0 {
			continue
		}
		return r, s
	}
}

// signedData hashes the byte stream covered by sig over rrset.
func signedData(sig dnswire.RRSIGRecord, rrset []dnswire.RR) []byte {
	h := sha256.New()
	preamble := sig
	preamble.Signature = nil
	preamble.SignerName = preamble.SignerName.Canonical()
	var buf []byte
	buf = appendRRSIGPreamble(buf, preamble)
	h.Write(buf)

	ordered := append([]dnswire.RR(nil), rrset...)
	sort.SliceStable(ordered, func(i, j int) bool {
		return dnswire.CanonicalRRLess(ordered[i], ordered[j])
	})
	for _, rr := range ordered {
		h.Write(dnswire.AppendCanonicalRR(nil, rr, sig.OriginalTTL))
	}
	return h.Sum(nil)
}

// appendRRSIGPreamble rebuilds the covered RRSIG RDATA prefix without
// depending on dnswire internals.
func appendRRSIGPreamble(buf []byte, sig dnswire.RRSIGRecord) []byte {
	buf = append(buf, byte(sig.TypeCovered>>8), byte(sig.TypeCovered))
	buf = append(buf, sig.Algorithm, sig.Labels)
	for _, v := range []uint32{sig.OriginalTTL, sig.Expiration, sig.Inception} {
		buf = append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	buf = append(buf, byte(sig.KeyTag>>8), byte(sig.KeyTag))
	return append(buf, canonicalOwner(sig.SignerName)...)
}

// VerifyRRset checks sig over rrset against the DNSKEYs in keys at time now.
// It returns nil on success, or one of the taxonomy errors.
func VerifyRRset(sig dnswire.RRSIGRecord, rrset []dnswire.RR, keys []dnswire.DNSKEYRecord, now time.Time) error {
	if err := checkTemporal(sig, now); err != nil {
		return err
	}
	key := findKey(keys, sig)
	if key == nil {
		return fmt.Errorf("%w: tag %d", ErrUnknownKey, sig.KeyTag)
	}
	return verifyCrypto(sig, key, signedData(sig, rrset))
}

// checkTemporal enforces the signature validity window at time now. These
// checks depend on the validation time and are therefore never cached.
func checkTemporal(sig dnswire.RRSIGRecord, now time.Time) error {
	ts := uint32(now.Unix())
	// RFC 1982-style comparisons are overkill for the study window; direct
	// comparison is correct through 2106.
	if ts > sig.Expiration {
		return fmt.Errorf("%w: expired %s, validated %s", ErrSignatureExpired,
			time.Unix(int64(sig.Expiration), 0).UTC().Format(time.RFC3339),
			now.UTC().Format(time.RFC3339))
	}
	if ts < sig.Inception {
		return fmt.Errorf("%w: incepted %s, validated %s", ErrSignatureNotIncepted,
			time.Unix(int64(sig.Inception), 0).UTC().Format(time.RFC3339),
			now.UTC().Format(time.RFC3339))
	}
	return nil
}

// findKey locates the DNSKEY matching sig's key tag and algorithm.
func findKey(keys []dnswire.DNSKEYRecord, sig dnswire.RRSIGRecord) *dnswire.DNSKEYRecord {
	for i := range keys {
		if KeyTag(keys[i]) == sig.KeyTag && keys[i].Algorithm == sig.Algorithm {
			return &keys[i]
		}
	}
	return nil
}

// verifyCrypto checks sig's raw signature bytes over digest with key. The
// outcome is a pure function of (key, digest, signature), which is what makes
// positive verdicts cacheable on the zone sidecar.
func verifyCrypto(sig dnswire.RRSIGRecord, key *dnswire.DNSKEYRecord, digest []byte) error {
	switch sig.Algorithm {
	case dnswire.AlgRSASHA256:
		return verifyRSA(key.PublicKey, digest, sig.Signature)
	case dnswire.AlgECDSAP256SHA256:
		if len(key.PublicKey) != 64 || len(sig.Signature) != 64 {
			return fmt.Errorf("%w: malformed key or signature length", ErrBogusSignature)
		}
		pub := ecdsa.PublicKey{
			Curve: elliptic.P256(),
			X:     new(big.Int).SetBytes(key.PublicKey[:32]),
			Y:     new(big.Int).SetBytes(key.PublicKey[32:]),
		}
		r := new(big.Int).SetBytes(sig.Signature[:32])
		s := new(big.Int).SetBytes(sig.Signature[32:])
		if !ecdsa.Verify(&pub, digest, r, s) {
			return ErrBogusSignature
		}
		return nil
	default:
		return fmt.Errorf("%w: unsupported algorithm %d", ErrBogusSignature, sig.Algorithm)
	}
}
