package dnssec

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dnswire"
	"repro/internal/zone"
)

var studyTime = time.Date(2023, 10, 1, 12, 0, 0, 0, time.UTC)

func newTestSigner(t *testing.T) *Signer {
	t.Helper()
	s, err := NewSigner(rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testRRset() []dnswire.RR {
	return []dnswire.RR{
		{Name: dnswire.Root, Class: dnswire.ClassINET, TTL: 518400,
			Data: dnswire.NSRecord{Host: dnswire.MustName("a.root-servers.net.")}},
		{Name: dnswire.Root, Class: dnswire.ClassINET, TTL: 518400,
			Data: dnswire.NSRecord{Host: dnswire.MustName("b.root-servers.net.")}},
	}
}

func TestSignVerifyRRset(t *testing.T) {
	s := newTestSigner(t)
	rrset := testRRset()
	sigRR, err := SignRRset(s.ZSK, rrset, dnswire.Root, studyTime, studyTime.Add(14*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	sig := sigRR.Data.(dnswire.RRSIGRecord)
	keys := []dnswire.DNSKEYRecord{
		s.ZSK.DNSKEY(dnswire.Root, 172800).Data.(dnswire.DNSKEYRecord),
		s.KSK.DNSKEY(dnswire.Root, 172800).Data.(dnswire.DNSKEYRecord),
	}
	if err := VerifyRRset(sig, rrset, keys, studyTime.Add(time.Hour)); err != nil {
		t.Errorf("verify: %v", err)
	}
}

// TestDeterministicSignerReproducible pins the property the campaign
// engine's byte-identical reports rest on: the same seed yields the same
// keys and the same RRSIG bytes, across signer instances.
func TestDeterministicSignerReproducible(t *testing.T) {
	a := NewDeterministicSigner(7)
	b := NewDeterministicSigner(7)
	if a.ZSK.Private.D.Cmp(b.ZSK.Private.D) != 0 || a.KSK.Private.D.Cmp(b.KSK.Private.D) != 0 {
		t.Fatal("same seed produced different keys")
	}
	c := NewDeterministicSigner(8)
	if a.ZSK.Private.D.Cmp(c.ZSK.Private.D) == 0 {
		t.Fatal("different seeds produced the same ZSK")
	}
	if a.KSK.Private.D.Cmp(a.ZSK.Private.D) == 0 {
		t.Fatal("KSK and ZSK collide")
	}

	rrset := testRRset()
	exp := studyTime.Add(14 * 24 * time.Hour)
	sigA, err := SignRRset(a.ZSK, rrset, dnswire.Root, studyTime, exp)
	if err != nil {
		t.Fatal(err)
	}
	sigB, err := SignRRset(b.ZSK, rrset, dnswire.Root, studyTime, exp)
	if err != nil {
		t.Fatal(err)
	}
	rawA := sigA.Data.(dnswire.RRSIGRecord).Signature
	rawB := sigB.Data.(dnswire.RRSIGRecord).Signature
	if string(rawA) != string(rawB) {
		t.Fatal("same key and RRset produced different signature bytes")
	}
	keys := []dnswire.DNSKEYRecord{a.ZSK.DNSKEY(dnswire.Root, 172800).Data.(dnswire.DNSKEYRecord)}
	if err := VerifyRRset(sigA.Data.(dnswire.RRSIGRecord), rrset, keys, studyTime.Add(time.Hour)); err != nil {
		t.Fatalf("deterministic signature does not verify: %v", err)
	}
}

func TestVerifyRRsetOrderIndependent(t *testing.T) {
	s := newTestSigner(t)
	rrset := testRRset()
	sigRR, err := SignRRset(s.ZSK, rrset, dnswire.Root, studyTime, studyTime.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	sig := sigRR.Data.(dnswire.RRSIGRecord)
	keys := []dnswire.DNSKEYRecord{s.ZSK.DNSKEY(dnswire.Root, 172800).Data.(dnswire.DNSKEYRecord)}
	reversed := []dnswire.RR{rrset[1], rrset[0]}
	if err := VerifyRRset(sig, reversed, keys, studyTime); err != nil {
		t.Errorf("verify reversed: %v", err)
	}
}

func TestVerifyTimeWindow(t *testing.T) {
	s := newTestSigner(t)
	rrset := testRRset()
	sigRR, err := SignRRset(s.ZSK, rrset, dnswire.Root, studyTime, studyTime.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	sig := sigRR.Data.(dnswire.RRSIGRecord)
	keys := []dnswire.DNSKEYRecord{s.ZSK.DNSKEY(dnswire.Root, 172800).Data.(dnswire.DNSKEYRecord)}

	if err := VerifyRRset(sig, rrset, keys, studyTime.Add(2*time.Hour)); !errors.Is(err, ErrSignatureExpired) {
		t.Errorf("after expiration: %v, want ErrSignatureExpired", err)
	}
	if err := VerifyRRset(sig, rrset, keys, studyTime.Add(-time.Hour)); !errors.Is(err, ErrSignatureNotIncepted) {
		t.Errorf("before inception: %v, want ErrSignatureNotIncepted", err)
	}
}

func TestVerifyUnknownKey(t *testing.T) {
	s := newTestSigner(t)
	rrset := testRRset()
	sigRR, err := SignRRset(s.ZSK, rrset, dnswire.Root, studyTime, studyTime.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	sig := sigRR.Data.(dnswire.RRSIGRecord)
	// Only the KSK offered: tag will not match the ZSK's signature.
	keys := []dnswire.DNSKEYRecord{s.KSK.DNSKEY(dnswire.Root, 172800).Data.(dnswire.DNSKEYRecord)}
	if err := VerifyRRset(sig, rrset, keys, studyTime); !errors.Is(err, ErrUnknownKey) {
		t.Errorf("got %v, want ErrUnknownKey", err)
	}
}

func TestBitflipBreaksSignature(t *testing.T) {
	s := newTestSigner(t)
	rrset := testRRset()
	sigRR, err := SignRRset(s.ZSK, rrset, dnswire.Root, studyTime, studyTime.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	sig := sigRR.Data.(dnswire.RRSIGRecord)
	keys := []dnswire.DNSKEYRecord{s.ZSK.DNSKEY(dnswire.Root, 172800).Data.(dnswire.DNSKEYRecord)}

	// Flip one bit in the covered data: the host name of the first NS.
	flipped := testRRset()
	flipped[0].Data = dnswire.NSRecord{Host: dnswire.MustName("c.root-servers.net.")}
	if err := VerifyRRset(sig, flipped, keys, studyTime); !errors.Is(err, ErrBogusSignature) {
		t.Errorf("flipped data: %v, want ErrBogusSignature", err)
	}
	// Flip one bit in the signature itself.
	badSig := sig
	badSig.Signature = append([]byte(nil), sig.Signature...)
	badSig.Signature[10] ^= 0x01
	if err := VerifyRRset(badSig, rrset, keys, studyTime); !errors.Is(err, ErrBogusSignature) {
		t.Errorf("flipped signature: %v, want ErrBogusSignature", err)
	}
}

func TestAnySingleBitflipFailsVerification(t *testing.T) {
	// Property: flipping a random bit of a random signature byte always
	// yields ErrBogusSignature (P-256 signatures have no malleable bits in
	// this encoding given a fixed message).
	s := newTestSigner(t)
	rrset := testRRset()
	sigRR, err := SignRRset(s.ZSK, rrset, dnswire.Root, studyTime, studyTime.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	sig := sigRR.Data.(dnswire.RRSIGRecord)
	keys := []dnswire.DNSKEYRecord{s.ZSK.DNSKEY(dnswire.Root, 172800).Data.(dnswire.DNSKEYRecord)}
	f := func(pos uint16, bit uint8) bool {
		bad := sig
		bad.Signature = append([]byte(nil), sig.Signature...)
		bad.Signature[int(pos)%len(bad.Signature)] ^= 1 << (bit % 8)
		return errors.Is(VerifyRRset(bad, rrset, keys, studyTime), ErrBogusSignature)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

func TestKeyTagStable(t *testing.T) {
	s := newTestSigner(t)
	dk := s.ZSK.DNSKEY(dnswire.Root, 172800).Data.(dnswire.DNSKEYRecord)
	if KeyTag(dk) != s.ZSK.Tag() {
		t.Error("Tag() disagrees with KeyTag()")
	}
	dk2 := dk
	dk2.PublicKey = append([]byte(nil), dk.PublicKey...)
	dk2.PublicKey[0] ^= 0xFF
	if KeyTag(dk2) == KeyTag(dk) {
		t.Error("key tag unchanged after key mutation (unlikely)")
	}
}

func TestSignZoneAndValidate(t *testing.T) {
	s := newTestSigner(t)
	cfg := zone.DefaultRootConfig()
	cfg.TLDCount = 30
	unsigned := zone.SynthesizeRoot(cfg)
	signed, err := s.Sign(unsigned, studyTime)
	if err != nil {
		t.Fatal(err)
	}
	anchor := s.TrustAnchor().Data.(dnswire.DSRecord)
	if err := ValidateZone(signed, anchor, studyTime.Add(24*time.Hour)); err != nil {
		t.Fatalf("validate: %v", err)
	}
	// Signed zone must contain DNSKEY, RRSIG, NSEC records.
	for _, typ := range []dnswire.Type{dnswire.TypeDNSKEY, dnswire.TypeRRSIG, dnswire.TypeNSEC} {
		found := false
		for _, rr := range signed.Records {
			if rr.Type() == typ {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("signed zone lacks %s records", typ)
		}
	}
}

func TestValidateZoneDetectsTampering(t *testing.T) {
	s := newTestSigner(t)
	cfg := zone.DefaultRootConfig()
	cfg.TLDCount = 10
	signed, err := s.Sign(zone.SynthesizeRoot(cfg), studyTime)
	if err != nil {
		t.Fatal(err)
	}
	anchor := s.TrustAnchor().Data.(dnswire.DSRecord)

	// Tamper with the SOA serial (a signed apex RRset).
	tampered := signed.BumpSerial(signed.Serial() + 1)
	err = ValidateZone(tampered, anchor, studyTime)
	if !errors.Is(err, ErrBogusSignature) {
		t.Errorf("tampered zone: %v, want ErrBogusSignature", err)
	}

	// Validate far in the future: expired.
	err = ValidateZone(signed, anchor, studyTime.Add(30*24*time.Hour))
	if !errors.Is(err, ErrSignatureExpired) {
		t.Errorf("future validation: %v, want ErrSignatureExpired", err)
	}

	// Validate before inception (minus skew): not incepted.
	err = ValidateZone(signed, anchor, studyTime.Add(-24*time.Hour))
	if !errors.Is(err, ErrSignatureNotIncepted) {
		t.Errorf("past validation: %v, want ErrSignatureNotIncepted", err)
	}

	// Wrong trust anchor.
	other := newTestSigner(t)
	// Different randomness stream: regenerate with a different seed.
	otherSigner, err := NewSigner(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	_ = other
	err = ValidateZone(signed, otherSigner.TrustAnchor().Data.(dnswire.DSRecord), studyTime)
	if !errors.Is(err, ErrBogusSignature) {
		t.Errorf("wrong anchor: %v, want ErrBogusSignature", err)
	}
}

func TestSignRejectsAlreadySigned(t *testing.T) {
	s := newTestSigner(t)
	cfg := zone.DefaultRootConfig()
	cfg.TLDCount = 5
	signed, err := s.Sign(zone.SynthesizeRoot(cfg), studyTime)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sign(signed, studyTime); err == nil {
		t.Error("re-signing a signed zone succeeded")
	}
}

func TestNSECChainClosed(t *testing.T) {
	s := newTestSigner(t)
	cfg := zone.DefaultRootConfig()
	cfg.TLDCount = 12
	signed, err := s.Sign(zone.SynthesizeRoot(cfg), studyTime)
	if err != nil {
		t.Fatal(err)
	}
	// Follow the NSEC chain from the apex; it must return to the apex after
	// visiting every NSEC owner exactly once.
	nsecAt := make(map[dnswire.Name]dnswire.NSECRecord)
	for _, rr := range signed.Records {
		if n, ok := rr.Data.(dnswire.NSECRecord); ok {
			nsecAt[rr.Name.Canonical()] = n
		}
	}
	if len(nsecAt) == 0 {
		t.Fatal("no NSEC records")
	}
	cur := dnswire.Root
	for i := 0; i < len(nsecAt); i++ {
		n, ok := nsecAt[cur]
		if !ok {
			t.Fatalf("chain broken at %s", cur)
		}
		cur = n.NextName.Canonical()
	}
	if cur != dnswire.Root {
		t.Errorf("chain did not close: ended at %s", cur)
	}
}

func TestDSRecordFormat(t *testing.T) {
	s := newTestSigner(t)
	ds := s.TrustAnchor().Data.(dnswire.DSRecord)
	if ds.DigestType != 2 || len(ds.Digest) != 32 {
		t.Errorf("DS = %+v", ds)
	}
	if ds.KeyTag != s.KSK.Tag() {
		t.Error("DS key tag mismatch")
	}
}

func TestGlueNotSigned(t *testing.T) {
	s := newTestSigner(t)
	cfg := zone.DefaultRootConfig()
	cfg.TLDCount = 5
	signed, err := s.Sign(zone.SynthesizeRoot(cfg), studyTime)
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range signed.Records {
		sig, ok := rr.Data.(dnswire.RRSIGRecord)
		if !ok {
			continue
		}
		if rr.Name != dnswire.Root && (sig.TypeCovered == dnswire.TypeA ||
			sig.TypeCovered == dnswire.TypeAAAA || sig.TypeCovered == dnswire.TypeNS) {
			t.Errorf("non-apex %s RRSIG over %s: glue/delegations must not be signed",
				rr.Name, sig.TypeCovered)
		}
	}
}

func TestRSASignVerify(t *testing.T) {
	ksk, err := GenerateRSAKey(257, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if ksk.Algorithm() != dnswire.AlgRSASHA256 {
		t.Fatalf("algorithm = %d", ksk.Algorithm())
	}
	rrset := testRRset()
	sigRR, err := SignRRset(ksk, rrset, dnswire.Root, studyTime, studyTime.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	sig := sigRR.Data.(dnswire.RRSIGRecord)
	if sig.Algorithm != dnswire.AlgRSASHA256 {
		t.Errorf("RRSIG algorithm = %d", sig.Algorithm)
	}
	keys := []dnswire.DNSKEYRecord{ksk.DNSKEY(dnswire.Root, 172800).Data.(dnswire.DNSKEYRecord)}
	if err := VerifyRRset(sig, rrset, keys, studyTime); err != nil {
		t.Errorf("verify: %v", err)
	}
	// A single bit flip breaks it.
	bad := sig
	bad.Signature = append([]byte(nil), sig.Signature...)
	bad.Signature[20] ^= 0x04
	if err := VerifyRRset(bad, rrset, keys, studyTime); !errors.Is(err, ErrBogusSignature) {
		t.Errorf("flipped RSA signature: %v", err)
	}
	// Covered-data change breaks it.
	flipped := testRRset()
	flipped[0].Data = dnswire.NSRecord{Host: dnswire.MustName("x.root-servers.net.")}
	if err := VerifyRRset(sig, flipped, keys, studyTime); !errors.Is(err, ErrBogusSignature) {
		t.Errorf("flipped RSA data: %v", err)
	}
}

func TestRSAPublicKeyRoundTrip(t *testing.T) {
	k, err := GenerateRSAKey(256, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	wire := rsaPublicKeyBytes(&k.RSA.PublicKey)
	back, err := parseRSAPublicKey(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.E != k.RSA.PublicKey.E || back.N.Cmp(k.RSA.PublicKey.N) != 0 {
		t.Error("RSA public key round trip mismatch")
	}
	if _, err := parseRSAPublicKey([]byte{1}); err == nil {
		t.Error("truncated key accepted")
	}
	if _, err := parseRSAPublicKey([]byte{1, 0, 5, 6}); err == nil {
		t.Error("implausible exponent accepted")
	}
}

func TestMixedAlgorithmZone(t *testing.T) {
	// RSA KSK + ECDSA ZSK, like a real algorithm-rollover transition state:
	// the validator must handle both algorithms in one DNSKEY RRset.
	ksk, err := GenerateRSAKey(257, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	zsk, err := GenerateKey(256, rand.New(rand.NewSource(14)))
	if err != nil {
		t.Fatal(err)
	}
	s := &Signer{KSK: ksk, ZSK: zsk,
		SignatureValidity: 14 * 24 * time.Hour, InceptionSkew: 4 * time.Hour}
	cfg := zone.DefaultRootConfig()
	cfg.TLDCount = 8
	signed, err := s.Sign(zone.SynthesizeRoot(cfg), studyTime)
	if err != nil {
		t.Fatal(err)
	}
	anchor := s.TrustAnchor().Data.(dnswire.DSRecord)
	if anchor.Algorithm != dnswire.AlgRSASHA256 {
		t.Errorf("anchor algorithm = %d", anchor.Algorithm)
	}
	if err := ValidateZone(signed, anchor, studyTime.Add(time.Hour)); err != nil {
		t.Errorf("mixed-algorithm zone validation: %v", err)
	}
}

func TestAlgorithmName(t *testing.T) {
	if AlgorithmName(8) != "RSASHA256" || AlgorithmName(13) != "ECDSAP256SHA256" {
		t.Error("algorithm names")
	}
	if AlgorithmName(99) != "ALG99" {
		t.Error("unknown algorithm name")
	}
}

func TestUnsupportedAlgorithmRejected(t *testing.T) {
	s := newTestSigner(t)
	rrset := testRRset()
	sigRR, err := SignRRset(s.ZSK, rrset, dnswire.Root, studyTime, studyTime.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	sig := sigRR.Data.(dnswire.RRSIGRecord)
	sig.Algorithm = 5 // RSASHA1: unsupported here
	dk := s.ZSK.DNSKEY(dnswire.Root, 172800).Data.(dnswire.DNSKEYRecord)
	dk.Algorithm = 5
	// Mutating the algorithm changes the key tag, so the lookup may fail
	// with ErrUnknownKey before reaching the algorithm switch; recompute
	// the tag so the key matches and the algorithm check is exercised.
	sig.KeyTag = KeyTag(dk)
	err = VerifyRRset(sig, rrset, []dnswire.DNSKEYRecord{dk}, studyTime)
	if !errors.Is(err, ErrBogusSignature) {
		t.Errorf("unsupported algorithm verdict: %v", err)
	}
}
