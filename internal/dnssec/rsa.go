package dnssec

import (
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"fmt"
	"io"
	"math/big"

	"repro/internal/dnswire"
)

// The real root zone signs with RSA/SHA-256 (algorithm 8); this file adds
// that algorithm next to the ECDSA-P256 default. Public keys follow the
// RFC 3110 wire format: a length-prefixed exponent followed by the modulus.

// rsaKeyBits is the modulus size for generated RSA keys, matching the root
// zone's ZSK size.
const rsaKeyBits = 2048

// GenerateRSAKey creates an RSA/SHA-256 (algorithm 8) key pair.
func GenerateRSAKey(flags uint16, rnd io.Reader) (*Key, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	priv, err := rsa.GenerateKey(rnd, rsaKeyBits)
	if err != nil {
		return nil, fmt.Errorf("dnssec: generate RSA key: %w", err)
	}
	return &Key{Flags: flags, RSA: priv}, nil
}

// rsaPublicKeyBytes encodes the public key per RFC 3110 §2.
func rsaPublicKeyBytes(pub *rsa.PublicKey) []byte {
	exp := big.NewInt(int64(pub.E)).Bytes()
	var out []byte
	if len(exp) <= 255 {
		out = append(out, byte(len(exp)))
	} else {
		out = append(out, 0, byte(len(exp)>>8), byte(len(exp)))
	}
	out = append(out, exp...)
	return append(out, pub.N.Bytes()...)
}

// parseRSAPublicKey decodes the RFC 3110 wire format.
func parseRSAPublicKey(data []byte) (*rsa.PublicKey, error) {
	if len(data) < 3 {
		return nil, fmt.Errorf("dnssec: RSA key too short")
	}
	expLen := int(data[0])
	off := 1
	if expLen == 0 {
		if len(data) < 3 {
			return nil, fmt.Errorf("dnssec: RSA key too short")
		}
		expLen = int(data[1])<<8 | int(data[2])
		off = 3
	}
	if len(data) < off+expLen+1 {
		return nil, fmt.Errorf("dnssec: RSA key truncated")
	}
	exp := new(big.Int).SetBytes(data[off : off+expLen])
	if !exp.IsInt64() || exp.Int64() > 1<<31 || exp.Int64() < 3 {
		return nil, fmt.Errorf("dnssec: implausible RSA exponent")
	}
	return &rsa.PublicKey{
		N: new(big.Int).SetBytes(data[off+expLen:]),
		E: int(exp.Int64()),
	}, nil
}

// signRSA produces the PKCS#1 v1.5 signature over digest.
func signRSA(priv *rsa.PrivateKey, digest []byte) ([]byte, error) {
	return rsa.SignPKCS1v15(rand.Reader, priv, cryptoSHA256, digest)
}

// verifyRSA checks a PKCS#1 v1.5 signature.
func verifyRSA(keyData, digest, sig []byte) error {
	pub, err := parseRSAPublicKey(keyData)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBogusSignature, err)
	}
	if err := rsa.VerifyPKCS1v15(pub, cryptoSHA256, digest, sig); err != nil {
		return ErrBogusSignature
	}
	return nil
}

// sha256Digest is a helper shared by both algorithms.
func sha256Digest(data []byte) []byte {
	sum := sha256.Sum256(data)
	return sum[:]
}

// AlgorithmName returns the mnemonic for the supported algorithms.
func AlgorithmName(alg uint8) string {
	switch alg {
	case dnswire.AlgRSASHA256:
		return "RSASHA256"
	case dnswire.AlgECDSAP256SHA256:
		return "ECDSAP256SHA256"
	}
	return fmt.Sprintf("ALG%d", alg)
}
