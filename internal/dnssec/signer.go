package dnssec

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/dnswire"
	"repro/internal/zone"
)

// Signer signs whole zones with a KSK/ZSK split, as the root zone is signed:
// the KSK signs the DNSKEY RRset, the ZSK signs everything else.
type Signer struct {
	KSK *Key
	ZSK *Key
	// SignatureValidity is the inception→expiration window; the real root
	// uses roughly two weeks with staggered windows.
	SignatureValidity time.Duration
	// InceptionSkew backdates inception to tolerate slightly slow clocks.
	InceptionSkew time.Duration
}

// NewSigner generates a fresh ECDSA-P256 KSK+ZSK signer with root-like
// validity parameters. rnd may be nil for crypto/rand. The simulation
// defaults to ECDSA for signing speed; NewRSASigner matches the real root's
// algorithm.
func NewSigner(rnd interface{ Read([]byte) (int, error) }) (*Signer, error) {
	ksk, err := GenerateKey(257, rnd)
	if err != nil {
		return nil, err
	}
	zsk, err := GenerateKey(256, rnd)
	if err != nil {
		return nil, err
	}
	return &Signer{
		KSK:               ksk,
		ZSK:               zsk,
		SignatureValidity: 14 * 24 * time.Hour,
		InceptionSkew:     4 * time.Hour,
	}, nil
}

// NewDeterministicSigner derives an ECDSA-P256 KSK+ZSK signer purely from
// seed: the same seed always yields the same keys and (signing being
// deterministic) the same signature bytes, which makes whole simulation
// reports reproducible byte-for-byte across runs and worker counts.
func NewDeterministicSigner(seed int64) *Signer {
	return &Signer{
		KSK:               DeterministicKey(257, []byte(fmt.Sprintf("repro-ksk:%d", seed))),
		ZSK:               DeterministicKey(256, []byte(fmt.Sprintf("repro-zsk:%d", seed))),
		SignatureValidity: 14 * 24 * time.Hour,
		InceptionSkew:     4 * time.Hour,
	}
}

// NewRSASigner generates an RSA/SHA-256 KSK+ZSK signer — algorithm 8, the
// one the real root zone signs with.
func NewRSASigner(rnd interface{ Read([]byte) (int, error) }) (*Signer, error) {
	ksk, err := GenerateRSAKey(257, rnd)
	if err != nil {
		return nil, err
	}
	zsk, err := GenerateRSAKey(256, rnd)
	if err != nil {
		return nil, err
	}
	return &Signer{
		KSK:               ksk,
		ZSK:               zsk,
		SignatureValidity: 14 * 24 * time.Hour,
		InceptionSkew:     4 * time.Hour,
	}, nil
}

// TrustAnchor returns the DS record for the signer's KSK at the root, the
// validator's trust anchor.
func (s *Signer) TrustAnchor() dnswire.RR {
	return s.KSK.DS(dnswire.Root, 172800)
}

// rrsetKey groups records into RRsets.
type rrsetKey struct {
	name dnswire.Name
	typ  dnswire.Type
}

// Sign returns a signed copy of z at time now: DNSKEY RRset added and
// KSK-signed, every other RRset ZSK-signed, NSEC chain built over the owner
// names. The input zone must not already contain DNSSEC records.
func (s *Signer) Sign(z *zone.Zone, now time.Time) (*zone.Zone, error) {
	for _, rr := range z.Records {
		switch rr.Type() {
		case dnswire.TypeRRSIG, dnswire.TypeNSEC, dnswire.TypeDNSKEY:
			return nil, fmt.Errorf("dnssec: zone already contains %s records", rr.Type())
		}
	}
	soa, ok := z.SOA()
	if !ok {
		return nil, errors.New("dnssec: zone has no SOA")
	}
	minTTL := soa.Data.(dnswire.SOARecord).Minimum

	out := z.Clone()
	const dnskeyTTL = 172800
	out.Add(s.KSK.DNSKEY(z.Apex, dnskeyTTL), s.ZSK.DNSKEY(z.Apex, dnskeyTTL))
	out.Add(s.nsecChain(out, minTTL)...)

	inception := now.Add(-s.InceptionSkew)
	expiration := now.Add(s.SignatureValidity)

	// The zone sidecar already partitions the records into RRsets in
	// canonical order, so grouping needs no map-and-sort pass of its own.
	// The RRSIG's owner spelling and TTL come from the set's FIRST-INSERTED
	// record (the minimum original index) — the donor rule Sign has always
	// had, pinned byte-for-byte by TestSignZoneGoldenDigest — whereas the
	// sidecar orders members canonically, so the donor is re-selected here.
	var sigs []dnswire.RR
	var members []dnswire.RR
	for _, set := range out.RRsetIndices() {
		donor := set[0]
		for _, i := range set[1:] {
			if i < donor {
				donor = i
			}
		}
		first := out.Records[donor]
		// Glue (and other non-authoritative data below delegations) is not
		// signed. In the root zone only the apex and TLD delegation points
		// exist; NS sets at non-apex names are delegations and also unsigned,
		// but their NSEC and DS records would be — we sign NSEC here.
		if isGlueOrDelegation(z.Apex, first.Name, first.Type()) {
			continue
		}
		key := s.ZSK
		if first.Type() == dnswire.TypeDNSKEY {
			key = s.KSK
		}
		members = append(members[:0], first)
		for _, i := range set {
			if i != donor {
				members = append(members, out.Records[i])
			}
		}
		sig, err := SignRRset(key, members, z.Apex, inception, expiration)
		if err != nil {
			return nil, err
		}
		sigs = append(sigs, sig)
	}
	out.Add(sigs...)
	return out.Canonicalize(), nil
}

// isGlueOrDelegation reports whether an RRset (owner, typ) is
// non-authoritative data: NS sets below the apex (delegations) or address
// records at names below a delegation point (glue).
func isGlueOrDelegation(apex, owner dnswire.Name, typ dnswire.Type) bool {
	if owner.Canonical() == apex.Canonical() {
		return false
	}
	switch typ {
	case dnswire.TypeNS:
		return true
	case dnswire.TypeA, dnswire.TypeAAAA:
		return true // in a root zone, every non-apex A/AAAA is glue
	}
	return false
}

// nsecChain builds the NSEC chain over the zone's authoritative owner names.
// For the root zone, authoritative names are the apex and the TLDs.
func (s *Signer) nsecChain(z *zone.Zone, ttl uint32) []dnswire.RR {
	typesAt := make(map[dnswire.Name]map[dnswire.Type]bool)
	for _, rr := range z.Records {
		n := rr.Name.Canonical()
		if isGlueOrDelegation(z.Apex, rr.Name, rr.Type()) && rr.Type() != dnswire.TypeNS {
			continue
		}
		if typesAt[n] == nil {
			typesAt[n] = make(map[dnswire.Type]bool)
		}
		typesAt[n][rr.Type()] = true
	}
	names := make([]dnswire.Name, 0, len(typesAt))
	for n := range typesAt {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return dnswire.CompareCanonical(names[i], names[j]) < 0
	})
	chain := make([]dnswire.RR, 0, len(names))
	for i, n := range names {
		next := names[(i+1)%len(names)]
		var types []dnswire.Type
		for t := range typesAt[n] {
			types = append(types, t)
		}
		types = append(types, dnswire.TypeNSEC, dnswire.TypeRRSIG)
		sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
		chain = append(chain, dnswire.RR{
			Name: n, Class: dnswire.ClassINET, TTL: ttl,
			Data: dnswire.NSECRecord{NextName: next, Types: types},
		})
	}
	return chain
}

// ValidateZone fully validates a signed zone at time now: every signed RRset
// must carry at least one RRSIG that verifies against the zone's DNSKEY
// RRset, and the DNSKEY RRset itself must match the trust anchor DS. It
// returns the first error found, classified by the taxonomy errors.
func ValidateZone(z *zone.Zone, anchor dnswire.DSRecord, now time.Time) error {
	dnskeyRRs := z.Lookup(z.Apex, dnswire.TypeDNSKEY)
	if len(dnskeyRRs) == 0 {
		return errors.New("dnssec: zone has no DNSKEY RRset")
	}
	keys := make([]dnswire.DNSKEYRecord, 0, len(dnskeyRRs))
	anchorOK := false
	for _, rr := range dnskeyRRs {
		dk := rr.Data.(dnswire.DNSKEYRecord)
		keys = append(keys, dk)
		if dk.IsKSK() && KeyTag(dk) == anchor.KeyTag {
			if dsMatches(z.Apex, dk, anchor) {
				anchorOK = true
			}
		}
	}
	if !anchorOK {
		return fmt.Errorf("%w: DNSKEY RRset does not match trust anchor", ErrBogusSignature)
	}

	// Record indices (not copies) key the signature list so cached crypto
	// verdicts can be attached to the zone's sidecar per RRSIG.
	sigsFor := make(map[rrsetKey][]int)
	for i, rr := range z.Records {
		if sig, ok := rr.Data.(dnswire.RRSIGRecord); ok {
			k := rrsetKey{rr.Name.Canonical(), sig.TypeCovered}
			sigsFor[k] = append(sigsFor[k], i)
		}
	}
	// The sidecar's RRset groups arrive in canonical (name, type) order —
	// the same order signing iterates — so the first validation error
	// reported is deterministic.
	for _, set := range z.RRsetIndices() {
		first := z.Records[set[0]]
		t := first.Type()
		if t == dnswire.TypeRRSIG || isGlueOrDelegation(z.Apex, first.Name, t) {
			continue
		}
		k := rrsetKey{first.Name.Canonical(), t}
		sigIdxs := sigsFor[k]
		if len(sigIdxs) == 0 {
			return fmt.Errorf("%w: %s/%s", ErrNoSignature, k.name, k.typ)
		}
		var lastErr error
		ok := false
		for _, si := range sigIdxs {
			sig := z.Records[si].Data.(dnswire.RRSIGRecord)
			if err := verifyRRsetCached(z, si, sig, set, keys, now); err != nil {
				lastErr = fmt.Errorf("%s/%s: %w", k.name, k.typ, err)
			} else {
				ok = true
				break
			}
		}
		if !ok {
			return lastErr
		}
	}
	return nil
}

// verifyRRsetCached is VerifyRRset against a zone-resident RRset (set holds
// record indices, canonically ordered): temporal checks and key lookup run
// every time, but a signature whose crypto already verified against this
// zone's keys is accepted without redoing the ~50µs ECDSA verification —
// the dominant cost of warm-zone validation. Negative outcomes are never
// cached, so bogus signatures reproduce their exact error detail.
func verifyRRsetCached(z *zone.Zone, sigIdx int, sig dnswire.RRSIGRecord, set []int, keys []dnswire.DNSKEYRecord, now time.Time) error {
	if err := checkTemporal(sig, now); err != nil {
		return err
	}
	key := findKey(keys, sig)
	if key == nil {
		return fmt.Errorf("%w: tag %d", ErrUnknownKey, sig.KeyTag)
	}
	if z.SigVerdict(sigIdx) {
		return nil
	}
	if err := verifyCrypto(sig, key, signedDataZone(sig, z, set)); err != nil {
		return err
	}
	z.SetSigVerdict(sigIdx, true)
	return nil
}

// signedDataZone hashes the RFC 4034 §3.1.8.1 byte stream for a zone-resident
// RRset using the sidecar's cached canonical wire forms. set is already in
// canonical order, so unlike signedData no sort is needed; records whose TTL
// differs from the signature's original TTL fall back to a fresh encode into
// a reused scratch buffer.
func signedDataZone(sig dnswire.RRSIGRecord, z *zone.Zone, set []int) []byte {
	h := sha256.New()
	preamble := sig
	preamble.Signature = nil
	preamble.SignerName = preamble.SignerName.Canonical()
	h.Write(appendRRSIGPreamble(nil, preamble))
	var scratch []byte
	for _, i := range set {
		rr := z.Records[i]
		if rr.TTL == sig.OriginalTTL {
			h.Write(z.CanonicalWire(i))
		} else {
			scratch = dnswire.AppendCanonicalRR(scratch[:0], rr, sig.OriginalTTL)
			h.Write(scratch)
		}
	}
	return h.Sum(nil)
}

// dsMatches recomputes the DS digest of dk and compares it to anchor.
func dsMatches(owner dnswire.Name, dk dnswire.DNSKEYRecord, anchor dnswire.DSRecord) bool {
	if anchor.DigestType != 2 {
		return false
	}
	h := sha256.New()
	h.Write(canonicalOwner(owner))
	h.Write(dnskeyRdata(dk))
	return bytes.Equal(h.Sum(nil), anchor.Digest)
}
