package dnssec

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/dnswire"
	"repro/internal/zone"
)

// Signer signs whole zones with a KSK/ZSK split, as the root zone is signed:
// the KSK signs the DNSKEY RRset, the ZSK signs everything else.
type Signer struct {
	KSK *Key
	ZSK *Key
	// SignatureValidity is the inception→expiration window; the real root
	// uses roughly two weeks with staggered windows.
	SignatureValidity time.Duration
	// InceptionSkew backdates inception to tolerate slightly slow clocks.
	InceptionSkew time.Duration
}

// NewSigner generates a fresh ECDSA-P256 KSK+ZSK signer with root-like
// validity parameters. rnd may be nil for crypto/rand. The simulation
// defaults to ECDSA for signing speed; NewRSASigner matches the real root's
// algorithm.
func NewSigner(rnd interface{ Read([]byte) (int, error) }) (*Signer, error) {
	ksk, err := GenerateKey(257, rnd)
	if err != nil {
		return nil, err
	}
	zsk, err := GenerateKey(256, rnd)
	if err != nil {
		return nil, err
	}
	return &Signer{
		KSK:               ksk,
		ZSK:               zsk,
		SignatureValidity: 14 * 24 * time.Hour,
		InceptionSkew:     4 * time.Hour,
	}, nil
}

// NewDeterministicSigner derives an ECDSA-P256 KSK+ZSK signer purely from
// seed: the same seed always yields the same keys and (signing being
// deterministic) the same signature bytes, which makes whole simulation
// reports reproducible byte-for-byte across runs and worker counts.
func NewDeterministicSigner(seed int64) *Signer {
	return &Signer{
		KSK:               DeterministicKey(257, []byte(fmt.Sprintf("repro-ksk:%d", seed))),
		ZSK:               DeterministicKey(256, []byte(fmt.Sprintf("repro-zsk:%d", seed))),
		SignatureValidity: 14 * 24 * time.Hour,
		InceptionSkew:     4 * time.Hour,
	}
}

// NewRSASigner generates an RSA/SHA-256 KSK+ZSK signer — algorithm 8, the
// one the real root zone signs with.
func NewRSASigner(rnd interface{ Read([]byte) (int, error) }) (*Signer, error) {
	ksk, err := GenerateRSAKey(257, rnd)
	if err != nil {
		return nil, err
	}
	zsk, err := GenerateRSAKey(256, rnd)
	if err != nil {
		return nil, err
	}
	return &Signer{
		KSK:               ksk,
		ZSK:               zsk,
		SignatureValidity: 14 * 24 * time.Hour,
		InceptionSkew:     4 * time.Hour,
	}, nil
}

// TrustAnchor returns the DS record for the signer's KSK at the root, the
// validator's trust anchor.
func (s *Signer) TrustAnchor() dnswire.RR {
	return s.KSK.DS(dnswire.Root, 172800)
}

// rrsetKey groups records into RRsets.
type rrsetKey struct {
	name dnswire.Name
	typ  dnswire.Type
}

// Sign returns a signed copy of z at time now: DNSKEY RRset added and
// KSK-signed, every other RRset ZSK-signed, NSEC chain built over the owner
// names. The input zone must not already contain DNSSEC records.
func (s *Signer) Sign(z *zone.Zone, now time.Time) (*zone.Zone, error) {
	for _, rr := range z.Records {
		switch rr.Type() {
		case dnswire.TypeRRSIG, dnswire.TypeNSEC, dnswire.TypeDNSKEY:
			return nil, fmt.Errorf("dnssec: zone already contains %s records", rr.Type())
		}
	}
	soa, ok := z.SOA()
	if !ok {
		return nil, errors.New("dnssec: zone has no SOA")
	}
	minTTL := soa.Data.(dnswire.SOARecord).Minimum

	out := z.Clone()
	const dnskeyTTL = 172800
	out.Add(s.KSK.DNSKEY(z.Apex, dnskeyTTL), s.ZSK.DNSKEY(z.Apex, dnskeyTTL))
	out.Add(s.nsecChain(out, minTTL)...)

	inception := now.Add(-s.InceptionSkew)
	expiration := now.Add(s.SignatureValidity)

	rrsets := groupRRsets(out.Records)
	var sigs []dnswire.RR
	for _, set := range rrsets {
		// Glue (and other non-authoritative data below delegations) is not
		// signed. In the root zone only the apex and TLD delegation points
		// exist; NS sets at non-apex names are delegations and also unsigned,
		// but their NSEC and DS records would be — we sign NSEC here.
		if isGlueOrDelegation(z.Apex, set) {
			continue
		}
		key := s.ZSK
		if set[0].Type() == dnswire.TypeDNSKEY {
			key = s.KSK
		}
		sig, err := SignRRset(key, set, z.Apex, inception, expiration)
		if err != nil {
			return nil, err
		}
		sigs = append(sigs, sig)
	}
	out.Add(sigs...)
	return out.Canonicalize(), nil
}

// groupRRsets splits records into RRsets in deterministic order.
func groupRRsets(records []dnswire.RR) [][]dnswire.RR {
	groups := make(map[rrsetKey][]dnswire.RR)
	var order []rrsetKey
	for _, rr := range records {
		k := rrsetKey{rr.Name.Canonical(), rr.Type()}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], rr)
	}
	sort.Slice(order, func(i, j int) bool {
		if c := dnswire.CompareCanonical(order[i].name, order[j].name); c != 0 {
			return c < 0
		}
		return order[i].typ < order[j].typ
	})
	out := make([][]dnswire.RR, 0, len(order))
	for _, k := range order {
		out = append(out, groups[k])
	}
	return out
}

// isGlueOrDelegation reports whether the RRset is non-authoritative data:
// NS sets below the apex (delegations) or address records at names below a
// delegation point (glue).
func isGlueOrDelegation(apex dnswire.Name, set []dnswire.RR) bool {
	owner := set[0].Name
	if owner.Canonical() == apex.Canonical() {
		return false
	}
	switch set[0].Type() {
	case dnswire.TypeNS:
		return true
	case dnswire.TypeA, dnswire.TypeAAAA:
		return true // in a root zone, every non-apex A/AAAA is glue
	}
	return false
}

// nsecChain builds the NSEC chain over the zone's authoritative owner names.
// For the root zone, authoritative names are the apex and the TLDs.
func (s *Signer) nsecChain(z *zone.Zone, ttl uint32) []dnswire.RR {
	typesAt := make(map[dnswire.Name]map[dnswire.Type]bool)
	for _, rr := range z.Records {
		n := rr.Name.Canonical()
		if isGlueOrDelegation(z.Apex, []dnswire.RR{rr}) && rr.Type() != dnswire.TypeNS {
			continue
		}
		if typesAt[n] == nil {
			typesAt[n] = make(map[dnswire.Type]bool)
		}
		typesAt[n][rr.Type()] = true
	}
	names := make([]dnswire.Name, 0, len(typesAt))
	for n := range typesAt {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return dnswire.CompareCanonical(names[i], names[j]) < 0
	})
	chain := make([]dnswire.RR, 0, len(names))
	for i, n := range names {
		next := names[(i+1)%len(names)]
		var types []dnswire.Type
		for t := range typesAt[n] {
			types = append(types, t)
		}
		types = append(types, dnswire.TypeNSEC, dnswire.TypeRRSIG)
		sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
		chain = append(chain, dnswire.RR{
			Name: n, Class: dnswire.ClassINET, TTL: ttl,
			Data: dnswire.NSECRecord{NextName: next, Types: types},
		})
	}
	return chain
}

// ValidateZone fully validates a signed zone at time now: every signed RRset
// must carry at least one RRSIG that verifies against the zone's DNSKEY
// RRset, and the DNSKEY RRset itself must match the trust anchor DS. It
// returns the first error found, classified by the taxonomy errors.
func ValidateZone(z *zone.Zone, anchor dnswire.DSRecord, now time.Time) error {
	dnskeyRRs := z.Lookup(z.Apex, dnswire.TypeDNSKEY)
	if len(dnskeyRRs) == 0 {
		return errors.New("dnssec: zone has no DNSKEY RRset")
	}
	keys := make([]dnswire.DNSKEYRecord, 0, len(dnskeyRRs))
	anchorOK := false
	for _, rr := range dnskeyRRs {
		dk := rr.Data.(dnswire.DNSKEYRecord)
		keys = append(keys, dk)
		if dk.IsKSK() && KeyTag(dk) == anchor.KeyTag {
			if dsMatches(z.Apex, dk, anchor) {
				anchorOK = true
			}
		}
	}
	if !anchorOK {
		return fmt.Errorf("%w: DNSKEY RRset does not match trust anchor", ErrBogusSignature)
	}

	sigsFor := make(map[rrsetKey][]dnswire.RRSIGRecord)
	for _, rr := range z.Records {
		if sig, ok := rr.Data.(dnswire.RRSIGRecord); ok {
			k := rrsetKey{rr.Name.Canonical(), sig.TypeCovered}
			sigsFor[k] = append(sigsFor[k], sig)
		}
	}
	for _, set := range groupRRsets(z.Records) {
		t := set[0].Type()
		if t == dnswire.TypeRRSIG || isGlueOrDelegation(z.Apex, set) {
			continue
		}
		k := rrsetKey{set[0].Name.Canonical(), t}
		sigs := sigsFor[k]
		if len(sigs) == 0 {
			return fmt.Errorf("%w: %s/%s", ErrNoSignature, k.name, k.typ)
		}
		var lastErr error
		ok := false
		for _, sig := range sigs {
			if err := VerifyRRset(sig, set, keys, now); err != nil {
				lastErr = fmt.Errorf("%s/%s: %w", k.name, k.typ, err)
			} else {
				ok = true
				break
			}
		}
		if !ok {
			return lastErr
		}
	}
	return nil
}

// dsMatches recomputes the DS digest of dk and compares it to anchor.
func dsMatches(owner dnswire.Name, dk dnswire.DNSKEYRecord, anchor dnswire.DSRecord) bool {
	if anchor.DigestType != 2 {
		return false
	}
	h := sha256.New()
	h.Write(canonicalOwner(owner))
	h.Write(dnskeyRdata(dk))
	return bytes.Equal(h.Sum(nil), anchor.Digest)
}
