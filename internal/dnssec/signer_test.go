package dnssec

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"testing"
	"time"

	"repro/internal/dnswire"
	"repro/internal/zone"
)

// TestSignRRSIGDonorInsertionFirst pins the owner/TTL donor rule Sign has
// always had: within an RRset, the FIRST-INSERTED record lends its exact
// owner spelling and TTL to the RRSIG. Records of one RRset may disagree on
// case and TTL (canonical grouping folds case; signing normalizes TTL to
// OriginalTTL), and the donor choice is visible in the signed zone's bytes —
// so re-anchoring Sign on the canonical sidecar must keep selecting the
// minimum-original-index member, not the canonically-first one.
func TestSignRRSIGDonorInsertionFirst(t *testing.T) {
	s := NewDeterministicSigner(7)
	z := zone.New(dnswire.Root)
	z.Add(dnswire.RR{
		Name: dnswire.Root, Class: dnswire.ClassINET, TTL: 86400,
		Data: dnswire.SOARecord{
			MName: dnswire.MustName("a.root-servers.net."),
			RName: dnswire.MustName("nstld.verisign-grs.com."),
			Serial: 2023100100, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 86400,
		},
	})
	z.Add(dnswire.RR{Name: dnswire.Root, Class: dnswire.ClassINET, TTL: 518400,
		Data: dnswire.NSRecord{Host: dnswire.MustName("a.root-servers.net.")}})
	z.Add(dnswire.RR{Name: dnswire.MustName("tld."), Class: dnswire.ClassINET, TTL: 172800,
		Data: dnswire.NSRecord{Host: dnswire.MustName("ns1.tld.")}})
	// One DS RRset at the delegation, inserted upper-case/TTL-300 first, then
	// lower-case/TTL-60: canonically the TTL-60 record sorts first by RDATA,
	// but the donor must stay the TTL-300 spelling.
	z.Add(dnswire.RR{Name: dnswire.MustName("TLD."), Class: dnswire.ClassINET, TTL: 300,
		Data: dnswire.DSRecord{KeyTag: 2, Algorithm: 13, DigestType: 2, Digest: make([]byte, 32)}})
	lo := make([]byte, 32)
	lo[0] = 1
	z.Add(dnswire.RR{Name: dnswire.MustName("tld."), Class: dnswire.ClassINET, TTL: 60,
		Data: dnswire.DSRecord{KeyTag: 1, Algorithm: 13, DigestType: 2, Digest: lo}})

	signed, err := s.Sign(z, studyTime)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rr := range signed.Records {
		sig, ok := rr.Data.(dnswire.RRSIGRecord)
		if !ok || sig.TypeCovered != dnswire.TypeDS {
			continue
		}
		found = true
		if got := rr.Name.String(); got != "TLD." {
			t.Errorf("DS RRSIG owner = %q, want first-inserted spelling \"TLD.\"", got)
		}
		if rr.TTL != 300 || sig.OriginalTTL != 300 {
			t.Errorf("DS RRSIG TTL/OriginalTTL = %d/%d, want first-inserted 300/300",
				rr.TTL, sig.OriginalTTL)
		}
	}
	if !found {
		t.Fatal("signed zone has no DS RRSIG")
	}
	anchor := s.TrustAnchor().Data.(dnswire.DSRecord)
	if err := ValidateZone(signed, anchor, studyTime.Add(time.Hour)); err != nil {
		t.Fatalf("mixed-case/TTL zone fails validation: %v", err)
	}
}

// TestSignZoneGoldenDigest pins the complete signed-zone bytes for a fixed
// seed, zone, and signing time. Everything in the chain is deterministic
// (seeded keys, RFC 6979-style nonces, canonical ordering), so this digest
// only moves when Sign's observable output does — it is the refactor guard
// for re-anchoring RRset grouping on the zone sidecar.
func TestSignZoneGoldenDigest(t *testing.T) {
	s := NewDeterministicSigner(7)
	cfg := zone.DefaultRootConfig()
	cfg.TLDCount = 12
	signed, err := s.Sign(zone.SynthesizeRoot(cfg), studyTime)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	var ttl [4]byte
	for i, rr := range signed.Records {
		// Original spelling and TTL are part of the observable output (the
		// canonical wire form folds both away), so hash them explicitly.
		h.Write([]byte(rr.Name))
		binary.BigEndian.PutUint32(ttl[:], rr.TTL)
		h.Write(ttl[:])
		h.Write(signed.CanonicalWire(i))
	}
	const want = "a3b553ff256c1a52235db55479a40f856ee9e49ac97eebdaf3c52736be19e9c8"
	if got := hex.EncodeToString(h.Sum(nil)); got != want {
		t.Errorf("signed zone digest drifted:\n got %s\nwant %s", got, want)
	}
}
