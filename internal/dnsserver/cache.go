package dnsserver

import "sync"

// defaultCacheBytes bounds the response cache when Config.CacheBytes is
// zero. A root zone's working set (every TLD referral × EDNS buckets) fits
// with room to spare; junk-query NXDOMAINs churn through the remainder.
const defaultCacheBytes = 8 << 20

// cacheEntryOverhead is the accounting charge per entry beyond its key and
// wire bytes, approximating map bucket and slice header costs.
const cacheEntryOverhead = 64

// respCache memoizes final response wires keyed by raw question-section
// bytes plus the EDNS bucket octet. Entries store exactly the bytes the
// slow path sent (ID patched per hit), so hits are byte-identical to
// recomputed answers by construction. The cache belongs to one serveState
// and is never invalidated in place: SetZone swaps the whole state, cache
// included, so stale entries are unreachable the instant a new zone lands.
//
// Eviction is insertion-order (oldest first) under a byte budget — the same
// policy as the battery's message cache, and good enough when the hot set
// (delegations, apex RRsets) is inserted early and junk NXDOMAINs churn the
// tail.
type respCache struct {
	mu sync.RWMutex
	//rootlint:guardedby mu
	entries map[string][]byte
	//rootlint:guardedby mu
	keys []string // insertion order; keys[evictHead:] are live
	//rootlint:guardedby mu
	evict int // index of the oldest live key
	//rootlint:guardedby mu
	bytes int64
	//rootlint:immutable-after-start
	budget int64
}

func newRespCache(budget int64) *respCache {
	if budget <= 0 {
		budget = defaultCacheBytes
	}
	return &respCache{entries: make(map[string][]byte), budget: budget}
}

// get returns the cached wire for key, or nil. The string(key) conversion
// in the map index does not allocate; callers must not retain the result
// past the next put (entries are immutable, so copying into the caller's
// response buffer is safe without holding the lock).
//
//rootlint:hotpath
func (c *respCache) get(key []byte) []byte {
	c.mu.RLock()
	wire := c.entries[string(key)]
	c.mu.RUnlock()
	return wire
}

// put inserts a copy of wire under a copy of key, evicting oldest-first
// until the entry fits. Runs on the miss path only, so its allocations and
// lock are off the hot path.
func (c *respCache) put(key, wire []byte) {
	k := string(key)
	entry := append([]byte(nil), wire...)
	sz := int64(len(k)+len(entry)) + cacheEntryOverhead
	if sz > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[k]; dup {
		// Another shard answered the same query first; keep its bytes.
		return
	}
	for c.bytes+sz > c.budget && c.evict < len(c.keys) {
		old := c.keys[c.evict]
		c.evict++
		if e, ok := c.entries[old]; ok {
			c.bytes -= int64(len(old)+len(e)) + cacheEntryOverhead
			delete(c.entries, old)
			mCacheEvictions.Inc()
		}
	}
	c.entries[k] = entry
	c.keys = append(c.keys, k)
	c.bytes += sz
	if c.evict > len(c.keys)/2 {
		// Drop the evicted prefix so the queue doesn't grow without bound.
		c.keys = append([]string(nil), c.keys[c.evict:]...)
		c.evict = 0
	}
}

// Len reports the live entry count (tests and introspection).
func (c *respCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}
