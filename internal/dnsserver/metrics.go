package dnsserver

import "repro/internal/telemetry"

// dns/queries is stream-class: the campaign's wire-check battery issues a
// deterministic query sequence per tick, serially, so the total is a pure
// function of the schedule. Query latency is wall-clock and only records
// behind the telemetry enable gate. The cache counters are volatile-class:
// hit/miss splits depend on packet arrival order across UDP shards.
var (
	mQueries        = telemetry.NewCounter("dns/queries")
	mQueryDur       = telemetry.NewHistogram("wallclock/dns_query_us")
	mCacheHits      = telemetry.NewCounter("dns/cache/hits")
	mCacheMisses    = telemetry.NewCounter("dns/cache/misses")
	mCacheEvictions = telemetry.NewCounter("dns/cache/evictions")
)

// RRL counters are process-class: every verdict is a pure function of
// (config, per-bucket arrival index), so a serial offered load reproduces
// them byte-identically across runs and shard counts — they are what the
// check.sh adversity step diffs. Sheds and TCP rejects are volatile: they
// exist precisely because queue drain and accept timing are wall-clock
// facts.
var (
	mRRLDrops     = telemetry.NewCounter("rrl/drops")
	mRRLSlips     = telemetry.NewCounter("rrl/slips")
	mRRLEvictions = telemetry.NewCounter("rrl/evictions")
	mSheds        = telemetry.NewCounter("serve/sheds")
	mTCPRejects   = telemetry.NewCounter("serve/tcp_rejects")
)
