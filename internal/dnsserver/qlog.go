package dnsserver

import "repro/internal/qlog"

// evServeQuery is the server-side flight-recorder event: one record per
// sampled query at its terminal point in the UDP pipeline. Claimed once, like
// a telemetry metric; the qlogfield analyzer cross-checks the field list
// against the qlog registry.
var evServeQuery = qlog.NewEvent("serve/query",
	"flow", "fidx", "fate", "verdict", "cache", "bucket", "edns", "do",
	"shed", "tc", "class", "rcode")

// serve/query enum values, in registry order. The rrl verdict and class
// enums deliberately reuse the rrlVerdict/rrlClass numbering shifted by the
// extra "none"/"ok" zero value where the registry has one.
const (
	qFateOK   = 0
	qFateDrop = 1

	qVerdictNone = 0
	qVerdictSend = 1
	qVerdictDrop = 2
	qVerdictSlip = 3
)

// qev is one query's flight-recorder context, threaded from the read loop to
// the terminal point (respond, shed, or ingress drop). The zero value means
// "not sampled", so unrecorded queries carry it for free.
type qev struct {
	sampled bool
	hit     bool // response served from the cache
	key     uint64
	flow    uint64
	fidx    uint64
}

// emitServe records the terminal serve/query event for one sampled query.
// Every terminal point of the UDP pipeline funnels through here, so a sampled
// query emits exactly one event. class/rcode/tc describe the response bytes
// the verdict left behind: the wire response for send, the suppressed
// response for an RRL drop, the TC stub for a slip, zero when no response was
// ever built (ingress drop, shed).
func (s *Server) emitServe(ev qev, pkt []byte, sh queryShape, fate, verdict, shed, tc, class, rcode uint64) {
	var bucket uint64
	switch s.bucketLimit(sh.hasEDNS, sh.adv) {
	case 4096:
		bucket = 2
	case 1232:
		bucket = 1
	}
	var edns, do, hit uint64
	if sh.hasEDNS {
		edns = 1
	}
	if sh.do {
		do = 1
	}
	if ev.hit {
		hit = 1
	}
	s.cfg.QLog.Emit(evServeQuery, ev.key, pkt[:sh.qEnd],
		ev.flow, ev.fidx, fate, verdict, hit, bucket, edns, do, shed, tc, class, rcode)
}

// qlogIngressDrop records a sampled query the emulated link swallowed on
// ingress. Loss fires before corruption in the link, so the dropped bytes are
// what the client sent and the key matches the client's record of the same
// query.
func (s *Server) qlogIngressDrop(pkt []byte, flow, fidx uint64) {
	sh := parseQueryShape(pkt)
	if !sh.ok {
		return
	}
	key := qlog.Key(pkt[:sh.qEnd])
	if !s.cfg.QLog.Sampled(key) {
		return
	}
	s.emitServe(qev{key: key, flow: flow, fidx: fidx}, pkt, sh,
		qFateDrop, qVerdictNone, 0, 0, 0, 0)
}

// respTC reads the response's TC bit for the flight recorder.
func respTC(resp []byte) uint64 {
	if len(resp) > 2 && resp[2]&0x02 != 0 {
		return 1
	}
	return 0
}

// respRcode reads the response's RCODE for the flight recorder.
func respRcode(resp []byte) uint64 {
	if len(resp) > 3 {
		return uint64(resp[3] & 0x0F)
	}
	return 0
}
