package dnsserver

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/dnswire"
	"repro/internal/netem"
	"repro/internal/qlog"
	"repro/internal/telemetry"
	"repro/internal/zone"
)

// adversityWires packs the fixed 20-query serial sequence the adversity
// tests drive: a cache-hitting SOA, a delegation, an NXDOMAIN, and an
// EDNS-sized priming query, cycled with distinct message IDs.
func adversityWires(t *testing.T) [][]byte {
	t.Helper()
	type qt struct {
		name dnswire.Name
		typ  dnswire.Type
		edns uint16
	}
	seq := []qt{
		{dnswire.Root, dnswire.TypeSOA, 0},
		{dnswire.MustName("www.com."), dnswire.TypeA, 0},
		{dnswire.MustName("nope.nosuchtld."), dnswire.TypeA, 0},
		{dnswire.Root, dnswire.TypeNS, 1232},
	}
	out := make([][]byte, 0, 20)
	for i := 0; i < 20; i++ {
		q := seq[i%len(seq)]
		msg := dnswire.NewQuery(uint16(i+1), q.name, q.typ)
		if q.edns > 0 {
			msg.WithEDNS(q.edns, true)
		}
		wire, err := msg.Pack()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, wire)
	}
	return out
}

// qlogAdversityRun drives the fixed serial adversity sequence (netem loss +
// corruption, RRL with slip) against a server recording a full-rate flight
// log, and returns the decoded events in canonical order.
func qlogAdversityRun(t *testing.T, z *zone.Zone, workers int) []qlog.Event {
	t.Helper()
	telemetry.Reset()
	var buf bytes.Buffer
	rec, err := qlog.New(&buf, qlog.Sampler{Every: 1, Seed: 7}, "")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Zone:         z,
		ServeWorkers: workers,
		RRL:          RRLConfig{Rate: 0.25, Burst: 2, Slip: 2, Seed: 7},
		Netem:        netem.Profile{Loss: 0.1, Corrupt: 0.05, Seed: 42},
		QLog:         rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := dialUDP(t, addr)

	for _, wire := range adversityWires(t) {
		sendMaybe(t, conn, wire, 120*time.Millisecond)
	}
	s.Close()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := qlog.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	evs, err := r.Events()
	if err != nil {
		t.Fatal(err)
	}
	if r.Torn() {
		t.Fatalf("flight log torn after clean close: %v", r.TornReason())
	}
	qlog.SortCanonical(evs)
	return evs
}

// TestFlightLogIdenticalAcrossWorkers pins the PR's headline invariant for
// the flight recorder: the canonically ordered event stream a serve run
// records is identical at any -serve-workers count — sampling and every
// recorded field are pure functions of wire bytes, seeds, and per-flow
// counters, never of shard scheduling.
func TestFlightLogIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("drives ~60 timed exchanges")
	}
	z, _ := signedRootZone(t, 10)
	base := qlogAdversityRun(t, z, 1)
	if len(base) == 0 {
		t.Fatal("adversity run recorded no flight-log events")
	}
	for name, workers := range map[string]int{"again-1": 1, "workers-4": 4} {
		got := qlogAdversityRun(t, z, workers)
		if len(got) != len(base) {
			t.Errorf("%s: %d events, first single-worker run had %d", name, len(got), len(base))
			continue
		}
		for i := range base {
			if qlog.Compare(base[i], got[i]) != 0 {
				t.Errorf("%s: event %d differs\n first: %s\n   got: %s", name, i, base[i], got[i])
				break
			}
		}
	}
}

// TestFlightLogSampledSubset pins the sampling contract at the serve layer:
// a 1/N sampler records exactly the full-rate run's events whose keys the
// sampler selects — a subset by key, not a different stream.
func TestFlightLogSampledSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("drives ~40 timed exchanges")
	}
	z, _ := signedRootZone(t, 10)
	full := qlogAdversityRun(t, z, 1)

	telemetry.Reset()
	var buf bytes.Buffer
	sampler := qlog.Sampler{Every: 2, Seed: 9}
	rec, err := qlog.New(&buf, sampler, "")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Zone:  z,
		RRL:   RRLConfig{Rate: 0.25, Burst: 2, Slip: 2, Seed: 7},
		Netem: netem.Profile{Loss: 0.1, Corrupt: 0.05, Seed: 42},
		QLog:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := dialUDP(t, addr)
	for _, wire := range adversityWires(t) {
		sendMaybe(t, conn, wire, 120*time.Millisecond)
	}
	s.Close()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := qlog.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Events()
	if err != nil {
		t.Fatal(err)
	}
	qlog.SortCanonical(got)

	var want []qlog.Event
	for _, e := range full {
		if sampler.Sampled(e.Key) {
			want = append(want, e)
		}
	}
	if len(want) == 0 || len(want) == len(full) {
		t.Fatalf("degenerate sample: %d of %d events selected; pick a different seed", len(want), len(full))
	}
	if len(got) != len(want) {
		t.Fatalf("sampled run recorded %d events, full run's sampled subset has %d", len(got), len(want))
	}
	for i := range want {
		if qlog.Compare(got[i], want[i]) != 0 {
			t.Fatalf("event %d differs\n  want: %s\n   got: %s", i, want[i], got[i])
		}
	}
}
