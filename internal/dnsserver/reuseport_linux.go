//go:build linux

package dnsserver

import (
	"context"
	"net"
	"syscall"
)

// soReusePort is SO_REUSEPORT, which the stdlib syscall package does not
// export on linux (and golang.org/x/sys is outside this repo's stdlib-only
// dependency budget).
const soReusePort = 0xf

// listenUDPReusePort opens a UDP socket with SO_REUSEPORT set before bind,
// so N independent sockets can share one address and the kernel shards
// incoming datagrams between them by flow hash — one read loop per socket
// with no cross-loop contention.
func listenUDPReusePort(addr string) (*net.UDPConn, error) {
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			if err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			}); err != nil {
				return err
			}
			return serr
		},
	}
	pc, err := lc.ListenPacket(context.Background(), "udp", addr)
	if err != nil {
		return nil, err
	}
	return pc.(*net.UDPConn), nil
}
