//go:build !linux

package dnsserver

import (
	"errors"
	"net"
)

// listenUDPReusePort reports SO_REUSEPORT as unavailable; Start falls back
// to N read loops sharing one socket (the runtime serializes reads on the
// fd, so throughput matches a single loop but correctness is identical).
func listenUDPReusePort(addr string) (*net.UDPConn, error) {
	return nil, errors.New("dnsserver: SO_REUSEPORT unsupported on this platform")
}
