package dnsserver

import (
	"fmt"
	"math"
	"net/netip"
	"strconv"
	"strings"
	"sync"

	"repro/internal/failpoint"
)

// RRLConfig configures BIND-style response-rate-limiting on the UDP path
// (TCP is exempt, as in BIND: a connected peer has already proven its
// source address, and the limiter's whole point is blunting reflection off
// spoofed UDP). A zero config disables the limiter.
//
// The classic algorithm refills each bucket at responses-per-second of
// wall clock; that would make every verdict a race against the scheduler.
// This limiter substitutes a logical clock — the bucket's own arrival
// count: each arriving query deposits Rate credits (capped at Burst) and a
// response costs one, so the steady-state send fraction per bucket is
// exactly Rate, the first Burst responses always pass, and verdict N for a
// bucket is a pure function of (config, N). See DESIGN.md §14.
type RRLConfig struct {
	// Rate is the credit deposited per arriving query, i.e. the
	// steady-state fraction of responses allowed per bucket, in (0, 1].
	// Zero disables RRL.
	Rate float64
	// Burst is the bucket's credit cap: how many responses a previously
	// quiet bucket may emit back to back. 0 means 8.
	Burst int
	// Slip answers every Nth suppressed response with a minimal truncated
	// (TC) reply instead of silence, so legitimate clients behind a
	// spoofed prefix can fall back to TCP. 0 never slips; 1 turns every
	// drop into a slip.
	Slip int
	// Prefix4/Prefix6 aggregate clients into address blocks, the unit of
	// limiting (spoofed floods vary the low bits). 0 means /24 and /56.
	Prefix4, Prefix6 int
	// TableBytes bounds the bucket table; oldest buckets are evicted
	// first, exactly like the response cache. 0 means 1 MiB.
	TableBytes int64
	// Seed roots the per-bucket slip phase so drop/slip interleavings are
	// seed-deterministic rather than starting every bucket in lockstep.
	Seed uint64
}

// rrlDefaults fills zero fields.
func (c RRLConfig) withDefaults() RRLConfig {
	if c.Burst == 0 {
		c.Burst = 8
	}
	if c.Prefix4 == 0 {
		c.Prefix4 = 24
	}
	if c.Prefix6 == 0 {
		c.Prefix6 = 56
	}
	if c.TableBytes <= 0 {
		c.TableBytes = 1 << 20
	}
	return c
}

// ParseRRL parses the -rrl flag syntax, e.g.
// "rate=0.5,burst=50,slip=2,prefix4=24,prefix6=56,tablebytes=1048576,seed=7".
// An empty spec returns the zero (disabled) config.
func ParseRRL(spec string) (RRLConfig, error) {
	var c RRLConfig
	if strings.TrimSpace(spec) == "" {
		return c, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return c, fmt.Errorf("rrl: bad pair %q (want key=value)", kv)
		}
		var err error
		switch k {
		case "rate":
			var f float64
			if f, err = strconv.ParseFloat(v, 64); err == nil {
				if f < 0 || f > 1 || math.IsNaN(f) {
					err = fmt.Errorf("out of [0,1]")
				}
			}
			c.Rate = f
		case "burst":
			c.Burst, err = strconv.Atoi(v)
		case "slip":
			c.Slip, err = strconv.Atoi(v)
		case "prefix4":
			c.Prefix4, err = strconv.Atoi(v)
		case "prefix6":
			c.Prefix6, err = strconv.Atoi(v)
		case "tablebytes":
			c.TableBytes, err = strconv.ParseInt(v, 10, 64)
		case "seed":
			c.Seed, err = strconv.ParseUint(v, 10, 64)
		default:
			return c, fmt.Errorf("rrl: unknown key %q", k)
		}
		if err != nil {
			return c, fmt.Errorf("rrl: bad %s=%q: %v", k, v, err)
		}
	}
	return c, nil
}

// rrlVerdict is the limiter's decision for one about-to-be-sent response.
type rrlVerdict uint8

const (
	rrlSend rrlVerdict = iota // under the rate: send the real response
	rrlDrop                   // suppressed entirely
	rrlSlip                   // suppressed, but answer a minimal TC stub
)

// Response classes, the second bucket dimension: an attacker must not be
// able to drain a victim's NXDOMAIN budget with queries that produce
// answers, and vice versa (BIND's error/nxdomain/normal split).
const (
	rrlClassAnswer byte = iota
	rrlClassNXDomain
	rrlClassError
)

// rrlClassify maps a packed response wire to its class from the rcode
// octet alone, so the cache-hit path never decodes.
func rrlClassify(resp []byte) byte {
	if len(resp) < udpHeaderLen {
		return rrlClassError
	}
	switch resp[3] & 0x0F {
	case 0:
		return rrlClassAnswer
	case 3:
		return rrlClassNXDomain
	default:
		return rrlClassError
	}
}

// rrlCreditUnit is the fixed-point scale for bucket credit.
const rrlCreditUnit = 1 << 16

// rrlBucket is one (client block × response class) account.
type rrlBucket struct {
	credit int64  // fixed-point, rrlCreditUnit per response
	denies uint64 // suppressions so far, phase-shifted by the seed for slip
}

// rrlBucketOverhead approximates per-entry map/struct cost for the byte
// budget, beyond the 17-byte key.
const rrlBucketOverhead = 80

// rrlState is the limiter: a byte-budgeted bucket table with insertion-
// order eviction (the respCache policy). One table serves all shards; the
// mutex is uncontended at test scale and a single cache line at line rate
// beats a per-shard split, which would make verdicts depend on kernel
// flow-hashing.
type rrlState struct {
	//rootlint:immutable-after-start
	cfg RRLConfig
	//rootlint:immutable-after-start
	credit int64 // per-query deposit, fixed point

	mu sync.Mutex
	//rootlint:guardedby mu
	buckets map[string]*rrlBucket
	//rootlint:guardedby mu
	keys []string // insertion order; keys[evict:] are live
	//rootlint:guardedby mu
	evict int
	//rootlint:guardedby mu
	bytes int64
}

// newRRL builds the limiter, or nil when cfg.Rate is zero (disabled): the
// nil receiver is the no-op, so the serve path stays a branch, not a call.
func newRRL(cfg RRLConfig) *rrlState {
	if cfg.Rate <= 0 {
		return nil
	}
	cfg = cfg.withDefaults()
	return &rrlState{
		cfg:     cfg,
		credit:  int64(cfg.Rate * rrlCreditUnit),
		buckets: make(map[string]*rrlBucket),
	}
}

// key writes the bucket key for (client, class) into dst: the prefix-
// masked 16-byte address plus the class octet. Alloc-free for the caller's
// reused buffer.
func (r *rrlState) key(dst []byte, client netip.Addr, class byte) []byte {
	ip := client.Unmap()
	b := ip.As16()
	bits := r.cfg.Prefix6
	if ip.Is4() {
		bits = 96 + r.cfg.Prefix4 // mask within the v4-mapped tail
	}
	for i := range b {
		switch {
		case bits >= 8:
			bits -= 8
		case bits <= 0:
			b[i] = 0
		default:
			b[i] &= ^byte(0) << (8 - bits)
			bits = 0
		}
	}
	dst = append(dst[:0], b[:]...)
	return append(dst, class)
}

// decide charges one response against (client, class) and returns the
// verdict. This is the single RRL failpoint site: an injected
// serve/rrl/decide error forces a drop verdict for exactly one response.
// Verdict N for a bucket depends only on (config, N), so any serial
// offered sequence gets byte-identical verdicts across runs and shard
// counts.
func (r *rrlState) decide(keyBuf []byte, client netip.Addr, class byte) rrlVerdict {
	if err := failpoint.Eval("serve/rrl/decide"); err != nil {
		mRRLDrops.Inc()
		return rrlDrop
	}
	key := r.key(keyBuf, client, class)
	r.mu.Lock()
	b := r.buckets[string(key)]
	if b == nil {
		b = r.insert(key)
	}
	b.credit += r.credit
	if lim := int64(r.cfg.Burst) * rrlCreditUnit; b.credit > lim {
		b.credit = lim
	}
	if b.credit >= rrlCreditUnit {
		b.credit -= rrlCreditUnit
		r.mu.Unlock()
		return rrlSend
	}
	deny := b.denies
	b.denies++
	r.mu.Unlock()
	if s := r.cfg.Slip; s > 0 && deny%uint64(s) == 0 {
		mRRLSlips.Inc()
		return rrlSlip
	}
	mRRLDrops.Inc()
	return rrlDrop
}

// insert adds a fresh bucket under the byte budget, evicting oldest-first.
// The new bucket starts at full burst minus nothing — its first deposit
// happens in decide — and its slip phase is seeded per key so bucket drop/
// slip interleavings differ deterministically. Caller holds r.mu.
func (r *rrlState) insert(key []byte) *rrlBucket {
	k := string(key)
	sz := int64(len(k)) + rrlBucketOverhead
	for r.bytes+sz > r.cfg.TableBytes && r.evict < len(r.keys) {
		old := r.keys[r.evict]
		r.evict++
		if _, ok := r.buckets[old]; ok {
			r.bytes -= int64(len(old)) + rrlBucketOverhead
			delete(r.buckets, old)
			mRRLEvictions.Inc()
		}
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(k); i++ {
		h = (h ^ uint64(k[i])) * 1099511628211
	}
	b := &rrlBucket{credit: int64(r.cfg.Burst) * rrlCreditUnit}
	if s := r.cfg.Slip; s > 1 {
		b.denies = splitmix64rrl(r.cfg.Seed^h) % uint64(s)
	}
	r.buckets[k] = b
	r.keys = append(r.keys, k)
	r.bytes += sz
	if r.evict > len(r.keys)/2 {
		r.keys = append([]string(nil), r.keys[r.evict:]...)
		r.evict = 0
	}
	return b
}

// Len reports live buckets (tests and introspection).
func (r *rrlState) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buckets)
}

// splitmix64rrl is the repo's standard seeded generator (local copy; the
// netem package is a consumer of this package's peer layer, not a dep).
func splitmix64rrl(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// appendSlipStub writes the minimal truncated reply for the raw query pkt
// (whose question section ends at qEnd) into dst: the query's ID, opcode
// and RD preserved; QR, AA cleared, TC set; NOERROR; the question echoed;
// all other sections empty. A resolver treats it exactly like an
// over-limit answer and falls back to TCP, where RRL does not apply.
func appendSlipStub(dst, pkt []byte, qEnd int) []byte {
	dst = append(dst[:0], pkt[:qEnd]...)
	dst[2] = (dst[2] & 0x79) | 0x82 // QR|TC set, AA cleared, opcode+RD kept
	dst[3] = 0                      // RA clear, NOERROR
	dst[6], dst[7] = 0, 0           // ancount
	dst[8], dst[9] = 0, 0           // nscount
	dst[10], dst[11] = 0, 0         // arcount
	return dst
}
