package dnsserver

import (
	"bytes"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/axfr"
	"repro/internal/dnsclient"
	"repro/internal/dnswire"
	"repro/internal/failpoint"
	"repro/internal/netem"
	"repro/internal/telemetry"
	"repro/internal/zone"
)

// sendMaybe sends wire on conn and waits up to d for one datagram. ok is
// false on a read timeout — the expected outcome for a dropped or
// rate-limited response.
func sendMaybe(tb testing.TB, conn *net.UDPConn, wire []byte, d time.Duration) ([]byte, bool) {
	tb.Helper()
	if _, err := conn.Write(wire); err != nil {
		tb.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(d))
	buf := make([]byte, 64*1024)
	n, err := conn.Read(buf)
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return nil, false
		}
		tb.Fatal(err)
	}
	return buf[:n], true
}

// dialUDP returns a connected UDP socket to the server.
func dialUDP(tb testing.TB, addr net.Addr) *net.UDPConn {
	tb.Helper()
	raddr, err := net.ResolveUDPAddr("udp", addr.String())
	if err != nil {
		tb.Fatal(err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { conn.Close() })
	return conn
}

// adversityRun drives one fixed serial query sequence against a server with
// RRL and a lossy netem profile, then returns the logical telemetry bytes.
// The client is deliberately serial (send, wait, send) so the per-flow
// packet order the link sees is the client's own order.
func adversityRun(t *testing.T, z *zone.Zone, workers int) []byte {
	t.Helper()
	telemetry.Reset()
	s, err := New(Config{
		Zone:         z,
		ServeWorkers: workers,
		RRL:          RRLConfig{Rate: 0.25, Burst: 2, Slip: 2, Seed: 7},
		Netem:        netem.Profile{Loss: 0.1, Corrupt: 0.05, Seed: 42},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := dialUDP(t, addr)

	type qt struct {
		name dnswire.Name
		typ  dnswire.Type
		edns uint16
	}
	seq := []qt{
		{dnswire.Root, dnswire.TypeSOA, 0},
		{dnswire.MustName("www.com."), dnswire.TypeA, 0},
		{dnswire.MustName("nope.nosuchtld."), dnswire.TypeA, 0},
		{dnswire.Root, dnswire.TypeNS, 1232},
	}
	for i := 0; i < 20; i++ {
		q := seq[i%len(seq)]
		msg := dnswire.NewQuery(uint16(i+1), q.name, q.typ)
		if q.edns > 0 {
			msg.WithEDNS(q.edns, true)
		}
		wire, err := msg.Pack()
		if err != nil {
			t.Fatal(err)
		}
		sendMaybe(t, conn, wire, 120*time.Millisecond)
	}
	s.Close()
	return telemetry.MarshalLogical()
}

// TestRRLDeterministicAcrossWorkers pins the PR's headline invariant: with a
// fixed netem seed and RRL enabled, the logical telemetry namespace (stream
// + process classes — queries handled, packets dropped/corrupted, RRL
// drop/slip/eviction counts) is byte-identical across runs and across
// serve-worker counts. Volatile counters (cache hits, sheds) are excluded
// by scope, exactly as `rootanalyze -diff` excludes them.
func TestRRLDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("drives ~80 timed exchanges")
	}
	z, _ := signedRootZone(t, 10)
	base := adversityRun(t, z, 1)
	for name, workers := range map[string]int{"again-1": 1, "workers-4": 4} {
		got := adversityRun(t, z, workers)
		if !bytes.Equal(base, got) {
			t.Errorf("%s: logical telemetry differs from first single-worker run\n first: %s\n   got: %s",
				name, base, got)
		}
	}
}

// TestRRLSlipAnswersTruncated checks the slip path end to end: once a
// bucket's credit is exhausted, a slip=1 limiter answers every suppressed
// response with a minimal TC stub (same ID, question echoed, no answer
// records), and a real client recovers the full answer over TCP, where RRL
// does not apply.
func TestRRLSlipAnswersTruncated(t *testing.T) {
	z, _ := signedRootZone(t, 10)
	_, c := startServer(t, Config{
		Zone: z,
		RRL:  RRLConfig{Rate: 0.01, Burst: 1, Slip: 1, Seed: 1},
	})
	addr, _ := net.ResolveUDPAddr("udp", c.Addr)
	conn := dialUDP(t, addr)

	msg := dnswire.NewQuery(0x4242, dnswire.Root, dnswire.TypeSOA)
	wire, err := msg.Pack()
	if err != nil {
		t.Fatal(err)
	}
	first, ok := sendMaybe(t, conn, wire, time.Second)
	if !ok {
		t.Fatal("first response (burst credit) was suppressed")
	}
	resp, err := dnswire.Unpack(first)
	if err != nil || resp.Header.Truncated || len(resp.Answers) == 0 {
		t.Fatalf("first response: err=%v resp=%+v", err, resp)
	}

	stub, ok := sendMaybe(t, conn, wire, time.Second)
	if !ok {
		t.Fatal("suppressed response did not slip a TC stub")
	}
	if stub[0] != wire[0] || stub[1] != wire[1] {
		t.Errorf("stub ID = %x %x, want the query's", stub[0], stub[1])
	}
	if stub[2]&0x80 == 0 || stub[2]&0x02 == 0 {
		t.Errorf("stub flags byte %#x: want QR and TC set", stub[2])
	}
	if an := int(stub[6])<<8 | int(stub[7]); an != 0 {
		t.Errorf("stub ancount = %d, want 0", an)
	}
	// The question section must be echoed byte for byte.
	if !bytes.Equal(stub[4:6], wire[4:6]) || !bytes.Equal(stub[12:], wire[12:len(stub)]) {
		t.Error("stub question section differs from the query's")
	}

	// A real client sees the stub as truncation and falls back to TCP.
	full, err := c.Query(dnswire.Root, dnswire.TypeSOA)
	if err != nil {
		t.Fatal(err)
	}
	if full.Header.Truncated || len(full.Answers) == 0 {
		t.Errorf("TCP fallback answer: TC=%v answers=%d", full.Header.Truncated, len(full.Answers))
	}
}

// TestRRLDecideDeterministic drives two independently built limiters (and a
// third with a different seed) through the same offered sequence and checks
// verdict-for-verdict agreement, including under table-budget eviction.
func TestRRLDecideDeterministic(t *testing.T) {
	// Phase 1: a handful of persistent buckets accrue denies, so the
	// seed-derived slip phase actually decides slips vs drops.
	cfg := RRLConfig{Rate: 0.3, Burst: 2, Slip: 2, Seed: 9}
	a, b := newRRL(cfg), newRRL(cfg)
	other := cfg
	other.Seed = 10
	c := newRRL(other)

	var keyA, keyB, keyC [32]byte
	var differs bool
	for i := 0; i < 400; i++ {
		ip := netip.AddrFrom4([4]byte{192, 0, byte(i % 2), byte(i)})
		class := byte(i % 3)
		va := a.decide(keyA[:0], ip, class)
		vb := b.decide(keyB[:0], ip, class)
		vc := c.decide(keyC[:0], ip, class)
		if va != vb {
			t.Fatalf("offer %d: same config diverged: %d vs %d", i, va, vb)
		}
		if va != vc {
			differs = true
		}
	}
	if !differs {
		t.Error("different seeds never produced a different slip phase")
	}

	// Phase 2: a byte budget of ~6 buckets under a 21-key offered cycle
	// forces constant eviction; two limiters must evict identically and
	// stay within budget.
	small := RRLConfig{Rate: 0.3, Burst: 2, Slip: 2, TableBytes: 600, Seed: 9}
	a, b = newRRL(small), newRRL(small)
	for i := 0; i < 400; i++ {
		ip := netip.AddrFrom4([4]byte{192, 0, byte(i % 7), byte(i)})
		class := byte(i % 3)
		if va, vb := a.decide(keyA[:0], ip, class), b.decide(keyB[:0], ip, class); va != vb {
			t.Fatalf("offer %d under eviction: verdicts diverged: %d vs %d", i, va, vb)
		}
	}
	if a.Len() != b.Len() {
		t.Errorf("table sizes diverged: %d vs %d", a.Len(), b.Len())
	}
	if a.Len() > 6 {
		t.Errorf("table holds %d buckets, budget allows ~6", a.Len())
	}
}

// TestRRLParseErrors pins the -rrl flag grammar's failure modes.
func TestRRLParseErrors(t *testing.T) {
	for _, spec := range []string{"rate", "rate=2", "rate=x", "bogus=1", "burst=x"} {
		if _, err := ParseRRL(spec); err == nil {
			t.Errorf("ParseRRL(%q) accepted", spec)
		}
	}
	c, err := ParseRRL("rate=0.5,burst=50,slip=2,prefix4=28,tablebytes=4096,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	if c.Rate != 0.5 || c.Burst != 50 || c.Slip != 2 || c.Prefix4 != 28 || c.TableBytes != 4096 || c.Seed != 3 {
		t.Errorf("parsed config = %+v", c)
	}
}

// TestRRLStateExcludedFromCheckpoints is the proof behind the serve/rrl
// failpoint registration note: the RRL table is volatile serving state, not
// stream state. Exercising the limiter moves process-class telemetry (so
// `rootanalyze -diff` sees it) while the checkpointed stream snapshot stays
// byte-identical — a resumed campaign neither saves nor restores limiter
// state, by construction.
func TestRRLStateExcludedFromCheckpoints(t *testing.T) {
	for i := range telemetry.Registry {
		def := &telemetry.Registry[i]
		if strings.HasPrefix(def.Name, "rrl/") || strings.HasPrefix(def.Name, "netem/") {
			if def.Class != telemetry.ClassProcess {
				t.Errorf("%s registered as %v, want ClassProcess", def.Name, def.Class)
			}
		}
	}

	telemetry.Reset()
	checkpointBefore := telemetry.CheckpointState()
	logicalBefore := telemetry.MarshalLogical()

	r := newRRL(RRLConfig{Rate: 0.1, Burst: 1, Slip: 2, Seed: 3})
	var key [32]byte
	client := netip.MustParseAddr("192.0.2.1")
	for i := 0; i < 40; i++ {
		r.decide(key[:0], client, rrlClassAnswer)
	}

	if bytes.Equal(logicalBefore, telemetry.MarshalLogical()) {
		t.Error("40 rate-limited responses moved no logical telemetry")
	}
	if !bytes.Equal(checkpointBefore, telemetry.CheckpointState()) {
		t.Error("RRL activity leaked into the checkpointed stream state")
	}
}

// TestChaosForcedRRLDrop arms the limiter's failpoint: the first verdict is
// forced to drop regardless of credit, the next query sails through. The
// spec literal here is what registers serve/rrl/decide as chaos-exercised.
func TestChaosForcedRRLDrop(t *testing.T) {
	z, _ := signedRootZone(t, 10)
	s, c := startServer(t, Config{Zone: z, RRL: RRLConfig{Rate: 1, Burst: 8}})
	_ = s
	addr, _ := net.ResolveUDPAddr("udp", c.Addr)
	conn := dialUDP(t, addr)

	if err := failpoint.Enable("serve/rrl/decide=error@1"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable()

	wire, err := dnswire.NewQuery(1, dnswire.Root, dnswire.TypeSOA).Pack()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sendMaybe(t, conn, wire, 200*time.Millisecond); ok {
		t.Fatal("forced-drop verdict still produced a response")
	}
	wire2, _ := dnswire.NewQuery(2, dnswire.Root, dnswire.TypeSOA).Pack()
	if _, ok := sendMaybe(t, conn, wire2, 2*time.Second); !ok {
		t.Fatal("second query got no response after the failpoint fired")
	}
}

// TestChaosForcedShed arms the slow-queue shed failpoint: the first cache
// miss is shed before enqueue (silent, counted), and re-asking succeeds.
func TestChaosForcedShed(t *testing.T) {
	z, _ := signedRootZone(t, 10)
	s, c := startServer(t, Config{Zone: z})
	_ = s
	addr, _ := net.ResolveUDPAddr("udp", c.Addr)
	conn := dialUDP(t, addr)

	if err := failpoint.Enable("serve/shed=error@1"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable()

	wire, err := dnswire.NewQuery(1, dnswire.Root, dnswire.TypeSOA).Pack()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sendMaybe(t, conn, wire, 200*time.Millisecond); ok {
		t.Fatal("shed query still produced a response")
	}
	if _, ok := sendMaybe(t, conn, wire, 2*time.Second); !ok {
		t.Fatal("retry after shed got no response")
	}
}

// TestTCFallbackUnderNetem re-runs the EDNS truncation ladder through an
// adverse link: lossy and corrupting on UDP, with a fraction of TCP
// fallback connections cut mid-frame. A retrying client must still recover
// the complete answer at every EDNS size — cut fallbacks burn an attempt
// and redial. All fates are seed-pinned, so this test is deterministic.
func TestTCFallbackUnderNetem(t *testing.T) {
	if testing.Short() {
		t.Skip("rides out seeded loss with real timeouts")
	}
	z, _ := signedRootZone(t, 30)
	_, c := startServer(t, Config{
		Zone:  z,
		Netem: netem.Profile{Loss: 0.12, Corrupt: 0.06, Cut: 0.4, CutBytes: 700, Seed: 11},
	})
	c.Timeout = 150 * time.Millisecond
	c.Retries = 8
	c.Backoff = backoffForTest()

	for _, edns := range []uint16{0, 512, 1232, 4096} {
		c.EDNSSize = edns
		resp, err := c.Query(dnswire.Root, dnswire.TypeNS)
		if err != nil {
			t.Fatalf("edns=%d: %v", edns, err)
		}
		if resp.Header.Truncated || len(resp.Answers) < 13 {
			t.Errorf("edns=%d: TC=%v answers=%d, want full priming answer",
				edns, resp.Header.Truncated, len(resp.Answers))
		}
	}
}

// counterValue reads one named counter from the logical snapshot.
func counterValue(tb testing.TB, name string) int64 {
	tb.Helper()
	for _, mv := range telemetry.Snapshot(telemetry.ScopeLogical) {
		if mv.Name == name {
			return mv.Value
		}
	}
	tb.Fatalf("metric %q not in logical snapshot", name)
	return 0
}

// TestAXFRRetryAfterNetemCut severs zone-transfer connections mid-frame at
// a seed-pinned rate: a retrying client must land on an uncut connection
// and deliver the complete, serial-matching zone.
func TestAXFRRetryAfterNetemCut(t *testing.T) {
	z, _ := signedRootZone(t, 20)
	telemetry.Reset()
	_, c := startServer(t, Config{
		Zone:      z,
		AllowAXFR: true,
		Netem:     netem.Profile{Cut: 0.5, CutBytes: 500, Seed: 3},
	})
	c.Retries = 6
	c.Backoff = backoffForTest()
	got, err := c.TransferZone()
	if err != nil {
		t.Fatal(err)
	}
	if got.Serial() != z.Serial() || len(got.Records) != len(z.Records) {
		t.Errorf("transferred serial=%d records=%d, want serial=%d records=%d",
			got.Serial(), len(got.Records), z.Serial(), len(z.Records))
	}
	if counterValue(t, "netem/cuts") == 0 {
		t.Error("no connection was cut — the retry path went unexercised; pick a different seed")
	}
}

// TestTCPIdleDeadlineDropsStalledPeer: a connected peer that never sends a
// byte must be disconnected once the idle deadline lapses, freeing the
// serving goroutine (and its connection-cap slot).
func TestTCPIdleDeadlineDropsStalledPeer(t *testing.T) {
	z, _ := signedRootZone(t, 10)
	_, c := startServer(t, Config{Zone: z, TCPTimeout: 150 * time.Millisecond})
	conn, err := net.DialTimeout("tcp", c.Addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("stalled connection was answered instead of dropped")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("stalled connection held for %v, deadline is 150ms", elapsed)
	}
}

// backoffForTest is a fast, seeded retry pacing for adversity tests.
func backoffForTest() dnsclient.Backoff {
	return dnsclient.Backoff{Base: time.Millisecond, Cap: 4 * time.Millisecond, Seed: 5}
}

// exchangeOverTCP runs one query/response exchange on an already open TCP
// connection (startServer's client would dial fresh; these tests care about
// the specific connection).
func exchangeOverTCP(tb testing.TB, conn net.Conn, q *dnswire.Message) (*dnswire.Message, error) {
	tb.Helper()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if err := axfr.WriteMessage(conn, q); err != nil {
		return nil, err
	}
	return axfr.ReadMessage(conn)
}

// TestTCPConnCapRejectsOverflow: with a one-connection cap, a second
// connection is closed at accept while the first keeps being served.
func TestTCPConnCapRejectsOverflow(t *testing.T) {
	z, _ := signedRootZone(t, 10)
	s, c := startServer(t, Config{Zone: z, MaxTCPConns: 1})
	_ = s

	first, err := net.DialTimeout("tcp", c.Addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	// Prove the first connection is live (accepted and inside serveConn).
	resp, err := exchangeOverTCP(t, first, dnswire.NewQuery(1, dnswire.Root, dnswire.TypeSOA))
	if err != nil || len(resp.Answers) == 0 {
		t.Fatalf("first connection: err=%v answers=%v", err, resp)
	}

	second, err := net.DialTimeout("tcp", c.Addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	second.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := second.Read(make([]byte, 1)); err == nil {
		t.Fatal("over-cap connection was served, want close at accept")
	}

	// The capped connection's rejection must not have hurt the first.
	resp, err = exchangeOverTCP(t, first, dnswire.NewQuery(2, dnswire.Root, dnswire.TypeNS))
	if err != nil || len(resp.Answers) == 0 {
		t.Fatalf("first connection after reject: err=%v answers=%v", err, resp)
	}
}
