package dnsserver

import (
	"io"
	"net"
	"testing"

	"repro/internal/dnswire"
	"repro/internal/qlog"
)

// benchServe drives one query wire through a running server over a connected
// UDP socket. The first exchange happens before the timer starts, so for a
// caching server the measured loop is pure hit path — which must report
// 0 allocs/op (ReportAllocs counts every goroutine, server loops included).
func benchServe(b *testing.B, cfg Config, query *dnswire.Message) {
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	raddr, err := net.ResolveUDPAddr("udp", addr.String())
	if err != nil {
		b.Fatal(err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	wire, err := query.Pack()
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64*1024)
	exchange := func() {
		if _, err := conn.Write(wire); err != nil {
			b.Fatal(err)
		}
		if _, err := conn.Read(buf); err != nil {
			b.Fatal(err)
		}
	}
	exchange() // warm: populates the response cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exchange()
	}
}

func BenchmarkServeUDP(b *testing.B) {
	z, _ := signedRootZone(b, 120)
	base := Config{Zone: z, Identity: Identity{Hostname: "bench", Version: "v"}}

	b.Run("cached-A-referral", func(b *testing.B) {
		benchServe(b, base, dnswire.NewQuery(7, dnswire.MustName("www.com."), dnswire.TypeA))
	})
	b.Run("cached-AAAA-referral", func(b *testing.B) {
		benchServe(b, base, dnswire.NewQuery(7, dnswire.MustName("www.com."), dnswire.TypeAAAA))
	})
	b.Run("cached-apex-SOA", func(b *testing.B) {
		benchServe(b, base, dnswire.NewQuery(7, dnswire.Root, dnswire.TypeSOA))
	})
	b.Run("cached-NXDOMAIN-do", func(b *testing.B) {
		benchServe(b, base, dnswire.NewQuery(7, dnswire.MustName("junk.nosuchtld."), dnswire.TypeA).WithEDNS(1232, true))
	})
	uncached := base
	uncached.DisableCache = true
	b.Run("uncached-A-referral", func(b *testing.B) {
		benchServe(b, uncached, dnswire.NewQuery(7, dnswire.MustName("www.com."), dnswire.TypeA))
	})

	// Flight recorder compiled in and attached, but sampling nothing: the
	// hit path pays the key hash and one sampler branch and must still
	// report 0 allocs/op — the recorder-off contract from the qlog PR.
	qlogOff := base
	qlogOff.QLog = benchRecorder(b, qlog.Sampler{Every: 0})
	b.Run("cached-A-referral-qlog-off", func(b *testing.B) {
		benchServe(b, qlogOff, dnswire.NewQuery(7, dnswire.MustName("www.com."), dnswire.TypeA))
	})
	// Every query sampled: the worst-case recording overhead (encode, block
	// append, black-box copy) for sizing the -qlog-sample budget.
	qlogAll := base
	qlogAll.QLog = benchRecorder(b, qlog.Sampler{Every: 1})
	b.Run("cached-A-referral-qlog-all", func(b *testing.B) {
		benchServe(b, qlogAll, dnswire.NewQuery(7, dnswire.MustName("www.com."), dnswire.TypeA))
	})
}

// benchRecorder builds a recorder that discards its segment stream.
func benchRecorder(b *testing.B, s qlog.Sampler) *qlog.Recorder {
	b.Helper()
	rec, err := qlog.New(io.Discard, s, "")
	if err != nil {
		b.Fatal(err)
	}
	return rec
}
