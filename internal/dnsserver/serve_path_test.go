package dnsserver

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/dnswire"
)

// rawUDP sends wire to the server and returns the raw response datagram,
// bypassing the client library so tests can pin exact bytes and TC bits.
func rawUDP(tb testing.TB, addr net.Addr, wire []byte) []byte {
	tb.Helper()
	raddr, err := net.ResolveUDPAddr("udp", addr.String())
	if err != nil {
		tb.Fatal(err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		tb.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(wire); err != nil {
		tb.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64*1024)
	n, err := conn.Read(buf)
	if err != nil {
		tb.Fatal(err)
	}
	return buf[:n]
}

// TestTCFallbackAcrossEDNSSizes exercises truncation at every EDNS size
// bucket: the UDP response must fit the bucketed limit, set TC exactly when
// the full answer does not fit, and the TCP path must always return the
// complete answer.
func TestTCFallbackAcrossEDNSSizes(t *testing.T) {
	z, _ := signedRootZone(t, 30)
	s, c := startServer(t, Config{Zone: z})
	addr, _ := net.ResolveUDPAddr("udp", c.Addr)

	cases := []struct {
		name  string
		edns  uint16 // 0 = no EDNS
		do    bool
		limit int
	}{
		{"no-edns", 0, false, 512},
		{"edns-512", 512, false, 512},
		{"edns-1232-do", 1232, true, 1232},
		{"edns-4096-do", 4096, true, 4096},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			query := dnswire.NewQuery(99, dnswire.Root, dnswire.TypeNS)
			if tc.edns > 0 {
				query.WithEDNS(tc.edns, tc.do)
			}
			wire, err := query.Pack()
			if err != nil {
				t.Fatal(err)
			}
			// The full (untruncated) answer, as the TCP path would send it.
			full := s.Handle(query, true)
			fullWire, err := full.Pack()
			if err != nil {
				t.Fatal(err)
			}

			raw := rawUDP(t, addr, wire)
			resp, err := dnswire.Unpack(raw)
			if err != nil {
				t.Fatalf("UDP response unparseable: %v", err)
			}
			if len(raw) > tc.limit {
				t.Errorf("UDP response is %d bytes, over the %d limit", len(raw), tc.limit)
			}
			wantTC := len(fullWire) > tc.limit
			if resp.Header.Truncated != wantTC {
				t.Errorf("TC = %v, want %v (full answer %d bytes, limit %d)",
					resp.Header.Truncated, wantTC, len(fullWire), tc.limit)
			}
			if !wantTC && !bytes.Equal(raw, fullWire) {
				t.Error("untruncated UDP response differs from the full answer")
			}

			// The client must recover the complete answer (TCP fallback on TC).
			c.EDNSSize = tc.edns
			got, err := c.Query(dnswire.Root, dnswire.TypeNS)
			if err != nil {
				t.Fatal(err)
			}
			if got.Header.Truncated || len(got.Answers) < 13 {
				t.Errorf("fallback answer: TC=%v answers=%d", got.Header.Truncated, len(got.Answers))
			}
		})
	}
}

// TestCachedResponseByteIdentity pins the tentpole's correctness invariant:
// a cache hit returns byte-for-byte what the full path produces — against a
// cache-disabled twin server, across repeats, and with the ID patched.
func TestCachedResponseByteIdentity(t *testing.T) {
	z, _ := signedRootZone(t, 10)
	cached, cc := startServer(t, Config{Zone: z, Identity: Identity{Hostname: "h", Version: "v"}})
	_, uc := startServer(t, Config{Zone: z, Identity: Identity{Hostname: "h", Version: "v"}, DisableCache: true})
	cachedAddr, _ := net.ResolveUDPAddr("udp", cc.Addr)
	uncachedAddr, _ := net.ResolveUDPAddr("udp", uc.Addr)

	queries := []*dnswire.Message{
		dnswire.NewQuery(7, dnswire.Root, dnswire.TypeSOA),
		dnswire.NewQuery(7, dnswire.MustName("www.com."), dnswire.TypeA),
		dnswire.NewQuery(7, dnswire.MustName("www.com."), dnswire.TypeAAAA),
		dnswire.NewQuery(7, dnswire.MustName("nope.nosuchtld."), dnswire.TypeA).WithEDNS(1232, true),
		dnswire.NewQuery(7, dnswire.Root, dnswire.TypeDNSKEY).WithEDNS(4096, true),
	}
	for i, q := range queries {
		wire, err := q.Pack()
		if err != nil {
			t.Fatal(err)
		}
		miss := rawUDP(t, cachedAddr, wire)    // populates the cache
		hit := rawUDP(t, cachedAddr, wire)     // served from the cache
		plain := rawUDP(t, uncachedAddr, wire) // always the full path
		if !bytes.Equal(miss, hit) {
			t.Errorf("query %d: cache hit differs from the miss that filled it", i)
		}
		if !bytes.Equal(hit, plain) {
			t.Errorf("query %d: cached response differs from cache-disabled server", i)
		}
		// A different ID must yield the same bytes modulo the ID field.
		q.Header.ID = 0x1234
		wire2, _ := q.Pack()
		hit2 := rawUDP(t, cachedAddr, wire2)
		if hit2[0] != 0x12 || hit2[1] != 0x34 {
			t.Errorf("query %d: response ID not patched: % x", i, hit2[:2])
		}
		if !bytes.Equal(hit2[2:], hit[2:]) {
			t.Errorf("query %d: response body changed with the query ID", i)
		}
	}
	// The hits above must actually have been hits.
	st := cached.state.Load()
	if st.cache == nil || st.cache.Len() == 0 {
		t.Fatal("response cache is empty after cacheable queries")
	}
}

// TestCacheInvalidationOnSetZone verifies the atomic swap: after SetZone,
// answers reflect the new zone immediately and match a server that never
// cached the old one, byte for byte.
func TestCacheInvalidationOnSetZone(t *testing.T) {
	z, _ := signedRootZone(t, 5)
	s, c := startServer(t, Config{Zone: z})
	addr, _ := net.ResolveUDPAddr("udp", c.Addr)

	query := dnswire.NewQuery(3, dnswire.Root, dnswire.TypeSOA)
	wire, _ := query.Pack()
	before := rawUDP(t, addr, wire)
	rawUDP(t, addr, wire) // ensure the entry is cached

	bumped := z.BumpSerial(z.Serial() + 7)
	s.SetZone(bumped)

	after := rawUDP(t, addr, wire)
	if bytes.Equal(before, after) {
		t.Fatal("response unchanged after SetZone: stale cache entry served")
	}
	resp, err := dnswire.Unpack(after)
	if err != nil {
		t.Fatal(err)
	}
	soa := resp.Answers[0].Data.(dnswire.SOARecord)
	if soa.Serial != z.Serial()+7 {
		t.Errorf("serial after SetZone = %d, want %d", soa.Serial, z.Serial()+7)
	}
	// And the post-swap answer must match a fresh cache-free server.
	_, uc := startServer(t, Config{Zone: bumped, DisableCache: true})
	uncachedAddr, _ := net.ResolveUDPAddr("udp", uc.Addr)
	if plain := rawUDP(t, uncachedAddr, wire); !bytes.Equal(after, plain) {
		t.Error("post-swap cached answer differs from cache-disabled server")
	}
}

// TestSetZoneUnderLoad hammers the server from several goroutines while the
// zone is concurrently replaced. Every response must parse and carry a
// serial the server has actually served — never a torn or stale-cache mix.
// Run under -race this doubles as the swap-safety regression test for the
// old RWMutex zone field.
func TestSetZoneUnderLoad(t *testing.T) {
	z, _ := signedRootZone(t, 5)
	s, c := startServer(t, Config{Zone: z})
	addr, _ := net.ResolveUDPAddr("udp", c.Addr)

	base := z.Serial()
	const swaps = 40
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			query := dnswire.NewQuery(uint16(w), dnswire.Root, dnswire.TypeSOA)
			wire, _ := query.Pack()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				raw := rawUDP(t, addr, wire)
				resp, err := dnswire.Unpack(raw)
				if err != nil {
					t.Errorf("worker %d: torn response: %v", w, err)
					return
				}
				soa := resp.Answers[0].Data.(dnswire.SOARecord)
				if soa.Serial < base || soa.Serial > base+swaps {
					t.Errorf("worker %d: serial %d outside [%d, %d]", w, soa.Serial, base, base+swaps)
					return
				}
			}
		}(w)
	}
	for i := 1; i <= swaps; i++ {
		s.SetZone(z.BumpSerial(base + uint32(i)))
	}
	close(stop)
	wg.Wait()

	resp, err := c.Query(dnswire.Root, dnswire.TypeSOA)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Answers[0].Data.(dnswire.SOARecord).Serial; got != base+swaps {
		t.Errorf("final serial = %d, want %d", got, base+swaps)
	}
}

// TestCacheEviction fills a tiny cache past its budget and checks that old
// entries fall out while the cache keeps answering correctly.
func TestCacheEviction(t *testing.T) {
	z, _ := signedRootZone(t, 10)
	s, c := startServer(t, Config{Zone: z, CacheBytes: 4096})
	addr, _ := net.ResolveUDPAddr("udp", c.Addr)

	for i := 0; i < 64; i++ {
		q := dnswire.NewQuery(uint16(i), dnswire.MustName(fmt.Sprintf("host%02d.nosuchtld.", i)), dnswire.TypeA)
		wire, _ := q.Pack()
		resp, err := dnswire.Unpack(rawUDP(t, addr, wire))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Header.Rcode != dnswire.RcodeNXDomain {
			t.Fatalf("query %d: rcode %s", i, resp.Header.Rcode)
		}
	}
	cache := s.state.Load().cache
	if cache.bytes > 4096 {
		t.Errorf("cache holds %d bytes, budget 4096", cache.bytes)
	}
	if n := cache.Len(); n == 0 || n >= 64 {
		t.Errorf("cache has %d entries; want some but fewer than 64 (eviction)", n)
	}
}

// TestServeWorkersSharded runs a multi-shard server and checks queries land
// correctly regardless of which socket the kernel picks.
func TestServeWorkersSharded(t *testing.T) {
	z, _ := signedRootZone(t, 10)
	_, c := startServer(t, Config{Zone: z, ServeWorkers: 4})
	for i := 0; i < 32; i++ {
		resp, err := c.Query(dnswire.Root, dnswire.TypeSOA)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Answers) != 1 || resp.Answers[0].Type() != dnswire.TypeSOA {
			t.Fatalf("query %d: answers = %v", i, resp.Answers)
		}
	}
}
