package dnsserver

import (
	"net"
	"net/netip"

	"repro/internal/dnswire"
)

// udpHeaderLen is the fixed DNS header size.
const udpHeaderLen = 12

// queryShape is the result of the zero-alloc fast parse of one datagram:
// enough to build a cache key without decoding the message. ok is false for
// anything the fast parser does not recognize (compression pointers in the
// question, multiple questions, trailing bytes, non-OPT additionals), which
// routes the datagram down the full decode path uncached.
type queryShape struct {
	qEnd    int // offset just past the question section
	hasEDNS bool
	do      bool
	adv     uint16 // client's advertised EDNS payload size
	ok      bool
}

// parseQueryShape validates the fixed header, walks the single question
// name, and decodes a trailing OPT record, all without allocating.
//
//rootlint:hotpath
func parseQueryShape(pkt []byte) (sh queryShape) {
	if len(pkt) < udpHeaderLen+5 { // header + root name + type + class
		return
	}
	flags := uint16(pkt[2])<<8 | uint16(pkt[3])
	if flags&0x8000 != 0 || (flags>>11)&0xF != 0 { // response, or not QUERY
		return
	}
	qd := int(pkt[4])<<8 | int(pkt[5])
	an := int(pkt[6])<<8 | int(pkt[7])
	ns := int(pkt[8])<<8 | int(pkt[9])
	ar := int(pkt[10])<<8 | int(pkt[11])
	if qd != 1 || an != 0 || ns != 0 || ar > 1 {
		return
	}
	off := udpHeaderLen
	nameLen := 0
	for {
		if off >= len(pkt) {
			return
		}
		l := int(pkt[off])
		if l == 0 {
			off++
			break
		}
		if l > dnswire.MaxLabelLen { // compression pointer or junk
			return
		}
		nameLen += l + 1
		if nameLen+1 > dnswire.MaxNameLen {
			return
		}
		off += 1 + l
	}
	if off+4 > len(pkt) {
		return
	}
	off += 4 // qtype + qclass
	sh.qEnd = off
	switch {
	case ar == 1:
		// OPT pseudo-record: root owner (1), TYPE (2), CLASS=payload size
		// (2), TTL with the DO bit (4), RDLEN (2), then RDATA.
		if off+11 > len(pkt) || pkt[off] != 0 {
			return
		}
		typ := dnswire.Type(uint16(pkt[off+1])<<8 | uint16(pkt[off+2]))
		if typ != dnswire.TypeOPT {
			return
		}
		sh.adv = uint16(pkt[off+3])<<8 | uint16(pkt[off+4])
		sh.do = pkt[off+7]&0x80 != 0 // bit 15 of the 32-bit TTL field
		rdlen := int(pkt[off+9])<<8 | int(pkt[off+10])
		if off+11+rdlen != len(pkt) {
			return
		}
		sh.hasEDNS = true
	case off != len(pkt): // trailing bytes: let the full decoder judge
		return
	}
	sh.ok = true
	return
}

// bucketLimit maps the effective UDP payload limit (server floor vs. client
// advertisement) onto the bucket set {512, 1232, 4096}. Bucketing keeps the
// cache key space small and guarantees the cached and uncached paths apply
// the same truncation threshold for any advertised size.
func (s *Server) bucketLimit(hasEDNS bool, adv uint16) int {
	limit := s.cfg.UDPSize
	if hasEDNS && int(adv) > limit {
		limit = int(adv)
	}
	switch {
	case limit >= 4096:
		return 4096
	case limit >= 1232:
		return 1232
	default:
		return dnswire.MaxUDPPayload
	}
}

// bucketByte encodes every response-relevant EDNS fact into one cache-key
// octet: the size bucket, EDNS presence (the response echoes an OPT), and
// the DO bit (the response carries DNSSEC proofs).
func (s *Server) bucketByte(sh queryShape) byte {
	var b byte
	switch s.bucketLimit(sh.hasEDNS, sh.adv) {
	case 4096:
		b = 2
	case 1232:
		b = 1
	}
	if sh.hasEDNS {
		b |= 4
	}
	if sh.do {
		b |= 8
	}
	return b
}

// serveUDPLoop is one shard's read loop. All buffers are reused across
// iterations; a cache hit answers with zero allocations (the map lookup via
// string(keyBuf) does not allocate, and the netip read/write paths are
// alloc-free).
//
//rootlint:hotpath
func (s *Server) serveUDPLoop(conn *net.UDPConn, shard int) {
	defer s.wg.Done()
	readBuf := make([]byte, 64*1024)
	respBuf := make([]byte, 0, 4096)
	keyBuf := make([]byte, 0, dnswire.MaxNameLen+8)
	for {
		n, raddr, err := conn.ReadFromUDPAddrPort(readBuf)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				continue
			}
		}
		pkt := readBuf[:n]
		sh := parseQueryShape(pkt)
		st := s.state.Load()
		cacheable := sh.ok && st.cache != nil
		if cacheable {
			// Key = raw question bytes (case preserved, so a hit is
			// byte-identical to what the slow path produced) + EDNS bucket.
			keyBuf = append(keyBuf[:0], pkt[udpHeaderLen:sh.qEnd]...)
			keyBuf = append(keyBuf, s.bucketByte(sh))
			if wire := st.cache.get(keyBuf); wire != nil {
				mQueries.ShardInc(shard)
				mCacheHits.ShardInc(shard)
				respBuf = append(respBuf[:0], wire...)
				respBuf[0], respBuf[1] = pkt[0], pkt[1] // patch in the query ID
				_, _ = conn.WriteToUDPAddrPort(respBuf, raddr)
				continue
			}
			mCacheMisses.ShardInc(shard)
		}
		respBuf = s.serveUDPSlow(conn, st, pkt, raddr, respBuf, keyBuf, cacheable)
	}
}

// serveUDPSlow is the allocating miss path: full decode, Handle, pack into
// the reusable response buffer, truncate to the bucketed limit, and insert
// the final bytes into the response cache when the fast parser recognized
// the query (so the next identical query is a zero-alloc hit).
func (s *Server) serveUDPSlow(conn *net.UDPConn, st *serveState, pkt []byte, raddr netip.AddrPort, respBuf, key []byte, cacheable bool) []byte {
	query, err := dnswire.Unpack(pkt)
	if err != nil {
		return respBuf // unparseable datagrams are dropped, like real servers
	}
	resp := s.handleState(st, query, false)
	if resp == nil {
		return respBuf
	}
	limit := s.bucketLimit(false, 0)
	if opt, ok := query.EDNS(); ok {
		limit = s.bucketLimit(true, opt.UDPSize)
	}
	respBuf, err = resp.AppendPack(respBuf[:0])
	if err != nil {
		return respBuf
	}
	if len(respBuf) > limit {
		tc := &dnswire.Message{Header: resp.Header, Questions: resp.Questions}
		tc.Header.Truncated = true
		if respBuf, err = tc.AppendPack(respBuf[:0]); err != nil {
			return respBuf
		}
	}
	if cacheable {
		st.cache.put(key, respBuf)
	}
	_, _ = conn.WriteToUDPAddrPort(respBuf, raddr)
	return respBuf
}
