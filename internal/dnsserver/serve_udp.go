package dnsserver

import (
	"net"
	"net/netip"

	"repro/internal/dnswire"
	"repro/internal/failpoint"
	"repro/internal/netem"
	"repro/internal/qlog"
)

// udpHeaderLen is the fixed DNS header size.
const udpHeaderLen = 12

// queryShape is the result of the zero-alloc fast parse of one datagram:
// enough to build a cache key without decoding the message. ok is false for
// anything the fast parser does not recognize (compression pointers in the
// question, multiple questions, trailing bytes, non-OPT additionals), which
// routes the datagram down the full decode path uncached.
type queryShape struct {
	qEnd    int // offset just past the question section
	hasEDNS bool
	do      bool
	adv     uint16 // client's advertised EDNS payload size
	ok      bool
}

// parseQueryShape validates the fixed header, walks the single question
// name, and decodes a trailing OPT record, all without allocating.
//
//rootlint:hotpath
func parseQueryShape(pkt []byte) (sh queryShape) {
	if len(pkt) < udpHeaderLen+5 { // header + root name + type + class
		return
	}
	flags := uint16(pkt[2])<<8 | uint16(pkt[3])
	if flags&0x8000 != 0 || (flags>>11)&0xF != 0 { // response, or not QUERY
		return
	}
	qd := int(pkt[4])<<8 | int(pkt[5])
	an := int(pkt[6])<<8 | int(pkt[7])
	ns := int(pkt[8])<<8 | int(pkt[9])
	ar := int(pkt[10])<<8 | int(pkt[11])
	if qd != 1 || an != 0 || ns != 0 || ar > 1 {
		return
	}
	off := udpHeaderLen
	nameLen := 0
	for {
		if off >= len(pkt) {
			return
		}
		l := int(pkt[off])
		if l == 0 {
			off++
			break
		}
		if l > dnswire.MaxLabelLen { // compression pointer or junk
			return
		}
		nameLen += l + 1
		if nameLen+1 > dnswire.MaxNameLen {
			return
		}
		off += 1 + l
	}
	if off+4 > len(pkt) {
		return
	}
	off += 4 // qtype + qclass
	sh.qEnd = off
	switch {
	case ar == 1:
		// OPT pseudo-record: root owner (1), TYPE (2), CLASS=payload size
		// (2), TTL with the DO bit (4), RDLEN (2), then RDATA.
		if off+11 > len(pkt) || pkt[off] != 0 {
			return
		}
		typ := dnswire.Type(uint16(pkt[off+1])<<8 | uint16(pkt[off+2]))
		if typ != dnswire.TypeOPT {
			return
		}
		sh.adv = uint16(pkt[off+3])<<8 | uint16(pkt[off+4])
		sh.do = pkt[off+7]&0x80 != 0 // bit 15 of the 32-bit TTL field
		rdlen := int(pkt[off+9])<<8 | int(pkt[off+10])
		if off+11+rdlen != len(pkt) {
			return
		}
		sh.hasEDNS = true
	case off != len(pkt): // trailing bytes: let the full decoder judge
		return
	}
	sh.ok = true
	return
}

// bucketLimit maps the effective UDP payload limit (server floor vs. client
// advertisement) onto the bucket set {512, 1232, 4096}. Bucketing keeps the
// cache key space small and guarantees the cached and uncached paths apply
// the same truncation threshold for any advertised size.
func (s *Server) bucketLimit(hasEDNS bool, adv uint16) int {
	limit := s.cfg.UDPSize
	if hasEDNS && int(adv) > limit {
		limit = int(adv)
	}
	switch {
	case limit >= 4096:
		return 4096
	case limit >= 1232:
		return 1232
	default:
		return dnswire.MaxUDPPayload
	}
}

// bucketByte encodes every response-relevant EDNS fact into one cache-key
// octet: the size bucket, EDNS presence (the response echoes an OPT), and
// the DO bit (the response carries DNSSEC proofs).
func (s *Server) bucketByte(sh queryShape) byte {
	var b byte
	switch s.bucketLimit(sh.hasEDNS, sh.adv) {
	case 4096:
		b = 2
	case 1232:
		b = 1
	}
	if sh.hasEDNS {
		b |= 4
	}
	if sh.do {
		b |= 8
	}
	return b
}

// shardBufs is one serving goroutine's reusable buffers (each read loop and
// each slow worker owns a set; nothing is shared, nothing escapes).
type shardBufs struct {
	resp   []byte
	key    []byte
	rrlKey []byte
}

func newShardBufs() *shardBufs {
	return &shardBufs{
		resp:   make([]byte, 0, 4096),
		key:    make([]byte, 0, dnswire.MaxNameLen+8),
		rrlKey: make([]byte, 0, 32),
	}
}

// slowItem is one query handed from a read loop to its shard's slow worker.
type slowItem struct {
	pkt   []byte
	raddr netip.AddrPort
	flow  uint64
	ev    qev
}

// slowQueue is the bounded per-shard hand-off between the read loop and the
// slow worker, plus a free list recycling packet buffers so a steady miss
// load allocates nothing after warm-up. Enqueue never blocks: a full queue
// sheds the query (an overload drop a real server would also take, counted
// in serve/sheds).
type slowQueue struct {
	ch   chan slowItem
	free chan []byte
}

func newSlowQueue(depth int) *slowQueue {
	return &slowQueue{
		ch:   make(chan slowItem, depth),
		free: make(chan []byte, depth),
	}
}

// serveUDPLoop is one shard's read loop. All buffers are reused across
// iterations; a cache hit answers with zero allocations (the map lookup via
// string(keyBuf) does not allocate, and the netip read/write paths are
// alloc-free). Cache misses are handed to the shard's slow worker so an
// expensive decode can never stall the socket; the emulated link, when
// configured, admits datagrams on ingress (possibly dropping, corrupting,
// or duplicating them) before any parsing happens.
//
//rootlint:hotpath
func (s *Server) serveUDPLoop(conn *net.UDPConn, shard int) {
	defer s.wg.Done()
	readBuf := make([]byte, 64*1024)
	bufs := newShardBufs()
	qlogOn := s.cfg.QLog != nil
	var flowCounts map[uint64]uint64
	if qlogOn {
		// Per-flow offered index, shard-confined: SO_REUSEPORT pins a flow
		// to one socket, so this loop sees every datagram of its flows in
		// the client's send order and the index is worker-count-invariant.
		// A netem duplicate shares its original's index (one offered
		// datagram, one index).
		flowCounts = make(map[uint64]uint64)
	}
	for {
		n, raddr, err := conn.ReadFromUDPAddrPort(readBuf)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				continue
			}
		}
		var flow uint64
		if s.link != nil || qlogOn {
			// Flow identity is the client IP alone: ephemeral ports differ
			// run to run and would break fate determinism.
			flow = netem.FlowAddr(raddr)
		}
		pkt, extra := s.link.Admit(netem.Ingress, flow, readBuf[:n])
		var fidx uint64
		if qlogOn {
			fidx = flowCounts[flow]
			flowCounts[flow]++
			if pkt == nil && extra == nil {
				s.qlogIngressDrop(readBuf[:n], flow, fidx)
			}
		}
		if pkt != nil {
			s.servePacket(conn, shard, bufs, pkt, raddr, flow, fidx)
		}
		if extra != nil {
			s.servePacket(conn, shard, bufs, extra, raddr, flow, fidx)
		}
	}
}

// servePacket serves one admitted datagram: cache hits answer inline on the
// zero-alloc path, everything else is enqueued for the shard's slow worker.
//
//rootlint:hotpath
func (s *Server) servePacket(conn *net.UDPConn, shard int, bufs *shardBufs, pkt []byte, raddr netip.AddrPort, flow, fidx uint64) {
	sh := parseQueryShape(pkt)
	var ev qev
	if s.cfg.QLog != nil && sh.ok {
		ev.key = qlog.Key(pkt[:sh.qEnd])
		ev.flow, ev.fidx = flow, fidx
		ev.sampled = s.cfg.QLog.Sampled(ev.key)
	}
	st := s.state.Load()
	if sh.ok && st.cache != nil {
		// Key = raw question bytes (case preserved, so a hit is
		// byte-identical to what the slow path produced) + EDNS bucket.
		bufs.key = append(bufs.key[:0], pkt[udpHeaderLen:sh.qEnd]...)
		bufs.key = append(bufs.key, s.bucketByte(sh))
		if wire := st.cache.get(bufs.key); wire != nil {
			mQueries.ShardInc(shard)
			mCacheHits.ShardInc(shard)
			bufs.resp = append(bufs.resp[:0], wire...)
			bufs.resp[0], bufs.resp[1] = pkt[0], pkt[1] // patch in the query ID
			ev.hit = true
			s.respond(conn, shard, bufs, pkt, sh, raddr, flow, ev)
			return
		}
		mCacheMisses.ShardInc(shard)
	}
	s.enqueueSlow(shard, pkt, raddr, flow, sh, ev)
}

// enqueueSlow hands a miss to the shard's slow worker, or sheds it when the
// bounded queue is full. The serve/shed failpoint forces a shed for chaos
// tests.
//
//rootlint:hotpath
func (s *Server) enqueueSlow(shard int, pkt []byte, raddr netip.AddrPort, flow uint64, sh queryShape, ev qev) {
	if err := failpoint.Eval("serve/shed"); err != nil {
		mSheds.ShardInc(shard)
		if ev.sampled {
			s.emitServe(ev, pkt, sh, qFateOK, qVerdictNone, 1, 0, 0, 0)
		}
		return
	}
	q := s.slow[shard]
	var buf []byte
	select {
	case buf = <-q.free:
	default:
		buf = make([]byte, 0, 4096)
	}
	buf = append(buf[:0], pkt...)
	select {
	case q.ch <- slowItem{pkt: buf, raddr: raddr, flow: flow, ev: ev}:
	default:
		select {
		case q.free <- buf:
		default:
		}
		mSheds.ShardInc(shard)
		if ev.sampled {
			s.emitServe(ev, pkt, sh, qFateOK, qVerdictNone, 1, 0, 0, 0)
		}
	}
}

// slowWorker drains one shard's queue: full decode, handle, pack, cache
// insert, respond. It owns its buffers, so the read loop and the worker
// never share mutable state.
func (s *Server) slowWorker(conn *net.UDPConn, shard int, q *slowQueue) {
	defer s.wg.Done()
	bufs := newShardBufs()
	for {
		select {
		case <-s.closed:
			return
		case it := <-q.ch:
			s.serveSlow(conn, shard, bufs, it.pkt, it.raddr, it.flow, it.ev)
			select {
			case q.free <- it.pkt:
			default:
			}
		}
	}
}

// serveSlow is the allocating miss path: full decode, Handle, pack into the
// worker's response buffer, truncate to the bucketed limit, and insert the
// final bytes into the response cache when the fast parser recognized the
// query (so the next identical query is a zero-alloc hit).
func (s *Server) serveSlow(conn *net.UDPConn, shard int, bufs *shardBufs, pkt []byte, raddr netip.AddrPort, flow uint64, ev qev) {
	sh := parseQueryShape(pkt)
	st := s.state.Load()
	query, err := dnswire.Unpack(pkt)
	if err != nil {
		return // unparseable datagrams are dropped, like real servers
	}
	resp := s.handleState(st, query, false)
	if resp == nil {
		return
	}
	limit := s.bucketLimit(false, 0)
	if opt, ok := query.EDNS(); ok {
		limit = s.bucketLimit(true, opt.UDPSize)
	}
	bufs.resp, err = resp.AppendPack(bufs.resp[:0])
	if err != nil {
		return
	}
	if len(bufs.resp) > limit {
		tc := &dnswire.Message{Header: resp.Header, Questions: resp.Questions}
		tc.Header.Truncated = true
		if bufs.resp, err = tc.AppendPack(bufs.resp[:0]); err != nil {
			return
		}
	}
	if sh.ok && st.cache != nil {
		bufs.key = append(bufs.key[:0], pkt[udpHeaderLen:sh.qEnd]...)
		bufs.key = append(bufs.key, s.bucketByte(sh))
		st.cache.put(bufs.key, bufs.resp)
	}
	s.respond(conn, shard, bufs, pkt, sh, raddr, flow, ev)
}

// respond is the single egress funnel for UDP responses: the RRL verdict
// (send / drop / answer with a TC slip) is taken here from the raw response
// bytes, then the emulated link admits whatever survives. Both the hit and
// slow paths converge on this method, so serve/rrl/decide has exactly one
// evaluation site and verdict order per client follows the client's own
// arrival order.
//
//rootlint:hotpath
func (s *Server) respond(conn *net.UDPConn, shard int, bufs *shardBufs, pkt []byte, sh queryShape, raddr netip.AddrPort, flow uint64, ev qev) {
	verdict := uint64(qVerdictNone)
	if s.rrl != nil {
		switch s.rrl.decide(bufs.rrlKey, raddr.Addr(), rrlClassify(bufs.resp)) {
		case rrlDrop:
			if ev.sampled {
				s.emitServe(ev, pkt, sh, qFateOK, qVerdictDrop,
					0, respTC(bufs.resp), uint64(rrlClassify(bufs.resp)), respRcode(bufs.resp))
			}
			return
		case rrlSlip:
			if !sh.ok {
				// No fast-parsed question to stitch a stub from; the
				// slow decoder accepted something the stub builder can't
				// reproduce byte-exactly, so suppress entirely.
				return
			}
			bufs.resp = appendSlipStub(bufs.resp, pkt, sh.qEnd)
			verdict = qVerdictSlip
		default:
			verdict = qVerdictSend
		}
	}
	if ev.sampled {
		s.emitServe(ev, pkt, sh, qFateOK, verdict,
			0, respTC(bufs.resp), uint64(rrlClassify(bufs.resp)), respRcode(bufs.resp))
	}
	first, second := s.link.Admit(netem.Egress, flow, bufs.resp)
	if first != nil {
		_, _ = conn.WriteToUDPAddrPort(first, raddr)
	}
	if second != nil {
		_, _ = conn.WriteToUDPAddrPort(second, raddr)
	}
}
