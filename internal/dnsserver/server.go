// Package dnsserver implements an authoritative DNS server for the root
// zone over real UDP and TCP sockets: apex answers, TLD referrals with glue,
// priming responses (RFC 8109), NXDOMAIN, CHAOS-class server identity
// (hostname.bind, id.server, version.bind, version.server), truncation with
// TCP fallback, and AXFR. Each simulated root server instance in the study
// can be backed by one of these, and the examples run them on loopback.
//
// The UDP path is built for line rate: N read loops on SO_REUSEPORT-sharded
// sockets (or N loops sharing one socket where unsupported), a zero-alloc
// fast path answering repeat queries from a response cache keyed by the raw
// question bytes, and an atomically swapped zone pointer so queries never
// take a lock. See serve_udp.go and cache.go.
package dnsserver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/axfr"
	"repro/internal/dnswire"
	"repro/internal/netem"
	"repro/internal/qlog"
	"repro/internal/telemetry"
	"repro/internal/zone"
)

// Identity is what the server reports to CHAOS-class identity queries.
type Identity struct {
	// Hostname answers hostname.bind and id.server, e.g. the instance name
	// "fra3.l.root-servers.org" a root instance would report.
	Hostname string
	// Version answers version.bind and version.server.
	Version string
}

// Config configures a Server.
type Config struct {
	// Zone is the primary zone to serve. It must have a SOA at its apex.
	Zone *zone.Zone
	// ExtraZones are additional authoritative zones (the real root servers
	// also serve root-servers.net). Lookups pick the zone with the
	// longest-matching apex.
	ExtraZones []*zone.Zone
	// Identity is reported on CHAOS TXT queries. Empty fields yield REFUSED,
	// like roots that suppress identity.
	Identity Identity
	// AllowAXFR enables zone transfers on the TCP listener.
	AllowAXFR bool
	// UDPSize caps UDP responses; larger answers set TC. Defaults to 512
	// without EDNS, or the client's advertised size. Effective limits are
	// floored to the bucket set {512, 1232, 4096} so the cached and uncached
	// paths truncate identically (see bucketLimit).
	UDPSize int
	// ServeWorkers is the number of UDP read loops. On Linux each loop owns
	// its own SO_REUSEPORT socket and the kernel shards datagrams between
	// them; elsewhere the loops share one socket. 0 means GOMAXPROCS.
	ServeWorkers int
	// DisableCache turns the response cache off, forcing every query down
	// the full decode/lookup/pack path (ablation and benchmarks).
	DisableCache bool
	// CacheBytes bounds the response cache; 0 means the 8 MiB default.
	CacheBytes int64
	// RRL enables BIND-style response-rate-limiting on the UDP path when
	// Rate > 0 (see RRLConfig). The zero value leaves it off with no cost
	// on the hot path beyond one nil check.
	RRL RRLConfig
	// Netem applies a deterministic adverse-network profile at the socket
	// boundary: UDP datagrams pass the emulated link on ingress and
	// egress, and accepted TCP connections may be cut mid-stream. The
	// zero profile is off.
	Netem netem.Profile
	// QLog attaches a per-query flight recorder to the UDP serve path:
	// every sampled query emits one serve/query event at its terminal
	// point (ingress drop, overload shed, or the egress funnel). Nil
	// leaves recording off; the fast path then pays one nil check.
	QLog *qlog.Recorder
	// QueueDepth bounds each shard's slow-path queue (cache misses wait
	// here for the shard's decode worker; a full queue sheds the query).
	// 0 means 256.
	QueueDepth int
	// TCPTimeout is the per-connection idle deadline: every read or write
	// on an accepted TCP connection must make progress within it, so one
	// stalled or half-open peer cannot pin a server goroutine. 0 means 2
	// minutes; negative disables deadlines.
	TCPTimeout time.Duration
	// MaxTCPConns caps concurrently served TCP connections; connections
	// over the cap are closed at accept. 0 means 64; negative is
	// unlimited.
	MaxTCPConns int
}

// serveState is everything a query touches that SetZone replaces: the zone
// and the response cache built over it. Swapping the whole struct through
// one atomic pointer makes zone replacement and cache invalidation a single
// indivisible step — a query that loaded the old state answers (and caches)
// consistently from the old zone, and no query ever sees a new zone with a
// stale cache.
type serveState struct {
	zone  *zone.Zone
	cache *respCache // nil when the cache is disabled
}

// Server is an authoritative DNS server bound to UDP and TCP sockets. Apart
// from the swappable serve state, every field is fixed by New or Start before
// any serving goroutine exists.
type Server struct {
	//rootlint:immutable-after-start
	cfg Config

	state atomic.Pointer[serveState]
	//rootlint:immutable-after-start
	udps []*net.UDPConn
	//rootlint:immutable-after-start
	tcp net.Listener
	//rootlint:immutable-after-start
	rrl *rrlState // nil when RRL is off
	//rootlint:immutable-after-start
	link *netem.Link // nil when netem is off
	//rootlint:immutable-after-start
	slow []*slowQueue
	//rootlint:immutable-after-start
	tcpSem chan struct{} // nil when the connection cap is unlimited
	wg     sync.WaitGroup
	closed chan struct{}
	//rootlint:immutable-after-start
	started bool
}

// New creates an unstarted server.
func New(cfg Config) (*Server, error) {
	if cfg.Zone == nil {
		return nil, errors.New("dnsserver: nil zone")
	}
	if _, ok := cfg.Zone.SOA(); !ok {
		return nil, errors.New("dnsserver: zone has no SOA")
	}
	if cfg.UDPSize == 0 {
		cfg.UDPSize = dnswire.MaxUDPPayload
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.TCPTimeout == 0 {
		cfg.TCPTimeout = 2 * time.Minute
	}
	if cfg.MaxTCPConns == 0 {
		cfg.MaxTCPConns = 64
	}
	s := &Server{cfg: cfg, closed: make(chan struct{})}
	s.rrl = newRRL(cfg.RRL)
	s.link = netem.NewLink(cfg.Netem)
	if cfg.MaxTCPConns > 0 {
		s.tcpSem = make(chan struct{}, cfg.MaxTCPConns)
	}
	s.state.Store(s.makeState(cfg.Zone))
	return s, nil
}

// makeState builds a serveState for z with a fresh (empty) response cache.
func (s *Server) makeState(z *zone.Zone) *serveState {
	st := &serveState{zone: z}
	if !s.cfg.DisableCache {
		st.cache = newRespCache(s.cfg.CacheBytes)
	}
	return st
}

// SetZone atomically replaces the served zone (zone updates mid-study). The
// swap installs a fresh response cache, so no answer computed from the old
// zone can be served afterwards.
func (s *Server) SetZone(z *zone.Zone) {
	s.state.Store(s.makeState(z))
}

// Zone returns the currently served primary zone.
func (s *Server) Zone() *zone.Zone {
	return s.state.Load().zone
}

// zoneFor returns the authoritative zone for name: the zone (primary or
// extra) with the longest apex that name falls under, or nil.
func (s *Server) zoneFor(primary *zone.Zone, name dnswire.Name) *zone.Zone {
	best := (*zone.Zone)(nil)
	bestLabels := -1
	consider := func(z *zone.Zone) {
		if z == nil || !name.SubdomainOf(z.Apex) {
			return
		}
		if n := len(z.Apex.Labels()); n > bestLabels {
			best, bestLabels = z, n
		}
	}
	consider(primary)
	for _, z := range s.cfg.ExtraZones {
		consider(z)
	}
	return best
}

// Start binds addr (e.g. "127.0.0.1:0") on UDP and TCP and serves until
// Close. It returns the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	if s.started {
		return nil, errors.New("dnsserver: already started")
	}
	workers := s.cfg.ServeWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	udps, err := s.listenShards(addr, workers)
	if err != nil {
		return nil, err
	}
	tcp, err := net.Listen("tcp", udps[0].LocalAddr().String())
	if err != nil {
		for _, c := range udps {
			c.Close()
		}
		return nil, fmt.Errorf("dnsserver: listen tcp: %w", err)
	}
	s.udps, s.tcp = udps, tcp
	s.started = true
	s.slow = make([]*slowQueue, workers)
	s.wg.Add(2*workers + 1)
	for i := 0; i < workers; i++ {
		conn := s.udps[i%len(s.udps)]
		s.slow[i] = newSlowQueue(s.cfg.QueueDepth)
		go s.serveUDPLoop(conn, i)
		go s.slowWorker(conn, i, s.slow[i])
	}
	go s.serveTCP()
	return udps[0].LocalAddr(), nil
}

// listenShards opens the UDP sockets for `workers` read loops: one
// SO_REUSEPORT socket per loop where the platform supports it, otherwise a
// single socket all loops share.
func (s *Server) listenShards(addr string, workers int) ([]*net.UDPConn, error) {
	if workers > 1 {
		if first, err := listenUDPReusePort(addr); err == nil {
			udps := []*net.UDPConn{first}
			// Re-bind the concrete address so every shard lands on the port
			// the first socket picked (addr may have been ":0").
			bound := first.LocalAddr().String()
			for i := 1; i < workers; i++ {
				conn, err := listenUDPReusePort(bound)
				if err != nil {
					for _, c := range udps {
						c.Close()
					}
					return nil, fmt.Errorf("dnsserver: listen udp shard %d: %w", i, err)
				}
				udps = append(udps, conn)
			}
			return udps, nil
		}
		// SO_REUSEPORT unavailable: fall through to one shared socket.
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: resolve %q: %w", addr, err)
	}
	udp, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: listen udp: %w", err)
	}
	return []*net.UDPConn{udp}, nil
}

// Close stops the listeners and waits for in-flight handlers. It is
// idempotent: later calls wait for the same shutdown and return nil.
func (s *Server) Close() error {
	if !s.started {
		return nil
	}
	select {
	case <-s.closed:
		s.wg.Wait()
		return nil
	default:
	}
	close(s.closed)
	for _, c := range s.udps {
		c.Close()
	}
	s.tcp.Close()
	s.wg.Wait()
	return nil
}

func (s *Server) serveTCP() {
	defer s.wg.Done()
	for {
		conn, err := s.tcp.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				continue
			}
		}
		if s.tcpSem != nil {
			select {
			case s.tcpSem <- struct{}{}:
			default:
				// Over the concurrent-connection cap: refuse at accept so a
				// connection flood can't spawn unbounded goroutines.
				mTCPRejects.Inc()
				conn.Close()
				continue
			}
		}
		// The emulated link may cut this connection mid-stream; the idle
		// deadline guarantees a stalled or half-open peer releases the
		// goroutine (and its semaphore slot) in bounded time.
		wrapped := s.link.WrapConn(conn)
		if s.cfg.TCPTimeout > 0 {
			wrapped = &axfr.DeadlineConn{Conn: wrapped, Timeout: s.cfg.TCPTimeout}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			if s.tcpSem != nil {
				defer func() { <-s.tcpSem }()
			}
			s.serveConn(wrapped)
		}()
	}
}

// serveConn handles sequential queries on one TCP connection.
func (s *Server) serveConn(conn net.Conn) {
	for {
		query, err := axfr.ReadMessage(conn)
		if err != nil {
			return
		}
		if len(query.Questions) == 1 && query.Questions[0].Type == dnswire.TypeAXFR {
			if s.cfg.AllowAXFR {
				_ = axfr.Serve(conn, s.Zone(), query)
			} else {
				_ = axfr.Refuse(conn, query)
			}
			continue
		}
		resp := s.Handle(query, true)
		if resp == nil {
			return
		}
		if err := axfr.WriteMessage(conn, resp); err != nil {
			return
		}
	}
}

// Handle computes the response for query. tcp reports the transport (AXFR is
// only valid over TCP and handled by the caller). A nil return means "drop".
// Exported so in-process simulations can query a server without sockets.
func (s *Server) Handle(query *dnswire.Message, tcp bool) *dnswire.Message {
	return s.handleState(s.state.Load(), query, tcp)
}

// handleState is Handle pinned to one serveState, so the UDP miss path
// answers from the same zone whose cache it populates.
func (s *Server) handleState(st *serveState, query *dnswire.Message, tcp bool) *dnswire.Message {
	if query.Header.Response || len(query.Questions) != 1 {
		return nil
	}
	mQueries.Inc()
	timer := telemetry.StartTimer()
	defer timer.ObserveInto(mQueryDur)
	span := telemetry.StartSpan("serve", "dns", -1, 0)
	defer span.End()
	q := query.Questions[0]
	resp := &dnswire.Message{
		Header: dnswire.Header{
			ID:       query.Header.ID,
			Response: true,
			Opcode:   query.Header.Opcode,
		},
		Questions: []dnswire.Question{q},
	}
	if query.Header.Opcode != dnswire.OpcodeQuery {
		resp.Header.Rcode = dnswire.RcodeNotImp
		return resp
	}
	if opt, ok := query.EDNS(); ok {
		resp.WithEDNS(uint16(max(s.cfg.UDPSize, dnswire.MaxUDPPayload)), opt.Do)
	}

	switch q.Class {
	case dnswire.ClassCHAOS:
		s.answerChaos(resp, q)
	case dnswire.ClassINET:
		if q.Type == dnswire.TypeAXFR {
			resp.Header.Rcode = dnswire.RcodeRefused
			if tcp && s.cfg.AllowAXFR {
				// handled by serveConn; Handle alone refuses
			}
			return resp
		}
		s.answerINET(st, resp, q, query)
	default:
		resp.Header.Rcode = dnswire.RcodeRefused
	}
	return resp
}

// answerChaos answers the identity battery.
func (s *Server) answerChaos(resp *dnswire.Message, q dnswire.Question) {
	name := strings.ToLower(strings.TrimSuffix(string(q.Name), "."))
	var txt string
	switch name {
	case "hostname.bind", "id.server":
		txt = s.cfg.Identity.Hostname
	case "version.bind", "version.server":
		txt = s.cfg.Identity.Version
	default:
		resp.Header.Rcode = dnswire.RcodeRefused
		return
	}
	if txt == "" {
		resp.Header.Rcode = dnswire.RcodeRefused
		return
	}
	if q.Type != dnswire.TypeTXT {
		resp.Header.Rcode = dnswire.RcodeRefused
		return
	}
	resp.Header.Authoritative = true
	resp.Answers = append(resp.Answers, dnswire.RR{
		Name: q.Name, Class: dnswire.ClassCHAOS, TTL: 0,
		Data: dnswire.TXTRecord{Strings: []string{txt}},
	})
}

// answerINET answers class-IN queries from the best-matching authoritative
// zone: authoritative data at or above the apex cut, referrals for
// delegated names, NXDOMAIN otherwise.
func (s *Server) answerINET(st *serveState, resp *dnswire.Message, q dnswire.Question, query *dnswire.Message) {
	z := s.zoneFor(st.zone, q.Name)
	if z == nil {
		resp.Header.Rcode = dnswire.RcodeRefused
		return
	}
	dnssecOK := false
	if opt, ok := query.EDNS(); ok {
		dnssecOK = opt.Do
	}

	// Exact data at the name?
	answers := z.Lookup(q.Name, q.Type)
	isDelegated := len(z.Delegation(q.Name)) > 0

	if len(answers) > 0 && (!isDelegated || q.Name.Canonical() == z.Apex.Canonical()) {
		resp.Header.Authoritative = true
		resp.Answers = answers
		if dnssecOK {
			resp.Answers = append(resp.Answers, coveringSigs(z, q.Name, q.Type)...)
		}
		if q.Name.Canonical() == z.Apex.Canonical() && q.Type == dnswire.TypeNS {
			s.addGlue(resp, z, answers, dnssecOK)
		}
		return
	}

	// Referral?
	if deleg := z.Delegation(q.Name); len(deleg) > 0 {
		resp.Authority = deleg
		s.addGlue(resp, z, deleg, false)
		return
	}

	// Name exists with other types (NODATA) or not at all (NXDOMAIN)?
	if len(z.Lookup(q.Name, dnswire.TypeANY)) > 0 {
		resp.Header.Authoritative = true
		s.addSOA(resp, z, dnssecOK)
		if dnssecOK {
			// NODATA proof: the NSEC at the queried name shows the type is
			// absent from its bitmap (RFC 4035 §3.1.3.1).
			s.addNSEC(resp, z, q.Name)
		}
		return
	}
	resp.Header.Authoritative = true
	resp.Header.Rcode = dnswire.RcodeNXDomain
	s.addSOA(resp, z, dnssecOK)
	if dnssecOK {
		// NXDOMAIN proof: the NSEC covering the queried name, plus the one
		// proving no wildcard could have matched (RFC 4035 §3.1.3.2). In
		// the root zone, the apex NSEC proves wildcard absence.
		s.addCoveringNSEC(resp, z, q.Name)
		s.addNSEC(resp, z, z.Apex)
	}
}

// addNSEC appends the NSEC RRset at name (with its RRSIG) to authority.
func (s *Server) addNSEC(resp *dnswire.Message, z *zone.Zone, name dnswire.Name) {
	for _, rr := range z.Lookup(name, dnswire.TypeNSEC) {
		resp.Authority = append(resp.Authority, rr)
	}
	resp.Authority = append(resp.Authority, coveringSigs(z, name, dnswire.TypeNSEC)...)
}

// addCoveringNSEC appends the NSEC record whose owner/next-name span covers
// the (nonexistent) queried name, with its RRSIG.
func (s *Server) addCoveringNSEC(resp *dnswire.Message, z *zone.Zone, name dnswire.Name) {
	for _, rr := range z.Records {
		nsec, ok := rr.Data.(dnswire.NSECRecord)
		if !ok {
			continue
		}
		if nsecCovers(rr.Name, nsec.NextName, name) {
			resp.Authority = append(resp.Authority, rr)
			resp.Authority = append(resp.Authority, coveringSigs(z, rr.Name, dnswire.TypeNSEC)...)
			return
		}
	}
}

// nsecCovers reports whether the NSEC span (owner, next) covers name in
// canonical order, handling the chain's wrap-around at the apex.
func nsecCovers(owner, next, name dnswire.Name) bool {
	cmpOwner := dnswire.CompareCanonical(owner, name)
	cmpNext := dnswire.CompareCanonical(name, next)
	if dnswire.CompareCanonical(owner, next) < 0 {
		return cmpOwner < 0 && cmpNext < 0
	}
	// Wrap-around span (last NSEC pointing back to the apex).
	return cmpOwner < 0 || cmpNext < 0
}

// addGlue appends A/AAAA (and with dnssecOK their RRSIGs) for NS targets.
func (s *Server) addGlue(resp *dnswire.Message, z *zone.Zone, nsset []dnswire.RR, dnssecOK bool) {
	for _, rr := range nsset {
		ns, ok := rr.Data.(dnswire.NSRecord)
		if !ok {
			continue
		}
		resp.Additional = append(resp.Additional, z.Glue(ns.Host)...)
		if dnssecOK {
			resp.Additional = append(resp.Additional, coveringSigs(z, ns.Host, dnswire.TypeA)...)
			resp.Additional = append(resp.Additional, coveringSigs(z, ns.Host, dnswire.TypeAAAA)...)
		}
	}
}

// addSOA puts the SOA (and optionally its RRSIG) in the authority section.
func (s *Server) addSOA(resp *dnswire.Message, z *zone.Zone, dnssecOK bool) {
	if soa, ok := z.SOA(); ok {
		resp.Authority = append(resp.Authority, soa)
		if dnssecOK {
			resp.Authority = append(resp.Authority, coveringSigs(z, z.Apex, dnswire.TypeSOA)...)
		}
	}
}

// coveringSigs returns RRSIGs at name covering typ.
func coveringSigs(z *zone.Zone, name dnswire.Name, typ dnswire.Type) []dnswire.RR {
	var out []dnswire.RR
	for _, rr := range z.Lookup(name, dnswire.TypeRRSIG) {
		if sig, ok := rr.Data.(dnswire.RRSIGRecord); ok && sig.TypeCovered == typ {
			out = append(out, rr)
		}
	}
	return out
}

// Run is a convenience for examples: start on addr, block until ctx is done,
// then close.
func (s *Server) Run(ctx context.Context, addr string) (net.Addr, error) {
	bound, err := s.Start(addr)
	if err != nil {
		return nil, err
	}
	go func() {
		<-ctx.Done()
		s.Close()
	}()
	return bound, nil
}
