// Package dnsserver implements an authoritative DNS server for the root
// zone over real UDP and TCP sockets: apex answers, TLD referrals with glue,
// priming responses (RFC 8109), NXDOMAIN, CHAOS-class server identity
// (hostname.bind, id.server, version.bind, version.server), truncation with
// TCP fallback, and AXFR. Each simulated root server instance in the study
// can be backed by one of these, and the examples run them on loopback.
package dnsserver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"

	"repro/internal/axfr"
	"repro/internal/dnswire"
	"repro/internal/telemetry"
	"repro/internal/zone"
)

// Identity is what the server reports to CHAOS-class identity queries.
type Identity struct {
	// Hostname answers hostname.bind and id.server, e.g. the instance name
	// "fra3.l.root-servers.org" a root instance would report.
	Hostname string
	// Version answers version.bind and version.server.
	Version string
}

// Config configures a Server.
type Config struct {
	// Zone is the primary zone to serve. It must have a SOA at its apex.
	Zone *zone.Zone
	// ExtraZones are additional authoritative zones (the real root servers
	// also serve root-servers.net). Lookups pick the zone with the
	// longest-matching apex.
	ExtraZones []*zone.Zone
	// Identity is reported on CHAOS TXT queries. Empty fields yield REFUSED,
	// like roots that suppress identity.
	Identity Identity
	// AllowAXFR enables zone transfers on the TCP listener.
	AllowAXFR bool
	// UDPSize caps UDP responses; larger answers set TC. Defaults to 512
	// without EDNS, or the client's advertised size.
	UDPSize int
}

// Server is an authoritative DNS server bound to one UDP and one TCP socket.
type Server struct {
	cfg Config

	mu      sync.RWMutex
	zone    *zone.Zone
	udp     *net.UDPConn
	tcp     net.Listener
	wg      sync.WaitGroup
	closed  chan struct{}
	started bool
}

// New creates an unstarted server.
func New(cfg Config) (*Server, error) {
	if cfg.Zone == nil {
		return nil, errors.New("dnsserver: nil zone")
	}
	if _, ok := cfg.Zone.SOA(); !ok {
		return nil, errors.New("dnsserver: zone has no SOA")
	}
	if cfg.UDPSize == 0 {
		cfg.UDPSize = dnswire.MaxUDPPayload
	}
	return &Server{cfg: cfg, zone: cfg.Zone, closed: make(chan struct{})}, nil
}

// SetZone atomically replaces the served zone (zone updates mid-study).
func (s *Server) SetZone(z *zone.Zone) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.zone = z
}

// Zone returns the currently served primary zone.
func (s *Server) Zone() *zone.Zone {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.zone
}

// zoneFor returns the authoritative zone for name: the configured zone
// (primary or extra) with the longest apex that name falls under, or nil.
func (s *Server) zoneFor(name dnswire.Name) *zone.Zone {
	best := (*zone.Zone)(nil)
	bestLabels := -1
	consider := func(z *zone.Zone) {
		if z == nil || !name.SubdomainOf(z.Apex) {
			return
		}
		if n := len(z.Apex.Labels()); n > bestLabels {
			best, bestLabels = z, n
		}
	}
	consider(s.Zone())
	for _, z := range s.cfg.ExtraZones {
		consider(z)
	}
	return best
}

// Start binds addr (e.g. "127.0.0.1:0") on UDP and TCP and serves until
// Close. It returns the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	if s.started {
		return nil, errors.New("dnsserver: already started")
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: resolve %q: %w", addr, err)
	}
	udp, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: listen udp: %w", err)
	}
	tcp, err := net.Listen("tcp", udp.LocalAddr().String())
	if err != nil {
		udp.Close()
		return nil, fmt.Errorf("dnsserver: listen tcp: %w", err)
	}
	s.udp, s.tcp = udp, tcp
	s.started = true
	s.wg.Add(2)
	go s.serveUDP()
	go s.serveTCP()
	return udp.LocalAddr(), nil
}

// Close stops the listeners and waits for in-flight handlers.
func (s *Server) Close() error {
	if !s.started {
		return nil
	}
	close(s.closed)
	s.udp.Close()
	s.tcp.Close()
	s.wg.Wait()
	return nil
}

func (s *Server) serveUDP() {
	defer s.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, raddr, err := s.udp.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				continue
			}
		}
		query, err := dnswire.Unpack(buf[:n])
		if err != nil {
			continue // unparseable datagrams are dropped, like real servers
		}
		resp := s.Handle(query, false)
		if resp == nil {
			continue
		}
		limit := s.cfg.UDPSize
		if opt, ok := query.EDNS(); ok && int(opt.UDPSize) > limit {
			limit = int(opt.UDPSize)
		}
		wire, err := resp.Pack()
		if err != nil {
			continue
		}
		if len(wire) > limit {
			tc := &dnswire.Message{Header: resp.Header, Questions: resp.Questions}
			tc.Header.Truncated = true
			if wire, err = tc.Pack(); err != nil {
				continue
			}
		}
		_, _ = s.udp.WriteToUDP(wire, raddr)
	}
}

func (s *Server) serveTCP() {
	defer s.wg.Done()
	for {
		conn, err := s.tcp.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				continue
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

// serveConn handles sequential queries on one TCP connection.
func (s *Server) serveConn(conn net.Conn) {
	for {
		query, err := axfr.ReadMessage(conn)
		if err != nil {
			return
		}
		if len(query.Questions) == 1 && query.Questions[0].Type == dnswire.TypeAXFR {
			if s.cfg.AllowAXFR {
				_ = axfr.Serve(conn, s.Zone(), query)
			} else {
				_ = axfr.Refuse(conn, query)
			}
			continue
		}
		resp := s.Handle(query, true)
		if resp == nil {
			return
		}
		if err := axfr.WriteMessage(conn, resp); err != nil {
			return
		}
	}
}

// Handle computes the response for query. tcp reports the transport (AXFR is
// only valid over TCP and handled by the caller). A nil return means "drop".
// Exported so in-process simulations can query a server without sockets.
func (s *Server) Handle(query *dnswire.Message, tcp bool) *dnswire.Message {
	if query.Header.Response || len(query.Questions) != 1 {
		return nil
	}
	mQueries.Inc()
	timer := telemetry.StartTimer()
	defer timer.ObserveInto(mQueryDur)
	span := telemetry.StartSpan("serve", "dns", -1, 0)
	defer span.End()
	q := query.Questions[0]
	resp := &dnswire.Message{
		Header: dnswire.Header{
			ID:       query.Header.ID,
			Response: true,
			Opcode:   query.Header.Opcode,
		},
		Questions: []dnswire.Question{q},
	}
	if query.Header.Opcode != dnswire.OpcodeQuery {
		resp.Header.Rcode = dnswire.RcodeNotImp
		return resp
	}
	if opt, ok := query.EDNS(); ok {
		resp.WithEDNS(uint16(max(s.cfg.UDPSize, dnswire.MaxUDPPayload)), opt.Do)
	}

	switch q.Class {
	case dnswire.ClassCHAOS:
		s.answerChaos(resp, q)
	case dnswire.ClassINET:
		if q.Type == dnswire.TypeAXFR {
			resp.Header.Rcode = dnswire.RcodeRefused
			if tcp && s.cfg.AllowAXFR {
				// handled by serveConn; Handle alone refuses
			}
			return resp
		}
		s.answerINET(resp, q, query)
	default:
		resp.Header.Rcode = dnswire.RcodeRefused
	}
	return resp
}

// answerChaos answers the identity battery.
func (s *Server) answerChaos(resp *dnswire.Message, q dnswire.Question) {
	name := strings.ToLower(strings.TrimSuffix(string(q.Name), "."))
	var txt string
	switch name {
	case "hostname.bind", "id.server":
		txt = s.cfg.Identity.Hostname
	case "version.bind", "version.server":
		txt = s.cfg.Identity.Version
	default:
		resp.Header.Rcode = dnswire.RcodeRefused
		return
	}
	if txt == "" {
		resp.Header.Rcode = dnswire.RcodeRefused
		return
	}
	if q.Type != dnswire.TypeTXT {
		resp.Header.Rcode = dnswire.RcodeRefused
		return
	}
	resp.Header.Authoritative = true
	resp.Answers = append(resp.Answers, dnswire.RR{
		Name: q.Name, Class: dnswire.ClassCHAOS, TTL: 0,
		Data: dnswire.TXTRecord{Strings: []string{txt}},
	})
}

// answerINET answers class-IN queries from the best-matching authoritative
// zone: authoritative data at or above the apex cut, referrals for
// delegated names, NXDOMAIN otherwise.
func (s *Server) answerINET(resp *dnswire.Message, q dnswire.Question, query *dnswire.Message) {
	z := s.zoneFor(q.Name)
	if z == nil {
		resp.Header.Rcode = dnswire.RcodeRefused
		return
	}
	dnssecOK := false
	if opt, ok := query.EDNS(); ok {
		dnssecOK = opt.Do
	}

	// Exact data at the name?
	answers := z.Lookup(q.Name, q.Type)
	isDelegated := len(z.Delegation(q.Name)) > 0

	if len(answers) > 0 && (!isDelegated || q.Name.Canonical() == z.Apex.Canonical()) {
		resp.Header.Authoritative = true
		resp.Answers = answers
		if dnssecOK {
			resp.Answers = append(resp.Answers, coveringSigs(z, q.Name, q.Type)...)
		}
		if q.Name.Canonical() == z.Apex.Canonical() && q.Type == dnswire.TypeNS {
			s.addGlue(resp, z, answers, dnssecOK)
		}
		return
	}

	// Referral?
	if deleg := z.Delegation(q.Name); len(deleg) > 0 {
		resp.Authority = deleg
		s.addGlue(resp, z, deleg, false)
		return
	}

	// Name exists with other types (NODATA) or not at all (NXDOMAIN)?
	if len(z.Lookup(q.Name, dnswire.TypeANY)) > 0 {
		resp.Header.Authoritative = true
		s.addSOA(resp, z, dnssecOK)
		if dnssecOK {
			// NODATA proof: the NSEC at the queried name shows the type is
			// absent from its bitmap (RFC 4035 §3.1.3.1).
			s.addNSEC(resp, z, q.Name)
		}
		return
	}
	resp.Header.Authoritative = true
	resp.Header.Rcode = dnswire.RcodeNXDomain
	s.addSOA(resp, z, dnssecOK)
	if dnssecOK {
		// NXDOMAIN proof: the NSEC covering the queried name, plus the one
		// proving no wildcard could have matched (RFC 4035 §3.1.3.2). In
		// the root zone, the apex NSEC proves wildcard absence.
		s.addCoveringNSEC(resp, z, q.Name)
		s.addNSEC(resp, z, z.Apex)
	}
}

// addNSEC appends the NSEC RRset at name (with its RRSIG) to authority.
func (s *Server) addNSEC(resp *dnswire.Message, z *zone.Zone, name dnswire.Name) {
	for _, rr := range z.Lookup(name, dnswire.TypeNSEC) {
		resp.Authority = append(resp.Authority, rr)
	}
	resp.Authority = append(resp.Authority, coveringSigs(z, name, dnswire.TypeNSEC)...)
}

// addCoveringNSEC appends the NSEC record whose owner/next-name span covers
// the (nonexistent) queried name, with its RRSIG.
func (s *Server) addCoveringNSEC(resp *dnswire.Message, z *zone.Zone, name dnswire.Name) {
	for _, rr := range z.Records {
		nsec, ok := rr.Data.(dnswire.NSECRecord)
		if !ok {
			continue
		}
		if nsecCovers(rr.Name, nsec.NextName, name) {
			resp.Authority = append(resp.Authority, rr)
			resp.Authority = append(resp.Authority, coveringSigs(z, rr.Name, dnswire.TypeNSEC)...)
			return
		}
	}
}

// nsecCovers reports whether the NSEC span (owner, next) covers name in
// canonical order, handling the chain's wrap-around at the apex.
func nsecCovers(owner, next, name dnswire.Name) bool {
	cmpOwner := dnswire.CompareCanonical(owner, name)
	cmpNext := dnswire.CompareCanonical(name, next)
	if dnswire.CompareCanonical(owner, next) < 0 {
		return cmpOwner < 0 && cmpNext < 0
	}
	// Wrap-around span (last NSEC pointing back to the apex).
	return cmpOwner < 0 || cmpNext < 0
}

// addGlue appends A/AAAA (and with dnssecOK their RRSIGs) for NS targets.
func (s *Server) addGlue(resp *dnswire.Message, z *zone.Zone, nsset []dnswire.RR, dnssecOK bool) {
	for _, rr := range nsset {
		ns, ok := rr.Data.(dnswire.NSRecord)
		if !ok {
			continue
		}
		resp.Additional = append(resp.Additional, z.Glue(ns.Host)...)
		if dnssecOK {
			resp.Additional = append(resp.Additional, coveringSigs(z, ns.Host, dnswire.TypeA)...)
			resp.Additional = append(resp.Additional, coveringSigs(z, ns.Host, dnswire.TypeAAAA)...)
		}
	}
}

// addSOA puts the SOA (and optionally its RRSIG) in the authority section.
func (s *Server) addSOA(resp *dnswire.Message, z *zone.Zone, dnssecOK bool) {
	if soa, ok := z.SOA(); ok {
		resp.Authority = append(resp.Authority, soa)
		if dnssecOK {
			resp.Authority = append(resp.Authority, coveringSigs(z, z.Apex, dnswire.TypeSOA)...)
		}
	}
}

// coveringSigs returns RRSIGs at name covering typ.
func coveringSigs(z *zone.Zone, name dnswire.Name, typ dnswire.Type) []dnswire.RR {
	var out []dnswire.RR
	for _, rr := range z.Lookup(name, dnswire.TypeRRSIG) {
		if sig, ok := rr.Data.(dnswire.RRSIGRecord); ok && sig.TypeCovered == typ {
			out = append(out, rr)
		}
	}
	return out
}

// Run is a convenience for examples: start on addr, block until ctx is done,
// then close.
func (s *Server) Run(ctx context.Context, addr string) (net.Addr, error) {
	bound, err := s.Start(addr)
	if err != nil {
		return nil, err
	}
	go func() {
		<-ctx.Done()
		s.Close()
	}()
	return bound, nil
}
