package dnsserver

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/dnsclient"
	"repro/internal/dnssec"
	"repro/internal/dnswire"
	"repro/internal/zone"
	"repro/internal/zonemd"
)

var studyTime = time.Date(2023, 12, 10, 12, 0, 0, 0, time.UTC)

// startServer returns a running server on loopback and a matching client.
func startServer(t testing.TB, cfg Config) (*Server, *dnsclient.Client) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c := dnsclient.New(addr.String())
	c.Timeout = 2 * time.Second
	return s, c
}

func signedRootZone(t testing.TB, tlds int) (*zone.Zone, *dnssec.Signer) {
	t.Helper()
	cfg := zone.DefaultRootConfig()
	cfg.TLDCount = tlds
	signer, err := dnssec.NewSigner(rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	signed, err := signer.Sign(zone.SynthesizeRoot(cfg), studyTime)
	if err != nil {
		t.Fatal(err)
	}
	z, err := zonemd.AttachAndSign(signed, signer, zonemd.StateVerifiable, studyTime)
	if err != nil {
		t.Fatal(err)
	}
	return z, signer
}

func TestApexSOAQuery(t *testing.T) {
	z, _ := signedRootZone(t, 10)
	_, c := startServer(t, Config{Zone: z, Identity: Identity{Hostname: "test1", Version: "repro-1"}})
	resp, err := c.Query(dnswire.Root, dnswire.TypeSOA)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.Authoritative || resp.Header.Rcode != dnswire.RcodeNoError {
		t.Errorf("header = %+v", resp.Header)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].Type() != dnswire.TypeSOA {
		t.Errorf("answers = %v", resp.Answers)
	}
}

func TestPrimingQuery(t *testing.T) {
	z, _ := signedRootZone(t, 10)
	_, c := startServer(t, Config{Zone: z})
	c.EDNSSize = 4096
	resp, err := c.Query(dnswire.Root, dnswire.TypeNS)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) < 13 {
		t.Fatalf("priming returned %d answers, want >= 13 NS", len(resp.Answers))
	}
	// Glue for root servers must ride in additional.
	var a, aaaa int
	for _, rr := range resp.Additional {
		switch rr.Type() {
		case dnswire.TypeA:
			a++
		case dnswire.TypeAAAA:
			aaaa++
		}
	}
	if a < 13 || aaaa < 13 {
		t.Errorf("glue counts: %d A, %d AAAA; want >= 13 each", a, aaaa)
	}
}

func TestReferral(t *testing.T) {
	z, _ := signedRootZone(t, 10)
	_, c := startServer(t, Config{Zone: z})
	resp, err := c.Query(dnswire.MustName("www.example.com."), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Rcode != dnswire.RcodeNoError {
		t.Fatalf("rcode = %s", resp.Header.Rcode)
	}
	if resp.Header.Authoritative {
		t.Error("referral must not set AA")
	}
	if len(resp.Answers) != 0 {
		t.Errorf("referral has answers: %v", resp.Answers)
	}
	if len(resp.Authority) == 0 {
		t.Fatal("referral has no authority records")
	}
	for _, rr := range resp.Authority {
		if rr.Name != "com." || rr.Type() != dnswire.TypeNS {
			t.Errorf("authority = %s", rr)
		}
	}
	if len(resp.Additional) == 0 {
		t.Error("referral has no glue")
	}
}

func TestNXDomain(t *testing.T) {
	z, _ := signedRootZone(t, 10)
	_, c := startServer(t, Config{Zone: z})
	resp, err := c.Query(dnswire.MustName("no-such-tld-xyz."), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Rcode != dnswire.RcodeNXDomain {
		t.Errorf("rcode = %s, want NXDOMAIN", resp.Header.Rcode)
	}
	if len(resp.Authority) == 0 || resp.Authority[0].Type() != dnswire.TypeSOA {
		t.Error("NXDOMAIN lacks SOA in authority")
	}
}

func TestChaosIdentity(t *testing.T) {
	z, _ := signedRootZone(t, 5)
	_, c := startServer(t, Config{Zone: z,
		Identity: Identity{Hostname: "ams1.b.root", Version: "repro-0.1"}})
	for _, q := range []string{"hostname.bind.", "id.server."} {
		got, err := c.QueryChaosTXT(dnswire.MustName(q))
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if got != "ams1.b.root" {
			t.Errorf("%s = %q", q, got)
		}
	}
	for _, q := range []string{"version.bind.", "version.server."} {
		got, err := c.QueryChaosTXT(dnswire.MustName(q))
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if got != "repro-0.1" {
			t.Errorf("%s = %q", q, got)
		}
	}
	if _, err := c.QueryChaosTXT(dnswire.MustName("other.bind.")); err == nil {
		t.Error("unknown chaos name answered")
	}
}

func TestChaosIdentitySuppressed(t *testing.T) {
	z, _ := signedRootZone(t, 5)
	_, c := startServer(t, Config{Zone: z}) // empty identity
	if _, err := c.QueryChaosTXT(dnswire.MustName("hostname.bind.")); err == nil {
		t.Error("suppressed identity answered")
	}
}

func TestDNSSECAnswers(t *testing.T) {
	z, _ := signedRootZone(t, 10)
	_, c := startServer(t, Config{Zone: z})
	c.EDNSSize = 4096
	resp, err := c.Query(dnswire.Root, dnswire.TypeSOA)
	if err != nil {
		t.Fatal(err)
	}
	foundSig := false
	for _, rr := range resp.Answers {
		if sig, ok := rr.Data.(dnswire.RRSIGRecord); ok && sig.TypeCovered == dnswire.TypeSOA {
			foundSig = true
		}
	}
	if !foundSig {
		t.Error("DO-bit query returned no RRSIG")
	}
}

func TestTruncationAndTCPFallback(t *testing.T) {
	z, _ := signedRootZone(t, 10)
	_, c := startServer(t, Config{Zone: z}) // UDPSize 512
	// Priming response with DNSSEC is far over 512 bytes; without EDNS the
	// UDP answer must be truncated, and the client must retry over TCP.
	resp, err := c.Query(dnswire.Root, dnswire.TypeNS)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Truncated {
		t.Error("client returned the truncated UDP response instead of TCP fallback")
	}
	if len(resp.Answers) < 13 {
		t.Errorf("answers after TCP fallback = %d", len(resp.Answers))
	}
}

func TestAXFRAllowedAndValidates(t *testing.T) {
	z, signer := signedRootZone(t, 20)
	_, c := startServer(t, Config{Zone: z, AllowAXFR: true})
	got, err := c.TransferZone()
	if err != nil {
		t.Fatal(err)
	}
	if got.Serial() != z.Serial() {
		t.Errorf("serial %d, want %d", got.Serial(), z.Serial())
	}
	if len(got.Records) != len(z.Records) {
		t.Errorf("records %d, want %d", len(got.Records), len(z.Records))
	}
	anchor := signer.TrustAnchor().Data.(dnswire.DSRecord)
	zErr, dErr := zonemd.FullValidation(got, anchor, studyTime.Add(time.Hour))
	if zErr != nil || dErr != nil {
		t.Errorf("transferred zone fails validation: zonemd=%v dnssec=%v", zErr, dErr)
	}
}

func TestAXFRRefused(t *testing.T) {
	z, _ := signedRootZone(t, 5)
	_, c := startServer(t, Config{Zone: z, AllowAXFR: false})
	if _, err := c.TransferZone(); err == nil {
		t.Error("AXFR succeeded on a server with transfers disabled")
	}
}

func TestSetZoneSwapsServial(t *testing.T) {
	z, _ := signedRootZone(t, 5)
	s, c := startServer(t, Config{Zone: z, AllowAXFR: true})
	bumped := z.BumpSerial(z.Serial() + 42)
	s.SetZone(bumped)
	got, err := c.TransferZone()
	if err != nil {
		t.Fatal(err)
	}
	if got.Serial() != z.Serial()+42 {
		t.Errorf("serial after SetZone = %d", got.Serial())
	}
}

func TestHandleRejectsNonQueries(t *testing.T) {
	z, _ := signedRootZone(t, 5)
	s, err := New(Config{Zone: z})
	if err != nil {
		t.Fatal(err)
	}
	resp := &dnswire.Message{Header: dnswire.Header{Response: true}}
	if got := s.Handle(resp, false); got != nil {
		t.Error("response message answered")
	}
	multi := dnswire.NewQuery(1, dnswire.Root, dnswire.TypeSOA)
	multi.Questions = append(multi.Questions, multi.Questions[0])
	if got := s.Handle(multi, false); got != nil {
		t.Error("multi-question query answered")
	}
	notify := dnswire.NewQuery(1, dnswire.Root, dnswire.TypeSOA)
	notify.Header.Opcode = dnswire.OpcodeNotify
	if got := s.Handle(notify, false); got == nil || got.Header.Rcode != dnswire.RcodeNotImp {
		t.Error("NOTIFY not answered with NOTIMP")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil zone accepted")
	}
	if _, err := New(Config{Zone: zone.New(dnswire.Root)}); err == nil {
		t.Error("zone without SOA accepted")
	}
}

func TestMultiZoneRootServersNet(t *testing.T) {
	z, _ := signedRootZone(t, 10)
	companion := zone.SynthesizeRootServersNet(z.Serial(), false)
	s, err := New(Config{
		Zone: z, ExtraZones: []*zone.Zone{companion},
		Identity: Identity{Hostname: "multi", Version: "v"},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := dnsclient.New(addr.String())
	c.Timeout = 2 * time.Second

	// NS root-servers.net answered authoritatively from the companion.
	resp, err := c.Query(dnswire.MustName("root-servers.net."), dnswire.TypeNS)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.Authoritative || len(resp.Answers) != 13 {
		t.Errorf("root-servers.net NS: aa=%v answers=%d",
			resp.Header.Authoritative, len(resp.Answers))
	}
	// A for a root host answered authoritatively (not a referral to net.).
	resp, err = c.Query(dnswire.MustName("b.root-servers.net."), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.Authoritative || len(resp.Answers) != 1 {
		t.Fatalf("b A: aa=%v answers=%v", resp.Header.Authoritative, resp.Answers)
	}
	if a := resp.Answers[0].Data.(dnswire.ARecord); a.Addr.String() != "170.247.170.2" {
		t.Errorf("b A = %s", a.Addr)
	}
	// Root zone lookups still work.
	resp, err = c.Query(dnswire.MustName("www.example.com."), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Authority) == 0 {
		t.Error("root referral broken with extra zones")
	}
}

func TestMultiZoneOldB(t *testing.T) {
	companion := zone.SynthesizeRootServersNet(2023100100, true)
	glue := companion.Glue(dnswire.MustName("b.root-servers.net."))
	foundOld := false
	for _, rr := range glue {
		if rr.Data.String() == "199.9.14.201" {
			foundOld = true
		}
	}
	if !foundOld {
		t.Errorf("old-b companion glue = %v", glue)
	}
}

func TestNXDomainNSECProof(t *testing.T) {
	z, _ := signedRootZone(t, 10)
	_, c := startServer(t, Config{Zone: z})
	c.EDNSSize = 4096
	resp, err := c.Query(dnswire.MustName("no-such-tld-xyz."), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Rcode != dnswire.RcodeNXDomain {
		t.Fatalf("rcode = %s", resp.Header.Rcode)
	}
	var nsecs []dnswire.RR
	var nsecSigs int
	for _, rr := range resp.Authority {
		switch d := rr.Data.(type) {
		case dnswire.NSECRecord:
			nsecs = append(nsecs, rr)
		case dnswire.RRSIGRecord:
			if d.TypeCovered == dnswire.TypeNSEC {
				nsecSigs++
			}
		}
	}
	if len(nsecs) == 0 {
		t.Fatal("NXDOMAIN carries no NSEC proof with DO set")
	}
	if nsecSigs == 0 {
		t.Error("NSEC proof unsigned")
	}
	// The covering NSEC must actually cover the queried name.
	covered := false
	for _, rr := range nsecs {
		nsec := rr.Data.(dnswire.NSECRecord)
		if nsecCovers(rr.Name, nsec.NextName, dnswire.MustName("no-such-tld-xyz.")) {
			covered = true
		}
	}
	if !covered {
		t.Error("no returned NSEC covers the queried name")
	}
}

func TestNODataNSECProof(t *testing.T) {
	z, _ := signedRootZone(t, 10)
	_, c := startServer(t, Config{Zone: z})
	c.EDNSSize = 4096
	// The apex has no TXT record: NODATA with the apex NSEC as proof.
	resp, err := c.Query(dnswire.Root, dnswire.TypeTXT)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Rcode != dnswire.RcodeNoError || len(resp.Answers) != 0 {
		t.Fatalf("rcode=%s answers=%d", resp.Header.Rcode, len(resp.Answers))
	}
	foundApexNSEC := false
	for _, rr := range resp.Authority {
		if _, ok := rr.Data.(dnswire.NSECRecord); ok && rr.Name.IsRoot() {
			foundApexNSEC = true
		}
	}
	if !foundApexNSEC {
		t.Error("NODATA response lacks the apex NSEC")
	}
}

func TestNSECCovers(t *testing.T) {
	cases := []struct {
		owner, next, name string
		want              bool
	}{
		{"com.", "de.", "cz.", true},
		{"com.", "de.", "com.", false},
		{"com.", "de.", "fr.", false},
		{"ws.", ".", "zz.", true},  // wrap-around
		{"ws.", ".", "aa.", false}, // before the span
	}
	for _, c := range cases {
		got := nsecCovers(dnswire.MustName(c.owner), dnswire.MustName(c.next), dnswire.MustName(c.name))
		if got != c.want {
			t.Errorf("nsecCovers(%s, %s, %s) = %v, want %v", c.owner, c.next, c.name, got, c.want)
		}
	}
}
