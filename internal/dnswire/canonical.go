package dnswire

import "encoding/binary"

// AppendCanonicalRR appends the DNSSEC canonical wire form of rr
// (RFC 4034 §6.2): the owner name lowercased and uncompressed, and names
// embedded in the RDATA of the legacy types lowercased and uncompressed.
// ttl overrides the record's TTL, as required when signing with the
// original TTL from the RRSIG. The canonical form is the byte stream over
// which both RRSIG signatures and ZONEMD digests are computed.
func AppendCanonicalRR(buf []byte, rr RR, ttl uint32) []byte {
	buf = appendName(buf, rr.Name.Canonical(), 0, nil)
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Type()))
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Class))
	buf = binary.BigEndian.AppendUint32(buf, ttl)
	lenOff := len(buf)
	buf = append(buf, 0, 0)
	buf = canonicalData(rr.Data).appendTo(buf, 0, nil)
	binary.BigEndian.PutUint16(buf[lenOff:], uint16(len(buf)-lenOff-2))
	return buf
}

// CanonicalRR returns the canonical wire form of rr at ttl, plus the offset
// of the RDATA octets within it. Zone sidecars cache both so canonical sorts
// can tie-break on RDATA bytes without re-encoding.
func CanonicalRR(rr RR, ttl uint32) (wire []byte, rdataOff int) {
	buf := appendName(nil, rr.Name.Canonical(), 0, nil)
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Type()))
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Class))
	buf = binary.BigEndian.AppendUint32(buf, ttl)
	lenOff := len(buf)
	buf = append(buf, 0, 0)
	buf = canonicalData(rr.Data).appendTo(buf, 0, nil)
	binary.BigEndian.PutUint16(buf[lenOff:], uint16(len(buf)-lenOff-2))
	return buf, lenOff + 2
}

// canonicalData lowercases RDATA-embedded names for the types listed in
// RFC 4034 §6.2 (as updated by RFC 6840 §5.1, which keeps only the legacy
// types' names subject to case folding).
func canonicalData(d RData) RData {
	switch r := d.(type) {
	case NSRecord:
		return NSRecord{Host: r.Host.Canonical()}
	case CNAMERecord:
		return CNAMERecord{Target: r.Target.Canonical()}
	case PTRRecord:
		return PTRRecord{Target: r.Target.Canonical()}
	case MXRecord:
		return MXRecord{Preference: r.Preference, Host: r.Host.Canonical()}
	case SOARecord:
		r.MName = r.MName.Canonical()
		r.RName = r.RName.Canonical()
		return r
	case NSECRecord:
		return NSECRecord{NextName: r.NextName.Canonical(), Types: r.Types}
	default:
		return d
	}
}

// CanonicalRRLess orders two records per RFC 8976 §3.3.1 / RFC 4034 §6.3:
// by canonical owner name, then class, then type, then by canonical RDATA
// as an octet string.
func CanonicalRRLess(a, b RR) bool {
	if c := CompareCanonical(a.Name, b.Name); c != 0 {
		return c < 0
	}
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	if a.Type() != b.Type() {
		return a.Type() < b.Type()
	}
	ra := canonicalData(a.Data).appendTo(nil, 0, nil)
	rb := canonicalData(b.Data).appendTo(nil, 0, nil)
	return string(ra) < string(rb)
}
