package dnswire

import (
	"fmt"
	"reflect"
	"testing"
)

// TestAppendPackSteadyStateZeroAllocs pins the tentpole contract of the
// pooled encoder: once a caller reuses its output buffer, packing a message
// touches the heap zero times per operation.
func TestAppendPackSteadyStateZeroAllocs(t *testing.T) {
	m := sampleMessage()
	buf, err := m.AppendPack(nil)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		out, err := m.AppendPack(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		buf = out
	})
	if allocs != 0 {
		t.Errorf("steady-state AppendPack allocates %v/op, want 0", allocs)
	}
}

// packedLen packs m and returns the wire length, failing the test on error.
func packedLen(t *testing.T, m *Message) int {
	t.Helper()
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	return len(wire)
}

// TestCompressionPointerAtOffsetBoundary places an owner name at offsets
// straddling the RFC 1035 pointer limit (0x4000): a suffix first seen at or
// past the limit cannot be a compression target, so the sibling name that
// shares it must be emitted in full rather than with an unencodable pointer.
// Round-trip equality at each offset pins both halves of that rule.
func TestCompressionPointerAtOffsetBoundary(t *testing.T) {
	build := func(fillerLen int) *Message {
		m := &Message{Header: Header{ID: 7, Response: true}}
		m.Questions = []Question{{Name: MustName("q.example."), Type: TypeNS, Class: ClassINET}}
		m.Answers = []RR{{
			Name: MustName("filler.example."), Class: ClassINET, TTL: 1,
			Data: RawRecord{RRType: Type(999), Data: make([]byte, fillerLen)},
		}}
		// Two names sharing the fresh suffix "boundary.test.": if the first
		// lands past the pointer limit, the second must not point at it.
		m.Additional = []RR{
			{Name: MustName("x.boundary.test."), Class: ClassINET, TTL: 1,
				Data: RawRecord{RRType: Type(998), Data: []byte{1}}},
			{Name: MustName("y.boundary.test."), Class: ClassINET, TTL: 1,
				Data: RawRecord{RRType: Type(998), Data: []byte{2}}},
		}
		return m
	}
	// The first additional's name starts right after the filler RR; its
	// offset moves one-for-one with fillerLen, so solve for the boundary.
	probe := build(0)
	probe.Additional = nil
	xOff0 := packedLen(t, probe)
	for _, target := range []int{0x3FFE, 0x3FFF, 0x4000, 0x4001} {
		m := build(target - xOff0)
		wire, err := m.Pack()
		if err != nil {
			t.Fatalf("offset 0x%X: pack: %v", target, err)
		}
		got, err := Unpack(wire)
		if err != nil {
			t.Fatalf("offset 0x%X: unpack: %v", target, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("offset 0x%X: round trip mismatch", target)
		}
	}
}

// TestUnpackTruncatedMidRR feeds every proper prefix of a valid message to
// the decoder: all of them cut a question or RR short somewhere, so every one
// must fail cleanly (no panic, no silent partial decode).
func TestUnpackTruncatedMidRR(t *testing.T) {
	wire, err := sampleMessage().Pack()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(wire); n++ {
		if _, err := Unpack(wire[:n]); err == nil {
			t.Fatalf("message truncated to %d of %d bytes decoded without error", n, len(wire))
		}
	}
}

// TestUnpackRejectsBadPointers pins the pointer-safety rules: a compression
// pointer must target an earlier offset, so self- and forward-pointers are
// rejected rather than looped on.
func TestUnpackRejectsBadPointers(t *testing.T) {
	header := func(qd byte) []byte {
		return []byte{0, 1, 0, 0, 0, qd, 0, 0, 0, 0, 0, 0}
	}
	cases := []struct {
		name string
		msg  []byte
	}{
		{"self-pointer", append(header(1), 0xC0, 0x0C, 0, 1, 0, 1)},
		{"forward-pointer", append(header(1), 0xC0, 0x20, 0, 1, 0, 1)},
		{"pointer-past-end", append(header(1), 0xC0)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Unpack(tc.msg); err == nil {
				t.Errorf("%s decoded without error", tc.name)
			}
		})
	}
}

// TestDecodeNameCacheConsistency checks that the per-message name memo is an
// invisible optimization: decoding every name offset of a heavily compressed
// message with a shared cache yields exactly what uncached decoding does.
func TestDecodeNameCacheConsistency(t *testing.T) {
	m := &Message{Header: Header{ID: 3, Response: true}}
	m.Questions = []Question{{Name: MustName("root-servers.net."), Type: TypeNS, Class: ClassINET}}
	for i := 0; i < 13; i++ {
		host := MustName(fmt.Sprintf("%c.root-servers.net.", 'a'+i))
		m.Answers = append(m.Answers, RR{
			Name: MustName("root-servers.net."), Class: ClassINET, TTL: 1,
			Data: NSRecord{Host: host},
		})
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	cache := make(nameCache)
	for off := headerLen; off < len(wire); off++ {
		want, wantEnd, wantErr := decodeName(wire, off)
		got, gotEnd, gotErr := decodeNameCached(wire, off, cache)
		if (wantErr == nil) != (gotErr == nil) || want != got || wantEnd != gotEnd {
			t.Fatalf("offset %d: cached (%q,%d,%v) != uncached (%q,%d,%v)",
				off, got, gotEnd, gotErr, want, wantEnd, wantErr)
		}
	}
}
