package dnswire

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzUnpack checks that the decoder never panics on arbitrary input and
// that anything it accepts can be re-packed and re-decoded to an equal
// message count layout (idempotent parse).
func FuzzUnpack(f *testing.F) {
	seed, err := sampleMessage().Pack()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	// The same message without compression pointers: seeds that differ only
	// in pointer layout steer the fuzzer toward the compression logic.
	useed, err := sampleMessage().PackUncompressed()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(useed)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	corrupt := append([]byte(nil), seed...)
	corrupt[4] = 0xFF // absurd question count
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		wire, err := m.Pack()
		if err != nil {
			// Some decoded messages cannot be re-packed (e.g. RDATA blobs
			// exceeding limits); that is acceptable as long as we do not
			// panic.
			return
		}
		m2, err := Unpack(wire)
		if err != nil {
			t.Fatalf("repack not parseable: %v", err)
		}
		if len(m2.Answers) != len(m.Answers) ||
			len(m2.Questions) != len(m.Questions) ||
			len(m2.Authority) != len(m.Authority) {
			t.Fatalf("section counts changed across repack")
		}
	})
}

// FuzzDecodeName checks the name decoder against arbitrary buffers: no
// panics, no infinite loops, and every accepted name re-encodes to a form
// that decodes to the same name.
func FuzzDecodeName(f *testing.F) {
	f.Add([]byte{0}, 0)
	f.Add([]byte{1, 'a', 0}, 0)
	f.Add([]byte{0xC0, 0}, 0)
	f.Add(appendName(nil, MustName("a.root-servers.net."), 0, nil), 0)
	f.Fuzz(func(t *testing.T, data []byte, off int) {
		if off < 0 || off >= len(data) {
			return
		}
		name, _, err := decodeName(data, off)
		if err != nil {
			return
		}
		wire := appendName(nil, name, 0, nil)
		back, _, err := decodeName(wire, 0)
		if err != nil {
			t.Fatalf("re-encoded name %q does not decode: %v", name, err)
		}
		if back != name {
			t.Fatalf("round trip changed name: %q vs %q", back, name)
		}
	})
}

// FuzzViewAgreement pins the lazy view against the full decoder: whenever
// Unpack accepts a message, the Cursor must walk the identical record
// layout, on-demand Unpack of each record must reproduce the decoded value,
// and the view's canonical bytes must match AppendCanonicalRR over the full
// decode. Seed pairs packed with and without compression pointers make the
// "same message, different pointer layout" equality explicit.
func FuzzViewAgreement(f *testing.F) {
	for _, m := range []*Message{sampleMessage(), viewSampleMessage()} {
		c, err := m.Pack()
		if err != nil {
			f.Fatal(err)
		}
		u, err := m.PackUncompressed()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(c)
		f.Add(u)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := Unpack(data)
		if err != nil {
			return
		}
		v, err := NewView(data)
		if err != nil {
			t.Fatalf("Unpack accepted but NewView rejected: %v", err)
		}
		qd, an, ns, ar := v.Counts()
		if qd != len(dec.Questions) || an != len(dec.Answers) ||
			ns != len(dec.Authority) || ar != len(dec.Additional) {
			t.Fatalf("view counts (%d,%d,%d,%d) vs decoded (%d,%d,%d,%d)",
				qd, an, ns, ar, len(dec.Questions), len(dec.Answers),
				len(dec.Authority), len(dec.Additional))
		}
		want := decodedSections(dec)
		cur := v.Records()
		var raw RawRR
		i := 0
		for cur.Next(&raw) {
			if i >= len(want) {
				t.Fatalf("cursor yielded more than %d records", len(want))
			}
			rr := want[i]
			full, err := v.Unpack(&raw)
			if err != nil {
				t.Fatalf("record %d: on-demand unpack failed after full decode accepted: %v", i, err)
			}
			if !reflect.DeepEqual(full, rr) {
				t.Fatalf("record %d: on-demand unpack mismatch:\ngot  %+v\nwant %+v", i, full, rr)
			}
			// OPT is a pseudo-record: Unpack rewrites Class/TTL into EDNS
			// fields, so raw fixed fields legitimately differ. NSEC type
			// bitmaps are compared via Unpack above but not byte-for-byte:
			// the full decoder re-encodes the bitmap canonically, while the
			// view preserves the wire bytes, and arbitrary fuzz input may
			// carry a decodable-but-non-canonical bitmap encoding.
			if rr.Type() == TypeOPT {
				i++
				continue
			}
			if raw.Type != rr.Type() || raw.Class != rr.Class || raw.TTL != rr.TTL {
				t.Fatalf("record %d: raw fixed fields (%v %v %d) vs decoded (%v %v %d)",
					i, raw.Type, raw.Class, raw.TTL, rr.Type(), rr.Class, rr.TTL)
			}
			if rr.Type() != TypeNSEC {
				got, err := v.AppendCanonical(nil, &raw)
				if err != nil {
					t.Fatalf("record %d: AppendCanonical failed after full decode accepted: %v", i, err)
				}
				ref := AppendCanonicalRR(nil, rr, raw.TTL)
				if !bytes.Equal(got, ref) {
					t.Fatalf("record %d (%v): canonical bytes differ\nview: %x\nfull: %x",
						i, raw.Type, got, ref)
				}
			}
			i++
		}
		if err := cur.Err(); err != nil {
			t.Fatalf("cursor failed where Unpack succeeded: %v", err)
		}
		if i != len(want) {
			t.Fatalf("cursor yielded %d records, Unpack %d", i, len(want))
		}
	})
}
