package dnswire

import (
	"testing"
)

// FuzzUnpack checks that the decoder never panics on arbitrary input and
// that anything it accepts can be re-packed and re-decoded to an equal
// message count layout (idempotent parse).
func FuzzUnpack(f *testing.F) {
	seed, err := sampleMessage().Pack()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	corrupt := append([]byte(nil), seed...)
	corrupt[4] = 0xFF // absurd question count
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		wire, err := m.Pack()
		if err != nil {
			// Some decoded messages cannot be re-packed (e.g. RDATA blobs
			// exceeding limits); that is acceptable as long as we do not
			// panic.
			return
		}
		m2, err := Unpack(wire)
		if err != nil {
			t.Fatalf("repack not parseable: %v", err)
		}
		if len(m2.Answers) != len(m.Answers) ||
			len(m2.Questions) != len(m.Questions) ||
			len(m2.Authority) != len(m.Authority) {
			t.Fatalf("section counts changed across repack")
		}
	})
}

// FuzzDecodeName checks the name decoder against arbitrary buffers: no
// panics, no infinite loops, and every accepted name re-encodes to a form
// that decodes to the same name.
func FuzzDecodeName(f *testing.F) {
	f.Add([]byte{0}, 0)
	f.Add([]byte{1, 'a', 0}, 0)
	f.Add([]byte{0xC0, 0}, 0)
	f.Add(appendName(nil, MustName("a.root-servers.net."), 0, nil), 0)
	f.Fuzz(func(t *testing.T, data []byte, off int) {
		if off < 0 || off >= len(data) {
			return
		}
		name, _, err := decodeName(data, off)
		if err != nil {
			return
		}
		wire := appendName(nil, name, 0, nil)
		back, _, err := decodeName(wire, 0)
		if err != nil {
			t.Fatalf("re-encoded name %q does not decode: %v", name, err)
		}
		if back != name {
			t.Fatalf("round trip changed name: %q vs %q", back, name)
		}
	})
}
