package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sync"
)

// headerLen is the fixed DNS header size (RFC 1035 §4.1.1).
const headerLen = 12

// Header holds the fixed DNS message header.
type Header struct {
	ID                 uint16
	Response           bool
	Opcode             Opcode
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	AuthenticData      bool
	CheckingDisabled   bool
	Rcode              Rcode
}

// Question is a query tuple (RFC 1035 §4.1.2).
type Question struct {
	Name  Name
	Type  Type
	Class Class
}

// String returns a dig-style rendering of q.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", q.Name, q.Class, q.Type)
}

// RR is a resource record: owner, class, TTL and typed payload.
type RR struct {
	Name  Name
	Class Class
	TTL   uint32
	Data  RData
}

// Type returns the RR type of the payload.
func (rr RR) Type() Type {
	if rr.Data == nil {
		return TypeNone
	}
	return rr.Data.Type()
}

// String renders rr in master-file style.
func (rr RR) String() string {
	return fmt.Sprintf("%s\t%d\t%s\t%s\t%s", rr.Name, rr.TTL, rr.Class, rr.Type(), rr.Data)
}

// Message is a full DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// cmPool recycles compression maps across packs. Maps are cleared before
// reuse, which keeps their buckets allocated — steady-state packs insert
// into warm buckets and never touch the heap.
var cmPool = sync.Pool{New: func() any { return make(compressionMap, 32) }}

// Pack encodes m into wire format with name compression.
func (m *Message) Pack() ([]byte, error) { return m.AppendPack(nil) }

// AppendPack encodes m with name compression, appending to buf (which may
// be nil). Reusing the returned buffer across packs makes the steady state
// allocation-free: the compression map comes from an internal pool and every
// name suffix key is a substring of the message's own names.
//
//rootlint:hotpath
func (m *Message) AppendPack(buf []byte) ([]byte, error) {
	cm := cmPool.Get().(compressionMap)
	out, err := m.pack(buf, cm)
	clear(cm)
	cmPool.Put(cm)
	return out, err
}

// PackUncompressed encodes m without compression pointers, as used by the
// ablation benchmarks and by consumers that need position-independent RRs.
func (m *Message) PackUncompressed() ([]byte, error) { return m.pack(nil, nil) }

// pack appends the encoded message to dst; the message starts at len(dst),
// and compression offsets are relative to that base.
func (m *Message) pack(dst []byte, cm compressionMap) ([]byte, error) {
	base := len(dst)
	if cap(dst)-base < headerLen {
		grown := make([]byte, base, base+512)
		copy(grown, dst)
		dst = grown
	}
	buf := dst[: base+headerLen : cap(dst)]
	binary.BigEndian.PutUint16(buf[base:], m.Header.ID)
	var flags uint16
	if m.Header.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Header.Opcode&0xF) << 11
	if m.Header.Authoritative {
		flags |= 1 << 10
	}
	if m.Header.Truncated {
		flags |= 1 << 9
	}
	if m.Header.RecursionDesired {
		flags |= 1 << 8
	}
	if m.Header.RecursionAvailable {
		flags |= 1 << 7
	}
	if m.Header.AuthenticData {
		flags |= 1 << 5
	}
	if m.Header.CheckingDisabled {
		flags |= 1 << 4
	}
	flags |= uint16(m.Header.Rcode & 0xF)
	binary.BigEndian.PutUint16(buf[base+2:], flags)
	binary.BigEndian.PutUint16(buf[base+4:], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(buf[base+6:], uint16(len(m.Answers)))
	binary.BigEndian.PutUint16(buf[base+8:], uint16(len(m.Authority)))
	binary.BigEndian.PutUint16(buf[base+10:], uint16(len(m.Additional)))

	for _, q := range m.Questions {
		buf = appendName(buf, q.Name, len(buf)-base, cm)
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Type))
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Class))
	}
	var err error
	for _, section := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, rr := range section {
			buf, err = appendRR(buf, rr, base, cm)
			if err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

// appendRR appends one resource record, handling the OPT pseudo-record's
// special Class/TTL encoding. base is the offset of the message start in buf.
func appendRR(buf []byte, rr RR, base int, cm compressionMap) ([]byte, error) {
	if rr.Data == nil {
		return nil, errors.New("dnswire: RR with nil RData")
	}
	buf = appendName(buf, rr.Name, len(buf)-base, cm)
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Type()))
	if opt, ok := rr.Data.(OPTRecord); ok {
		buf = binary.BigEndian.AppendUint16(buf, opt.UDPSize)
		var ttl uint32
		if opt.Do {
			ttl = 1 << 15 // DO bit in the high 16 flag bits' MSB half
		}
		buf = binary.BigEndian.AppendUint32(buf, ttl)
		buf = binary.BigEndian.AppendUint16(buf, 0)
		return buf, nil
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Class))
	buf = binary.BigEndian.AppendUint32(buf, rr.TTL)
	lenOff := len(buf)
	buf = append(buf, 0, 0)
	buf = rr.Data.appendTo(buf, len(buf)-base, cm)
	rdlen := len(buf) - lenOff - 2
	if rdlen > 0xFFFF {
		return nil, fmt.Errorf("dnswire: RDATA too long (%d)", rdlen)
	}
	binary.BigEndian.PutUint16(buf[lenOff:], uint16(rdlen))
	return buf, nil
}

// Unpack decodes a wire-format message.
func Unpack(msg []byte) (*Message, error) {
	if len(msg) < headerLen {
		return nil, ErrTruncated
	}
	var m Message
	m.Header.ID = binary.BigEndian.Uint16(msg[0:])
	flags := binary.BigEndian.Uint16(msg[2:])
	m.Header.Response = flags&(1<<15) != 0
	m.Header.Opcode = Opcode(flags >> 11 & 0xF)
	m.Header.Authoritative = flags&(1<<10) != 0
	m.Header.Truncated = flags&(1<<9) != 0
	m.Header.RecursionDesired = flags&(1<<8) != 0
	m.Header.RecursionAvailable = flags&(1<<7) != 0
	m.Header.AuthenticData = flags&(1<<5) != 0
	m.Header.CheckingDisabled = flags&(1<<4) != 0
	m.Header.Rcode = Rcode(flags & 0xF)
	qd := int(binary.BigEndian.Uint16(msg[4:]))
	an := int(binary.BigEndian.Uint16(msg[6:]))
	ns := int(binary.BigEndian.Uint16(msg[8:]))
	ar := int(binary.BigEndian.Uint16(msg[10:]))

	// One name memo per message: compression pointers target earlier names,
	// so most RRs in a zone transfer chunk resolve their owner (and RDATA
	// hosts) from the cache instead of re-walking labels.
	cache := make(nameCache, qd+an+ns+ar+1)

	off := headerLen
	for i := 0; i < qd; i++ {
		name, next, err := decodeNameCached(msg, off, cache)
		if err != nil {
			return nil, fmt.Errorf("question %d: %w", i, err)
		}
		if next+4 > len(msg) {
			return nil, ErrTruncated
		}
		m.Questions = append(m.Questions, Question{
			Name:  name,
			Type:  Type(binary.BigEndian.Uint16(msg[next:])),
			Class: Class(binary.BigEndian.Uint16(msg[next+2:])),
		})
		off = next + 4
	}
	var err error
	for _, sec := range []struct {
		count int
		dst   *[]RR
	}{{an, &m.Answers}, {ns, &m.Authority}, {ar, &m.Additional}} {
		if sec.count > 0 {
			// Each RR takes at least 11 octets on the wire; sizing the slice
			// from the remaining bytes bounds the count claimed by a hostile
			// header while giving honest messages a single exact allocation.
			hint := sec.count
			if max := (len(msg) - off) / 11; max < hint {
				hint = max
			}
			if hint > 0 {
				*sec.dst = make([]RR, 0, hint)
			}
		}
		for i := 0; i < sec.count; i++ {
			var rr RR
			rr, off, err = decodeRR(msg, off, cache)
			if err != nil {
				return nil, err
			}
			*sec.dst = append(*sec.dst, rr)
		}
	}
	return &m, nil
}

// decodeRR decodes one resource record starting at off.
func decodeRR(msg []byte, off int, cache nameCache) (RR, int, error) {
	name, off, err := decodeNameCached(msg, off, cache)
	if err != nil {
		return RR{}, 0, err
	}
	if off+10 > len(msg) {
		return RR{}, 0, ErrTruncated
	}
	typ := Type(binary.BigEndian.Uint16(msg[off:]))
	class := Class(binary.BigEndian.Uint16(msg[off+2:]))
	ttl := binary.BigEndian.Uint32(msg[off+4:])
	rdlen := int(binary.BigEndian.Uint16(msg[off+8:]))
	off += 10
	if off+rdlen > len(msg) {
		return RR{}, 0, ErrTruncated
	}
	rdata := msg[off : off+rdlen]
	end := off + rdlen

	if typ == TypeOPT {
		return RR{Name: name, Class: ClassINET, Data: OPTRecord{
			UDPSize: uint16(class),
			Do:      ttl&(1<<15) != 0,
		}}, end, nil
	}
	data, err := decodeRData(msg, off, rdata, typ, cache)
	if err != nil {
		return RR{}, 0, fmt.Errorf("dnswire: decoding %s RDATA for %s: %w", typ, name, err)
	}
	return RR{Name: name, Class: class, TTL: ttl, Data: data}, end, nil
}

// decodeRData decodes typed RDATA. msg and off are needed because RDATA name
// fields may contain compression pointers into the full message.
func decodeRData(msg []byte, off int, rdata []byte, typ Type, cache nameCache) (RData, error) {
	switch typ {
	case TypeA:
		if len(rdata) != 4 {
			return nil, fmt.Errorf("A RDATA length %d", len(rdata))
		}
		return ARecord{Addr: netip.AddrFrom4([4]byte(rdata))}, nil
	case TypeAAAA:
		if len(rdata) != 16 {
			return nil, fmt.Errorf("AAAA RDATA length %d", len(rdata))
		}
		return AAAARecord{Addr: netip.AddrFrom16([16]byte(rdata))}, nil
	case TypeNS, TypeCNAME, TypePTR:
		host, _, err := decodeNameCached(msg, off, cache)
		if err != nil {
			return nil, err
		}
		switch typ {
		case TypeNS:
			return NSRecord{Host: host}, nil
		case TypeCNAME:
			return CNAMERecord{Target: host}, nil
		default:
			return PTRRecord{Target: host}, nil
		}
	case TypeMX:
		if len(rdata) < 3 {
			return nil, ErrTruncated
		}
		host, _, err := decodeNameCached(msg, off+2, cache)
		if err != nil {
			return nil, err
		}
		return MXRecord{Preference: binary.BigEndian.Uint16(rdata), Host: host}, nil
	case TypeSOA:
		mname, next, err := decodeNameCached(msg, off, cache)
		if err != nil {
			return nil, err
		}
		rname, next, err := decodeNameCached(msg, next, cache)
		if err != nil {
			return nil, err
		}
		if next+20 > len(msg) {
			return nil, ErrTruncated
		}
		return SOARecord{
			MName:   mname,
			RName:   rname,
			Serial:  binary.BigEndian.Uint32(msg[next:]),
			Refresh: binary.BigEndian.Uint32(msg[next+4:]),
			Retry:   binary.BigEndian.Uint32(msg[next+8:]),
			Expire:  binary.BigEndian.Uint32(msg[next+12:]),
			Minimum: binary.BigEndian.Uint32(msg[next+16:]),
		}, nil
	case TypeTXT:
		var strs []string
		for i := 0; i < len(rdata); {
			l := int(rdata[i])
			if i+1+l > len(rdata) {
				return nil, ErrTruncated
			}
			strs = append(strs, string(rdata[i+1:i+1+l]))
			i += 1 + l
		}
		return TXTRecord{Strings: strs}, nil
	case TypeDNSKEY:
		if len(rdata) < 4 {
			return nil, ErrTruncated
		}
		return DNSKEYRecord{
			Flags:     binary.BigEndian.Uint16(rdata),
			Protocol:  rdata[2],
			Algorithm: rdata[3],
			PublicKey: append([]byte(nil), rdata[4:]...),
		}, nil
	case TypeRRSIG:
		if len(rdata) < 18 {
			return nil, ErrTruncated
		}
		// Signer name MUST NOT be compressed (RFC 4034 §3.1.7), so it can be
		// decoded from the RDATA slice alone.
		signer, next, err := decodeName(rdata, 18)
		if err != nil {
			return nil, err
		}
		return RRSIGRecord{
			TypeCovered: Type(binary.BigEndian.Uint16(rdata)),
			Algorithm:   rdata[2],
			Labels:      rdata[3],
			OriginalTTL: binary.BigEndian.Uint32(rdata[4:]),
			Expiration:  binary.BigEndian.Uint32(rdata[8:]),
			Inception:   binary.BigEndian.Uint32(rdata[12:]),
			KeyTag:      binary.BigEndian.Uint16(rdata[16:]),
			SignerName:  signer,
			Signature:   append([]byte(nil), rdata[next:]...),
		}, nil
	case TypeDS:
		if len(rdata) < 4 {
			return nil, ErrTruncated
		}
		return DSRecord{
			KeyTag:     binary.BigEndian.Uint16(rdata),
			Algorithm:  rdata[2],
			DigestType: rdata[3],
			Digest:     append([]byte(nil), rdata[4:]...),
		}, nil
	case TypeNSEC:
		next, n, err := decodeName(rdata, 0)
		if err != nil {
			return nil, err
		}
		types, err := decodeTypeBitmap(rdata[n:])
		if err != nil {
			return nil, err
		}
		return NSECRecord{NextName: next, Types: types}, nil
	case TypeZONEMD:
		if len(rdata) < 6 {
			return nil, ErrTruncated
		}
		return ZONEMDRecord{
			Serial: binary.BigEndian.Uint32(rdata),
			Scheme: rdata[4],
			Hash:   rdata[5],
			Digest: append([]byte(nil), rdata[6:]...),
		}, nil
	default:
		return RawRecord{RRType: typ, Data: append([]byte(nil), rdata...)}, nil
	}
}

// NewQuery builds a standard query message for (name, type) in class IN.
func NewQuery(id uint16, name Name, typ Type) *Message {
	return &Message{
		Header:    Header{ID: id, Opcode: OpcodeQuery, RecursionDesired: false},
		Questions: []Question{{Name: name, Type: typ, Class: ClassINET}},
	}
}

// NewChaosQuery builds a CH TXT query, as used for server-identity probes
// such as hostname.bind and id.server.
func NewChaosQuery(id uint16, name Name) *Message {
	return &Message{
		Header:    Header{ID: id, Opcode: OpcodeQuery},
		Questions: []Question{{Name: name, Type: TypeTXT, Class: ClassCHAOS}},
	}
}

// WithEDNS appends an OPT pseudo-record advertising size and the DO bit.
func (m *Message) WithEDNS(size uint16, do bool) *Message {
	m.Additional = append(m.Additional, RR{Name: Root, Data: OPTRecord{UDPSize: size, Do: do}})
	return m
}

// EDNS returns the message's OPT pseudo-record, if any.
func (m *Message) EDNS() (OPTRecord, bool) {
	for _, rr := range m.Additional {
		if opt, ok := rr.Data.(OPTRecord); ok {
			return opt, true
		}
	}
	return OPTRecord{}, false
}
