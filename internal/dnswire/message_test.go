package dnswire

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

func sampleMessage() *Message {
	return &Message{
		Header: Header{
			ID:            0xBEEF,
			Response:      true,
			Authoritative: true,
			Rcode:         RcodeNoError,
		},
		Questions: []Question{{Name: Root, Type: TypeNS, Class: ClassINET}},
		Answers: []RR{
			{Name: Root, Class: ClassINET, TTL: 518400,
				Data: NSRecord{Host: MustName("a.root-servers.net.")}},
			{Name: Root, Class: ClassINET, TTL: 518400,
				Data: NSRecord{Host: MustName("b.root-servers.net.")}},
		},
		Additional: []RR{
			{Name: MustName("a.root-servers.net."), Class: ClassINET, TTL: 518400,
				Data: ARecord{Addr: mustAddr("198.41.0.4")}},
			{Name: MustName("a.root-servers.net."), Class: ClassINET, TTL: 518400,
				Data: AAAARecord{Addr: mustAddr("2001:503:ba3e::2:30")}},
		},
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := sampleMessage()
	for _, pack := range []struct {
		name string
		fn   func() ([]byte, error)
	}{
		{"compressed", m.Pack},
		{"uncompressed", m.PackUncompressed},
	} {
		wire, err := pack.fn()
		if err != nil {
			t.Fatalf("%s pack: %v", pack.name, err)
		}
		got, err := Unpack(wire)
		if err != nil {
			t.Fatalf("%s unpack: %v", pack.name, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%s round trip mismatch:\ngot  %+v\nwant %+v", pack.name, got, m)
		}
	}
}

func TestCompressionShrinksMessage(t *testing.T) {
	m := sampleMessage()
	c, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	u, err := m.PackUncompressed()
	if err != nil {
		t.Fatal(err)
	}
	if len(c) >= len(u) {
		t.Errorf("compressed %d >= uncompressed %d", len(c), len(u))
	}
}

func TestHeaderFlagsRoundTrip(t *testing.T) {
	f := func(id uint16, resp, aa, tc, rd, ra, ad, cd bool, op, rc uint8) bool {
		m := &Message{Header: Header{
			ID: id, Response: resp, Opcode: Opcode(op & 0xF),
			Authoritative: aa, Truncated: tc, RecursionDesired: rd,
			RecursionAvailable: ra, AuthenticData: ad, CheckingDisabled: cd,
			Rcode: Rcode(rc & 0xF),
		}}
		wire, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(wire)
		if err != nil {
			return false
		}
		return got.Header == m.Header
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// randomRR generates a random RR of a random supported type.
func randomRR(r *rand.Rand) RR {
	name := randomName(r)
	ttl := r.Uint32() % 1000000
	var data RData
	switch r.Intn(11) {
	case 0:
		var a [4]byte
		r.Read(a[:])
		data = ARecord{Addr: netip.AddrFrom4(a)}
	case 1:
		var a [16]byte
		r.Read(a[:])
		data = AAAARecord{Addr: netip.AddrFrom16(a)}
	case 2:
		data = NSRecord{Host: randomName(r)}
	case 3:
		data = CNAMERecord{Target: randomName(r)}
	case 4:
		data = SOARecord{
			MName: randomName(r), RName: randomName(r),
			Serial: r.Uint32(), Refresh: r.Uint32(), Retry: r.Uint32(),
			Expire: r.Uint32(), Minimum: r.Uint32(),
		}
	case 5:
		n := 1 + r.Intn(3)
		strs := make([]string, n)
		for i := range strs {
			b := make([]byte, r.Intn(40))
			for j := range b {
				b[j] = byte('a' + r.Intn(26))
			}
			strs[i] = string(b)
		}
		data = TXTRecord{Strings: strs}
	case 6:
		pk := make([]byte, 32+r.Intn(32))
		r.Read(pk)
		data = DNSKEYRecord{Flags: 256 + uint16(r.Intn(2)), Protocol: 3,
			Algorithm: AlgECDSAP256SHA256, PublicKey: pk}
	case 7:
		sig := make([]byte, 64)
		r.Read(sig)
		data = RRSIGRecord{
			TypeCovered: TypeNS, Algorithm: AlgECDSAP256SHA256,
			Labels: uint8(r.Intn(4)), OriginalTTL: r.Uint32(),
			Expiration: r.Uint32(), Inception: r.Uint32(),
			KeyTag: uint16(r.Uint32()), SignerName: randomName(r), Signature: sig,
		}
	case 8:
		d := make([]byte, 48)
		r.Read(d)
		data = DSRecord{KeyTag: uint16(r.Uint32()), Algorithm: AlgECDSAP256SHA256,
			DigestType: 2, Digest: d}
	case 9:
		types := []Type{TypeNS, TypeSOA, TypeRRSIG, TypeNSEC, TypeDNSKEY, TypeZONEMD}
		n := 1 + r.Intn(len(types))
		data = NSECRecord{NextName: randomName(r), Types: types[:n]}
	case 10:
		d := make([]byte, 48)
		r.Read(d)
		data = ZONEMDRecord{Serial: r.Uint32(), Scheme: ZonemdSchemeSimple,
			Hash: ZonemdHashSHA384, Digest: d}
	}
	return RR{Name: name, Class: ClassINET, TTL: ttl, Data: data}
}

func TestRandomMessageRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := &Message{
			Header:    Header{ID: uint16(r.Uint32()), Response: true},
			Questions: []Question{{Name: randomName(r), Type: TypeANY, Class: ClassINET}},
		}
		for i := 0; i < 1+r.Intn(8); i++ {
			m.Answers = append(m.Answers, randomRR(r))
		}
		for i := 0; i < r.Intn(4); i++ {
			m.Authority = append(m.Authority, randomRR(r))
		}
		wire, err := m.Pack()
		if err != nil {
			t.Logf("pack: %v", err)
			return false
		}
		got, err := Unpack(wire)
		if err != nil {
			t.Logf("unpack: %v", err)
			return false
		}
		if !reflect.DeepEqual(got, m) {
			t.Logf("mismatch:\ngot  %#v\nwant %#v", got, m)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestUnpackMalformed(t *testing.T) {
	valid, err := sampleMessage().Pack()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(valid); i++ {
		if _, err := Unpack(valid[:i]); err == nil {
			// Truncation at some boundaries can still parse if the header
			// counts are satisfied; those boundaries must be RR boundaries.
			// Only the full message is guaranteed valid with these counts.
			t.Errorf("Unpack of %d-byte prefix succeeded", i)
		}
	}
}

func TestEDNSRoundTrip(t *testing.T) {
	m := NewQuery(1, Root, TypeSOA).WithEDNS(4096, true)
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	opt, ok := got.EDNS()
	if !ok {
		t.Fatal("no OPT record after round trip")
	}
	if opt.UDPSize != 4096 || !opt.Do {
		t.Errorf("opt = %+v", opt)
	}
}

func TestChaosQuery(t *testing.T) {
	m := NewChaosQuery(7, MustName("hostname.bind."))
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	q := got.Questions[0]
	if q.Class != ClassCHAOS || q.Type != TypeTXT || q.Name != "hostname.bind." {
		t.Errorf("question = %+v", q)
	}
}

func TestTypeBitmapRoundTrip(t *testing.T) {
	cases := [][]Type{
		{TypeA},
		{TypeNS, TypeSOA, TypeRRSIG, TypeNSEC, TypeDNSKEY, TypeZONEMD},
		{TypeA, TypeAAAA, Type(1234)},
		{TypeZONEMD},
	}
	for _, types := range cases {
		wire := appendTypeBitmap(nil, types)
		got, err := decodeTypeBitmap(wire)
		if err != nil {
			t.Fatalf("decode bitmap %v: %v", types, err)
		}
		if !reflect.DeepEqual(got, types) {
			t.Errorf("bitmap round trip = %v, want %v", got, types)
		}
	}
}

func TestTypeStringRoundTrip(t *testing.T) {
	for typ := range typeNames {
		got, err := TypeFromString(typ.String())
		if err != nil || got != typ {
			t.Errorf("TypeFromString(%q) = %v, %v", typ.String(), got, err)
		}
	}
	if got, err := TypeFromString("TYPE999"); err != nil || got != Type(999) {
		t.Errorf("TYPE999 = %v, %v", got, err)
	}
	if _, err := TypeFromString("BOGUS"); err == nil {
		t.Error("expected error for BOGUS")
	}
}

func TestRRString(t *testing.T) {
	rr := RR{Name: Root, Class: ClassINET, TTL: 86400,
		Data: SOARecord{MName: MustName("a.root-servers.net."), RName: MustName("nstld.verisign-grs.com."), Serial: 2023112700}}
	s := rr.String()
	if s == "" {
		t.Error("empty RR string")
	}
}
