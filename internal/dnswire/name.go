package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// A Name is a fully-qualified domain name in presentation form, always ending
// in a dot ("." for the root). The zero value is not a valid name; use Root
// or MustName.
type Name string

// Root is the root domain name ".".
const Root Name = "."

// Errors returned by name parsing and decoding.
var (
	ErrNameTooLong  = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong = errors.New("dnswire: label exceeds 63 octets")
	ErrBadPointer   = errors.New("dnswire: bad compression pointer")
	ErrTruncated    = errors.New("dnswire: message truncated")
)

// NewName validates and canonicalizes s into a Name. A missing trailing dot
// is added. Escapes are not supported: the root zone's contents in this
// repository never need them.
func NewName(s string) (Name, error) {
	if s == "" || s == "." {
		return Root, nil
	}
	if !strings.HasSuffix(s, ".") {
		s += "."
	}
	wireLen := 1 // terminal root label
	for _, label := range strings.Split(strings.TrimSuffix(s, "."), ".") {
		if label == "" {
			return "", fmt.Errorf("dnswire: empty label in %q", s)
		}
		if len(label) > MaxLabelLen {
			return "", ErrLabelTooLong
		}
		wireLen += 1 + len(label)
	}
	if wireLen > MaxNameLen {
		return "", ErrNameTooLong
	}
	return Name(s), nil
}

// MustName is NewName for compile-time-known names; it panics on error.
func MustName(s string) Name {
	n, err := NewName(s)
	if err != nil {
		panic(err)
	}
	return n
}

// String returns the presentation form.
func (n Name) String() string { return string(n) }

// IsRoot reports whether n is ".".
func (n Name) IsRoot() bool { return n == Root }

// Labels returns the labels of n from left to right, excluding the empty
// root label. The root name has zero labels.
func (n Name) Labels() []string {
	if n.IsRoot() || n == "" {
		return nil
	}
	return strings.Split(strings.TrimSuffix(string(n), "."), ".")
}

// Canonical returns n lowercased, per the DNSSEC canonical form
// (RFC 4034 §6.2).
func (n Name) Canonical() Name { return Name(strings.ToLower(string(n))) }

// Parent returns the name with the leftmost label removed; the parent of the
// root is the root.
func (n Name) Parent() Name {
	labels := n.Labels()
	if len(labels) <= 1 {
		return Root
	}
	return Name(strings.Join(labels[1:], ".") + ".")
}

// SubdomainOf reports whether n is equal to or below parent
// (case-insensitively).
func (n Name) SubdomainOf(parent Name) bool {
	if parent.IsRoot() {
		return true
	}
	nc, pc := string(n.Canonical()), string(parent.Canonical())
	return nc == pc || strings.HasSuffix(nc, "."+pc)
}

// CompareCanonical orders names in DNSSEC canonical order (RFC 4034 §6.1):
// by label from the rightmost, comparing lowercased labels as octet strings,
// with a shorter name sorting first when it is a prefix.
func CompareCanonical(a, b Name) int {
	al, bl := a.Canonical().Labels(), b.Canonical().Labels()
	for i := 1; i <= len(al) && i <= len(bl); i++ {
		la, lb := al[len(al)-i], bl[len(bl)-i]
		if la != lb {
			if la < lb {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(al) < len(bl):
		return -1
	case len(al) > len(bl):
		return 1
	}
	return 0
}

// wireLen returns the uncompressed wire length of n.
func (n Name) wireLen() int {
	if n.IsRoot() {
		return 1
	}
	l := 1
	for _, label := range n.Labels() {
		l += 1 + len(label)
	}
	return l
}

// compressionMap tracks name→offset mappings while building a message.
type compressionMap map[Name]int

// appendName appends the wire encoding of n to buf. When cm is non-nil,
// RFC 1035 §4.1.4 compression pointers are emitted for known suffixes and
// new suffixes at offsets < 0x4000 are recorded. off is the offset of the
// name within the full message.
// appendName compresses case-sensitively: DNS names compare
// case-insensitively, but matching only byte-identical suffixes keeps
// pack/unpack round trips byte-faithful (a case-insensitive match would
// silently rewrite a name's case when two spellings share a suffix).
func appendName(buf []byte, n Name, off int, cm compressionMap) []byte {
	labels := n.Labels()
	for i := range labels {
		suffix := Name(strings.Join(labels[i:], ".") + ".")
		if cm != nil {
			if ptr, ok := cm[suffix]; ok {
				return append(buf, 0xC0|byte(ptr>>8), byte(ptr))
			}
			if off < 0x4000 {
				cm[suffix] = off
			}
		}
		buf = append(buf, byte(len(labels[i])))
		buf = append(buf, labels[i]...)
		off += 1 + len(labels[i])
	}
	return append(buf, 0)
}

// decodeName decodes a (possibly compressed) name starting at off in msg.
// It returns the name and the offset just past the name's representation at
// off (pointers are followed but do not advance the caller's cursor).
func decodeName(msg []byte, off int) (Name, int, error) {
	var sb strings.Builder
	ptrBudget := len(msg) // each pointer must strictly decrease; bound loops
	jumped := false
	end := off
	for {
		if off >= len(msg) {
			return "", 0, ErrTruncated
		}
		b := msg[off]
		switch {
		case b == 0:
			if !jumped {
				end = off + 1
			}
			if sb.Len() == 0 {
				return Root, end, nil
			}
			name := Name(sb.String())
			if name.wireLen() > MaxNameLen {
				return "", 0, ErrNameTooLong
			}
			return name, end, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrTruncated
			}
			ptr := int(b&0x3F)<<8 | int(msg[off+1])
			if ptr >= off {
				return "", 0, ErrBadPointer
			}
			if !jumped {
				end = off + 2
				jumped = true
			}
			ptrBudget--
			if ptrBudget <= 0 {
				return "", 0, ErrBadPointer
			}
			off = ptr
		case b&0xC0 != 0:
			return "", 0, fmt.Errorf("dnswire: reserved label type 0x%02x", b&0xC0)
		default:
			l := int(b)
			if l > MaxLabelLen {
				return "", 0, ErrLabelTooLong
			}
			if off+1+l > len(msg) {
				return "", 0, ErrTruncated
			}
			sb.Write(msg[off+1 : off+1+l])
			sb.WriteByte('.')
			off += 1 + l
			if !jumped {
				end = off
			}
		}
	}
}
