package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// A Name is a fully-qualified domain name in presentation form, always ending
// in a dot ("." for the root). The zero value is not a valid name; use Root
// or MustName.
type Name string

// Root is the root domain name ".".
const Root Name = "."

// Errors returned by name parsing and decoding.
var (
	ErrNameTooLong  = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong = errors.New("dnswire: label exceeds 63 octets")
	ErrBadLabel     = errors.New("dnswire: label contains '.' (escapes unsupported)")
	ErrBadPointer   = errors.New("dnswire: bad compression pointer")
	ErrTruncated    = errors.New("dnswire: message truncated")
)

// NewName validates and canonicalizes s into a Name. A missing trailing dot
// is added. Escapes are not supported: the root zone's contents in this
// repository never need them.
func NewName(s string) (Name, error) {
	if s == "" || s == "." {
		return Root, nil
	}
	if !strings.HasSuffix(s, ".") {
		s += "."
	}
	wireLen := 1 // terminal root label
	for _, label := range strings.Split(strings.TrimSuffix(s, "."), ".") {
		if label == "" {
			return "", fmt.Errorf("dnswire: empty label in %q", s)
		}
		if len(label) > MaxLabelLen {
			return "", ErrLabelTooLong
		}
		wireLen += 1 + len(label)
	}
	if wireLen > MaxNameLen {
		return "", ErrNameTooLong
	}
	return Name(s), nil
}

// MustName is NewName for compile-time-known names; it panics on error.
func MustName(s string) Name {
	n, err := NewName(s)
	if err != nil {
		panic(err)
	}
	return n
}

// String returns the presentation form.
func (n Name) String() string { return string(n) }

// IsRoot reports whether n is ".".
func (n Name) IsRoot() bool { return n == Root }

// Labels returns the labels of n from left to right, excluding the empty
// root label. The root name has zero labels.
func (n Name) Labels() []string {
	if n.IsRoot() || n == "" {
		return nil
	}
	return strings.Split(strings.TrimSuffix(string(n), "."), ".")
}

// Canonical returns n lowercased, per the DNSSEC canonical form
// (RFC 4034 §6.2). DNS case-insensitivity is ASCII-only (RFC 4343), and
// label bytes need not be valid UTF-8, so this folds byte-wise —
// strings.ToLower would corrupt high bytes to U+FFFD.
func (n Name) Canonical() Name {
	for i := 0; i < len(n); i++ {
		if c := n[i]; 'A' <= c && c <= 'Z' {
			b := []byte(n)
			for j := i; j < len(b); j++ {
				b[j] = foldASCII(b[j])
			}
			return Name(b)
		}
	}
	return n
}

// Parent returns the name with the leftmost label removed; the parent of the
// root is the root.
func (n Name) Parent() Name {
	labels := n.Labels()
	if len(labels) <= 1 {
		return Root
	}
	return Name(strings.Join(labels[1:], ".") + ".")
}

// SubdomainOf reports whether n is equal to or below parent
// (case-insensitively).
func (n Name) SubdomainOf(parent Name) bool {
	if parent.IsRoot() {
		return true
	}
	nc, pc := string(n.Canonical()), string(parent.Canonical())
	return nc == pc || strings.HasSuffix(nc, "."+pc)
}

// CompareCanonical orders names in DNSSEC canonical order (RFC 4034 §6.1):
// by label from the rightmost, comparing lowercased labels as octet strings,
// with a shorter name sorting first when it is a prefix. It allocates
// nothing: labels are walked in place from the right, folding ASCII case,
// which keeps the canonical sorts on the zone-integrity hot path off the
// heap.
func CompareCanonical(a, b Name) int {
	if a == b {
		return 0
	}
	as := strings.TrimSuffix(string(a), ".")
	bs := strings.TrimSuffix(string(b), ".")
	ai, bi := len(as), len(bs)
	for ai > 0 && bi > 0 {
		aStart := strings.LastIndexByte(as[:ai], '.') + 1
		bStart := strings.LastIndexByte(bs[:bi], '.') + 1
		if c := compareFoldASCII(as[aStart:ai], bs[bStart:bi]); c != 0 {
			return c
		}
		ai, bi = aStart-1, bStart-1
	}
	switch {
	case ai <= 0 && bi <= 0:
		return 0
	case ai <= 0:
		return -1
	}
	return 1
}

// compareFoldASCII compares two labels as octet strings after ASCII
// lowercasing, the RFC 4034 §6.1 label comparison.
func compareFoldASCII(x, y string) int {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	for i := 0; i < n; i++ {
		cx, cy := foldASCII(x[i]), foldASCII(y[i])
		if cx != cy {
			if cx < cy {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(x) < len(y):
		return -1
	case len(x) > len(y):
		return 1
	}
	return 0
}

func foldASCII(c byte) byte {
	if 'A' <= c && c <= 'Z' {
		return c + 'a' - 'A'
	}
	return c
}

// wireLen returns the uncompressed wire length of n.
func (n Name) wireLen() int {
	if n.IsRoot() {
		return 1
	}
	l := 1
	for _, label := range n.Labels() {
		l += 1 + len(label)
	}
	return l
}

// compressionMap tracks name→offset mappings while building a message.
type compressionMap map[Name]int

// appendName appends the wire encoding of n to buf. When cm is non-nil,
// RFC 1035 §4.1.4 compression pointers are emitted for known suffixes and
// new suffixes at offsets < 0x4000 are recorded. off is the offset of the
// name within the full message.
// appendName compresses case-sensitively: DNS names compare
// case-insensitively, but matching only byte-identical suffixes keeps
// pack/unpack round trips byte-faithful (a case-insensitive match would
// silently rewrite a name's case when two spellings share a suffix).
// Suffixes are substrings of n, so the encode allocates nothing beyond
// buf growth; together with a pooled cm this is what makes steady-state
// packs allocation-free.
func appendName(buf []byte, n Name, off int, cm compressionMap) []byte {
	if n.IsRoot() || n == "" {
		return append(buf, 0)
	}
	s := string(n)
	for i := 0; i < len(s); {
		if cm != nil {
			suffix := Name(s[i:])
			if ptr, ok := cm[suffix]; ok {
				return append(buf, 0xC0|byte(ptr>>8), byte(ptr))
			}
			if off < 0x4000 {
				cm[suffix] = off
			}
		}
		end := strings.IndexByte(s[i:], '.')
		if end < 0 {
			end = len(s) // tolerate a missing trailing dot, as Labels() did
		} else {
			end += i
		}
		buf = append(buf, byte(end-i))
		buf = append(buf, s[i:end]...)
		off += 1 + end - i
		i = end + 1
	}
	return append(buf, 0)
}

// nameCache memoizes decoded names by their start offset within one message.
// Compression pointers in a packed message target offsets where a name (or a
// name suffix) was first written, so once that offset has been decoded every
// later pointer to it resolves without re-walking labels — the decode half of
// the allocation-lean wire fast path.
type nameCache map[int]Name

// decodeName decodes a (possibly compressed) name starting at off in msg.
// It returns the name and the offset just past the name's representation at
// off (pointers are followed but do not advance the caller's cursor).
func decodeName(msg []byte, off int) (Name, int, error) {
	return decodeNameCached(msg, off, nil)
}

// decodeNameCached is decodeName with a per-message memo of offset→name.
// Jump targets encountered while decoding are recorded too (as suffixes of
// the final name), so sibling names sharing a compressed tail hit the cache.
func decodeNameCached(msg []byte, off int, cache nameCache) (Name, int, error) {
	var sb strings.Builder
	ptrBudget := len(msg) // each pointer must strictly decrease; bound loops
	jumped := false
	start := off
	end := off
	// jumps records (target offset, prefix length in sb) for cache fills.
	var jumps [8][2]int
	nJumps := 0
	for {
		if off >= len(msg) {
			return "", 0, ErrTruncated
		}
		b := msg[off]
		switch {
		case b == 0:
			if !jumped {
				end = off + 1
			}
			if sb.Len() == 0 {
				return Root, end, nil
			}
			name := Name(sb.String())
			if name.wireLen() > MaxNameLen {
				return "", 0, ErrNameTooLong
			}
			if cache != nil {
				cache[start] = name
				for i := 0; i < nJumps; i++ {
					if jumps[i][1] < len(name) {
						cache[jumps[i][0]] = name[jumps[i][1]:]
					}
				}
			}
			return name, end, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrTruncated
			}
			ptr := int(b&0x3F)<<8 | int(msg[off+1])
			if ptr >= off {
				return "", 0, ErrBadPointer
			}
			if !jumped {
				end = off + 2
				jumped = true
			}
			if cache != nil {
				if suffix, ok := cache[ptr]; ok {
					sb.WriteString(string(suffix))
					name := Name(sb.String())
					if name.wireLen() > MaxNameLen {
						return "", 0, ErrNameTooLong
					}
					cache[start] = name
					for i := 0; i < nJumps; i++ {
						if jumps[i][1] < len(name) {
							cache[jumps[i][0]] = name[jumps[i][1]:]
						}
					}
					return name, end, nil
				}
				if nJumps < len(jumps) {
					jumps[nJumps] = [2]int{ptr, sb.Len()}
					nJumps++
				}
			}
			ptrBudget--
			if ptrBudget <= 0 {
				return "", 0, ErrBadPointer
			}
			off = ptr
		case b&0xC0 != 0:
			return "", 0, fmt.Errorf("dnswire: reserved label type 0x%02x", b&0xC0)
		default:
			l := int(b)
			if l > MaxLabelLen {
				return "", 0, ErrLabelTooLong
			}
			if off+1+l > len(msg) {
				return "", 0, ErrTruncated
			}
			// Name is presentation form without escape support, so a label
			// containing a literal '.' octet cannot round-trip: re-encoding
			// would split it into empty labels (a premature terminator).
			// Reject it here rather than emit a name that repacks wrong.
			for _, c := range msg[off+1 : off+1+l] {
				if c == '.' {
					return "", 0, ErrBadLabel
				}
			}
			sb.Write(msg[off+1 : off+1+l])
			sb.WriteByte('.')
			off += 1 + l
			if !jumped {
				end = off
			}
		}
	}
}
