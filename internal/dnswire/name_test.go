package dnswire

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewName(t *testing.T) {
	cases := []struct {
		in      string
		want    Name
		wantErr bool
	}{
		{"", Root, false},
		{".", Root, false},
		{"com", "com.", false},
		{"com.", "com.", false},
		{"a.root-servers.net.", "a.root-servers.net.", false},
		{"Hostname.Bind", "Hostname.Bind.", false},
		{strings.Repeat("a", 63) + ".", Name(strings.Repeat("a", 63) + "."), false},
		{strings.Repeat("a", 64) + ".", "", true},
		{"a..b.", "", true},
		{strings.Repeat("abcdefg.", 40), "", true}, // 320 octets > 255
	}
	for _, c := range cases {
		got, err := NewName(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("NewName(%q) err=%v wantErr=%v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("NewName(%q)=%q want %q", c.in, got, c.want)
		}
	}
}

func TestNameLabels(t *testing.T) {
	if got := Root.Labels(); len(got) != 0 {
		t.Errorf("root labels = %v, want none", got)
	}
	got := MustName("a.root-servers.net.").Labels()
	want := []string{"a", "root-servers", "net"}
	if len(got) != len(want) {
		t.Fatalf("labels = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("label %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestNameParent(t *testing.T) {
	n := MustName("a.root-servers.net.")
	if p := n.Parent(); p != "root-servers.net." {
		t.Errorf("parent = %q", p)
	}
	if p := MustName("net.").Parent(); p != Root {
		t.Errorf("parent of net. = %q, want root", p)
	}
	if p := Root.Parent(); p != Root {
		t.Errorf("parent of root = %q, want root", p)
	}
}

func TestSubdomainOf(t *testing.T) {
	cases := []struct {
		child, parent string
		want          bool
	}{
		{"a.root-servers.net.", "root-servers.net.", true},
		{"a.root-servers.net.", "net.", true},
		{"a.root-servers.net.", ".", true},
		{"root-servers.net.", "root-servers.net.", true},
		{"xroot-servers.net.", "root-servers.net.", false},
		{"net.", "root-servers.net.", false},
		{"A.ROOT-SERVERS.NET.", "root-servers.net.", true},
	}
	for _, c := range cases {
		if got := MustName(c.child).SubdomainOf(MustName(c.parent)); got != c.want {
			t.Errorf("SubdomainOf(%q, %q) = %v, want %v", c.child, c.parent, got, c.want)
		}
	}
}

func TestCompareCanonical(t *testing.T) {
	// Example ordering from RFC 4034 §6.1.
	ordered := []Name{
		MustName("example."),
		MustName("a.example."),
		MustName("yljkjljk.a.example."),
		MustName("Z.a.example."),
		MustName("z.example."),
	}
	for i := 0; i < len(ordered)-1; i++ {
		if CompareCanonical(ordered[i], ordered[i+1]) >= 0 {
			t.Errorf("expected %q < %q", ordered[i], ordered[i+1])
		}
		if CompareCanonical(ordered[i+1], ordered[i]) <= 0 {
			t.Errorf("expected %q > %q", ordered[i+1], ordered[i])
		}
	}
	if CompareCanonical(MustName("EXAMPLE."), MustName("example.")) != 0 {
		t.Error("case-insensitive compare failed")
	}
}

// randomName builds a valid random name for property tests.
func randomName(r *rand.Rand) Name {
	nLabels := r.Intn(5)
	labels := make([]string, 0, nLabels)
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-"
	for i := 0; i < nLabels; i++ {
		l := make([]byte, 1+r.Intn(12))
		for j := range l {
			l[j] = alphabet[r.Intn(len(alphabet))]
		}
		labels = append(labels, string(l))
	}
	if len(labels) == 0 {
		return Root
	}
	return Name(strings.Join(labels, ".") + ".")
}

func TestNameWireRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomName(r)
		wire := appendName(nil, n, 0, nil)
		got, end, err := decodeName(wire, 0)
		if err != nil {
			t.Logf("decode %q: %v", n, err)
			return false
		}
		return got == n && end == len(wire)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNameCompressionRoundTrip(t *testing.T) {
	// Encode several names sharing suffixes into one buffer with a shared
	// compression map, then decode each.
	names := []Name{
		MustName("a.root-servers.net."),
		MustName("b.root-servers.net."),
		MustName("net."),
		MustName("m.root-servers.net."),
		Root,
		MustName("root-servers.net."),
	}
	cm := make(compressionMap)
	buf := make([]byte, headerLen) // simulate header so offsets are realistic
	offsets := make([]int, len(names))
	for i, n := range names {
		offsets[i] = len(buf)
		buf = appendName(buf, n, len(buf), cm)
	}
	for i, n := range names {
		got, _, err := decodeName(buf, offsets[i])
		if err != nil {
			t.Fatalf("decode %q: %v", n, err)
		}
		if got != n {
			t.Errorf("decode at %d = %q, want %q", offsets[i], got, n)
		}
	}
	// Compression must actually shrink the buffer vs uncompressed.
	var unc []byte
	for _, n := range names {
		unc = appendName(unc, n, 0, nil)
	}
	if len(buf)-headerLen >= len(unc) {
		t.Errorf("compressed %d >= uncompressed %d", len(buf)-headerLen, len(unc))
	}
}

func TestDecodeNameMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":             {},
		"truncated label":   {5, 'a', 'b'},
		"missing terminator": {1, 'a'},
		"forward pointer":   {0xC0, 10, 0},
		"self pointer":      {0xC0, 0},
		"reserved bits":     {0x80, 0},
		"truncated pointer": {0xC0},
	}
	for name, wire := range cases {
		if _, _, err := decodeName(wire, 0); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestDecodeNamePointerLoop(t *testing.T) {
	// Two pointers pointing at each other after an initial label: must not
	// loop forever. Pointer at offset 2 -> 0, and offset 0 is a pointer -> 2.
	wire := []byte{0xC0, 2, 0xC0, 0}
	if _, _, err := decodeName(wire, 2); err == nil {
		t.Error("expected error for pointer loop")
	}
}

func TestCanonicalLowercases(t *testing.T) {
	if got := MustName("A.Root-Servers.NET.").Canonical(); got != "a.root-servers.net." {
		t.Errorf("canonical = %q", got)
	}
}
