package dnswire

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"net/netip"
	"sort"
	"strings"
)

// RData is the type-specific payload of a resource record.
//
// appendTo appends the RDATA wire form to buf; off is the message offset at
// which the RDATA begins and cm the active compression map (nil when
// compression is forbidden, e.g. in DNSSEC canonical form).
type RData interface {
	// Type returns the RR type this payload belongs to.
	Type() Type
	// String returns the presentation form of the RDATA fields.
	String() string

	appendTo(buf []byte, off int, cm compressionMap) []byte
}

// ARecord is an IPv4 address record (RFC 1035 §3.4.1).
type ARecord struct{ Addr netip.Addr }

// Type implements RData.
func (ARecord) Type() Type { return TypeA }

// String implements RData.
func (r ARecord) String() string { return r.Addr.String() }

func (r ARecord) appendTo(buf []byte, _ int, _ compressionMap) []byte {
	a4 := r.Addr.As4()
	return append(buf, a4[:]...)
}

// AAAARecord is an IPv6 address record (RFC 3596).
type AAAARecord struct{ Addr netip.Addr }

// Type implements RData.
func (AAAARecord) Type() Type { return TypeAAAA }

// String implements RData.
func (r AAAARecord) String() string { return r.Addr.String() }

func (r AAAARecord) appendTo(buf []byte, _ int, _ compressionMap) []byte {
	a16 := r.Addr.As16()
	return append(buf, a16[:]...)
}

// NSRecord is a delegation record (RFC 1035 §3.3.11).
type NSRecord struct{ Host Name }

// Type implements RData.
func (NSRecord) Type() Type { return TypeNS }

// String implements RData.
func (r NSRecord) String() string { return string(r.Host) }

func (r NSRecord) appendTo(buf []byte, off int, cm compressionMap) []byte {
	return appendName(buf, r.Host, off, cm)
}

// CNAMERecord is an alias record (RFC 1035 §3.3.1).
type CNAMERecord struct{ Target Name }

// Type implements RData.
func (CNAMERecord) Type() Type { return TypeCNAME }

// String implements RData.
func (r CNAMERecord) String() string { return string(r.Target) }

func (r CNAMERecord) appendTo(buf []byte, off int, cm compressionMap) []byte {
	return appendName(buf, r.Target, off, cm)
}

// PTRRecord is a pointer record (RFC 1035 §3.3.12).
type PTRRecord struct{ Target Name }

// Type implements RData.
func (PTRRecord) Type() Type { return TypePTR }

// String implements RData.
func (r PTRRecord) String() string { return string(r.Target) }

func (r PTRRecord) appendTo(buf []byte, off int, cm compressionMap) []byte {
	return appendName(buf, r.Target, off, cm)
}

// MXRecord is a mail exchanger record (RFC 1035 §3.3.9).
type MXRecord struct {
	Preference uint16
	Host       Name
}

// Type implements RData.
func (MXRecord) Type() Type { return TypeMX }

// String implements RData.
func (r MXRecord) String() string { return fmt.Sprintf("%d %s", r.Preference, r.Host) }

func (r MXRecord) appendTo(buf []byte, off int, cm compressionMap) []byte {
	buf = binary.BigEndian.AppendUint16(buf, r.Preference)
	return appendName(buf, r.Host, off+2, cm)
}

// SOARecord is a start-of-authority record (RFC 1035 §3.3.13).
type SOARecord struct {
	MName   Name
	RName   Name
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// Type implements RData.
func (SOARecord) Type() Type { return TypeSOA }

// String implements RData.
func (r SOARecord) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		r.MName, r.RName, r.Serial, r.Refresh, r.Retry, r.Expire, r.Minimum)
}

func (r SOARecord) appendTo(buf []byte, off int, cm compressionMap) []byte {
	start := len(buf)
	buf = appendName(buf, r.MName, off, cm)
	buf = appendName(buf, r.RName, off+(len(buf)-start), cm)
	buf = binary.BigEndian.AppendUint32(buf, r.Serial)
	buf = binary.BigEndian.AppendUint32(buf, r.Refresh)
	buf = binary.BigEndian.AppendUint32(buf, r.Retry)
	buf = binary.BigEndian.AppendUint32(buf, r.Expire)
	return binary.BigEndian.AppendUint32(buf, r.Minimum)
}

// TXTRecord is a text record (RFC 1035 §3.3.14): one or more
// character-strings of up to 255 octets each.
type TXTRecord struct{ Strings []string }

// Type implements RData.
func (TXTRecord) Type() Type { return TypeTXT }

// String implements RData.
func (r TXTRecord) String() string {
	parts := make([]string, len(r.Strings))
	for i, s := range r.Strings {
		parts[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(parts, " ")
}

func (r TXTRecord) appendTo(buf []byte, _ int, _ compressionMap) []byte {
	for _, s := range r.Strings {
		if len(s) > 255 {
			s = s[:255]
		}
		buf = append(buf, byte(len(s)))
		buf = append(buf, s...)
	}
	return buf
}

// DNSKEYRecord is a DNSSEC public key (RFC 4034 §2).
type DNSKEYRecord struct {
	Flags     uint16 // 256 = ZSK, 257 = KSK (SEP bit set)
	Protocol  uint8  // always 3
	Algorithm uint8
	PublicKey []byte
}

// Type implements RData.
func (DNSKEYRecord) Type() Type { return TypeDNSKEY }

// String implements RData.
func (r DNSKEYRecord) String() string {
	return fmt.Sprintf("%d %d %d %s", r.Flags, r.Protocol, r.Algorithm,
		base64.StdEncoding.EncodeToString(r.PublicKey))
}

func (r DNSKEYRecord) appendTo(buf []byte, _ int, _ compressionMap) []byte {
	buf = binary.BigEndian.AppendUint16(buf, r.Flags)
	buf = append(buf, r.Protocol, r.Algorithm)
	return append(buf, r.PublicKey...)
}

// IsKSK reports whether the SEP flag bit is set.
func (r DNSKEYRecord) IsKSK() bool { return r.Flags&1 != 0 }

// RRSIGRecord is a DNSSEC signature (RFC 4034 §3).
type RRSIGRecord struct {
	TypeCovered Type
	Algorithm   uint8
	Labels      uint8
	OriginalTTL uint32
	Expiration  uint32 // seconds since epoch
	Inception   uint32
	KeyTag      uint16
	SignerName  Name
	Signature   []byte
}

// Type implements RData.
func (RRSIGRecord) Type() Type { return TypeRRSIG }

// String implements RData.
func (r RRSIGRecord) String() string {
	return fmt.Sprintf("%s %d %d %d %d %d %d %s %s",
		r.TypeCovered, r.Algorithm, r.Labels, r.OriginalTTL,
		r.Expiration, r.Inception, r.KeyTag, r.SignerName,
		base64.StdEncoding.EncodeToString(r.Signature))
}

func (r RRSIGRecord) appendTo(buf []byte, _ int, _ compressionMap) []byte {
	buf = r.appendPreamble(buf)
	return append(buf, r.Signature...)
}

// appendPreamble appends everything up to but excluding the signature field.
// The signer name is emitted uncompressed, case preserved; signers that need
// the RFC 4034 §3.1.8.1 canonical prefix lowercase SignerName first.
func (r RRSIGRecord) appendPreamble(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(r.TypeCovered))
	buf = append(buf, r.Algorithm, r.Labels)
	buf = binary.BigEndian.AppendUint32(buf, r.OriginalTTL)
	buf = binary.BigEndian.AppendUint32(buf, r.Expiration)
	buf = binary.BigEndian.AppendUint32(buf, r.Inception)
	buf = binary.BigEndian.AppendUint16(buf, r.KeyTag)
	return appendName(buf, r.SignerName, 0, nil)
}

// DSRecord is a delegation signer record (RFC 4034 §5).
type DSRecord struct {
	KeyTag     uint16
	Algorithm  uint8
	DigestType uint8
	Digest     []byte
}

// Type implements RData.
func (DSRecord) Type() Type { return TypeDS }

// String implements RData.
func (r DSRecord) String() string {
	return fmt.Sprintf("%d %d %d %s", r.KeyTag, r.Algorithm, r.DigestType,
		strings.ToUpper(hex.EncodeToString(r.Digest)))
}

func (r DSRecord) appendTo(buf []byte, _ int, _ compressionMap) []byte {
	buf = binary.BigEndian.AppendUint16(buf, r.KeyTag)
	buf = append(buf, r.Algorithm, r.DigestType)
	return append(buf, r.Digest...)
}

// NSECRecord is an authenticated-denial record (RFC 4034 §4).
type NSECRecord struct {
	NextName Name
	Types    []Type
}

// Type implements RData.
func (NSECRecord) Type() Type { return TypeNSEC }

// String implements RData.
func (r NSECRecord) String() string {
	parts := []string{string(r.NextName)}
	for _, t := range r.Types {
		parts = append(parts, t.String())
	}
	return strings.Join(parts, " ")
}

func (r NSECRecord) appendTo(buf []byte, _ int, _ compressionMap) []byte {
	buf = appendName(buf, r.NextName, 0, nil)
	return appendTypeBitmap(buf, r.Types)
}

// appendTypeBitmap appends the RFC 4034 §4.1.2 windowed type bitmap.
func appendTypeBitmap(buf []byte, types []Type) []byte {
	if len(types) == 0 {
		return buf
	}
	sorted := append([]Type(nil), types...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	window := -1
	var bitmap [32]byte
	maxOctet := 0
	flush := func() {
		if window >= 0 {
			buf = append(buf, byte(window), byte(maxOctet+1))
			buf = append(buf, bitmap[:maxOctet+1]...)
		}
		bitmap = [32]byte{}
		maxOctet = 0
	}
	for _, t := range sorted {
		w := int(t >> 8)
		if w != window {
			flush()
			window = w
		}
		low := int(t & 0xFF)
		bitmap[low/8] |= 0x80 >> (low % 8)
		if low/8 > maxOctet {
			maxOctet = low / 8
		}
	}
	flush()
	return buf
}

// decodeTypeBitmap parses the windowed type bitmap in data.
func decodeTypeBitmap(data []byte) ([]Type, error) {
	var types []Type
	for len(data) > 0 {
		if len(data) < 2 {
			return nil, ErrTruncated
		}
		window, octets := int(data[0]), int(data[1])
		if octets == 0 || octets > 32 || len(data) < 2+octets {
			return nil, fmt.Errorf("dnswire: bad type bitmap window length %d", octets)
		}
		for i := 0; i < octets; i++ {
			for bit := 0; bit < 8; bit++ {
				if data[2+i]&(0x80>>bit) != 0 {
					types = append(types, Type(window<<8|i*8+bit))
				}
			}
		}
		data = data[2+octets:]
	}
	return types, nil
}

// ZONEMDRecord is a zone message digest (RFC 8976 §2).
type ZONEMDRecord struct {
	Serial uint32
	Scheme uint8
	Hash   uint8
	Digest []byte
}

// Type implements RData.
func (ZONEMDRecord) Type() Type { return TypeZONEMD }

// String implements RData.
func (r ZONEMDRecord) String() string {
	return fmt.Sprintf("%d %d %d %s", r.Serial, r.Scheme, r.Hash,
		strings.ToUpper(hex.EncodeToString(r.Digest)))
}

func (r ZONEMDRecord) appendTo(buf []byte, _ int, _ compressionMap) []byte {
	buf = binary.BigEndian.AppendUint32(buf, r.Serial)
	buf = append(buf, r.Scheme, r.Hash)
	return append(buf, r.Digest...)
}

// OPTRecord is the EDNS0 pseudo-record (RFC 6891). Only the UDP payload size
// and DO bit are modeled; they are carried in the RR's Class and TTL fields
// by the message codec.
type OPTRecord struct {
	UDPSize uint16
	Do      bool
}

// Type implements RData.
func (OPTRecord) Type() Type { return TypeOPT }

// String implements RData.
func (r OPTRecord) String() string {
	return fmt.Sprintf("EDNS0 udp=%d do=%v", r.UDPSize, r.Do)
}

func (OPTRecord) appendTo(buf []byte, _ int, _ compressionMap) []byte { return buf }

// RawRecord carries RDATA of a type this codec does not interpret
// (RFC 3597 treatment).
type RawRecord struct {
	RRType Type
	Data   []byte
}

// Type implements RData.
func (r RawRecord) Type() Type { return r.RRType }

// String implements RData.
func (r RawRecord) String() string {
	return fmt.Sprintf("\\# %d %s", len(r.Data), strings.ToUpper(hex.EncodeToString(r.Data)))
}

func (r RawRecord) appendTo(buf []byte, _ int, _ compressionMap) []byte {
	return append(buf, r.Data...)
}
