// Package dnswire implements the DNS wire format (RFC 1035 and friends):
// domain names with message compression, message headers, questions, and
// resource records including the DNSSEC (RFC 4034) and ZONEMD (RFC 8976)
// types used by the root zone. It is the lowest substrate of the study:
// every query, response, and zone transfer in the repository passes through
// this codec.
package dnswire

import "fmt"

// Type is a DNS RR type (RFC 1035 §3.2.2 and successors).
type Type uint16

// RR types used by the root zone and the measurement battery.
const (
	TypeNone   Type = 0
	TypeA      Type = 1
	TypeNS     Type = 2
	TypeCNAME  Type = 5
	TypeSOA    Type = 6
	TypePTR    Type = 12
	TypeMX     Type = 15
	TypeTXT    Type = 16
	TypeAAAA   Type = 28
	TypeOPT    Type = 41
	TypeDS     Type = 43
	TypeRRSIG  Type = 46
	TypeNSEC   Type = 47
	TypeDNSKEY Type = 48
	TypeZONEMD Type = 63
	TypeAXFR   Type = 252
	TypeANY    Type = 255
)

var typeNames = map[Type]string{
	TypeA:      "A",
	TypeNS:     "NS",
	TypeCNAME:  "CNAME",
	TypeSOA:    "SOA",
	TypePTR:    "PTR",
	TypeMX:     "MX",
	TypeTXT:    "TXT",
	TypeAAAA:   "AAAA",
	TypeOPT:    "OPT",
	TypeDS:     "DS",
	TypeRRSIG:  "RRSIG",
	TypeNSEC:   "NSEC",
	TypeDNSKEY: "DNSKEY",
	TypeZONEMD: "ZONEMD",
	TypeAXFR:   "AXFR",
	TypeANY:    "ANY",
}

var typesByName = func() map[string]Type {
	m := make(map[string]Type, len(typeNames))
	for t, n := range typeNames {
		m[n] = t
	}
	return m
}()

// String returns the mnemonic for t, or the RFC 3597 TYPE###  form for
// unknown types.
func (t Type) String() string {
	if n, ok := typeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// TypeFromString parses a type mnemonic such as "AAAA". It accepts the
// RFC 3597 TYPE### form for unknown types.
func TypeFromString(s string) (Type, error) {
	if t, ok := typesByName[s]; ok {
		return t, nil
	}
	var n uint16
	if _, err := fmt.Sscanf(s, "TYPE%d", &n); err == nil {
		return Type(n), nil
	}
	return TypeNone, fmt.Errorf("dnswire: unknown RR type %q", s)
}

// Class is a DNS class. CLASS IN carries the zone data; CLASS CH carries the
// server-identity battery (hostname.bind and friends).
type Class uint16

// DNS classes.
const (
	ClassINET  Class = 1
	ClassCHAOS Class = 3
	ClassANY   Class = 255
)

// String returns the mnemonic for c.
func (c Class) String() string {
	switch c {
	case ClassINET:
		return "IN"
	case ClassCHAOS:
		return "CH"
	case ClassANY:
		return "ANY"
	}
	return fmt.Sprintf("CLASS%d", uint16(c))
}

// ClassFromString parses a class mnemonic such as "CH".
func ClassFromString(s string) (Class, error) {
	switch s {
	case "IN":
		return ClassINET, nil
	case "CH":
		return ClassCHAOS, nil
	case "ANY":
		return ClassANY, nil
	}
	var n uint16
	if _, err := fmt.Sscanf(s, "CLASS%d", &n); err == nil {
		return Class(n), nil
	}
	return 0, fmt.Errorf("dnswire: unknown class %q", s)
}

// Opcode selects the kind of query (RFC 1035 §4.1.1).
type Opcode uint8

// Opcodes.
const (
	OpcodeQuery  Opcode = 0
	OpcodeNotify Opcode = 4
	OpcodeUpdate Opcode = 5
)

// String returns the mnemonic for o.
func (o Opcode) String() string {
	switch o {
	case OpcodeQuery:
		return "QUERY"
	case OpcodeNotify:
		return "NOTIFY"
	case OpcodeUpdate:
		return "UPDATE"
	}
	return fmt.Sprintf("OPCODE%d", uint8(o))
}

// Rcode is a response code (RFC 1035 §4.1.1).
type Rcode uint8

// Response codes.
const (
	RcodeNoError  Rcode = 0
	RcodeFormErr  Rcode = 1
	RcodeServFail Rcode = 2
	RcodeNXDomain Rcode = 3
	RcodeNotImp   Rcode = 4
	RcodeRefused  Rcode = 5
)

// String returns the mnemonic for r.
func (r Rcode) String() string {
	switch r {
	case RcodeNoError:
		return "NOERROR"
	case RcodeFormErr:
		return "FORMERR"
	case RcodeServFail:
		return "SERVFAIL"
	case RcodeNXDomain:
		return "NXDOMAIN"
	case RcodeNotImp:
		return "NOTIMP"
	case RcodeRefused:
		return "REFUSED"
	}
	return fmt.Sprintf("RCODE%d", uint8(r))
}

// DNSSEC algorithm numbers (RFC 4034 Appendix A.1 and successors).
const (
	AlgRSASHA256       = 8
	AlgECDSAP256SHA256 = 13
)

// ZONEMD scheme and hash algorithm numbers (RFC 8976 §2.2.4, §2.2.5).
const (
	ZonemdSchemeSimple   = 1
	ZonemdHashSHA384     = 1
	ZonemdHashSHA512     = 2
	ZonemdHashPrivateMin = 240 // private-use range used during the rollout
)

// Limits from RFC 1035 §2.3.4.
const (
	MaxLabelLen   = 63
	MaxNameLen    = 255
	MaxUDPPayload = 512 // without EDNS0
)
