package dnswire

import (
	"encoding/binary"
	"errors"
)

// ErrReservedLabel classifies the two reserved label types (0x40/0x80) that
// are neither plain labels nor compression pointers.
var ErrReservedLabel = errors.New("dnswire: reserved label type")

// View is a lazy decoder over a packed message. It parses nothing up front
// beyond validating that the 12-octet header is present; records are walked
// by a Cursor that exposes owner-name offsets, type/class/TTL, and the raw
// RDATA slice without materializing Name strings or RData values. Consumers
// that only count records or compare canonical bytes (AXFR reassembly
// checks, zonemd/analysis diffing) never pay for a full Unpack; when a
// decoded record is needed, View.Unpack decodes exactly that one.
//
// The View aliases the message buffer — it is only valid as long as the
// caller keeps the buffer unmodified.
type View struct {
	msg []byte
}

// NewView wraps msg. Only the fixed header length is validated here; any
// malformed record surfaces from the Cursor when it is reached.
func NewView(msg []byte) (View, error) {
	if len(msg) < headerLen {
		return View{}, ErrTruncated
	}
	return View{msg: msg}, nil
}

// ID returns the message ID.
func (v *View) ID() uint16 { return binary.BigEndian.Uint16(v.msg[0:]) }

// Rcode returns the response code from the header flags.
func (v *View) Rcode() Rcode { return Rcode(binary.BigEndian.Uint16(v.msg[2:]) & 0xF) }

// Response reports whether the QR bit is set.
func (v *View) Response() bool { return binary.BigEndian.Uint16(v.msg[2:])&(1<<15) != 0 }

// Truncated reports whether the TC bit is set.
func (v *View) Truncated() bool { return binary.BigEndian.Uint16(v.msg[2:])&(1<<9) != 0 }

// Counts returns the four header section counts.
func (v *View) Counts() (qd, an, ns, ar int) {
	return int(binary.BigEndian.Uint16(v.msg[4:])),
		int(binary.BigEndian.Uint16(v.msg[6:])),
		int(binary.BigEndian.Uint16(v.msg[8:])),
		int(binary.BigEndian.Uint16(v.msg[10:]))
}

// Record sections, in wire order.
const (
	SectionAnswer = iota
	SectionAuthority
	SectionAdditional
)

// RawRR is one resource record as seen by a Cursor: fixed fields decoded,
// names left as offsets into the message, RDATA aliased rather than copied.
type RawRR struct {
	Section  int // SectionAnswer, SectionAuthority, or SectionAdditional
	NameOff  int // offset of the (possibly compressed) owner name
	Type     Type
	Class    Class
	TTL      uint32
	RDataOff int    // offset of RData within the message
	RData    []byte // aliases the message buffer
}

// Cursor iterates the resource records of a View in wire order, skipping
// the question section. It is cheap to create and holds no heap state.
type Cursor struct {
	v     *View
	off   int
	qLeft int
	left  [3]int
	sec   int
	err   error
}

// Records returns a Cursor positioned before the first resource record.
func (v *View) Records() Cursor {
	qd, an, ns, ar := v.Counts()
	return Cursor{v: v, off: headerLen, qLeft: qd, left: [3]int{an, ns, ar}}
}

// Next advances to the next record, filling rr. It returns false at the end
// of the message or on a malformed record; Err distinguishes the two.
//
//rootlint:hotpath
func (c *Cursor) Next(rr *RawRR) bool {
	if c.err != nil {
		return false
	}
	msg := c.v.msg
	for c.qLeft > 0 {
		end, err := skipName(msg, c.off)
		if err != nil {
			c.err = err
			return false
		}
		if end+4 > len(msg) {
			c.err = ErrTruncated
			return false
		}
		c.off = end + 4
		c.qLeft--
	}
	for c.sec < 3 && c.left[c.sec] == 0 {
		c.sec++
	}
	if c.sec == 3 {
		return false
	}
	nameOff := c.off
	end, err := skipName(msg, c.off)
	if err != nil {
		c.err = err
		return false
	}
	if end+10 > len(msg) {
		c.err = ErrTruncated
		return false
	}
	rdlen := int(binary.BigEndian.Uint16(msg[end+8:]))
	if end+10+rdlen > len(msg) {
		c.err = ErrTruncated
		return false
	}
	c.left[c.sec]--
	rr.Section = c.sec
	rr.NameOff = nameOff
	rr.Type = Type(binary.BigEndian.Uint16(msg[end:]))
	rr.Class = Class(binary.BigEndian.Uint16(msg[end+2:]))
	rr.TTL = binary.BigEndian.Uint32(msg[end+4:])
	rr.RDataOff = end + 10
	rr.RData = msg[end+10 : end+10+rdlen]
	c.off = end + 10 + rdlen
	return true
}

// Err returns the first malformed-record error hit by Next, or nil if
// iteration ended cleanly.
func (c *Cursor) Err() error { return c.err }

// Unpack fully decodes the record rr points at, including compressed names
// and typed RDATA — the on-demand escape hatch from the lazy path. It
// applies the same OPT pseudo-record translation as message Unpack.
func (v *View) Unpack(rr *RawRR) (RR, error) {
	full, _, err := decodeRR(v.msg, rr.NameOff, nil)
	return full, err
}

// Name decodes just the owner name of rr.
func (v *View) Name(rr *RawRR) (Name, error) {
	n, _, err := decodeName(v.msg, rr.NameOff)
	return n, err
}

// skipName advances past the name starting at off without validating
// pointer targets or label contents — the Cursor is a skimmer; full
// validation happens in Unpack or AppendCanonical when the bytes matter.
//
//rootlint:hotpath
func skipName(msg []byte, off int) (int, error) {
	for {
		if off >= len(msg) {
			return 0, ErrTruncated
		}
		b := msg[off]
		switch {
		case b == 0:
			return off + 1, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return 0, ErrTruncated
			}
			return off + 2, nil
		case b&0xC0 != 0:
			return 0, ErrReservedLabel
		default:
			off += 1 + int(b)
		}
	}
}

// appendWireName appends the uncompressed wire form of the name at off in
// src, following compression pointers under the same safety rules as
// decodeName (pointers must strictly decrease, total jumps bounded by the
// message length, '.' octets inside labels rejected, 255-octet name cap).
// When fold is true ASCII letters are lowercased, producing the canonical
// form of RFC 4034 §6.2. It returns the offset just past the name's
// representation at off (pointers do not advance it). buf contents past its
// original length are undefined on error.
//
//rootlint:hotpath
func appendWireName(buf []byte, src []byte, off int, fold bool) ([]byte, int, error) {
	ptrBudget := len(src)
	jumped := false
	end := off
	wireLen := 1 // the terminal zero octet
	for {
		if off >= len(src) {
			return buf, 0, ErrTruncated
		}
		b := src[off]
		switch {
		case b == 0:
			if !jumped {
				end = off + 1
			}
			return append(buf, 0), end, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(src) {
				return buf, 0, ErrTruncated
			}
			ptr := int(b&0x3F)<<8 | int(src[off+1])
			if ptr >= off {
				return buf, 0, ErrBadPointer
			}
			if !jumped {
				end = off + 2
				jumped = true
			}
			ptrBudget--
			if ptrBudget <= 0 {
				return buf, 0, ErrBadPointer
			}
			off = ptr
		case b&0xC0 != 0:
			return buf, 0, ErrReservedLabel
		default:
			l := int(b)
			if off+1+l > len(src) {
				return buf, 0, ErrTruncated
			}
			wireLen += 1 + l
			if wireLen > MaxNameLen {
				return buf, 0, ErrNameTooLong
			}
			buf = append(buf, b)
			for _, ch := range src[off+1 : off+1+l] {
				if ch == '.' {
					// Mirrors decodeName: a literal '.' octet cannot
					// round-trip through presentation form.
					return buf, 0, ErrBadLabel
				}
				if fold {
					ch = foldASCII(ch)
				}
				buf = append(buf, ch)
			}
			off += 1 + l
			if !jumped {
				end = off
			}
		}
	}
}

// AppendOwner appends the canonical (lowercased, uncompressed) wire form of
// rr's owner name to buf.
//
//rootlint:hotpath
func (v *View) AppendOwner(buf []byte, rr *RawRR) ([]byte, error) {
	buf, _, err := appendWireName(buf, v.msg, rr.NameOff, true)
	return buf, err
}

// AppendCanonical appends the RFC 4034 §6.2 canonical wire form of rr at
// its wire TTL: owner lowercased and decompressed, RDATA names decompressed
// (and lowercased for the types whose canonical form folds embedded names —
// NS, CNAME, PTR, MX, SOA, NSEC), all other RDATA verbatim. The output
// matches AppendCanonicalRR over the fully decoded record, which is what
// the zone sidecar caches — so a transfer received through the lazy view
// can be compared byte-for-byte against CanonicalWire entries without a
// single full decode.
//
//rootlint:hotpath
func (v *View) AppendCanonical(buf []byte, rr *RawRR) ([]byte, error) {
	buf, err := v.AppendOwner(buf, rr)
	if err != nil {
		return buf, err
	}
	buf = append(buf,
		byte(rr.Type>>8), byte(rr.Type),
		byte(rr.Class>>8), byte(rr.Class),
		byte(rr.TTL>>24), byte(rr.TTL>>16), byte(rr.TTL>>8), byte(rr.TTL))
	rdlenAt := len(buf)
	buf = append(buf, 0, 0)
	var end int
	switch rr.Type {
	case TypeNS, TypeCNAME, TypePTR:
		// A single host name, compressible on the wire: decompress+fold.
		buf, _, err = appendWireName(buf, v.msg, rr.RDataOff, true)
	case TypeMX:
		if len(rr.RData) < 3 {
			return buf, ErrTruncated
		}
		buf = append(buf, rr.RData[0], rr.RData[1])
		buf, _, err = appendWireName(buf, v.msg, rr.RDataOff+2, true)
	case TypeSOA:
		buf, end, err = appendWireName(buf, v.msg, rr.RDataOff, true)
		if err == nil {
			buf, end, err = appendWireName(buf, v.msg, end, true)
		}
		if err == nil {
			if end+20 > len(v.msg) {
				return buf, ErrTruncated
			}
			buf = append(buf, v.msg[end:end+20]...)
		}
	case TypeNSEC:
		// The next name is never compressed and is decoded relative to the
		// RDATA slice (as decodeRData does); the type bitmap is verbatim.
		buf, end, err = appendWireName(buf, rr.RData, 0, true)
		if err == nil {
			buf = append(buf, rr.RData[end:]...)
		}
	case TypeRRSIG:
		// Fixed 18-octet prefix, then the signer name (uncompressed per
		// RFC 4034 §3.1.7, case preserved — canonicalData does not fold
		// it), then the signature bytes.
		if len(rr.RData) < 18 {
			return buf, ErrTruncated
		}
		buf = append(buf, rr.RData[:18]...)
		buf, end, err = appendWireName(buf, rr.RData, 18, false)
		if err == nil {
			buf = append(buf, rr.RData[end:]...)
		}
	default:
		// A, AAAA, TXT, DNSKEY, DS, ZONEMD, unknown: canonical RDATA is
		// the wire RDATA.
		buf = append(buf, rr.RData...)
	}
	if err != nil {
		return buf, err
	}
	binary.BigEndian.PutUint16(buf[rdlenAt:], uint16(len(buf)-rdlenAt-2))
	return buf, nil
}
