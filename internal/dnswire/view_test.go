package dnswire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// viewSampleMessage is a kitchen-sink message: every RData type the codec
// knows, mixed-case names so canonical folding is visible, and enough
// repeated suffixes that Pack emits compression pointers in both owner
// names and RDATA (NS/CNAME/PTR/MX/SOA are the compressible types).
func viewSampleMessage() *Message {
	return &Message{
		Header: Header{ID: 0x1234, Response: true, Authoritative: true},
		Questions: []Question{
			{Name: MustName("Example.TLD."), Type: TypeSOA, Class: ClassINET},
		},
		Answers: []RR{
			{Name: MustName("Example.TLD."), Class: ClassINET, TTL: 3600,
				Data: SOARecord{
					MName: MustName("NS1.Example.TLD."), RName: MustName("Hostmaster.Example.TLD."),
					Serial: 2024010101, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 86400,
				}},
			{Name: MustName("Example.TLD."), Class: ClassINET, TTL: 518400,
				Data: NSRecord{Host: MustName("NS1.Example.TLD.")}},
			{Name: MustName("Example.TLD."), Class: ClassINET, TTL: 518400,
				Data: NSRecord{Host: MustName("ns2.example.tld.")}},
			{Name: MustName("Alias.Example.TLD."), Class: ClassINET, TTL: 300,
				Data: CNAMERecord{Target: MustName("WWW.Example.TLD.")}},
			{Name: MustName("Mail.Example.TLD."), Class: ClassINET, TTL: 300,
				Data: MXRecord{Preference: 10, Host: MustName("MX1.Example.TLD.")}},
			{Name: MustName("4.0.41.198.in-addr.arpa."), Class: ClassINET, TTL: 300,
				Data: PTRRecord{Target: MustName("NS1.Example.TLD.")}},
			{Name: MustName("Example.TLD."), Class: ClassINET, TTL: 60,
				Data: TXTRecord{Strings: []string{"v=spf1 -all", "second string"}}},
			{Name: MustName("Example.TLD."), Class: ClassINET, TTL: 3600,
				Data: RawRecord{RRType: Type(0xFF3A), Data: []byte{0xDE, 0xAD, 0xBE, 0xEF}}},
		},
		Authority: []RR{
			{Name: MustName("Example.TLD."), Class: ClassINET, TTL: 86400,
				Data: DNSKEYRecord{Flags: 257, Protocol: 3, Algorithm: 13,
					PublicKey: bytes.Repeat([]byte{0xAB}, 32)}},
			{Name: MustName("Example.TLD."), Class: ClassINET, TTL: 86400,
				Data: DSRecord{KeyTag: 12345, Algorithm: 13, DigestType: 2,
					Digest: bytes.Repeat([]byte{0xCD}, 32)}},
			{Name: MustName("Example.TLD."), Class: ClassINET, TTL: 86400,
				Data: ZONEMDRecord{Serial: 2024010101, Scheme: 1, Hash: 1,
					Digest: bytes.Repeat([]byte{0x5A}, 48)}},
			{Name: MustName("Example.TLD."), Class: ClassINET, TTL: 86400,
				Data: NSECRecord{NextName: MustName("Mail.Example.TLD."),
					Types: []Type{TypeNS, TypeSOA, TypeNSEC, TypeRRSIG}}},
			{Name: MustName("Example.TLD."), Class: ClassINET, TTL: 86400,
				Data: RRSIGRecord{TypeCovered: TypeNS, Algorithm: 13, Labels: 2,
					OriginalTTL: 518400, Expiration: 1700000000, Inception: 1690000000,
					KeyTag: 12345, SignerName: MustName("Example.TLD."),
					Signature: bytes.Repeat([]byte{0x77}, 64)}},
		},
		Additional: []RR{
			{Name: MustName("NS1.Example.TLD."), Class: ClassINET, TTL: 518400,
				Data: ARecord{Addr: mustAddr("198.41.0.4")}},
			{Name: MustName("NS1.Example.TLD."), Class: ClassINET, TTL: 518400,
				Data: AAAARecord{Addr: mustAddr("2001:503:ba3e::2:30")}},
		},
	}
}

// decodedSections flattens a decoded message in cursor order.
func decodedSections(m *Message) []RR {
	var all []RR
	all = append(all, m.Answers...)
	all = append(all, m.Authority...)
	return append(all, m.Additional...)
}

// TestViewCursorMatchesUnpack pins the lazy cursor against the full
// decoder on both compression layouts of the same message: same section
// counts, same fixed fields, same owner names, and Unpack-on-demand
// produces the identical decoded record.
func TestViewCursorMatchesUnpack(t *testing.T) {
	m := viewSampleMessage()
	for _, pack := range []struct {
		name string
		fn   func() ([]byte, error)
	}{
		{"compressed", m.Pack},
		{"uncompressed", m.PackUncompressed},
	} {
		wire, err := pack.fn()
		if err != nil {
			t.Fatalf("%s pack: %v", pack.name, err)
		}
		dec, err := Unpack(wire)
		if err != nil {
			t.Fatalf("%s unpack: %v", pack.name, err)
		}
		v, err := NewView(wire)
		if err != nil {
			t.Fatalf("%s view: %v", pack.name, err)
		}
		if v.ID() != dec.Header.ID || v.Rcode() != dec.Header.Rcode ||
			v.Response() != dec.Header.Response || v.Truncated() != dec.Header.Truncated {
			t.Fatalf("%s: view header fields disagree with Unpack", pack.name)
		}
		want := decodedSections(dec)
		cur := v.Records()
		var raw RawRR
		i := 0
		for cur.Next(&raw) {
			if i >= len(want) {
				t.Fatalf("%s: cursor yielded more than %d records", pack.name, len(want))
			}
			rr := want[i]
			if raw.Type != rr.Type() || raw.Class != rr.Class || raw.TTL != rr.TTL {
				t.Fatalf("%s record %d: fixed fields (%v %v %d) vs decoded (%v %v %d)",
					pack.name, i, raw.Type, raw.Class, raw.TTL, rr.Type(), rr.Class, rr.TTL)
			}
			name, err := v.Name(&raw)
			if err != nil {
				t.Fatalf("%s record %d: owner: %v", pack.name, i, err)
			}
			if name != rr.Name {
				t.Fatalf("%s record %d: owner %q vs %q", pack.name, i, name, rr.Name)
			}
			full, err := v.Unpack(&raw)
			if err != nil {
				t.Fatalf("%s record %d: on-demand unpack: %v", pack.name, i, err)
			}
			if !reflect.DeepEqual(full, rr) {
				t.Fatalf("%s record %d: on-demand unpack mismatch:\ngot  %+v\nwant %+v",
					pack.name, i, full, rr)
			}
			i++
		}
		if err := cur.Err(); err != nil {
			t.Fatalf("%s: cursor: %v", pack.name, err)
		}
		if i != len(want) {
			t.Fatalf("%s: cursor yielded %d records, Unpack %d", pack.name, i, len(want))
		}
	}
}

// TestViewAppendCanonicalMatchesFullDecode pins the compare-only path: the
// canonical bytes produced straight from the wire view must equal what
// AppendCanonicalRR produces from the fully decoded record — the same
// bytes the zone sidecar caches — on both compression layouts.
func TestViewAppendCanonicalMatchesFullDecode(t *testing.T) {
	m := viewSampleMessage()
	for _, pack := range []struct {
		name string
		fn   func() ([]byte, error)
	}{
		{"compressed", m.Pack},
		{"uncompressed", m.PackUncompressed},
	} {
		wire, err := pack.fn()
		if err != nil {
			t.Fatalf("%s pack: %v", pack.name, err)
		}
		dec, err := Unpack(wire)
		if err != nil {
			t.Fatalf("%s unpack: %v", pack.name, err)
		}
		v, err := NewView(wire)
		if err != nil {
			t.Fatalf("%s view: %v", pack.name, err)
		}
		want := decodedSections(dec)
		cur := v.Records()
		var raw RawRR
		i := 0
		for cur.Next(&raw) {
			got, err := v.AppendCanonical(nil, &raw)
			if err != nil {
				t.Fatalf("%s record %d: AppendCanonical: %v", pack.name, i, err)
			}
			ref := AppendCanonicalRR(nil, want[i], raw.TTL)
			if !bytes.Equal(got, ref) {
				t.Fatalf("%s record %d (%v): canonical bytes differ\nview: %x\nfull: %x",
					pack.name, i, raw.Type, got, ref)
			}
			i++
		}
		if err := cur.Err(); err != nil {
			t.Fatalf("%s: cursor: %v", pack.name, err)
		}
	}
}

// TestViewErrors covers the malformed-wire classifications of the view
// path: forward compression pointers, reserved label types, truncation.
func TestViewErrors(t *testing.T) {
	if _, err := NewView(make([]byte, 11)); !errors.Is(err, ErrTruncated) {
		t.Errorf("short header: %v, want ErrTruncated", err)
	}
	// Header claiming one answer, then a record whose owner name is a
	// forward pointer: the cursor skims past it (pointers end the
	// representation), but canonicalizing must reject it.
	msg := make([]byte, headerLen)
	msg[7] = 1 // ANCOUNT = 1
	msg = append(msg, 0xC0, 0x40)                      // pointer to offset 64 (forward)
	msg = append(msg, 0, 1, 0, 1, 0, 0, 0, 60, 0, 0)   // TYPE A CLASS IN TTL 60 RDLEN 0
	v, err := NewView(msg)
	if err != nil {
		t.Fatal(err)
	}
	cur := v.Records()
	var raw RawRR
	if !cur.Next(&raw) {
		t.Fatalf("cursor should skim the forward-pointer record: %v", cur.Err())
	}
	if _, err := v.AppendOwner(nil, &raw); !errors.Is(err, ErrBadPointer) {
		t.Errorf("forward pointer: %v, want ErrBadPointer", err)
	}
	// Reserved label type in the owner name stops the cursor itself.
	msg2 := make([]byte, headerLen)
	msg2[7] = 1
	msg2 = append(msg2, 0x80, 0x00)
	v2, err := NewView(msg2)
	if err != nil {
		t.Fatal(err)
	}
	cur2 := v2.Records()
	if cur2.Next(&raw) {
		t.Fatal("cursor accepted a reserved label type")
	}
	if !errors.Is(cur2.Err(), ErrReservedLabel) {
		t.Errorf("reserved label: %v, want ErrReservedLabel", cur2.Err())
	}
	// A record whose RDLEN runs past the buffer is truncation.
	msg3 := make([]byte, headerLen)
	msg3[7] = 1
	msg3 = append(msg3, 0, 0, 1, 0, 1, 0, 0, 0, 60, 0, 4) // root owner, RDLEN 4, no RDATA
	v3, err := NewView(msg3)
	if err != nil {
		t.Fatal(err)
	}
	cur3 := v3.Records()
	if cur3.Next(&raw) {
		t.Fatal("cursor accepted truncated RDATA")
	}
	if !errors.Is(cur3.Err(), ErrTruncated) {
		t.Errorf("truncated rdata: %v, want ErrTruncated", cur3.Err())
	}
}

// TestViewWalkZeroAlloc pins the whole lazy loop — cursor iteration plus
// canonicalization into a reused buffer — at zero allocations per message.
func TestViewWalkZeroAlloc(t *testing.T) {
	wire, err := viewSampleMessage().Pack()
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(wire)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 4096)
	var raw RawRR
	var walkErr error
	allocs := testing.AllocsPerRun(100, func() {
		cur := v.Records()
		for cur.Next(&raw) {
			buf, walkErr = v.AppendCanonical(buf[:0], &raw)
			if walkErr != nil {
				return
			}
		}
		if cur.Err() != nil {
			walkErr = cur.Err()
		}
	})
	if walkErr != nil {
		t.Fatal(walkErr)
	}
	if allocs != 0 {
		t.Fatalf("lazy walk allocates %v times per message, want 0", allocs)
	}
}
