// Package failpoint provides deterministic fault injection at named program
// sites, the testing counterpart of the campaign's crash-safety layer. A site
// is a string like "measure/worker/probe"; production code calls Eval at the
// site and normally pays one atomic load (no allocation, no branch taken).
// Tests and the CLIs' -chaos flag activate a plan that makes specific hits of
// specific sites panic, return an injected error, or simulate a process kill.
//
// Spec grammar (comma-separated):
//
//	site=action[@N]
//
// where action is one of panic, error, kill and N (default 1) is the 1-based
// hit count at which the site fires. Each activated site fires exactly once;
// determinism therefore only depends on the site's hit ordering, which is
// serial for all kill sites (tick loop, checkpoint, dataset seal).
package failpoint

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// Sentinel errors surfaced by Eval.
var (
	// ErrInjected marks an injected per-operation error; supervised call
	// sites classify and count it like a real transient failure.
	ErrInjected = errors.New("failpoint: injected error")
	// ErrKilled simulates a process kill at the site: callers must unwind
	// without running any cleanup that a real SIGKILL would skip
	// (sealing, checkpointing, closing writers).
	ErrKilled = errors.New("failpoint: killed")
)

// Panic is the value thrown by a panic-action site, so supervision code can
// tell injected panics from real ones in test assertions.
type Panic struct{ Site string }

func (p Panic) String() string { return "failpoint panic at " + p.Site }

type action int

const (
	actPanic action = iota
	actError
	actKill
)

type site struct {
	//rootlint:immutable-after-start
	act action
	//rootlint:immutable-after-start
	at    int64
	hits  atomic.Int64
	fired atomic.Bool
}

type plan struct{ sites map[string]*site }

// active holds the current plan; nil when chaos mode is off.
var active atomic.Pointer[plan]

// newSite parses one action[@N] clause; part is the full clause for error
// text. Sites are fully built before the plan is published, so act and at
// never change after construction.
func newSite(actName, atStr string, hasAt bool, part string) (*site, error) {
	s := &site{at: 1}
	switch actName {
	case "panic":
		s.act = actPanic
	case "error":
		s.act = actError
	case "kill":
		s.act = actKill
	default:
		return nil, fmt.Errorf("failpoint: unknown action %q in %q", actName, part)
	}
	if hasAt {
		n, err := strconv.ParseInt(atStr, 10, 64)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("failpoint: bad hit count in %q", part)
		}
		s.at = n
	}
	return s, nil
}

// Enable parses spec and activates it, replacing any previous plan.
func Enable(spec string) error {
	p := &plan{sites: make(map[string]*site)}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return fmt.Errorf("failpoint: bad spec %q (want site=action[@N])", part)
		}
		actName, atStr, hasAt := strings.Cut(rest, "@")
		s, err := newSite(actName, atStr, hasAt, part)
		if err != nil {
			return err
		}
		p.sites[name] = s
	}
	active.Store(p)
	return nil
}

// Disable deactivates all failpoints.
func Disable() { active.Store(nil) }

// Active reports whether a chaos plan is loaded.
func Active() bool { return active.Load() != nil }

// Eval evaluates the named site against the active plan. It returns nil when
// chaos mode is off or the site is not armed; otherwise, on the configured
// hit it panics (action panic), returns an ErrInjected-wrapped error (action
// error), or returns ErrKilled (action kill).
func Eval(name string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	s, ok := p.sites[name]
	if !ok {
		return nil
	}
	if s.hits.Add(1) != s.at || !s.fired.CompareAndSwap(false, true) {
		return nil
	}
	mFired.Inc()
	switch s.act {
	case actPanic:
		panic(Panic{Site: name})
	case actError:
		return fmt.Errorf("%w at %s", ErrInjected, name)
	default:
		mKills.Inc()
		return fmt.Errorf("%w at %s", ErrKilled, name)
	}
}
