package failpoint

import (
	"errors"
	"testing"
)

func TestDisabledIsNoop(t *testing.T) {
	Disable()
	if Active() {
		t.Fatal("active with no plan")
	}
	for i := 0; i < 100; i++ {
		if err := Eval("any/site"); err != nil {
			t.Fatalf("disabled Eval returned %v", err)
		}
	}
}

func TestErrorFiresAtNthHitOnce(t *testing.T) {
	defer Disable()
	if err := Enable("a/b=error@3"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		err := Eval("a/b")
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: err = %v, want ErrInjected", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("hit %d: unexpected %v", i, err)
		}
	}
	if err := Eval("other/site"); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
}

func TestKillAction(t *testing.T) {
	defer Disable()
	if err := Enable("x=kill"); err != nil {
		t.Fatal(err)
	}
	if err := Eval("x"); !errors.Is(err, ErrKilled) {
		t.Fatalf("err = %v, want ErrKilled", err)
	}
	if err := Eval("x"); err != nil {
		t.Fatal("kill site fired twice")
	}
}

func TestPanicAction(t *testing.T) {
	defer Disable()
	if err := Enable("p=panic@1, q=error@2"); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			r := recover()
			if fp, ok := r.(Panic); !ok || fp.Site != "p" {
				t.Fatalf("recovered %v, want failpoint.Panic{p}", r)
			}
		}()
		Eval("p")
		t.Fatal("panic site did not panic")
	}()
	// The second spec entry is independently armed.
	if err := Eval("q"); err != nil {
		t.Fatal("q fired early")
	}
	if err := Eval("q"); !errors.Is(err, ErrInjected) {
		t.Fatal("q did not fire at hit 2")
	}
}

func TestBadSpecs(t *testing.T) {
	defer Disable()
	for _, spec := range []string{"noequals", "a=explode", "a=error@0", "a=error@x", "=error"} {
		if err := Enable(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}
