package failpoint

import "repro/internal/telemetry"

// Firing counters are process-class telemetry: a chaos plan's sites fire in
// this process, and a resumed process re-arms its own plan, so the counts
// describe the process rather than the event stream and are not checkpointed.
var (
	mFired = telemetry.NewCounter("failpoint/fired")
	mKills = telemetry.NewCounter("failpoint/kills")
)
