package failpoint

// Site is one registered failpoint site. The registry below is the single
// source of truth for which sites exist in the tree; it is kept in sync
// mechanically, not by convention:
//
//   - rootlint's failpointsite analyzer cross-checks every
//     failpoint.Eval("…") literal in the module against this list (and
//     this list against the tree), so an unregistered site, a dead entry,
//     or a duplicate fails `make lint`;
//   - TestSiteRegistryMatchesTree re-walks the source and asserts the same
//     from `go test`, plus that every Kill-capable site is actually killed
//     (and resumed to byte-identical output) by the chaos matrix in
//     internal/measure/chaos_test.go.
type Site struct {
	// Name is the literal passed to Eval.
	Name string
	// Kill reports whether the site may host a kill action: Eval's
	// ErrKilled return unwinds the whole run, skipping cleanup the way a
	// real SIGKILL would, and the checkpoint/resume path restores
	// byte-identical output. Sites inside worker supervision are not
	// kill-capable — their Eval errors are classified as degraded outcomes
	// and absorbed, and their parallel hit ordering is nondeterministic.
	Kill bool
}

// Sites is the failpoint site registry, ordered by name.
var Sites = []Site{
	// Between sealing the dataset and writing the checkpoint sidecar: a
	// kill here leaves sealed-but-uncheckpointed blocks that resume must
	// truncate.
	{Name: "campaign/checkpoint", Kill: true},
	// Tick-loop boundary, before any of the tick's work: the cleanest
	// crash window.
	{Name: "campaign/tick", Kill: true},
	// Entry of Writer.CheckpointSeal, before any bytes move: an injected
	// error is retried within the error budget; a kill aborts the run with
	// the pending block still buffered (never written).
	{Name: "dataset/seal", Kill: true},
	// Mid-frame during a block seal: a kill tears the frame on disk, and
	// resume detects and truncates the torn tail.
	{Name: "dataset/seal/partial", Kill: true},
	// Replay checkpoint, between sealing handler state and writing the
	// sidecar: a kill proves resume trusts the previous sidecar, not the
	// in-memory state, and replays the gap byte-identically.
	{Name: "dataset/replay", Kill: true},
	// Worker probe stage, under supervision: panics and errors degrade the
	// pair within the budget. Not kill-capable (absorbed, and parallel hit
	// order is racy).
	{Name: "measure/worker/probe", Kill: false},
	// Worker transfer stage, under supervision; see measure/worker/probe.
	{Name: "measure/worker/transfer", Kill: false},
	// Head of netem.Link.Admit: an injected error is a forced drop, so the
	// chaos harness can vanish any single packet without probability
	// arithmetic. Not kill-capable: packet fates are absorbed losses, and
	// the link carries no checkpointed state.
	{Name: "netem/inject", Kill: false},
	// Head of the flight recorder's checkpoint seal: a kill aborts the run
	// with the pending qlog block still buffered and dumps the black-box
	// ring on the way down; resume truncates at the sealed offset and the
	// resumed flight log is byte-identical.
	{Name: "qlog/seal", Kill: true},
	// RRL verdict funnel in the serve path: an injected error forces a
	// drop verdict for one response. Not kill-capable: the RRL table is
	// volatile serving state, excluded from checkpoints by construction
	// (TestRRLStateExcludedFromCheckpoints).
	{Name: "serve/rrl/decide", Kill: false},
	// Slow-path enqueue in the sharded UDP serve loop: an injected error
	// forces an overload shed for one query. Not kill-capable for the same
	// reason as the RRL site.
	{Name: "serve/shed", Kill: false},
}
