package failpoint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// TestSiteRegistryMatchesTree enumerates every failpoint.Eval site in the
// module source and asserts the Sites registry matches it exactly — no
// unregistered site, no dead entry, no duplicates — and that the chaos
// tests exercise every site, with every kill-capable site covered by an
// actual kill action. A new Eval site therefore cannot ship untested: this
// test (and rootlint's failpointsite analyzer) fails until the registry and
// the chaos matrix both know about it.
func TestSiteRegistryMatchesTree(t *testing.T) {
	root := moduleRoot(t)
	evalSites, killSpecs, allSpecs := scanTree(t, root)

	registered := make(map[string]Site)
	for _, s := range Sites {
		if _, dup := registered[s.Name]; dup {
			t.Errorf("duplicate registry entry %q", s.Name)
		}
		registered[s.Name] = s
	}

	var evalNames []string
	for name, count := range evalSites {
		evalNames = append(evalNames, name)
		if count > 1 {
			t.Errorf("site %q is evaluated at %d locations; hit counts must belong to one code path", name, count)
		}
		if _, ok := registered[name]; !ok {
			t.Errorf("site %q is evaluated in the tree but missing from the Sites registry", name)
		}
	}
	sort.Strings(evalNames)

	for name, s := range registered {
		if _, ok := evalSites[name]; !ok {
			t.Errorf("registry entry %q has no failpoint.Eval site in the tree", name)
			continue
		}
		if !allSpecs[name] {
			t.Errorf("site %q is never exercised by any chaos-test spec", name)
		}
		if s.Kill && !killSpecs[name] {
			t.Errorf("kill-capable site %q is never exercised with a kill action by the chaos tests", name)
		}
	}

	if len(evalNames) == 0 {
		t.Fatal("found no failpoint.Eval sites in the tree; the scanner is broken")
	}
	t.Logf("registry covers %d sites: %s", len(evalNames), strings.Join(evalNames, ", "))
}

// moduleRoot walks up from the test's directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

var specRE = regexp.MustCompile(`^([a-zA-Z0-9_./-]+)=(panic|error|kill)(@[0-9]+)?$`)

// scanTree parses every .go file under root (skipping testdata), returning
// Eval site name counts from non-test files and the chaos spec coverage
// (kill actions, any action) from test files.
func scanTree(t *testing.T, root string) (evalSites map[string]int, killSpecs, allSpecs map[string]bool) {
	t.Helper()
	evalSites = make(map[string]int)
	killSpecs = make(map[string]bool)
	allSpecs = make(map[string]bool)
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, 0)
		if perr != nil {
			return perr
		}
		if strings.HasSuffix(path, "_test.go") {
			collectSpecs(f, killSpecs, allSpecs)
			return nil
		}
		collectEvalSites(f, evalSites)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return evalSites, killSpecs, allSpecs
}

// collectEvalSites records <failpoint>.Eval("lit") calls, resolving the
// package's local import name from the file's imports.
func collectEvalSites(f *ast.File, out map[string]int) {
	pkgName := ""
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || path != "repro/internal/failpoint" {
			continue
		}
		pkgName = "failpoint"
		if imp.Name != nil {
			pkgName = imp.Name.Name
		}
	}
	if pkgName == "" {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Eval" || len(call.Args) != 1 {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok || ident.Name != pkgName {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		if name, err := strconv.Unquote(lit.Value); err == nil {
			out[name]++
		}
		return true
	})
}

// collectSpecs records which sites the test file's chaos specs exercise.
func collectSpecs(f *ast.File, killSpecs, allSpecs map[string]bool) {
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		s, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		for _, part := range strings.Split(s, ",") {
			m := specRE.FindStringSubmatch(strings.TrimSpace(part))
			if m == nil {
				continue
			}
			allSpecs[m[1]] = true
			if m[2] == "kill" {
				killSpecs[m[1]] = true
			}
		}
		return true
	})
}
