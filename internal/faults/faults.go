// Package faults injects the failure classes the paper's Table 2 taxonomy
// observes in zone transfers: single-bit memory flips in received zone data
// (corrupting an RRSIG or even a TLD name), stale zone files at individual
// sites (serving expired signatures), VP clock skew (handled by the vantage
// package, but classified here), and packet loss. All injectors are
// deterministic under a seed.
package faults

import (
	"fmt"
	"math/rand"

	"repro/internal/dnswire"
	"repro/internal/zone"
)

// Kind classifies an injected fault.
type Kind int

// Fault kinds, mirroring the paper's Table 2 "Reason" column.
const (
	None Kind = iota
	// BitflipSignature flips one bit in an RRSIG's signature bytes,
	// producing a bogus signature.
	BitflipSignature
	// BitflipName flips one bit in an owner name, e.g. turning ".ruhr" into
	// another label — detected by ZONEMD (and by the covering RRSIG of the
	// affected RRset when one exists).
	BitflipName
	// StaleZone serves an old zone copy whose signatures have expired.
	StaleZone
	// ClockSkew marks validation at a VP whose clock predates inception.
	ClockSkew
)

// String names the fault kind as Table 2 does.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case BitflipSignature:
		return "Bogus Signature"
	case BitflipName:
		return "Bogus Signature (name bitflip)"
	case StaleZone:
		return "Signature expired"
	case ClockSkew:
		return "Sig. not incepted"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Bitflip describes a single-bit corruption applied to a zone.
type Bitflip struct {
	// RecordIndex is the position of the corrupted record.
	RecordIndex int
	// Before and After are the record's presentation before/after the flip,
	// the paper's Fig. 10 rendering.
	Before, After string
}

// FlipSignatureBit flips one bit in a randomly chosen RRSIG signature of z
// (in place) and returns a description. It returns ok=false when the zone
// has no RRSIGs.
func FlipSignatureBit(z *zone.Zone, rng *rand.Rand) (Bitflip, bool) {
	var idxs []int
	for i, rr := range z.Records {
		if _, ok := rr.Data.(dnswire.RRSIGRecord); ok {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return Bitflip{}, false
	}
	i := idxs[rng.Intn(len(idxs))]
	rr := z.Records[i]
	sig := rr.Data.(dnswire.RRSIGRecord)
	before := rr.String()
	flipped := append([]byte(nil), sig.Signature...)
	if len(flipped) == 0 {
		return Bitflip{}, false
	}
	pos := rng.Intn(len(flipped))
	flipped[pos] ^= 1 << rng.Intn(8)
	sig.Signature = flipped
	z.MutateRecord(i, func(rr *dnswire.RR) { rr.Data = sig })
	return Bitflip{RecordIndex: i, Before: before, After: z.Records[i].String()}, true
}

// FlipNameBit flips one bit in the owner name of a randomly chosen
// delegation record, reproducing the paper's ".ruhr → corrupted label"
// observation. Only flips that keep the name syntactically valid (printable,
// parseable) are applied; the function retries a bounded number of times.
func FlipNameBit(z *zone.Zone, rng *rand.Rand) (Bitflip, bool) {
	var idxs []int
	for i, rr := range z.Records {
		if rr.Type() == dnswire.TypeNS && !rr.Name.IsRoot() {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return Bitflip{}, false
	}
	for attempt := 0; attempt < 64; attempt++ {
		i := idxs[rng.Intn(len(idxs))]
		rr := z.Records[i]
		name := []byte(rr.Name)
		pos := rng.Intn(len(name) - 1) // keep the trailing dot intact
		bit := byte(1) << rng.Intn(7)  // avoid the high bit: stay printable-ish
		flipped := append([]byte(nil), name...)
		flipped[pos] ^= bit
		newName, err := dnswire.NewName(string(flipped))
		if err != nil || newName == rr.Name {
			continue
		}
		before := rr.String()
		z.MutateRecord(i, func(rr *dnswire.RR) { rr.Name = newName })
		return Bitflip{RecordIndex: i, Before: before, After: z.Records[i].String()}, true
	}
	return Bitflip{}, false
}

// LossModel decides whether an individual query is lost. The paper's battery
// uses +retry=0, so a lost query is a missed measurement.
type LossModel struct {
	// Prob is the per-query loss probability.
	Prob float64
	// Seed scopes determinism.
	Seed int64
}

// Lost reports deterministically whether query (vp, target, tick, step) is
// lost. The decision is a splitmix64 finalizer chain over the packed
// coordinates — allocation-free, unlike constructing a PRNG per call — with
// the top 53 bits mapped uniformly onto [0, 1).
//
//rootlint:hotpath
func (l LossModel) Lost(vpIdx, targetIdx, tick, step int) bool {
	if l.Prob <= 0 {
		return false
	}
	h := uint64(l.Seed)
	for _, v := range [...]int{vpIdx, targetIdx, tick, step} {
		h = splitmix64(h + uint64(int64(v)))
	}
	return float64(h>>11)/(1<<53) < l.Prob
}

// splitmix64 is the SplitMix64 finalizer: full avalanche, so consecutive
// coordinates map to independent-looking uniform draws.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// StaleSitePlan marks sites that serve a stale (expired-signature) zone
// copy during a time window, as the paper found for two d.root sites
// (Tokyo and Leeds).
type StaleSitePlan struct {
	// Letter is the deployment ("d" in the paper).
	Letter string
	// SiteIDs are the stale sites.
	SiteIDs map[string]bool
	// StaleSerialAge is how many serial revisions behind the stale copy is.
	StaleSerialAge uint32
}

// IsStale reports whether the given deployment site serves stale data.
func (p StaleSitePlan) IsStale(letter, siteID string) bool {
	return p.Letter == letter && p.SiteIDs[siteID]
}
