package faults

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dnssec"
	"repro/internal/dnswire"
	"repro/internal/zone"
	"repro/internal/zonemd"
)

var studyTime = time.Date(2023, 11, 18, 7, 30, 0, 0, time.UTC)

func signedZone(t *testing.T) (*zone.Zone, *dnssec.Signer) {
	t.Helper()
	signer, err := dnssec.NewSigner(rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := zone.DefaultRootConfig()
	cfg.TLDCount = 20
	signed, err := signer.Sign(zone.SynthesizeRoot(cfg), studyTime)
	if err != nil {
		t.Fatal(err)
	}
	z, err := zonemd.AttachAndSign(signed, signer, zonemd.StateVerifiable, studyTime)
	if err != nil {
		t.Fatal(err)
	}
	return z, signer
}

func TestFlipSignatureBitBreaksDNSSEC(t *testing.T) {
	z, signer := signedZone(t)
	rng := rand.New(rand.NewSource(1))
	flip, ok := FlipSignatureBit(z, rng)
	if !ok {
		t.Fatal("no RRSIG to flip")
	}
	if flip.Before == flip.After {
		t.Error("flip did not change the record's rendering")
	}
	anchor := signer.TrustAnchor().Data.(dnswire.DSRecord)
	err := dnssec.ValidateZone(z, anchor, studyTime)
	if err == nil {
		t.Fatal("bitflipped zone validated")
	}
	if !errors.Is(err, dnssec.ErrBogusSignature) && !errors.Is(err, dnssec.ErrNoSignature) {
		t.Errorf("unexpected classification: %v", err)
	}
}

func TestFlipNameBitDetectedByZonemd(t *testing.T) {
	z, _ := signedZone(t)
	rng := rand.New(rand.NewSource(2))
	flip, ok := FlipNameBit(z, rng)
	if !ok {
		t.Fatal("no delegation to flip")
	}
	if flip.Before == flip.After {
		t.Error("flip changed nothing")
	}
	if err := zonemd.Verify(z); !errors.Is(err, zonemd.ErrDigestMismatch) {
		t.Errorf("ZONEMD verdict = %v, want digest mismatch", err)
	}
}

func TestFlipDeterministic(t *testing.T) {
	// ECDSA signing draws from crypto/rand, so two separately signed zones
	// differ; determinism is over the same zone content, so flip clones.
	z, _ := signedZone(t)
	z1, z2 := z.Clone(), z.Clone()
	f1, _ := FlipSignatureBit(z1, rand.New(rand.NewSource(7)))
	f2, _ := FlipSignatureBit(z2, rand.New(rand.NewSource(7)))
	if f1.RecordIndex != f2.RecordIndex || f1.After != f2.After {
		t.Error("same seed produced different flips")
	}
}

func TestFlipOnUnsignedZone(t *testing.T) {
	cfg := zone.DefaultRootConfig()
	cfg.TLDCount = 3
	z := zone.SynthesizeRoot(cfg)
	if _, ok := FlipSignatureBit(z, rand.New(rand.NewSource(1))); ok {
		t.Error("flipped a signature in an unsigned zone")
	}
}

func TestLossModel(t *testing.T) {
	l := LossModel{Prob: 0.3, Seed: 9}
	// Deterministic.
	if l.Lost(1, 2, 3, 4) != l.Lost(1, 2, 3, 4) {
		t.Error("loss not deterministic")
	}
	// Roughly calibrated.
	lost := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if l.Lost(i, i%28, i%100, i%47) {
			lost++
		}
	}
	frac := float64(lost) / n
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("loss fraction = %.3f, want ~0.30", frac)
	}
	// Zero probability never loses.
	z := LossModel{Prob: 0}
	for i := 0; i < 100; i++ {
		if z.Lost(i, 0, 0, 0) {
			t.Fatal("zero-prob loss")
		}
	}
}

// TestLossModelAllocationFree pins the hot-path property: deciding a loss
// must not allocate (the former implementation built a rand.Rand per call,
// ~5 allocations on every probe of every tick).
func TestLossModelAllocationFree(t *testing.T) {
	l := LossModel{Prob: 0.3, Seed: 9}
	sink := false
	allocs := testing.AllocsPerRun(1000, func() {
		sink = l.Lost(3, 11, 250, 7) || sink
	})
	if allocs != 0 {
		t.Errorf("Lost allocates %.1f objects per call, want 0", allocs)
	}
	_ = sink
}

// TestLossModelSeedSensitivity: different seeds must decorrelate the loss
// pattern, and the same coordinates under one seed are stable.
func TestLossModelSeedSensitivity(t *testing.T) {
	a := LossModel{Prob: 0.5, Seed: 1}
	b := LossModel{Prob: 0.5, Seed: 2}
	agree := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if a.Lost(i, i%28, i%100, 0) == b.Lost(i, i%28, i%100, 0) {
			agree++
		}
	}
	// Independent fair coins agree ~50%; near-total agreement means the
	// seed is being ignored.
	if agree > n*3/5 || agree < n*2/5 {
		t.Errorf("seeds agree on %d/%d decisions; expected ~half", agree, n)
	}
}

func TestStaleSitePlan(t *testing.T) {
	p := StaleSitePlan{
		Letter:         "d",
		SiteIDs:        map[string]bool{"d-nrt1": true, "d-lhr2": true},
		StaleSerialAge: 30,
	}
	if !p.IsStale("d", "d-nrt1") {
		t.Error("Tokyo site not stale")
	}
	if p.IsStale("d", "d-fra1") {
		t.Error("wrong site stale")
	}
	if p.IsStale("e", "d-nrt1") {
		t.Error("wrong letter stale")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		None:             "none",
		BitflipSignature: "Bogus Signature",
		StaleZone:        "Signature expired",
		ClockSkew:        "Sig. not incepted",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestStaleZoneFailsValidationAsExpired(t *testing.T) {
	// A zone signed long ago fails validation with "expired" at study time,
	// the signature of the paper's stale d.root sites.
	signer, err := dnssec.NewSigner(rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := zone.DefaultRootConfig()
	cfg.TLDCount = 5
	old, err := signer.Sign(zone.SynthesizeRoot(cfg), studyTime.Add(-60*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	anchor := signer.TrustAnchor().Data.(dnswire.DSRecord)
	err = dnssec.ValidateZone(old, anchor, studyTime)
	if !errors.Is(err, dnssec.ErrSignatureExpired) {
		t.Errorf("stale zone verdict = %v, want expired", err)
	}
}
