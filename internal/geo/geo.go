// Package geo provides the geographic substrate for the study: coordinates,
// great-circle distances, continental regions, a catalog of metro areas with
// IATA-style codes (the naming scheme several root operators use in their
// instance identifiers), and the distance→latency model the paper relies on
// ("every 1,000 km induces ~10 ms of delay" round trip in fiber).
package geo

import (
	"fmt"
	"math"
)

// Region is a continental region, matching the paper's per-region tables.
type Region int

// Regions in the order the paper's Table 3 and Table 4 report them.
const (
	Africa Region = iota
	Asia
	Europe
	NorthAmerica
	SouthAmerica
	Oceania
	regionCount
)

// Regions lists all regions in canonical report order.
func Regions() []Region {
	return []Region{Africa, Asia, Europe, NorthAmerica, SouthAmerica, Oceania}
}

// String returns the region's report name.
func (r Region) String() string {
	switch r {
	case Africa:
		return "Africa"
	case Asia:
		return "Asia"
	case Europe:
		return "Europe"
	case NorthAmerica:
		return "North America"
	case SouthAmerica:
		return "South America"
	case Oceania:
		return "Oceania"
	}
	return fmt.Sprintf("Region(%d)", int(r))
}

// Point is a location on the globe.
type Point struct {
	Lat, Lon float64 // degrees
}

// earthRadiusKm is the mean Earth radius.
const earthRadiusKm = 6371.0

// DistanceKm returns the great-circle (haversine) distance between a and b.
func DistanceKm(a, b Point) float64 {
	const deg = math.Pi / 180
	dLat := (b.Lat - a.Lat) * deg
	dLon := (b.Lon - a.Lon) * deg
	la, lb := a.Lat*deg, b.Lat*deg
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(la)*math.Cos(lb)*math.Sin(dLon/2)*math.Sin(dLon/2)
	if h > 1 {
		h = 1
	}
	return 2 * earthRadiusKm * math.Asin(math.Sqrt(h))
}

// RTTms estimates the round-trip time in milliseconds for a path covering
// pathKm kilometres of fiber: light in fiber travels at roughly 2/3 c, and
// fiber routes exceed great-circle distance, which together yield the
// paper's ~10 ms of RTT per 1,000 km. perHopMs adds queueing/processing
// delay per router hop.
func RTTms(pathKm float64, hops int, perHopMs float64) float64 {
	return pathKm*0.01 + float64(hops)*perHopMs
}

// City is a metro area usable as a site or vantage-point location.
type City struct {
	IATA   string // airport/metro code, e.g. "FRA"
	Name   string
	Region Region
	Point  Point
}

// cities is the metro catalog. Coordinates are approximate city centers.
var cities = []City{
	// Europe
	{"FRA", "Frankfurt", Europe, Point{50.1, 8.7}},
	{"AMS", "Amsterdam", Europe, Point{52.4, 4.9}},
	{"LHR", "London", Europe, Point{51.5, -0.1}},
	{"CDG", "Paris", Europe, Point{48.9, 2.4}},
	{"MAD", "Madrid", Europe, Point{40.4, -3.7}},
	{"MXP", "Milan", Europe, Point{45.5, 9.2}},
	{"VIE", "Vienna", Europe, Point{48.2, 16.4}},
	{"WAW", "Warsaw", Europe, Point{52.2, 21.0}},
	{"ARN", "Stockholm", Europe, Point{59.3, 18.1}},
	{"OSL", "Oslo", Europe, Point{59.9, 10.8}},
	{"HEL", "Helsinki", Europe, Point{60.2, 24.9}},
	{"CPH", "Copenhagen", Europe, Point{55.7, 12.6}},
	{"ZRH", "Zurich", Europe, Point{47.4, 8.5}},
	{"PRG", "Prague", Europe, Point{50.1, 14.4}},
	{"BUD", "Budapest", Europe, Point{47.5, 19.0}},
	{"ATH", "Athens", Europe, Point{38.0, 23.7}},
	{"LIS", "Lisbon", Europe, Point{38.7, -9.1}},
	{"DUB", "Dublin", Europe, Point{53.3, -6.3}},
	{"BRU", "Brussels", Europe, Point{50.8, 4.4}},
	{"KBP", "Kyiv", Europe, Point{50.5, 30.5}},
	{"IST", "Istanbul", Europe, Point{41.0, 28.9}},
	{"LED", "St Petersburg", Europe, Point{59.9, 30.3}},
	{"SVO", "Moscow", Europe, Point{55.8, 37.6}},
	{"BTS", "Bratislava", Europe, Point{48.1, 17.1}},
	{"LJU", "Ljubljana", Europe, Point{46.1, 14.5}},
	{"BEG", "Belgrade", Europe, Point{44.8, 20.5}},
	{"OTP", "Bucharest", Europe, Point{44.4, 26.1}},
	{"SOF", "Sofia", Europe, Point{42.7, 23.3}},
	{"RIX", "Riga", Europe, Point{56.9, 24.1}},
	{"TLL", "Tallinn", Europe, Point{59.4, 24.8}},
	// North America
	{"IAD", "Washington DC", NorthAmerica, Point{38.9, -77.0}},
	{"JFK", "New York", NorthAmerica, Point{40.7, -74.0}},
	{"ORD", "Chicago", NorthAmerica, Point{41.9, -87.6}},
	{"DFW", "Dallas", NorthAmerica, Point{32.8, -96.8}},
	{"MIA", "Miami", NorthAmerica, Point{25.8, -80.2}},
	{"ATL", "Atlanta", NorthAmerica, Point{33.7, -84.4}},
	{"LAX", "Los Angeles", NorthAmerica, Point{34.1, -118.2}},
	{"SJC", "San Jose", NorthAmerica, Point{37.3, -121.9}},
	{"SEA", "Seattle", NorthAmerica, Point{47.6, -122.3}},
	{"DEN", "Denver", NorthAmerica, Point{39.7, -105.0}},
	{"YYZ", "Toronto", NorthAmerica, Point{43.7, -79.4}},
	{"YVR", "Vancouver", NorthAmerica, Point{49.3, -123.1}},
	{"YUL", "Montreal", NorthAmerica, Point{45.5, -73.6}},
	{"MEX", "Mexico City", NorthAmerica, Point{19.4, -99.1}},
	{"PHX", "Phoenix", NorthAmerica, Point{33.4, -112.1}},
	{"MSP", "Minneapolis", NorthAmerica, Point{45.0, -93.3}},
	{"BOS", "Boston", NorthAmerica, Point{42.4, -71.1}},
	{"PAO", "Palo Alto", NorthAmerica, Point{37.4, -122.1}},
	// Asia
	{"NRT", "Tokyo", Asia, Point{35.7, 139.7}},
	{"KIX", "Osaka", Asia, Point{34.7, 135.5}},
	{"ICN", "Seoul", Asia, Point{37.6, 127.0}},
	{"PEK", "Beijing", Asia, Point{39.9, 116.4}},
	{"PVG", "Shanghai", Asia, Point{31.2, 121.5}},
	{"HKG", "Hong Kong", Asia, Point{22.3, 114.2}},
	{"TPE", "Taipei", Asia, Point{25.0, 121.6}},
	{"SIN", "Singapore", Asia, Point{1.4, 103.8}},
	{"KUL", "Kuala Lumpur", Asia, Point{3.1, 101.7}},
	{"BKK", "Bangkok", Asia, Point{13.8, 100.5}},
	{"CGK", "Jakarta", Asia, Point{-6.2, 106.8}},
	{"MNL", "Manila", Asia, Point{14.6, 121.0}},
	{"BOM", "Mumbai", Asia, Point{19.1, 72.9}},
	{"DEL", "Delhi", Asia, Point{28.6, 77.2}},
	{"MAA", "Chennai", Asia, Point{13.1, 80.3}},
	{"DXB", "Dubai", Asia, Point{25.3, 55.3}},
	{"TLV", "Tel Aviv", Asia, Point{32.1, 34.8}},
	{"KHI", "Karachi", Asia, Point{24.9, 67.0}},
	{"DAC", "Dhaka", Asia, Point{23.8, 90.4}},
	{"HAN", "Hanoi", Asia, Point{21.0, 105.9}},
	// South America
	{"GRU", "Sao Paulo", SouthAmerica, Point{-23.6, -46.7}},
	{"GIG", "Rio de Janeiro", SouthAmerica, Point{-22.9, -43.2}},
	{"EZE", "Buenos Aires", SouthAmerica, Point{-34.6, -58.4}},
	{"SCL", "Santiago", SouthAmerica, Point{-33.5, -70.7}},
	{"BOG", "Bogota", SouthAmerica, Point{4.7, -74.1}},
	{"LIM", "Lima", SouthAmerica, Point{-12.0, -77.0}},
	{"UIO", "Quito", SouthAmerica, Point{-0.2, -78.5}},
	{"CCS", "Caracas", SouthAmerica, Point{10.5, -66.9}},
	{"MVD", "Montevideo", SouthAmerica, Point{-34.9, -56.2}},
	{"ASU", "Asuncion", SouthAmerica, Point{-25.3, -57.6}},
	// Africa
	{"JNB", "Johannesburg", Africa, Point{-26.2, 28.0}},
	{"CPT", "Cape Town", Africa, Point{-33.9, 18.4}},
	{"NBO", "Nairobi", Africa, Point{-1.3, 36.8}},
	{"LOS", "Lagos", Africa, Point{6.5, 3.4}},
	{"CAI", "Cairo", Africa, Point{30.0, 31.2}},
	{"CMN", "Casablanca", Africa, Point{33.6, -7.6}},
	{"DAR", "Dar es Salaam", Africa, Point{-6.8, 39.3}},
	{"ACC", "Accra", Africa, Point{5.6, -0.2}},
	{"TNR", "Antananarivo", Africa, Point{-18.9, 47.5}},
	{"DKR", "Dakar", Africa, Point{14.7, -17.5}},
	// Oceania
	{"SYD", "Sydney", Oceania, Point{-33.9, 151.2}},
	{"MEL", "Melbourne", Oceania, Point{-37.8, 145.0}},
	{"BNE", "Brisbane", Oceania, Point{-27.5, 153.0}},
	{"PER", "Perth", Oceania, Point{-32.0, 115.9}},
	{"AKL", "Auckland", Oceania, Point{-36.8, 174.8}},
	{"WLG", "Wellington", Oceania, Point{-41.3, 174.8}},
	{"NAN", "Nadi", Oceania, Point{-17.8, 177.4}},
	{"GUM", "Guam", Oceania, Point{13.5, 144.8}},
}

var cityByIATA = func() map[string]City {
	m := make(map[string]City, len(cities))
	for _, c := range cities {
		m[c.IATA] = c
	}
	return m
}()

// Cities returns the full metro catalog.
func Cities() []City { return cities }

// CitiesIn returns the metros of one region.
func CitiesIn(r Region) []City {
	var out []City
	for _, c := range cities {
		if c.Region == r {
			out = append(out, c)
		}
	}
	return out
}

// CityByIATA looks a metro up by code.
func CityByIATA(code string) (City, bool) {
	c, ok := cityByIATA[code]
	return c, ok
}
