package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistanceKnownPairs(t *testing.T) {
	fra, _ := CityByIATA("FRA")
	ams, _ := CityByIATA("AMS")
	nrt, _ := CityByIATA("NRT")
	iad, _ := CityByIATA("IAD")
	gru, _ := CityByIATA("GRU")

	cases := []struct {
		a, b     Point
		min, max float64 // km, generous bounds around known values
	}{
		{fra.Point, ams.Point, 300, 450},
		{fra.Point, nrt.Point, 9000, 9700},
		{iad.Point, fra.Point, 6200, 6900},
		{gru.Point, iad.Point, 7400, 8200},
	}
	for _, c := range cases {
		got := DistanceKm(c.a, c.b)
		if got < c.min || got > c.max {
			t.Errorf("distance(%v, %v) = %.0f km, want in [%.0f, %.0f]",
				c.a, c.b, got, c.min, c.max)
		}
	}
}

func TestDistanceProperties(t *testing.T) {
	randPoint := func(r *rand.Rand) Point {
		return Point{Lat: r.Float64()*180 - 90, Lon: r.Float64()*360 - 180}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randPoint(r), randPoint(r)
		dab, dba := DistanceKm(a, b), DistanceKm(b, a)
		if math.Abs(dab-dba) > 1e-6 {
			return false // symmetry
		}
		if DistanceKm(a, a) > 1e-6 {
			return false // identity
		}
		if dab < 0 || dab > 20040 {
			return false // bounded by half the circumference
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRTTModel(t *testing.T) {
	// The paper: every 1,000 km induces ~10 ms of delay.
	if got := RTTms(1000, 0, 0); math.Abs(got-10) > 1e-9 {
		t.Errorf("RTTms(1000km) = %.2f, want 10", got)
	}
	if got := RTTms(0, 10, 0.5); math.Abs(got-5) > 1e-9 {
		t.Errorf("hop term = %.2f, want 5", got)
	}
	if RTTms(5000, 12, 0.2) <= RTTms(5000, 12, 0) {
		t.Error("per-hop delay not additive")
	}
}

func TestCityCatalog(t *testing.T) {
	if len(Cities()) < 80 {
		t.Errorf("catalog has %d cities, want >= 80", len(Cities()))
	}
	seen := map[string]bool{}
	for _, c := range Cities() {
		if len(c.IATA) != 3 {
			t.Errorf("bad IATA %q", c.IATA)
		}
		if seen[c.IATA] {
			t.Errorf("duplicate IATA %q", c.IATA)
		}
		seen[c.IATA] = true
		if c.Point.Lat < -90 || c.Point.Lat > 90 || c.Point.Lon < -180 || c.Point.Lon > 180 {
			t.Errorf("%s has out-of-range coordinates %v", c.IATA, c.Point)
		}
	}
	for _, r := range Regions() {
		if len(CitiesIn(r)) < 8 {
			t.Errorf("region %s has only %d cities", r, len(CitiesIn(r)))
		}
	}
}

func TestCityByIATA(t *testing.T) {
	c, ok := CityByIATA("NRT")
	if !ok || c.Name != "Tokyo" || c.Region != Asia {
		t.Errorf("NRT = %+v, %v", c, ok)
	}
	if _, ok := CityByIATA("XXX"); ok {
		t.Error("nonexistent code found")
	}
}

func TestRegionStrings(t *testing.T) {
	want := map[Region]string{
		Africa: "Africa", Asia: "Asia", Europe: "Europe",
		NorthAmerica: "North America", SouthAmerica: "South America",
		Oceania: "Oceania",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), s)
		}
	}
	if len(Regions()) != 6 {
		t.Errorf("Regions() = %d entries", len(Regions()))
	}
}
