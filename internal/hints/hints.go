// Package hints models the root hints file (the named.cache/named.root
// format shipped with resolvers) and the RFC 8109 priming exchange built on
// it. Priming is load-bearing for the paper's RQ2: resolvers that prime on
// startup learn b.root's new address quickly, while resolvers running from
// stale hints keep querying the old address for years.
package hints

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strings"

	"repro/internal/dnswire"
	"repro/internal/zone"
)

// Hint is one root server entry: host name plus its addresses.
type Hint struct {
	Host dnswire.Name
	V4   netip.Addr
	V6   netip.Addr
}

// File is a set of root hints.
type File struct {
	Hints []Hint
}

// Default returns hints matching the synthesized root zone's well-known
// addresses (post-renumbering b.root).
func Default() *File {
	f := &File{}
	for i, host := range zone.RootServerHosts() {
		v4, v6 := zone.WellKnownRootAddr(i)
		f.Hints = append(f.Hints, Hint{Host: host, V4: v4, V6: v6})
	}
	return f
}

// WithOldB returns a copy with b.root's pre-renumbering addresses — the
// stale hints file of a legacy resolver.
func (f *File) WithOldB(oldV4, oldV6 netip.Addr) *File {
	out := &File{Hints: append([]Hint(nil), f.Hints...)}
	for i := range out.Hints {
		if strings.HasPrefix(string(out.Hints[i].Host), "b.") {
			out.Hints[i].V4 = oldV4
			out.Hints[i].V6 = oldV6
		}
	}
	return out
}

// Addrs returns all hint addresses of one family in host order.
func (f *File) Addrs(v6 bool) []netip.Addr {
	out := make([]netip.Addr, 0, len(f.Hints))
	for _, h := range f.Hints {
		if v6 {
			out = append(out, h.V6)
		} else {
			out = append(out, h.V4)
		}
	}
	return out
}

// Lookup returns the hint for host, if present.
func (f *File) Lookup(host dnswire.Name) (Hint, bool) {
	hc := host.Canonical()
	for _, h := range f.Hints {
		if h.Host.Canonical() == hc {
			return h, true
		}
	}
	return Hint{}, false
}

// Print writes the hints in named.root master-file format.
func (f *File) Print(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "; root hints (named.cache format)")
	hints := append([]Hint(nil), f.Hints...)
	sort.Slice(hints, func(i, j int) bool { return hints[i].Host < hints[j].Host })
	for _, h := range hints {
		fmt.Fprintf(bw, ".\t3600000\tIN\tNS\t%s\n", h.Host)
	}
	for _, h := range hints {
		fmt.Fprintf(bw, "%s\t3600000\tIN\tA\t%s\n", h.Host, h.V4)
		fmt.Fprintf(bw, "%s\t3600000\tIN\tAAAA\t%s\n", h.Host, h.V6)
	}
	return bw.Flush()
}

// Parse reads a named.root-format hints file.
func Parse(r io.Reader) (*File, error) {
	z, err := zone.Parse(r, dnswire.Root)
	if err != nil {
		return nil, fmt.Errorf("hints: %w", err)
	}
	byHost := make(map[dnswire.Name]*Hint)
	var order []dnswire.Name
	for _, rr := range z.Lookup(dnswire.Root, dnswire.TypeNS) {
		host := rr.Data.(dnswire.NSRecord).Host.Canonical()
		if byHost[host] == nil {
			byHost[host] = &Hint{Host: host}
			order = append(order, host)
		}
	}
	for _, rr := range z.Records {
		host := rr.Name.Canonical()
		h := byHost[host]
		if h == nil {
			continue
		}
		switch d := rr.Data.(type) {
		case dnswire.ARecord:
			h.V4 = d.Addr
		case dnswire.AAAARecord:
			h.V6 = d.Addr
		}
	}
	f := &File{}
	for _, host := range order {
		f.Hints = append(f.Hints, *byHost[host])
	}
	if len(f.Hints) == 0 {
		return nil, fmt.Errorf("hints: no root NS entries found")
	}
	return f, nil
}

// PrimingQuery builds the RFC 8109 priming query: "./IN/NS" with EDNS0.
func PrimingQuery(id uint16) *dnswire.Message {
	return dnswire.NewQuery(id, dnswire.Root, dnswire.TypeNS).WithEDNS(4096, false)
}

// CheckPrimingResponse validates a priming response per RFC 8109 §3: it
// must be an authoritative NOERROR answer for ./NS listing the root servers,
// with address records for at least some of them in the additional section.
// It returns the refreshed hints extracted from the response.
func CheckPrimingResponse(m *dnswire.Message) (*File, error) {
	if !m.Header.Response || m.Header.Rcode != dnswire.RcodeNoError {
		return nil, fmt.Errorf("hints: priming response rcode %s", m.Header.Rcode)
	}
	byHost := make(map[dnswire.Name]*Hint)
	var order []dnswire.Name
	for _, rr := range m.Answers {
		ns, ok := rr.Data.(dnswire.NSRecord)
		if !ok || !rr.Name.IsRoot() {
			continue
		}
		host := ns.Host.Canonical()
		if byHost[host] == nil {
			byHost[host] = &Hint{Host: host}
			order = append(order, host)
		}
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("hints: priming response has no ./NS answers")
	}
	withAddr := 0
	for _, rr := range m.Additional {
		h := byHost[rr.Name.Canonical()]
		if h == nil {
			continue
		}
		switch d := rr.Data.(type) {
		case dnswire.ARecord:
			if !h.V4.IsValid() {
				withAddr++
			}
			h.V4 = d.Addr
		case dnswire.AAAARecord:
			h.V6 = d.Addr
		}
	}
	if withAddr == 0 {
		return nil, fmt.Errorf("hints: priming response carries no glue")
	}
	f := &File{}
	for _, host := range order {
		f.Hints = append(f.Hints, *byHost[host])
	}
	return f, nil
}
