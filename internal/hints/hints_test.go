package hints

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"

	"repro/internal/dnswire"
)

func TestDefaultHints(t *testing.T) {
	f := Default()
	if len(f.Hints) != 13 {
		t.Fatalf("hints = %d, want 13", len(f.Hints))
	}
	for _, h := range f.Hints {
		if !h.V4.Is4() || !h.V6.Is6() {
			t.Errorf("%s: families %v %v", h.Host, h.V4, h.V6)
		}
	}
	b, ok := f.Lookup(dnswire.MustName("b.root-servers.net."))
	if !ok || b.V4.String() != "170.247.170.2" {
		t.Errorf("b hint = %+v, %v", b, ok)
	}
	if _, ok := f.Lookup(dnswire.MustName("z.root-servers.net.")); ok {
		t.Error("ghost hint found")
	}
}

func TestWithOldB(t *testing.T) {
	old4 := netip.MustParseAddr("199.9.14.201")
	old6 := netip.MustParseAddr("2001:500:200::b")
	f := Default().WithOldB(old4, old6)
	b, _ := f.Lookup(dnswire.MustName("b.root-servers.net."))
	if b.V4 != old4 || b.V6 != old6 {
		t.Errorf("old b hint = %+v", b)
	}
	// Original unchanged.
	orig, _ := Default().Lookup(dnswire.MustName("b.root-servers.net."))
	if orig.V4 == old4 {
		t.Error("WithOldB mutated the source")
	}
	// Other letters untouched.
	a, _ := f.Lookup(dnswire.MustName("a.root-servers.net."))
	if a.V4.String() != "198.41.0.4" {
		t.Errorf("a hint corrupted: %+v", a)
	}
}

func TestAddrs(t *testing.T) {
	f := Default()
	v4 := f.Addrs(false)
	v6 := f.Addrs(true)
	if len(v4) != 13 || len(v6) != 13 {
		t.Fatalf("addr counts %d/%d", len(v4), len(v6))
	}
	for i := range v4 {
		if !v4[i].Is4() || !v6[i].Is6() {
			t.Errorf("entry %d: %v %v", i, v4[i], v6[i])
		}
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	f := Default()
	var buf bytes.Buffer
	if err := f.Print(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Hints) != 13 {
		t.Fatalf("parsed %d hints", len(got.Hints))
	}
	for _, h := range f.Hints {
		g, ok := got.Lookup(h.Host)
		if !ok || g.V4 != h.V4 || g.V6 != h.V6 {
			t.Errorf("%s: round trip %+v vs %+v", h.Host, g, h)
		}
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("; nothing here\n")); err == nil {
		t.Error("empty hints accepted")
	}
}

func TestPrimingQueryShape(t *testing.T) {
	q := PrimingQuery(42)
	if q.Header.ID != 42 || q.Questions[0].Type != dnswire.TypeNS || !q.Questions[0].Name.IsRoot() {
		t.Errorf("priming query = %+v", q)
	}
	if _, ok := q.EDNS(); !ok {
		t.Error("priming query lacks EDNS0")
	}
}

// buildPrimingResponse creates a valid RFC 8109 response from hints.
func buildPrimingResponse(f *File) *dnswire.Message {
	m := &dnswire.Message{Header: dnswire.Header{ID: 1, Response: true, Authoritative: true}}
	m.Questions = []dnswire.Question{{Name: dnswire.Root, Type: dnswire.TypeNS, Class: dnswire.ClassINET}}
	for _, h := range f.Hints {
		m.Answers = append(m.Answers, dnswire.RR{
			Name: dnswire.Root, Class: dnswire.ClassINET, TTL: 518400,
			Data: dnswire.NSRecord{Host: h.Host},
		})
		m.Additional = append(m.Additional,
			dnswire.RR{Name: h.Host, Class: dnswire.ClassINET, TTL: 518400,
				Data: dnswire.ARecord{Addr: h.V4}},
			dnswire.RR{Name: h.Host, Class: dnswire.ClassINET, TTL: 518400,
				Data: dnswire.AAAARecord{Addr: h.V6}})
	}
	return m
}

func TestCheckPrimingResponse(t *testing.T) {
	f := Default()
	got, err := CheckPrimingResponse(buildPrimingResponse(f))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Hints) != 13 {
		t.Fatalf("refreshed hints = %d", len(got.Hints))
	}
	b, _ := got.Lookup(dnswire.MustName("b.root-servers.net."))
	if b.V4.String() != "170.247.170.2" {
		t.Errorf("refreshed b = %+v", b)
	}
}

func TestCheckPrimingResponseRejects(t *testing.T) {
	// Non-response.
	bad := buildPrimingResponse(Default())
	bad.Header.Response = false
	if _, err := CheckPrimingResponse(bad); err == nil {
		t.Error("non-response accepted")
	}
	// SERVFAIL.
	bad = buildPrimingResponse(Default())
	bad.Header.Rcode = dnswire.RcodeServFail
	if _, err := CheckPrimingResponse(bad); err == nil {
		t.Error("SERVFAIL accepted")
	}
	// No NS answers.
	bad = buildPrimingResponse(Default())
	bad.Answers = nil
	if _, err := CheckPrimingResponse(bad); err == nil {
		t.Error("NS-less response accepted")
	}
	// No glue.
	bad = buildPrimingResponse(Default())
	bad.Additional = nil
	if _, err := CheckPrimingResponse(bad); err == nil {
		t.Error("glueless response accepted")
	}
}

// TestPrimingLearnsNewB is the paper's adoption mechanism in miniature: a
// resolver with stale hints primes and comes back with the new address.
func TestPrimingLearnsNewB(t *testing.T) {
	stale := Default().WithOldB(
		netip.MustParseAddr("199.9.14.201"), netip.MustParseAddr("2001:500:200::b"))
	fresh, err := CheckPrimingResponse(buildPrimingResponse(Default()))
	if err != nil {
		t.Fatal(err)
	}
	staleB, _ := stale.Lookup(dnswire.MustName("b.root-servers.net."))
	freshB, _ := fresh.Lookup(dnswire.MustName("b.root-servers.net."))
	if staleB.V4 == freshB.V4 {
		t.Fatal("test setup: stale == fresh")
	}
	if freshB.V4.String() != "170.247.170.2" {
		t.Errorf("priming did not learn the new b.root: %v", freshB.V4)
	}
}
