package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each fixture pairs a failing package (a, every violation form with a want
// expectation) with a passing package (b, near-miss idioms that must stay
// silent); the directive fixture carries both in one file.

func TestDetrand(t *testing.T) { linttest.Run(t, lint.Detrand, "detrand") }

func TestHotpath(t *testing.T) { linttest.Run(t, lint.Hotpath, "hotpath") }

func TestOrderedmap(t *testing.T) { linttest.Run(t, lint.Orderedmap, "orderedmap") }

func TestFailpointsite(t *testing.T) { linttest.Run(t, lint.Failpointsite, "failpointsite") }

func TestMetricname(t *testing.T) { linttest.Run(t, lint.Metricname, "metricname") }

func TestQlogfield(t *testing.T) { linttest.Run(t, lint.Qlogfield, "qlogfield") }

func TestDirective(t *testing.T) { linttest.Run(t, lint.Directive, "directive") }

// The lockcheck fixture is deliberately multi-file (a/a.go + a/helper.go)
// and multi-package (a + shard, with the confinement violation crossing the
// package boundary): one linttest run covers wants everywhere the loader
// finds them.
func TestLockcheck(t *testing.T) { linttest.Run(t, lint.Lockcheck, "lockcheck") }

func TestLeakcheck(t *testing.T) { linttest.Run(t, lint.Leakcheck, "leakcheck") }

// TestSuiteCleanOnRepo is the same gate as `make lint`: the full analyzer
// suite over the whole module must report nothing. Keeping it as a test
// means plain `go test ./...` catches a new violation even when the lint
// target is skipped.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type check")
	}
	prog := linttest.MustLoadModule(t)
	diags, err := lint.RunAnalyzers(prog, lint.Suite())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("rootlint suite is not clean on the repo:\n%s", linttest.Format(prog.Fset, diags))
	}
}
