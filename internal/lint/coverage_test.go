package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// coveragePackages are the concurrent-surface packages whose shared state
// must carry lockcheck directives (the tentpole's annotation campaign).
var coveragePackages = []string{
	"internal/dnsserver",
	"internal/blast",
	"internal/measure",
	"internal/dataset",
	"internal/telemetry",
	"internal/netem",
}

// directiveRE matches a lockcheck protection-regime directive or a reasoned
// lockcheck allow on a field's comment.
var directiveRE = regexp.MustCompile(`rootlint:(guardedby\b|atomic\b|shardconfined\b|immutable-after-start\b|allow lockcheck:)`)

// TestDirectiveCoverage mirrors failpoint's TestSiteRegistryMatchesTree: a
// plain AST scan, independent of the lockcheck analyzer's type-checked
// implementation, asserting that every struct carrying a sync.Mutex/RWMutex
// or sync/atomic field in the concurrent packages declares a protection
// regime (or a reasoned allow) on each of its shared fields. New concurrent
// state therefore cannot land unannotated even if the analyzer itself were
// accidentally dropped from the suite.
func TestDirectiveCoverage(t *testing.T) {
	root := lintModuleRoot(t)
	checked := 0
	for _, rel := range coveragePackages {
		dir := filepath.Join(root, rel)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", rel, err)
		}
		fset := token.NewFileSet()
		var files []*ast.File
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("%s/%s: %v", rel, name, err)
			}
			files = append(files, f)
		}
		syncTypes := localSyncTypes(files)
		for _, f := range files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				if !structCarriesSync(st, syncTypes) {
					return true
				}
				checked++
				for _, field := range st.Fields.List {
					if len(field.Names) == 0 {
						continue // embedded: promoted API, not shared state
					}
					if fieldSelfSynchronized(field.Type, syncTypes) {
						continue
					}
					blank := true
					for _, name := range field.Names {
						if name.Name != "_" {
							blank = false
						}
					}
					if blank {
						continue
					}
					if !fieldHasDirective(field) {
						pos := fset.Position(field.Pos())
						t.Errorf("%s: struct %s field %s has no lockcheck directive (//rootlint:guardedby/atomic/shardconfined/immutable-after-start or a reasoned allow)",
							pos, ts.Name.Name, field.Names[0].Name)
					}
				}
				return true
			})
		}
	}
	if checked == 0 {
		t.Fatal("found no sync-carrying structs in the covered packages; the scanner is broken")
	}
	t.Logf("directive coverage verified on %d sync-carrying structs", checked)
}

// lintModuleRoot walks up from the test's directory to go.mod.
func lintModuleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// localSyncTypes finds package-local named struct types that are pure
// wrappers of sync/atomic state (telemetry's padded counter slots), so a
// field of such a type counts as a sync trigger and as self-synchronized.
// Iterates to a fixpoint so wrappers of wrappers resolve.
func localSyncTypes(files []*ast.File) map[string]bool {
	out := make(map[string]bool)
	for changed := true; changed; {
		changed = false
		for _, f := range files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok || out[ts.Name.Name] {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				pure := len(st.Fields.List) > 0
				for _, field := range st.Fields.List {
					blank := len(field.Names) > 0
					for _, name := range field.Names {
						if name.Name != "_" {
							blank = false
						}
					}
					if !blank && !typeMentionsSync(field.Type, out) {
						pure = false
						break
					}
				}
				if pure {
					out[ts.Name.Name] = true
					changed = true
				}
				return true
			})
		}
	}
	return out
}

// structCarriesSync reports whether st has a named, non-blank field of a
// sync.Mutex/RWMutex or sync/atomic type (directly, behind pointers or
// arrays, or via a local pure-wrapper type).
func structCarriesSync(st *ast.StructType, syncTypes map[string]bool) bool {
	for _, field := range st.Fields.List {
		if len(field.Names) == 0 {
			continue
		}
		if typeMentionsSync(field.Type, syncTypes) {
			return true
		}
	}
	return false
}

// fieldSelfSynchronized reports whether a field needs no directive because
// its type synchronizes itself: sync/atomic types, channels, and local pure
// wrappers, possibly behind pointers, arrays, or generic instantiation.
func fieldSelfSynchronized(e ast.Expr, syncTypes map[string]bool) bool {
	switch x := e.(type) {
	case *ast.ChanType:
		return true
	case *ast.StarExpr:
		return fieldSelfSynchronized(x.X, syncTypes)
	case *ast.ArrayType:
		return fieldSelfSynchronized(x.Elt, syncTypes)
	case *ast.IndexExpr: // atomic.Pointer[T]
		return fieldSelfSynchronized(x.X, syncTypes)
	case *ast.SelectorExpr:
		if ident, ok := x.X.(*ast.Ident); ok && (ident.Name == "sync" || ident.Name == "atomic") {
			return true
		}
	case *ast.Ident:
		return syncTypes[x.Name]
	}
	return false
}

// typeMentionsSync reports whether the type expression resolves to the
// primitives lockcheck treats as carrier triggers: sync.Mutex/RWMutex or
// anything from sync/atomic (mirroring containsSyncPrim — sync.Once and
// sync.WaitGroup coordinate without guarding sibling fields), a local
// pure-wrapper name, behind any number of pointers/arrays/instantiations.
// Channels do not count as triggers either.
func typeMentionsSync(e ast.Expr, syncTypes map[string]bool) bool {
	switch x := e.(type) {
	case *ast.StarExpr:
		return typeMentionsSync(x.X, syncTypes)
	case *ast.ArrayType:
		return typeMentionsSync(x.Elt, syncTypes)
	case *ast.IndexExpr:
		return typeMentionsSync(x.X, syncTypes)
	case *ast.SelectorExpr:
		if ident, ok := x.X.(*ast.Ident); ok {
			switch ident.Name {
			case "atomic":
				return true
			case "sync":
				return x.Sel.Name == "Mutex" || x.Sel.Name == "RWMutex"
			}
		}
	case *ast.Ident:
		return syncTypes[x.Name]
	}
	return false
}

// fieldHasDirective reports whether the field's doc or line comment carries
// a lockcheck regime directive or a reasoned lockcheck allow.
func fieldHasDirective(field *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if directiveRE.MatchString(c.Text) {
				return true
			}
		}
	}
	return false
}
