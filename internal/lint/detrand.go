package lint

import (
	"go/ast"
	"go/types"
)

// Detrand forbids wall-clock reads and process-global randomness in the
// simulation and analysis packages. Every report the campaign engine emits
// is pinned byte-identical across worker counts and resumes; one stray
// time.Now() or global rand.Intn() silently breaks that contract in a way
// example-based tests only catch when they happen to cover the call site.
//
// Flagged, unless suppressed by //rootlint:allow on the call site:
//
//   - time.Now / time.Since (category "wallclock") — including uses as
//     function values, which is how a wall clock usually sneaks into a
//     default field;
//   - any math/rand function drawing from the package-global source —
//     rand.Intn, rand.Int63, rand.Perm, rand.Seed, ... (category
//     "globalrand"). Constructing an explicitly seeded generator
//     (rand.New, rand.NewSource) stays legal; seeding it from the wall
//     clock is caught by the time.Now rule.
//
// Package main is out of scope (CLIs legitimately report wall time), as is
// the lint tree itself.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc:  "forbids wall-clock time and unseeded randomness in simulation/analysis packages",
	Run:  runDetrand,
}

// detrandSeededConstructors are the math/rand functions that build an
// explicitly seeded generator rather than drawing from the global source.
var detrandSeededConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"NewPCG":    true, // math/rand/v2
	"NewChaCha8": true,
}

func runDetrand(pass *Pass) error {
	if pass.Pkg == nil || pass.Pkg.Name() == "main" || pass.Pkg.Name() == "lint" || pass.Pkg.Name() == "linttest" {
		return nil
	}
	allows := pass.allows()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pkgNameOf(pass.Info, ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil {
				return true
			}
			if _, isType := obj.(*types.TypeName); isType {
				return true // rand.Rand, time.Time, ... are fine
			}
			switch pn.Imported().Path() {
			case "time":
				if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
					if !allows.Allowed(sel.Pos(), "wallclock") {
						pass.Reportf(sel.Pos(),
							"time.%s reads the wall clock in a simulation package; inject a clock or annotate with //rootlint:allow wallclock: <reason>",
							sel.Sel.Name)
					}
				}
			case "math/rand", "math/rand/v2":
				if _, isFunc := obj.(*types.Func); !isFunc {
					return true
				}
				if detrandSeededConstructors[sel.Sel.Name] {
					return true
				}
				if !allows.Allowed(sel.Pos(), "globalrand") {
					pass.Reportf(sel.Pos(),
						"rand.%s draws from math/rand's process-global source; use an explicitly seeded *rand.Rand or annotate with //rootlint:allow globalrand: <reason>",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}
