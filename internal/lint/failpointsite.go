package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// Failpointsite cross-checks the three legs of the chaos harness against
// each other, program-wide:
//
//  1. every failpoint.Eval("site") literal in the tree must appear in the
//     failpoint package's Sites registry (an unregistered site is invisible
//     to the chaos matrix and ships untested);
//  2. every registry entry must correspond to a live Eval site (a dead
//     entry means the site was removed but its chaos coverage claim
//     lingers);
//  3. no duplicates on either side — two Eval calls sharing one site name
//     split the hit counter across unrelated code paths, breaking the
//     "fires exactly once, deterministically" contract;
//  4. every registered site must be exercised by a chaos-test spec
//     ("site=action[@N]" string literals in _test.go files), and every
//     kill-capable site (Kill: true in the registry) must be exercised
//     with a kill action specifically — kill is the one action whose
//     recovery path (resume to byte-identical output) example tests cannot
//     cover incidentally.
//
// Eval calls with a non-constant site argument are flagged too: the
// registry cross-check is only sound when site names are literals.
var Failpointsite = &Analyzer{
	Name: "failpointsite",
	Doc:  "cross-checks failpoint.Eval sites against the registry and chaos-test coverage",
}

// RunProgram is attached in init to break the initialization cycle between
// the analyzer value and its run function (which reports through it).
func init() { Failpointsite.RunProgram = runFailpointsite }

// chaosSpecRE matches one failpoint activation spec, the grammar accepted by
// failpoint.Enable.
var chaosSpecRE = regexp.MustCompile(`^([a-zA-Z0-9_./-]+)=(panic|error|kill)(@[0-9]+)?$`)

type evalSite struct {
	name string
	pos  token.Pos
}

type registrySite struct {
	name string
	kill bool
	pos  token.Pos
}

func runFailpointsite(prog *Program) error {
	var evals []evalSite
	var registry []registrySite
	actions := make(map[string]map[string]bool) // site -> actions seen in tests
	registryFound := false

	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			collectEvals(prog, pkg, f, &evals)
		}
		if isFailpointPkg(pkg) {
			for _, f := range pkg.Files {
				if collectRegistry(f, &registry) {
					registryFound = true
				}
			}
		}
		for _, f := range pkg.TestFiles {
			collectChaosSpecs(f, actions)
		}
	}

	if len(evals) == 0 {
		return nil // program uses no failpoints; nothing to cross-check
	}
	if !registryFound {
		prog.Reportf(Failpointsite, evals[0].pos,
			"failpoint.Eval sites exist but no Sites registry was found in the failpoint package")
		return nil
	}

	evalByName := make(map[string][]evalSite)
	for _, e := range evals {
		evalByName[e.name] = append(evalByName[e.name], e)
	}
	regByName := make(map[string][]registrySite)
	for _, r := range registry {
		regByName[r.name] = append(regByName[r.name], r)
	}

	for name, sites := range evalByName {
		if len(sites) > 1 {
			for _, s := range sites[1:] {
				prog.Reportf(Failpointsite, s.pos,
					"failpoint site %q is evaluated at multiple locations; hit counts would span unrelated code paths", name)
			}
		}
		if len(regByName[name]) == 0 {
			prog.Reportf(Failpointsite, sites[0].pos,
				"failpoint site %q is not in the failpoint.Sites registry", name)
		}
	}
	for name, regs := range regByName {
		if len(regs) > 1 {
			for _, r := range regs[1:] {
				prog.Reportf(Failpointsite, r.pos, "duplicate registry entry for failpoint site %q", name)
			}
		}
		r := regs[0]
		if len(evalByName[name]) == 0 {
			prog.Reportf(Failpointsite, r.pos,
				"dead registry entry: no failpoint.Eval(%q) site exists", name)
			continue
		}
		acts := actions[name]
		if len(acts) == 0 {
			prog.Reportf(Failpointsite, r.pos,
				"failpoint site %q is never exercised by any chaos test spec", name)
			continue
		}
		if r.kill && !acts["kill"] {
			prog.Reportf(Failpointsite, r.pos,
				"kill-capable failpoint site %q is never exercised with a kill action by the chaos tests", name)
		}
	}
	return nil
}

// isFailpointPkg reports whether pkg is the failpoint package (by name, so
// fixtures with a local failpoint package work the same as the real one).
func isFailpointPkg(pkg *PackageInfo) bool {
	return pkg.Pkg != nil && pkg.Pkg.Name() == "failpoint"
}

// collectEvals gathers <failpoint-pkg>.Eval("literal") calls.
func collectEvals(prog *Program, pkg *PackageInfo, f *ast.File, out *[]evalSite) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Eval" {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pkgNameOf(pkg.Info, ident)
		if !ok {
			return true
		}
		path := pn.Imported().Path()
		if path != "failpoint" && !strings.HasSuffix(path, "/failpoint") {
			return true
		}
		if len(call.Args) != 1 {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			prog.Reportf(Failpointsite, call.Args[0].Pos(),
				"failpoint.Eval site name must be a string literal for registry cross-checking")
			return true
		}
		name, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		*out = append(*out, evalSite{name: name, pos: lit.Pos()})
		return true
	})
}

// collectRegistry parses `var Sites = []Site{{Name: "...", Kill: ...}, ...}`
// declarations, reporting whether one was found in f.
func collectRegistry(f *ast.File, out *[]registrySite) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		spec, ok := n.(*ast.ValueSpec)
		if !ok {
			return true
		}
		for i, name := range spec.Names {
			if name.Name != "Sites" || i >= len(spec.Values) {
				continue
			}
			lit, ok := spec.Values[i].(*ast.CompositeLit)
			if !ok {
				continue
			}
			found = true
			for _, elt := range lit.Elts {
				entry, ok := elt.(*ast.CompositeLit)
				if !ok {
					continue
				}
				site := registrySite{pos: entry.Pos()}
				for _, field := range entry.Elts {
					kv, ok := field.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					switch key.Name {
					case "Name":
						if s, ok := kv.Value.(*ast.BasicLit); ok && s.Kind == token.STRING {
							if v, err := strconv.Unquote(s.Value); err == nil {
								site.name = v
							}
						}
					case "Kill":
						if id, ok := kv.Value.(*ast.Ident); ok {
							site.kill = id.Name == "true"
						}
					}
				}
				if site.name != "" {
					*out = append(*out, site)
				}
			}
		}
		return true
	})
	return found
}

// collectChaosSpecs scans a test file for "site=action[@N]" string literals
// (including comma-separated multi-site specs) and records which actions
// each site is exercised with.
func collectChaosSpecs(f *ast.File, actions map[string]map[string]bool) {
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		s, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		for _, part := range strings.Split(s, ",") {
			m := chaosSpecRE.FindStringSubmatch(strings.TrimSpace(part))
			if m == nil {
				continue
			}
			site, action := m[1], m[2]
			if actions[site] == nil {
				actions[site] = make(map[string]bool)
			}
			actions[site][action] = true
		}
		return true
	})
}
