package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath enforces the zero-alloc contract on functions whose doc comment
// carries //rootlint:hotpath — the PR 2 fast paths (Message.AppendPack, the
// canonical-sidecar builders, LossModel.Lost, AXFR framing) whose
// allocations-per-op are pinned by benchmarks. The benchmarks catch a
// regression's symptom; this analyzer names the construct that caused it:
//
//   - fmt.Sprintf / fmt.Errorf / fmt.Sprint / fmt.Sprintln — always
//     allocate, and usually smuggle in interface boxing too;
//   - string concatenation inside a loop — each + re-allocates the
//     accumulated string;
//   - a closure that captures enclosing variables and escapes (assigned,
//     passed, deferred, or returned rather than immediately invoked) —
//     the captured variables move to the heap;
//   - append whose base operand is a freshly allocated slice
//     (append(make([]T, 0), ...), append([]T{}, ...), append([]byte(s),
//     ...)) — guarantees a fresh backing array per call instead of reusing
//     a pooled or caller-provided buffer;
//   - a method value (x.M used as a value rather than called) — each
//     evaluation allocates a closure binding the receiver;
//   - append whose base operand is returned by a method called through an
//     interface receiver — the implementation is unknown at the call site,
//     so the compiler can neither inline it nor prove the returned slice
//     reusable, and escape analysis heap-allocates what it returns.
//
// Cold paths inside a hot function (error returns that fire once per
// process, build-once construction guarded by sync.Once-style flags) are
// annotated //rootlint:allow hotpath: <reason> at the call site.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "reports allocation-prone constructs in functions marked //rootlint:hotpath",
	Run:  runHotpath,
}

var hotpathFmtAllocs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
}

func runHotpath(pass *Pass) error {
	allows := pass.allows()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcHasDirective(fd, "hotpath") {
				continue
			}
			checkHotFunc(pass, allows, fd)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, allows *Allows, fd *ast.FuncDecl) {
	report := func(pos token.Pos, format string, args ...any) {
		if !allows.Allowed(pos, "hotpath") {
			pass.Reportf(pos, format, args...)
		}
	}

	// Walk with an explicit stack so loop nesting and closure parenthood are
	// known at every node.
	var stack []ast.Node
	inLoop := func() bool {
		for _, n := range stack {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				return true
			}
		}
		return false
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, report, fd, x)
		case *ast.BinaryExpr:
			if x.Op == token.ADD && inLoop() && isStringExpr(pass.Info, x) {
				report(x.OpPos, "%s: string concatenation in a loop allocates per iteration; use a preallocated buffer", fd.Name.Name)
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && inLoop() && len(x.Lhs) == 1 && isStringExpr(pass.Info, x.Lhs[0]) {
				report(x.TokPos, "%s: string concatenation in a loop allocates per iteration; use a preallocated buffer", fd.Name.Name)
			}
		case *ast.FuncLit:
			if capturesOuter(pass, fd, x) && !immediatelyInvoked(stack, x) {
				report(x.Pos(), "%s: closure captures enclosing variables and escapes; captured variables are forced to the heap", fd.Name.Name)
			}
		case *ast.SelectorExpr:
			if sel, ok := pass.Info.Selections[x]; ok && sel.Kind() == types.MethodVal && !isCallFun(stack, x) {
				report(x.Pos(), "%s: method value %s allocates a bound-method closure per evaluation; call the method directly or hoist the binding off the hot path", fd.Name.Name, types.ExprString(x))
			}
		}
		stack = append(stack, n)
		ast.Inspect(n, func(child ast.Node) bool {
			if child == nil || child == n {
				return child == n
			}
			walk(child)
			return false
		})
		stack = stack[:len(stack)-1]
	}
	walk(fd.Body)
}

func checkHotCall(pass *Pass, report func(token.Pos, string, ...any), fd *ast.FuncDecl, call *ast.CallExpr) {
	// fmt.Sprintf and friends.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if ident, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pkgNameOf(pass.Info, ident); ok && pn.Imported().Path() == "fmt" && hotpathFmtAllocs[sel.Sel.Name] {
				report(call.Pos(), "%s: fmt.%s allocates on every call; hot paths must format into reused buffers or return sentinel errors", fd.Name.Name, sel.Sel.Name)
			}
		}
	}
	// append onto a freshly allocated slice.
	if ident, ok := call.Fun.(*ast.Ident); ok && len(call.Args) > 0 {
		if obj, isBuiltin := pass.Info.Uses[ident].(*types.Builtin); isBuiltin && obj.Name() == "append" {
			if reason, fresh := freshSliceExpr(pass.Info, call.Args[0]); fresh {
				report(call.Pos(), "%s: append onto %s allocates a fresh backing array per call; reuse a pooled or caller-provided slice", fd.Name.Name, reason)
			}
		}
	}
}

// freshSliceExpr reports whether e unavoidably allocates a new slice right at
// the append site.
func freshSliceExpr(info *types.Info, e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return "a slice literal", true
	case *ast.CallExpr:
		if ident, ok := x.Fun.(*ast.Ident); ok {
			if b, isBuiltin := info.Uses[ident].(*types.Builtin); isBuiltin && b.Name() == "make" {
				return "make(...)", true
			}
		}
		// Conversions like []byte(s): Fun is a type expression.
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
			if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice {
				// []T(nil)-style conversions of an untyped nil never copy.
				if len(x.Args) == 1 {
					if argTV, ok := info.Types[x.Args[0]]; ok && argTV.IsNil() {
						return "", false
					}
				}
				return "a slice conversion", true
			}
		}
		// A slice returned by a method dispatched through an interface: the
		// implementation behind the call is unknown, so the result must be
		// assumed freshly heap-allocated.
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal && types.IsInterface(s.Recv()) {
				return "a slice returned through an interface method", true
			}
		}
	}
	return "", false
}

// isCallFun reports whether e is the function operand of its nearest
// enclosing call — x.M() dispatches directly, while a bare x.M binds.
func isCallFun(stack []ast.Node, e ast.Expr) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.CallExpr:
			return ast.Unparen(parent.Fun) == e
		default:
			return false
		}
	}
	return false
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// capturesOuter reports whether lit references a variable declared in fd but
// outside lit itself.
func capturesOuter(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		ident, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		obj, ok := pass.Info.Uses[ident].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		pos := obj.Pos()
		if pos >= fd.Pos() && pos < fd.End() && !(pos >= lit.Pos() && pos < lit.End()) {
			captured = true
		}
		return true
	})
	return captured
}

// immediatelyInvoked reports whether lit's direct parent is a call whose
// function operand is lit itself: func(){...}() does not escape.
func immediatelyInvoked(stack []ast.Node, lit *ast.FuncLit) bool {
	if len(stack) == 0 {
		return false
	}
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.CallExpr:
			return ast.Unparen(parent.Fun) == lit
		default:
			return false
		}
	}
	return false
}
