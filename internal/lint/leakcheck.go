package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Leakcheck flags `go func` literals that can block forever on an unbuffered
// channel: a bare send, receive, or range with no select escape. If the peer
// goroutine exits early (error return, closed listener, test timeout), the
// blocked sender leaks — the bug class PR 8's blast shutdown work fixed by
// hand, now caught structurally.
//
// A channel is treated as unbuffered only when every make() assigned to it
// in the package is capacity-free, so unknown or buffered channels stay
// silent. A select with two or more cases (including default) is an escape;
// a single-case select is equivalent to the bare operation and is still a
// finding. Intentional blocking (a worker parked on a work channel whose
// sender provably closes it) carries //rootlint:allow leakcheck: <reason>.
var Leakcheck = &Analyzer{
	Name: "leakcheck",
	Doc:  "reports goroutines that can block forever on unbuffered channel ops with no select escape",
	Run:  runLeakcheck,
}

// chanState tracks what the package's assignments prove about a channel var.
type chanState int

const (
	chanUnknown chanState = iota
	chanUnbuffered
	chanPoisoned // buffered or assigned something we cannot see through
)

func runLeakcheck(pass *Pass) error {
	allows := pass.allows()
	states := collectChanStates(pass)
	unbuffered := func(e ast.Expr) (string, bool) {
		obj := chanObj(pass.Info, e)
		if obj == nil || states[obj] != chanUnbuffered {
			return "", false
		}
		return obj.Name(), true
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			checkGoroutineBody(pass, allows, lit.Body, unbuffered)
			return true
		})
	}
	return nil
}

func checkGoroutineBody(pass *Pass, allows *Allows, body *ast.BlockStmt, unbuffered func(ast.Expr) (string, bool)) {
	report := func(pos token.Pos, format string, args ...any) {
		if !allows.Allowed(pos, "leakcheck") {
			pass.Reportf(pos, format, args...)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectStmt:
			// Two or more cases (default included) give the goroutine an
			// escape; a single-case select is the bare op in disguise.
			if len(x.Body.List) >= 2 {
				return false
			}
		case *ast.SendStmt:
			if name, ok := unbuffered(x.Chan); ok {
				report(x.Arrow, "goroutine blocks on send to unbuffered channel %s with no select escape; a vanished receiver leaks it", name)
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if name, ok := unbuffered(x.X); ok {
					report(x.OpPos, "goroutine blocks on receive from unbuffered channel %s with no select escape; a vanished sender leaks it", name)
				}
			}
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					if name, ok := unbuffered(x.X); ok {
						report(x.Range, "goroutine ranges over unbuffered channel %s with no select escape; it leaks unless the channel is always closed", name)
					}
				}
			}
		}
		return true
	})
}

// collectChanStates scans the package's assignments for make(chan T) calls
// and classifies each channel variable or field.
func collectChanStates(pass *Pass) map[types.Object]chanState {
	states := make(map[types.Object]chanState)
	mark := func(obj types.Object, s chanState) {
		if obj == nil {
			return
		}
		if s == chanPoisoned || states[obj] == chanPoisoned {
			states[obj] = chanPoisoned
			return
		}
		states[obj] = s
	}
	classify := func(lhs, rhs ast.Expr) {
		obj := chanObj(pass.Info, lhs)
		if obj == nil {
			return
		}
		if t := pass.Info.TypeOf(lhs); t == nil {
			return
		} else if _, isChan := t.Underlying().(*types.Chan); !isChan {
			return
		}
		switch state := makeChanState(pass.Info, rhs); state {
		case chanUnknown:
			mark(obj, chanPoisoned)
		default:
			mark(obj, state)
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) == len(x.Rhs) {
					for i := range x.Lhs {
						classify(x.Lhs[i], x.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(x.Names) == len(x.Values) {
					for i := range x.Names {
						classify(x.Names[i], x.Values[i])
					}
				}
			case *ast.KeyValueExpr:
				// Composite-literal field init: ch: make(chan T).
				if key, ok := x.Key.(*ast.Ident); ok {
					if obj, isVar := pass.Info.Uses[key].(*types.Var); isVar && obj.IsField() {
						if _, isChan := obj.Type().Underlying().(*types.Chan); isChan {
							state := makeChanState(pass.Info, x.Value)
							if state == chanUnknown {
								state = chanPoisoned
							}
							mark(obj, state)
						}
					}
				}
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					mark(chanObj(pass.Info, x.X), chanPoisoned)
				}
			}
			return true
		})
	}
	return states
}

// makeChanState classifies a right-hand side: make(chan T) is unbuffered,
// make(chan T, n) is buffered (poisoned — it cannot block-forever the same
// way), anything else is unknown.
func makeChanState(info *types.Info, rhs ast.Expr) chanState {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return chanUnknown
	}
	ident, ok := call.Fun.(*ast.Ident)
	if !ok {
		return chanUnknown
	}
	if b, ok := info.Uses[ident].(*types.Builtin); !ok || b.Name() != "make" {
		return chanUnknown
	}
	if tv, ok := info.Types[call.Args[0]]; !ok || tv.Type == nil {
		return chanUnknown
	} else if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return chanUnknown
	}
	if len(call.Args) == 1 {
		return chanUnbuffered
	}
	return chanPoisoned
}

// chanObj resolves a channel expression to the variable or field it names.
func chanObj(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[x].(*types.Var); ok {
			return obj
		}
		if obj, ok := info.Defs[x].(*types.Var); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[x.Sel].(*types.Var); ok && obj.IsField() {
			return obj
		}
	}
	return nil
}
