// Package lint implements rootlint, the repository's static-analysis suite.
// It mechanically enforces the invariants the campaign engine's guarantees
// rest on — no wall-clock or unseeded randomness in simulation packages
// (byte-identical reports), no allocation-prone constructs in functions
// marked as hot paths (the PR 2 zero-alloc contract), every failpoint site
// registered and chaos-tested (crash-safety coverage), and no map-iteration
// writes into ordered sinks (byte-identical output again).
//
// The framework mirrors golang.org/x/tools/go/analysis — an Analyzer value
// with a per-package Run over a typed Pass, fixture tests driven by
// "// want" comments — but is built purely on the standard library's go/ast
// and go/types, because this module deliberately carries no external
// dependencies.
//
// # Annotation grammar
//
// Code communicates with the analyzers through //rootlint: directives:
//
//	//rootlint:hotpath
//	    On a function's doc comment: opts the function into the hotpath
//	    analyzer's zero-alloc contract.
//
//	//rootlint:allow <category>[,<category>...]: <reason>
//	    Suppresses findings of the named categories on the same line (when
//	    trailing code) or on the line directly below (when standing alone).
//	    The reason is mandatory: an allow without a justification is itself
//	    a finding. Categories: wallclock, globalrand, hotpath, maporder,
//	    lockcheck, leakcheck.
//
//	//rootlint:guardedby <mutexField>
//	    On a struct field (or package var): every access must happen while
//	    the named sync.Mutex/RWMutex field on the same base value is held.
//
//	//rootlint:atomic
//	    On a struct field: every access must go through the sync/atomic
//	    API; any plain read or write (mixed regimes) is a finding.
//
//	//rootlint:shardconfined <root>[,<root>...]
//	    On a struct field: the field may be touched only from the named
//	    root functions or from functions reachable exclusively from them
//	    (a whole-program caller walk). Roots are names in the struct's
//	    package: "loop" or "Type.method".
//
//	//rootlint:immutable-after-start
//	    On a struct field: written only by constructors (New*/new*), init,
//	    Set*/set* swap points, and Start/start; read-only everywhere else.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the program's FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Analyzer is one named check. Exactly one of Run and RunProgram is
// typically set: Run is invoked once per package with a typed Pass, while
// RunProgram is invoked once with the whole Program, for checks that need
// cross-package state (the failpoint site registry).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
	// RunProgram runs after every per-package pass, over the whole program.
	RunProgram func(*Program) error
}

// Pass presents one type-checked package to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Path is the package's import path ("repro/internal/zone").
	Path string
	// Pkg and Info hold the type-checker's results for Files.
	Pkg  *types.Package
	Info *types.Info
	// Files are the package's non-test files.
	Files []*ast.File
	// TestFiles are the package directory's _test.go files, parsed but not
	// type-checked (they may belong to the external _test package). Only
	// syntactic checks — like failpoint chaos coverage — may use them.
	TestFiles []*ast.File

	prog *Program
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.prog.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// PackageInfo is one loaded package within a Program.
type PackageInfo struct {
	Path      string
	Pkg       *types.Package
	Info      *types.Info
	Files     []*ast.File
	TestFiles []*ast.File
	// Allows holds the package's parsed //rootlint:allow directives.
	Allows *Allows
}

// Program is a load of packages sharing one FileSet.
type Program struct {
	Fset     *token.FileSet
	Packages []*PackageInfo

	diags    []Diagnostic
	reporter string // analyzer currently reporting via RunProgram
}

func (prog *Program) report(d Diagnostic) { prog.diags = append(prog.diags, d) }

// Reportf records a finding from a RunProgram analyzer.
func (prog *Program) Reportf(a *Analyzer, pos token.Pos, format string, args ...any) {
	prog.report(Diagnostic{Pos: pos, Analyzer: a.Name, Message: fmt.Sprintf(format, args...)})
}

// RunAnalyzers applies each analyzer to every package of prog (Run), then to
// the program as a whole (RunProgram), returning findings sorted by position.
func RunAnalyzers(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	prog.diags = nil
	for _, a := range analyzers {
		if a.Run != nil {
			for _, pkg := range prog.Packages {
				pass := &Pass{
					Analyzer: a, Fset: prog.Fset, Path: pkg.Path,
					Pkg: pkg.Pkg, Info: pkg.Info,
					Files: pkg.Files, TestFiles: pkg.TestFiles,
					prog: prog,
				}
				if err := a.Run(pass); err != nil {
					return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
				}
			}
		}
		if a.RunProgram != nil {
			if err := a.RunProgram(prog); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
		}
	}
	sort.SliceStable(prog.diags, func(i, j int) bool { return prog.diags[i].Pos < prog.diags[j].Pos })
	return prog.diags, nil
}

// Suite returns the full rootlint analyzer suite in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{Directive, Detrand, Hotpath, Failpointsite, Metricname, Qlogfield, Orderedmap, Lockcheck, Leakcheck}
}

// --- //rootlint: directive parsing -----------------------------------------

const directivePrefix = "//rootlint:"

// allowEntry is one parsed //rootlint:allow directive.
type allowEntry struct {
	pos        token.Pos
	line       int  // line the directive appears on
	standalone bool // comment is alone on its line (covers the next line)
	categories []string
	reason     string
	malformed  string // non-empty: grammar error description
}

// Allows indexes a package's allow directives by file and line.
type Allows struct {
	fset    *token.FileSet
	entries map[string][]allowEntry // file name -> entries
}

// knownCategories is the closed set of suppressible finding categories.
var knownCategories = map[string]bool{
	"wallclock":  true,
	"globalrand": true,
	"hotpath":    true,
	"maporder":   true,
	"lockcheck":  true,
	"leakcheck":  true,
}

// CollectAllows parses every //rootlint:allow directive in files. Grammar
// errors are preserved on the entries for the directive analyzer to report.
func CollectAllows(fset *token.FileSet, files []*ast.File) *Allows {
	a := &Allows{fset: fset, entries: make(map[string][]allowEntry)}
	for _, f := range files {
		tf := fset.File(f.Pos())
		if tf == nil {
			continue
		}
		// Record which lines hold non-comment code, so a directive can be
		// classified as trailing (same line as code) or standalone.
		codeLines := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case nil, *ast.Comment, *ast.CommentGroup, *ast.File:
				return true
			default:
				codeLines[fset.Position(n.Pos()).Line] = true
				return true
			}
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				body := strings.TrimPrefix(c.Text, directivePrefix)
				verb, rest, _ := strings.Cut(body, " ")
				line := fset.Position(c.Pos()).Line
				switch {
				case verb == "hotpath" && strings.TrimSpace(rest) == "":
					// Handled by the hotpath analyzer via doc comments.
				case verb == "allow" || strings.HasPrefix(verb, "allow"):
					e := parseAllow(rest)
					e.pos, e.line = c.Pos(), line
					e.standalone = !codeLines[line]
					a.entries[tf.Name()] = append(a.entries[tf.Name()], e)
				case guardVerbs[verb]:
					// Guard-regime directives are consumed by the lockcheck
					// analyzer; here only their grammar is validated.
					if msg := checkGuardGrammar(verb, rest); msg != "" {
						a.entries[tf.Name()] = append(a.entries[tf.Name()], allowEntry{
							pos: c.Pos(), line: line, malformed: msg,
						})
					}
				default:
					a.entries[tf.Name()] = append(a.entries[tf.Name()], allowEntry{
						pos: c.Pos(), line: line,
						malformed: fmt.Sprintf("unknown rootlint directive %q", verb),
					})
				}
			}
		}
	}
	return a
}

// guardVerbs is the set of lockcheck guard-regime directive verbs.
var guardVerbs = map[string]bool{
	"guardedby":             true,
	"atomic":                true,
	"shardconfined":         true,
	"immutable-after-start": true,
}

// checkGuardGrammar validates the argument shape of a guard-regime
// directive, returning a description of the grammar error ("" when valid).
func checkGuardGrammar(verb, rest string) string {
	rest = strings.TrimSpace(rest)
	switch verb {
	case "guardedby":
		if rest == "" {
			return "guardedby needs a mutex field name: //rootlint:guardedby <mutexField>"
		}
		if !isGuardName(rest) {
			return fmt.Sprintf("guardedby argument %q is not a field name", rest)
		}
	case "atomic", "immutable-after-start":
		if rest != "" {
			return fmt.Sprintf("%s takes no argument", verb)
		}
	case "shardconfined":
		if rest == "" {
			return "shardconfined needs at least one root function: //rootlint:shardconfined <root>[,<root>...]"
		}
		for _, r := range strings.Split(rest, ",") {
			if !isGuardName(strings.TrimSpace(r)) {
				return fmt.Sprintf("shardconfined root %q is not a function name", strings.TrimSpace(r))
			}
		}
	}
	return ""
}

// isGuardName reports whether s is an identifier or a Type.name pair.
func isGuardName(s string) bool {
	if s == "" {
		return false
	}
	for i, part := range strings.Split(s, ".") {
		if i > 1 || part == "" {
			return false
		}
		for j, r := range part {
			ok := r == '_' || ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || (j > 0 && '0' <= r && r <= '9')
			if !ok {
				return false
			}
		}
	}
	return true
}

// parseAllow parses the tail of "//rootlint:allow <cats>: <reason>".
func parseAllow(rest string) allowEntry {
	var e allowEntry
	cats, reason, ok := strings.Cut(rest, ":")
	if !ok {
		e.malformed = "allow directive needs a reason: //rootlint:allow <category>: <reason>"
		return e
	}
	for _, c := range strings.Split(cats, ",") {
		c = strings.TrimSpace(c)
		if c == "" {
			continue
		}
		if !knownCategories[c] {
			e.malformed = fmt.Sprintf("unknown allow category %q", c)
			return e
		}
		e.categories = append(e.categories, c)
	}
	if len(e.categories) == 0 {
		e.malformed = "allow directive names no category"
		return e
	}
	e.reason = strings.TrimSpace(reason)
	if e.reason == "" {
		e.malformed = "allow directive has an empty reason"
	}
	return e
}

// Allowed reports whether a finding of category at pos is suppressed by a
// well-formed allow directive: one trailing on the same line, or one standing
// alone on the line directly above.
func (a *Allows) Allowed(pos token.Pos, category string) bool {
	p := a.fset.Position(pos)
	for _, e := range a.entries[p.Filename] {
		if e.malformed != "" {
			continue
		}
		covers := e.line == p.Line || (e.standalone && e.line == p.Line-1)
		if !covers {
			continue
		}
		for _, c := range e.categories {
			if c == category {
				return true
			}
		}
	}
	return false
}

// Directive validates the //rootlint: annotation grammar itself: unknown
// verbs, allows without a reason or with an unknown category. Keeping this a
// separate analyzer means a malformed suppression is a loud failure instead
// of a silently ignored comment.
var Directive = &Analyzer{
	Name: "directive",
	Doc:  "checks that //rootlint: annotations follow the documented grammar",
	Run: func(pass *Pass) error {
		allows := pass.allows()
		for _, entries := range allows.entries {
			for _, e := range entries {
				if e.malformed != "" {
					pass.Reportf(e.pos, "%s", e.malformed)
				}
			}
		}
		return nil
	},
}

// allows returns the package's parsed allow directives, caching on the
// program's PackageInfo so every analyzer shares one parse.
func (p *Pass) allows() *Allows {
	for _, pkg := range p.prog.Packages {
		if pkg.Path == p.Path {
			return p.prog.AllowsFor(pkg)
		}
	}
	return CollectAllows(p.Fset, p.Files)
}

// AllowsFor returns pkg's parsed allow directives, caching on the
// PackageInfo so per-package passes and whole-program analyzers share one
// parse.
func (prog *Program) AllowsFor(pkg *PackageInfo) *Allows {
	if pkg.Allows == nil {
		pkg.Allows = CollectAllows(prog.Fset, pkg.Files)
	}
	return pkg.Allows
}

// funcHasDirective reports whether decl's doc comment carries the given
// //rootlint: verb (e.g. "hotpath").
func funcHasDirective(decl *ast.FuncDecl, verb string) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if c.Text == directivePrefix+verb {
			return true
		}
	}
	return false
}

// pkgNameOf resolves ident to the *types.PkgName it denotes, if any.
func pkgNameOf(info *types.Info, ident *ast.Ident) (*types.PkgName, bool) {
	if ident == nil {
		return nil, false
	}
	obj, ok := info.Uses[ident]
	if !ok {
		return nil, false
	}
	pn, ok := obj.(*types.PkgName)
	return pn, ok
}
