// Package linttest runs lint analyzers over testdata fixtures, mirroring
// golang.org/x/tools/go/analysis/analysistest: fixture source lines carry
// `// want "regexp"` comments naming the diagnostics the analyzer must
// report on that line, and the harness fails the test on any mismatch in
// either direction — a missing diagnostic (the analyzer went blind) or an
// unexpected one (a false positive on clean code).
package linttest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantRE extracts the quoted patterns of a want comment.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<fixture> (relative to the test's working
// directory) as one program and checks analyzer's diagnostics against the
// fixture's want comments.
func Run(t *testing.T, analyzer *lint.Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	prog, err := lint.Load(lint.LoadConfig{Dir: dir, ModulePath: fixture})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}

	var wants []*want
	for _, pkg := range prog.Packages {
		for _, files := range [][]*ast.File{pkg.Files, pkg.TestFiles} {
			for _, f := range files {
				wants = append(wants, collectWants(t, prog.Fset, f)...)
			}
		}
	}

	diags, err := lint.RunAnalyzers(prog, []*lint.Analyzer{analyzer})
	if err != nil {
		t.Fatalf("running %s on %s: %v", analyzer.Name, fixture, err)
	}

	for _, d := range diags {
		p := prog.Fset.Position(d.Pos)
		if !claim(wants, p.Filename, p.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(p.Filename), p.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(w.file), w.line, w.pattern)
		}
	}
}

// claim marks the first unmatched want on (file, line) whose pattern
// matches msg.
func claim(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.pattern.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses `// want "p1" "p2"` comments.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File) []*want {
	t.Helper()
	var out []*want
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, "want ")
			if !ok {
				// A rootlint directive under test carries its expectation in
				// the same comment (`//rootlint:bogus // want "..."`): only
				// one line comment fits on a line, and the diagnostic lands
				// on the comment's own line.
				if i := strings.Index(text, "// want "); i >= 0 {
					rest, ok = text[i+len("// want "):], true
				}
			}
			if !ok {
				continue
			}
			p := fset.Position(c.Pos())
			matches := wantRE.FindAllStringSubmatch(rest, -1)
			if len(matches) == 0 {
				t.Fatalf("%s:%d: malformed want comment %q", filepath.Base(p.Filename), p.Line, c.Text)
			}
			for _, m := range matches {
				pat, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", filepath.Base(p.Filename), p.Line, m[1], err)
				}
				out = append(out, &want{file: p.Filename, line: p.Line, pattern: pat})
			}
		}
	}
	return out
}

// MustLoadModule loads the enclosing module for whole-repo assertions.
func MustLoadModule(t *testing.T) *lint.Program {
	t.Helper()
	prog, err := lint.LoadModule(".")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	return prog
}

// Format renders diagnostics for failure messages.
func Format(fset *token.FileSet, diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		p := fset.Position(d.Pos)
		fmt.Fprintf(&b, "%s:%d:%d: [%s] %s\n", p.Filename, p.Line, p.Column, d.Analyzer, d.Message)
	}
	return b.String()
}
