package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// LoadConfig describes a source tree to load.
type LoadConfig struct {
	// Dir is the root directory to walk for packages.
	Dir string
	// ModulePath, when non-empty, is the import-path prefix mapped onto Dir
	// (the module path from go.mod). When empty, packages import each other
	// by Dir-relative paths — the layout linttest fixtures use.
	ModulePath string
}

// Load walks cfg.Dir, parses every package, and type-checks them in
// dependency order. Standard-library imports resolve through the compiler's
// source importer, so loading works offline in a zero-dependency module.
// Test files are parsed into PackageInfo.TestFiles but not type-checked.
func Load(cfg LoadConfig) (*Program, error) {
	fset := token.NewFileSet()
	dirs, err := packageDirs(cfg.Dir)
	if err != nil {
		return nil, err
	}
	raw := make(map[string]*rawPackage)
	var order []string
	for _, dir := range dirs {
		rp, err := parseDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if rp == nil {
			continue
		}
		rel, err := filepath.Rel(cfg.Dir, dir)
		if err != nil {
			return nil, err
		}
		rp.path = importPathFor(cfg.ModulePath, rel)
		raw[rp.path] = rp
		order = append(order, rp.path)
	}
	sort.Strings(order)

	sorted, err := topoSort(raw, order)
	if err != nil {
		return nil, err
	}

	prog := &Program{Fset: fset}
	local := make(map[string]*types.Package)
	fallback := importer.ForCompiler(fset, "source", nil)
	imp := &chainImporter{local: local, fallback: fallback}
	for _, path := range sorted {
		rp := raw[path]
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
			Implicits:  make(map[ast.Node]types.Object),
		}
		var typeErrs []string
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				if len(typeErrs) < 10 {
					typeErrs = append(typeErrs, err.Error())
				}
			},
		}
		pkg, _ := conf.Check(path, fset, rp.files, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("lint: type-checking %s:\n\t%s", path, strings.Join(typeErrs, "\n\t"))
		}
		local[path] = pkg
		prog.Packages = append(prog.Packages, &PackageInfo{
			Path: path, Pkg: pkg, Info: info,
			Files: rp.files, TestFiles: rp.testFiles,
		})
	}
	return prog, nil
}

// LoadModule locates the enclosing go.mod starting at dir and loads the
// whole module.
func LoadModule(dir string) (*Program, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return Load(LoadConfig{Dir: root, ModulePath: modPath})
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: %s has no module directive", gomod)
}

func importPathFor(modulePath, rel string) string {
	rel = filepath.ToSlash(rel)
	switch {
	case rel == "." && modulePath != "":
		return modulePath
	case rel == ".":
		return "."
	case modulePath != "":
		return modulePath + "/" + rel
	default:
		return rel
	}
}

// packageDirs lists every directory under root that may hold a package,
// skipping testdata trees, hidden directories, and vendored code.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// rawPackage is one parsed-but-unchecked package directory.
type rawPackage struct {
	path      string
	name      string
	files     []*ast.File
	testFiles []*ast.File
	imports   map[string]bool
}

// parseDir parses dir's Go files. Returns nil when dir holds no Go files.
// A directory must hold exactly one non-test package (plus optionally its
// external _test package, which lands in testFiles).
func parseDir(fset *token.FileSet, dir string) (*rawPackage, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rp := &rawPackage{imports: make(map[string]bool)}
	buildCtx := build.Default
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		// Honor build constraints (//go:build lines and _GOOS/_GOARCH file
		// suffixes) for the host platform, exactly as the compiler would —
		// otherwise platform-variant files (e.g. reuseport_linux.go and its
		// !linux fallback) type-check as duplicate declarations.
		if match, err := buildCtx.MatchFile(dir, e.Name()); err != nil {
			return nil, err
		} else if !match {
			continue
		}
		full := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(e.Name(), "_test.go") {
			rp.testFiles = append(rp.testFiles, f)
			continue
		}
		if rp.name == "" {
			rp.name = f.Name.Name
		} else if rp.name != f.Name.Name {
			return nil, fmt.Errorf("lint: %s holds two packages: %s and %s", dir, rp.name, f.Name.Name)
		}
		rp.files = append(rp.files, f)
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return nil, err
			}
			rp.imports[p] = true
		}
	}
	if len(rp.files) == 0 && len(rp.testFiles) == 0 {
		return nil, nil
	}
	return rp, nil
}

// topoSort orders paths so every package is checked after its local imports.
func topoSort(raw map[string]*rawPackage, order []string) ([]string, error) {
	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[string]int)
	var sorted []string
	var visit func(path string, stack []string) error
	visit = func(path string, stack []string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle: %s", strings.Join(append(stack, path), " -> "))
		}
		state[path] = visiting
		rp := raw[path]
		var deps []string
		for imp := range rp.imports {
			if _, ok := raw[imp]; ok {
				deps = append(deps, imp)
			}
		}
		sort.Strings(deps)
		for _, dep := range deps {
			if err := visit(dep, append(stack, path)); err != nil {
				return err
			}
		}
		state[path] = done
		sorted = append(sorted, path)
		return nil
	}
	for _, path := range order {
		if err := visit(path, nil); err != nil {
			return nil, err
		}
	}
	return sorted, nil
}

// chainImporter resolves module-local packages from the in-progress load and
// everything else (the standard library) through the source importer.
type chainImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := c.local[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("lint: import %q failed to type-check", path)
		}
		return pkg, nil
	}
	return c.fallback.Import(path)
}
