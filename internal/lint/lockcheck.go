package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Lockcheck makes the repository's concurrency discipline machine-checked.
// Fields of concurrently-used structs declare their protection regime with a
// //rootlint: directive, and the analyzer proves every access site honors it:
//
//   - //rootlint:guardedby <mutexField> — the access must happen while the
//     named sync.Mutex/RWMutex on the same base value is held, tracked by an
//     intra-procedural lock-state walk over Lock/Unlock/RLock/RUnlock and
//     defer pairs. Helpers that are only ever called with the lock held are
//     proven by call-site inference: a function's entry lock set is the
//     intersection of the lock sets at all of its call sites.
//   - //rootlint:atomic — every access must go through the sync/atomic API
//     (atomic.AddInt64(&s.f, ...) for plain-typed fields, s.f.Load()/Store()
//     for atomic-typed ones). A plain read or write is the classic mixed
//     atomic/plain bug and is always a finding.
//   - //rootlint:shardconfined <root>[,<root>...] — the field is owned by one
//     goroutine: it may be touched only inside the named root functions or
//     inside functions reachable exclusively from them, established by a
//     whole-program caller walk (the same shape as failpointsite's).
//   - //rootlint:immutable-after-start — written only by constructors
//     (New*/new*/make*/Clone*), init, Set*/set* swap points, and Start/start;
//     read-only everywhere else.
//
// Coverage is enforced, not optional: any struct that carries sync state (a
// mutex, an atomic, or a padded wrapper of one) must declare a regime on
// every plain field, so deleting an annotation is itself a finding. A field
// whose regime is real but unprovable (lock-free publication, external
// locking) carries a reasoned //rootlint:allow lockcheck: <reason> instead.
//
// Known limits, chosen to keep the analysis dependency-free and fast: lock
// state is tracked per function with branch merging but loops and switches
// are walked conservatively (acquisitions inside them do not survive the
// statement); aliases are matched by expression spelling (c.mu and a copy
// d := &c.deg; d.mu agree only when the access uses the same base); closures
// inherit their enclosing function's confinement. Test files are not
// analyzed — tests may poke internals single-threaded.
var Lockcheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "proves declared field protection regimes (guardedby/atomic/shardconfined/immutable-after-start)",
}

func init() {
	// Assigned in init to break the initialization cycle through Suite.
	Lockcheck.RunProgram = runLockcheck
}

type guardRegime int

const (
	regimeGuarded guardRegime = iota
	regimeAtomic
	regimeShard
	regimeImmutable
)

func (r guardRegime) String() string {
	switch r {
	case regimeGuarded:
		return "guardedby"
	case regimeAtomic:
		return "atomic"
	case regimeShard:
		return "shardconfined"
	default:
		return "immutable-after-start"
	}
}

// guard is one field's declared protection regime.
type guard struct {
	regime guardRegime
	mutex  string   // guardedby: the mutex field (or package var) name
	roots  []string // shardconfined: root function names in the owning package
	owner  string   // declaring struct type name ("" for a package var)
	pkg    *PackageInfo
}

// lockMode distinguishes read locks from write locks on an RWMutex.
type lockMode int

const (
	lockR lockMode = iota + 1
	lockW
)

// lockInfo is one held lock: its mode and whether the mutex is a
// package-level var (those survive same-package call-site translation).
type lockInfo struct {
	mode     lockMode
	pkgLevel bool
}

type lockSet map[string]lockInfo

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// intersect keeps keys held in both sets, at the weaker mode.
func intersectLocks(a, b lockSet) lockSet {
	out := make(lockSet)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			m := va.mode
			if vb.mode < m {
				m = vb.mode
			}
			out[k] = lockInfo{mode: m, pkgLevel: va.pkgLevel && vb.pkgLevel}
		}
	}
	return out
}

func sameLocks(a, b lockSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		if vb, ok := b[k]; !ok || va.mode != vb.mode {
			return false
		}
	}
	return true
}

// lcFunc is one function declaration in the program.
type lcFunc struct {
	obj  *types.Func
	decl *ast.FuncDecl
	pkg  *PackageInfo
	// entry is the inferred lock set held on entry: the intersection of the
	// lock sets at every call site (empty for roots of the call graph).
	entry lockSet
}

type lcState struct {
	prog   *Program
	guards map[types.Object]*guard
	funcs  map[*types.Func]*lcFunc
	// order keeps deterministic iteration for the fixpoint and final walk.
	order []*lcFunc
	// callers[f] is the set of functions containing a call to f.
	callers map[*types.Func]map[*types.Func]bool
	// candidates accumulates per-callee entry-set intersections during one
	// inference round.
	candidates map[*types.Func]lockSet
	hasSite    map[*types.Func]bool
	// confinedCache memoizes the confined-function set per shard guard.
	confinedCache map[*guard]map[*types.Func]bool
}

func runLockcheck(prog *Program) error {
	lc := &lcState{
		prog:          prog,
		guards:        make(map[types.Object]*guard),
		funcs:         make(map[*types.Func]*lcFunc),
		callers:       make(map[*types.Func]map[*types.Func]bool),
		confinedCache: make(map[*guard]map[*types.Func]bool),
	}
	lc.collectGuards()
	lc.indexFuncs()
	// Call-site lock inference to fixpoint: entry sets only grow, so this
	// terminates; the round cap is a backstop for pathological recursion.
	for round := 0; round < 5; round++ {
		if !lc.inferRound() {
			break
		}
	}
	lc.emit()
	return nil
}

// --- directive collection and coverage --------------------------------------

// collectGuards parses guard directives off struct fields and package vars,
// and reports coverage gaps: a struct carrying sync state must declare a
// regime on every plain field.
func (lc *lcState) collectGuards() {
	for _, pkg := range lc.prog.Packages {
		allows := lc.prog.AllowsFor(pkg)
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				switch gd.Tok {
				case token.TYPE:
					for _, spec := range gd.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						if st, ok := ts.Type.(*ast.StructType); ok {
							lc.collectStruct(pkg, allows, ts, st)
						}
					}
				case token.VAR:
					for _, spec := range gd.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						g := guardFromComments(gd.Doc, vs.Doc, vs.Comment)
						if g == nil {
							continue
						}
						g.pkg = pkg
						for _, name := range vs.Names {
							if obj := pkg.Info.Defs[name]; obj != nil {
								lc.guards[obj] = g
							}
						}
					}
				}
			}
		}
	}
}

func (lc *lcState) collectStruct(pkg *PackageInfo, allows *Allows, ts *ast.TypeSpec, st *ast.StructType) {
	trigger := false
	for _, field := range st.Fields.List {
		if t := fieldType(pkg, field); t != nil && isSyncCarrier(t) {
			trigger = true
			break
		}
	}
	for _, field := range st.Fields.List {
		g := guardFromComments(field.Doc, field.Comment)
		if g != nil {
			g.owner, g.pkg = ts.Name.Name, pkg
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					lc.guards[obj] = g
				}
			}
			continue
		}
		if !trigger || len(field.Names) == 0 {
			continue // embedded fields cannot be named by a directive
		}
		if t := fieldType(pkg, field); t != nil && isSelfSync(t, nil) {
			continue // mutexes, atomics, channels synchronize themselves
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if allows.Allowed(name.Pos(), "lockcheck") {
				continue
			}
			lc.prog.Reportf(Lockcheck, name.Pos(),
				"field %s.%s shares a struct with sync state but declares no protection regime (//rootlint:guardedby/atomic/shardconfined/immutable-after-start, or a reasoned allow)",
				ts.Name.Name, name.Name)
		}
	}
}

// guardFromComments extracts the first guard directive in the given comment
// groups. Malformed directives are skipped here — the directive analyzer
// reports their grammar errors.
func guardFromComments(groups ...*ast.CommentGroup) *guard {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			body, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			verb, rest, _ := strings.Cut(body, " ")
			if !guardVerbs[verb] || checkGuardGrammar(verb, rest) != "" {
				continue
			}
			rest = strings.TrimSpace(rest)
			switch verb {
			case "guardedby":
				return &guard{regime: regimeGuarded, mutex: rest}
			case "atomic":
				return &guard{regime: regimeAtomic}
			case "immutable-after-start":
				return &guard{regime: regimeImmutable}
			case "shardconfined":
				var roots []string
				for _, r := range strings.Split(rest, ",") {
					roots = append(roots, strings.TrimSpace(r))
				}
				return &guard{regime: regimeShard, roots: roots}
			}
		}
	}
	return nil
}

func fieldType(pkg *PackageInfo, field *ast.Field) types.Type {
	if tv, ok := pkg.Info.Types[field.Type]; ok {
		return tv.Type
	}
	return nil
}

// isSyncCarrier reports whether t is pure synchronization state that marks
// its struct as concurrently used: a mutex, an atomic, or a wrapper (array/
// struct) built of nothing else.
func isSyncCarrier(t types.Type) bool {
	return isSelfSync(t, nil) && containsSyncPrim(t, nil)
}

// isSelfSync reports whether a field of type t needs no guard directive
// because the type synchronizes (or trivially owns) itself.
func isSelfSync(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return true
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if p := named.Obj().Pkg(); p != nil {
			switch p.Path() {
			case "sync", "sync/atomic":
				return true
			}
		}
		return isSelfSync(named.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return true
	case *types.Pointer:
		if named, ok := u.Elem().(*types.Named); ok {
			if p := named.Obj().Pkg(); p != nil && (p.Path() == "sync" || p.Path() == "sync/atomic") {
				return true
			}
		}
		return false
	case *types.Array:
		return isSelfSync(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if f.Name() == "_" {
				continue
			}
			if !isSelfSync(f.Type(), seen) {
				return false
			}
		}
		return true
	}
	return false
}

// containsSyncPrim reports whether t contains a mutex or atomic anywhere.
func containsSyncPrim(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if p := named.Obj().Pkg(); p != nil {
			switch p.Path() {
			case "sync/atomic":
				return true
			case "sync":
				n := named.Obj().Name()
				return n == "Mutex" || n == "RWMutex"
			}
		}
		return containsSyncPrim(named.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Array:
		return containsSyncPrim(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsSyncPrim(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// --- function index and lock-state inference --------------------------------

func (lc *lcState) indexFuncs() {
	for _, pkg := range lc.prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fn := &lcFunc{obj: obj, decl: fd, pkg: pkg, entry: lockSet{}}
				lc.funcs[obj] = fn
				lc.order = append(lc.order, fn)
			}
		}
	}
}

// inferRound walks every function once, recomputing each callee's entry lock
// set as the intersection of its call sites. Reports whether any entry grew.
func (lc *lcState) inferRound() bool {
	lc.candidates = make(map[*types.Func]lockSet)
	lc.hasSite = make(map[*types.Func]bool)
	for _, fn := range lc.order {
		w := &lockWalker{lc: lc, fn: fn, held: fn.entry.clone()}
		w.walkFunc()
	}
	changed := false
	for _, fn := range lc.order {
		if !lc.hasSite[fn.obj] {
			continue
		}
		next := lc.candidates[fn.obj]
		if next == nil {
			next = lockSet{}
		}
		if !sameLocks(fn.entry, next) {
			fn.entry = next
			changed = true
		}
	}
	return changed
}

// emit is the final walk: lock state is final, diagnostics are reported.
func (lc *lcState) emit() {
	for _, fn := range lc.order {
		w := &lockWalker{lc: lc, fn: fn, held: fn.entry.clone(), emit: true}
		w.walkFunc()
	}
}

// recordSite folds one call site's (translated) lock set into the callee's
// entry-set candidate.
func (lc *lcState) recordSite(caller, callee *types.Func, held lockSet) {
	m := lc.callers[callee]
	if m == nil {
		m = make(map[*types.Func]bool)
		lc.callers[callee] = m
	}
	m[caller] = true
	if prev, ok := lc.candidates[callee]; ok {
		lc.candidates[callee] = intersectLocks(prev, held)
	} else {
		lc.candidates[callee] = held.clone()
	}
	lc.hasSite[callee] = true
}

// confined returns the set of functions provably confined to g's roots: the
// roots themselves plus every function all of whose callers are confined.
func (lc *lcState) confined(g *guard) map[*types.Func]bool {
	if set, ok := lc.confinedCache[g]; ok {
		return set
	}
	set := make(map[*types.Func]bool)
	for _, fn := range lc.order {
		if fn.pkg == g.pkg && matchesRoot(fn, g.roots) {
			set[fn.obj] = true
		}
	}
	for {
		grew := false
		for _, fn := range lc.order {
			if set[fn.obj] {
				continue
			}
			callers := lc.callers[fn.obj]
			if len(callers) == 0 {
				continue
			}
			all := true
			for c := range callers {
				if !set[c] {
					all = false
					break
				}
			}
			if all {
				set[fn.obj] = true
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	lc.confinedCache[g] = set
	return set
}

func matchesRoot(fn *lcFunc, roots []string) bool {
	name := fn.decl.Name.Name
	recv := recvTypeName(fn.decl)
	for _, r := range roots {
		if typ, meth, ok := strings.Cut(r, "."); ok {
			if recv == typ && name == meth {
				return true
			}
		} else if name == r {
			return true
		}
	}
	return false
}

func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// isConstructorName: functions allowed to touch guarded state freely — the
// value under construction is not yet shared.
func isConstructorName(name string) bool {
	for _, p := range []string{"New", "new", "make", "Clone", "clone"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return name == "init"
}

// isStartWriterName: functions additionally allowed to write
// immutable-after-start fields.
func isStartWriterName(name string) bool {
	return isConstructorName(name) ||
		strings.HasPrefix(name, "Set") || strings.HasPrefix(name, "set") ||
		name == "Start" || name == "start"
}

// --- the per-function walker ------------------------------------------------

type accessMode int

const (
	accessRead accessMode = iota
	accessWrite
)

func (m accessMode) String() string {
	if m == accessWrite {
		return "write"
	}
	return "read"
}

type lockWalker struct {
	lc   *lcState
	fn   *lcFunc
	held lockSet
	emit bool
}

func (w *lockWalker) walkFunc() {
	w.stmts(w.fn.decl.Body.List)
}

// stmts walks a statement list; reports whether it definitely transfers
// control out (return, panic, break/continue/goto).
func (w *lockWalker) stmts(list []ast.Stmt) bool {
	for _, s := range list {
		if w.stmt(s) {
			return true
		}
	}
	return false
}

func (w *lockWalker) stmt(s ast.Stmt) bool {
	switch x := s.(type) {
	case nil:
	case *ast.ExprStmt:
		if w.lockOp(x.X) {
			return false
		}
		w.expr(x.X)
		return isPanic(w.fn.pkg, x.X)
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			w.expr(r)
		}
		for _, l := range x.Lhs {
			w.lvalue(l)
		}
	case *ast.IncDecStmt:
		w.lvalue(x.X)
	case *ast.DeferStmt:
		if w.deferredUnlock(x.Call) {
			return false // the lock stays held to function end
		}
		for _, a := range x.Call.Args {
			w.expr(a)
		}
		if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
			w.funcLit(lit)
		} else {
			w.callSite(x.Call, lockSet{})
			w.expr(x.Call.Fun)
		}
	case *ast.GoStmt:
		for _, a := range x.Call.Args {
			w.expr(a)
		}
		if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
			w.funcLit(lit)
		} else {
			w.callSite(x.Call, lockSet{})
			w.expr(x.Call.Fun)
		}
	case *ast.SendStmt:
		w.expr(x.Chan)
		w.expr(x.Value)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.expr(r)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return w.stmts(x.List)
	case *ast.LabeledStmt:
		return w.stmt(x.Stmt)
	case *ast.IfStmt:
		if x.Init != nil {
			w.stmt(x.Init)
		}
		w.expr(x.Cond)
		entry := w.held
		thenHeld := entry.clone()
		w.held = thenHeld
		thenTerm := w.stmts(x.Body.List)
		thenHeld = w.held
		elseHeld := entry.clone()
		elseTerm := false
		if x.Else != nil {
			w.held = elseHeld
			elseTerm = w.stmt(x.Else)
			elseHeld = w.held
		}
		switch {
		case thenTerm && elseTerm:
			w.held = entry
			return true
		case thenTerm:
			w.held = elseHeld
		case elseTerm:
			w.held = thenHeld
		default:
			w.held = intersectLocks(thenHeld, elseHeld)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			w.stmt(x.Init)
		}
		if x.Cond != nil {
			w.expr(x.Cond)
		}
		w.branch(func() {
			w.stmts(x.Body.List)
			if x.Post != nil {
				w.stmt(x.Post)
			}
		})
	case *ast.RangeStmt:
		w.expr(x.X)
		if x.Tok == token.ASSIGN {
			if x.Key != nil {
				w.lvalue(x.Key)
			}
			if x.Value != nil {
				w.lvalue(x.Value)
			}
		}
		w.branch(func() { w.stmts(x.Body.List) })
	case *ast.SwitchStmt:
		if x.Init != nil {
			w.stmt(x.Init)
		}
		if x.Tag != nil {
			w.expr(x.Tag)
		}
		for _, c := range x.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.expr(e)
			}
			w.branch(func() { w.stmts(cc.Body) })
		}
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			w.stmt(x.Init)
		}
		w.stmt(x.Assign)
		for _, c := range x.Body.List {
			cc := c.(*ast.CaseClause)
			w.branch(func() { w.stmts(cc.Body) })
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			cc := c.(*ast.CommClause)
			w.branch(func() {
				if cc.Comm != nil {
					w.stmt(cc.Comm)
				}
				w.stmts(cc.Body)
			})
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	}
	return false
}

// branch runs body with a scratch copy of the lock state and discards its
// effects: conservative for loops and switch/select arms, whose acquisitions
// may not happen on every path.
func (w *lockWalker) branch(body func()) {
	saved := w.held
	w.held = saved.clone()
	body()
	w.held = saved
}

// lvalue walks an assignment target: the terminal field is a write, every
// base along the way is a read.
func (w *lockWalker) lvalue(e ast.Expr) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		w.lvalue(x.X)
	case *ast.IndexExpr:
		// Writing an element or map key mutates the field's contents.
		w.lvalue(x.X)
		w.expr(x.Index)
	case *ast.SliceExpr:
		w.lvalue(x.X)
		w.expr(x.Low)
		w.expr(x.High)
		w.expr(x.Max)
	case *ast.SelectorExpr:
		w.selAccess(x, accessWrite)
		w.expr(x.X)
	case *ast.StarExpr:
		w.expr(x.X)
	case *ast.Ident:
		w.identAccess(x, accessWrite)
	default:
		w.expr(e)
	}
}

func (w *lockWalker) expr(e ast.Expr) {
	switch x := e.(type) {
	case nil:
	case *ast.Ident:
		w.identAccess(x, accessRead)
	case *ast.SelectorExpr:
		w.selAccess(x, accessRead)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			w.lvalue(x.X) // taking the address lets the value escape the lock
		} else {
			w.expr(x.X)
		}
	case *ast.StarExpr:
		w.expr(x.X)
	case *ast.ParenExpr:
		w.expr(x.X)
	case *ast.CallExpr:
		w.call(x)
	case *ast.FuncLit:
		w.funcLit(x)
	case *ast.BinaryExpr:
		w.expr(x.X)
		w.expr(x.Y)
	case *ast.IndexExpr:
		w.expr(x.X)
		w.expr(x.Index)
	case *ast.IndexListExpr:
		w.expr(x.X)
		for _, i := range x.Indices {
			w.expr(i)
		}
	case *ast.SliceExpr:
		w.expr(x.X)
		w.expr(x.Low)
		w.expr(x.High)
		w.expr(x.Max)
	case *ast.TypeAssertExpr:
		w.expr(x.X)
	case *ast.CompositeLit:
		isStruct := false
		if tv, ok := w.fn.pkg.Info.Types[x]; ok && tv.Type != nil {
			_, isStruct = tv.Type.Underlying().(*types.Struct)
		}
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if !isStruct {
					w.expr(kv.Key)
				}
				w.expr(kv.Value)
				continue
			}
			w.expr(el)
		}
	case *ast.KeyValueExpr:
		w.expr(x.Key)
		w.expr(x.Value)
	}
}

// funcLit walks a closure body with an empty lock set (it may run on any
// goroutine, at any time), attributing accesses to the enclosing function.
func (w *lockWalker) funcLit(lit *ast.FuncLit) {
	saved := w.held
	w.held = lockSet{}
	w.stmts(lit.Body.List)
	w.held = saved
}

// --- lock operations ---------------------------------------------------------

// lockOp recognizes statement-level mu.Lock()/Unlock()/RLock()/RUnlock() and
// updates the held set. Returns true when the statement was a lock op.
func (w *lockWalker) lockOp(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	key, mode, acquire, ok := w.mutexCall(call)
	if !ok {
		return false
	}
	if acquire {
		w.held[key.key] = lockInfo{mode: mode, pkgLevel: key.pkgLevel}
	} else {
		delete(w.held, key.key)
	}
	// The receiver chain is still an access path (s.inner.mu.Lock() reads
	// s.inner).
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		w.expr(sel.X)
	}
	return true
}

// deferredUnlock recognizes defer mu.Unlock()/RUnlock(), which keeps the
// lock held for the remainder of the function.
func (w *lockWalker) deferredUnlock(call *ast.CallExpr) bool {
	_, _, acquire, ok := w.mutexCall(call)
	return ok && !acquire
}

type mutexKey struct {
	key      string
	pkgLevel bool
}

// mutexCall decodes a call to a sync.Mutex/RWMutex locking method into the
// held-set key of the mutex it names.
func (w *lockWalker) mutexCall(call *ast.CallExpr) (mutexKey, lockMode, bool, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return mutexKey{}, 0, false, false
	}
	var mode lockMode
	var acquire bool
	switch sel.Sel.Name {
	case "Lock":
		mode, acquire = lockW, true
	case "Unlock":
		mode, acquire = lockW, false
	case "RLock":
		mode, acquire = lockR, true
	case "RUnlock":
		mode, acquire = lockR, false
	default:
		return mutexKey{}, 0, false, false
	}
	fnObj, ok := w.fn.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return mutexKey{}, 0, false, false
	}
	recv := fnObj.Type().(*types.Signature).Recv()
	if recv == nil {
		return mutexKey{}, 0, false, false
	}
	named := mutexNameOf(recv.Type())
	if named == "" {
		return mutexKey{}, 0, false, false
	}
	base := sel.X
	key := types.ExprString(base)
	// Promoted method on an embedded mutex: s.Lock() — the implicit field is
	// named after the type.
	if t := w.fn.pkg.Info.Types[base].Type; t != nil && mutexNameOf(t) == "" {
		key = key + "." + named
	}
	return mutexKey{key: key, pkgLevel: w.isPkgLevelBase(base)}, mode, acquire, true
}

// mutexNameOf returns "Mutex"/"RWMutex" when t (possibly behind a pointer)
// is the sync type, else "".
func mutexNameOf(t types.Type) string {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	if p := named.Obj().Pkg(); p == nil || p.Path() != "sync" {
		return ""
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		return named.Obj().Name()
	}
	return ""
}

// isPkgLevelBase reports whether the root identifier of expr names a
// package-level object.
func (w *lockWalker) isPkgLevelBase(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			obj := w.fn.pkg.Info.Uses[x]
			if obj == nil {
				obj = w.fn.pkg.Info.Defs[x]
			}
			return obj != nil && w.fn.pkg.Pkg != nil && obj.Parent() == w.fn.pkg.Pkg.Scope()
		default:
			return false
		}
	}
}

// --- calls -------------------------------------------------------------------

func (w *lockWalker) call(call *ast.CallExpr) {
	// Shape 1: atomic.LoadX(&s.f, ...) / atomic.AddX(&s.f, n) — the sanctioned
	// access form for plain-typed //rootlint:atomic fields.
	if fun, ok := call.Fun.(*ast.SelectorExpr); ok {
		if ident, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := pkgNameOf(w.fn.pkg.Info, ident); ok && pn.Imported().Path() == "sync/atomic" {
				for _, a := range call.Args {
					w.atomicArg(a)
				}
				return
			}
		}
		// Shape 2: s.f.Load()/Store()/... on an atomic-typed field — the
		// sanctioned access form for atomic-typed //rootlint:atomic fields.
		if inner, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			if v, g := w.guardOf(inner); g != nil && g.regime == regimeAtomic && isAtomicType(v.Type()) {
				w.expr(inner.X)
				for _, a := range call.Args {
					w.expr(a)
				}
				return
			}
		}
	}
	// delete(m, k), clear(m), copy(dst, src) mutate their first operand.
	if ident, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := w.fn.pkg.Info.Uses[ident].(*types.Builtin); ok {
			switch b.Name() {
			case "delete", "clear", "copy":
				if len(call.Args) > 0 {
					w.lvalue(call.Args[0])
					for _, a := range call.Args[1:] {
						w.expr(a)
					}
					return
				}
			}
		}
	}
	w.callSite(call, w.held)
	w.expr(call.Fun)
	for _, a := range call.Args {
		w.expr(a)
	}
}

// atomicArg walks one argument of a sync/atomic call: &s.f and &s.f[i] on an
// atomic-regime field are the sanctioned shapes and are not findings.
func (w *lockWalker) atomicArg(a ast.Expr) {
	u, ok := ast.Unparen(a).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		w.expr(a)
		return
	}
	target := ast.Unparen(u.X)
	if ix, ok := target.(*ast.IndexExpr); ok {
		if sel, ok := ast.Unparen(ix.X).(*ast.SelectorExpr); ok {
			if _, g := w.guardOf(sel); g != nil && g.regime == regimeAtomic {
				w.expr(ix.Index)
				w.expr(sel.X)
				return
			}
		}
	}
	if sel, ok := target.(*ast.SelectorExpr); ok {
		if _, g := w.guardOf(sel); g != nil && g.regime == regimeAtomic {
			w.expr(sel.X)
			return
		}
	}
	w.expr(a)
}

// callSite resolves a call to a function declared in this program and
// records the caller edge plus the lock set translated into the callee's
// parameter names.
func (w *lockWalker) callSite(call *ast.CallExpr, held lockSet) {
	var obj *types.Func
	var recvArg ast.Expr
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj, _ = w.fn.pkg.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		obj, _ = w.fn.pkg.Info.Uses[fun.Sel].(*types.Func)
		if obj != nil && obj.Type().(*types.Signature).Recv() != nil {
			recvArg = fun.X
		}
	}
	if obj == nil {
		return
	}
	callee, ok := w.lc.funcs[obj]
	if !ok {
		return
	}
	var pairs [][2]string
	if recvArg != nil && callee.decl.Recv != nil && len(callee.decl.Recv.List) > 0 {
		if names := callee.decl.Recv.List[0].Names; len(names) > 0 {
			pairs = append(pairs, [2]string{argString(recvArg), names[0].Name})
		}
	}
	if params := callee.decl.Type.Params; params != nil {
		i := 0
		for _, field := range params.List {
			for _, name := range field.Names {
				if i < len(call.Args) {
					pairs = append(pairs, [2]string{argString(call.Args[i]), name.Name})
				}
				i++
			}
		}
	}
	samePkg := callee.pkg == w.fn.pkg
	translated := lockSet{}
	for k, info := range held {
		if info.pkgLevel && samePkg {
			translated[k] = info
			continue
		}
		for _, p := range pairs {
			arg, param := p[0], p[1]
			if arg == "" || param == "" || param == "_" {
				continue
			}
			if k == arg {
				translated[param] = info
				break
			}
			if strings.HasPrefix(k, arg+".") {
				translated[param+k[len(arg):]] = info
				break
			}
		}
	}
	w.lc.recordSite(w.fn.obj, obj, translated)
}

// argString renders a call argument for lock-key translation, looking
// through & (passing &c.deg while holding c.deg.mu).
func argString(e ast.Expr) string {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = u.X
	}
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		return types.ExprString(e)
	}
	return ""
}

// --- access checking ---------------------------------------------------------

// guardOf resolves a selector to its field object and declared guard.
func (w *lockWalker) guardOf(sel *ast.SelectorExpr) (*types.Var, *guard) {
	v, ok := w.fn.pkg.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil, nil
	}
	return v, w.lc.guards[v]
}

func (w *lockWalker) selAccess(sel *ast.SelectorExpr, mode accessMode) {
	if v, g := w.guardOf(sel); g != nil {
		w.checkAccess(sel.Pos(), types.ExprString(sel.X), v.Name(), g, mode)
	}
	w.expr(sel.X)
}

func (w *lockWalker) identAccess(ident *ast.Ident, mode accessMode) {
	obj, ok := w.fn.pkg.Info.Uses[ident].(*types.Var)
	if !ok || obj.IsField() {
		return
	}
	if g := w.lc.guards[obj]; g != nil {
		w.checkAccess(ident.Pos(), "", ident.Name, g, mode)
	}
}

func (w *lockWalker) checkAccess(pos token.Pos, base, field string, g *guard, mode accessMode) {
	if !w.emit {
		return
	}
	fnName := w.fn.decl.Name.Name
	if isConstructorName(fnName) {
		return // the value under construction is not shared yet
	}
	owner := g.owner
	if owner == "" {
		owner = w.fn.pkg.Path
	}
	switch g.regime {
	case regimeGuarded:
		key := g.mutex
		if base != "" {
			key = base + "." + g.mutex
		}
		info, ok := w.held[key]
		switch {
		case !ok:
			w.report(pos, "%s of %s.%s requires %s held (//rootlint:guardedby %s)",
				mode, owner, field, key, g.mutex)
		case mode == accessWrite && info.mode == lockR:
			w.report(pos, "write to %s.%s while %s is only read-locked (//rootlint:guardedby %s)",
				owner, field, key, g.mutex)
		}
	case regimeAtomic:
		w.report(pos, "plain %s of %s.%s mixes atomic and unsynchronized access (//rootlint:atomic)",
			mode, owner, field)
	case regimeShard:
		if !w.lc.confined(g)[w.fn.obj] {
			w.report(pos, "%s of %s.%s from %s, which is not confined to shard roots %s (//rootlint:shardconfined)",
				mode, owner, field, fnName, strings.Join(g.roots, ","))
		}
	case regimeImmutable:
		if mode == accessWrite && !isStartWriterName(fnName) {
			w.report(pos, "write to %s.%s outside a constructor/Set*/Start (//rootlint:immutable-after-start)",
				owner, field)
		}
	}
}

func (w *lockWalker) report(pos token.Pos, format string, args ...any) {
	if w.lc.prog.AllowsFor(w.fn.pkg).Allowed(pos, "lockcheck") {
		return
	}
	w.lc.prog.Reportf(Lockcheck, pos, format, args...)
}

// isPanic reports whether e is a call to the builtin panic.
func isPanic(pkg *PackageInfo, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	ident, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pkg.Info.Uses[ident].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// isAtomicType reports whether t is a named type from sync/atomic.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	p := named.Obj().Pkg()
	return p != nil && p.Path() == "sync/atomic"
}
