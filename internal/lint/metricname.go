package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Metricname cross-checks telemetry metric construction against the
// telemetry package's static Registry, program-wide — the metrics analogue
// of failpointsite:
//
//  1. every telemetry.NewCounter/NewGauge/NewHistogram call must pass a
//     string literal (a computed name defeats the registry cross-check and
//     would only fail at init-time, via claim's panic);
//  2. the literal must name a Registry entry (an unregistered metric would
//     panic the process at package init);
//  3. the constructor must match the entry's registered Kind;
//  4. no registry name may be constructed at two call sites — claims are
//     one-shot, so the second site panics at init;
//  5. no dead registry entries: an entry no call site claims renders as a
//     permanent zero in every snapshot, silently lying about coverage.
//
// Only non-test files are scanned for constructors: the telemetry package's
// own test binary legitimately claims registry names that its production
// claimants (measure, dataset) would otherwise hold, and the runtime
// claim-once panic still guards test binaries.
var Metricname = &Analyzer{
	Name: "metricname",
	Doc:  "cross-checks telemetry metric constructors against the static registry",
}

func init() { Metricname.RunProgram = runMetricname }

// metricCtors maps constructor names to the registry Kind identifier each
// must match.
var metricCtors = map[string]string{
	"NewCounter":   "KindCounter",
	"NewGauge":     "KindGauge",
	"NewHistogram": "KindHistogram",
}

type metricCall struct {
	name string
	ctor string // NewCounter | NewGauge | NewHistogram
	pos  token.Pos
}

type metricDef struct {
	name string
	kind string // KindCounter | KindGauge | KindHistogram
	pos  token.Pos
}

func runMetricname(prog *Program) error {
	var calls []metricCall
	var registry []metricDef
	registryFound := false

	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			collectMetricCalls(prog, pkg, f, &calls)
		}
		if pkg.Pkg != nil && pkg.Pkg.Name() == "telemetry" {
			for _, f := range pkg.Files {
				if collectMetricRegistry(f, &registry) {
					registryFound = true
				}
			}
		}
	}

	if len(calls) == 0 {
		return nil // program constructs no metrics; nothing to cross-check
	}
	if !registryFound {
		prog.Reportf(Metricname, calls[0].pos,
			"telemetry metrics are constructed but no Registry was found in the telemetry package")
		return nil
	}

	callsByName := make(map[string][]metricCall)
	for _, c := range calls {
		callsByName[c.name] = append(callsByName[c.name], c)
	}
	defByName := make(map[string][]metricDef)
	for _, d := range registry {
		defByName[d.name] = append(defByName[d.name], d)
	}

	for name, sites := range callsByName {
		if len(sites) > 1 {
			for _, s := range sites[1:] {
				prog.Reportf(Metricname, s.pos,
					"metric %q is constructed at multiple call sites; claims are one-shot and the second panics at init", name)
			}
		}
		defs := defByName[name]
		if len(defs) == 0 {
			prog.Reportf(Metricname, sites[0].pos,
				"metric %q is not in the telemetry Registry", name)
			continue
		}
		if want := metricCtors[sites[0].ctor]; defs[0].kind != "" && defs[0].kind != want {
			prog.Reportf(Metricname, sites[0].pos,
				"metric %q is registered as %s but constructed with %s", name, defs[0].kind, sites[0].ctor)
		}
	}
	for name, defs := range defByName {
		if len(defs) > 1 {
			for _, d := range defs[1:] {
				prog.Reportf(Metricname, d.pos, "duplicate Registry entry for metric %q", name)
			}
		}
		if len(callsByName[name]) == 0 {
			prog.Reportf(Metricname, defs[0].pos,
				"dead Registry entry: metric %q is never constructed", name)
		}
	}
	return nil
}

// collectMetricCalls gathers <telemetry-pkg>.New{Counter,Gauge,Histogram}
// call sites with their name argument.
func collectMetricCalls(prog *Program, pkg *PackageInfo, f *ast.File, out *[]metricCall) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if _, isCtor := metricCtors[sel.Sel.Name]; !isCtor {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pkgNameOf(pkg.Info, ident)
		if !ok {
			return true
		}
		path := pn.Imported().Path()
		if path != "telemetry" && !strings.HasSuffix(path, "/telemetry") {
			return true
		}
		if len(call.Args) != 1 {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			prog.Reportf(Metricname, call.Args[0].Pos(),
				"telemetry metric name must be a string literal for registry cross-checking")
			return true
		}
		name, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		*out = append(*out, metricCall{name: name, ctor: sel.Sel.Name, pos: lit.Pos()})
		return true
	})
}

// collectMetricRegistry parses `var Registry = []Def{{Name: "...", Kind:
// KindX, ...}, ...}` declarations, reporting whether one was found in f.
func collectMetricRegistry(f *ast.File, out *[]metricDef) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		spec, ok := n.(*ast.ValueSpec)
		if !ok {
			return true
		}
		for i, name := range spec.Names {
			if name.Name != "Registry" || i >= len(spec.Values) {
				continue
			}
			lit, ok := spec.Values[i].(*ast.CompositeLit)
			if !ok {
				continue
			}
			found = true
			for _, elt := range lit.Elts {
				entry, ok := elt.(*ast.CompositeLit)
				if !ok {
					continue
				}
				def := metricDef{pos: entry.Pos()}
				for _, field := range entry.Elts {
					kv, ok := field.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					switch key.Name {
					case "Name":
						if s, ok := kv.Value.(*ast.BasicLit); ok && s.Kind == token.STRING {
							if v, err := strconv.Unquote(s.Value); err == nil {
								def.name = v
							}
						}
					case "Kind":
						if id, ok := kv.Value.(*ast.Ident); ok {
							def.kind = id.Name
						}
					}
				}
				if def.name != "" {
					*out = append(*out, def)
				}
			}
		}
		return true
	})
	return found
}
