package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Orderedmap flags `range` over a map whose loop body writes into an
// order-sensitive sink — an io.Writer, hash.Hash, encoder, string builder,
// or one of the campaign's event handlers. Go randomizes map iteration
// order per run, so such a loop produces output that differs between two
// executions of the same binary on the same input: exactly the class of
// bug that silently breaks the repo's byte-identical report, dataset, and
// checkpoint guarantees, and the hardest to catch by example tests because
// any single run looks plausible.
//
// The fix is almost always to extract and sort the keys first; when the
// sink is genuinely order-insensitive, annotate the range statement with
// //rootlint:allow maporder: <reason>.
var Orderedmap = &Analyzer{
	Name: "orderedmap",
	Doc:  "flags map iteration whose body writes to an order-sensitive sink",
	Run:  runOrderedmap,
}

// orderedSinkMethods are method names whose invocation inside a map-range
// body implies order-dependent output.
var orderedSinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "AppendRecord": true,
	"HandleProbe": true, "HandleTransfer": true,
}

// orderedSinkFuncs are package-level functions (by import path and name)
// that emit to a writer argument.
var orderedSinkFuncs = map[string]map[string]bool{
	"fmt":             {"Fprint": true, "Fprintf": true, "Fprintln": true},
	"encoding/binary": {"Write": true},
	"io":              {"WriteString": true, "Copy": true},
}

func runOrderedmap(pass *Pass) error {
	allows := pass.allows()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if allows.Allowed(rng.Pos(), "maporder") {
				return true
			}
			if pos, desc, found := findSinkWrite(pass, rng.Body); found {
				pass.Reportf(pos,
					"%s inside a map range: iteration order is randomized, so output differs run to run; sort the keys first or annotate the range with //rootlint:allow maporder: <reason>",
					desc)
			}
			return true
		})
	}
	return nil
}

// findSinkWrite scans a range body for the first order-sensitive write.
// Nested ranges are left to their own RangeStmt visit.
func findSinkWrite(pass *Pass, body *ast.BlockStmt) (token.Pos, string, bool) {
	var pos token.Pos
	var desc string
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, isRange := n.(*ast.RangeStmt); isRange && n.Pos() != body.Pos() {
			return false // inner map ranges report for themselves
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// Package-level emitters: fmt.Fprintf(w, ...), binary.Write(w, ...).
		if ident, isIdent := sel.X.(*ast.Ident); isIdent {
			if pn, isPkg := pkgNameOf(pass.Info, ident); isPkg {
				if funcs := orderedSinkFuncs[pn.Imported().Path()]; funcs[sel.Sel.Name] {
					pos, desc, found = call.Pos(), pn.Name()+"."+sel.Sel.Name+" writes", true
					return false
				}
				return true // other selector on a package: not a method call
			}
		}
		// Method calls on a sink value: w.Write, h.Sum is excluded (pure),
		// enc.Encode, sb.WriteString, handler.HandleProbe, ...
		if orderedSinkMethods[sel.Sel.Name] {
			if selInfo, ok := pass.Info.Selections[sel]; ok && selInfo.Kind() == types.MethodVal {
				pos, desc, found = call.Pos(), "method "+sel.Sel.Name+" writes", true
				return false
			}
		}
		return true
	})
	return pos, desc, found
}
