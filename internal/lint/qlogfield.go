package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Qlogfield cross-checks flight-recorder event claims against the qlog
// package's static Registry, program-wide — the wide-event analogue of
// metricname:
//
//  1. every qlog.NewEvent call must pass string literals for the kind and
//     every field name (computed arguments defeat the schema cross-check and
//     would only fail at init-time, via NewEvent's panic);
//  2. the kind literal must name a Registry entry (an unregistered kind
//     panics the process at package init);
//  3. the claimed field list must match the entry's registered fields
//     exactly — same names, same order, same count — so emission arity is
//     statically visible at the claim site;
//  4. no kind may be claimed at two call sites — claims are one-shot, so
//     the second site panics at init;
//  5. no dead registry entries: a kind no call site claims is schema that
//     can never appear in a flight log, silently lying about coverage.
//
// Only non-test files are scanned for claims, mirroring metricname: the
// qlog package's own tests legitimately exercise claim panics, and the
// runtime claim-once panic still guards test binaries.
var Qlogfield = &Analyzer{
	Name: "qlogfield",
	Doc:  "cross-checks qlog event claims against the static event registry",
}

func init() { Qlogfield.RunProgram = runQlogfield }

type qlogClaim struct {
	kind   string
	fields []string
	pos    token.Pos
}

type qlogDef struct {
	kind   string
	fields []string
	pos    token.Pos
}

func runQlogfield(prog *Program) error {
	var claims []qlogClaim
	var registry []qlogDef
	registryFound := false

	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			collectQlogClaims(prog, pkg, f, &claims)
		}
		if pkg.Pkg != nil && pkg.Pkg.Name() == "qlog" {
			for _, f := range pkg.Files {
				if collectQlogRegistry(f, &registry) {
					registryFound = true
				}
			}
		}
	}

	if len(claims) == 0 {
		return nil // program claims no events; nothing to cross-check
	}
	if !registryFound {
		prog.Reportf(Qlogfield, claims[0].pos,
			"qlog events are claimed but no Registry was found in the qlog package")
		return nil
	}

	claimsByKind := make(map[string][]qlogClaim)
	for _, c := range claims {
		claimsByKind[c.kind] = append(claimsByKind[c.kind], c)
	}
	defByKind := make(map[string][]qlogDef)
	for _, d := range registry {
		defByKind[d.kind] = append(defByKind[d.kind], d)
	}

	for kind, sites := range claimsByKind {
		if len(sites) > 1 {
			for _, s := range sites[1:] {
				prog.Reportf(Qlogfield, s.pos,
					"qlog event %q is claimed at multiple call sites; claims are one-shot and the second panics at init", kind)
			}
		}
		defs := defByKind[kind]
		if len(defs) == 0 {
			prog.Reportf(Qlogfield, sites[0].pos,
				"qlog event %q is not in the qlog Registry", kind)
			continue
		}
		checkQlogFields(prog, sites[0], defs[0])
	}
	for kind, defs := range defByKind {
		if len(defs) > 1 {
			for _, d := range defs[1:] {
				prog.Reportf(Qlogfield, d.pos, "duplicate Registry entry for qlog event %q", kind)
			}
		}
		if len(claimsByKind[kind]) == 0 {
			prog.Reportf(Qlogfield, defs[0].pos,
				"dead Registry entry: qlog event %q is never claimed", kind)
		}
	}
	return nil
}

// checkQlogFields compares one claim's field list against the registered
// schema: count first (the coarse mismatch), then name-by-name in order.
func checkQlogFields(prog *Program, c qlogClaim, d qlogDef) {
	if len(c.fields) != len(d.fields) {
		prog.Reportf(Qlogfield, c.pos,
			"qlog event %q claimed with %d fields, Registry has %d", c.kind, len(c.fields), len(d.fields))
		return
	}
	for i := range c.fields {
		if c.fields[i] != d.fields[i] {
			prog.Reportf(Qlogfield, c.pos,
				"qlog event %q field %d is %q, Registry says %q", c.kind, i, c.fields[i], d.fields[i])
			return
		}
	}
}

// collectQlogClaims gathers <qlog-pkg>.NewEvent call sites with their kind
// and field-name arguments.
func collectQlogClaims(prog *Program, pkg *PackageInfo, f *ast.File, out *[]qlogClaim) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "NewEvent" {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pkgNameOf(pkg.Info, ident)
		if !ok {
			return true
		}
		path := pn.Imported().Path()
		if path != "qlog" && !strings.HasSuffix(path, "/qlog") {
			return true
		}
		if len(call.Args) == 0 || call.Ellipsis.IsValid() {
			prog.Reportf(Qlogfield, call.Pos(),
				"qlog event claims must spell the kind and every field as string literals for schema cross-checking")
			return true
		}
		c := qlogClaim{pos: call.Args[0].Pos(), fields: []string{}}
		for i, arg := range call.Args {
			lit, ok := arg.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				prog.Reportf(Qlogfield, arg.Pos(),
					"qlog event kind and field names must be string literals for schema cross-checking")
				return true
			}
			v, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if i == 0 {
				c.kind = v
			} else {
				c.fields = append(c.fields, v)
			}
		}
		*out = append(*out, c)
		return true
	})
}

// collectQlogRegistry parses `var Registry = []Def{{Kind: "...", Fields:
// []Field{{Name: "..."}, ...}}, ...}` declarations, reporting whether one
// was found in f.
func collectQlogRegistry(f *ast.File, out *[]qlogDef) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		spec, ok := n.(*ast.ValueSpec)
		if !ok {
			return true
		}
		for i, name := range spec.Names {
			if name.Name != "Registry" || i >= len(spec.Values) {
				continue
			}
			lit, ok := spec.Values[i].(*ast.CompositeLit)
			if !ok {
				continue
			}
			found = true
			for _, elt := range lit.Elts {
				entry, ok := elt.(*ast.CompositeLit)
				if !ok {
					continue
				}
				def := qlogDef{pos: entry.Pos()}
				for _, field := range entry.Elts {
					kv, ok := field.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					switch key.Name {
					case "Kind":
						if s, ok := kv.Value.(*ast.BasicLit); ok && s.Kind == token.STRING {
							if v, err := strconv.Unquote(s.Value); err == nil {
								def.kind = v
							}
						}
					case "Fields":
						def.fields = qlogFieldNames(kv.Value)
					}
				}
				if def.kind != "" {
					*out = append(*out, def)
				}
			}
		}
		return true
	})
	return found
}

// qlogFieldNames extracts the Name literals from a []Field composite.
func qlogFieldNames(expr ast.Expr) []string {
	lit, ok := expr.(*ast.CompositeLit)
	if !ok {
		return nil
	}
	var names []string
	for _, elt := range lit.Elts {
		fe, ok := elt.(*ast.CompositeLit)
		if !ok {
			continue
		}
		for _, fv := range fe.Elts {
			kv, ok := fv.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || key.Name != "Name" {
				continue
			}
			if s, ok := kv.Value.(*ast.BasicLit); ok && s.Kind == token.STRING {
				if v, err := strconv.Unquote(s.Value); err == nil {
					names = append(names, v)
				}
			}
		}
	}
	return names
}
