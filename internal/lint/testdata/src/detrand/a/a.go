// Package a holds the detrand analyzer's failing cases: wall-clock reads
// and global-source randomness, plus the two allow forms that suppress them.
package a

import (
	"math/rand"
	"time"
)

type sampler struct {
	now func() time.Time
	rng *rand.Rand
}

// A wall clock sneaking into a default field is the classic leak: the
// analyzer must flag the function value, not just calls.
func fresh() *sampler {
	return &sampler{
		now: time.Now, // want "time.Now reads the wall clock"
		rng: rand.New(rand.NewSource(7)),
	}
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since reads the wall clock"
}

func pick(n int) int {
	return rand.Intn(n) // want "rand.Intn draws from math/rand's process-global source"
}

func shuffle(n int) []int {
	return rand.Perm(n) // want "rand.Perm draws from math/rand's process-global source"
}

// The standalone allow form covers the next line.
func wallStandalone() time.Time {
	//rootlint:allow wallclock: fixture exercises the standalone allow form
	return time.Now()
}

// The trailing allow form covers its own line.
func wallTrailing() time.Time {
	return time.Now() //rootlint:allow wallclock: fixture exercises the trailing allow form
}

func globalAllowed() int {
	return rand.Int() //rootlint:allow globalrand: fixture exercises a globalrand allow
}

// A time-seeded generator is the classic fake determinism: the *rand.Rand
// is explicitly seeded, but the seed itself reads the wall clock, so two
// runs draw different fates. The analyzer catches it at the clock read.
func timeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "time.Now reads the wall clock"
}
