// Package b holds the detrand analyzer's passing cases: the clock-injection
// and seeded-generator idioms the simulation packages actually use. The
// analyzer must report nothing here.
package b

import (
	"math/rand"
	"time"
)

type engine struct {
	now func() time.Time
	rng *rand.Rand
}

func newEngine(now func() time.Time, seed int64) *engine {
	return &engine{now: now, rng: rand.New(rand.NewSource(seed))}
}

func (e *engine) tick() time.Time { return e.now() }

func (e *engine) jitter() float64 { return e.rng.Float64() }

// Types and constants from time and math/rand are fine; so are methods on
// an explicitly seeded *rand.Rand.
func format(t time.Time) string { return t.Format(time.RFC3339) }

func window(d time.Duration) time.Duration { return d * 2 }

func draw(rng *rand.Rand, n int) int { return rng.Intn(n) }

// The netem idiom: no rand at all — every decision is a pure hash of
// (seed, flow, index), which is exactly what the analyzer exists to push
// code toward.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func fate(seed, flow, idx uint64, p float64) bool {
	h := splitmix64(seed ^ flow + idx*0x9e3779b97f4a7c15)
	return float64(h>>11)/(1<<53) < p
}
