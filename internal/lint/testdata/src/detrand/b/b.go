// Package b holds the detrand analyzer's passing cases: the clock-injection
// and seeded-generator idioms the simulation packages actually use. The
// analyzer must report nothing here.
package b

import (
	"math/rand"
	"time"
)

type engine struct {
	now func() time.Time
	rng *rand.Rand
}

func newEngine(now func() time.Time, seed int64) *engine {
	return &engine{now: now, rng: rand.New(rand.NewSource(seed))}
}

func (e *engine) tick() time.Time { return e.now() }

func (e *engine) jitter() float64 { return e.rng.Float64() }

// Types and constants from time and math/rand are fine; so are methods on
// an explicitly seeded *rand.Rand.
func format(t time.Time) string { return t.Format(time.RFC3339) }

func window(d time.Duration) time.Duration { return d * 2 }

func draw(rng *rand.Rand, n int) int { return rng.Intn(n) }
