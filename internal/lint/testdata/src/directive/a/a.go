// Package a exercises the //rootlint: annotation grammar itself. The
// diagnostic lands on the directive comment's own line, so each expectation
// rides inside the same comment (only one line comment fits on a line).
package a

//rootlint:frobnicate // want "unknown rootlint directive"
var a = 1

var b = 2 //rootlint:allow wallclock // want "allow directive needs a reason"

var c = 3 //rootlint:allow clockskew: fixture // want "unknown allow category"

var d = 4 //rootlint:allow : because // want "allow directive names no category"

// Well-formed forms parse clean: a reasoned single-category allow, a
// reasoned multi-category allow, and a bare hotpath marker.
var e = 5 //rootlint:allow wallclock: fixture exercises the well-formed trailing form

var f = 6 //rootlint:allow wallclock,globalrand: fixture exercises the multi-category form

//rootlint:hotpath
func g() {}

// Guard-regime grammar (lockcheck's directives): the Directive analyzer
// validates argument shape. Malformed forms diagnose on their own line —
// the trailing text after the verb is part of the (bad) argument, and the
// empty-argument cases park the expectation in a leading block comment.

//rootlint:guardedby bad..name // want "is not a field name"
var h = 7

/* // want "guardedby needs a mutex field name" */ //rootlint:guardedby
var i = 8

//rootlint:atomic now // want "atomic takes no argument"
var j = 9

//rootlint:immutable-after-start soon // want "immutable-after-start takes no argument"
var k = 10

//rootlint:shardconfined run;drain // want "is not a function name"
var l = 11

/* // want "shardconfined needs at least one root function" */ //rootlint:shardconfined
var m = 12

// Well-formed guard forms parse clean: a plain mutex name, a Type.method
// root list, and the bare no-argument regimes.

//rootlint:guardedby mu
var n = 13

//rootlint:shardconfined Loop.Run,drain
var o = 14

//rootlint:atomic
var p = 15

//rootlint:immutable-after-start
var q = 16
