// Package a exercises the //rootlint: annotation grammar itself. The
// diagnostic lands on the directive comment's own line, so each expectation
// rides inside the same comment (only one line comment fits on a line).
package a

//rootlint:frobnicate // want "unknown rootlint directive"
var a = 1

var b = 2 //rootlint:allow wallclock // want "allow directive needs a reason"

var c = 3 //rootlint:allow clockskew: fixture // want "unknown allow category"

var d = 4 //rootlint:allow : because // want "allow directive names no category"

// Well-formed forms parse clean: a reasoned single-category allow, a
// reasoned multi-category allow, and a bare hotpath marker.
var e = 5 //rootlint:allow wallclock: fixture exercises the well-formed trailing form

var f = 6 //rootlint:allow wallclock,globalrand: fixture exercises the multi-category form

//rootlint:hotpath
func g() {}
