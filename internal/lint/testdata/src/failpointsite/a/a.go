// Package a evaluates failpoints: some correctly registered and exercised,
// some violating the registry cross-checks.
package a

import "failpointsite/failpoint"

// tick holds the clean sites: registered once, exercised by the matrix in
// a_test.go, with kill coverage where the registry claims kill capability.
func tick() error {
	if err := failpoint.Eval("a/ok"); err != nil {
		return err
	}
	if err := failpoint.Eval("a/kill-ok"); err != nil {
		return err
	}
	return failpoint.Eval("a/dup")
}

// A second Eval of the same site splits its hit counter across unrelated
// code paths.
func tickAgain() error {
	return failpoint.Eval("a/dup") // want "evaluated at multiple locations"
}

func probe() error {
	return failpoint.Eval("a/unregistered") // want "not in the failpoint.Sites registry"
}

// Registered kill-capable but only error-tested: the report lands on the
// registry entry, not here.
func transfer() error {
	return failpoint.Eval("a/kill-missing")
}

// Registered but absent from every chaos spec: reported at the registry.
func seal() error {
	return failpoint.Eval("a/uncovered")
}

// A computed site name defeats the registry cross-check entirely.
func dynamic(site string) error {
	return failpoint.Eval(site) // want "must be a string literal"
}
