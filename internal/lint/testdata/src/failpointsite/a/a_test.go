package a

import "testing"

// chaosMatrix is what the analyzer mines for coverage: "site=action[@N]"
// spec literals, including comma-separated multi-site specs.
var chaosMatrix = []string{
	"a/ok=error@2",
	"a/kill-ok=kill",
	"a/dup=panic@1,a/kill-missing=error",
}

func TestChaosMatrixShape(t *testing.T) {
	if len(chaosMatrix) != 3 {
		t.Fatal("fixture matrix changed; update the want comments")
	}
}
