// Package failpoint is a fixture stand-in for the real injection package:
// the analyzer only needs Eval's shape and the Sites registry, matched by
// package name and import-path suffix.
package failpoint

// Site describes one registered failpoint.
type Site struct {
	Name string
	Kill bool
}

// Sites is the registry the analyzer cross-checks against Eval call sites
// and chaos-test specs.
var Sites = []Site{
	{Name: "a/ok", Kill: false},
	{Name: "a/kill-ok", Kill: true},
	{Name: "a/dup", Kill: false},
	{Name: "a/ok", Kill: false},          // want "duplicate registry entry"
	{Name: "a/dead", Kill: false},        // want "dead registry entry"
	{Name: "a/uncovered", Kill: false},   // want "never exercised by any chaos test spec"
	{Name: "a/kill-missing", Kill: true}, // want "never exercised with a kill action"
}

// Eval reports whether the named site should fire.
func Eval(site string) error {
	_ = site
	return nil
}
