// Package a holds the hotpath analyzer's failing cases: allocation-prone
// constructs inside functions marked //rootlint:hotpath.
package a

import "fmt"

//rootlint:hotpath
func describe(kind string, n int) string {
	return fmt.Sprintf("%s/%d", kind, n) // want "fmt.Sprintf allocates on every call"
}

//rootlint:hotpath
func fail(n int) error {
	return fmt.Errorf("bad frame %d", n) // want "fmt.Errorf allocates on every call"
}

//rootlint:hotpath
func join(parts []string) string {
	var out string
	for _, p := range parts {
		out += p // want "string concatenation in a loop"
	}
	return out
}

//rootlint:hotpath
func joinBinary(parts []string) string {
	out := ""
	for _, p := range parts {
		out = out + p // want "string concatenation in a loop"
	}
	return out
}

//rootlint:hotpath
func escape(n int) func() int {
	return func() int { return n } // want "closure captures enclosing variables and escapes"
}

//rootlint:hotpath
func freshMake(b byte) []byte {
	return append(make([]byte, 0, 4), b) // want "append onto make"
}

//rootlint:hotpath
func freshLit(b byte) []byte {
	return append([]byte{}, b) // want "append onto a slice literal"
}

//rootlint:hotpath
func freshConv(s string, b byte) []byte {
	return append([]byte(s), b) // want "append onto a slice conversion"
}

// A cold path inside a hot function is suppressed with a reasoned allow.
//
//rootlint:hotpath
func frame(n int) error {
	if n > 0xffff {
		//rootlint:allow hotpath: cold error path, fires at most once per malformed zone
		return fmt.Errorf("frame %d exceeds 64 KiB", n)
	}
	return nil
}

// cursor mirrors the lazy wire-view idiom (PR 7): pointer-receiver methods
// that advance an offset through a shared byte slice. The directive must
// bind to methods exactly as it does to functions — these are the annotation
// sites the dnswire view cursor added.
type cursor struct {
	msg []byte
	off int
}

//rootlint:hotpath
func (c *cursor) fail() error {
	return fmt.Errorf("truncated at %d", c.off) // want "fmt.Errorf allocates on every call"
}

//rootlint:hotpath
func (c *cursor) names() string {
	var all string
	for c.off < len(c.msg) {
		all += string(c.msg[c.off]) // want "string concatenation in a loop"
		c.off++
	}
	return all
}

//rootlint:hotpath
func (c cursor) owner() []byte {
	return append(make([]byte, 0, 64), c.msg[c.off:]...) // want "append onto make"
}

//rootlint:hotpath
func (c *cursor) each() func() byte {
	return func() byte { // want "closure captures enclosing variables and escapes"
		b := c.msg[c.off]
		c.off++
		return b
	}
}

// bufSource is the interface-dispatch case: a slice fetched through an
// interface method is an unknown implementation's allocation.
type bufSource interface {
	Bytes() []byte
}

//rootlint:hotpath
func (c *cursor) boundAdvance() func() error {
	return c.fail // want "method value c.fail allocates a bound-method closure per evaluation"
}

//rootlint:hotpath
func gatherVia(src bufSource, tail []byte) []byte {
	return append(src.Bytes(), tail...) // want "append onto a slice returned through an interface method allocates a fresh backing array per call"
}
