// Package b holds the hotpath analyzer's passing cases: idioms that look
// close to the flagged constructs but allocate nothing per call, and
// undirected functions the analyzer must ignore entirely. No reports here.
package b

import "fmt"

// No //rootlint:hotpath directive: fmt.Sprintf is fine in ordinary code.
func describe(kind string, n int) string {
	return fmt.Sprintf("%s/%d", kind, n)
}

//rootlint:hotpath
func sum(buf []byte) int {
	total := 0
	for _, c := range buf {
		total += int(c) // integer +=, not string concatenation
	}
	return total
}

//rootlint:hotpath
func appendInto(dst, src []byte) []byte {
	return append(dst, src...) // caller-provided base: amortized, not fresh
}

//rootlint:hotpath
func immediate(n int) int {
	return func() int { return n * 2 }() // immediately invoked: does not escape
}

//rootlint:hotpath
func constant() func() int {
	return func() int { return 42 } // captures nothing: free to escape
}

//rootlint:hotpath
func concatOnce(a, b string) string {
	return a + b // concatenation outside any loop is a single allocation
}

// byteSource mirrors the failing fixture's interface; the near-misses below
// must stay silent.
type byteSource interface {
	Bytes() []byte
}

type pool struct{ buf []byte }

func (p *pool) Bytes() []byte { return p.buf }

func (p *pool) grow(n int) {}

//rootlint:hotpath
func directDispatch(src byteSource) int {
	// Calling through the interface is dispatch, not a method value.
	return len(src.Bytes())
}

//rootlint:hotpath
func concreteAppend(p *pool, tail []byte) []byte {
	// A concrete receiver's method result is the implementation's own
	// (inlinable, provably reused) buffer — not flagged.
	return append(p.Bytes(), tail...)
}

//rootlint:hotpath
func directCall(p *pool) {
	// x.M() used as a call is never a bound-method closure.
	p.grow(1)
}

func coldBinding(p *pool) func(int) {
	// Method values outside a hot function are fine.
	return p.grow
}
