// Package a holds the failing leakcheck cases.
package a

func Spawn() int {
	ch := make(chan int)
	done := make(chan struct{})
	go func() {
		ch <- 1 // want "goroutine blocks on send to unbuffered channel ch with no select escape"
	}()
	go func() {
		<-done // want "goroutine blocks on receive from unbuffered channel done with no select escape"
	}()
	go func() {
		for range ch { // want "goroutine ranges over unbuffered channel ch with no select escape"
		}
	}()
	return <-ch
}

func SingleCaseSelect() {
	ch := make(chan int)
	go func() {
		select {
		case ch <- 2: // want "goroutine blocks on send to unbuffered channel ch with no select escape"
		}
	}()
	<-ch
}

type pipe struct {
	c chan int
}

func NewPipe() *pipe {
	return &pipe{c: make(chan int)}
}

func (p *pipe) Start() {
	go func() {
		p.c <- 1 // want "goroutine blocks on send to unbuffered channel c with no select escape"
	}()
}
