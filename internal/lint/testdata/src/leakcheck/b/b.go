// Package b holds the near-miss leakcheck idioms that must stay silent.
package b

func Buffered() {
	ch := make(chan int, 4)
	go func() {
		ch <- 1 // buffered: cannot block forever on a vanished receiver
	}()
}

func Escaped(quit chan struct{}) {
	ch := make(chan int)
	go func() {
		select {
		case ch <- 1:
		case <-quit:
		}
	}()
	<-ch
}

func WithDefault() int {
	ch := make(chan int)
	go func() {
		select {
		case ch <- 1:
		default:
		}
	}()
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

func Rebuffered() {
	ch := make(chan int)
	ch = make(chan int, 1)
	go func() {
		ch <- 1 // a buffered make exists for ch: unprovable, stay silent
	}()
}

func OutsideGoroutine() {
	ch := make(chan int)
	go drainOne(ch) // named-function goroutines are out of scope
	ch <- 1         // bare send outside a go literal
}

func drainOne(ch chan int) {
	<-ch
}

func Unknown(ch chan int) {
	go func() {
		ch <- 1 // parameter channel: buffering unknown, stay silent
	}()
}

func Allowed() {
	ch := make(chan int)
	go func() {
		//rootlint:allow leakcheck: receiver is joined in the caller before any early return
		ch <- 1
	}()
	<-ch
}
