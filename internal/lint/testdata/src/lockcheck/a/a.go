// Package a holds the failing lockcheck cases — every diagnostic form,
// each carrying its expectation. Package b holds the near-misses that must
// stay silent.
package a

import (
	"sync"
	"sync/atomic"

	"lockcheck/shard"
)

type config struct{ ttl int }

type cache struct {
	mu sync.RWMutex
	//rootlint:guardedby mu
	entries map[string]int
	//rootlint:guardedby mu
	bytes int64
	//rootlint:atomic
	hits int64
	//rootlint:immutable-after-start
	budget int64
	limit  int // want "field cache.limit shares a struct with sync state but declares no protection regime"
}

func newCache() *cache {
	// Constructors touch everything freely: the value is not shared yet.
	return &cache{entries: make(map[string]int), budget: 1 << 20}
}

func (c *cache) unlockedRead(k string) int {
	return c.entries[k] // want "read of cache.entries requires c.mu held"
}

func (c *cache) writeUnderRLock(k string, v int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.entries[k] = v // want "write to cache.entries while c.mu is only read-locked"
}

func (c *cache) unlockTooEarly(k string) int {
	c.mu.Lock()
	c.mu.Unlock()
	return c.entries[k] // want "read of cache.entries requires c.mu held"
}

func (c *cache) lockedInOneBranch(k string, fast bool) int {
	if fast {
		c.mu.RLock()
		defer c.mu.RUnlock()
	}
	return c.entries[k] // want "read of cache.entries requires c.mu held"
}

func (c *cache) asyncUnderLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.bytes++ // want "write of cache.bytes requires c.mu held"
	}()
}

func (c *cache) mixedAtomic() int64 {
	c.hits++ // want "plain write of cache.hits mixes atomic and unsynchronized access"
	atomic.AddInt64(&c.hits, 1)
	return c.hits // want "plain read of cache.hits mixes atomic and unsynchronized access"
}

func (c *cache) tune(n int64) {
	c.budget = n // want "write to cache.budget outside a constructor"
}

type pub struct {
	//rootlint:atomic
	cur atomic.Pointer[config]
	//rootlint:guardedby mu
	gen int
	mu  sync.Mutex
}

func (p *pub) leakPointer() *atomic.Pointer[config] {
	return &p.cur // want "plain write of pub.cur mixes atomic and unsynchronized access"
}

func (p *pub) bumpGen() {
	p.gen++ // want "write of pub.gen requires p.mu held"
}

var tblMu sync.Mutex

//rootlint:guardedby tblMu
var tbl = map[string]int{}

func globalUnlocked(k string) int {
	return tbl[k] // want "read of lockcheck/a.tbl requires tblMu held"
}

// Poke is not a shard root and has no confined caller: the whole-program
// walk must flag a cross-package touch of shard-confined state.
func Poke(l *shard.Loop) {
	l.Hits++ // want "write of Loop.Hits from Poke, which is not confined to shard roots"
}
