// A second file in the same package: the analyzer and the linttest harness
// must handle wants and bodies across files in one run.
package a

func evictOne(c *cache, k string) {
	delete(c.entries, k) // want "write of cache.entries requires c.mu held"
}
