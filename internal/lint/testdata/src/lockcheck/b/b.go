// Package b holds the passing lockcheck idioms: everything here must stay
// silent.
package b

import (
	"sync"
	"sync/atomic"
)

type settings struct{ ttl int }

type counter struct {
	mu sync.Mutex
	//rootlint:guardedby mu
	n int
	// done is a channel: self-synchronizing, exempt from coverage.
	done chan struct{}
	// seq is atomic-typed: self-synchronizing, exempt from coverage.
	seq atomic.Int64
}

func New() *counter {
	c := &counter{done: make(chan struct{}, 1)}
	c.n = 1 // constructor: the value is not shared yet
	return c
}

func (c *counter) Add(d int) {
	c.mu.Lock()
	c.n += d
	c.mu.Unlock()
}

func (c *counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump() // entry-set inference: every caller of bump holds c.mu
}

func (c *counter) Get(fast bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fast {
		return c.n
	}
	return c.n + 1
}

// bump is only ever called with c.mu held; the call-site intersection
// proves it.
func (c *counter) bump() {
	c.n++
}

type rcache struct {
	mu sync.RWMutex
	//rootlint:guardedby mu
	m map[string]int
	//rootlint:immutable-after-start
	budget int
}

func (r *rcache) Get(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}

func (r *rcache) Put(k string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[k] = v
}

func (r *rcache) SetBudget(n int) {
	r.budget = n // Set* swap point: allowed by immutable-after-start
}

func (r *rcache) Within(n int) bool {
	return r.budget >= n // reads are free
}

type pub struct {
	//rootlint:atomic
	cur atomic.Pointer[settings]
	//rootlint:atomic
	ops int64
	pad [4]atomic.Int64
}

func (p *pub) Swap(s *settings) *settings {
	p.cur.Store(s)
	atomic.AddInt64(&p.ops, 1)
	return p.cur.Load()
}

var regMu sync.Mutex

//rootlint:guardedby regMu
var registry = map[string]int{}

func Register(k string, v int) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[k] = v
}

// allowed demonstrates a reasoned suppression on an unprovable access.
func (c *counter) allowed() int {
	//rootlint:allow lockcheck: read-only snapshot for logs; staleness is fine
	return c.n
}
