// Package shard owns single-goroutine state: the fixture's whole-program
// confinement cases, with a sibling package (a) providing the out-of-shard
// caller.
package shard

// Loop is one shard's worker; Hits is owned by the loop goroutine.
type Loop struct {
	//rootlint:shardconfined Loop.Run,drain
	Hits int
}

// Run is the shard's owning loop.
func (l *Loop) Run(n int) {
	for i := 0; i < n; i++ {
		l.step()
	}
}

// step has Run as its only caller, so it is confined by the caller walk.
func (l *Loop) step() {
	l.Hits++
}

// drain is the ordered-drain callback root named by the directive.
func drain(l *Loop) {
	l.Hits++
}

// Reset is exported API: not a root, no callers, not confined.
func (l *Loop) Reset() {
	l.flush()
}

// flush's only caller is Reset, which is not confined, so flush is not
// either.
func (l *Loop) flush() {
	l.Hits = 0 // want "write of Loop.Hits from flush, which is not confined to shard roots Loop.Run,drain"
}
