// Package a constructs metrics: some correctly registered, some violating
// the registry cross-checks.
package a

import "metricname/telemetry"

// The clean claims: registered once, matching kinds.
var (
	mOK      = telemetry.NewCounter("a/ok")
	mDepth   = telemetry.NewGauge("a/depth")
	mLatency = telemetry.NewHistogram("a/latency")
	mDup     = telemetry.NewCounter("a/dup")
)

// A second claim of an already-claimed name panics at init.
var mDupAgain = telemetry.NewCounter("a/dup") // want "constructed at multiple call sites"

// A name absent from the Registry panics at init.
var mUnregistered = telemetry.NewCounter("a/unregistered") // want "not in the telemetry Registry"

// A constructor that disagrees with the registered kind panics at init.
var mWrongKind = telemetry.NewCounter("a/wrong-kind") // want "registered as KindGauge but constructed with NewCounter"

// A computed name defeats the registry cross-check entirely.
func dynamic(name string) *telemetry.Counter {
	return telemetry.NewCounter(name) // want "must be a string literal"
}
