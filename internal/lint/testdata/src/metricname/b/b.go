// Package b holds near-miss idioms that must stay silent: constructors from
// an unrelated package, methods named like constructors, and a clean claim.
package b

import "metricname/telemetry"

// A registered, once-claimed metric: silent.
var mOK = telemetry.NewCounter("b/ok")

// local mimics the constructor names on an unrelated receiver; calls through
// it are not telemetry claims.
type local struct{}

func (local) NewCounter(name string) int { _ = name; return 0 }

// notTelemetry exercises the mimic: same method name, not the telemetry
// package, so the bogus name must not be reported.
func notTelemetry() int {
	var l local
	return l.NewCounter("b/not-a-metric")
}
