// Package telemetry is a fixture stand-in for the real telemetry package:
// the analyzer only needs the constructor shapes and the Registry, matched
// by package name and import-path suffix.
package telemetry

// Kind is a metric's shape.
type Kind uint8

// Kinds, mirroring the real registry's enum.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// Def is one registry entry.
type Def struct {
	Name string
	Kind Kind
}

// Registry is the closed name set the analyzer cross-checks constructor
// call sites against.
var Registry = []Def{
	{Name: "a/ok", Kind: KindCounter},
	{Name: "a/depth", Kind: KindGauge},
	{Name: "a/latency", Kind: KindHistogram},
	{Name: "a/dup", Kind: KindCounter},
	{Name: "a/wrong-kind", Kind: KindGauge},
	{Name: "a/ok", Kind: KindCounter},   // want "duplicate Registry entry"
	{Name: "a/dead", Kind: KindCounter}, // want "dead Registry entry"
	{Name: "b/ok", Kind: KindCounter},
}

// Counter is a stub metric type.
type Counter struct{}

// Gauge is a stub metric type.
type Gauge struct{}

// Histogram is a stub metric type.
type Histogram struct{}

// NewCounter claims the named counter.
func NewCounter(name string) *Counter { _ = name; return &Counter{} }

// NewGauge claims the named gauge.
func NewGauge(name string) *Gauge { _ = name; return &Gauge{} }

// NewHistogram claims the named histogram.
func NewHistogram(name string) *Histogram { _ = name; return &Histogram{} }
