// Package a holds the orderedmap analyzer's failing cases: map ranges whose
// bodies write into order-sensitive sinks.
package a

import (
	"fmt"
	"hash"
	"io"
	"strings"
)

func dumpDirect(w io.Writer, counts map[string]int) {
	for name, n := range counts {
		fmt.Fprintf(w, "%s %d\n", name, n) // want "fmt.Fprintf writes inside a map range"
	}
}

func digest(h hash.Hash, m map[string][]byte) {
	for _, v := range m {
		h.Write(v) // want "method Write writes inside a map range"
	}
}

func render(m map[string]string) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want "method WriteString writes inside a map range"
	}
	return sb.String()
}

func copyOut(w io.Writer, m map[string]string) {
	for _, v := range m {
		io.WriteString(w, v) // want "io.WriteString writes inside a map range"
	}
}
