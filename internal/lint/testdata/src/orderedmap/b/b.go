// Package b holds the orderedmap analyzer's passing cases: the sorted-keys
// fix, order-insensitive aggregation, ordered (slice) iteration, and a
// reasoned allow. No reports here.
package b

import (
	"fmt"
	"io"
	"sort"
)

// The canonical fix: extract and sort the keys, then emit in sorted order.
func dumpSorted(w io.Writer, counts map[string]int) {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s %d\n", k, counts[k])
	}
}

// Aggregation inside a map range is order-insensitive and fine.
func total(counts map[string]int) int {
	sum := 0
	for _, n := range counts {
		sum += n
	}
	return sum
}

// Slice iteration is deterministic; writes inside it are fine.
func dumpSlice(w io.Writer, rows []string) {
	for _, r := range rows {
		io.WriteString(w, r)
	}
}

// A genuinely order-insensitive sink gets a reasoned allow on the range.
func debugDump(w io.Writer, counts map[string]int) {
	//rootlint:allow maporder: debug-only output, never hashed or persisted
	for k, n := range counts {
		fmt.Fprintf(w, "%s=%d ", k, n)
	}
}
