// Package a claims flight-recorder events: some correctly registered, some
// violating the schema cross-checks.
package a

import "qlogfield/qlog"

// The clean claims: registered once, field lists matching the schema.
var (
	evOK    = qlog.NewEvent("a/ok", "x", "y")
	evDup   = qlog.NewEvent("a/dup", "x")
	evShort = qlog.NewEvent("a/short", "x", "y") // want "claimed with 2 fields, Registry has 3"
)

// A second claim of an already-claimed kind panics at init.
var evDupAgain = qlog.NewEvent("a/dup", "x") // want "claimed at multiple call sites"

// A kind absent from the Registry panics at init.
var evUnregistered = qlog.NewEvent("a/unregistered", "x") // want "not in the qlog Registry"

// A field name that disagrees with the schema panics at init.
var evRenamed = qlog.NewEvent("a/renamed", "x", "z") // want "field 1 is \"z\", Registry says \"y\""

// A computed kind defeats the schema cross-check entirely.
func dynamicKind(kind string) *qlog.Kind {
	return qlog.NewEvent(kind, "x") // want "must be string literals"
}

// A computed field name defeats the arity cross-check the same way.
func dynamicField(field string) *qlog.Kind {
	return qlog.NewEvent("a/ok", field) // want "must be string literals"
}

// A spread claim hides the whole field list.
func spread(all []string) *qlog.Kind {
	return qlog.NewEvent("a/ok", all...) // want "must spell the kind and every field as string literals"
}
