// Package b holds near-miss idioms that must stay silent: NewEvent on an
// unrelated receiver, and a clean claim against a schema entry that carries
// Help and Enum decoration.
package b

import "qlogfield/qlog"

// A registered, once-claimed event: silent.
var evOK = qlog.NewEvent("b/ok", "n")

// local mimics the constructor name on an unrelated receiver; calls through
// it are not qlog claims.
type local struct{}

func (local) NewEvent(kind string, fields ...string) int {
	_, _ = kind, fields
	return 0
}

// notQlog exercises the mimic: same method name, not the qlog package, so
// the bogus kind must not be reported.
func notQlog() int {
	var l local
	return l.NewEvent("b/not-an-event", "nope")
}
