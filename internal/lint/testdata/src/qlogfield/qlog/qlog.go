// Package qlog is a fixture stand-in for the real flight-recorder package:
// the analyzer only needs the NewEvent shape and the Registry, matched by
// package name and import-path suffix.
package qlog

// Field is one numeric event field.
type Field struct {
	Name string
	Help string
	Enum []string
}

// Def is one registry entry: a kind and its ordered field list.
type Def struct {
	Kind   string
	Help   string
	Fields []Field
}

// Registry is the closed event schema the analyzer cross-checks claim
// sites against.
var Registry = []Def{
	{Kind: "a/ok", Fields: []Field{{Name: "x"}, {Name: "y"}}},
	{Kind: "a/dup", Fields: []Field{{Name: "x"}}},
	{Kind: "a/short", Fields: []Field{{Name: "x"}, {Name: "y"}, {Name: "z"}}},
	{Kind: "a/renamed", Fields: []Field{{Name: "x"}, {Name: "y"}}},
	{Kind: "a/ok", Fields: []Field{{Name: "x"}}},   // want "duplicate Registry entry"
	{Kind: "a/dead", Fields: []Field{{Name: "x"}}}, // want "dead Registry entry"
	{Kind: "b/ok", Fields: []Field{{Name: "n", Help: "a count", Enum: []string{"zero", "one"}}}},
}

// Kind is a claimed event kind handle.
type Kind struct{}

// NewEvent claims an event kind.
func NewEvent(kind string, fields ...string) *Kind {
	_, _ = kind, fields
	return &Kind{}
}
