package measure

import (
	"fmt"

	"repro/internal/axfr"
	"repro/internal/dnsserver"
	"repro/internal/dnswire"
	"repro/internal/rss"
	"repro/internal/topology"
	"repro/internal/zone"
)

// Battery is the wire-true query set of the paper's measurement script
// (Appendix F): per root server IP, 47 queries — AXFR, ZONEMD, NS for "."
// and root-servers.net, the four CHAOS identity probes, and A/AAAA/TXT for
// each of the 13 root server names. RunBattery builds every query as a real
// DNS message, runs it through an in-process authoritative server, and
// verifies the responses, so the codec, server, and zone contents are
// exercised end-to-end inside the campaign.
type Battery struct {
	srv *dnsserver.Server
	// memBytes estimates the resident footprint of the zones the battery
	// serves, computed once at construction; the battery cache budgets by
	// it. Zero for a zero-value Battery.
	memBytes int64
}

// SizeBytes reports the battery's estimated resident footprint.
func (b *Battery) SizeBytes() int64 { return b.memBytes }

// zoneFootprint estimates a zone's resident bytes: the cached canonical
// wire of each record (which the battery's serve paths materialize anyway)
// plus a fixed allowance for the decoded RR value and slice headers.
func zoneFootprint(z *zone.Zone) int64 {
	const perRecordOverhead = 96
	var n int64
	for i := range z.Records {
		n += int64(len(z.CanonicalWire(i))) + perRecordOverhead
	}
	return n
}

// NewBattery wraps the root zone (and the root-servers.net companion zone
// the real root servers also serve) in an in-process server. The companion
// is derived from the root zone's era: pre-renumbering serials carry
// b.root's old addresses.
func NewBattery(z *zone.Zone, identity dnsserver.Identity) (*Battery, error) {
	oldB := zone.SerialCompare(z.Serial(), 2023112700) < 0
	companion := zone.SynthesizeRootServersNet(z.Serial(), oldB)
	srv, err := dnsserver.New(dnsserver.Config{
		Zone: z, ExtraZones: []*zone.Zone{companion},
		Identity: identity, AllowAXFR: true, UDPSize: 4096,
	})
	if err != nil {
		return nil, err
	}
	return &Battery{srv: srv, memBytes: zoneFootprint(z) + zoneFootprint(companion)}, nil
}

// BatteryResult summarizes a battery run.
type BatteryResult struct {
	Queries  int
	Failures []string
}

// ok records a check.
func (r *BatteryResult) check(cond bool, format string, args ...any) {
	if !cond {
		r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
	}
}

// Run executes the full battery against the server as seen through target
// (the identity answers and the b.root glue expectation depend on it).
func (b *Battery) Run(target rss.ServiceAddr, expectIdentity string) BatteryResult {
	var res BatteryResult
	var id uint16
	// One scratch buffer serves all 47 round-trips: Unpack copies everything
	// it keeps, so each pack may overwrite the previous message's bytes.
	var scratch []byte

	query := func(name dnswire.Name, typ dnswire.Type, class dnswire.Class) *dnswire.Message {
		id++
		q := &dnswire.Message{
			Header:    dnswire.Header{ID: id, Opcode: dnswire.OpcodeQuery},
			Questions: []dnswire.Question{{Name: name, Type: typ, Class: class}},
		}
		q.WithEDNS(4096, true)
		res.Queries++
		// Round-trip through the wire codec, as a socket would.
		wire, err := q.AppendPack(scratch[:0])
		if err != nil {
			res.check(false, "pack %s/%s: %v", name, typ, err)
			return nil
		}
		scratch = wire[:0]
		parsed, err := dnswire.Unpack(wire)
		if err != nil {
			res.check(false, "unpack %s/%s: %v", name, typ, err)
			return nil
		}
		resp := b.srv.Handle(parsed, false)
		if resp == nil {
			res.check(false, "no response for %s/%s", name, typ)
			return nil
		}
		respWire, err := resp.AppendPack(scratch[:0])
		if err != nil {
			res.check(false, "pack response %s/%s: %v", name, typ, err)
			return nil
		}
		scratch = respWire[:0]
		back, err := dnswire.Unpack(respWire)
		if err != nil {
			res.check(false, "unpack response %s/%s: %v", name, typ, err)
			return nil
		}
		res.check(back.Header.ID == id, "%s/%s: response ID mismatch", name, typ)
		return back
	}

	// 1. NS for the root: the priming response.
	if m := query(dnswire.Root, dnswire.TypeNS, dnswire.ClassINET); m != nil {
		ns := 0
		for _, rr := range m.Answers {
			if rr.Type() == dnswire.TypeNS {
				ns++
			}
		}
		res.check(ns == 13, "priming returned %d NS records", ns)
	}
	// 2. NS for root-servers.net: the companion zone's authoritative set.
	if m := query(dnswire.MustName("root-servers.net."), dnswire.TypeNS, dnswire.ClassINET); m != nil {
		ns := 0
		for _, rr := range m.Answers {
			if rr.Type() == dnswire.TypeNS {
				ns++
			}
		}
		res.check(m.Header.Authoritative && ns == 13,
			"root-servers.net NS: aa=%v count=%d", m.Header.Authoritative, ns)
	}
	// 3. ZONEMD at the apex.
	if m := query(dnswire.Root, dnswire.TypeZONEMD, dnswire.ClassINET); m != nil {
		res.check(m.Header.Rcode == dnswire.RcodeNoError, "ZONEMD rcode %s", m.Header.Rcode)
	}
	// 4. The CHAOS identity battery.
	for _, name := range []string{"hostname.bind.", "id.server."} {
		if m := query(dnswire.MustName(name), dnswire.TypeTXT, dnswire.ClassCHAOS); m != nil && expectIdentity != "" {
			got := ""
			for _, rr := range m.Answers {
				if txt, ok := rr.Data.(dnswire.TXTRecord); ok && len(txt.Strings) > 0 {
					got = txt.Strings[0]
				}
			}
			res.check(got == expectIdentity, "%s = %q, want %q", name, got, expectIdentity)
		}
	}
	for _, name := range []string{"version.bind.", "version.server."} {
		query(dnswire.MustName(name), dnswire.TypeTXT, dnswire.ClassCHAOS)
	}
	// 5. A/AAAA/TXT for every root server name.
	for i, host := range zone.RootServerHosts() {
		wantV4, wantV6 := zone.WellKnownRootAddr(i)
		if i == 1 { // b.root: expectation depends on the zone's era
			soa, _ := b.srv.Zone().SOA()
			if zone.SerialCompare(soa.Data.(dnswire.SOARecord).Serial, 2023112700) < 0 {
				wantV4 = rss.Addr("b", topology.IPv4, true)
				wantV6 = rss.Addr("b", topology.IPv6, true)
			}
		}
		if m := query(host, dnswire.TypeA, dnswire.ClassINET); m != nil {
			found := false
			for _, rr := range m.Answers {
				if a, ok := rr.Data.(dnswire.ARecord); ok && a.Addr == wantV4 {
					found = true
				}
			}
			res.check(found, "%s A: expected %s", host, wantV4)
		}
		if m := query(host, dnswire.TypeAAAA, dnswire.ClassINET); m != nil {
			found := false
			for _, rr := range m.Answers {
				if a, ok := rr.Data.(dnswire.AAAARecord); ok && a.Addr == wantV6 {
					found = true
				}
			}
			res.check(found, "%s AAAA: expected %s", host, wantV6)
		}
		if m := query(host, dnswire.TypeTXT, dnswire.ClassINET); m != nil {
			// No TXT records exist for the hosts: NOERROR/NODATA with SOA.
			res.check(m.Header.Rcode == dnswire.RcodeNoError && len(m.Answers) == 0,
				"%s TXT: rcode %s answers %d", host, m.Header.Rcode, len(m.Answers))
		}
	}
	// 6. AXFR: serve and reassemble in-process.
	res.Queries++
	axq := dnswire.Question{Name: dnswire.Root, Type: dnswire.TypeAXFR, Class: dnswire.ClassINET}
	msgs, err := axfr.ResponseMessages(b.srv.Zone(), 9999, axq)
	if err != nil {
		res.check(false, "AXFR serve: %v", err)
		return res
	}
	var stream sliceStream
	for _, m := range msgs {
		if err := axfr.WriteMessage(&stream, m); err != nil {
			res.check(false, "AXFR write: %v", err)
			return res
		}
	}
	// The lazy compare consumer both counts and byte-verifies the transfer
	// against the served zone's canonical sidecar without decoding records.
	got, err := axfr.ReceiveCompare(&stream, 9999, b.srv.Zone())
	if err != nil {
		res.check(false, "AXFR receive: %v", err)
		return res
	}
	res.check(got == len(b.srv.Zone().Records),
		"AXFR returned %d records, zone has %d", got, len(b.srv.Zone().Records))
	return res
}

// sliceStream is an in-memory byte pipe.
type sliceStream struct {
	data []byte
	off  int
}

func (s *sliceStream) Write(p []byte) (int, error) {
	s.data = append(s.data, p...)
	return len(p), nil
}

func (s *sliceStream) Read(p []byte) (int, error) {
	if s.off >= len(s.data) {
		return 0, fmt.Errorf("sliceStream: EOF")
	}
	n := copy(p, s.data[s.off:])
	s.off += n
	return n, nil
}
