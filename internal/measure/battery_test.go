package measure

import (
	"testing"
	"time"

	"repro/internal/dnsserver"
	"repro/internal/rss"
	"repro/internal/topology"
	"repro/internal/zone"
)

func TestBatteryCleanZone(t *testing.T) {
	w := testWorld(t)
	cfg := DefaultConfig()
	cfg.TLDCount = 15
	c := NewCampaign(cfg, w)
	when := time.Date(2023, 12, 10, 0, 0, 0, 0, time.UTC)
	z, err := c.signedZone(SerialAt(when), 2, SerialPublishedAt(when), false)
	if err != nil {
		t.Fatal(err)
	}
	battery, err := NewBattery(z, dnsserver.Identity{Hostname: "test.site", Version: "v"})
	if err != nil {
		t.Fatal(err)
	}
	res := battery.Run(rss.ServiceAddr{Letter: "a", Family: topology.IPv4}, "test.site")
	if res.Queries < 47 {
		t.Errorf("battery ran %d queries, want >= 47 (Appendix F)", res.Queries)
	}
	if len(res.Failures) != 0 {
		t.Errorf("battery failures on a clean zone: %v", res.Failures)
	}
}

// TestBatterySizeBytes asserts a real battery reports a plausible nonzero
// footprint, so the campaign's byte-budgeted cache is actually engaged.
func TestBatterySizeBytes(t *testing.T) {
	w := testWorld(t)
	cfg := DefaultConfig()
	cfg.TLDCount = 15
	c := NewCampaign(cfg, w)
	when := time.Date(2023, 12, 10, 0, 0, 0, 0, time.UTC)
	z, err := c.signedZone(SerialAt(when), 2, SerialPublishedAt(when), false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBattery(z, dnsserver.Identity{Hostname: "h", Version: "v"})
	if err != nil {
		t.Fatal(err)
	}
	// The root zone alone holds hundreds of records; anything tiny means
	// the estimator broke.
	if got := b.SizeBytes(); got < int64(len(z.Records))*10 {
		t.Fatalf("SizeBytes = %d for %d records, implausibly small", got, len(z.Records))
	}
}

func TestBatteryDetectsWrongIdentity(t *testing.T) {
	w := testWorld(t)
	cfg := DefaultConfig()
	cfg.TLDCount = 15
	c := NewCampaign(cfg, w)
	when := time.Date(2023, 12, 10, 0, 0, 0, 0, time.UTC)
	z, err := c.signedZone(SerialAt(when), 2, SerialPublishedAt(when), false)
	if err != nil {
		t.Fatal(err)
	}
	battery, err := NewBattery(z, dnsserver.Identity{Hostname: "actual", Version: "v"})
	if err != nil {
		t.Fatal(err)
	}
	res := battery.Run(rss.ServiceAddr{Letter: "a", Family: topology.IPv4}, "expected")
	if len(res.Failures) == 0 {
		t.Error("identity mismatch undetected")
	}
}

func TestBatteryBRootEra(t *testing.T) {
	w := testWorld(t)
	cfg := DefaultConfig()
	cfg.TLDCount = 15
	c := NewCampaign(cfg, w)

	// Pre-change serial: the zone must carry old b glue, and the battery's
	// expectation adapts.
	pre := time.Date(2023, 10, 1, 0, 0, 0, 0, time.UTC)
	zPre, err := c.signedZone(SerialAt(pre), 1, SerialPublishedAt(pre), false)
	if err != nil {
		t.Fatal(err)
	}
	bHost := zone.RootServerHosts()[1]
	glue := zPre.Glue(bHost)
	foundOld := false
	for _, rr := range glue {
		if rr.String() != "" && rr.Data.String() == rss.OldBv4 {
			foundOld = true
		}
	}
	if !foundOld {
		t.Errorf("pre-change zone lacks old b.root glue: %v", glue)
	}
	battery, err := NewBattery(zPre, dnsserver.Identity{Hostname: "x", Version: "v"})
	if err != nil {
		t.Fatal(err)
	}
	res := battery.Run(rss.ServiceAddr{Letter: "b", Family: topology.IPv4, Old: true}, "x")
	if len(res.Failures) != 0 {
		t.Errorf("pre-change battery failures: %v", res.Failures)
	}

	// Post-change serial carries the new glue.
	post := time.Date(2023, 12, 10, 0, 0, 0, 0, time.UTC)
	zPost, err := c.signedZone(SerialAt(post), 2, SerialPublishedAt(post), false)
	if err != nil {
		t.Fatal(err)
	}
	foundNew := false
	for _, rr := range zPost.Glue(bHost) {
		if rr.Data.String() == "170.247.170.2" {
			foundNew = true
		}
	}
	if !foundNew {
		t.Error("post-change zone lacks new b.root glue")
	}
}

func TestCampaignWireCheck(t *testing.T) {
	w := testWorld(t)
	cfg := DefaultConfig()
	start := time.Date(2023, 12, 10, 0, 0, 0, 0, time.UTC)
	cfg.Start, cfg.End, cfg.Scale = start, start.Add(2*time.Hour), 1
	cfg.TLDCount = 15
	cfg.WireCheck = true
	c := NewCampaign(cfg, w)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.WireQueries < 47*4 {
		t.Errorf("wire check ran %d queries", c.WireQueries)
	}
	if len(c.WireFailures) != 0 {
		t.Errorf("wire check failures: %v", c.WireFailures[:min(3, len(c.WireFailures))])
	}
}
