package measure

import (
	"sync"

	"repro/internal/zone"
)

// zoneCache is a thread-safe, single-flight cache of signed zones keyed by
// (serial, rollout state, staleness). Single-flight matters under the
// parallel campaign engine: signing a zone is the most expensive step on the
// transfer path, and two workers hitting the same serial at once must not
// both pay for it (or race on the map).
type zoneCache struct {
	mu sync.Mutex
	//rootlint:guardedby mu
	entries map[zoneKey]*zoneEntry
}

type zoneEntry struct {
	once sync.Once
	z    *zone.Zone
	err  error
}

func newZoneCache() *zoneCache {
	return &zoneCache{entries: make(map[zoneKey]*zoneEntry)}
}

// get returns the cached zone for key, building it via build exactly once no
// matter how many goroutines ask concurrently.
func (zc *zoneCache) get(key zoneKey, build func() (*zone.Zone, error)) (*zone.Zone, error) {
	zc.mu.Lock()
	e := zc.entries[key]
	if e == nil {
		e = &zoneEntry{}
		zc.entries[key] = e
		mZoneMisses.Inc()
	} else {
		mZoneHits.Inc()
	}
	zc.mu.Unlock()
	e.once.Do(func() { e.z, e.err = build() })
	return e.z, e.err
}

// valCache is the single-flight analogue for validation results: running the
// full ldns-style validation is expensive, and the result is a pure function
// of the key.
type valCache struct {
	mu sync.Mutex
	//rootlint:guardedby mu
	entries map[valKey]*valEntry
}

type valEntry struct {
	once sync.Once
	res  valResult
}

func newValCache() *valCache {
	return &valCache{entries: make(map[valKey]*valEntry)}
}

func (vc *valCache) get(key valKey, build func() valResult) valResult {
	vc.mu.Lock()
	e := vc.entries[key]
	if e == nil {
		e = &valEntry{}
		vc.entries[key] = e
		mValMisses.Inc()
	} else {
		mValHits.Inc()
	}
	vc.mu.Unlock()
	e.once.Do(func() { e.res = build() })
	return e.res
}

// batteryCacheBudget bounds the campaign's wire-check battery cache. The
// previous bound was 8 entries regardless of zone size; 32 MiB holds
// roughly the same number of full-scale batteries (signed root zone +
// companion, ~1–3 MiB each) while letting small-zone campaigns keep far
// more serials resident.
const batteryCacheBudget int64 = 32 << 20

// batteryCache bounds the wire-check battery cache by resident bytes,
// evicting oldest-serial entries while over budget — batteries are only
// useful around the current serial, and serials are monotone over the
// campaign, so oldest-serial is oldest-use. Bounding by bytes rather than
// entry count (the PR 1 policy) lets many cheap entries stay resident —
// copy-on-write zones make the marginal battery small — while a few huge
// ones still evict promptly. (The seed's version cleared the whole map
// instead, throwing away the current serial's neighbors too.)
type batteryCache struct {
	mu sync.Mutex
	//rootlint:immutable-after-start
	budget int64 // max resident bytes
	//rootlint:guardedby mu
	used int64
	//rootlint:guardedby mu
	entries map[zoneKey]batteryEntry
}

type batteryEntry struct {
	b    *Battery
	cost int64
}

func newBatteryCache(budget int64) *batteryCache {
	return &batteryCache{budget: budget, entries: make(map[zoneKey]batteryEntry)}
}

func (bc *batteryCache) get(key zoneKey) (*Battery, bool) {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	e, ok := bc.entries[key]
	if ok {
		mBatteryHits.Inc()
	} else {
		mBatteryMisses.Inc()
	}
	return e.b, ok
}

func (bc *batteryCache) put(key zoneKey, b *Battery) {
	bc.putCost(key, b, b.SizeBytes())
}

// putCost inserts b at an explicit byte cost (put computes it; tests pin
// boundary behavior with synthetic costs). Every entry costs at least one
// byte so that even zero-sized batteries respect the budget's entry
// arithmetic. The just-inserted entry is never evicted, even when it alone
// exceeds the whole budget: the campaign is about to run it.
func (bc *batteryCache) putCost(key zoneKey, b *Battery, cost int64) {
	if cost < 1 {
		cost = 1
	}
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if prev, ok := bc.entries[key]; ok {
		bc.used -= prev.cost
	}
	bc.entries[key] = batteryEntry{b: b, cost: cost}
	bc.used += cost
	for bc.used > bc.budget {
		oldest := key
		first := true
		for k := range bc.entries {
			if first || zone.SerialCompare(k.serial, oldest.serial) < 0 {
				oldest, first = k, false
			}
		}
		if oldest == key {
			return // never evict the entry just inserted
		}
		bc.used -= bc.entries[oldest].cost
		delete(bc.entries, oldest)
		mBatteryEvictions.Inc()
	}
}

// len reports the current entry count (for tests).
func (bc *batteryCache) len() int {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	return len(bc.entries)
}

// bytes reports the resident cost total (for tests).
func (bc *batteryCache) bytes() int64 {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	return bc.used
}
