package measure

import (
	"sync"

	"repro/internal/zone"
)

// zoneCache is a thread-safe, single-flight cache of signed zones keyed by
// (serial, rollout state, staleness). Single-flight matters under the
// parallel campaign engine: signing a zone is the most expensive step on the
// transfer path, and two workers hitting the same serial at once must not
// both pay for it (or race on the map).
type zoneCache struct {
	mu      sync.Mutex
	entries map[zoneKey]*zoneEntry
}

type zoneEntry struct {
	once sync.Once
	z    *zone.Zone
	err  error
}

func newZoneCache() *zoneCache {
	return &zoneCache{entries: make(map[zoneKey]*zoneEntry)}
}

// get returns the cached zone for key, building it via build exactly once no
// matter how many goroutines ask concurrently.
func (zc *zoneCache) get(key zoneKey, build func() (*zone.Zone, error)) (*zone.Zone, error) {
	zc.mu.Lock()
	e := zc.entries[key]
	if e == nil {
		e = &zoneEntry{}
		zc.entries[key] = e
	}
	zc.mu.Unlock()
	e.once.Do(func() { e.z, e.err = build() })
	return e.z, e.err
}

// valCache is the single-flight analogue for validation results: running the
// full ldns-style validation is expensive, and the result is a pure function
// of the key.
type valCache struct {
	mu      sync.Mutex
	entries map[valKey]*valEntry
}

type valEntry struct {
	once sync.Once
	res  valResult
}

func newValCache() *valCache {
	return &valCache{entries: make(map[valKey]*valEntry)}
}

func (vc *valCache) get(key valKey, build func() valResult) valResult {
	vc.mu.Lock()
	e := vc.entries[key]
	if e == nil {
		e = &valEntry{}
		vc.entries[key] = e
	}
	vc.mu.Unlock()
	e.once.Do(func() { e.res = build() })
	return e.res
}

// batteryCache bounds the wire-check battery cache by evicting the
// oldest-serial entries once it grows past max — batteries are only useful
// around the current serial, and serials are monotone over the campaign, so
// oldest-serial is oldest-use. (The seed's version cleared the whole map
// instead, throwing away the current serial's neighbors too.)
type batteryCache struct {
	mu      sync.Mutex
	max     int
	entries map[zoneKey]*Battery
}

func newBatteryCache(max int) *batteryCache {
	return &batteryCache{max: max, entries: make(map[zoneKey]*Battery)}
}

func (bc *batteryCache) get(key zoneKey) (*Battery, bool) {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	b, ok := bc.entries[key]
	return b, ok
}

func (bc *batteryCache) put(key zoneKey, b *Battery) {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	bc.entries[key] = b
	for len(bc.entries) > bc.max {
		oldest := key
		first := true
		for k := range bc.entries {
			if first || zone.SerialCompare(k.serial, oldest.serial) < 0 {
				oldest, first = k, false
			}
		}
		if oldest == key {
			return // never evict the entry just inserted
		}
		delete(bc.entries, oldest)
	}
}

// len reports the current cache size (for tests).
func (bc *batteryCache) len() int {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	return len(bc.entries)
}
