package measure

import (
	"errors"
	"fmt"
	mrand "math/rand"
	"time"

	"repro/internal/anycast"
	"repro/internal/dnssec"
	"repro/internal/dnsserver"
	"repro/internal/dnswire"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/rss"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/traceroute"
	"repro/internal/vantage"
	"repro/internal/zone"
	"repro/internal/zonemd"
)

// ProbeEvent is one completed probe (traceroute + query battery) from one VP
// to one root service address during one tick.
type ProbeEvent struct {
	Tick   Tick
	VP     *vantage.VP
	VPIdx  int
	Target rss.ServiceAddr
	// Lost marks a probe whose queries all timed out (no route or packet
	// loss under dig +retry=0).
	Lost bool
	// Degraded marks a probe the supervisor salvaged after a worker fault
	// (recovered panic or injected error): the outcome is recorded as lost
	// and counted against Config.ErrorBudget instead of killing the pool.
	Degraded bool
	// Site fields are valid when !Lost.
	SiteID     string
	Identifier string
	Facility   string
	SiteCity   geo.City
	SiteKind   anycast.SiteKind
	// RTTms is the query round-trip time.
	RTTms float64
	// ASPath is the AS-level forward path.
	ASPath []int
	// SecondToLast is the second-to-last traceroute hop identity; STLOK is
	// false when the hop did not respond.
	SecondToLast string
	STLOK        bool
}

// TransferEvent is one AXFR attempt with its validation outcome.
type TransferEvent struct {
	Tick   Tick
	VP     *vantage.VP
	VPIdx  int
	Target rss.ServiceAddr
	Lost   bool
	// Degraded marks a transfer outcome salvaged by the worker supervisor;
	// see ProbeEvent.Degraded.
	Degraded bool
	Serial   uint32
	// Fault is the injected fault class behind a failed validation (None
	// for clean transfers).
	Fault faults.Kind
	// ZonemdErr and DNSSECErr carry the real validator's classification.
	ZonemdErr, DNSSECErr error
	// ComparisonMismatch reports that the transferred zone differs from a
	// reference copy with the same SOA (the paper's ICANN-download check).
	// It catches corruption in glue/delegation data that DNSSEC does not
	// cover before ZONEMD became verifiable.
	ComparisonMismatch bool
	// Bitflip, when non-nil, renders the corrupted record (Fig. 10).
	Bitflip *faults.Bitflip
}

// Handler consumes campaign events. Implementations must be cheap: they run
// inline with the campaign loop.
type Handler interface {
	HandleProbe(ProbeEvent)
	HandleTransfer(TransferEvent)
}

// BitflipPlan schedules one memory bitflip affecting a transfer.
type BitflipPlan struct {
	VPIdx  int
	Letter rss.Letter
	Family topology.Family
	Old    bool
	At     time.Time
	// FlipName corrupts an owner name instead of a signature (the paper's
	// .ruhr case).
	FlipName bool
}

// SkewWindow gives one VP a broken clock during a window.
type SkewWindow struct {
	VPIdx      int
	Start, End time.Time
	Skew       time.Duration
}

// StaleWindow makes specific deployment sites serve a stale zone copy.
type StaleWindow struct {
	Letter     rss.Letter
	SiteIDs    []string
	Start, End time.Time
	// Age is how far behind the stale copy's signatures are.
	Age time.Duration
}

// FaultPlan is the campaign's injected-fault schedule. DefaultFaultPlan
// mirrors the paper's Table 2 observations.
type FaultPlan struct {
	Bitflips []BitflipPlan
	Skews    []SkewWindow
	Stales   []StaleWindow
	Loss     faults.LossModel
}

// DefaultFaultPlan reproduces Table 2's shape: eight bitflipped transfers on
// three VPs across five servers, two clock-skew VPs (one brief, one
// spanning 2023-12-21 to 2023-12-23), and two stale d.root sites (the
// paper's Tokyo and Leeds cases, 2023-08-16 and 2023-10-06).
func DefaultFaultPlan(d *anycast.Deployment) FaultPlan {
	day := func(m time.Month, d, h int) time.Time {
		return time.Date(2023, m, d, h, 0, 0, 0, time.UTC)
	}
	// The paper's stale sites are d.root in Tokyo and Leeds — reachable
	// global sites, one in Asia and one in Europe.
	staleSites := make([]string, 0, 2)
	for _, region := range []geo.Region{geo.Asia, geo.Europe} {
		for _, s := range d.Sites {
			if s.Kind == anycast.Global && s.City.Region == region {
				staleSites = append(staleSites, s.ID)
				break
			}
		}
	}
	for len(staleSites) < 2 && len(d.Sites) > len(staleSites) {
		staleSites = append(staleSites, d.Sites[len(staleSites)].ID)
	}
	plan := FaultPlan{
		Skews: []SkewWindow{
			{VPIdx: 1, Start: day(time.December, 21, 10), End: day(time.December, 23, 11), Skew: -26 * time.Hour},
			{VPIdx: 2, Start: day(time.October, 2, 22), End: day(time.October, 2, 23), Skew: -26 * time.Hour},
		},
		Stales: []StaleWindow{
			{Letter: "d", SiteIDs: staleSites[:1], Start: day(time.August, 16, 10), End: day(time.August, 16, 12), Age: 40 * 24 * time.Hour},
			{Letter: "d", SiteIDs: staleSites[1:], Start: day(time.October, 6, 10), End: day(time.October, 6, 14), Age: 40 * 24 * time.Hour},
		},
		Loss: faults.LossModel{Prob: 0.004, Seed: 77},
	}
	// Eight bitflips: three VPs, five distinct servers, one a name flip.
	flips := []struct {
		vp   int
		l    rss.Letter
		f    topology.Family
		old  bool
		m    time.Month
		d, h int
		name bool
	}{
		{3, "d", topology.IPv6, false, time.September, 26, 21, false},
		{3, "d", topology.IPv6, false, time.October, 24, 10, false},
		{4, "g", topology.IPv6, false, time.November, 18, 7, false},
		{4, "b", topology.IPv4, true, time.November, 21, 6, true},
		{5, "c", topology.IPv6, false, time.September, 26, 10, false},
		{5, "g", topology.IPv4, false, time.October, 9, 7, false},
		{5, "c", topology.IPv6, false, time.October, 2, 12, false},
		{3, "d", topology.IPv6, false, time.October, 12, 9, false},
	}
	for _, fl := range flips {
		plan.Bitflips = append(plan.Bitflips, BitflipPlan{
			VPIdx: fl.vp, Letter: fl.l, Family: fl.f, Old: fl.old,
			At: day(fl.m, fl.d, fl.h), FlipName: fl.name,
		})
	}
	return plan
}

// Config parameterizes a campaign.
type Config struct {
	// Start and End bound the campaign; zero values take the paper's dates.
	Start, End time.Time
	// Scale thins the measurement schedule (1 = every 30/15 minutes).
	Scale int
	// TraceEvery runs the traceroute expansion only on every n-th tick per
	// VP/target (1 = always); probes in between still carry route and RTT.
	TraceEvery int
	// TLDCount sizes the synthesized root zone.
	TLDCount int
	// Seed drives all stochastic choices.
	Seed int64
	// WireCheck runs the full Appendix-F query battery through an
	// in-process authoritative server once per tick, verifying the wire
	// codec, server logic, and zone contents end-to-end during the
	// campaign. Failures are reported via Campaign.WireFailures.
	WireCheck bool
	// Workers bounds the campaign's worker pool: each tick's VP loop is
	// sharded across this many goroutines. 0 (the default) uses
	// runtime.GOMAXPROCS(0); 1 runs fully serial. The same seed produces
	// byte-identical reports at any worker count.
	Workers int
	// CheckpointPath, when non-empty, enables crash-safe progress
	// checkpoints: at every CheckpointEvery-tick boundary the campaign
	// seals its checkpointable handlers (making their output durable) and
	// atomically replaces the checkpoint file, so a killed run can resume
	// byte-identically.
	CheckpointPath string
	// CheckpointEvery is the checkpoint cadence in ticks (0 = 32). It is
	// part of the determinism contract: interrupted and uninterrupted runs
	// must use the same cadence, because checkpoint boundaries also seal
	// dataset blocks.
	CheckpointEvery int
	// Resume fast-forwards the campaign from the checkpoint at
	// CheckpointPath instead of starting at the first tick. The checkpoint
	// must come from an identically configured campaign (worker count and
	// error budget may differ).
	Resume bool
	// ErrorBudget bounds degraded outcomes (recovered worker panics,
	// per-probe errors, retried dataset write errors) before the campaign
	// aborts with a summarized error: n >= 0 tolerates n outcomes,
	// negative is unlimited.
	ErrorBudget int
}

// DefaultConfig is a harness-scale campaign: the full VP population and
// target set on a thinned schedule.
func DefaultConfig() Config {
	return Config{
		Start: StudyStart, End: StudyEnd,
		Scale: 48, TraceEvery: 1, TLDCount: 80, Seed: 1,
	}
}

// World bundles the simulated infrastructure a campaign runs against.
type World struct {
	Topo       *topology.Topology
	System     *rss.System
	Population *vantage.Population
	Catchments map[rss.Letter]map[topology.Family]*anycast.Catchment
	Signer     *dnssec.Signer
	// BaseZone is the unsigned post-renumbering zone; BaseZonePre carries
	// b.root's old glue, as the real root zone did before 2023-11-27.
	BaseZone    *zone.Zone
	BaseZonePre *zone.Zone
	Anchor      dnswire.DSRecord
}

// NewWorld builds the full simulated world: topology, 13 deployments,
// VP population, catchments, and the DNSSEC signer with its trust anchor.
func NewWorld(cfg Config, topoCfg topology.Config, vpCfg vantage.Config) (*World, error) {
	topo := topology.Build(topoCfg)
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	sys := rss.Build(topo, cfg.Seed)
	pop := vantage.Generate(topo, vpCfg)
	if len(pop.VPs) == 0 {
		return nil, errors.New("measure: empty VP population")
	}
	// The signer is derived from the seed so that identically configured
	// worlds hold identical keys — together with deterministic RRSIG
	// generation this makes reports byte-identical across runs and worker
	// counts (Config.Seed drives *all* stochastic choices, key material
	// included).
	signer := dnssec.NewDeterministicSigner(cfg.Seed)
	zcfg := zone.DefaultRootConfig()
	zcfg.TLDCount = cfg.TLDCount
	zcfg.Seed = cfg.Seed
	base := zone.SynthesizeRoot(zcfg)
	zcfgPre := zcfg
	zcfgPre.OldBRoot = true
	basePre := zone.SynthesizeRoot(zcfgPre)
	return &World{
		Topo:        topo,
		System:      sys,
		Population:  pop,
		Catchments:  sys.Catchments(),
		Signer:      signer,
		BaseZone:    base,
		BaseZonePre: basePre,
		Anchor:      signer.TrustAnchor().Data.(dnswire.DSRecord),
	}, nil
}

// Campaign executes the measurement schedule over a world.
type Campaign struct {
	Cfg   Config
	World *World
	Plan  FaultPlan

	traceCfg traceroute.Config
	// signedZones caches fully signed+digested zones by (serial, state);
	// single-flight, so concurrent workers never sign the same zone twice.
	signedZones *zoneCache
	// validations caches fault classifications, also single-flight.
	validations *valCache
	// batteries caches wire-check batteries per zone version, evicting
	// oldest-serial entries once the resident-byte budget is exceeded.
	batteries *batteryCache

	// WireQueries and WireFailures accumulate the wire-check results when
	// Config.WireCheck is enabled.
	WireQueries  int
	WireFailures []string

	// deg tracks supervisor-salvaged outcomes against Config.ErrorBudget.
	deg degradedState
}

type zoneKey struct {
	serial uint32
	state  zonemd.RolloutState
	stale  bool
}

type valKey struct {
	serial uint32
	state  zonemd.RolloutState
	fault  faults.Kind
	skewed bool
}

type valResult struct {
	zonemdErr, dnssecErr error
}

// NewCampaign wires a campaign; the fault plan defaults to the paper's
// Table 2 shape over d.root's sites.
func NewCampaign(cfg Config, w *World) *Campaign {
	if cfg.Start.IsZero() {
		cfg.Start = StudyStart
	}
	if cfg.End.IsZero() {
		cfg.End = StudyEnd
	}
	if cfg.Scale < 1 {
		cfg.Scale = 1
	}
	if cfg.TraceEvery < 1 {
		cfg.TraceEvery = 1
	}
	return &Campaign{
		Cfg:         cfg,
		World:       w,
		Plan:        DefaultFaultPlan(w.System.Deployments["d"]),
		traceCfg:    traceroute.DefaultConfig(),
		signedZones: newZoneCache(),
		validations: newValCache(),
		batteries:   newBatteryCache(batteryCacheBudget),
	}
}

// Run is implemented in pool.go: the tick×VP×target walk is sharded across
// a worker pool with a deterministic ordered drain into the handlers.

// runWireCheck executes the Appendix-F battery against the current zone
// version through an in-process server and accumulates any failures. It runs
// serially on the campaign goroutine, once per tick, before the VP fan-out.
func (c *Campaign) runWireCheck(tick Tick) error {
	timer := telemetry.StartTimer()
	span := telemetry.StartSpan("campaign", "wirecheck", tick.Index, 0)
	defer func() {
		span.End()
		timer.ObserveInto(mWirecheckDur)
	}()
	serial := SerialAt(tick.Time)
	state := zonemd.StateAt(tick.Time)
	key := zoneKey{serial, state, false}
	battery, ok := c.batteries.get(key)
	if !ok {
		z, err := c.signedZone(serial, state, SerialPublishedAt(tick.Time), false)
		if err != nil {
			return err
		}
		battery, err = NewBattery(z, dnsserver.Identity{
			Hostname: "wirecheck.local", Version: "repro-campaign",
		})
		if err != nil {
			return err
		}
		c.batteries.put(key, battery)
	}
	res := battery.Run(rss.ServiceAddr{Letter: "a", Family: topology.IPv4}, "wirecheck.local")
	c.WireQueries += res.Queries
	mWireQueries.Add(int64(res.Queries))
	if len(res.Failures) > 0 && len(c.WireFailures) < 100 {
		for _, f := range res.Failures {
			c.WireFailures = append(c.WireFailures, fmt.Sprintf("%s: %s", tick.Time.Format(time.RFC3339), f))
		}
	}
	return nil
}

// probe performs the traceroute+query battery for one (tick, VP, target).
func (c *Campaign) probe(tick Tick, vp *vantage.VP, vpIdx, tIdx int, target rss.ServiceAddr) (ProbeEvent, topology.Route, bool) {
	pe := ProbeEvent{Tick: tick, VP: vp, VPIdx: vpIdx, Target: target}
	catch := c.World.Catchments[target.Letter][target.Family]
	route, ok := catch.SelectAt(vp.ASN, tick.Index, c.Cfg.Seed, c.Cfg.Scale)
	if !ok || c.Plan.Loss.Lost(vpIdx, tIdx, tick.Index, 0) {
		pe.Lost = true
		return pe, route, ok
	}
	site, _ := c.World.System.Deployments[target.Letter].SiteByID(route.Origin.SiteID)
	pe.SiteID = site.ID
	pe.Identifier = site.Identifier
	pe.Facility = site.Facility
	pe.SiteCity = site.City
	pe.SiteKind = site.Kind
	pe.ASPath = route.ASPath

	jitter := rttJitter(c.Cfg.Seed, vpIdx, tIdx, tick.Index)
	pe.RTTms = rttFor(route, target.Family) + jitter

	if tick.Index%c.Cfg.TraceEvery == 0 {
		tr := traceroute.Run(c.World.Topo, route, site, target.Family, c.traceCfg, c.Cfg.Seed, tick.Index)
		pe.SecondToLast, pe.STLOK = tr.SecondToLast()
	}
	return pe, route, true
}

// rttFor computes the path RTT, adding the open-v6 carrier's poor IPv4
// performance (paper §6: 221 ms average v4 vs 23 ms v6 through AS6939).
func rttFor(route topology.Route, f topology.Family) float64 {
	rtt := geoRTT(route)
	if f == topology.IPv4 {
		for _, asn := range route.ASPath[1:max(1, len(route.ASPath))] {
			if asn == topology.ASNOpenV6 {
				rtt += 150 // congested v4 through the open-peering carrier
				break
			}
		}
	}
	return rtt
}

func geoRTT(route topology.Route) float64 {
	return geo.RTTms(route.PathKm, route.Hops()*2+2, 0.25)
}

// rttJitter adds deterministic per-probe noise, uniform in [0, 2) ms. The
// probe key is mixed through splitmix64 finalizers instead of seeding a
// throwaway math/rand generator, keeping the hottest per-probe call
// allocation-free.
func rttJitter(seed int64, vpIdx, tIdx, tick int) float64 {
	h := uint64(seed)
	h = splitmix64(h ^ uint64(vpIdx))
	h = splitmix64(h ^ uint64(tIdx)<<24)
	h = splitmix64(h ^ uint64(tick)<<48)
	// 53 high bits → uniform float64 in [0, 1), scaled to [0, 2).
	return float64(h>>11) / (1 << 53) * 2.0
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// transfer performs the AXFR step and classifies its validation outcome.
func (c *Campaign) transfer(tick Tick, vp *vantage.VP, vpIdx, tIdx int, target rss.ServiceAddr, route topology.Route, routed bool) TransferEvent {
	te := TransferEvent{Tick: tick, VP: vp, VPIdx: vpIdx, Target: target}
	if !routed || c.Plan.Loss.Lost(vpIdx, tIdx, tick.Index, 1) {
		te.Lost = true
		return te
	}
	serial := SerialAt(tick.Time)
	te.Serial = serial
	state := zonemd.StateAt(tick.Time)

	fault, stale, skew := c.classifyFault(tick, vpIdx, target, route)
	te.Fault = fault
	switch fault {
	case faults.None:
		// Clean transfer of the canonical zone: valid by construction.
		return te
	case faults.ClockSkew:
		res := c.validate(serial, state, fault, tick.Time, tick.Time.Add(skew), stale, nil)
		te.ZonemdErr, te.DNSSECErr = res.zonemdErr, res.dnssecErr
	case faults.StaleZone:
		res := c.validate(serial, state, fault, tick.Time, tick.Time, stale, nil)
		te.ZonemdErr, te.DNSSECErr = res.zonemdErr, res.dnssecErr
		te.ComparisonMismatch = true // stale copy differs from the reference
	case faults.BitflipSignature, faults.BitflipName:
		var flip faults.Bitflip
		res := c.validate(serial, state, fault, tick.Time, tick.Time, stale, &flip)
		te.ZonemdErr, te.DNSSECErr = res.zonemdErr, res.dnssecErr
		te.Bitflip = &flip
		te.ComparisonMismatch = true // any flip differs from the reference
	}
	return te
}

// classifyFault decides which planned fault (if any) hits this transfer.
// The returned StaleWindow pointer carries staleness parameters; the
// returned duration is the clock skew for ClockSkew faults.
func (c *Campaign) classifyFault(tick Tick, vpIdx int, target rss.ServiceAddr, route topology.Route) (faults.Kind, *StaleWindow, time.Duration) {
	interval := BaseInterval(tick.Time) * time.Duration(c.Cfg.Scale)
	for _, b := range c.Plan.Bitflips {
		if b.VPIdx == vpIdx && b.Letter == target.Letter && b.Family == target.Family &&
			b.Old == target.Old && !tick.Time.Before(b.At) && tick.Time.Before(b.At.Add(interval)) {
			if b.FlipName {
				return faults.BitflipName, nil, 0
			}
			return faults.BitflipSignature, nil, 0
		}
	}
	// Windows are matched by overlap with the tick's covered interval so a
	// thinned schedule (large Scale) still observes short fault windows,
	// like the paper's 15-minute cadence observed its multi-hour events.
	overlaps := func(start, end time.Time) bool {
		return tick.Time.Before(end) && tick.Time.Add(interval).After(start)
	}
	for _, s := range c.Plan.Skews {
		if s.VPIdx == vpIdx && overlaps(s.Start, s.End) {
			return faults.ClockSkew, nil, s.Skew
		}
	}
	for i := range c.Plan.Stales {
		s := &c.Plan.Stales[i]
		if s.Letter != target.Letter || !overlaps(s.Start, s.End) {
			continue
		}
		for _, id := range s.SiteIDs {
			if id == route.Origin.SiteID {
				return faults.StaleZone, s, 0
			}
		}
	}
	return faults.None, nil, 0
}

// signedZone returns (building and caching as needed) the fully signed and
// ZONEMD-attached zone for a serial. Stale copies are signed with an old
// inception so their signatures are genuinely expired. Safe for concurrent
// use: the cache is single-flight, so each zone version is signed exactly
// once per campaign no matter how many workers ask.
func (c *Campaign) signedZone(serial uint32, state zonemd.RolloutState, signTime time.Time, stale bool) (*zone.Zone, error) {
	return c.signedZones.get(zoneKey{serial, state, stale}, func() (*zone.Zone, error) {
		// Build-once span: each zone version is signed exactly once per
		// campaign, so this stage appears once per serial in a trace.
		span := telemetry.StartSpan("worker", "sign", -1, 0)
		defer span.End()
		baseZone := c.World.BaseZone
		if zone.SerialCompare(serial, 2023112700) < 0 {
			baseZone = c.World.BaseZonePre
		}
		base := baseZone.BumpSerial(serial)
		signed, err := c.World.Signer.Sign(base, signTime)
		if err != nil {
			return nil, err
		}
		return zonemd.AttachAndSign(signed, c.World.Signer, state, signTime)
	})
}

// validate builds the (possibly faulty) zone a transfer would deliver and
// runs the full ldns-style validation, caching by fault class. Bitflip
// faults (flipOut != nil) bypass the cache: each needs the flip rendered,
// and the flip is deterministic in (seed, serial), so recomputing stays
// reproducible. Safe for concurrent use.
func (c *Campaign) validate(serial uint32, state zonemd.RolloutState, fault faults.Kind, now, vpNow time.Time, stale *StaleWindow, flipOut *faults.Bitflip) valResult {
	if flipOut != nil {
		return c.validateUncached(serial, state, fault, now, vpNow, stale, flipOut)
	}
	key := valKey{serial, state, fault, !vpNow.Equal(now)}
	return c.validations.get(key, func() valResult {
		return c.validateUncached(serial, state, fault, now, vpNow, stale, nil)
	})
}

func (c *Campaign) validateUncached(serial uint32, state zonemd.RolloutState, fault faults.Kind, now, vpNow time.Time, stale *StaleWindow, flipOut *faults.Bitflip) valResult {
	span := telemetry.StartSpan("worker", "validate", -1, 0)
	defer span.End()
	signTime := SerialPublishedAt(now)
	zstale := false
	if fault == faults.StaleZone && stale != nil {
		signTime = signTime.Add(-stale.Age)
		zstale = true
	}
	z, err := c.signedZone(serial, state, signTime, zstale)
	if err != nil {
		return valResult{dnssecErr: err}
	}
	if fault == faults.BitflipSignature || fault == faults.BitflipName {
		// Copy-on-write: the flip mutates one record, so sharing the cached
		// canonical forms (and signature verdicts) of the untouched records
		// with the cached signed zone makes re-validation after the flip pay
		// only for what the flip actually invalidated.
		z = z.CloneCOW()
		rng := mrand.New(mrand.NewSource(c.Cfg.Seed ^ int64(serial)))
		var flip faults.Bitflip
		var ok bool
		if fault == faults.BitflipName {
			flip, ok = faults.FlipNameBit(z, rng)
		} else {
			flip, ok = faults.FlipSignatureBit(z, rng)
		}
		if !ok {
			return valResult{dnssecErr: fmt.Errorf("measure: could not inject %s", fault)}
		}
		if flipOut != nil {
			*flipOut = flip
		}
	}
	zErr, dErr := zonemd.FullValidation(z, c.World.Anchor, vpNow)
	return valResult{zonemdErr: zErr, dnssecErr: dErr}
}
