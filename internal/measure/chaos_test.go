package measure_test

// Chaos harness for the crash-safety layer: kill the campaign at named
// failpoints, restart it from its checkpoint, and demand the recorded
// dataset come out byte-identical to an uninterrupted run — at serial and
// parallel worker counts. Also pins the worker-supervision semantics:
// panics and injected errors degrade (classified, counted) within the
// error budget and abort past it.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/failpoint"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/qlog"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/vantage"
)

// chaosWorld builds a small world (shared across subtests; read-only).
func chaosWorld(t *testing.T) *measure.World {
	t.Helper()
	cfg := chaosConfig()
	topoCfg := topology.Config{
		Seed: 2,
		StubsPerRegion: map[geo.Region]int{
			geo.Africa: 2, geo.Asia: 4, geo.Europe: 10,
			geo.NorthAmerica: 6, geo.SouthAmerica: 3, geo.Oceania: 3,
		},
		Tier2PerRegion: map[geo.Region]int{
			geo.Africa: 2, geo.Asia: 2, geo.Europe: 3,
			geo.NorthAmerica: 2, geo.SouthAmerica: 2, geo.Oceania: 2,
		},
	}
	vpCfg := vantage.DefaultConfig()
	vpCfg.Scale = 12
	w, err := measure.NewWorld(cfg, topoCfg, vpCfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// chaosConfig is the shared campaign shape: a fast-cadence window with
// transfers active, wire checks on, checkpointing every 3 ticks.
func chaosConfig() measure.Config {
	cfg := measure.DefaultConfig()
	cfg.Start = time.Date(2023, 9, 26, 9, 0, 0, 0, time.UTC)
	cfg.End = cfg.Start.Add(2 * time.Hour)
	cfg.Scale = 1
	cfg.TLDCount = 12
	cfg.WireCheck = true
	cfg.CheckpointEvery = 3
	return cfg
}

// runToFile executes a fresh campaign recording into path, returning the
// campaign (for accumulator assertions) and the run error.
func runToFile(t *testing.T, w *measure.World, cfg measure.Config, dataPath string) (*measure.Campaign, error) {
	t.Helper()
	f, err := os.Create(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	wr, err := dataset.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	c := measure.NewCampaign(cfg, w)
	runErr := c.Run(wr)
	if runErr == nil {
		if err := wr.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// On a simulated kill the writer is abandoned un-closed, as SIGKILL
	// would leave it.
	return c, runErr
}

// resumeFromCheckpoint restarts a killed recording: load the checkpoint,
// resume the dataset writer at its sealed offset, and run a fresh campaign
// with Resume set.
func resumeFromCheckpoint(t *testing.T, w *measure.World, cfg measure.Config, dataPath string) *measure.Campaign {
	t.Helper()
	cp, err := measure.LoadCheckpoint(cfg.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	if cp.TickPos == 0 {
		t.Fatal("checkpoint never advanced; kill site fired before first checkpoint")
	}
	st, err := cp.HandlerState(0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(dataPath, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	wr, err := dataset.ResumeWriter(f, st)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Resume = true
	c := measure.NewCampaign(cfg, w)
	if err := c.Run(wr); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestChaosKillResumeMatrix is the acceptance matrix: three distinct kill
// sites × worker counts {1, 4}, each killed mid-campaign, restarted from
// the checkpoint, and compared byte-for-byte against an uninterrupted
// reference recording with the same checkpoint cadence.
func TestChaosKillResumeMatrix(t *testing.T) {
	w := chaosWorld(t)
	dir := t.TempDir()

	// Uninterrupted reference (checkpointing on: seal boundaries are part
	// of the byte stream).
	telemetry.Reset()
	refCfg := chaosConfig()
	refCfg.Workers = 1
	refCfg.CheckpointPath = filepath.Join(dir, "ref.ckpt")
	refData := filepath.Join(dir, "ref.dat")
	refCampaign, err := runToFile(t, w, refCfg, refData)
	if err != nil {
		t.Fatal(err)
	}
	refBytes, err := os.ReadFile(refData)
	if err != nil {
		t.Fatal(err)
	}
	// Stream-class counter state an uninterrupted run ends with; every
	// kill/resume cycle below must reconstruct exactly these totals from the
	// checkpoint.
	refTel := telemetry.CheckpointState()

	kills := []struct{ name, spec string }{
		// SIGKILL at a tick boundary, after two checkpoints have landed.
		{"tick", "campaign/tick=kill@5"},
		// SIGKILL after the dataset seal but before the checkpoint write:
		// resume must discard the sealed-but-uncheckpointed block.
		{"checkpoint", "campaign/checkpoint=kill@2"},
		// SIGKILL mid-frame: the dataset gains a torn tail that resume
		// truncates.
		{"seal-partial", "dataset/seal/partial=kill@2"},
		// SIGKILL at the seal entry, before any bytes move: the pending
		// block stays buffered (never written), and resume replays it.
		{"seal", "dataset/seal=kill@2"},
	}
	for _, workers := range []int{1, 4} {
		for _, kill := range kills {
			t.Run(kill.name+"/workers="+string(rune('0'+workers)), func(t *testing.T) {
				telemetry.Reset()
				cfg := chaosConfig()
				cfg.Workers = workers
				base := strings.ReplaceAll(t.Name(), "/", "_")
				cfg.CheckpointPath = filepath.Join(dir, base+".ckpt")
				dataPath := filepath.Join(dir, base+".dat")
				if err := failpoint.Enable(kill.spec); err != nil {
					t.Fatal(err)
				}
				_, runErr := runToFile(t, w, cfg, dataPath)
				failpoint.Disable()
				if !errors.Is(runErr, failpoint.ErrKilled) {
					t.Fatalf("run error = %v, want ErrKilled", runErr)
				}
				if got := telemetry.Snapshot(telemetry.ScopeAll); !firedAtLeastOneKill(got) {
					t.Error("failpoint kill did not move failpoint/fired and failpoint/kills")
				}
				killed, err := os.ReadFile(dataPath)
				if err != nil {
					t.Fatal(err)
				}
				if bytes.Equal(killed, refBytes) {
					t.Fatal("kill left a complete dataset; failpoint did not interrupt")
				}
				resumed := resumeFromCheckpoint(t, w, cfg, dataPath)
				got, err := os.ReadFile(dataPath)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, refBytes) {
					t.Errorf("resumed dataset differs from reference: %d vs %d bytes", len(got), len(refBytes))
				}
				if resumed.WireQueries != refCampaign.WireQueries {
					t.Errorf("wire accumulator after resume = %d, want %d", resumed.WireQueries, refCampaign.WireQueries)
				}
				// Counter reconstruction: the killed run polluted the stream
				// counters past the checkpoint; the resume must have restored
				// them and finished with the uninterrupted run's exact totals.
				if gotTel := telemetry.CheckpointState(); !bytes.Equal(gotTel, refTel) {
					t.Errorf("stream counters after kill/resume differ from uninterrupted run:\nwant %s\ngot  %s", refTel, gotTel)
				}
			})
		}
	}
}

// firedAtLeastOneKill checks the failpoint firing counters in a snapshot:
// a simulated kill must increment both failpoint/fired and failpoint/kills.
func firedAtLeastOneKill(snap []telemetry.MetricValue) bool {
	fired, kills := int64(0), int64(0)
	for _, mv := range snap {
		switch mv.Name {
		case "failpoint/fired":
			fired = mv.Value
		case "failpoint/kills":
			kills = mv.Value
		}
	}
	return fired >= 1 && kills >= 1
}

// qlogRunToFile executes a fresh campaign recording the dataset into dataPath
// and a full-rate flight log into qlogPath, with the black-box ring dumping
// to blackboxPath on a kill. Like runToFile, a killed run abandons both
// writers un-closed, as SIGKILL would.
func qlogRunToFile(t *testing.T, w *measure.World, cfg measure.Config, dataPath, qlogPath, blackboxPath string) error {
	t.Helper()
	df, err := os.Create(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	wr, err := dataset.NewWriter(df)
	if err != nil {
		t.Fatal(err)
	}
	qf, err := os.Create(qlogPath)
	if err != nil {
		t.Fatal(err)
	}
	defer qf.Close()
	rec, err := qlog.New(qf, qlog.Sampler{Every: 1}, blackboxPath)
	if err != nil {
		t.Fatal(err)
	}
	c := measure.NewCampaign(cfg, w)
	runErr := c.Run(wr, measure.NewFlightLog(rec))
	if runErr == nil {
		if err := wr.Close(); err != nil {
			t.Fatal(err)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return runErr
}

// TestChaosQlogKillResume extends the kill matrix to the flight recorder's
// own seal site: SIGKILL inside the flight log's CheckpointSeal, at worker
// counts {1, 4}. The dying run must leave a black-box ring dump that decodes
// as a qlog segment, and the resumed recording must reproduce the
// uninterrupted reference flight log byte-for-byte.
func TestChaosQlogKillResume(t *testing.T) {
	w := chaosWorld(t)
	dir := t.TempDir()

	qlog.ResetBlackbox()
	refCfg := chaosConfig()
	refCfg.CheckpointPath = filepath.Join(dir, "ref.ckpt")
	refQlog := filepath.Join(dir, "ref.qlog")
	if err := qlogRunToFile(t, w, refCfg, filepath.Join(dir, "ref.dat"), refQlog, ""); err != nil {
		t.Fatal(err)
	}
	refBytes, err := os.ReadFile(refQlog)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		t.Run("workers="+string(rune('0'+workers)), func(t *testing.T) {
			qlog.ResetBlackbox()
			cfg := chaosConfig()
			cfg.Workers = workers
			base := strings.ReplaceAll(t.Name(), "/", "_")
			cfg.CheckpointPath = filepath.Join(dir, base+".ckpt")
			dataPath := filepath.Join(dir, base+".dat")
			qlogPath := filepath.Join(dir, base+".qlog")
			bbPath := filepath.Join(dir, base+".blackbox")
			// SIGKILL at the flight recorder's second checkpoint seal: the
			// dataset block has already sealed, the checkpoint has not been
			// written, and the recorder's pending block never reaches disk.
			if err := failpoint.Enable("qlog/seal=kill@2"); err != nil {
				t.Fatal(err)
			}
			runErr := qlogRunToFile(t, w, cfg, dataPath, qlogPath, bbPath)
			failpoint.Disable()
			if !errors.Is(runErr, failpoint.ErrKilled) {
				t.Fatalf("run error = %v, want ErrKilled", runErr)
			}

			// The crash artifact: a black-box dump that any qlog reader can
			// decode, holding the recent flight history.
			bbf, err := os.Open(bbPath)
			if err != nil {
				t.Fatalf("black-box dump missing after kill: %v", err)
			}
			br, err := qlog.NewReader(bbf)
			if err != nil {
				t.Fatalf("black-box dump is not a qlog segment: %v", err)
			}
			bbEvs, err := br.Events()
			bbf.Close()
			if err != nil {
				t.Fatalf("black-box dump does not decode: %v", err)
			}
			if len(bbEvs) == 0 {
				t.Error("black-box dump is empty; the ring held recorded events at the kill")
			}

			// Resume both durable handlers from the checkpoint: the writer at
			// its sealed offset, the recorder at its sealed offset.
			cp, err := measure.LoadCheckpoint(cfg.CheckpointPath)
			if err != nil {
				t.Fatal(err)
			}
			wrState, err := cp.HandlerState(0)
			if err != nil {
				t.Fatal(err)
			}
			recState, err := cp.HandlerState(1)
			if err != nil {
				t.Fatal(err)
			}
			df, err := os.OpenFile(dataPath, os.O_RDWR, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer df.Close()
			wr, err := dataset.ResumeWriter(df, wrState)
			if err != nil {
				t.Fatal(err)
			}
			qf, err := os.OpenFile(qlogPath, os.O_RDWR, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer qf.Close()
			rec, err := qlog.Resume(qf, qlog.Sampler{Every: 1}, bbPath, recState)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Resume = true
			c := measure.NewCampaign(cfg, w)
			if err := c.Run(wr, measure.NewFlightLog(rec)); err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if err := wr.Close(); err != nil {
				t.Fatal(err)
			}
			if err := rec.Close(); err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(qlogPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, refBytes) {
				t.Errorf("resumed flight log differs from reference: %d vs %d bytes", len(got), len(refBytes))
			}
		})
	}
}

// TestSealErrorRetriedWithinBudget injects a one-shot dataset write error at
// the checkpoint seal: the campaign must count it, retry, complete, and
// still produce the reference bytes.
func TestSealErrorRetriedWithinBudget(t *testing.T) {
	w := chaosWorld(t)
	dir := t.TempDir()

	refCfg := chaosConfig()
	refCfg.CheckpointPath = filepath.Join(dir, "ref.ckpt")
	refData := filepath.Join(dir, "ref.dat")
	if _, err := runToFile(t, w, refCfg, refData); err != nil {
		t.Fatal(err)
	}
	refBytes, _ := os.ReadFile(refData)

	telemetry.Reset()
	cfg := chaosConfig()
	cfg.CheckpointPath = filepath.Join(dir, "chaos.ckpt")
	cfg.ErrorBudget = 1
	dataPath := filepath.Join(dir, "chaos.dat")
	if err := failpoint.Enable("dataset/seal=error@1"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable()
	c, err := runToFile(t, w, cfg, dataPath)
	if err != nil {
		t.Fatalf("within-budget seal error aborted the run: %v", err)
	}
	if stats := c.Degraded(); stats.WriteErrors != 1 || stats.Total() != 1 {
		t.Errorf("degraded stats = %+v, want exactly one write error", stats)
	}
	// A non-kill firing moves failpoint/fired but not failpoint/kills, and
	// the salvaged outcome lands in campaign/degraded.
	for _, mv := range telemetry.Snapshot(telemetry.ScopeAll) {
		switch mv.Name {
		case "failpoint/fired":
			if mv.Value != 1 {
				t.Errorf("failpoint/fired = %d, want 1", mv.Value)
			}
		case "failpoint/kills":
			if mv.Value != 0 {
				t.Errorf("failpoint/kills = %d, want 0", mv.Value)
			}
		case "campaign/degraded":
			if mv.Value != 1 {
				t.Errorf("campaign/degraded = %d, want 1", mv.Value)
			}
		}
	}
	got, _ := os.ReadFile(dataPath)
	if !bytes.Equal(got, refBytes) {
		t.Error("retried seal produced different bytes")
	}
}

// TestSealErrorExceedsBudget: with a zero budget the same injected error
// aborts with the summarized budget error.
func TestSealErrorExceedsBudget(t *testing.T) {
	w := chaosWorld(t)
	dir := t.TempDir()
	cfg := chaosConfig()
	cfg.CheckpointPath = filepath.Join(dir, "chaos.ckpt")
	cfg.ErrorBudget = 0
	if err := failpoint.Enable("dataset/seal=error@1"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable()
	_, err := runToFile(t, w, cfg, filepath.Join(dir, "chaos.dat"))
	if err == nil || !strings.Contains(err.Error(), "error budget exceeded") {
		t.Fatalf("run error = %v, want summarized budget abort", err)
	}
}

// collectorT mirrors the internal test collector for the external package.
type collectorT struct {
	probes    []measure.ProbeEvent
	transfers []measure.TransferEvent
}

func (c *collectorT) HandleProbe(e measure.ProbeEvent)       { c.probes = append(c.probes, e) }
func (c *collectorT) HandleTransfer(e measure.TransferEvent) { c.transfers = append(c.transfers, e) }

// TestWorkerPanicDegradesWithinBudget: an injected worker panic is recovered
// and surfaces as exactly one classified Lost+Degraded probe (and its
// transfer), with the campaign completing normally.
func TestWorkerPanicDegradesWithinBudget(t *testing.T) {
	w := chaosWorld(t)
	cfg := chaosConfig()
	cfg.WireCheck = false
	cfg.Workers = 4
	cfg.ErrorBudget = -1
	if err := failpoint.Enable("measure/worker/probe=panic@17"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable()
	c := measure.NewCampaign(cfg, w)
	col := &collectorT{}
	if err := c.Run(col); err != nil {
		t.Fatalf("panic within unlimited budget aborted: %v", err)
	}
	stats := c.Degraded()
	if stats.ProbePanics != 1 || stats.Total() != 1 {
		t.Fatalf("degraded stats = %+v, want one recovered probe panic", stats)
	}
	if len(stats.Samples) != 1 || !strings.Contains(stats.Samples[0], "probe panic") {
		t.Fatalf("samples = %v", stats.Samples)
	}
	degProbes := 0
	for _, p := range col.probes {
		if p.Degraded {
			degProbes++
			if !p.Lost {
				t.Error("degraded probe not marked lost")
			}
		}
	}
	if degProbes != 1 {
		t.Fatalf("degraded probes = %d, want 1", degProbes)
	}
	degTransfers := 0
	for _, tr := range col.transfers {
		if tr.Degraded {
			degTransfers++
			if !tr.Lost {
				t.Error("degraded transfer not marked lost")
			}
		}
	}
	if degTransfers != 1 {
		t.Fatalf("degraded transfers = %d, want 1 (probe-stage fault spoils the pair)", degTransfers)
	}
}

// TestWorkerTransferErrorKeepsProbe: a transfer-stage injected error
// degrades only the transfer; the probe half of the pair survives intact.
func TestWorkerTransferErrorKeepsProbe(t *testing.T) {
	w := chaosWorld(t)
	cfg := chaosConfig()
	cfg.WireCheck = false
	cfg.ErrorBudget = 2
	if err := failpoint.Enable("measure/worker/transfer=error@9"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable()
	c := measure.NewCampaign(cfg, w)
	col := &collectorT{}
	if err := c.Run(col); err != nil {
		t.Fatal(err)
	}
	if stats := c.Degraded(); stats.TransferErrors != 1 || stats.Total() != 1 {
		t.Fatalf("degraded stats = %+v", stats)
	}
	for _, p := range col.probes {
		if p.Degraded {
			t.Fatal("transfer-stage error degraded a probe")
		}
	}
	deg := 0
	for _, tr := range col.transfers {
		if tr.Degraded {
			deg++
		}
	}
	if deg != 1 {
		t.Fatalf("degraded transfers = %d, want 1", deg)
	}
}

// TestWorkerErrorExceedsBudget: with budget 0, the first degraded outcome
// aborts the campaign with the summarized classification.
func TestWorkerErrorExceedsBudget(t *testing.T) {
	w := chaosWorld(t)
	cfg := chaosConfig()
	cfg.WireCheck = false
	cfg.ErrorBudget = 0
	if err := failpoint.Enable("measure/worker/probe=error@3"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable()
	err := measure.NewCampaign(cfg, w).Run(&collectorT{})
	if err == nil || !strings.Contains(err.Error(), "error budget exceeded") {
		t.Fatalf("run error = %v, want budget abort", err)
	}
	if !strings.Contains(err.Error(), "1 probe errors") {
		t.Fatalf("abort not classified: %v", err)
	}
}

// TestResumeRejectsMismatchedConfig: a checkpoint from one campaign must not
// seed a differently configured one.
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	w := chaosWorld(t)
	dir := t.TempDir()
	cfg := chaosConfig()
	cfg.WireCheck = false
	cfg.CheckpointPath = filepath.Join(dir, "a.ckpt")
	if _, err := runToFile(t, w, cfg, filepath.Join(dir, "a.dat")); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Resume = true
	bad.Seed++
	err := measure.NewCampaign(bad, w).Run(&collectorT{})
	if err == nil || !strings.Contains(err.Error(), "differently configured") {
		t.Fatalf("mismatched resume error = %v", err)
	}
	// Worker count is allowed to change across a resume.
	ok := cfg
	ok.Resume = true
	ok.Workers = 4
	if err := measure.NewCampaign(ok, w).Run(&collectorT{}); err != nil {
		t.Fatalf("worker-count change rejected on resume: %v", err)
	}
}

// TestResumeRequiresCheckpointPath pins the config validation.
func TestResumeRequiresCheckpointPath(t *testing.T) {
	w := chaosWorld(t)
	cfg := chaosConfig()
	cfg.Resume = true
	err := measure.NewCampaign(cfg, w).Run(&collectorT{})
	if err == nil || !strings.Contains(err.Error(), "CheckpointPath") {
		t.Fatalf("err = %v", err)
	}
}
