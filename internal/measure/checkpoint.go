package measure

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/failpoint"
	"repro/internal/telemetry"
)

// Checkpoint/restore: the campaign is a pure function of (seed, config) per
// tick — probes, transfers, jitter, and the loss model are stateless hashes,
// and the zone/validation/battery caches are value-transparent and rebuild
// on demand. The only state a resume needs is therefore the next tick
// position, the wire-check accumulators (which cross ticks and feed the
// report), and each durable handler's own resume blob (for the dataset
// writer: its sealed byte offset and event counters). A killed-and-restarted
// run that fast-forwards to the checkpointed tick produces a byte-identical
// report and dataset to an uninterrupted run with the same checkpoint
// cadence.

// CheckpointVersion gates incompatible checkpoint-file changes.
const CheckpointVersion = 1

// DefaultCheckpointEvery is the checkpoint cadence when Config.CheckpointEvery
// is zero.
const DefaultCheckpointEvery = 32

// Checkpoint is the versioned sidecar snapshot of campaign progress.
type Checkpoint struct {
	Version int `json:"version"`
	// Sig fingerprints the campaign configuration and world shape; Resume
	// refuses a checkpoint written by a differently configured campaign.
	// Worker count and error budget are deliberately excluded: both may
	// change across restarts without affecting output bytes.
	Sig string `json:"sig"`
	// TickPos is the index of the next tick to run; TickCount cross-checks
	// the schedule length.
	TickPos   int `json:"tick_pos"`
	TickCount int `json:"tick_count"`
	// WireQueries and WireFailures restore the wire-check accumulators.
	WireQueries  int      `json:"wire_queries"`
	WireFailures []string `json:"wire_failures,omitempty"`
	// Handlers carries one opaque resume blob per Checkpointable handler,
	// in handler order (JSON base64-encodes the bytes).
	Handlers [][]byte `json:"handlers,omitempty"`
	// Telemetry carries the stream-class counter snapshot
	// (telemetry.CheckpointState) so a resumed run reconstructs counters
	// instead of restarting them from zero. Absent in pre-telemetry
	// checkpoints; restore treats that as all-zeros.
	Telemetry []byte `json:"telemetry,omitempty"`
}

// Checkpointable is implemented by handlers with durable output (the
// dataset writer): CheckpointSeal must make every event delivered so far
// durable and return an opaque blob from which the handler can resume
// (e.g. its sealed byte offset). The blob is stored in the checkpoint
// sidecar and handed back by Checkpoint.HandlerState on restart.
type Checkpointable interface {
	CheckpointSeal() ([]byte, error)
}

// HandlerState returns the idx-th checkpointable handler's saved blob.
func (cp *Checkpoint) HandlerState(idx int) ([]byte, error) {
	if idx < 0 || idx >= len(cp.Handlers) {
		return nil, fmt.Errorf("measure: checkpoint has no handler state %d (have %d)", idx, len(cp.Handlers))
	}
	return cp.Handlers[idx], nil
}

// LoadCheckpoint reads and version-checks a checkpoint sidecar.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("measure: checkpoint: %w", err)
	}
	cp := &Checkpoint{}
	if err := json.Unmarshal(data, cp); err != nil {
		return nil, fmt.Errorf("measure: corrupt checkpoint %s: %w", path, err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("measure: checkpoint version %d, want %d", cp.Version, CheckpointVersion)
	}
	return cp, nil
}

// writeAtomic persists the checkpoint crash-safely: write to a temp file in
// the same directory, fsync, rename over the target, then best-effort fsync
// the directory. A crash at any point leaves either the old or the new
// checkpoint intact, never a torn one.
func (cp *Checkpoint) writeAtomic(path string) error {
	data, err := json.Marshal(cp)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// checkpointSig fingerprints everything that shapes the campaign's output
// bytes: schedule, seed, zone size, and world population size.
func (c *Campaign) checkpointSig() string {
	h := sha256.Sum256([]byte(fmt.Sprintf(
		"v%d|seed=%d|scale=%d|trace=%d|tld=%d|start=%s|end=%s|wire=%t|vps=%d",
		CheckpointVersion, c.Cfg.Seed, c.Cfg.Scale, c.Cfg.TraceEvery, c.Cfg.TLDCount,
		c.Cfg.Start.UTC().Format(time.RFC3339), c.Cfg.End.UTC().Format(time.RFC3339),
		c.Cfg.WireCheck, len(c.World.Population.VPs))))
	return fmt.Sprintf("%x", h[:8])
}

// loadResume validates the checkpoint against this campaign and restores
// the campaign-side accumulators, returning the tick position to resume at.
func (c *Campaign) loadResume(nticks int) (int, error) {
	cp, err := LoadCheckpoint(c.Cfg.CheckpointPath)
	if err != nil {
		return 0, err
	}
	if cp.Sig != c.checkpointSig() {
		return 0, fmt.Errorf("measure: checkpoint %s was written by a differently configured campaign (sig %s, want %s)",
			c.Cfg.CheckpointPath, cp.Sig, c.checkpointSig())
	}
	if cp.TickCount != nticks || cp.TickPos < 0 || cp.TickPos > nticks {
		return 0, fmt.Errorf("measure: checkpoint tick position %d/%d does not fit schedule of %d ticks",
			cp.TickPos, cp.TickCount, nticks)
	}
	c.WireQueries = cp.WireQueries
	c.WireFailures = append([]string(nil), cp.WireFailures...)
	// Overwrite stream-class counters with the checkpointed totals so the
	// resumed process reports the same cumulative counts an uninterrupted
	// run would. Process-class counters (caches, failpoints) deliberately
	// start over: they describe this process, not the event stream.
	if err := telemetry.RestoreState(cp.Telemetry); err != nil {
		return 0, fmt.Errorf("measure: checkpoint %s: %w", c.Cfg.CheckpointPath, err)
	}
	return cp.TickPos, nil
}

// saveCheckpoint seals every checkpointable handler and atomically replaces
// the checkpoint sidecar. A handler seal failure is a degraded outcome:
// within the error budget it is counted and retried once; past the budget
// (or on retry failure) the campaign aborts. A simulated kill (failpoint)
// propagates immediately, skipping the checkpoint write as a real SIGKILL
// would.
func (c *Campaign) saveCheckpoint(handlers []Handler, pos, total int) error {
	timer := telemetry.StartTimer()
	defer timer.ObserveInto(mCheckpointDur)
	span := telemetry.StartSpan("campaign", "checkpoint", pos-1, 0)
	defer span.End()
	var states [][]byte
	for _, h := range handlers {
		cs, ok := h.(Checkpointable)
		if !ok {
			continue
		}
		blob, err := cs.CheckpointSeal()
		if err != nil {
			if errors.Is(err, failpoint.ErrKilled) {
				return err
			}
			if aerr := c.noteDegraded(degWriteError, fmt.Sprintf("handler seal at tick %d: %v", pos, err)); aerr != nil {
				return aerr
			}
			if blob, err = cs.CheckpointSeal(); err != nil {
				return fmt.Errorf("measure: checkpoint seal retry failed: %w", err)
			}
		}
		states = append(states, blob)
	}
	// Count the checkpoint BEFORE capturing counter state so the snapshot
	// includes itself: an uninterrupted run's campaign/checkpoints total then
	// equals the resumed run's (restored N, plus one per later checkpoint),
	// keeping the counter stream-class under kills.
	mCheckpoints.Inc()
	telState := telemetry.CheckpointState()
	// Chaos kill-point between sealing the dataset and writing the
	// checkpoint: resume must tolerate sealed-but-uncheckpointed blocks by
	// truncating back to the recorded offset.
	if err := failpoint.Eval("campaign/checkpoint"); err != nil {
		return err
	}
	cp := &Checkpoint{
		Version:      CheckpointVersion,
		Sig:          c.checkpointSig(),
		TickPos:      pos,
		TickCount:    total,
		WireQueries:  c.WireQueries,
		WireFailures: c.WireFailures,
		Handlers:     states,
		Telemetry:    telState,
	}
	if err := cp.writeAtomic(c.Cfg.CheckpointPath); err != nil {
		if aerr := c.noteDegraded(degWriteError, fmt.Sprintf("checkpoint write at tick %d: %v", pos, err)); aerr != nil {
			return aerr
		}
		if err := cp.writeAtomic(c.Cfg.CheckpointPath); err != nil {
			return fmt.Errorf("measure: checkpoint write retry failed: %w", err)
		}
	}
	return nil
}
