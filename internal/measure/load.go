package measure

import (
	"fmt"
	"io"
	"time"

	"repro/internal/rss"
)

// QueriesPerTarget is the size of the per-address query battery (Appendix
// F): AXFR, ZONEMD, two NS queries, four CHAOS probes, and A/AAAA/TXT for
// each of the 13 root server names.
const QueriesPerTarget = 1 + 1 + 2 + 4 + 13*3

// LoadReport quantifies the campaign's footprint on the measured system,
// the accounting the paper's ethics section (Appendix B) performs: queries
// per measurement round, the global in-flight bound, and the share of the
// root server system's daily load.
type LoadReport struct {
	VPs              int
	Targets          int
	QueriesPerRound  int
	RoundsPerDay     float64
	QueriesPerDay    float64
	MaxInFlight      int
	ShareOfRSSDailyQ float64
}

// rssDailyQueries is the root server system's aggregate daily query volume
// the paper's ethics budget assumes (>50B queries/day).
const rssDailyQueries = 50e9

// ComputeLoad derives the footprint of a campaign configuration at the
// paper's full fidelity (scale 1); thinned schedules divide proportionally.
func ComputeLoad(vps int, at time.Time) LoadReport {
	targets := len(rss.AllServiceAddrs())
	perRound := vps * targets * QueriesPerTarget
	roundsPerDay := (24 * time.Hour).Seconds() / BaseInterval(at).Seconds()
	r := LoadReport{
		VPs:             vps,
		Targets:         targets,
		QueriesPerRound: perRound,
		RoundsPerDay:    roundsPerDay,
		QueriesPerDay:   float64(perRound) * roundsPerDay,
		// The script serializes queries per VP, so at most one query per VP
		// is in flight globally (Appendix B).
		MaxInFlight: vps,
	}
	r.ShareOfRSSDailyQ = r.QueriesPerDay / rssDailyQueries
	return r
}

// Write renders the ethics accounting.
func (r LoadReport) Write(w io.Writer) {
	fmt.Fprintln(w, "Measurement footprint (Appendix B accounting)")
	fmt.Fprintf(w, "  %d VPs x %d targets x %d queries = %d queries per round\n",
		r.VPs, r.Targets, QueriesPerTarget, r.QueriesPerRound)
	fmt.Fprintf(w, "  %.0f rounds/day -> %.2e queries/day\n", r.RoundsPerDay, r.QueriesPerDay)
	fmt.Fprintf(w, "  at most %d queries in flight globally (serialized per VP)\n", r.MaxInFlight)
	fmt.Fprintf(w, "  share of RSS daily load: %.4f%% (paper budget: < 0.1%%)\n",
		r.ShareOfRSSDailyQ*100)
}
