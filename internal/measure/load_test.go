package measure

import (
	"strings"
	"testing"
	"time"
)

func TestQueriesPerTarget(t *testing.T) {
	// Appendix F: 47 queries per root server IP per round.
	if QueriesPerTarget != 47 {
		t.Errorf("QueriesPerTarget = %d, want 47", QueriesPerTarget)
	}
}

func TestComputeLoadMatchesPaperBudget(t *testing.T) {
	// The paper: 888,300 queries per measurement round at 675 VPs.
	at := time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC) // 30-minute cadence
	r := ComputeLoad(675, at)
	if r.QueriesPerRound != 675*28*47 {
		t.Errorf("queries per round = %d", r.QueriesPerRound)
	}
	// Note: the paper counts 888,300 = 675 x 28 x 47; our target count
	// matches its arithmetic exactly.
	if r.QueriesPerRound != 888300 {
		t.Errorf("queries per round = %d, want 888300", r.QueriesPerRound)
	}
	if r.MaxInFlight != 675 {
		t.Errorf("max in flight = %d, want 675 (serialized per VP)", r.MaxInFlight)
	}
	if r.RoundsPerDay != 48 {
		t.Errorf("rounds/day = %.1f, want 48", r.RoundsPerDay)
	}
	// Share of RSS load must stay under the paper's 0.1% ceiling.
	if r.ShareOfRSSDailyQ >= 0.001 {
		t.Errorf("share of RSS load = %.5f, must be < 0.1%%", r.ShareOfRSSDailyQ)
	}
}

func TestComputeLoadFastWindow(t *testing.T) {
	at := time.Date(2023, 9, 15, 0, 0, 0, 0, time.UTC) // 15-minute cadence
	r := ComputeLoad(675, at)
	if r.RoundsPerDay != 96 {
		t.Errorf("fast-window rounds/day = %.1f, want 96", r.RoundsPerDay)
	}
}

func TestLoadReportRendering(t *testing.T) {
	var sb strings.Builder
	ComputeLoad(675, time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC)).Write(&sb)
	for _, want := range []string{"888300", "in flight", "share of RSS"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("load report missing %q", want)
		}
	}
}
