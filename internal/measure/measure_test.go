package measure

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/dnssec"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/rss"
	"repro/internal/topology"
	"repro/internal/vantage"
	"repro/internal/zonemd"
)

func TestBaseInterval(t *testing.T) {
	cases := []struct {
		t    time.Time
		want time.Duration
	}{
		{time.Date(2023, 7, 10, 0, 0, 0, 0, time.UTC), 30 * time.Minute},
		{time.Date(2023, 9, 15, 0, 0, 0, 0, time.UTC), 15 * time.Minute},
		{time.Date(2023, 10, 15, 0, 0, 0, 0, time.UTC), 30 * time.Minute},
		{time.Date(2023, 11, 25, 0, 0, 0, 0, time.UTC), 15 * time.Minute},
		{time.Date(2023, 12, 10, 0, 0, 0, 0, time.UTC), 30 * time.Minute},
	}
	for _, c := range cases {
		if got := BaseInterval(c.t); got != c.want {
			t.Errorf("BaseInterval(%s) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestTicksCoverStudy(t *testing.T) {
	ticks := Ticks(StudyStart, StudyEnd, 1)
	// 174 days at 30 min = 8352 plus fast-window densification.
	if len(ticks) < 8500 || len(ticks) > 10500 {
		t.Errorf("full-fidelity ticks = %d", len(ticks))
	}
	scaled := Ticks(StudyStart, StudyEnd, 48)
	if len(scaled) < 150 || len(scaled) > 260 {
		t.Errorf("scaled ticks = %d", len(scaled))
	}
	for i := 1; i < len(scaled); i++ {
		if !scaled[i].Time.After(scaled[i-1].Time) {
			t.Fatal("ticks not increasing")
		}
		if scaled[i].Index != i {
			t.Fatal("tick indices not sequential")
		}
	}
}

func TestSerialAt(t *testing.T) {
	am := time.Date(2023, 11, 27, 9, 0, 0, 0, time.UTC)
	pm := time.Date(2023, 11, 27, 15, 0, 0, 0, time.UTC)
	if got := SerialAt(am); got != 2023112700 {
		t.Errorf("am serial = %d", got)
	}
	if got := SerialAt(pm); got != 2023112701 {
		t.Errorf("pm serial = %d", got)
	}
	if !SerialPublishedAt(pm).Equal(time.Date(2023, 11, 27, 12, 0, 0, 0, time.UTC)) {
		t.Errorf("published at = %v", SerialPublishedAt(pm))
	}
}

// testWorld builds a small world for campaign tests.
func testWorld(t *testing.T) *World {
	t.Helper()
	cfg := DefaultConfig()
	cfg.TLDCount = 15
	topoCfg := topology.Config{
		Seed: 2,
		StubsPerRegion: map[geo.Region]int{
			geo.Africa: 3, geo.Asia: 6, geo.Europe: 20,
			geo.NorthAmerica: 10, geo.SouthAmerica: 4, geo.Oceania: 4,
		},
		Tier2PerRegion: map[geo.Region]int{
			geo.Africa: 2, geo.Asia: 2, geo.Europe: 4,
			geo.NorthAmerica: 3, geo.SouthAmerica: 2, geo.Oceania: 2,
		},
	}
	vpCfg := vantage.DefaultConfig()
	vpCfg.Scale = 20 // ~33 VPs
	w, err := NewWorld(cfg, topoCfg, vpCfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// collector accumulates events for assertions.
type collector struct {
	probes    []ProbeEvent
	transfers []TransferEvent
}

func (c *collector) HandleProbe(e ProbeEvent)       { c.probes = append(c.probes, e) }
func (c *collector) HandleTransfer(e TransferEvent) { c.transfers = append(c.transfers, e) }

func runShortCampaign(t *testing.T, w *World, start, end time.Time, scale int) *collector {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Start, cfg.End, cfg.Scale = start, end, scale
	cfg.TLDCount = 15
	c := NewCampaign(cfg, w)
	col := &collector{}
	if err := c.Run(col); err != nil {
		t.Fatal(err)
	}
	return col
}

func TestCampaignEmitsEvents(t *testing.T) {
	w := testWorld(t)
	start := time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC)
	col := runShortCampaign(t, w, start, start.Add(3*time.Hour), 2)
	nVPs := len(w.Population.VPs)
	nTargets := 28
	ticks := Ticks(start, start.Add(3*time.Hour), 2)
	wantProbes := nVPs * nTargets * len(ticks)
	if len(col.probes) != wantProbes {
		t.Errorf("probes = %d, want %d", len(col.probes), wantProbes)
	}
	if len(col.transfers) != wantProbes { // after AXFRStart, 1:1 with probes
		t.Errorf("transfers = %d, want %d", len(col.transfers), wantProbes)
	}
	// The vast majority of probes succeed and carry site info.
	ok, lost := 0, 0
	for _, p := range col.probes {
		if p.Lost {
			lost++
			continue
		}
		ok++
		if p.SiteID == "" || p.Facility == "" {
			t.Fatalf("successful probe lacks site: %+v", p)
		}
		if p.RTTms <= 0 {
			t.Fatalf("non-positive RTT: %+v", p)
		}
	}
	if ok < lost*10 {
		t.Errorf("ok=%d lost=%d; loss too high", ok, lost)
	}
}

func TestCampaignNoAXFRBeforeStart(t *testing.T) {
	w := testWorld(t)
	start := time.Date(2023, 7, 10, 0, 0, 0, 0, time.UTC)
	col := runShortCampaign(t, w, start, start.Add(2*time.Hour), 2)
	if len(col.transfers) != 0 {
		t.Errorf("transfers before AXFRStart = %d", len(col.transfers))
	}
	if len(col.probes) == 0 {
		t.Error("no probes")
	}
}

func TestCleanTransfersValidate(t *testing.T) {
	w := testWorld(t)
	start := time.Date(2023, 12, 10, 0, 0, 0, 0, time.UTC)
	col := runShortCampaign(t, w, start, start.Add(2*time.Hour), 1)
	for _, te := range col.transfers {
		if te.Lost {
			continue
		}
		if te.Fault != faults.None {
			continue // planned faults are asserted elsewhere
		}
		if te.ZonemdErr != nil || te.DNSSECErr != nil {
			t.Fatalf("clean transfer failed validation: %+v", te)
		}
		if te.Serial != SerialAt(te.Tick.Time) {
			t.Fatalf("serial mismatch: %d", te.Serial)
		}
	}
}

func TestSkewWindowProducesInceptionErrors(t *testing.T) {
	w := testWorld(t)
	// VP index 2 is skewed on 2023-10-02 22:00-23:00 by the default plan.
	start := time.Date(2023, 10, 2, 22, 0, 0, 0, time.UTC)
	col := runShortCampaign(t, w, start, start.Add(time.Hour), 1)
	found := 0
	for _, te := range col.transfers {
		if te.Fault == faults.ClockSkew {
			found++
			if !errors.Is(te.DNSSECErr, dnssec.ErrSignatureNotIncepted) {
				t.Fatalf("skewed transfer classified as %v", te.DNSSECErr)
			}
			if te.VPIdx != 2 {
				t.Fatalf("skew hit wrong VP %d", te.VPIdx)
			}
		}
	}
	if found == 0 {
		t.Error("no clock-skew events in the skew window")
	}
}

func TestStaleSiteProducesExpiredErrors(t *testing.T) {
	w := testWorld(t)
	start := time.Date(2023, 8, 16, 10, 0, 0, 0, time.UTC)
	cfg := DefaultConfig()
	cfg.Start, cfg.End, cfg.Scale = start, start.Add(2*time.Hour), 1
	cfg.TLDCount = 15
	c := NewCampaign(cfg, w)
	// Make the stale window's site one that some VP actually reaches:
	// pick the d.root site serving the first VP on IPv4.
	catch := w.Catchments["d"][topology.IPv4]
	route, ok := catch.Route(w.Population.VPs[0].ASN)
	if !ok {
		t.Skip("first VP unroutable to d.root")
	}
	c.Plan.Stales[0].SiteIDs = []string{route.Origin.SiteID}
	col := &collector{}
	if err := c.Run(col); err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, te := range col.transfers {
		if te.Fault == faults.StaleZone {
			found++
			if !errors.Is(te.DNSSECErr, dnssec.ErrSignatureExpired) {
				t.Fatalf("stale transfer classified as %v", te.DNSSECErr)
			}
			if te.Target.Letter != "d" {
				t.Fatalf("stale fault on %s.root", te.Target.Letter)
			}
		}
	}
	if found == 0 {
		t.Error("no stale-zone events in the stale window")
	}
}

func TestBitflipProducesBogusSignature(t *testing.T) {
	w := testWorld(t)
	// Default plan: VP 4, b.root old v4, name flip at 2023-11-21 06:00.
	start := time.Date(2023, 11, 21, 6, 0, 0, 0, time.UTC)
	col := runShortCampaign(t, w, start, start.Add(30*time.Minute), 1)
	var sawFlip bool
	for _, te := range col.transfers {
		switch te.Fault {
		case faults.BitflipName:
			sawFlip = true
			if te.Bitflip == nil || te.Bitflip.Before == te.Bitflip.After {
				t.Fatal("name bitflip lacks before/after rendering")
			}
			// Delegation data is unsigned and the ZONEMD digest is still a
			// placeholder on 2023-11-21, so only the reference comparison
			// (the paper's ICANN-download check) can catch this flip.
			if te.ZonemdErr == nil && te.DNSSECErr == nil && !te.ComparisonMismatch {
				t.Fatal("name bitflip went undetected")
			}
		case faults.BitflipSignature:
			sawFlip = true
			if !errors.Is(te.DNSSECErr, dnssec.ErrBogusSignature) {
				t.Fatalf("signature bitflip classified as %v", te.DNSSECErr)
			}
		}
	}
	if !sawFlip {
		t.Error("no bitflip events at the planned time")
	}
}

func TestZonemdRolloutVisibleInTransfers(t *testing.T) {
	w := testWorld(t)
	cfg := DefaultConfig()
	cfg.TLDCount = 15
	c := NewCampaign(cfg, w)

	// Before placeholder date: zone has no ZONEMD record.
	z, err := c.signedZone(2023080100, zonemd.StateAbsent, time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC), false)
	if err != nil {
		t.Fatal(err)
	}
	if errors.Is(zonemd.Verify(z), zonemd.ErrNoZONEMD) == false {
		t.Error("absent-state zone has a ZONEMD record")
	}
	// Verifiable state validates.
	z2, err := c.signedZone(2023121000, zonemd.StateVerifiable, time.Date(2023, 12, 10, 0, 0, 0, 0, time.UTC), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := zonemd.Verify(z2); err != nil {
		t.Errorf("verifiable-state zone: %v", err)
	}
}

func TestTransferEventTargetsIncludeOldB(t *testing.T) {
	w := testWorld(t)
	start := time.Date(2023, 12, 1, 0, 0, 0, 0, time.UTC)
	col := runShortCampaign(t, w, start, start.Add(time.Hour), 1)
	sawOld := false
	for _, te := range col.transfers {
		if te.Target.Letter == "b" && te.Target.Old {
			sawOld = true
			break
		}
	}
	if !sawOld {
		t.Error("old b.root address not probed")
	}
}

// runShortCampaignWorkers runs a short campaign with an explicit worker
// count over a fault-rich window (covering a bitflip plan entry) so the
// parallel path exercises the zone, validation, and battery caches.
func runShortCampaignWorkers(t *testing.T, w *World, workers int) *collector {
	t.Helper()
	cfg := DefaultConfig()
	// 2023-09-26 covers a planned bitflip and the ZONEMD placeholder state.
	cfg.Start = time.Date(2023, 9, 26, 9, 0, 0, 0, time.UTC)
	cfg.End = cfg.Start.Add(3 * time.Hour)
	cfg.Scale = 1
	cfg.TLDCount = 15
	cfg.Workers = workers
	cfg.WireCheck = true
	c := NewCampaign(cfg, w)
	col := &collector{}
	if err := c.Run(col); err != nil {
		t.Fatal(err)
	}
	return col
}

// TestCampaignParallelMatchesSerial asserts the ordered drain: every event,
// in order, must be identical between a serial and a heavily parallel run.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	w := testWorld(t)
	serial := runShortCampaignWorkers(t, w, 1)
	parallel := runShortCampaignWorkers(t, w, 8)
	if len(serial.probes) != len(parallel.probes) {
		t.Fatalf("probe counts differ: %d vs %d", len(serial.probes), len(parallel.probes))
	}
	if len(serial.transfers) != len(parallel.transfers) {
		t.Fatalf("transfer counts differ: %d vs %d", len(serial.transfers), len(parallel.transfers))
	}
	for i := range serial.probes {
		a, b := serial.probes[i], parallel.probes[i]
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("probe %d differs:\nserial:   %+v\nparallel: %+v", i, a, b)
		}
	}
	for i := range serial.transfers {
		a, b := serial.transfers[i], parallel.transfers[i]
		// Errors are distinct values; compare their rendering (which is what
		// reaches reports) and the rest of the event structurally.
		if errString(a.ZonemdErr) != errString(b.ZonemdErr) || errString(a.DNSSECErr) != errString(b.DNSSECErr) {
			t.Fatalf("transfer %d validation differs: %v/%v vs %v/%v",
				i, a.ZonemdErr, a.DNSSECErr, b.ZonemdErr, b.DNSSECErr)
		}
		a.ZonemdErr, a.DNSSECErr, b.ZonemdErr, b.DNSSECErr = nil, nil, nil, nil
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("transfer %d differs:\nserial:   %+v\nparallel: %+v", i, a, b)
		}
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// TestCampaignManyWorkersRace is the race-detector workload: a small
// campaign with far more workers than VPs per shard, crossing a fault
// window so workers contend on the single-flight caches. Run it under
// `go test -race` (make race).
func TestCampaignManyWorkersRace(t *testing.T) {
	w := testWorld(t)
	col := runShortCampaignWorkers(t, w, 16)
	if len(col.probes) == 0 || len(col.transfers) == 0 {
		t.Fatal("parallel campaign produced no events")
	}
}

// TestBatteryCacheEvictsOldestSerial pins the bounded battery cache's
// eviction order: oldest serial out first, never the just-inserted entry.
func TestBatteryCacheEvictsOldestSerial(t *testing.T) {
	bc := newBatteryCache(3)
	key := func(serial uint32) zoneKey { return zoneKey{serial: serial} }
	for _, s := range []uint32{2023070100, 2023070101, 2023070200, 2023070201} {
		bc.put(key(s), &Battery{})
	}
	if bc.len() != 3 {
		t.Fatalf("cache size = %d, want 3", bc.len())
	}
	if _, ok := bc.get(key(2023070100)); ok {
		t.Error("oldest serial not evicted")
	}
	for _, s := range []uint32{2023070101, 2023070200, 2023070201} {
		if _, ok := bc.get(key(s)); !ok {
			t.Errorf("serial %d wrongly evicted", s)
		}
	}
	// Inserting an entry older than everything cached must keep the entry.
	bc.put(key(2023010100), &Battery{})
	if _, ok := bc.get(key(2023010100)); !ok {
		t.Error("just-inserted entry was evicted")
	}
}

// TestBatteryCacheEvictionSerialOrder drives the cache through a monotone
// serial sequence, as the campaign tick loop does, and pins two properties
// of the PR 1 eviction policy: entries leave in strict serial order (after
// every insertion the survivors are exactly the highest serials seen), and
// the entry for the current tick's serial is never the one evicted.
func TestBatteryCacheEvictionSerialOrder(t *testing.T) {
	const max = 4
	bc := newBatteryCache(max)
	key := func(serial uint32) zoneKey { return zoneKey{serial: serial} }
	serials := []uint32{
		2023070100, 2023070101, 2023070102, 2023070200,
		2023070201, 2023070300, 2023070301, 2023070400,
	}
	for i, s := range serials {
		bc.put(key(s), &Battery{})
		if _, ok := bc.get(key(s)); !ok {
			t.Fatalf("current tick's serial %d missing right after put", s)
		}
		lo := 0
		if i+1 > max {
			lo = i + 1 - max
		}
		for j, other := range serials[:i+1] {
			_, ok := bc.get(key(other))
			if want := j >= lo; ok != want {
				t.Errorf("after inserting %d: serial %d cached=%v, want %v", s, other, ok, want)
			}
		}
	}
}

// TestBatteryCacheByteBudget pins the byte-budget boundary semantics that
// replaced the entry-count bound: entries cost their measured size, the
// cache holds entries while the total fits, eviction is by oldest serial
// once it does not, and an entry larger than the whole budget still lands
// (the campaign is about to run it) while evicting everything else.
func TestBatteryCacheByteBudget(t *testing.T) {
	key := func(serial uint32) zoneKey { return zoneKey{serial: serial} }
	bc := newBatteryCache(100)

	// Three 40-byte entries exceed the 100-byte budget by 20: exactly the
	// oldest serial leaves.
	bc.putCost(key(2023070100), &Battery{}, 40)
	bc.putCost(key(2023070101), &Battery{}, 40)
	if got := bc.bytes(); got != 80 {
		t.Fatalf("resident bytes = %d, want 80", got)
	}
	bc.putCost(key(2023070200), &Battery{}, 40)
	if _, ok := bc.get(key(2023070100)); ok {
		t.Error("oldest serial survived a budget overflow")
	}
	if bc.len() != 2 || bc.bytes() != 80 {
		t.Fatalf("after overflow: len=%d bytes=%d, want 2/80", bc.len(), bc.bytes())
	}

	// Exactly-at-budget does not evict: 80 resident + 20 == 100.
	bc.putCost(key(2023070201), &Battery{}, 20)
	if bc.len() != 3 || bc.bytes() != 100 {
		t.Fatalf("at-budget insert evicted: len=%d bytes=%d, want 3/100", bc.len(), bc.bytes())
	}

	// Re-inserting a cached key replaces its cost instead of double-counting:
	// 40+40+30 = 110 > 100, so the oldest serial (070101) leaves and the
	// survivors are 070200 (40) + 070201 (30).
	bc.putCost(key(2023070201), &Battery{}, 30)
	if bc.len() != 2 || bc.bytes() != 70 {
		t.Fatalf("after re-insert: len=%d bytes=%d, want 2/70", bc.len(), bc.bytes())
	}
	if _, ok := bc.get(key(2023070101)); ok {
		t.Error("oldest serial survived the re-insert overflow")
	}
	if got := bcCost(bc, key(2023070201)); got != 30 {
		t.Errorf("re-inserted cost = %d, want 30 (replaced, not added)", got)
	}

	// An entry bigger than the whole budget evicts everything else but is
	// itself kept.
	bc.putCost(key(2023070300), &Battery{}, 500)
	if bc.len() != 1 || bc.bytes() != 500 {
		t.Fatalf("oversized insert: len=%d bytes=%d, want 1/500", bc.len(), bc.bytes())
	}
	if _, ok := bc.get(key(2023070300)); !ok {
		t.Error("oversized just-inserted entry was evicted")
	}

	// Zero-cost entries floor at one byte so the arithmetic stays sound.
	bc2 := newBatteryCache(2)
	bc2.putCost(key(1), &Battery{}, 0)
	bc2.putCost(key(2), &Battery{}, 0)
	bc2.putCost(key(3), &Battery{}, 0)
	if bc2.len() != 2 {
		t.Fatalf("zero-cost entries: len=%d, want 2 (floored to 1 byte each)", bc2.len())
	}
}

// bcCost reads an entry's recorded cost (0 when absent).
func bcCost(bc *batteryCache, key zoneKey) int64 {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	return bc.entries[key].cost
}

// TestRTTJitterDistribution checks the splitmix-based jitter stays uniform
// in [0, 2) and deterministic.
func TestRTTJitterDistribution(t *testing.T) {
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		j := rttJitter(1, i%700, i%28, i/700)
		if j < 0 || j >= 2 {
			t.Fatalf("jitter %f out of [0,2)", j)
		}
		sum += j
	}
	if mean := sum / float64(n); mean < 0.95 || mean > 1.05 {
		t.Errorf("jitter mean = %f, want ~1.0", mean)
	}
	if rttJitter(1, 2, 3, 4) != rttJitter(1, 2, 3, 4) {
		t.Error("jitter not deterministic")
	}
}

func TestVPIdentifierObserved(t *testing.T) {
	w := testWorld(t)
	start := time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC)
	col := runShortCampaign(t, w, start, start.Add(time.Hour), 1)
	identifiers := map[rss.Letter]map[string]bool{}
	for _, p := range col.probes {
		if p.Lost || p.Identifier == "" {
			continue
		}
		if identifiers[p.Target.Letter] == nil {
			identifiers[p.Target.Letter] = map[string]bool{}
		}
		identifiers[p.Target.Letter][p.Identifier] = true
	}
	// IATA-only letters report 3-char codes.
	for id := range identifiers["a"] {
		if len(id) != 3 {
			t.Errorf("a.root identifier %q not a metro code", id)
		}
	}
	if len(identifiers["l"]) == 0 {
		t.Error("no l.root identifiers observed")
	}
}
