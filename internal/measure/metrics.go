package measure

import (
	"repro/internal/faults"
	"repro/internal/telemetry"
)

// The campaign's telemetry claims. Logical counters are counted either at
// the serial tick-drain barrier (event outcomes), under a cache's own mutex
// (hits/misses), or via per-worker shards (campaign/pairs), so their sums
// are deterministic across worker counts; the wallclock histograms are the
// explicitly nondeterministic namespace and only record when telemetry is
// enabled. See DESIGN.md §11 for the class contract.
var (
	mTicks         = telemetry.NewCounter("campaign/ticks")
	mPairs         = telemetry.NewCounter("campaign/pairs")
	mProbes        = telemetry.NewCounter("campaign/probes")
	mProbesLost    = telemetry.NewCounter("campaign/probes_lost")
	mTransfers     = telemetry.NewCounter("campaign/transfers")
	mTransfersLost = telemetry.NewCounter("campaign/transfers_lost")
	mFaults        = telemetry.NewCounter("campaign/faults")
	mValFailures   = telemetry.NewCounter("campaign/validation_failures")
	mDegraded      = telemetry.NewCounter("campaign/degraded")
	mWireQueries   = telemetry.NewCounter("campaign/wire_queries")
	mCheckpoints   = telemetry.NewCounter("campaign/checkpoints")

	mZoneHits         = telemetry.NewCounter("cache/zone/hits")
	mZoneMisses       = telemetry.NewCounter("cache/zone/misses")
	mValHits          = telemetry.NewCounter("cache/validation/hits")
	mValMisses        = telemetry.NewCounter("cache/validation/misses")
	mBatteryHits      = telemetry.NewCounter("cache/battery/hits")
	mBatteryMisses    = telemetry.NewCounter("cache/battery/misses")
	mBatteryEvictions = telemetry.NewCounter("cache/battery/evictions")

	mQueueDepth = telemetry.NewGauge("campaign/queue_depth")
	mWorkers    = telemetry.NewGauge("process/workers")

	mTickDur       = telemetry.NewHistogram("wallclock/tick_us")
	mWirecheckDur  = telemetry.NewHistogram("wallclock/wirecheck_us")
	mProbeDur      = telemetry.NewHistogram("wallclock/probe_us")
	mTransferDur   = telemetry.NewHistogram("wallclock/transfer_us")
	mCheckpointDur = telemetry.NewHistogram("wallclock/checkpoint_us")
)

// recordPairMetrics tallies one drained pair's outcomes. It runs on the
// campaign goroutine at the ordered drain barrier, so the counts are a pure
// function of the event stream — the same aggregation point that makes the
// handler order deterministic makes these sums deterministic.
func recordPairMetrics(p *eventPair) {
	mProbes.Inc()
	if p.probe.Lost {
		mProbesLost.Inc()
	}
	if !p.hasTransfer {
		return
	}
	mTransfers.Inc()
	if p.transfer.Lost {
		mTransfersLost.Inc()
	}
	if p.transfer.Fault != faults.None {
		mFaults.Inc()
	}
	if p.transfer.ZonemdErr != nil || p.transfer.DNSSECErr != nil {
		mValFailures.Inc()
	}
}
