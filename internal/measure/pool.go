package measure

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/rss"
)

// The parallel campaign engine shards each tick's VP loop across a bounded
// worker pool. Workers only *compute* events — every probe and transfer is
// a pure function of (seed, tick, vp, target) plus the single-flight zone
// and validation caches — while handler delivery happens on the calling
// goroutine in exactly the serial engine's order (tick, then VP index, then
// target index, probe before transfer). Analyses therefore never see
// concurrency, need no merge step, and the same seed produces byte-identical
// reports at any worker count.

// eventPair carries one target's probe (and, after AXFRStart, transfer)
// from a worker to the ordered drain.
type eventPair struct {
	probe       ProbeEvent
	transfer    TransferEvent
	hasTransfer bool
}

// vpShard buffers one VP's events for the current tick. Shards are owned by
// exactly one worker while a tick is in flight and re-used across ticks.
type vpShard struct {
	pairs []eventPair
}

// workerCount resolves Config.Workers: 0 (or negative) means one worker per
// available CPU.
func (c *Campaign) workerCount() int {
	if c.Cfg.Workers > 0 {
		return c.Cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run walks the schedule, emitting events to the handlers. The tick×VP×target
// loop is sharded across Config.Workers goroutines; handlers receive events
// in deterministic serial order regardless of the worker count.
func (c *Campaign) Run(handlers ...Handler) error {
	ticks := Ticks(c.Cfg.Start, c.Cfg.End, c.Cfg.Scale)
	targets := rss.AllServiceAddrs()
	nVPs := len(c.World.Population.VPs)
	workers := c.workerCount()
	if workers > nVPs {
		workers = nVPs
	}
	shards := make([]vpShard, nVPs)
	for _, tick := range ticks {
		if c.Cfg.WireCheck {
			if err := c.runWireCheck(tick); err != nil {
				return err
			}
		}
		if workers <= 1 {
			for i := 0; i < nVPs; i++ {
				c.collectVP(tick, i, targets, &shards[i])
			}
		} else {
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= nVPs {
							return
						}
						c.collectVP(tick, i, targets, &shards[i])
					}
				}()
			}
			wg.Wait()
		}
		for i := range shards {
			for _, p := range shards[i].pairs {
				for _, h := range handlers {
					h.HandleProbe(p.probe)
				}
				if p.hasTransfer {
					for _, h := range handlers {
						h.HandleTransfer(p.transfer)
					}
				}
			}
		}
	}
	return nil
}

// collectVP computes one VP's full probe+transfer battery for the tick into
// out, preserving the serial engine's per-target event order.
func (c *Campaign) collectVP(tick Tick, vpIdx int, targets []rss.ServiceAddr, out *vpShard) {
	out.pairs = out.pairs[:0]
	vp := &c.World.Population.VPs[vpIdx]
	axfr := !tick.Time.Before(AXFRStart)
	for tIdx, target := range targets {
		pe, route, ok := c.probe(tick, vp, vpIdx, tIdx, target)
		pair := eventPair{probe: pe}
		if axfr {
			pair.transfer = c.transfer(tick, vp, vpIdx, tIdx, target, route, ok && !pe.Lost)
			pair.hasTransfer = true
		}
		out.pairs = append(out.pairs, pair)
	}
}
