package measure

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/failpoint"
	"repro/internal/rss"
	"repro/internal/telemetry"
	"repro/internal/vantage"
)

// The parallel campaign engine shards each tick's VP loop across a bounded
// worker pool. Workers only *compute* events — every probe and transfer is
// a pure function of (seed, tick, vp, target) plus the single-flight zone
// and validation caches — while handler delivery happens on the calling
// goroutine in exactly the serial engine's order (tick, then VP index, then
// target index, probe before transfer). Analyses therefore never see
// concurrency, need no merge step, and the same seed produces byte-identical
// reports at any worker count.
//
// Each worker is supervised: a panic or injected fault while computing one
// (tick, VP, target) pair is recovered in place and replaced with a
// classified degraded outcome (Lost+Degraded events) counted against
// Config.ErrorBudget, so a single bad pair can never tear down a
// long-horizon campaign. Named failpoint sites ("campaign/tick",
// "campaign/checkpoint", "dataset/seal", "measure/worker/probe",
// "measure/worker/transfer") let the chaos harness drive kills, panics, and
// errors through the exact production paths.

// eventPair carries one target's probe (and, after AXFRStart, transfer)
// from a worker to the ordered drain.
type eventPair struct {
	probe       ProbeEvent
	transfer    TransferEvent
	hasTransfer bool
}

// vpShard buffers one VP's events for the current tick. Shards are owned by
// exactly one worker while a tick is in flight and re-used across ticks.
type vpShard struct {
	pairs []eventPair
}

// workerCount resolves Config.Workers: 0 (or negative) means one worker per
// available CPU.
func (c *Campaign) workerCount() int {
	if c.Cfg.Workers > 0 {
		return c.Cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run walks the schedule, emitting events to the handlers. The tick×VP×target
// loop is sharded across Config.Workers goroutines; handlers receive events
// in deterministic serial order regardless of the worker count.
//
// With Config.CheckpointPath set, Run seals checkpointable handlers and
// writes a progress checkpoint every CheckpointEvery ticks; with
// Config.Resume it fast-forwards to the checkpointed tick first. A run
// killed at any point and restarted with Resume produces byte-identical
// handler output to an uninterrupted run with the same checkpoint settings.
func (c *Campaign) Run(handlers ...Handler) error {
	ticks := Ticks(c.Cfg.Start, c.Cfg.End, c.Cfg.Scale)
	targets := rss.AllServiceAddrs()
	nVPs := len(c.World.Population.VPs)
	workers := c.workerCount()
	if workers > nVPs {
		workers = nVPs
	}
	every := c.Cfg.CheckpointEvery
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	ckptOn := c.Cfg.CheckpointPath != ""
	startPos := 0
	if c.Cfg.Resume {
		if !ckptOn {
			return errors.New("measure: Config.Resume requires Config.CheckpointPath")
		}
		pos, err := c.loadResume(len(ticks))
		if err != nil {
			return err
		}
		startPos = pos
	}
	mWorkers.Set(int64(workers))
	shards := make([]vpShard, nVPs)
	for ti := startPos; ti < len(ticks); ti++ {
		// Chaos kill-point at the tick boundary: a kill here simulates
		// SIGKILL before any of this tick's work, the cleanest crash window.
		if err := failpoint.Eval("campaign/tick"); err != nil {
			return err
		}
		tick := ticks[ti]
		tickTimer := telemetry.StartTimer()
		tickSpan := telemetry.StartSpan("campaign", "tick", tick.Index, 0)
		if c.Cfg.WireCheck {
			if err := c.runWireCheck(tick); err != nil {
				return err
			}
		}
		// The queue-depth gauge counts VP shards still owed to the tick; a
		// live /metrics poll watches it fall from nVPs to 0 as workers drain
		// the index counter.
		mQueueDepth.Set(int64(nVPs))
		if workers <= 1 {
			for i := 0; i < nVPs; i++ {
				c.collectVP(tick, i, targets, &shards[i], 0)
			}
		} else {
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= nVPs {
							return
						}
						c.collectVP(tick, i, targets, &shards[i], w)
					}
				}(w)
			}
			wg.Wait()
		}
		drainSpan := telemetry.StartSpan("campaign", "record", tick.Index, 0)
		for i := range shards {
			for pi := range shards[i].pairs {
				p := &shards[i].pairs[pi]
				recordPairMetrics(p)
				for _, h := range handlers {
					h.HandleProbe(p.probe)
				}
				if p.hasTransfer {
					for _, h := range handlers {
						h.HandleTransfer(p.transfer)
					}
				}
			}
		}
		drainSpan.End()
		mTicks.Inc()
		tickSpan.End()
		tickTimer.ObserveInto(mTickDur)
		// The tick is fully drained before the budget verdict, so an abort
		// never leaves a handler with a partial tick.
		if err := c.budgetAbort(); err != nil {
			return err
		}
		if ckptOn && ((ti+1)%every == 0 || ti == len(ticks)-1) {
			if err := c.saveCheckpoint(handlers, ti+1, len(ticks)); err != nil {
				return err
			}
		}
	}
	return nil
}

// collectVP computes one VP's full probe+transfer battery for the tick into
// out, preserving the serial engine's per-target event order. wid is the
// computing worker's index: pair counts shard by it (contention-free, and
// the sum is worker-count-independent), and spans lane by it.
func (c *Campaign) collectVP(tick Tick, vpIdx int, targets []rss.ServiceAddr, out *vpShard, wid int) {
	out.pairs = out.pairs[:0]
	vp := &c.World.Population.VPs[vpIdx]
	axfr := !tick.Time.Before(AXFRStart)
	for tIdx, target := range targets {
		out.pairs = append(out.pairs, c.collectPair(tick, vp, vpIdx, tIdx, target, axfr, wid))
		mPairs.ShardInc(wid)
	}
	mQueueDepth.Add(-1)
}

// collectPair computes one (tick, VP, target) pair under supervision. A
// panic in either stage is recovered and classified; an injected failpoint
// error is converted in place. Both yield Lost+Degraded events for the
// stages they spoiled (a transfer-stage fault keeps the good probe) and
// count against the error budget.
func (c *Campaign) collectPair(tick Tick, vp *vantage.VP, vpIdx, tIdx int, target rss.ServiceAddr, axfr bool, wid int) (pair eventPair) {
	stage := "probe"
	defer func() {
		if r := recover(); r != nil {
			kind := degProbePanic
			if stage == "transfer" {
				kind = degTransferPanic
			}
			c.noteDegraded(kind, fmt.Sprintf("recovered %s panic at %s vp=%d target=%d: %v",
				stage, tick.Time.Format(time.RFC3339), vpIdx, tIdx, r))
			if stage == "probe" {
				pair.probe = degradedProbe(tick, vp, vpIdx, target)
			}
			if axfr {
				pair.transfer = degradedTransfer(tick, vp, vpIdx, target)
				pair.hasTransfer = true
			}
		}
	}()
	if err := failpoint.Eval("measure/worker/probe"); err != nil {
		c.noteDegraded(degProbeError, fmt.Sprintf("probe error at %s vp=%d target=%d: %v",
			tick.Time.Format(time.RFC3339), vpIdx, tIdx, err))
		pair.probe = degradedProbe(tick, vp, vpIdx, target)
		if axfr {
			pair.transfer = degradedTransfer(tick, vp, vpIdx, target)
			pair.hasTransfer = true
		}
		return pair
	}
	probeTimer := telemetry.StartTimer()
	probeSpan := telemetry.StartSpan("worker", "probe", tick.Index, wid)
	pe, route, ok := c.probe(tick, vp, vpIdx, tIdx, target)
	probeSpan.End()
	probeTimer.ObserveInto(mProbeDur)
	pair.probe = pe
	if !axfr {
		return pair
	}
	stage = "transfer"
	if err := failpoint.Eval("measure/worker/transfer"); err != nil {
		c.noteDegraded(degTransferError, fmt.Sprintf("transfer error at %s vp=%d target=%d: %v",
			tick.Time.Format(time.RFC3339), vpIdx, tIdx, err))
		pair.transfer = degradedTransfer(tick, vp, vpIdx, target)
		pair.hasTransfer = true
		return pair
	}
	transferTimer := telemetry.StartTimer()
	transferSpan := telemetry.StartSpan("worker", "transfer", tick.Index, wid)
	pair.transfer = c.transfer(tick, vp, vpIdx, tIdx, target, route, ok && !pe.Lost)
	transferSpan.End()
	transferTimer.ObserveInto(mTransferDur)
	pair.hasTransfer = true
	return pair
}
