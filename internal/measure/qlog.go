package measure

import (
	"repro/internal/qlog"
	"repro/internal/rss"
)

// FlightLog adapts a qlog.Recorder to the campaign Handler interface: one
// measure/probe or measure/transfer event per delivered campaign event.
// Handlers run at the pool's serial drain, so the append order — and with it
// the recorded segment — is a pure function of the schedule, byte-identical
// across worker counts and across kill/resume (the chaos matrix pins this).
// CheckpointSeal is promoted from the recorder, so a FlightLog registered as
// a campaign handler rides the checkpoint protocol like the dataset writer.
type FlightLog struct {
	*qlog.Recorder
}

// NewFlightLog wraps a recorder as a campaign handler.
func NewFlightLog(r *qlog.Recorder) *FlightLog { return &FlightLog{Recorder: r} }

// evMeasureProbe and evMeasureTransfer are the campaign-side flight-recorder
// events. Claimed once; the qlogfield analyzer cross-checks the field lists
// against the qlog registry.
var (
	evMeasureProbe = qlog.NewEvent("measure/probe",
		"tick", "vp", "lost", "degraded", "rtt_cms")
	evMeasureTransfer = qlog.NewEvent("measure/transfer",
		"tick", "vp", "lost", "degraded", "fault", "serial", "mismatch")
)

// qlogTarget renders the event subject for a service target, matching the
// dataset's compact key ("b4o" = b.root IPv4 old) so `rootanalyze -qlog`
// output reads like the dataset tooling's.
func qlogTarget(t rss.ServiceAddr) []byte {
	fam := byte('4')
	if t.Family == 1 {
		fam = '6'
	}
	b := append([]byte(t.Letter), fam)
	if t.Old {
		b = append(b, 'o')
	}
	return b
}

// qlogKey folds the pair identity (tick, VP, target) into the sampling key.
// Campaign events have no wire bytes, so the key is built from the logical
// coordinates every run shares.
func qlogKey(tick, vp int, subject []byte) uint64 {
	return qlog.KeyVals(uint64(tick), uint64(vp), qlog.Key(subject))
}

// HandleProbe implements Handler.
func (f *FlightLog) HandleProbe(e ProbeEvent) {
	subject := qlogTarget(e.Target)
	key := qlogKey(e.Tick.Index, e.VPIdx, subject)
	if !f.Sampled(key) {
		return
	}
	var lost, degraded, rtt uint64
	if e.Lost {
		lost = 1
	} else {
		rtt = uint64(e.RTTms*100 + 0.5)
	}
	if e.Degraded {
		degraded = 1
	}
	f.Emit(evMeasureProbe, key, subject,
		uint64(e.Tick.Index), uint64(e.VPIdx), lost, degraded, rtt)
}

// HandleTransfer implements Handler.
func (f *FlightLog) HandleTransfer(e TransferEvent) {
	subject := qlogTarget(e.Target)
	key := qlogKey(e.Tick.Index, e.VPIdx, subject)
	if !f.Sampled(key) {
		return
	}
	var lost, degraded, mismatch uint64
	if e.Lost {
		lost = 1
	}
	if e.Degraded {
		degraded = 1
	}
	if e.ComparisonMismatch {
		mismatch = 1
	}
	f.Emit(evMeasureTransfer, key, subject,
		uint64(e.Tick.Index), uint64(e.VPIdx), lost, degraded,
		uint64(e.Fault), uint64(e.Serial), mismatch)
}
