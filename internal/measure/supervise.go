package measure

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/rss"
	"repro/internal/vantage"
)

// Worker supervision: a panic or injected error while computing one
// (tick, VP, target) pair must not tear down the worker pool. The pool
// recovers it, emits the pair as a classified degraded outcome
// (ProbeEvent/TransferEvent with Lost and Degraded set), and counts it
// against Config.ErrorBudget; only exceeding the budget aborts the
// campaign, with a summarized error. This mirrors how long-horizon
// measurement platforms isolate per-query failures so one malformed
// response never kills a scan.

// degKind classifies a degraded outcome.
type degKind int

const (
	degProbePanic degKind = iota
	degTransferPanic
	degProbeError
	degTransferError
	degWriteError
)

// maxDegradedSamples bounds how many outcome descriptions the summary keeps.
const maxDegradedSamples = 8

type degradedState struct {
	mu sync.Mutex
	//rootlint:guardedby mu
	probePanics, transferPanics int
	//rootlint:guardedby mu
	probeErrors, transferErrors int
	//rootlint:guardedby mu
	writeErrors int
	//rootlint:guardedby mu
	samples []string
	//rootlint:guardedby mu
	abort error
}

// DegradedStats reports the campaign's supervisor-salvaged outcomes.
type DegradedStats struct {
	// ProbePanics and TransferPanics count recovered worker panics by the
	// stage they interrupted.
	ProbePanics, TransferPanics int
	// ProbeErrors and TransferErrors count per-probe errors converted to
	// degraded events.
	ProbeErrors, TransferErrors int
	// WriteErrors counts dataset/checkpoint write failures that were
	// retried successfully.
	WriteErrors int
	// Samples holds the first few classified outcome descriptions.
	Samples []string
}

// Total is the count weighed against Config.ErrorBudget.
func (s DegradedStats) Total() int {
	return s.ProbePanics + s.TransferPanics + s.ProbeErrors + s.TransferErrors + s.WriteErrors
}

// Degraded returns a snapshot of the supervisor's accounting.
func (c *Campaign) Degraded() DegradedStats {
	d := &c.deg
	d.mu.Lock()
	defer d.mu.Unlock()
	return DegradedStats{
		ProbePanics:    d.probePanics,
		TransferPanics: d.transferPanics,
		ProbeErrors:    d.probeErrors,
		TransferErrors: d.transferErrors,
		WriteErrors:    d.writeErrors,
		Samples:        append([]string(nil), d.samples...),
	}
}

// noteDegraded records one classified degraded outcome. It returns nil while
// the error budget holds; once the budget is exceeded it returns (and pins,
// for budgetAbort) a summarized abort error. Safe for concurrent use by
// workers.
func (c *Campaign) noteDegraded(kind degKind, desc string) error {
	d := &c.deg
	d.mu.Lock()
	defer d.mu.Unlock()
	switch kind {
	case degProbePanic:
		d.probePanics++
	case degTransferPanic:
		d.transferPanics++
	case degProbeError:
		d.probeErrors++
	case degTransferError:
		d.transferErrors++
	case degWriteError:
		d.writeErrors++
	}
	if len(d.samples) < maxDegradedSamples {
		d.samples = append(d.samples, desc)
	}
	mDegraded.Inc()
	total := d.probePanics + d.transferPanics + d.probeErrors + d.transferErrors + d.writeErrors
	if budget := c.Cfg.ErrorBudget; budget >= 0 && total > budget && d.abort == nil {
		d.abort = fmt.Errorf(
			"measure: error budget exceeded: %d degraded outcomes > budget %d (%d probe panics, %d transfer panics, %d probe errors, %d transfer errors, %d write errors); first: %s",
			total, budget, d.probePanics, d.transferPanics, d.probeErrors,
			d.transferErrors, d.writeErrors, strings.Join(d.samples, "; "))
	}
	return d.abort
}

// budgetAbort returns the pinned abort error once the budget is exceeded.
func (c *Campaign) budgetAbort() error {
	c.deg.mu.Lock()
	defer c.deg.mu.Unlock()
	return c.deg.abort
}

// degradedProbe renders the salvaged outcome for a failed probe stage.
func degradedProbe(tick Tick, vp *vantage.VP, vpIdx int, target rss.ServiceAddr) ProbeEvent {
	return ProbeEvent{Tick: tick, VP: vp, VPIdx: vpIdx, Target: target, Lost: true, Degraded: true}
}

// degradedTransfer renders the salvaged outcome for a failed transfer stage.
func degradedTransfer(tick Tick, vp *vantage.VP, vpIdx int, target rss.ServiceAddr) TransferEvent {
	return TransferEvent{Tick: tick, VP: vp, VPIdx: vpIdx, Target: target, Lost: true, Degraded: true}
}
