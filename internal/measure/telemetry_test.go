package measure

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// telemetryCampaignConfig is the shared shape for telemetry determinism
// tests: a short window with transfers active and wire checks on, so every
// logical counter family (probes, transfers, caches, wire queries) moves.
// 2023-10-02 22:00 covers a planned clock-skew window, whose faulted
// transfers are the ones that route through the validation cache (bitflips
// bypass it and clean transfers are valid by construction).
func telemetryCampaignConfig(workers int) Config {
	cfg := DefaultConfig()
	cfg.Start = time.Date(2023, 10, 2, 22, 0, 0, 0, time.UTC)
	cfg.End = cfg.Start.Add(2 * time.Hour)
	cfg.Scale = 1
	cfg.TLDCount = 15
	cfg.WireCheck = true
	cfg.Workers = workers
	return cfg
}

// TestTelemetrySnapshotIdenticalAcrossWorkers is the tentpole determinism
// pin: the logical metric snapshot (stream + process classes, volatile
// excluded) must be byte-identical at 1, 4, and 8 workers. Sharded counters
// sum commutatively and cache hit/miss splits are fixed by single-flight, so
// the bytes cannot depend on scheduling.
func TestTelemetrySnapshotIdenticalAcrossWorkers(t *testing.T) {
	w := testWorld(t)
	run := func(workers int) []byte {
		telemetry.Reset()
		if err := NewCampaign(telemetryCampaignConfig(workers), w).Run(&collector{}); err != nil {
			t.Fatal(err)
		}
		return telemetry.MarshalLogical()
	}
	ref := run(1)
	for _, workers := range []int{4, 8} {
		if got := run(workers); !bytes.Equal(got, ref) {
			t.Errorf("logical snapshot at %d workers differs from serial:\nserial: %s\ngot:    %s",
				workers, ref, got)
		}
	}
	// The reference must actually have counted: a regression that stops
	// instrumenting would pass the comparison with all-zeros.
	var metrics []telemetry.MetricValue
	if err := json.Unmarshal(ref, &metrics); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"campaign/ticks": false, "campaign/pairs": false, "campaign/probes": false,
		"campaign/transfers": false, "campaign/wire_queries": false,
		"cache/zone/misses": false, "cache/validation/misses": false,
		"cache/battery/misses": false, "dns/queries": false,
	}
	for _, mv := range metrics {
		if _, tracked := want[mv.Name]; tracked && mv.Value > 0 {
			want[mv.Name] = true
		}
	}
	for name, moved := range want {
		if !moved {
			t.Errorf("metric %s stayed zero over a full campaign", name)
		}
	}
}

// metricsPoller polls a live /metrics endpoint from inside the campaign's
// handler path — i.e. while the campaign is running — and records the
// campaign/pairs value it observed.
type metricsPoller struct {
	t    *testing.T
	url  string
	once sync.Once
	seen int64
}

func (p *metricsPoller) HandleProbe(ProbeEvent) {
	p.once.Do(func() {
		resp, err := http.Get(p.url + "/metrics")
		if err != nil {
			p.t.Errorf("live /metrics poll: %v", err)
			return
		}
		defer resp.Body.Close()
		var out struct {
			Metrics []telemetry.MetricValue `json:"metrics"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			p.t.Errorf("live /metrics decode: %v", err)
			return
		}
		for _, mv := range out.Metrics {
			if mv.Name == "campaign/pairs" {
				p.seen = mv.Value
			}
		}
	})
}

func (p *metricsPoller) HandleTransfer(TransferEvent) {}

// TestTelemetryLiveMetricsDuringCampaign pins the introspection contract:
// an HTTP client hitting /metrics mid-campaign sees counters in flight. The
// poll runs from the first drained probe, when the first tick's pairs have
// all been computed but the campaign is far from done.
func TestTelemetryLiveMetricsDuringCampaign(t *testing.T) {
	telemetry.Reset()
	w := testWorld(t)
	srv := httptest.NewServer(telemetry.Handler())
	defer srv.Close()
	poller := &metricsPoller{t: t, url: srv.URL}
	cfg := telemetryCampaignConfig(4)
	cfg.WireCheck = false
	if err := NewCampaign(cfg, w).Run(poller); err != nil {
		t.Fatal(err)
	}
	if poller.seen <= 0 {
		t.Fatalf("live /metrics served campaign/pairs = %d during the campaign, want > 0", poller.seen)
	}
}
