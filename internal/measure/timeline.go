// Package measure implements the NLNOG-DNS-1 campaign engine: it walks the
// paper's measurement timeline (Fig. 2), runs the per-interval probe battery
// from every vantage point against all 28 root service addresses
// (13 letters x 2 families plus b.root's old pair), and streams probe and
// zone-transfer events to analysis handlers. Zone contents evolve on the
// real rollout schedule (ZONEMD placeholder from 2023-09-13, verifiable from
// 2023-12-06) and planned faults (bitflips, stale sites, VP clock skew)
// surface as cryptographically real validation failures.
package measure

import "time"

// Timeline milestones (UTC), from the paper's Fig. 2.
var (
	// StudyStart and StudyEnd bound the campaign (2023-07-03 to 2023-12-24).
	StudyStart = time.Date(2023, 7, 3, 0, 0, 0, 0, time.UTC)
	StudyEnd   = time.Date(2023, 12, 24, 0, 0, 0, 0, time.UTC)
	// AXFRStart is when ZONEMD and AXFR queries were added (2023-07-31).
	AXFRStart = time.Date(2023, 7, 31, 0, 0, 0, 0, time.UTC)
	// BRootChange is b.root's renumbering date (2023-11-27).
	BRootChange = time.Date(2023, 11, 27, 0, 0, 0, 0, time.UTC)
)

// fastWindow is a period measured at 15-minute instead of 30-minute
// intervals.
type fastWindow struct{ start, end time.Time }

// fastWindows are the two high-resolution periods around the ZONEMD rollout
// and the b.root change.
var fastWindows = []fastWindow{
	{time.Date(2023, 9, 8, 0, 0, 0, 0, time.UTC), time.Date(2023, 10, 2, 0, 0, 0, 0, time.UTC)},
	{time.Date(2023, 11, 20, 0, 0, 0, 0, time.UTC), time.Date(2023, 12, 6, 0, 0, 0, 0, time.UTC)},
}

// BaseInterval returns the unscaled measurement interval in effect at t.
func BaseInterval(t time.Time) time.Duration {
	for _, w := range fastWindows {
		if !t.Before(w.start) && t.Before(w.end) {
			return 15 * time.Minute
		}
	}
	return 30 * time.Minute
}

// Tick is one campaign measurement round.
type Tick struct {
	Index int
	Time  time.Time
}

// Ticks enumerates the campaign's measurement rounds between start and end
// with the interval scaled by scale (1 = the paper's fidelity; larger values
// thin the schedule proportionally while preserving the fast windows'
// doubled density).
func Ticks(start, end time.Time, scale int) []Tick {
	if scale < 1 {
		scale = 1
	}
	var out []Tick
	t := start
	for i := 0; t.Before(end); i++ {
		out = append(out, Tick{Index: i, Time: t})
		t = t.Add(BaseInterval(t) * time.Duration(scale))
	}
	return out
}

// SerialAt returns the root zone SOA serial in effect at t: the conventional
// YYYYMMDDNN scheme with two revisions per day (NN = 00 before 12:00 UTC,
// 01 after).
func SerialAt(t time.Time) uint32 {
	rev := 0
	if t.Hour() >= 12 {
		rev = 1
	}
	return uint32(t.Year()*1000000 + int(t.Month())*10000 + t.Day()*100 + rev)
}

// SerialPublishedAt returns the moment the serial in effect at t was
// published (00:00 or 12:00 UTC of its day).
func SerialPublishedAt(t time.Time) time.Time {
	hour := 0
	if t.Hour() >= 12 {
		hour = 12
	}
	return time.Date(t.Year(), t.Month(), t.Day(), hour, 0, 0, 0, time.UTC)
}
