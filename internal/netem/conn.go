package netem

import (
	"errors"
	"net"
	"sync"
)

// ErrCut reports a write on a connection the link decided to sever.
var ErrCut = errors.New("netem: connection cut")

// cutConn enforces a write-side byte budget on a TCP connection the link
// decided to cut: once the budget is spent, the write that crosses it is
// truncated, the underlying connection is closed, and every later write
// fails. The peer observes a mid-stream disconnect — exactly the torn-
// transfer shape axfr.Receive classifies as ErrTruncatedTransfer.
type cutConn struct {
	net.Conn
	mu sync.Mutex
	//rootlint:guardedby mu
	budget int
	//rootlint:guardedby mu
	cut bool
}

func (c *cutConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	if c.cut {
		c.mu.Unlock()
		return 0, ErrCut
	}
	if len(b) >= c.budget {
		n := c.budget
		c.cut = true
		c.mu.Unlock()
		if n > 0 {
			_, _ = c.Conn.Write(b[:n]) // best-effort torn tail
		}
		mCuts.Inc()
		c.Conn.Close()
		return n, ErrCut
	}
	c.budget -= len(b)
	c.mu.Unlock()
	return c.Conn.Write(b)
}

// WrapConn applies the link's connection-level fates to a TCP connection.
// The cut decision is drawn once per wrapped connection from the link's
// accept counter (stable run to run when connections are accepted in a
// deterministic order), not from the peer's ephemeral address. Uncut
// connections are returned unwrapped.
func (l *Link) WrapConn(c net.Conn) net.Conn {
	if l == nil || l.prof.Cut <= 0 {
		return c
	}
	l.mu.Lock()
	idx := l.conns
	l.conns++
	l.mu.Unlock()
	h := splitmix64(l.prof.Seed ^ saltCut ^ idx*0x9e3779b97f4a7c15)
	if frac(h) >= l.prof.Cut {
		return c
	}
	budget := l.prof.CutBytes
	if budget <= 0 {
		budget = 256 + int(splitmix64(h)%4096)
	}
	return &cutConn{Conn: c, budget: budget}
}
