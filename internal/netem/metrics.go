package netem

import "repro/internal/telemetry"

// Netem counters are process-class: with a fixed profile seed and a
// deterministic per-flow offered sequence (the battery's serial client, or
// rootblast at window 1), every fate is a pure function of the seed, so the
// counts agree across runs and across serve-worker counts — that is exactly
// what the check.sh adversarial determinism step compares with
// `rootanalyze -diff`. They are not stream-class: they count what this
// process's emulated link did, which a resumed run legitimately repeats.
var (
	mDrops    = telemetry.NewCounter("netem/drops")
	mDups     = telemetry.NewCounter("netem/dups")
	mReorders = telemetry.NewCounter("netem/reorders")
	mCorrupts = telemetry.NewCounter("netem/corrupts")
	mCuts     = telemetry.NewCounter("netem/cuts")
)
