// Package netem is a deterministic adverse-network layer: it sits at the
// socket boundary (in front of a UDP read/write loop, or wrapped around a
// TCP net.Conn) and injects loss, duplication, reordering, corruption,
// delay, and blackholing per a seedable Profile. Every fate decision is a
// pure function of (profile seed, flow key, per-flow packet index,
// direction), computed with the repo's splitmix64 generator — no wall
// clock, no global rand — so two runs with the same seed and the same
// offered per-flow packet sequence make byte-identical decisions, and the
// serve path's logical telemetry stays comparable across worker counts.
//
// The unit of determinism is the flow. A flow key should identify the
// stable party of a conversation (client IP for UDP serving — never the
// ephemeral port, which varies run to run; an accept counter for TCP), and
// packets within one flow must be admitted serially (true for UDP shards,
// where SO_REUSEPORT pins a flow to one socket, and for TCP, where a
// connection is owned by one goroutine). Distinct flows may be admitted
// concurrently.
package netem

import (
	"fmt"
	"math"
	"net/netip"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/failpoint"
)

// splitmix64 is the repo's standard allocation-free seeded generator.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// frac maps a hash to a uniform float64 in [0, 1).
func frac(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// Dir distinguishes the two sides of the emulated link so ingress and
// egress of the same flow draw from independent decision streams.
type Dir uint8

const (
	// Ingress is traffic arriving at the wrapped endpoint (e.g. queries
	// read off a server socket).
	Ingress Dir = iota
	// Egress is traffic leaving the wrapped endpoint (e.g. responses about
	// to be written).
	Egress
)

// Profile describes the adversity applied to a link. Probabilities are in
// [0, 1] and evaluated per packet (Blackhole per flow, Cut per
// connection). The zero Profile injects nothing.
type Profile struct {
	// Loss drops a packet outright.
	Loss float64
	// Dup delivers a packet twice back to back.
	Dup float64
	// Reorder holds a packet back and releases it after the flow's next
	// packet, swapping their order. A held packet with no successor is
	// dropped when the link is discarded — a straggler that never arrived.
	Reorder float64
	// Corrupt flips one deterministic bit of the payload.
	Corrupt float64
	// Blackhole silently drops every packet of an affected flow, decided
	// once per flow — a stale anycast site that routes to nowhere.
	Blackhole float64
	// Cut closes an affected TCP connection after CutBytes written bytes,
	// decided once per wrapped connection.
	Cut float64
	// CutBytes bounds the bytes a cut connection passes before dying.
	// Zero means a deterministic per-connection value in [256, 4352).
	CutBytes int
	// Delay + jitter stall delivery of each packet; the jitter component
	// is a deterministic per-packet fraction of Jitter. Delay is wall
	// clock by necessity and is the only nondeterministic effect; keep it
	// zero in determinism tests.
	Delay  time.Duration
	Jitter time.Duration
	// Seed roots every decision stream.
	Seed uint64
}

// zero reports whether the profile injects nothing.
func (p Profile) zero() bool {
	return p.Loss == 0 && p.Dup == 0 && p.Reorder == 0 && p.Corrupt == 0 &&
		p.Blackhole == 0 && p.Cut == 0 && p.Delay == 0 && p.Jitter == 0
}

// ParseProfile parses the -netem flag syntax: a comma-separated list of
// key=value pairs, e.g. "loss=0.1,dup=0.01,reorder=0.05,seed=7". Keys:
// loss, dup, reorder, corrupt, blackhole, cut (probabilities), cutbytes
// (int), delay, jitter (durations), seed (uint64). An empty spec is the
// zero profile.
func ParseProfile(spec string) (Profile, error) {
	var p Profile
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return p, fmt.Errorf("netem: bad pair %q (want key=value)", kv)
		}
		var err error
		switch k {
		case "loss", "dup", "reorder", "corrupt", "blackhole", "cut":
			var f float64
			if f, err = strconv.ParseFloat(v, 64); err == nil {
				if f < 0 || f > 1 || math.IsNaN(f) {
					err = fmt.Errorf("out of [0,1]")
				}
			}
			switch k {
			case "loss":
				p.Loss = f
			case "dup":
				p.Dup = f
			case "reorder":
				p.Reorder = f
			case "corrupt":
				p.Corrupt = f
			case "blackhole":
				p.Blackhole = f
			case "cut":
				p.Cut = f
			}
		case "cutbytes":
			p.CutBytes, err = strconv.Atoi(v)
		case "delay":
			p.Delay, err = time.ParseDuration(v)
		case "jitter":
			p.Jitter, err = time.ParseDuration(v)
		case "seed":
			p.Seed, err = strconv.ParseUint(v, 10, 64)
		default:
			return p, fmt.Errorf("netem: unknown key %q", k)
		}
		if err != nil {
			return p, fmt.Errorf("netem: bad %s=%q: %v", k, v, err)
		}
	}
	return p, nil
}

// String renders the profile in ParseProfile syntax (only non-zero keys).
func (p Profile) String() string {
	var parts []string
	add := func(k string, f float64) {
		if f != 0 {
			parts = append(parts, k+"="+strconv.FormatFloat(f, 'g', -1, 64))
		}
	}
	add("loss", p.Loss)
	add("dup", p.Dup)
	add("reorder", p.Reorder)
	add("corrupt", p.Corrupt)
	add("blackhole", p.Blackhole)
	add("cut", p.Cut)
	if p.CutBytes != 0 {
		parts = append(parts, "cutbytes="+strconv.Itoa(p.CutBytes))
	}
	if p.Delay != 0 {
		parts = append(parts, "delay="+p.Delay.String())
	}
	if p.Jitter != 0 {
		parts = append(parts, "jitter="+p.Jitter.String())
	}
	parts = append(parts, "seed="+strconv.FormatUint(p.Seed, 10))
	return strings.Join(parts, ",")
}

// flowState is one flow's decision stream position and held packet.
type flowState struct {
	base  [2]uint64 // per-direction decision stream roots
	count [2]uint64 // packets admitted so far, per direction
	dead  bool      // blackholed flow
	held  [2][]byte // reorder hold slot, per direction
}

// Link applies a Profile to packets. A nil *Link admits everything
// unchanged, so callers keep a single unconditional code path.
type Link struct {
	//rootlint:immutable-after-start
	prof Profile

	mu sync.Mutex
	//rootlint:guardedby mu
	flows map[uint64]*flowState
	//rootlint:guardedby mu
	conns uint64 // wrapped-connection counter, for per-conn cut decisions
}

// direction salts: arbitrary odd constants separating decision streams.
const (
	saltIngress   = 0x7f4a7c15ca7b0e15
	saltEgress    = 0x2545f4914f6cdd1d
	saltBlackhole = 0x9e6d1ce4e5b97f4a
	saltCut       = 0x452821e638d01377
)

// NewLink builds a link for the profile. A zero profile returns nil: the
// nil link is the documented no-op, and callers can test `l == nil` to
// skip the layer entirely on hot paths.
func NewLink(p Profile) *Link {
	if p.zero() {
		return nil
	}
	return &Link{prof: p, flows: make(map[uint64]*flowState)}
}

// Profile returns the link's profile (zero for a nil link).
func (l *Link) Profile() Profile {
	if l == nil {
		return Profile{}
	}
	return l.prof
}

// FlowAddr derives a flow key from the stable address of the peer. Only
// the IP participates: ephemeral source ports differ run to run and would
// break decision determinism.
func FlowAddr(addr netip.AddrPort) uint64 {
	ip := addr.Addr().Unmap()
	b := ip.As16()
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// FlowID derives a flow key from a stable small-integer identity (a blast
// worker index, a TCP accept counter) — the client-side counterpart of
// FlowAddr for flows the caller already numbers deterministically.
func FlowID(n uint64) uint64 { return splitmix64(n ^ 0xda3e39cb94b95bdb) }

// state returns (creating if needed) the flow's state, deciding blackhole
// membership at creation. Caller holds l.mu.
func (l *Link) state(flow uint64) *flowState {
	st := l.flows[flow]
	if st == nil {
		st = &flowState{base: [2]uint64{
			splitmix64(l.prof.Seed ^ flow ^ saltIngress),
			splitmix64(l.prof.Seed ^ flow ^ saltEgress),
		}}
		if l.prof.Blackhole > 0 &&
			frac(splitmix64(l.prof.Seed^flow^saltBlackhole)) < l.prof.Blackhole {
			st.dead = true
		}
		l.flows[flow] = st
	}
	return st
}

// Admit decides one packet's fate and returns the packets to deliver, in
// order. first may alias pkt (corrupted in place when the corrupt fate
// fires); second is non-nil only for a duplication (aliasing first) or a
// reorder release (a link-owned copy of the earlier held packet, valid
// until the flow's next Admit). A (nil, nil) return means the packet was
// dropped, blackholed, or held for reordering. Packets within one flow
// and direction must be admitted serially.
func (l *Link) Admit(dir Dir, flow uint64, pkt []byte) (first, second []byte) {
	if l == nil {
		return pkt, nil
	}
	if err := failpoint.Eval("netem/inject"); err != nil {
		// An injected chaos error is a forced drop: the chaos harness can
		// make any single packet vanish without probability arithmetic.
		mDrops.Inc()
		return nil, nil
	}
	l.mu.Lock()
	st := l.state(flow)
	if st.dead {
		st.count[dir]++
		l.mu.Unlock()
		mDrops.Inc()
		return nil, nil
	}
	idx := st.count[dir]
	st.count[dir]++
	// One hash per fate, all derived from the flow's stream root and the
	// packet's per-flow index, so fates are independent and replayable.
	h := splitmix64(st.base[dir] + idx*0x9e3779b97f4a7c15)
	hLoss, hDup, hReord, hCorr := h, splitmix64(h+1), splitmix64(h+2), splitmix64(h+3)
	// Copy the profile by value: taking &l.prof would leak an interior
	// pointer to immutable-after-start state past the critical section.
	p := l.prof
	if p.Loss > 0 && frac(hLoss) < p.Loss {
		l.mu.Unlock()
		mDrops.Inc()
		return nil, nil
	}
	if p.Corrupt > 0 && frac(hCorr) < p.Corrupt && len(pkt) > 0 {
		bit := splitmix64(hCorr) % uint64(len(pkt)*8)
		pkt[bit/8] ^= 1 << (bit % 8)
		mCorrupts.Inc()
	}
	if p.Reorder > 0 && frac(hReord) < p.Reorder && st.held[dir] == nil {
		// Hold this packet; it rides out after the flow's next packet.
		st.held[dir] = append([]byte(nil), pkt...)
		l.mu.Unlock()
		return nil, nil
	}
	first = pkt
	if held := st.held[dir]; held != nil {
		st.held[dir] = nil
		second = held
		mReorders.Inc()
	} else if p.Dup > 0 && frac(hDup) < p.Dup {
		second = pkt
		mDups.Inc()
	}
	l.mu.Unlock()
	if p.Delay > 0 || p.Jitter > 0 {
		d := p.Delay
		if p.Jitter > 0 {
			d += time.Duration(frac(splitmix64(h+4)) * float64(p.Jitter))
		}
		time.Sleep(d)
	}
	return first, second
}
