package netem

import (
	"bytes"
	"io"
	"net"
	"net/netip"
	"testing"
	"time"

	"repro/internal/failpoint"
)

// fates runs n packets of one flow through a fresh link and records each
// packet's outcome as a compact rune: 'd' dropped/held, 'p' passed, 'D'
// passed-with-duplicate, 'R' passed-with-reorder-release (two out), 'c'
// corrupted in place.
func fates(t *testing.T, p Profile, flow uint64, n int) string {
	t.Helper()
	l := NewLink(p)
	if l == nil {
		t.Fatalf("NewLink returned nil for non-zero profile %+v", p)
	}
	var out []byte
	pkt := make([]byte, 64)
	for i := 0; i < n; i++ {
		for j := range pkt {
			pkt[j] = byte(i + j)
		}
		orig := append([]byte(nil), pkt...)
		first, second := l.Admit(Ingress, flow, pkt)
		switch {
		case first == nil:
			out = append(out, 'd')
		case second == nil:
			if !bytes.Equal(first, orig) {
				out = append(out, 'c')
			} else {
				out = append(out, 'p')
			}
		case bytes.Equal(first, second):
			out = append(out, 'D')
		default:
			out = append(out, 'R')
		}
	}
	return string(out)
}

func TestFatesDeterministicAcrossRuns(t *testing.T) {
	p := Profile{Loss: 0.1, Dup: 0.05, Reorder: 0.1, Corrupt: 0.05, Seed: 42}
	a := fates(t, p, 7, 2000)
	b := fates(t, p, 7, 2000)
	if a != b {
		t.Fatalf("fate sequences differ across identical runs")
	}
	if c := fates(t, Profile{Loss: 0.1, Dup: 0.05, Reorder: 0.1, Corrupt: 0.05, Seed: 43}, 7, 2000); c == a {
		t.Fatalf("fate sequence insensitive to seed")
	}
	if d := fates(t, p, 8, 2000); d == a {
		t.Fatalf("fate sequence insensitive to flow key")
	}
	// Directions draw from independent streams.
	l := NewLink(p)
	var in, eg []bool
	for i := 0; i < 512; i++ {
		f, _ := l.Admit(Ingress, 7, []byte{1, 2, 3, 4})
		in = append(in, f == nil)
		f, _ = l.Admit(Egress, 7, []byte{1, 2, 3, 4})
		eg = append(eg, f == nil)
	}
	same := 0
	for i := range in {
		if in[i] == eg[i] {
			same++
		}
	}
	if same == len(in) {
		t.Fatalf("ingress and egress fate streams identical")
	}
}

func TestLossRateApproximatesProfile(t *testing.T) {
	const n = 20000
	s := fates(t, Profile{Loss: 0.1, Seed: 1}, 3, n)
	drops := 0
	for _, r := range s {
		if r == 'd' {
			drops++
		}
	}
	got := float64(drops) / n
	if got < 0.08 || got > 0.12 {
		t.Fatalf("loss=0.1 produced drop rate %.4f", got)
	}
}

func TestReorderSwapsAdjacentPackets(t *testing.T) {
	// Reorder=1 with a 2-packet flow: packet 0 is held, packet 1 releases
	// it, delivered as (pkt1, pkt0).
	l := NewLink(Profile{Reorder: 1, Seed: 5})
	p0 := []byte{0xaa, 0x00}
	first, second := l.Admit(Ingress, 1, p0)
	if first != nil || second != nil {
		t.Fatalf("first packet under reorder=1 not held: %v %v", first, second)
	}
	p1 := []byte{0xbb, 0x01}
	first, second = l.Admit(Ingress, 1, p1)
	if !bytes.Equal(first, p1) || !bytes.Equal(second, p0) {
		t.Fatalf("release order wrong: first=%x second=%x", first, second)
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	l := NewLink(Profile{Corrupt: 1, Seed: 9})
	orig := []byte{0, 0, 0, 0, 0, 0, 0, 0}
	pkt := append([]byte(nil), orig...)
	first, _ := l.Admit(Egress, 2, pkt)
	diff := 0
	for i := range first {
		for b := 0; b < 8; b++ {
			if (first[i]^orig[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt flipped %d bits, want 1", diff)
	}
}

func TestBlackholeKillsWholeFlows(t *testing.T) {
	l := NewLink(Profile{Blackhole: 0.3, Seed: 11})
	dead := 0
	for flow := uint64(0); flow < 1000; flow++ {
		allDropped := true
		for i := 0; i < 3; i++ {
			if f, _ := l.Admit(Ingress, flow, []byte{1}); f != nil {
				allDropped = false
			}
		}
		if allDropped {
			dead++
		}
	}
	if dead < 200 || dead > 400 {
		t.Fatalf("blackhole=0.3 killed %d/1000 flows", dead)
	}
}

func TestNilLinkPassesThrough(t *testing.T) {
	var l *Link
	pkt := []byte{1, 2, 3}
	first, second := l.Admit(Ingress, 0, pkt)
	if &first[0] != &pkt[0] || second != nil {
		t.Fatalf("nil link altered packet")
	}
	if c := l.WrapConn(nil); c != nil {
		t.Fatalf("nil link wrapped conn")
	}
	if NewLink(Profile{}) != nil {
		t.Fatalf("zero profile built a live link")
	}
}

func TestFlowAddrIgnoresPort(t *testing.T) {
	a := FlowAddr(netip.MustParseAddrPort("192.0.2.1:1234"))
	b := FlowAddr(netip.MustParseAddrPort("192.0.2.1:60001"))
	if a != b {
		t.Fatalf("flow key depends on ephemeral port")
	}
	if FlowAddr(netip.MustParseAddrPort("192.0.2.2:1234")) == a {
		t.Fatalf("flow key insensitive to IP")
	}
	// v4 and its v6-mapped form are one flow.
	if FlowAddr(netip.MustParseAddrPort("[::ffff:192.0.2.1]:53")) != a {
		t.Fatalf("v4-mapped address hashes differently")
	}
}

func TestForcedDropViaFailpoint(t *testing.T) {
	if err := failpoint.Enable("netem/inject=error@2"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable()
	l := NewLink(Profile{Seed: 1, Dup: 0.000001}) // non-zero so link is live
	var got []bool
	for i := 0; i < 4; i++ {
		f, _ := l.Admit(Ingress, 1, []byte{1, 2})
		got = append(got, f == nil)
	}
	want := []bool{false, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("forced-drop pattern %v, want %v", got, want)
		}
	}
}

func TestWrapConnCutsMidStream(t *testing.T) {
	// cut=1 with a fixed byte budget: the writer sees ErrCut once the
	// budget is crossed, and the reader sees a torn stream (short read).
	l := NewLink(Profile{Cut: 1, CutBytes: 100, Seed: 3})
	client, server := net.Pipe()
	defer client.Close()
	wc := l.WrapConn(server)
	read := make(chan int, 1)
	go func() {
		n, _ := io.Copy(io.Discard, client)
		read <- int(n)
	}()
	total, chunks := 0, 0
	var err error
	for chunks = 0; chunks < 10; chunks++ {
		var n int
		n, err = wc.Write(make([]byte, 64))
		total += n
		if err != nil {
			break
		}
	}
	if err != ErrCut {
		t.Fatalf("write error = %v, want ErrCut", err)
	}
	if total >= 64*10 {
		t.Fatalf("cut never limited bytes (wrote %d)", total)
	}
	if _, err := wc.Write([]byte{1}); err != ErrCut {
		t.Fatalf("post-cut write error = %v, want ErrCut", err)
	}
	select {
	case n := <-read:
		if n != total {
			t.Fatalf("peer read %d bytes, writer passed %d", n, total)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("peer never observed the cut")
	}
	// Uncut profile returns the conn unwrapped.
	if c := NewLink(Profile{Loss: 0.5, Seed: 1}).WrapConn(server); c != server {
		t.Fatalf("cut=0 wrapped the conn")
	}
}

func TestParseProfileRoundTrip(t *testing.T) {
	spec := "loss=0.1,dup=0.02,reorder=0.05,corrupt=0.01,blackhole=0.3,cut=0.5,cutbytes=512,delay=1ms,jitter=500us,seed=99"
	p, err := ParseProfile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Loss != 0.1 || p.Dup != 0.02 || p.Reorder != 0.05 || p.Corrupt != 0.01 ||
		p.Blackhole != 0.3 || p.Cut != 0.5 || p.CutBytes != 512 ||
		p.Delay != time.Millisecond || p.Jitter != 500*time.Microsecond || p.Seed != 99 {
		t.Fatalf("parsed %+v", p)
	}
	back, err := ParseProfile(p.String())
	if err != nil || back != p {
		t.Fatalf("round trip %+v != %+v (%v)", back, p, err)
	}
	if z, err := ParseProfile(" "); err != nil || !z.zero() {
		t.Fatalf("blank spec: %+v, %v", z, err)
	}
	for _, bad := range []string{"loss", "loss=2", "loss=x", "wat=1", "delay=fast", "seed=-1"} {
		if _, err := ParseProfile(bad); err == nil {
			t.Fatalf("ParseProfile(%q) accepted", bad)
		}
	}
}
