package passive

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/topology"
)

// IXPSite is one of the 14 exchanges of the IXP-DNS-1 dataset: a passive
// vantage with its own resolver population, sized by the exchange's scale.
type IXPSite struct {
	Name   string
	Region geo.Region
	Model  *Model
}

// MultiIXP is the 14-exchange passive platform (paper §4.1: IXPs in Europe
// and North America).
type MultiIXP struct {
	Sites []IXPSite
}

// ixpCatalog names the modeled exchanges with a relative size factor
// (member traffic scale). Names are descriptive of the metro, not of any
// specific operator.
var ixpCatalog = []struct {
	name   string
	region geo.Region
	size   float64
}{
	{"IX-FRA", geo.Europe, 3.0},
	{"IX-AMS", geo.Europe, 2.6},
	{"IX-LHR", geo.Europe, 2.2},
	{"IX-CDG", geo.Europe, 1.2},
	{"IX-WAW", geo.Europe, 0.7},
	{"IX-MAD", geo.Europe, 0.6},
	{"IX-ARN", geo.Europe, 0.6},
	{"IX-VIE", geo.Europe, 0.5},
	{"IX-PRG", geo.Europe, 0.4},
	{"IX-JFK", geo.NorthAmerica, 1.8},
	{"IX-IAD", geo.NorthAmerica, 1.6},
	{"IX-ORD", geo.NorthAmerica, 1.0},
	{"IX-SEA", geo.NorthAmerica, 0.8},
	{"IX-MIA", geo.NorthAmerica, 0.7},
}

// NewMultiIXP builds all 14 exchange models. baseClients scales the
// population of a size-1.0 exchange.
func NewMultiIXP(baseClients int, seed int64) *MultiIXP {
	m := &MultiIXP{}
	for i, entry := range ixpCatalog {
		var cfg ModelConfig
		if entry.region == geo.Europe {
			cfg = IXPConfigEU(int(float64(baseClients)*entry.size), seed+int64(i))
		} else {
			cfg = IXPConfigNA(int(float64(baseClients)*entry.size), seed+int64(i))
		}
		cfg.Name = entry.name
		m.Sites = append(m.Sites, IXPSite{
			Name:   entry.name,
			Region: entry.region,
			Model:  NewModel(cfg),
		})
	}
	return m
}

// RegionShift aggregates the in-family b.root shift over one region's
// exchanges, traffic-weighted.
func (m *MultiIXP) RegionShift(region geo.Region, f topology.Family, start, end time.Time) float64 {
	var newSum, oldSum float64
	for _, site := range m.Sites {
		if site.Region != region {
			continue
		}
		series := site.Model.TrafficSeries(start, end, []Target{
			{Letter: "b", Family: f, Old: false},
			{Letter: "b", Family: f, Old: true},
		})
		newSum += series[0].Total()
		oldSum += series[1].Total()
	}
	if newSum+oldSum == 0 {
		return 0
	}
	return newSum / (newSum + oldSum)
}

// PerIXPShift returns each exchange's in-family shift, sorted by name.
func (m *MultiIXP) PerIXPShift(f topology.Family, start, end time.Time) map[string]float64 {
	out := make(map[string]float64, len(m.Sites))
	for _, site := range m.Sites {
		out[site.Name] = site.Model.ShiftRatio(f, start, end)
	}
	return out
}

// WriteDetail renders the per-exchange adoption table (the disaggregated
// form of the paper's Fig. 9).
func (m *MultiIXP) WriteDetail(w io.Writer, f topology.Family, start, end time.Time) {
	fmt.Fprintf(w, "Per-IXP %s b.root adoption (share on new prefix)\n", f)
	shifts := m.PerIXPShift(f, start, end)
	names := make([]string, 0, len(shifts))
	for n := range shifts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		var region geo.Region
		for _, s := range m.Sites {
			if s.Name == n {
				region = s.Region
			}
		}
		fmt.Fprintf(w, "  %-8s %-14s %5.1f%%\n", n, region, shifts[n]*100)
	}
	fmt.Fprintf(w, "  aggregate: Europe %.1f%%, North America %.1f%%\n",
		m.RegionShift(geo.Europe, f, start, end)*100,
		m.RegionShift(geo.NorthAmerica, f, start, end)*100)
}
