package passive

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/topology"
)

func testMultiIXP() *MultiIXP { return NewMultiIXP(300, 9) }

func TestMultiIXPShape(t *testing.T) {
	m := testMultiIXP()
	if len(m.Sites) != 14 {
		t.Fatalf("sites = %d, want 14 (paper §4.1)", len(m.Sites))
	}
	var eu, na int
	for _, s := range m.Sites {
		switch s.Region {
		case geo.Europe:
			eu++
		case geo.NorthAmerica:
			na++
		default:
			t.Errorf("%s in unexpected region %s", s.Name, s.Region)
		}
		if len(s.Model.Clients) == 0 {
			t.Errorf("%s has no clients", s.Name)
		}
	}
	if eu < 5 || na < 3 {
		t.Errorf("regions: %d EU, %d NA", eu, na)
	}
	// Bigger exchanges carry bigger populations.
	var fra, prg int
	for _, s := range m.Sites {
		switch s.Name {
		case "IX-FRA":
			fra = len(s.Model.Clients)
		case "IX-PRG":
			prg = len(s.Model.Clients)
		}
	}
	if fra <= prg {
		t.Errorf("IX-FRA (%d clients) not larger than IX-PRG (%d)", fra, prg)
	}
}

func TestRegionShiftAggregates(t *testing.T) {
	m := testMultiIXP()
	start := BRootChange.Add(72 * time.Hour)
	end := IXPWindow1[1]
	eu := m.RegionShift(geo.Europe, topology.IPv6, start, end)
	na := m.RegionShift(geo.NorthAmerica, topology.IPv6, start, end)
	if math.Abs(eu-0.608) > 0.15 {
		t.Errorf("EU aggregate shift = %.3f, want ~0.608", eu)
	}
	if math.Abs(na-0.165) > 0.12 {
		t.Errorf("NA aggregate shift = %.3f, want ~0.165", na)
	}
	if eu <= na {
		t.Error("EU must shift more than NA")
	}
}

func TestPerIXPShiftVaries(t *testing.T) {
	m := testMultiIXP()
	start := BRootChange.Add(72 * time.Hour)
	end := IXPWindow1[1]
	shifts := m.PerIXPShift(topology.IPv6, start, end)
	if len(shifts) != 14 {
		t.Fatalf("per-IXP shifts = %d", len(shifts))
	}
	minV, maxV := 1.0, 0.0
	for _, v := range shifts {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if maxV-minV < 0.1 {
		t.Errorf("per-IXP spread %.3f too small; exchanges must differ", maxV-minV)
	}
}

func TestWriteDetail(t *testing.T) {
	m := testMultiIXP()
	var sb strings.Builder
	m.WriteDetail(&sb, topology.IPv6, BRootChange.Add(72*time.Hour), IXPWindow1[1])
	out := sb.String()
	for _, want := range []string{"IX-FRA", "IX-JFK", "aggregate", "Europe"} {
		if !strings.Contains(out, want) {
			t.Errorf("detail missing %q", want)
		}
	}
}
